package grb

import "github.com/grblas/grb/internal/sparse"

// This file surfaces the substrate's adaptive kernel-selection machinery
// (see DESIGN.md, "Kernel selection"): MxM and MxV route each row range to a
// dense or hash sparse accumulator by comparing the range's flop estimate
// against the output width. The Descriptor's AxB field pins the choice per
// operation; the helpers here tune and observe the global policy, mainly for
// benchmarks (cmd/grbbench -kernel) and tests.

// kernelHint maps the descriptor's AxB method onto the substrate hint.
func kernelHint(m AxBMethod) sparse.Kernel {
	switch m {
	case AxBDenseSPA:
		return sparse.KernelDense
	case AxBHashSPA:
		return sparse.KernelHash
	case AxBDefault:
	}
	return sparse.KernelAuto
}

// specRoute maps the descriptor's SpecMode and a semiring's constructor tag
// onto the substrate's (Semi, Spec) pair. SpecGeneric erases the tag so the
// substrate cannot specialize at all; the other modes pass the tag through
// with the corresponding pin. The descriptor pin always wins over the tag —
// the first level of the routing decision tree (descriptor pin > format >
// semiring table).
func specRoute(m SpecMode, semi sparse.Semi) (sparse.Semi, sparse.Spec) {
	switch m {
	case SpecGeneric:
		return sparse.SemiGeneric, sparse.SpecGeneric
	case SpecMono:
		return semi, sparse.SpecMono
	case SpecAuto:
	}
	return semi, sparse.SpecAuto
}

// blockRoute maps the descriptor's BlockMode onto the substrate hint.
func blockRoute(m BlockMode) sparse.BlockHint {
	switch m {
	case BlockOn:
		return sparse.BlockForce
	case BlockOff:
		return sparse.BlockFlat
	case BlockDefault:
	}
	return sparse.BlockAuto
}

// BlockHint is the process-wide blocked-engine routing hint, aliased from the
// substrate so grb callers (cmd/grbbench -blocked, tests) can pin the engine
// without importing internal packages.
type BlockHint = sparse.BlockHint

const (
	// BlockAuto builds and uses blocked views only where the auto-blocker
	// thresholds justify them.
	BlockAuto = sparse.BlockAuto
	// BlockFlat disables the blocked engine entirely.
	BlockFlat = sparse.BlockFlat
	// BlockForce routes every multiply through the 2D-blocked SUMMA plans.
	BlockForce = sparse.BlockForce
)

// SetBlockHint pins the blocked-engine routing hint and returns the previous
// value. It affects only future route decisions.
func SetBlockHint(h BlockHint) BlockHint { return sparse.SetBlockHint(h) }

// CurrentBlockHint returns the blocked-engine routing hint.
func CurrentBlockHint() BlockHint { return sparse.CurrentBlockHint() }

// SetBlockGrid pins the blocked-view grid shape (rows×cols of tiles) and
// returns the previous setting. Values < 1 mean "auto" (a 4×4 default,
// clamped per matrix to its dimensions).
func SetBlockGrid(r, c int) (int, int) { return sparse.SetBlockGrid(r, c) }

// BlockGrid returns the requested blocked-view grid shape (0, 0 = auto).
func BlockGrid() (int, int) { return sparse.BlockGrid() }

// SetBlockThreshold pins the auto-blocker nnz cutoff — matrices below it stay
// flat under BlockDefault/BlockAuto routing — and returns the previous value.
func SetBlockThreshold(n int) int { return sparse.SetBlockThreshold(n) }

// BlockThreshold returns the auto-blocker nnz cutoff.
func BlockThreshold() int { return sparse.BlockThreshold() }

// BlockKernelCounts reports how many multiply operations the 2D-blocked
// (SUMMA) engine served and how many tile multiply tasks they executed since
// the last ResetKernelCounts.
func BlockKernelCounts() (ops, tasks int64) { return sparse.BlockCounts() }

// BlockTileCounts reports how many blocked tile tasks used the dense tile SPA
// and the hash tile accumulator since the last ResetKernelCounts.
func BlockTileCounts() (dense, hash int64) { return sparse.BlockTileCounts() }

// BlockFallbackCount reports how many blocked-route requests fell back to the
// flat kernels (budget refusal, incompatible splits) since the last
// ResetKernelCounts.
func BlockFallbackCount() int64 { return sparse.BlockFallbackCount() }

// AutoBlockCount reports how many blocked views the Wait-time auto-blocker
// built since the last ResetKernelCounts.
func AutoBlockCount() int64 { return sparse.AutoBlockCount() }

// BlockScratchBytes reports the per-tile accumulator scratch allocated by
// blocked plans since the last ResetKernelCounts.
func BlockScratchBytes() int64 { return sparse.BlockScratchBytes() }

// SpanFlops reports the accumulated modeled parallel span (the makespan, in
// flops, of each SpGEMM call's partition greedily list-scheduled over its
// worker count) and the total flops of those calls since the last
// ResetKernelCounts. work/span is the plan's modeled parallel speedup — the
// machine-independent load-balance metric the benchmark gate compares flat
// and blocked plans with, unaffected by the host's real core count.
func SpanFlops() (span, work int64) { return sparse.SpanFlops() }

// FormatHint pins the block-format tier of the routing decision tree — the
// middle level, between the descriptor pin and the semiring table. It is an
// alias of the substrate type so grb callers (cmd/grbbench -format, tests)
// can pin formats without importing internal packages.
type FormatHint = sparse.FormatHint

const (
	// FormatHintAuto materializes full storage for completely dense
	// operands and bitmap storage otherwise.
	FormatHintAuto = sparse.FormatHintAuto
	// FormatHintBitmap forces bitmap storage even for full operands.
	FormatHintBitmap = sparse.FormatHintBitmap
	// FormatHintSparse disables block-format materialization: every
	// operation stays on the sparse form and the closure kernels.
	FormatHintSparse = sparse.FormatHintSparse
)

// SetFormatHint pins the block-format routing hint and returns the previous
// value. It affects only future materializations.
func SetFormatHint(h FormatHint) FormatHint { return sparse.SetFormatHint(h) }

// CurrentFormatHint returns the block-format routing hint.
func CurrentFormatHint() FormatHint { return sparse.CurrentFormatHint() }

// MonoKernelCounts reports how many multiply operations ran a monomorphized
// hot-semiring kernel and how many fell back to the generic closure kernels
// since the last ResetKernelCounts.
func MonoKernelCounts() (mono, closure int64) { return sparse.MonoCounts() }

// FormatConversionCount reports the number of sparse→bitmap/dense
// block-format materializations (cache misses) since the last
// ResetKernelCounts.
func FormatConversionCount() int64 { return sparse.FormatConversionCount() }

// KernelHashThreshold returns the adaptive-selection threshold: a row range
// of a multiply uses the hash accumulator when its total flop estimate stays
// below outputWidth/threshold. Higher thresholds bias selection toward the
// dense accumulator.
func KernelHashThreshold() int { return sparse.HashThreshold() }

// SetKernelHashThreshold pins the adaptive-selection threshold and returns
// the previous value. It is safe to call while operations run.
func SetKernelHashThreshold(t int) int { return sparse.SetHashThreshold(t) }

// KernelCounts reports how many multiply row ranges the dense and hash
// accumulators served since the last ResetKernelCounts — benchmark and test
// instrumentation for observing adaptive selection.
func KernelCounts() (dense, hash int64) { return sparse.KernelCounts() }

// DirectionThreshold returns the push/pull selection threshold: with DirAuto,
// a matrix-vector product takes the push (scatter) kernel when the frontier's
// nnz stays below inputDim/threshold, unless a sparse non-complemented mask
// makes the masked pull gather cheaper. Higher thresholds bias toward pull.
func DirectionThreshold() int { return sparse.DirectionThreshold() }

// SetDirectionThreshold pins the push/pull selection threshold and returns
// the previous value. It is safe to call while operations run.
func SetDirectionThreshold(t int) int { return sparse.SetDirectionThreshold(t) }

// DirectionCounts reports how many matrix-vector products the push and pull
// kernels served since the last ResetKernelCounts — instrumentation for
// observing direction-optimizing traversal routing.
func DirectionCounts() (push, pull int64) { return sparse.DirectionCounts() }

// TransposeCount reports the number of transpose materializations (actual
// bucket transposes, not cache hits) since the last ResetKernelCounts.
// Repeated operations with a Transpose descriptor flag on an unmodified
// matrix materialize exactly once; the cached view serves the rest.
func TransposeCount() int64 { return sparse.TransposeCount() }

// KernelScratchBytes reports the accumulator scratch (dense SPA buffers, hash
// tables, gather workspaces) allocated by multiply kernels since the last
// ResetKernelCounts.
func KernelScratchBytes() int64 { return sparse.ScratchBytes() }

// HardeningCounts reports the execution-hardening telemetry since the last
// ResetKernelCounts: degrades is the number of budget-forced route changes
// (dense→hash accumulator fallback, thread halving, skipped transpose
// caching, push→pull flips), panics the number of kernel panics recovered
// into parked execution errors (§V) instead of crashing the process.
func HardeningCounts() (degrades, panics int64) { return sparse.HardeningCounts() }

// ResetKernelCounts zeroes the selection, scratch, direction-routing,
// transpose-materialization and hardening counters.
func ResetKernelCounts() { sparse.ResetKernelCounts() }

package grb

import (
	"testing"

	"github.com/grblas/grb/internal/faults"
)

// The chaos differential suite: every registered fault-injection site is
// swept with both failure shapes (simulated allocation failure and simulated
// kernel panic), against an operation battery that reaches every site. The
// contract under any injected fault is the §V one — the process never
// crashes, the failure surfaces as a parked execution error through
// Wait(Materialize) with a non-empty ErrorString, and the victim object
// stays a valid (sticky-error) object. Run with -tags grbcheck, the chaos CI
// tier additionally validates every intermediate snapshot.

// chaosBatterySites is the battery's site manifest: every fault-injection
// site the sweep must cover, kept sorted. sitecheck statically cross-checks
// this list against the faults.Register calls in non-test code, and
// TestChaosBatteryManifestMatchesRegistry pins it to the live registry so a
// new site cannot land without joining the sweep.
var chaosBatterySites = []string{
	"sparse.block.tile",
	"sparse.format.convert",
	"sparse.kernel.range",
	"sparse.merge.tuples",
	"sparse.mono.loop",
	"sparse.mono.spa",
	"sparse.spgemm.hash",
	"sparse.spgemm.spa",
	"sparse.spmv.gather",
	"sparse.spmv.hash",
	"sparse.transpose.build",
	"sparse.vxm.spa",
}

// opOutcome records one battery operation's surfaced error.
type opOutcome struct {
	op      string
	err     error // call error or parked error from Wait(Materialize)
	errText string
}

// chaosInputs builds and fully materializes the battery inputs so that
// injection (armed afterwards) hits only the operations under test.
func chaosInputs(t *testing.T) (*Matrix[float64], *Vector[float64]) {
	t.Helper()
	var is, js []Index
	var xs []float64
	for i := 0; i < 16; i++ {
		is = append(is, Index(i), Index(i))
		js = append(js, Index((i+1)%16), Index((i*5+2)%16))
		xs = append(xs, float64(i+1), float64(i+2))
	}
	a, err := NewMatrix[float64](16, 16)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := a.Build(is, js, xs, Second[float64, float64]); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := a.Wait(Materialize); err != nil {
		t.Fatalf("materialize input: %v", err)
	}
	u, err := NewVector[float64](16)
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	for i := 0; i < 16; i++ {
		if err := u.SetElement(float64(i+1), Index(i)); err != nil {
			t.Fatalf("SetElement: %v", err)
		}
	}
	if err := u.Wait(Materialize); err != nil {
		t.Fatalf("materialize input: %v", err)
	}
	return a, u
}

// runHardenedBattery drives one operation through every hardened site:
// tuple merge, both SpGEMM accumulators, the transpose builder, both SpMV
// gather buffers, the push-side SPA, the per-range checkpoint, and the
// monomorphized fast paths (loop entry, scatter SPA, block-format
// conversion). Inputs
// must be pre-materialized. Every op is drained with Wait(Materialize)
// immediately, so injection points fire deterministically in battery order.
func runHardenedBattery(t *testing.T, a *Matrix[float64], u *Vector[float64]) []opOutcome {
	t.Helper()
	var outs []opOutcome
	record := func(op string, callErr, waitErr error, errText string) {
		err := callErr
		if err == nil {
			err = waitErr
		}
		outs = append(outs, opOutcome{op: op, err: err, errText: errText})
	}

	// sparse.merge.tuples — deferred setElement merge.
	m, err := NewMatrix[float64](16, 16)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	callErr := m.SetElement(3.5, 2, 2)
	record("merge", callErr, m.Wait(Materialize), m.ErrorString())

	// sparse.spgemm.spa + sparse.kernel.range — dense-accumulator MxM.
	// The closure-kernel sites need SpecGeneric: PlusTimes[float64] would
	// otherwise route to the monomorphized kernels, whose own sites the
	// mono ops below cover.
	mxm := func(op string, desc *Descriptor) {
		c, err := NewMatrix[float64](16, 16)
		if err != nil {
			t.Fatalf("NewMatrix: %v", err)
		}
		callErr := MxM(c, nil, nil, PlusTimes[float64](), a, a, desc)
		record(op, callErr, c.Wait(Materialize), c.ErrorString())
	}
	mxm("mxm-dense", &Descriptor{AxB: AxBDenseSPA, Spec: SpecGeneric})
	// sparse.spgemm.hash — hash-accumulator MxM.
	mxm("mxm-hash", DescHashSPA)
	// sparse.transpose.build — transposed input.
	mxm("mxm-transpose", &Descriptor{Transpose0: true})
	// sparse.mono.loop + sparse.mono.spa — monomorphized dense-SPA MxM.
	mxm("mxm-mono", &Descriptor{AxB: AxBDenseSPA, Spec: SpecMono})
	// sparse.block.tile — 2D-blocked SUMMA plan: the site is probed at
	// blocked-view materialization and at every tile-task entry.
	mxm("mxm-blocked", &Descriptor{Block: BlockOn, Spec: SpecGeneric})

	mxv := func(op string, desc *Descriptor) {
		w, err := NewVector[float64](16)
		if err != nil {
			t.Fatalf("NewVector: %v", err)
		}
		callErr := MxV(w, nil, nil, PlusTimes[float64](), a, u, desc)
		record(op, callErr, w.Wait(Materialize), w.ErrorString())
	}
	// sparse.spmv.gather — pinned pull with the dense gather buffer.
	mxv("mxv-pull-dense", &Descriptor{Dir: DirPull, AxB: AxBDenseSPA, Spec: SpecGeneric})
	// sparse.spmv.hash — pinned pull with the hash gather buffer.
	mxv("mxv-pull-hash", &Descriptor{Dir: DirPull, AxB: AxBHashSPA})
	// sparse.vxm.spa — pinned push (also crosses sparse.transpose.build).
	mxv("mxv-push", &Descriptor{Dir: DirPush, Spec: SpecGeneric})
	// sparse.format.convert + sparse.mono.loop — monomorphized pull through
	// the frontier's block view. The view caches on the vector snapshot, so
	// the convert site checks once per fresh input (the sweep rebuilds
	// inputs per point).
	mxv("mxv-pull-mono", &Descriptor{Dir: DirPull, Spec: SpecMono})
	// sparse.mono.spa — monomorphized push scatter.
	mxv("mxv-push-mono", &Descriptor{Dir: DirPush, Spec: SpecMono})
	// sparse.block.tile — blocked pull plan (tile-row tasks) and blocked push
	// plan (frontier-partition × tile-column scatter tasks).
	mxv("mxv-pull-blocked", &Descriptor{Dir: DirPull, Block: BlockOn, Spec: SpecGeneric})
	mxv("mxv-push-blocked", &Descriptor{Dir: DirPush, Block: BlockOn, Spec: SpecGeneric})

	return outs
}

// TestChaosSweepAllSitesAllActions is the fault sweep of the acceptance
// criteria: every registered site × {alloc-failure, panic} must surface as a
// well-formed parked execution error with the right Info code — and the
// sweep fails if a site is never reached by the battery (silent coverage
// loss) or if any outcome is malformed.
func TestChaosSweepAllSitesAllActions(t *testing.T) {
	setMode(t, NonBlocking)
	sites := chaosBatterySites
	cases := []struct {
		action faults.Action
		want   Info
	}{
		{faults.AllocFail, OutOfMemory},
		{faults.Panic, Panic},
	}
	for _, site := range sites {
		for _, tc := range cases {
			t.Run(site+"/"+tc.action.String(), func(t *testing.T) {
				// Fresh inputs per sweep point: the transpose cache lives on
				// an input's snapshot, and a hit cached by a previous sweep
				// point would mask the transpose site's Check.
				a, u := chaosInputs(t)
				faults.Enable(faults.Rule{Site: site, Action: tc.action, Hit: 1})
				defer faults.Disable()
				outs := runHardenedBattery(t, a, u)
				hit := 0
				for _, o := range outs {
					if o.err == nil {
						continue
					}
					hit++
					if Code(o.err) != tc.want {
						t.Errorf("%s: code = %v (%v), want %v", o.op, Code(o.err), o.err, tc.want)
					}
					if !Code(o.err).IsExecutionError() {
						t.Errorf("%s: %v is not an execution error", o.op, Code(o.err))
					}
					if o.errText == "" {
						t.Errorf("%s: parked error has empty ErrorString", o.op)
					}
				}
				if hit == 0 {
					t.Errorf("site %s never fired: battery does not cover it", site)
				}
			})
		}
	}
}

// TestChaosBatteryManifestMatchesRegistry pins the static site manifest to
// the live registry: a newly registered site must be added to
// chaosBatterySites (and thereby the sweep) before it can ship, and a stale
// manifest entry fails just as loudly. Both lists are sorted.
func TestChaosBatteryManifestMatchesRegistry(t *testing.T) {
	got := faults.Sites()
	if len(got) != len(chaosBatterySites) {
		t.Fatalf("registry has %d sites, manifest lists %d:\nregistry: %v\nmanifest: %v",
			len(got), len(chaosBatterySites), got, chaosBatterySites)
	}
	for i, name := range chaosBatterySites {
		if got[i] != name {
			t.Fatalf("manifest[%d] = %q, registry has %q", i, name, got[i])
		}
	}
}

// TestScatteredChaosNeverCrashes is the scattered mode: pseudo-random but
// reproducible faults over every site while the battery runs repeatedly.
// Any surfaced error must be a well-formed execution error; the process must
// survive every seed.
func TestScatteredChaosNeverCrashes(t *testing.T) {
	setMode(t, NonBlocking)
	a, u := chaosInputs(t)
	for seed := int64(1); seed <= 5; seed++ {
		faults.EnableSeeded(seed,
			faults.Rule{Site: "*", Action: faults.AllocFail, OneIn: 5},
			faults.Rule{Site: "*", Action: faults.Panic, OneIn: 7},
		)
		for round := 0; round < 3; round++ {
			for _, o := range runHardenedBattery(t, a, u) {
				if o.err == nil {
					continue
				}
				if c := Code(o.err); !c.IsExecutionError() {
					t.Fatalf("seed %d %s: non-execution error %v (%v)", seed, o.op, c, o.err)
				}
				if o.errText == "" {
					t.Fatalf("seed %d %s: empty ErrorString for %v", seed, o.op, o.err)
				}
			}
		}
		faults.Disable()
	}
	// With injection disarmed the library is fully healthy again.
	c, err := NewMatrix[float64](16, 16)
	if err != nil {
		t.Fatalf("NewMatrix after chaos: %v", err)
	}
	if err := MxM(c, nil, nil, PlusTimes[float64](), a, a, nil); err != nil {
		t.Fatalf("MxM after chaos: %v", err)
	}
	if err := c.Wait(Materialize); err != nil {
		t.Fatalf("Wait after chaos: %v", err)
	}
}

// TestFaultSpecArming covers the GRB_FAULTS env arming path through Init:
// a bad spec fails Init cleanly, a good spec injects, and unsetting restores
// the fast path.
func TestFaultSpecArming(t *testing.T) {
	t.Setenv("GRB_FAULTS", "not a spec")
	_ = Finalize() //grblint:ignore infocheck -- reset idiom
	if err := Init(NonBlocking); Code(err) != InvalidValue {
		t.Fatalf("Init with bad GRB_FAULTS: err = %v, want InvalidValue", err)
	}
	t.Setenv("GRB_FAULTS", "sparse.merge.tuples:alloc@1")
	if err := Init(NonBlocking); err != nil {
		t.Fatalf("Init with valid GRB_FAULTS: %v", err)
	}
	t.Cleanup(func() {
		faults.Disable()
		_ = Finalize() //grblint:ignore infocheck -- best-effort teardown
	})
	m, err := NewMatrix[int](4, 4)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := m.SetElement(1, 0, 0); err != nil {
		t.Fatalf("SetElement: %v", err)
	}
	if err := m.Wait(Materialize); Code(err) != OutOfMemory {
		t.Fatalf("env-armed injection: err = %v, want OutOfMemory", err)
	}
}

package grb

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

// Direction differential harness: the push (scatter) and pull (gather)
// matrix-vector kernels must produce identical output for every semiring
// whose additive monoid is exactly associative on the data — multithreaded
// push reassociates the fold across partitions, so the harness sticks to
// integer plus-times, float min-plus (min is exact; + only appears inside
// the multiply) and boolean lor-land. Each test draws its inputs from a
// logged seed; rerun a failure with GRB_DIFF_SEED=<seed>.

// dirSeed returns the randomized (or pinned) seed for a differential test
// and logs it for reproducibility.
func dirSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano()
	if s := os.Getenv("GRB_DIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad GRB_DIFF_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("seed=%d (pin with GRB_DIFF_SEED to reproduce)", seed)
	return seed
}

// sameVector fails unless got and want have identical pattern and values.
func sameVector[T comparable](t *testing.T, label string, got, want *Vector[T]) {
	t.Helper()
	gi, gx, err := got.ExtractTuples()
	if err != nil {
		t.Fatalf("%s: ExtractTuples(got): %v", label, err)
	}
	wi, wx, err := want.ExtractTuples()
	if err != nil {
		t.Fatalf("%s: ExtractTuples(want): %v", label, err)
	}
	if len(gi) != len(wi) {
		t.Fatalf("%s: nvals %d != %d (got %v, want %v)", label, len(gi), len(wi), gi, wi)
	}
	for k := range gi {
		if gi[k] != wi[k] || gx[k] != wx[k] {
			t.Fatalf("%s: entry %d = (%d)=%v, want (%d)=%v", label, k, gi[k], gx[k], wi[k], wx[k])
		}
	}
}

// dirMaskVariants enumerates the mask interpretations the harness covers.
func dirMaskVariants() []struct {
	name                   string
	masked                 bool
	structural, complement bool
} {
	return []struct {
		name                   string
		masked                 bool
		structural, complement bool
	}{
		{"nomask", false, false, false},
		{"value", true, false, false},
		{"structural", true, true, false},
		{"complement", true, false, true},
		{"structural-complement", true, true, true},
	}
}

// diffDirection drives one semiring through VxM and MxV with the direction
// pinned push, pinned pull, and adaptive, across mask variants, transposes
// and thread counts, requiring identical results everywhere.
func diffDirection[T comparable](t *testing.T, rng *rand.Rand, sr Semiring[T, T, T], mk func(*rand.Rand) T) {
	t.Helper()
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(60)
		nnz := 2 + rng.Intn(4*n)
		I := make([]Index, nnz)
		J := make([]Index, nnz)
		X := make([]T, nnz)
		for k := 0; k < nnz; k++ {
			I[k], J[k], X[k] = rng.Intn(n), rng.Intn(n), mk(rng)
		}
		a := mustMatrix(t, n, n, I, J, X)

		// Alternate sparse and dense frontiers so DirAuto takes both sides.
		fz := 1 + rng.Intn(n/8+1)
		if trial%2 == 1 {
			fz = n/2 + rng.Intn(n/2+1)
		}
		ui := make([]Index, 0, fz)
		ux := make([]T, 0, fz)
		for _, j := range rng.Perm(n)[:fz] {
			ui = append(ui, j)
			ux = append(ux, mk(rng))
		}
		u := mustVector(t, n, ui, ux)

		mi := make([]Index, 0, n)
		mx := make([]bool, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				mi = append(mi, i)
				mx = append(mx, rng.Intn(2) == 0)
			}
		}
		mask := mustVector(t, n, mi, mx)

		for _, threads := range []int{1, 4} {
			ctx, err := NewContext(NonBlocking, nil, WithThreads(threads), WithChunk(1))
			if err != nil {
				t.Fatalf("NewContext: %v", err)
			}
			ac := ck1(a.Dup())
			uc := ck1(u.Dup())
			mc := ck1(mask.Dup())
			for _, o := range []interface{ SwitchContext(*Context) error }{ac, uc, mc} {
				if err := o.SwitchContext(ctx); err != nil {
					t.Fatalf("SwitchContext: %v", err)
				}
			}
			for _, mv := range dirMaskVariants() {
				var m *Vector[bool]
				if mv.masked {
					m = mc
				}
				for _, tr := range []bool{false, true} {
					runOp := func(op string, dir Direction) *Vector[T] {
						w, err := NewVector[T](n, InContext(ctx))
						if err != nil {
							t.Fatalf("NewVector: %v", err)
						}
						d := &Descriptor{Structure: mv.structural, Complement: mv.complement, Dir: dir}
						if op == "vxm" {
							d.Transpose1 = tr
							err = VxM(w, m, nil, sr, uc, ac, d)
						} else {
							d.Transpose0 = tr
							err = MxV(w, m, nil, sr, ac, uc, d)
						}
						if err != nil {
							t.Fatalf("trial %d %s/%s tr=%v threads=%d: %v", trial, op, mv.name, tr, threads, err)
						}
						return w
					}
					for _, op := range []string{"vxm", "mxv"} {
						push := runOp(op, DirPush)
						pull := runOp(op, DirPull)
						auto := runOp(op, DirAuto)
						label := op + "/" + mv.name
						sameVector(t, label+"/push-vs-pull", push, pull)
						sameVector(t, label+"/auto-vs-pull", auto, pull)
					}
				}
			}
			ck(ctx.Free())
		}
	}
}

func TestDifferentialDirectionPlusTimes(t *testing.T) {
	setMode(t, NonBlocking)
	rng := rand.New(rand.NewSource(dirSeed(t)))
	diffDirection(t, rng, PlusTimes[int64](), func(r *rand.Rand) int64 { return int64(r.Intn(19) - 9) })
}

func TestDifferentialDirectionMinPlus(t *testing.T) {
	setMode(t, NonBlocking)
	rng := rand.New(rand.NewSource(dirSeed(t)))
	diffDirection(t, rng, MinPlus[float64](), func(r *rand.Rand) float64 { return r.NormFloat64() })
}

func TestDifferentialDirectionLorLand(t *testing.T) {
	setMode(t, NonBlocking)
	rng := rand.New(rand.NewSource(dirSeed(t)))
	diffDirection(t, rng, LOrLAnd(), func(r *rand.Rand) bool { return r.Intn(2) == 0 })
}

// TestTransposeCacheSingleMaterialization asserts the tentpole's contract:
// any number of Transpose-descriptor operations on an unmodified matrix
// materialize the transpose exactly once, and a mutation (which installs a
// fresh snapshot) costs exactly one more.
func TestTransposeCacheSingleMaterialization(t *testing.T) {
	setMode(t, NonBlocking)
	n := 64
	I := make([]Index, 0, 3*n)
	J := make([]Index, 0, 3*n)
	X := make([]int64, 0, 3*n)
	for i := 0; i < n; i++ {
		for _, j := range []int{(i * 7) % n, (i*13 + 5) % n, (i + 1) % n} {
			I, J, X = append(I, i), append(J, j), append(X, int64(i+j+1))
		}
	}
	a := mustMatrix(t, n, n, I, J, X)
	u := mustVector(t, n, []Index{0, n / 2, n - 1}, []int64{1, 2, 3})
	pullT0 := &Descriptor{Transpose0: true, Dir: DirPull}

	ResetKernelCounts()
	for rep := 0; rep < 5; rep++ {
		w := ck1(NewVector[int64](n))
		if err := MxV(w, nil, nil, PlusTimes[int64](), a, u, pullT0); err != nil {
			t.Fatalf("MxV: %v", err)
		}
		if err := w.Wait(Materialize); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		// The explicit transpose operation must share the same cached view.
		c := ck1(NewMatrix[int64](n, n))
		if err := Transpose(c, nil, nil, a, nil); err != nil {
			t.Fatalf("Transpose: %v", err)
		}
		if err := c.Wait(Materialize); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	if got := TransposeCount(); got != 1 {
		t.Fatalf("10 transpose-view operations materialized %d transposes, want exactly 1", got)
	}

	// A mutation installs a fresh snapshot with an empty cache: exactly one
	// more materialization, however many further reads follow.
	if err := a.SetElement(99, 3, 4); err != nil {
		t.Fatalf("SetElement: %v", err)
	}
	if err := a.Wait(Materialize); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	ResetKernelCounts()
	for rep := 0; rep < 4; rep++ {
		w := ck1(NewVector[int64](n))
		if err := MxV(w, nil, nil, PlusTimes[int64](), a, u, pullT0); err != nil {
			t.Fatalf("MxV: %v", err)
		}
		if err := w.Wait(Materialize); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	if got := TransposeCount(); got != 1 {
		t.Fatalf("post-mutation reads materialized %d transposes, want exactly 1", got)
	}
}

// TestTransposeCacheConcurrentReaders drives concurrent Transpose-descriptor
// readers across mutate→Wait boundaries: each reader must observe a coherent
// (pre- or post-mutation) transpose view, and under -race the cache must be
// data-race free. The final pull result is checked against the push kernel,
// which never touches the cache.
func TestTransposeCacheConcurrentReaders(t *testing.T) {
	setMode(t, NonBlocking)
	n := 128
	I := make([]Index, 0, 4*n)
	J := make([]Index, 0, 4*n)
	X := make([]int64, 0, 4*n)
	rng := rand.New(rand.NewSource(dirSeed(t)))
	for k := 0; k < 4*n; k++ {
		I, J, X = append(I, rng.Intn(n)), append(J, rng.Intn(n)), append(X, int64(1+rng.Intn(9)))
	}
	a := mustMatrix(t, n, n, I, J, X)
	ui := make([]Index, n)
	ux := make([]int64, n)
	for i := range ui {
		ui[i], ux[i] = i, 1
	}
	u := mustVector(t, n, ui, ux)
	pullT0 := &Descriptor{Transpose0: true, Dir: DirPull}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w, err := NewVector[int64](n)
				if err != nil {
					t.Error(err)
					return
				}
				if err := MxV(w, nil, nil, PlusTimes[int64](), a, u, pullT0); err != nil {
					t.Errorf("reader MxV: %v", err)
					return
				}
				if err := w.Wait(Materialize); err != nil {
					t.Errorf("reader Wait: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		if err := a.SetElement(int64(i), i%n, (i*31+7)%n); err != nil {
			t.Fatalf("SetElement: %v", err)
		}
		if err := a.Wait(Materialize); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	wPull := ck1(NewVector[int64](n))
	if err := MxV(wPull, nil, nil, PlusTimes[int64](), a, u, pullT0); err != nil {
		t.Fatalf("final pull MxV: %v", err)
	}
	wPush := ck1(NewVector[int64](n))
	if err := MxV(wPush, nil, nil, PlusTimes[int64](), a, u, &Descriptor{Transpose0: true, Dir: DirPush}); err != nil {
		t.Fatalf("final push MxV: %v", err)
	}
	sameVector(t, "post-mutation pull-vs-push", wPull, wPush)
}

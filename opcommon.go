package grb

import (
	"errors"

	"github.com/grblas/grb/internal/sparse"
)

// snapMask completes a (possibly nil) matrix mask and bundles it with the
// descriptor's mask-interpretation flags for the kernels.
func snapMask(mask *Matrix[bool], d Descriptor) (sparse.Mask, error) {
	mk := sparse.Mask{Structural: d.Structure, Complement: d.Complement}
	if mask != nil {
		if err := mask.check(); err != nil {
			return mk, err
		}
		mcsr, err := mask.snapshot()
		if err != nil {
			return mk, err
		}
		mk.M = mcsr
	}
	return mk, nil
}

// snapVMask is the vector analogue of snapMask.
func snapVMask(mask *Vector[bool], d Descriptor) (sparse.VMask, error) {
	mk := sparse.VMask{Structural: d.Structure, Complement: d.Complement}
	if mask != nil {
		if err := mask.check(); err != nil {
			return mk, err
		}
		mvec, err := mask.snapshot()
		if err != nil {
			return mk, err
		}
		mk.M = mvec
	}
	return mk, nil
}

// maskCtx returns the context pointer of an optional mask for the shared-
// context check (§IV).
func maskCtx(mask *Matrix[bool]) []*Context {
	if mask == nil {
		return nil
	}
	return []*Context{mask.ctx}
}

// vmaskCtx is the vector analogue of maskCtx.
func vmaskCtx(mask *Vector[bool]) []*Context {
	if mask == nil {
		return nil
	}
	return []*Context{mask.ctx}
}

// checkMaskDimsM validates that a matrix mask matches the output shape.
func checkMaskDimsM(mk sparse.Mask, rows, cols int) error {
	if mk.M != nil && (mk.M.Rows != rows || mk.M.Cols != cols) {
		return errf(DimensionMismatch, "mask is %dx%d but output is %dx%d", mk.M.Rows, mk.M.Cols, rows, cols)
	}
	return nil
}

// checkMaskDimsV validates that a vector mask matches the output size.
func checkMaskDimsV(mk sparse.VMask, n int) error {
	if mk.M != nil && mk.M.N != n {
		return errf(DimensionMismatch, "mask has size %d but output has size %d", mk.M.N, n)
	}
	return nil
}

// maybeTranspose returns a (possibly) transposed view of a snapshot. The
// transposed view is memoized on the snapshot (sparse.TransposeCached), so
// repeated operations with a Transpose descriptor flag on an unmodified
// matrix materialize the transpose exactly once; mutations install a fresh
// snapshot with an empty cache, which is the only invalidation needed.
func maybeTranspose[T any](m *sparse.CSR[T], t bool) *sparse.CSR[T] {
	if t {
		return sparse.TransposeCached(m)
	}
	return m
}

// maybeTransposeEx is the hardened variant of maybeTranspose. The cached
// transpose holds memory for the snapshot's lifetime, so under a memory
// budget it is the first luxury dropped: when the persistent reservation
// does not fit, the transpose is rebuilt transiently instead (charged to the
// operation and released with its transaction), trading repeat work for
// residency. Only if even the transient build does not fit does ErrBudget
// reach the caller.
func maybeTransposeEx[T any](m *sparse.CSR[T], t bool, e sparse.Exec) (*sparse.CSR[T], error) {
	if !t {
		return m, nil
	}
	tt, err := sparse.TransposeCachedEx(m, e)
	if errors.Is(err, sparse.ErrBudget) {
		return sparse.TransposeEx(m, e)
	}
	return tt, err
}

// chooseDir resolves a descriptor's Direction pin (or the adaptive
// heuristic) into a concrete push/pull decision for a matrix-vector product
// with frontier nnzU over input dimension inDim and outDim masked outputs.
func chooseDir(dir Direction, nnzU, inDim int, mk sparse.VMask, outDim int) bool {
	switch dir {
	case DirPush:
		return true
	case DirPull:
		return false
	case DirAuto:
	}
	return sparse.ChoosePush(nnzU, inDim, mk, outDim)
}

// AsMask converts a numeric matrix into a boolean mask matrix: each stored
// entry maps to (value != 0), the C API's implicit cast-to-bool mask
// semantics. The result shares the input's context.
func AsMask[T Number](m *Matrix[T]) (*Matrix[bool], error) {
	return AsMaskFunc(m, func(v T) bool { return v != 0 })
}

// AsMaskFunc converts an arbitrary matrix into a boolean mask using pred to
// interpret stored values.
func AsMaskFunc[T any](m *Matrix[T], pred func(T) bool) (*Matrix[bool], error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	ctx, err := m.context()
	if err != nil {
		return nil, err
	}
	c, err := m.snapshot()
	if err != nil {
		return nil, err
	}
	// Immediate-mode kernel: isolate a panicking predicate (runStep).
	out, err := runStep("AsMask", func() (*sparse.CSR[bool], error) {
		return sparse.ApplyM(c, pred, ctx.threadsFor(c.NNZ())), nil
	})
	if err != nil {
		return nil, err
	}
	return &Matrix[bool]{init: true, ctx: m.ctx, csr: out}, nil
}

// AsVectorMask converts a numeric vector into a boolean mask vector
// (value != 0).
func AsVectorMask[T Number](v *Vector[T]) (*Vector[bool], error) {
	return AsVectorMaskFunc(v, func(x T) bool { return x != 0 })
}

// AsVectorMaskFunc converts an arbitrary vector into a boolean mask using
// pred to interpret stored values.
func AsVectorMaskFunc[T any](v *Vector[T], pred func(T) bool) (*Vector[bool], error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	if _, err := v.context(); err != nil {
		return nil, err
	}
	s, err := v.snapshot()
	if err != nil {
		return nil, err
	}
	out, err := runStep("AsVectorMask", func() (*sparse.Vec[bool], error) {
		return sparse.ApplyV(s, pred), nil
	})
	if err != nil {
		return nil, err
	}
	return &Vector[bool]{init: true, ctx: v.ctx, vec: out}, nil
}

// Package lagraph is a library of graph algorithms built on top of the grb
// public API, in the spirit of the LAGraph project that the GraphBLAS 2.0
// paper names as a primary consumer of the specification. Each algorithm is
// expressed purely in GraphBLAS operations — semiring products, masks,
// accumulators, select/apply with index operators — and therefore doubles as
// an integration test of the underlying implementation.
//
// Conventions: adjacency matrices are square; algorithms that assume an
// undirected graph (triangle counting, connected components, MIS, k-core)
// expect a symmetric pattern, which callers can obtain with gen.Symmetrize.
package lagraph

import (
	"math/rand"

	grb "github.com/grblas/grb"
)

// vectorsEqual reports whether two vectors have identical pattern and values.
func vectorsEqual[T comparable](a, b *grb.Vector[T]) (bool, error) {
	ai, ax, err := a.ExtractTuples()
	if err != nil {
		return false, err
	}
	bi, bx, err := b.ExtractTuples()
	if err != nil {
		return false, err
	}
	if len(ai) != len(bi) {
		return false, nil
	}
	for k := range ai {
		if ai[k] != bi[k] || ax[k] != bx[k] {
			return false, nil
		}
	}
	return true, nil
}

// dimAndCtx validates that a is square and returns its dimension together
// with the object option that places algorithm intermediates in a's own
// execution context. Inheriting the input's context is what makes the §IV
// serving story work end to end: when a caller hands in a matrix view bound
// to a per-request context (deadline, memory budget, thread cap), every
// intermediate the algorithm allocates — and therefore every operation it
// issues — runs under that context instead of escaping to the library
// default.
func dimAndCtx[T any](a *grb.Matrix[T]) (int, grb.ObjOption, error) {
	n, err := squareDim(a)
	if err != nil {
		return 0, nil, err
	}
	ctx, err := a.Context()
	if err != nil {
		return 0, nil, err
	}
	return n, grb.InContext(ctx), nil
}

// squareDim validates that a is square and returns its dimension.
func squareDim[T any](a *grb.Matrix[T]) (int, error) {
	n, err := a.Nrows()
	if err != nil {
		return 0, err
	}
	m, err := a.Ncols()
	if err != nil {
		return 0, err
	}
	if n != m {
		return 0, &grb.Error{Info: grb.DimensionMismatch, Msg: "adjacency matrix must be square"}
	}
	return n, nil
}

// BFSLevels performs a breadth-first search over the boolean adjacency
// matrix a from vertex src and returns the level vector: level 0 for src,
// k for vertices first reached after k hops; unreachable vertices have no
// entry. The traversal is the classic GraphBLAS push pattern: a boolean
// frontier advanced by vxm over the lor-land semiring, masked by the
// complement of the visited set.
func BFSLevels(a *grb.Matrix[bool], src grb.Index) (*grb.Vector[int], error) {
	return BFSLevelsDir(a, src, grb.DirAuto)
}

// BFSLevelsDir is BFSLevels with the traversal direction pinned: DirPush
// forces the scatter (vxm) kernel on every level, DirPull forces the masked
// gather over the cached transpose, and DirAuto lets each level route by
// frontier density — the direction-optimizing schedule, which typically
// pushes the narrow early and late frontiers and pulls the dense middle ones.
func BFSLevelsDir(a *grb.Matrix[bool], src grb.Index, dir grb.Direction) (*grb.Vector[int], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	// Replace + structural complemented mask, as in DescRSC, plus the pin.
	desc := &grb.Descriptor{Replace: true, Structure: true, Complement: true, Dir: dir}
	levels, err := grb.NewVector[int](n, opt)
	if err != nil {
		return nil, err
	}
	visited, err := grb.NewVector[bool](n, opt)
	if err != nil {
		return nil, err
	}
	frontier, err := grb.NewVector[bool](n, opt)
	if err != nil {
		return nil, err
	}
	if err := frontier.SetElement(true, src); err != nil {
		return nil, err
	}
	for depth := 0; ; depth++ {
		nv, err := frontier.Nvals()
		if err != nil {
			return nil, err
		}
		if nv == 0 {
			break
		}
		// levels⟨frontier,structure⟩ = depth
		if err := grb.VectorAssignScalar(levels, frontier, nil, depth, grb.All, grb.DescS); err != nil {
			return nil, err
		}
		// visited⟨frontier,structure⟩ = true
		if err := grb.VectorAssignScalar(visited, frontier, nil, true, grb.All, grb.DescS); err != nil {
			return nil, err
		}
		// frontier⟨¬visited,structure,replace⟩ = frontier ∨.∧ A
		if err := grb.VxM(frontier, visited, nil, grb.LOrLAnd(), frontier, a, desc); err != nil {
			return nil, err
		}
	}
	return levels, nil
}

// BFSParents performs a breadth-first search returning the parent vector:
// parents(src) = src, and parents(v) is the (minimum-index) predecessor
// through which v was first reached. This algorithm is the paper's §VIII in
// action: the wavefront's values are replaced by their own indices with the
// predefined ROWINDEX index-unary operator before each expansion, so the
// min-first semiring propagates parent identities — no packing of indices
// into values is needed, which is exactly the GraphBLAS 1.X workaround the
// paper's motivation section retires.
func BFSParents(a *grb.Matrix[bool], src grb.Index) (*grb.Vector[int], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	parents, err := grb.NewVector[int](n, opt)
	if err != nil {
		return nil, err
	}
	wavefront, err := grb.NewVector[int](n, opt)
	if err != nil {
		return nil, err
	}
	if err := wavefront.SetElement(src, src); err != nil {
		return nil, err
	}
	// min-first over (int, bool): product value is the wavefront entry.
	minFirst := grb.Semiring[int, bool, int]{Add: grb.MinMonoid[int](), Mul: grb.First[int, bool]}
	for {
		nv, err := wavefront.Nvals()
		if err != nil {
			return nil, err
		}
		if nv == 0 {
			break
		}
		wmask, err := grb.AsVectorMaskFunc(wavefront, func(int) bool { return true })
		if err != nil {
			return nil, err
		}
		// parents⟨wavefront,structure⟩ = wavefront (record discovered parents)
		if err := grb.VectorAssign(parents, wmask, nil, wavefront, grb.All, grb.DescS); err != nil {
			return nil, err
		}
		// wavefront(i) = i: each frontier vertex becomes its neighbours' parent.
		if err := grb.VectorApplyIndexOp(wavefront, nil, nil, grb.RowIndex[int], wavefront, 0, nil); err != nil {
			return nil, err
		}
		pmask, err := grb.AsVectorMaskFunc(parents, func(int) bool { return true })
		if err != nil {
			return nil, err
		}
		// wavefront⟨¬parents,structure,replace⟩ = wavefront min.first A
		if err := grb.VxM(wavefront, pmask, nil, minFirst, wavefront, a, grb.DescRSC); err != nil {
			return nil, err
		}
	}
	return parents, nil
}

// SSSP computes single-source shortest paths from src over the weighted
// adjacency matrix a using Bellman-Ford iteration on the (min, +) tropical
// semiring: d = d min (d min.+ A) until fixpoint. Edge weights may be
// negative as long as the graph has no negative cycle, which is reported as
// an error after n rounds without convergence.
func SSSP(a *grb.Matrix[float64], src grb.Index) (*grb.Vector[float64], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	d, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := d.SetElement(0, src); err != nil {
		return nil, err
	}
	for iter := 0; iter <= n; iter++ {
		prev, err := d.Dup()
		if err != nil {
			return nil, err
		}
		// d = d min (d min.+ A): the Min accumulator merges relaxations.
		if err := grb.VxM(d, nil, grb.Min[float64], grb.MinPlus[float64](), d, a, nil); err != nil {
			return nil, err
		}
		same, err := vectorsEqual(prev, d)
		if err != nil {
			return nil, err
		}
		if same {
			return d, nil
		}
	}
	return nil, &grb.Error{Info: grb.InvalidValue, Msg: "SSSP: no convergence after n rounds (negative cycle?)"}
}

// PageRankResult carries the ranks and the number of iterations used.
type PageRankResult struct {
	Ranks      *grb.Vector[float64]
	Iterations int
}

// PageRank computes the PageRank vector of the weighted adjacency matrix a
// (edge weights are treated as link multiplicities) with the given damping
// factor, iterating until the L1 change falls below tol or maxIter rounds.
// Dangling vertices (no out-edges) redistribute their rank uniformly.
func PageRank(a *grb.Matrix[float64], damping float64, tol float64, maxIter int) (*PageRankResult, error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	if damping <= 0 || damping >= 1 {
		return nil, &grb.Error{Info: grb.InvalidValue, Msg: "PageRank: damping must be in (0,1)"}
	}
	// Out-degree (row sums) and its reciprocal where nonzero.
	deg, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.MatrixReduceToVector(deg, nil, nil, grb.PlusMonoid[float64](), a, nil); err != nil {
		return nil, err
	}
	invdeg, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.VectorApply(invdeg, nil, nil, grb.MInv[float64], deg, nil); err != nil {
		return nil, err
	}
	degMask, err := grb.AsVectorMaskFunc(deg, func(float64) bool { return true })
	if err != nil {
		return nil, err
	}
	r, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.VectorAssignScalar(r, nil, nil, 1/float64(n), grb.All, nil); err != nil {
		return nil, err
	}
	for iter := 1; iter <= maxIter; iter++ {
		// w = r ⊗ 1/outdeg (importance each page sends per out-link)
		w, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.EWiseMultVector(w, nil, nil, grb.Times[float64], r, invdeg, nil); err != nil {
			return nil, err
		}
		// t = w +.× A  (incoming importance)
		t, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VxM(t, nil, nil, grb.PlusTimes[float64](), w, a, nil); err != nil {
			return nil, err
		}
		// Dangling mass: rank parked on vertices with no out-edges.
		dang, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorApply(dang, degMask, nil, grb.Identity[float64], r, grb.DescRSC); err != nil {
			return nil, err
		}
		dmass, err := grb.VectorReduce(grb.PlusMonoid[float64](), dang)
		if err != nil {
			return nil, err
		}
		base := (1-damping)/float64(n) + damping*dmass/float64(n)
		rnew, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorAssignScalar(rnew, nil, nil, base, grb.All, nil); err != nil {
			return nil, err
		}
		// rnew += damping * t
		ts, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorApplyBindSecond(ts, nil, nil, grb.Times[float64], t, damping, nil); err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector(rnew, nil, nil, grb.Plus[float64], rnew, ts, nil); err != nil {
			return nil, err
		}
		// delta = Σ |rnew - r|
		diff, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector(diff, nil, nil, grb.Minus[float64], rnew, r, nil); err != nil {
			return nil, err
		}
		if err := grb.VectorApply(diff, nil, nil, grb.Abs[float64], diff, nil); err != nil {
			return nil, err
		}
		delta, err := grb.VectorReduce(grb.PlusMonoid[float64](), diff)
		if err != nil {
			return nil, err
		}
		r = rnew
		if delta < tol {
			return &PageRankResult{Ranks: r, Iterations: iter}, nil
		}
	}
	return &PageRankResult{Ranks: r, Iterations: maxIter}, nil
}

// TriangleCount counts the triangles of the undirected graph with symmetric
// boolean adjacency a using the Sandia method: with L the strictly lower
// triangle of A (extracted by the GraphBLAS 2.0 select operation with the
// predefined TriL operator, §VIII), the count is Σ (L ⊕.pair L)⟨L⟩ — a
// masked SpGEMM over the plus-pair structural semiring.
func TriangleCount(a *grb.Matrix[bool]) (int64, error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return 0, err
	}
	l, err := grb.NewMatrix[bool](n, n, opt)
	if err != nil {
		return 0, err
	}
	// L = tril(A, -1): the select operation with the Table IV TriL operator.
	if err := grb.MatrixSelect(l, nil, nil, grb.TriL[bool], a, -1, nil); err != nil {
		return 0, err
	}
	c, err := grb.NewMatrix[int64](n, n, opt)
	if err != nil {
		return 0, err
	}
	plusPair := grb.Semiring[bool, bool, int64]{Add: grb.PlusMonoid[int64](), Mul: grb.Oneb[bool, bool, int64]}
	if err := grb.MxM(c, l, nil, plusPair, l, l, grb.DescS); err != nil {
		return 0, err
	}
	return grb.MatrixReduce(grb.PlusMonoid[int64](), c)
}

// ConnectedComponents labels each vertex of the undirected graph (symmetric
// boolean adjacency) with the smallest vertex index in its component, by
// min-label propagation over the min-first semiring until fixpoint.
func ConnectedComponents(a *grb.Matrix[bool]) (*grb.Vector[int], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	f, err := grb.NewVector[int](n, opt)
	if err != nil {
		return nil, err
	}
	// f(i) = i, built with the ROWINDEX index operator over a dense vector.
	if err := grb.VectorAssignScalar(f, nil, nil, 0, grb.All, nil); err != nil {
		return nil, err
	}
	if err := grb.VectorApplyIndexOp(f, nil, nil, grb.RowIndex[int], f, 0, nil); err != nil {
		return nil, err
	}
	minFirst := grb.Semiring[int, bool, int]{Add: grb.MinMonoid[int](), Mul: grb.First[int, bool]}
	for iter := 0; iter <= n; iter++ {
		prev, err := f.Dup()
		if err != nil {
			return nil, err
		}
		// t(j) = min over in-neighbours i of f(i); then f = min(f, t).
		t, err := grb.NewVector[int](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VxM(t, nil, nil, minFirst, f, a, nil); err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector(f, nil, nil, grb.Min[int], f, t, nil); err != nil {
			return nil, err
		}
		same, err := vectorsEqual(prev, f)
		if err != nil {
			return nil, err
		}
		if same {
			return f, nil
		}
	}
	return f, nil
}

// MIS computes a maximal independent set of the undirected graph (symmetric
// boolean adjacency, no self-loops) with Luby's randomized algorithm: each
// round, every remaining candidate draws a distinct random score; candidates
// that beat all neighbouring candidates join the set, and they and their
// neighbours leave the candidate pool.
func MIS(a *grb.Matrix[bool], seed int64) (*grb.Vector[bool], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	iset, err := grb.NewVector[bool](n, opt)
	if err != nil {
		return nil, err
	}
	candidates, err := grb.NewVector[bool](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.VectorAssignScalar(candidates, nil, nil, true, grb.All, nil); err != nil {
		return nil, err
	}
	maxFirst := grb.Semiring[float64, bool, float64]{Add: grb.MaxMonoid[float64](), Mul: grb.First[float64, bool]}
	empty, err := grb.NewScalar[bool](opt)
	if err != nil {
		return nil, err
	}
	for {
		nc, err := candidates.Nvals()
		if err != nil {
			return nil, err
		}
		if nc == 0 {
			break
		}
		// Distinct random scores on the candidates (a permutation avoids ties).
		inds, _, err := candidates.ExtractTuples()
		if err != nil {
			return nil, err
		}
		perm := rng.Perm(len(inds))
		scores := make([]float64, len(inds))
		for k := range scores {
			scores[k] = float64(perm[k] + 1)
		}
		prob, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := prob.Build(inds, scores, nil); err != nil {
			return nil, err
		}
		// Neighbour maximum among candidates.
		nmax, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VxM(nmax, candidates, nil, maxFirst, prob, a, grb.DescRS); err != nil {
			return nil, err
		}
		// Winners: candidates whose score beats every neighbour...
		win, err := grb.NewVector[bool](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.EWiseMultVector(win, nil, nil, grb.Gt[float64], prob, nmax, nil); err != nil {
			return nil, err
		}
		// ...plus candidates with no candidate neighbour at all.
		nmaxMask, err := grb.AsVectorMaskFunc(nmax, func(float64) bool { return true })
		if err != nil {
			return nil, err
		}
		newMembers, err := grb.NewVector[bool](n, opt)
		if err != nil {
			return nil, err
		}
		// newMembers⟨win (value mask)⟩ = true
		if err := grb.VectorAssignScalar(newMembers, win, nil, true, grb.All, nil); err != nil {
			return nil, err
		}
		// newMembers⟨¬structure(nmax)⟩ ∪= lone candidates
		lone, err := grb.NewVector[bool](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorApply(lone, nmaxMask, nil, grb.Identity[bool], candidates, grb.DescRSC); err != nil {
			return nil, err
		}
		loneMask, err := grb.AsVectorMaskFunc(lone, func(bool) bool { return true })
		if err != nil {
			return nil, err
		}
		if err := grb.VectorAssignScalar(newMembers, loneMask, nil, true, grb.All, grb.DescS); err != nil {
			return nil, err
		}
		nm, err := newMembers.Nvals()
		if err != nil {
			return nil, err
		}
		if nm == 0 {
			// No strict winner this round (should not happen with distinct
			// scores); re-draw.
			continue
		}
		// iset⟨newMembers,structure⟩ = true
		if err := grb.VectorAssignScalar(iset, newMembers, nil, true, grb.All, grb.DescS); err != nil {
			return nil, err
		}
		// Neighbours of the new members.
		neigh, err := grb.NewVector[bool](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VxM(neigh, nil, nil, grb.LOrLAnd(), newMembers, a, nil); err != nil {
			return nil, err
		}
		// Remove new members and their neighbours from the candidate pool.
		nmMask, err := grb.AsVectorMaskFunc(newMembers, func(bool) bool { return true })
		if err != nil {
			return nil, err
		}
		if err := grb.VectorAssignScalarObj(candidates, nmMask, nil, empty, grb.All, grb.DescS); err != nil {
			return nil, err
		}
		neighMask, err := grb.AsVectorMaskFunc(neigh, func(bool) bool { return true })
		if err != nil {
			return nil, err
		}
		if err := grb.VectorAssignScalarObj(candidates, neighMask, nil, empty, grb.All, grb.DescS); err != nil {
			return nil, err
		}
	}
	return iset, nil
}

// KCore returns the membership vector of the k-core of the undirected graph
// (symmetric boolean adjacency): the maximal subgraph in which every vertex
// has degree ≥ k. Vertices in the core have a true entry.
func KCore(a *grb.Matrix[bool], k int) (*grb.Vector[bool], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	alive, err := grb.NewVector[bool](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.VectorAssignScalar(alive, nil, nil, true, grb.All, nil); err != nil {
		return nil, err
	}
	countAlive := grb.Semiring[bool, int, int]{Add: grb.PlusMonoid[int](), Mul: grb.Second[bool, int]}
	empty, err := grb.NewScalar[bool](opt)
	if err != nil {
		return nil, err
	}
	for {
		na, err := alive.Nvals()
		if err != nil {
			return nil, err
		}
		if na == 0 {
			break
		}
		// aliveInt(i) = 1 for alive vertices.
		aliveInt, err := grb.NewVector[int](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorApply(aliveInt, nil, nil, func(bool) int { return 1 }, alive, nil); err != nil {
			return nil, err
		}
		// deg⟨alive,structure,replace⟩ = A +.second aliveInt: surviving degree.
		deg, err := grb.NewVector[int](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.MxV(deg, alive, nil, countAlive, a, aliveInt, grb.DescRS); err != nil {
			return nil, err
		}
		// Vertices failing the core condition: alive with degree < k
		// (including alive vertices with no surviving neighbours).
		drop, err := grb.NewVector[int](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorSelect(drop, nil, nil, grb.ValueLT[int], deg, k, nil); err != nil {
			return nil, err
		}
		// Alive vertices with no deg entry have degree 0: also dropped.
		degMask, err := grb.AsVectorMaskFunc(deg, func(int) bool { return true })
		if err != nil {
			return nil, err
		}
		zero, err := grb.NewVector[int](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorApply(zero, degMask, nil, func(bool) int { return 0 }, alive, grb.DescRSC); err != nil {
			return nil, err
		}
		if k > 0 {
			if err := grb.EWiseAddVector(drop, nil, nil, grb.Min[int], drop, zero, nil); err != nil {
				return nil, err
			}
		}
		nd, err := drop.Nvals()
		if err != nil {
			return nil, err
		}
		if nd == 0 {
			break
		}
		dropMask, err := grb.AsVectorMaskFunc(drop, func(int) bool { return true })
		if err != nil {
			return nil, err
		}
		if err := grb.VectorAssignScalarObj(alive, dropMask, nil, empty, grb.All, grb.DescS); err != nil {
			return nil, err
		}
	}
	return alive, nil
}

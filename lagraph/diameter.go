package lagraph

import grb "github.com/grblas/grb"

// Eccentricity returns the BFS eccentricity of src — the maximum level over
// reachable vertices — together with a vertex attaining it.
func Eccentricity(a *grb.Matrix[bool], src grb.Index) (ecc int, far grb.Index, err error) {
	levels, err := BFSLevels(a, src)
	if err != nil {
		return 0, 0, err
	}
	inds, vals, err := levels.ExtractTuples()
	if err != nil {
		return 0, 0, err
	}
	far = src
	for k := range inds {
		if vals[k] > ecc {
			ecc = vals[k]
			far = inds[k]
		}
	}
	return ecc, far, nil
}

// PseudoDiameter estimates the diameter of the (undirected, connected
// component containing start) graph by the classic double-sweep heuristic:
// repeatedly hop to the farthest vertex of a BFS until the eccentricity
// stops growing. The result is a lower bound on the true diameter and is
// exact on trees.
func PseudoDiameter(a *grb.Matrix[bool], start grb.Index) (int, error) {
	n, err := squareDim(a)
	if err != nil {
		return 0, err
	}
	if start < 0 || start >= n {
		return 0, &grb.Error{Info: grb.InvalidIndex, Msg: "PseudoDiameter: start out of range"}
	}
	best := -1
	src := start
	for hops := 0; hops <= n; hops++ {
		ecc, far, err := Eccentricity(a, src)
		if err != nil {
			return 0, err
		}
		if ecc <= best {
			return best, nil
		}
		best = ecc
		src = far
	}
	return best, nil
}

// DegreeHistogram returns a map from out-degree to the number of vertices
// with that degree (degree 0 counted from the matrix dimension). Computed
// with a structural apply + row reduction — the GraphBLAS way to derive
// degree statistics.
func DegreeHistogram(a *grb.Matrix[bool]) (map[int]int, error) {
	n, err := a.Nrows()
	if err != nil {
		return nil, err
	}
	ones, err := grb.NewMatrix[int](n, n)
	if err != nil {
		return nil, err
	}
	nc, err := a.Ncols()
	if err != nil {
		return nil, err
	}
	if nc != n {
		ones, err = grb.NewMatrix[int](n, nc)
		if err != nil {
			return nil, err
		}
	}
	if err := grb.MatrixApply(ones, nil, nil, func(bool) int { return 1 }, a, nil); err != nil {
		return nil, err
	}
	deg, err := grb.NewVector[int](n)
	if err != nil {
		return nil, err
	}
	if err := grb.MatrixReduceToVector(deg, nil, nil, grb.PlusMonoid[int](), ones, nil); err != nil {
		return nil, err
	}
	_, vals, err := deg.ExtractTuples()
	if err != nil {
		return nil, err
	}
	hist := map[int]int{}
	for _, d := range vals {
		hist[d]++
	}
	if zero := n - len(vals); zero > 0 {
		hist[0] = zero
	}
	return hist, nil
}

package lagraph

import grb "github.com/grblas/grb"

// BFSParentsLegacy computes the same parent vector as BFSParents but the
// way a GraphBLAS 1.X program had to: without index-unary operators there
// is no in-library way to replace a frontier's values with their own
// indices, so each iteration round-trips the wavefront through host memory
// — extract the tuples, overwrite the values array with the indices, and
// rebuild the vector. This is the §II motivation of the GraphBLAS 2.0 paper
// made concrete at algorithm level ("those index values were stored in the
// values array ... the same information is stored and streamed twice");
// BenchmarkAblation_BFSParents_* measures the difference. Kept for that
// comparison — use BFSParents in real code.
func BFSParentsLegacy(a *grb.Matrix[bool], src grb.Index) (*grb.Vector[int], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	parents, err := grb.NewVector[int](n, opt)
	if err != nil {
		return nil, err
	}
	wavefront, err := grb.NewVector[int](n, opt)
	if err != nil {
		return nil, err
	}
	if err := wavefront.SetElement(src, src); err != nil {
		return nil, err
	}
	minFirst := grb.Semiring[int, bool, int]{Add: grb.MinMonoid[int](), Mul: grb.First[int, bool]}
	for {
		nv, err := wavefront.Nvals()
		if err != nil {
			return nil, err
		}
		if nv == 0 {
			break
		}
		wmask, err := grb.AsVectorMaskFunc(wavefront, func(int) bool { return true })
		if err != nil {
			return nil, err
		}
		if err := grb.VectorAssign(parents, wmask, nil, wavefront, grb.All, grb.DescS); err != nil {
			return nil, err
		}
		// The 1.X workaround: unload the wavefront into host arrays, copy
		// the index array over the values array, and reload. (GraphBLAS 2.0
		// replaces these three steps with one apply(ROWINDEX).)
		idx, _, err := wavefront.ExtractTuples()
		if err != nil {
			return nil, err
		}
		vals := make([]int, len(idx))
		copy(vals, idx) // the duplicated stream §II describes
		if err := wavefront.Clear(); err != nil {
			return nil, err
		}
		if err := wavefront.Build(idx, vals, nil); err != nil {
			return nil, err
		}
		pmask, err := grb.AsVectorMaskFunc(parents, func(int) bool { return true })
		if err != nil {
			return nil, err
		}
		if err := grb.VxM(wavefront, pmask, nil, minFirst, wavefront, a, grb.DescRSC); err != nil {
			return nil, err
		}
	}
	return parents, nil
}

package lagraph

import (
	"math"
	"testing"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
)

// refBrandes is a plain adjacency-list Brandes implementation used as the
// golden reference for the GraphBLAS betweenness centrality.
func refBrandes(n int, adj [][]int, sources []int) []float64 {
	bc := make([]float64, n)
	for _, s := range sources {
		// BFS with path counting
		sigma := make([]float64, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		var order []int
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		delta := make([]float64, n)
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range adj[w] {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

func adjList(g gen.Graph) [][]int {
	adj := make([][]int, g.N)
	for k := range g.Src {
		adj[g.Src[k]] = append(adj[g.Src[k]], g.Dst[k])
	}
	return adj
}

func TestBetweennessCentralityPath(t *testing.T) {
	initLib(t)
	// Undirected path 0-1-2-3-4: exact BC of the middle vertex (2) from all
	// sources is 2*(2*3-2)/... easier: compare to the reference.
	g := gen.Path(5).Symmetrize()
	a := adjacency(t, g)
	sources := []grb.Index{0, 1, 2, 3, 4}
	got, err := BetweennessCentrality(a, sources)
	if err != nil {
		t.Fatal(err)
	}
	want := refBrandes(g.N, adjList(g), sources)
	for v := 0; v < g.N; v++ {
		gv, _ := ck2(got.ExtractElement(v))
		if math.Abs(gv-want[v]) > 1e-9 {
			t.Fatalf("bc(%d) = %v, want %v", v, gv, want[v])
		}
	}
	// sanity: path interior dominates endpoints
	b2, _ := ck2(got.ExtractElement(2))
	b0, _ := ck2(got.ExtractElement(0))
	if b2 <= b0 {
		t.Fatalf("middle (%v) should exceed endpoint (%v)", b2, b0)
	}
}

func TestBetweennessCentralityRandomAgainstReference(t *testing.T) {
	initLib(t)
	g := gen.ErdosRenyi(40, 160, 11).Symmetrize()
	a := adjacency(t, g)
	sources := []grb.Index{0, 5, 17, 23}
	got, err := BetweennessCentrality(a, sources)
	if err != nil {
		t.Fatal(err)
	}
	srcInts := []int{0, 5, 17, 23}
	want := refBrandes(g.N, adjList(g), srcInts)
	for v := 0; v < g.N; v++ {
		gv, _ := ck2(got.ExtractElement(v))
		if math.Abs(gv-want[v]) > 1e-9 {
			t.Fatalf("bc(%d) = %v, want %v", v, gv, want[v])
		}
	}
}

func TestBetweennessCentralityStar(t *testing.T) {
	initLib(t)
	// Star with center 0 and 5 leaves, all sources: center's BC is
	// (n-1)(n-2) = 20 (each ordered leaf pair's unique path passes it).
	g := gen.Star(6)
	a := adjacency(t, g)
	var sources []grb.Index
	for i := 0; i < 6; i++ {
		sources = append(sources, i)
	}
	got, err := BetweennessCentrality(a, sources)
	if err != nil {
		t.Fatal(err)
	}
	center, _ := ck2(got.ExtractElement(0))
	if math.Abs(center-20) > 1e-9 {
		t.Fatalf("center BC = %v, want 20", center)
	}
	leaf, _ := ck2(got.ExtractElement(3))
	if math.Abs(leaf) > 1e-9 {
		t.Fatalf("leaf BC = %v, want 0", leaf)
	}
	wantCode := func(err error, c grb.Info) {
		if grb.Code(err) != c {
			t.Fatalf("err = %v, want %v", err, c)
		}
	}
	_, err = BetweennessCentrality(a, []grb.Index{99})
	wantCode(err, grb.InvalidIndex)
}

func TestClusteringCoefficient(t *testing.T) {
	initLib(t)
	// K4: every vertex has lcc 1.
	var src, dst []int
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				src = append(src, i)
				dst = append(dst, j)
			}
		}
	}
	k4 := adjacency(t, gen.Graph{N: 4, Src: src, Dst: dst})
	lcc, err := ClusteringCoefficient(k4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		x, _ := ck2(lcc.ExtractElement(v))
		if math.Abs(x-1) > 1e-9 {
			t.Fatalf("K4 lcc(%d) = %v, want 1", v, x)
		}
	}
	// Star: center has many neighbours but no closing edges -> 0.
	star := adjacency(t, gen.Star(6))
	lccS, err := ClusteringCoefficient(star)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := ck2(lccS.ExtractElement(0))
	if c != 0 {
		t.Fatalf("star center lcc = %v", c)
	}
	// Triangle plus a pendant on vertex 0: lcc(0) = 2*1/(3*2) = 1/3.
	gp := gen.Graph{N: 4,
		Src: []int{0, 1, 2, 0},
		Dst: []int{1, 2, 0, 3}}.Symmetrize()
	ap := adjacency(t, gp)
	lccP, err := ClusteringCoefficient(ap)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ck2(lccP.ExtractElement(0))
	if math.Abs(x-1.0/3) > 1e-9 {
		t.Fatalf("lcc(0) = %v, want 1/3", x)
	}
	y, _ := ck2(lccP.ExtractElement(1))
	if math.Abs(y-1) > 1e-9 {
		t.Fatalf("lcc(1) = %v, want 1", y)
	}
}

func TestKTruss(t *testing.T) {
	initLib(t)
	// K5 with a pendant triangle hanging off vertex 0 through a bridge:
	// K5 edges survive the 4-truss; the bridge and triangle do not.
	var src, dst []int
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				src = append(src, i)
				dst = append(dst, j)
			}
		}
	}
	// triangle 5-6-7 and bridge 0-5
	extra := [][2]int{{5, 6}, {6, 7}, {7, 5}, {0, 5}}
	for _, e := range extra {
		src = append(src, e[0], e[1])
		dst = append(dst, e[1], e[0])
	}
	g := gen.Graph{N: 8, Src: src, Dst: dst}
	a := adjacency(t, g)

	t4, err := KTruss(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	nv := ck1(t4.Nvals())
	if nv != 20 { // K5 has 20 directed edges
		t.Fatalf("4-truss edges = %d, want 20", nv)
	}
	if _, ok := ck2(t4.ExtractElement(5, 6)); ok {
		t.Fatal("triangle edge should be pruned from 4-truss")
	}
	if v, ok := ck2(t4.ExtractElement(0, 1)); !ok || !v {
		t.Fatal("K5 edge missing from 4-truss")
	}

	// 3-truss keeps K5 and the pendant triangle but drops the bridge.
	t3, err := KTruss(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ck2(t3.ExtractElement(0, 5)); ok {
		t.Fatal("bridge should be pruned from 3-truss")
	}
	if _, ok := ck2(t3.ExtractElement(5, 6)); !ok {
		t.Fatal("triangle should survive 3-truss")
	}
	// k too small
	if _, err := KTruss(a, 2); grb.Code(err) != grb.InvalidValue {
		t.Fatalf("k=2: %v", err)
	}
	// 6-truss of K5 is empty
	t6, err := KTruss(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	nv6 := ck1(t6.Nvals())
	if nv6 != 0 {
		t.Fatalf("6-truss edges = %d, want 0", nv6)
	}
}

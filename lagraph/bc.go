package lagraph

import grb "github.com/grblas/grb"

// BetweennessCentrality computes the (unnormalized) betweenness-centrality
// dependency scores accumulated over the given source vertices, using the
// GraphBLAS formulation of Brandes' algorithm: a forward breadth-first
// sweep that counts shortest paths per level (plus-first semiring over a
// complemented structural mask), followed by a backward sweep that pushes
// dependencies down the level structure with element-wise arithmetic.
// Summing over all vertices as sources gives exact betweenness centrality;
// a sampled subset gives the usual approximation.
//
// The adjacency matrix must be boolean; for undirected graphs pass a
// symmetric pattern.
func BetweennessCentrality(a *grb.Matrix[bool], sources []grb.Index) (*grb.Vector[float64], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	bc, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.VectorAssignScalar(bc, nil, nil, 0, grb.All, nil); err != nil {
		return nil, err
	}
	plusFirst := grb.Semiring[float64, bool, float64]{Add: grb.PlusMonoid[float64](), Mul: grb.First[float64, bool]}
	plusSecond := grb.Semiring[bool, float64, float64]{Add: grb.PlusMonoid[float64](), Mul: grb.Second[bool, float64]}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, &grb.Error{Info: grb.InvalidIndex, Msg: "BetweennessCentrality: source out of range"}
		}
		// ---- forward sweep: count shortest paths per BFS level ----
		paths, err := grb.NewVector[float64](n, opt) // σ: total shortest paths
		if err != nil {
			return nil, err
		}
		if err := paths.SetElement(1, s); err != nil {
			return nil, err
		}
		frontier, err := paths.Dup()
		if err != nil {
			return nil, err
		}
		var levels []*grb.Vector[float64] // per-level path counts
		lv0, err := frontier.Dup()
		if err != nil {
			return nil, err
		}
		levels = append(levels, lv0)
		for {
			pmask, err := grb.AsVectorMaskFunc(paths, func(float64) bool { return true })
			if err != nil {
				return nil, err
			}
			// frontier⟨¬paths,structure,replace⟩ = frontier +.first A
			if err := grb.VxM(frontier, pmask, nil, plusFirst, frontier, a, grb.DescRSC); err != nil {
				return nil, err
			}
			nv, err := frontier.Nvals()
			if err != nil {
				return nil, err
			}
			if nv == 0 {
				break
			}
			snap, err := frontier.Dup()
			if err != nil {
				return nil, err
			}
			levels = append(levels, snap)
			if err := grb.EWiseAddVector(paths, nil, nil, grb.Plus[float64], paths, frontier, nil); err != nil {
				return nil, err
			}
		}
		// ---- backward sweep: dependency accumulation ----
		delta, err := grb.NewVector[float64](n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.VectorAssignScalar(delta, nil, nil, 0, grb.All, nil); err != nil {
			return nil, err
		}
		for d := len(levels) - 1; d >= 1; d-- {
			// w(v) = (1 + delta(v)) / σ(v) for v in level d
			onePlus, err := grb.NewVector[float64](n, opt)
			if err != nil {
				return nil, err
			}
			if err := grb.VectorApplyBindSecond(onePlus, nil, nil, grb.Plus[float64], delta, 1.0, nil); err != nil {
				return nil, err
			}
			w, err := grb.NewVector[float64](n, opt)
			if err != nil {
				return nil, err
			}
			if err := grb.EWiseMultVector(w, nil, nil, grb.Div[float64], onePlus, paths, nil); err != nil {
				return nil, err
			}
			lvMask, err := grb.AsVectorMaskFunc(levels[d], func(float64) bool { return true })
			if err != nil {
				return nil, err
			}
			wd, err := grb.NewVector[float64](n, opt)
			if err != nil {
				return nil, err
			}
			if err := grb.VectorApply(wd, lvMask, nil, grb.Identity[float64], w, grb.DescRS); err != nil {
				return nil, err
			}
			// push to predecessors: t(u) = Σ_v A(u,v) wd(v)
			t, err := grb.NewVector[float64](n, opt)
			if err != nil {
				return nil, err
			}
			if err := grb.MxV(t, nil, nil, plusSecond, a, wd, nil); err != nil {
				return nil, err
			}
			// delta(u) += σ(u) * t(u) for u in level d-1
			contrib, err := grb.NewVector[float64](n, opt)
			if err != nil {
				return nil, err
			}
			if err := grb.EWiseMultVector(contrib, nil, nil, grb.Times[float64], paths, t, nil); err != nil {
				return nil, err
			}
			prevMask, err := grb.AsVectorMaskFunc(levels[d-1], func(float64) bool { return true })
			if err != nil {
				return nil, err
			}
			sel, err := grb.NewVector[float64](n, opt)
			if err != nil {
				return nil, err
			}
			if err := grb.VectorApply(sel, prevMask, nil, grb.Identity[float64], contrib, grb.DescRS); err != nil {
				return nil, err
			}
			if err := grb.EWiseAddVector(delta, nil, nil, grb.Plus[float64], delta, sel, nil); err != nil {
				return nil, err
			}
		}
		// The source's own dependency is excluded by convention.
		if err := delta.SetElement(0, s); err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector(bc, nil, nil, grb.Plus[float64], bc, delta, nil); err != nil {
			return nil, err
		}
	}
	return bc, nil
}

package lagraph

import grb "github.com/grblas/grb"

// EgoNet extracts the h-hop ego network of src: the subgraph induced on
// every vertex reachable from src in at most hops steps (following
// out-edges), src included. It returns the induced adjacency submatrix
// together with the sorted original vertex ids, so sub(i, j) is the edge
// verts[i] → verts[j] of the input graph.
//
// The reach set is computed structurally — a boolean frontier advanced by
// vxm over an (∨, one) semiring, so edge weights of any type T only steer
// the pattern — and the induced subgraph is one GrB_extract with the reach
// set as both row and column index list, the §VIII selection machinery
// doing the gather. Intermediates inherit a's execution context, so a
// per-request deadline or memory budget bounds the whole extraction.
func EgoNet[T any](a *grb.Matrix[T], src grb.Index, hops int) (*grb.Matrix[T], []grb.Index, error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, nil, err
	}
	if src < 0 || src >= n {
		return nil, nil, &grb.Error{Info: grb.InvalidIndex, Msg: "EgoNet: src out of range"}
	}
	if hops < 0 {
		return nil, nil, &grb.Error{Info: grb.InvalidValue, Msg: "EgoNet: hops must be non-negative"}
	}
	reached, err := grb.NewVector[bool](n, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := reached.SetElement(true, src); err != nil {
		return nil, nil, err
	}
	frontier, err := grb.NewVector[bool](n, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := frontier.SetElement(true, src); err != nil {
		return nil, nil, err
	}
	// (∨, one) over (bool, T): any incident edge marks the product true.
	structSR := grb.Semiring[bool, T, bool]{
		Add: grb.LOrMonoid(),
		Mul: func(bool, T) bool { return true },
	}
	for h := 0; h < hops; h++ {
		// frontier⟨¬reached,structure,replace⟩ = frontier ∨.one A
		if err := grb.VxM(frontier, reached, nil, structSR, frontier, a, grb.DescRSC); err != nil {
			return nil, nil, err
		}
		nv, err := frontier.Nvals()
		if err != nil {
			return nil, nil, err
		}
		if nv == 0 {
			break
		}
		// reached⟨frontier,structure⟩ = true
		if err := grb.VectorAssignScalar(reached, frontier, nil, true, grb.All, grb.DescS); err != nil {
			return nil, nil, err
		}
	}
	verts, _, err := reached.ExtractTuples()
	if err != nil {
		return nil, nil, err
	}
	sub, err := grb.NewMatrix[T](len(verts), len(verts), opt)
	if err != nil {
		return nil, nil, err
	}
	if err := grb.MatrixExtract(sub, nil, nil, a, verts, verts, nil); err != nil {
		return nil, nil, err
	}
	return sub, verts, nil
}

package lagraph

import grb "github.com/grblas/grb"

// ClusteringCoefficient computes the local clustering coefficient of every
// vertex of the undirected graph (symmetric boolean adjacency, no self
// loops): lcc(v) = 2·tri(v) / (deg(v)·(deg(v)−1)), where tri(v) counts
// triangles through v. Vertices of degree < 2 get coefficient 0. The
// triangle counts come from the masked structural product (A +.pair A)⟨A⟩,
// whose row sums double-count each triangle at its apex.
func ClusteringCoefficient(a *grb.Matrix[bool]) (*grb.Vector[float64], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	// W⟨A⟩ = A +.pair A: W(u,v) = #common neighbours per adjacent pair.
	plusPair := grb.Semiring[bool, bool, float64]{Add: grb.PlusMonoid[float64](), Mul: grb.Oneb[bool, bool, float64]}
	w, err := grb.NewMatrix[float64](n, n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.MxM(w, a, nil, plusPair, a, a, grb.DescS); err != nil {
		return nil, err
	}
	// tri2(v) = Σ_u W(v,u) = 2 · tri(v)
	tri2, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.MatrixReduceToVector(tri2, nil, nil, grb.PlusMonoid[float64](), w, nil); err != nil {
		return nil, err
	}
	// deg(v) = row degree of A.
	ones, err := grb.NewMatrix[float64](n, n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.MatrixApply(ones, nil, nil, func(bool) float64 { return 1 }, a, nil); err != nil {
		return nil, err
	}
	deg, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.MatrixReduceToVector(deg, nil, nil, grb.PlusMonoid[float64](), ones, nil); err != nil {
		return nil, err
	}
	// denom(v) = deg(v)·(deg(v)−1), kept only where ≥ 2 neighbours.
	denom, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.VectorApply(denom, nil, nil, func(d float64) float64 { return d * (d - 1) }, deg, nil); err != nil {
		return nil, err
	}
	if err := grb.VectorSelect(denom, nil, nil, grb.ValueGT[float64], denom, 0, nil); err != nil {
		return nil, err
	}
	// lcc = tri2 / denom on the intersection; degree<2 vertices get 0.
	lcc, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.VectorAssignScalar(lcc, nil, nil, 0, grb.All, nil); err != nil {
		return nil, err
	}
	ratio, err := grb.NewVector[float64](n, opt)
	if err != nil {
		return nil, err
	}
	if err := grb.EWiseMultVector(ratio, nil, nil, grb.Div[float64], tri2, denom, nil); err != nil {
		return nil, err
	}
	rmask, err := grb.AsVectorMaskFunc(ratio, func(float64) bool { return true })
	if err != nil {
		return nil, err
	}
	if err := grb.VectorAssign(lcc, rmask, nil, ratio, grb.All, grb.DescS); err != nil {
		return nil, err
	}
	return lcc, nil
}

// KTruss computes the k-truss of the undirected graph (symmetric boolean
// adjacency, no self loops): the maximal subgraph in which every edge
// participates in at least k−2 triangles. It iterates support counting via
// the masked structural product S⟨C⟩ = C +.pair C and drops edges whose
// support falls below k−2 until a fixpoint. The result is the boolean
// adjacency of the truss.
func KTruss(a *grb.Matrix[bool], k int) (*grb.Matrix[bool], error) {
	n, opt, err := dimAndCtx(a)
	if err != nil {
		return nil, err
	}
	if k < 3 {
		return nil, &grb.Error{Info: grb.InvalidValue, Msg: "KTruss: k must be at least 3"}
	}
	c, err := a.Dup()
	if err != nil {
		return nil, err
	}
	plusPair := grb.Semiring[bool, bool, int]{Add: grb.PlusMonoid[int](), Mul: grb.Oneb[bool, bool, int]}
	for {
		before, err := c.Nvals()
		if err != nil {
			return nil, err
		}
		if before == 0 {
			return c, nil
		}
		// S⟨C,structure⟩ = C +.pair C: edge support counts.
		s, err := grb.NewMatrix[int](n, n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.MxM(s, c, nil, plusPair, c, c, grb.DescS); err != nil {
			return nil, err
		}
		// Keep edges with support ≥ k−2.
		if err := grb.MatrixSelect(s, nil, nil, grb.ValueGE[int], s, k-2, nil); err != nil {
			return nil, err
		}
		keep, err := grb.AsMaskFunc(s, func(int) bool { return true })
		if err != nil {
			return nil, err
		}
		next, err := grb.NewMatrix[bool](n, n, opt)
		if err != nil {
			return nil, err
		}
		if err := grb.MatrixApply(next, keep, nil, grb.Identity[bool], c, grb.DescRS); err != nil {
			return nil, err
		}
		after, err := next.Nvals()
		if err != nil {
			return nil, err
		}
		c = next
		if after == before {
			return c, nil
		}
	}
}

package lagraph

import (
	"container/heap"
	"math"
	"testing"

	"github.com/grblas/grb/gen"
)

// Cross-validation of every algorithm against a classical non-GraphBLAS
// reference implementation on random graphs.

type pqItem struct {
	v int
	d float64
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; x := old[len(old)-1]; *p = old[:len(old)-1]; return x }

// refDijkstra is the golden SSSP for nonnegative weights.
func refDijkstra(n int, adj [][]int, w [][]float64, src int) []float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		for k, u := range adj[it.v] {
			nd := it.d + w[it.v][k]
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(h, pqItem{u, nd})
			}
		}
	}
	return dist
}

func TestSSSPAgainstDijkstra(t *testing.T) {
	initLib(t)
	g := gen.ErdosRenyi(60, 400, 5)
	wts := gen.UniformWeights(g, 0.5, 10, 5)
	a := weighted(t, g, wts)
	adj := make([][]int, g.N)
	ww := make([][]float64, g.N)
	for k := range g.Src {
		adj[g.Src[k]] = append(adj[g.Src[k]], g.Dst[k])
		ww[g.Src[k]] = append(ww[g.Src[k]], wts[k])
	}
	for _, src := range []int{0, 13, 42} {
		d, err := SSSP(a, src)
		if err != nil {
			t.Fatal(err)
		}
		want := refDijkstra(g.N, adj, ww, src)
		for v := 0; v < g.N; v++ {
			gv, ok := ck2(d.ExtractElement(v))
			if math.IsInf(want[v], 1) {
				if ok {
					t.Fatalf("src %d: vertex %d unreachable but got %v", src, v, gv)
				}
				continue
			}
			if !ok || math.Abs(gv-want[v]) > 1e-9 {
				t.Fatalf("src %d: d(%d) = %v,%v want %v", src, v, gv, ok, want[v])
			}
		}
	}
}

// refComponents is union-find connected components.
func refComponents(n int, src, dst []int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for k := range src {
		a, b := find(src[k]), find(dst[k])
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = find(i)
	}
	return out
}

func TestConnectedComponentsAgainstUnionFind(t *testing.T) {
	initLib(t)
	// sparse graph so multiple components exist
	g := gen.ErdosRenyi(80, 60, 9).Symmetrize()
	a := adjacency(t, g)
	f, err := ConnectedComponents(a)
	if err != nil {
		t.Fatal(err)
	}
	want := refComponents(g.N, g.Src, g.Dst)
	// our labels are the min vertex id of the component; union-find with
	// min-merge gives the same canonical labels.
	for v := 0; v < g.N; v++ {
		gv, ok := ck2(f.ExtractElement(v))
		if !ok || gv != want[v] {
			t.Fatalf("comp(%d) = %v,%v want %v", v, gv, ok, want[v])
		}
	}
}

// refTriangles brute-force counts triangles.
func refTriangles(n int, src, dst []int) int64 {
	has := make(map[[2]int]bool, len(src))
	for k := range src {
		has[[2]int{src[k], dst[k]}] = true
	}
	adj := make([][]int, n)
	for k := range src {
		if src[k] < dst[k] {
			adj[src[k]] = append(adj[src[k]], dst[k])
		}
	}
	var count int64
	for u := 0; u < n; u++ {
		for i := 0; i < len(adj[u]); i++ {
			for j := i + 1; j < len(adj[u]); j++ {
				if has[[2]int{adj[u][i], adj[u][j]}] {
					count++
				}
			}
		}
	}
	return count
}

func TestTriangleCountAgainstBruteForce(t *testing.T) {
	initLib(t)
	for _, seed := range []int64{1, 2, 3} {
		g := gen.ErdosRenyi(40, 300, seed).Symmetrize()
		a := adjacency(t, g)
		got, err := TriangleCount(a)
		if err != nil {
			t.Fatal(err)
		}
		want := refTriangles(g.N, g.Src, g.Dst)
		if got != want {
			t.Fatalf("seed %d: triangles = %d, want %d", seed, got, want)
		}
	}
}

// refPageRank is the plain dense power iteration.
func refPageRank(n int, src, dst []int, damping float64, iters int) []float64 {
	outdeg := make([]float64, n)
	for _, s := range src {
		outdeg[s]++
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outdeg[v] == 0 {
				dangling += r[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for i := range next {
			next[i] = base
		}
		for k := range src {
			next[dst[k]] += damping * r[src[k]] / outdeg[src[k]]
		}
		r = next
	}
	return r
}

func TestPageRankAgainstPowerIteration(t *testing.T) {
	initLib(t)
	g := gen.ErdosRenyi(50, 300, 21)
	a := weighted(t, g, gen.UnitWeights[float64](g))
	res, err := PageRank(a, 0.85, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := refPageRank(g.N, g.Src, g.Dst, 0.85, 100)
	for v := 0; v < g.N; v++ {
		gv, ok := ck2(res.Ranks.ExtractElement(v))
		if !ok || math.Abs(gv-want[v]) > 1e-8 {
			t.Fatalf("rank(%d) = %v,%v want %v", v, gv, ok, want[v])
		}
	}
}

// refBFS is plain queue BFS.
func refBFS(n int, adj [][]int, src int) []int {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := []int{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range adj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				q = append(q, u)
			}
		}
	}
	return dist
}

func TestBFSAgainstQueueBFS(t *testing.T) {
	initLib(t)
	g := gen.Graph500RMAT(9, 8, 13).Symmetrize()
	a := adjacency(t, g)
	adj := adjList(g)
	for _, src := range []int{0, 7, 100} {
		levels, err := BFSLevels(a, src)
		if err != nil {
			t.Fatal(err)
		}
		want := refBFS(g.N, adj, src)
		for v := 0; v < g.N; v++ {
			gv, ok := ck2(levels.ExtractElement(v))
			if want[v] < 0 {
				if ok {
					t.Fatalf("vertex %d unreachable but level %d", v, gv)
				}
				continue
			}
			if !ok || gv != want[v] {
				t.Fatalf("level(%d) = %d,%v want %d", v, gv, ok, want[v])
			}
		}
		// parent tree validity on the same graph
		parents, err := BFSParents(a, src)
		if err != nil {
			t.Fatal(err)
		}
		pi, px := ck2(parents.ExtractTuples())
		if len(pi) != 0 {
			reached := 0
			for _, w := range want {
				if w >= 0 {
					reached++
				}
			}
			if len(pi) != reached {
				t.Fatalf("parents cover %d vertices, want %d", len(pi), reached)
			}
		}
		for k := range pi {
			v, p := pi[k], px[k]
			if v == src {
				if p != src {
					t.Fatalf("parent(src) = %d", p)
				}
				continue
			}
			if want[p] != want[v]-1 {
				t.Fatalf("parent(%d)=%d at level %d, vertex at %d", v, p, want[p], want[v])
			}
		}
	}
}

func TestMISOnRandomGraphs(t *testing.T) {
	initLib(t)
	for _, seed := range []int64{3, 4} {
		g := gen.ErdosRenyi(60, 300, seed).Symmetrize()
		a := adjacency(t, g)
		iset, err := MIS(a, seed)
		if err != nil {
			t.Fatal(err)
		}
		inds, _ := ck2(iset.ExtractTuples())
		member := map[int]bool{}
		for _, i := range inds {
			member[i] = true
		}
		adj := adjList(g)
		for k := range g.Src {
			if member[g.Src[k]] && member[g.Dst[k]] {
				t.Fatal("not independent")
			}
		}
		for v := 0; v < g.N; v++ {
			if member[v] {
				continue
			}
			ok := false
			for _, u := range adj[v] {
				if member[u] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("vertex %d uncovered", v)
			}
		}
	}
}

package lagraph

import (
	"math"
	"testing"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
)

func initLib(t *testing.T) {
	t.Helper()
	_ = grb.Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	if err := grb.Init(grb.NonBlocking); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = grb.Finalize() }) //grblint:ignore infocheck -- best-effort teardown
}

// adjacency builds a boolean adjacency matrix from a generated graph.
func adjacency(t *testing.T, g gen.Graph) *grb.Matrix[bool] {
	t.Helper()
	a, err := grb.NewMatrix[bool](g.N, g.N)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() > 0 {
		if err := a.Build(g.Src, g.Dst, gen.BoolWeights(g), grb.LOr); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func weighted(t *testing.T, g gen.Graph, w []float64) *grb.Matrix[float64] {
	t.Helper()
	a, err := grb.NewMatrix[float64](g.N, g.N)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() > 0 {
		if err := a.Build(g.Src, g.Dst, w, grb.Plus[float64]); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestBFSLevelsPath(t *testing.T) {
	initLib(t)
	a := adjacency(t, gen.Path(5))
	levels, err := BFSLevels(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v, ok, err := levels.ExtractElement(i)
		if err != nil || !ok {
			t.Fatalf("level(%d) missing: %v", i, err)
		}
		if v != i {
			t.Fatalf("level(%d) = %d, want %d", i, v, i)
		}
	}
}

func TestBFSLevelsDisconnected(t *testing.T) {
	initLib(t)
	g := gen.Path(3)
	g.N = 5 // vertices 3,4 isolated
	a := adjacency(t, g)
	levels, err := BFSLevels(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	nv := ck1(levels.Nvals())
	if nv != 3 {
		t.Fatalf("reached %d vertices, want 3", nv)
	}
}

func TestBFSParentsStar(t *testing.T) {
	initLib(t)
	a := adjacency(t, gen.Star(6))
	parents, err := BFSParents(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0, ok := ck2(parents.ExtractElement(0))
	if !ok || p0 != 0 {
		t.Fatalf("parent(0) = %d,%v want 0", p0, ok)
	}
	for i := 1; i < 6; i++ {
		p, ok := ck2(parents.ExtractElement(i))
		if !ok || p != 0 {
			t.Fatalf("parent(%d) = %d,%v want 0", i, p, ok)
		}
	}
}

func TestSSSPPathWeights(t *testing.T) {
	initLib(t)
	g := gen.Path(4)
	a := weighted(t, g, []float64{1, 2, 3})
	d, err := SSSP(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3, 6}
	for i, wv := range want {
		v, ok := ck2(d.ExtractElement(i))
		if !ok || v != wv {
			t.Fatalf("d(%d) = %v,%v want %v", i, v, ok, wv)
		}
	}
}

func TestPageRankRing(t *testing.T) {
	initLib(t)
	g := gen.Ring(10)
	a := weighted(t, g, gen.UnitWeights[float64](g))
	res, err := PageRank(a, 0.85, 1e-9, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect symmetry: every vertex has rank 1/n.
	for i := 0; i < 10; i++ {
		v, ok := ck2(res.Ranks.ExtractElement(i))
		if !ok || math.Abs(v-0.1) > 1e-6 {
			t.Fatalf("rank(%d) = %v, want 0.1", i, v)
		}
	}
}

func TestTriangleCountComplete(t *testing.T) {
	initLib(t)
	// K4 has C(4,3) = 4 triangles.
	g := gen.CompleteBipartite(1, 1) // placeholder, build K4 manually
	_ = g
	var src, dst []int
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				src = append(src, i)
				dst = append(dst, j)
			}
		}
	}
	k4 := gen.Graph{N: 4, Src: src, Dst: dst}
	a := adjacency(t, k4)
	nt, err := TriangleCount(a)
	if err != nil {
		t.Fatal(err)
	}
	if nt != 4 {
		t.Fatalf("triangles = %d, want 4", nt)
	}
}

func TestConnectedComponentsTwoComponents(t *testing.T) {
	initLib(t)
	// Path 0-1-2 and path 3-4 (undirected).
	g := gen.Graph{N: 5, Src: []int{0, 1, 3}, Dst: []int{1, 2, 4}}.Symmetrize()
	a := adjacency(t, g)
	f, err := ConnectedComponents(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 3, 3}
	for i, wv := range want {
		v, ok := ck2(f.ExtractElement(i))
		if !ok || v != wv {
			t.Fatalf("comp(%d) = %v,%v want %v", i, v, ok, wv)
		}
	}
}

func TestMISValid(t *testing.T) {
	initLib(t)
	g := gen.Grid2D(4, 4)
	a := adjacency(t, g)
	iset, err := MIS(a, 42)
	if err != nil {
		t.Fatal(err)
	}
	inds, _, err := iset.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	member := make(map[int]bool)
	for _, i := range inds {
		member[i] = true
	}
	// Independence: no two members adjacent.
	for k := range g.Src {
		if member[g.Src[k]] && member[g.Dst[k]] {
			t.Fatalf("MIS not independent: edge (%d,%d) inside set", g.Src[k], g.Dst[k])
		}
	}
	// Maximality: every non-member has a member neighbour.
	adj := make(map[int][]int)
	for k := range g.Src {
		adj[g.Src[k]] = append(adj[g.Src[k]], g.Dst[k])
	}
	for v := 0; v < g.N; v++ {
		if member[v] {
			continue
		}
		ok := false
		for _, u := range adj[v] {
			if member[u] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("MIS not maximal: vertex %d has no member neighbour", v)
		}
	}
}

func TestKCore(t *testing.T) {
	initLib(t)
	// K4 plus a pendant vertex 4 attached to 0: 3-core is exactly K4.
	var src, dst []int
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				src = append(src, i)
				dst = append(dst, j)
			}
		}
	}
	src = append(src, 0, 4)
	dst = append(dst, 4, 0)
	g := gen.Graph{N: 5, Src: src, Dst: dst}
	a := adjacency(t, g)
	core, err := KCore(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, ok := ck2(core.ExtractElement(i)); !ok {
			t.Fatalf("vertex %d should be in 3-core", i)
		}
	}
	if _, ok := ck2(core.ExtractElement(4)); ok {
		t.Fatal("pendant vertex should not be in 3-core")
	}
}

func TestSSSPNegativeEdges(t *testing.T) {
	initLib(t)
	// 0→1 (4), 0→2 (1), 2→1 (-2): shortest 0→1 is -1 via 2.
	g := gen.Graph{N: 3, Src: []int{0, 0, 2}, Dst: []int{1, 2, 1}}
	a := weighted(t, g, []float64{4, 1, -2})
	d, err := SSSP(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ck2(d.ExtractElement(1))
	if !ok || v != -1 {
		t.Fatalf("d(1) = %v,%v want -1", v, ok)
	}
}

func TestSSSPNegativeCycleDetected(t *testing.T) {
	initLib(t)
	// 0→1 (1), 1→0 (-2): a negative cycle reachable from the source.
	g := gen.Graph{N: 2, Src: []int{0, 1}, Dst: []int{1, 0}}
	a := weighted(t, g, []float64{1, -2})
	if _, err := SSSP(a, 0); grb.Code(err) != grb.InvalidValue {
		t.Fatalf("negative cycle: %v", err)
	}
}

func TestBFSParentsLegacyAgreesWithNative(t *testing.T) {
	initLib(t)
	g := gen.Graph500RMAT(8, 8, 77).Symmetrize()
	a := adjacency(t, g)
	for _, src := range []int{0, 3} {
		native, err := BFSParents(a, src)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := BFSParentsLegacy(a, src)
		if err != nil {
			t.Fatal(err)
		}
		ni, nx := ck2(native.ExtractTuples())
		li, lx := ck2(legacy.ExtractTuples())
		if len(ni) != len(li) {
			t.Fatalf("src %d: reach %d vs %d", src, len(ni), len(li))
		}
		for k := range ni {
			if ni[k] != li[k] || nx[k] != lx[k] {
				t.Fatalf("src %d: parent(%d) native %d legacy %d", src, ni[k], nx[k], lx[k])
			}
		}
	}
}

func TestBFSAgreesWithSSSPUnitWeights(t *testing.T) {
	initLib(t)
	g := gen.Graph500RMAT(7, 8, 1).Symmetrize()
	ab := adjacency(t, g)
	aw := weighted(t, g, gen.UnitWeights[float64](g))
	levels, err := BFSLevels(ab, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SSSP(aw, 0)
	if err != nil {
		t.Fatal(err)
	}
	li, lx := ck2(levels.ExtractTuples())
	di, dx := ck2(dist.ExtractTuples())
	if len(li) != len(di) {
		t.Fatalf("reachable sets differ: %d vs %d", len(li), len(di))
	}
	for k := range li {
		if li[k] != di[k] || float64(lx[k]) != dx[k] {
			t.Fatalf("vertex %d: level %d vs dist %v", li[k], lx[k], dx[k])
		}
	}
}

package lagraph

import (
	"testing"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
)

func TestEccentricityAndPseudoDiameter(t *testing.T) {
	initLib(t)
	// Undirected path on 7 vertices: diameter 6, exact for the heuristic.
	p := adjacency(t, gen.Path(7).Symmetrize())
	ecc, far, err := Eccentricity(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ecc != 3 || (far != 0 && far != 6) {
		t.Fatalf("ecc(3) = %d (far %d), want 3 (0 or 6)", ecc, far)
	}
	d, err := PseudoDiameter(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 {
		t.Fatalf("path diameter = %d, want 6", d)
	}
	// Ring of 10 (undirected): diameter 5.
	r := adjacency(t, gen.Ring(10).Symmetrize())
	d, err = PseudoDiameter(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Fatalf("ring diameter = %d, want 5", d)
	}
	// Grid 4x4: diameter 6 (Manhattan corner-to-corner).
	g := adjacency(t, gen.Grid2D(4, 4))
	d, err = PseudoDiameter(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 {
		t.Fatalf("grid diameter = %d, want 6", d)
	}
	if _, err := PseudoDiameter(g, 99); grb.Code(err) != grb.InvalidIndex {
		t.Fatalf("bad start: %v", err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	initLib(t)
	// Star(5): center degree 4, four leaves degree 1.
	a := adjacency(t, gen.Star(5))
	hist, err := DegreeHistogram(a)
	if err != nil {
		t.Fatal(err)
	}
	if hist[4] != 1 || hist[1] != 4 {
		t.Fatalf("hist = %v", hist)
	}
	// Isolated vertices counted as degree 0.
	g := gen.Path(2)
	g.N = 4
	b := adjacency(t, g.Symmetrize())
	hist, err = DegreeHistogram(b)
	if err != nil {
		t.Fatal(err)
	}
	if hist[0] != 2 || hist[1] != 2 {
		t.Fatalf("hist = %v", hist)
	}
	// Histogram total covers every vertex.
	rm := adjacency(t, gen.Graph500RMAT(7, 8, 2).Symmetrize())
	hist, err = DegreeHistogram(rm)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != 128 {
		t.Fatalf("histogram covers %d vertices, want 128", total)
	}
}

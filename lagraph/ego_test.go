package lagraph

import (
	"testing"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
)

// TestEgoNetPath pins hop-bounded reach on a directed path 0→1→2→3→4:
// the h-hop ego of vertex 1 is the sub-path 1→…→min(1+h, 4).
func TestEgoNetPath(t *testing.T) {
	initLib(t)
	a := adjacency(t, gen.Path(5))
	for hops := 0; hops <= 4; hops++ {
		sub, verts, err := EgoNet(a, 1, hops)
		if err != nil {
			t.Fatalf("hops=%d: %v", hops, err)
		}
		last := 1 + hops
		if last > 4 {
			last = 4
		}
		want := last - 1 + 1 // vertices 1..last
		if len(verts) != want {
			t.Fatalf("hops=%d: verts=%v want %d vertices", hops, verts, want)
		}
		for k, v := range verts {
			if v != 1+k {
				t.Fatalf("hops=%d: verts=%v", hops, verts)
			}
		}
		nv, err := sub.Nvals()
		if err != nil {
			t.Fatal(err)
		}
		if nv != len(verts)-1 {
			t.Fatalf("hops=%d: sub nvals=%d want %d", hops, nv, len(verts)-1)
		}
	}
}

// TestEgoNetInduced checks that the extraction is the full induced
// subgraph — edges between reached vertices that BFS itself never
// traversed must still appear — and that weights survive for non-bool T.
func TestEgoNetInduced(t *testing.T) {
	initLib(t)
	// 0→1, 0→2, 1→2 (a "shortcut" edge inside the 1-hop ego of 0), 2→3.
	a, err := grb.NewMatrix[float64](4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Build([]grb.Index{0, 0, 1, 2}, []grb.Index{1, 2, 2, 3},
		[]float64{5, 6, 7, 8}, nil); err != nil {
		t.Fatal(err)
	}
	sub, verts, err := EgoNet(a, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(verts) != 3 || verts[0] != 0 || verts[1] != 1 || verts[2] != 2 {
		t.Fatalf("verts = %v", verts)
	}
	// Induced edges: (0,1)=5, (0,2)=6, (1,2)=7; 2→3 is outside.
	type e struct {
		i, j grb.Index
		x    float64
	}
	for _, want := range []e{{0, 1, 5}, {0, 2, 6}, {1, 2, 7}} {
		x, ok, err := sub.ExtractElement(want.i, want.j)
		if err != nil || !ok || x != want.x {
			t.Fatalf("sub(%d,%d) = %v ok=%v err=%v", want.i, want.j, x, ok, err)
		}
	}
	if nv, err := sub.Nvals(); err != nil || nv != 3 {
		t.Fatalf("nvals = %d, %v", nv, err)
	}
}

// TestEgoNetValidation covers the argument checks and hop-0 degenerate.
func TestEgoNetValidation(t *testing.T) {
	initLib(t)
	a := adjacency(t, gen.Path(3))
	if _, _, err := EgoNet(a, 99, 1); grb.Code(err) != grb.InvalidIndex {
		t.Fatalf("src out of range: %v", err)
	}
	if _, _, err := EgoNet(a, 0, -1); grb.Code(err) != grb.InvalidValue {
		t.Fatalf("negative hops: %v", err)
	}
	sub, verts, err := EgoNet(a, 2, 0)
	if err != nil || len(verts) != 1 || verts[0] != 2 {
		t.Fatalf("0-hop ego: verts=%v err=%v", verts, err)
	}
	nv, err := sub.Nvals()
	if err != nil {
		t.Fatal(err)
	}
	if nv != 0 {
		t.Fatalf("0-hop ego has %d edges", nv)
	}
}

// TestAlgorithmsInheritContext proves the serving invariant this PR relies
// on: handing an algorithm a matrix view bound to a starved per-request
// context makes the whole run park OutOfMemory, while the same algorithm on
// the unbudgeted original still succeeds.
func TestAlgorithmsInheritContext(t *testing.T) {
	initLib(t)
	g := gen.Graph500RMAT(8, 8, 42).Symmetrize()
	a := adjacency(t, g)
	if _, err := BFSLevels(a, 0); err != nil {
		t.Fatalf("unbudgeted BFS: %v", err)
	}
	starved, err := grb.NewContext(grb.NonBlocking, nil, grb.WithMemoryLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.ViewInContext(starved)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFSLevels(v, 0); grb.Code(err) != grb.OutOfMemory {
		t.Fatalf("starved BFS: want OutOfMemory, got %v", err)
	}
	if _, err := TriangleCount(v); grb.Code(err) != grb.OutOfMemory {
		t.Fatalf("starved TriangleCount: want OutOfMemory, got %v", err)
	}
	// The shared original is untouched by the starved tenant's failures.
	if _, err := BFSLevels(a, 0); err != nil {
		t.Fatalf("BFS after starved neighbor: %v", err)
	}
}

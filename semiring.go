package grb

import "github.com/grblas/grb/internal/sparse"

// Semiring is a GraphBLAS semiring: an additive monoid on the output domain
// Dout and a multiplicative binary operator Din1 × Din2 → Dout. It drives
// the matrix-product family (MxM, MxV, VxM).
type Semiring[Din1, Din2, Dout any] struct {
	Add Monoid[Dout]
	Mul BinaryOp[Din1, Din2, Dout]

	// semi tags the hot semirings built by this package's constructors so
	// the multiply kernels can route them to monomorphized loops (see
	// DESIGN.md, "Monomorphized kernels & formats"). Unexported on purpose:
	// a hand-assembled Semiring carries arbitrary closures the kernels know
	// nothing about, so it must stay SemiGeneric — tagging is a constructor
	// privilege, not a caller promise.
	semi sparse.Semi
}

// NewSemiring constructs a semiring (GrB_Semiring_new).
func NewSemiring[Din1, Din2, Dout any](add Monoid[Dout], mul BinaryOp[Din1, Din2, Dout]) (Semiring[Din1, Din2, Dout], error) {
	if add.Op == nil || mul == nil {
		return Semiring[Din1, Din2, Dout]{}, errf(NullPointer, "NewSemiring: nil operator")
	}
	return Semiring[Din1, Din2, Dout]{Add: add, Mul: mul}, nil
}

// PlusTimes is the conventional arithmetic semiring (+, ×, 0)
// (GrB_PLUS_TIMES_SEMIRING).
func PlusTimes[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: PlusMonoid[T](), Mul: Times[T], semi: sparse.SemiPlusTimes}
}

// MinPlus is the tropical shortest-path semiring (min, +, +∞)
// (GrB_MIN_PLUS_SEMIRING).
func MinPlus[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: Plus[T], semi: sparse.SemiMinPlus}
}

// MaxPlus is the (max, +, -∞) semiring (GrB_MAX_PLUS_SEMIRING), used for
// longest/critical-path style computations.
func MaxPlus[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MaxMonoid[T](), Mul: Plus[T]}
}

// MinTimes is the (min, ×, +∞) semiring (GrB_MIN_TIMES_SEMIRING).
func MinTimes[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: Times[T]}
}

// MaxMin is the bottleneck semiring (max, min, -∞)
// (GrB_MAX_MIN_SEMIRING), used for widest-path computations.
func MaxMin[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MaxMonoid[T](), Mul: Min[T]}
}

// MinMax is the (min, max, +∞) semiring (GrB_MIN_MAX_SEMIRING).
func MinMax[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: Max[T]}
}

// LOrLAnd is the boolean reachability semiring (∨, ∧, false)
// (GrB_LOR_LAND_SEMIRING).
func LOrLAnd() Semiring[bool, bool, bool] {
	return Semiring[bool, bool, bool]{Add: LOrMonoid(), Mul: LAnd, semi: sparse.SemiLorLand}
}

// LAndLOr is the (∧, ∨, true) semiring (GrB_LAND_LOR_SEMIRING).
func LAndLOr() Semiring[bool, bool, bool] {
	return Semiring[bool, bool, bool]{Add: LAndMonoid(), Mul: LOr}
}

// LXorLAnd is the (⊻, ∧, false) semiring (GrB_LXOR_LAND_SEMIRING).
func LXorLAnd() Semiring[bool, bool, bool] {
	return Semiring[bool, bool, bool]{Add: LXorMonoid(), Mul: LAnd}
}

// PlusPair is the structure-only counting semiring (+, pair, 0): the
// multiply returns 1 for every co-located pair, so the product counts
// pattern intersections. This is the semiring of Sandia-style triangle
// counting.
func PlusPair[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: PlusMonoid[T](), Mul: Oneb[T, T, T], semi: sparse.SemiPlusPair}
}

// MinFirst is the (min, first, +∞) semiring (GrB_MIN_FIRST_SEMIRING):
// the multiply passes the left operand through, so products select values
// carried by the left matrix/vector — the classic BFS-parent semiring.
func MinFirst[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: First[T, T]}
}

// MinSecond is the (min, second, +∞) semiring (GrB_MIN_SECOND_SEMIRING).
func MinSecond[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: Second[T, T]}
}

// MaxFirst is the (max, first, -∞) semiring (GrB_MAX_FIRST_SEMIRING).
func MaxFirst[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MaxMonoid[T](), Mul: First[T, T]}
}

// MaxSecond is the (max, second, -∞) semiring (GrB_MAX_SECOND_SEMIRING).
func MaxSecond[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MaxMonoid[T](), Mul: Second[T, T]}
}

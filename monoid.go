package grb

import "math"

// Monoid is a GraphBLAS monoid: an associative binary operator on a single
// domain together with its identity value. GraphBLAS 2.0 (Table II) also
// introduces constructing monoids from a GrB_Scalar identity; in the Go
// binding NewMonoidScalar provides that variant.
type Monoid[D any] struct {
	Op       BinaryOp[D, D, D]
	Identity D
}

// NewMonoid constructs a monoid from an associative operator and its
// identity (GrB_Monoid_new).
func NewMonoid[D any](op BinaryOp[D, D, D], identity D) (Monoid[D], error) {
	if op == nil {
		return Monoid[D]{}, errf(NullPointer, "NewMonoid: nil operator")
	}
	return Monoid[D]{Op: op, Identity: identity}, nil
}

// NewMonoidScalar constructs a monoid taking the identity from a GrB_Scalar
// (the Table II variant GrB_Monoid_new(GrB_Monoid*, GrB_BinaryOp,
// GrB_Scalar)). An empty scalar is an error (GrB_EMPTY_OBJECT).
func NewMonoidScalar[D any](op BinaryOp[D, D, D], identity *Scalar[D]) (Monoid[D], error) {
	if op == nil || identity == nil {
		return Monoid[D]{}, errf(NullPointer, "NewMonoidScalar: nil argument")
	}
	v, ok, err := identity.ExtractElement()
	if err != nil {
		return Monoid[D]{}, err
	}
	if !ok {
		return Monoid[D]{}, errf(EmptyObject, "NewMonoidScalar: empty identity scalar")
	}
	return Monoid[D]{Op: op, Identity: v}, nil
}

// PlusMonoid is the (+, 0) monoid (GrB_PLUS_MONOID).
func PlusMonoid[T Number]() Monoid[T] { return Monoid[T]{Op: Plus[T], Identity: 0} }

// TimesMonoid is the (*, 1) monoid (GrB_TIMES_MONOID).
func TimesMonoid[T Number]() Monoid[T] { return Monoid[T]{Op: Times[T], Identity: 1} }

// MinMonoid is the (min, +∞) monoid (GrB_MIN_MONOID); the identity is the
// maximum representable value of T.
func MinMonoid[T Number]() Monoid[T] { return Monoid[T]{Op: Min[T], Identity: maxValue[T]()} }

// MaxMonoid is the (max, -∞) monoid (GrB_MAX_MONOID); the identity is the
// minimum representable value of T.
func MaxMonoid[T Number]() Monoid[T] { return Monoid[T]{Op: Max[T], Identity: minValue[T]()} }

// LAndMonoid is the (&&, true) monoid (GrB_LAND_MONOID).
func LAndMonoid() Monoid[bool] { return Monoid[bool]{Op: LAnd, Identity: true} }

// LOrMonoid is the (||, false) monoid (GrB_LOR_MONOID).
func LOrMonoid() Monoid[bool] { return Monoid[bool]{Op: LOr, Identity: false} }

// LXorMonoid is the (xor, false) monoid (GrB_LXOR_MONOID).
func LXorMonoid() Monoid[bool] { return Monoid[bool]{Op: LXor, Identity: false} }

// LXnorMonoid is the (xnor, true) monoid (GrB_LXNOR_MONOID).
func LXnorMonoid() Monoid[bool] { return Monoid[bool]{Op: LXnor, Identity: true} }

// isFloat reports whether the numeric domain T is a floating-point type,
// detected by whether the value 0.5 survives conversion.
func isFloat[T Number]() bool {
	h := 0.5
	return T(h) != T(0)
}

// maxValue returns the maximum representable value of a numeric domain —
// the identity of the min monoid (+∞ for floats).
func maxValue[T Number]() T {
	if isFloat[T]() {
		inf := math.Inf(1)
		return T(inf)
	}
	var zero T
	if zero-1 > zero {
		return zero - 1 // unsigned: wraps to all ones
	}
	// Signed: double until the sign bit is reached (wrap-around is defined
	// in Go), landing on the minimum; the maximum is its complement.
	v := T(1)
	for v > 0 {
		v *= 2
	}
	return -(v + 1)
}

// minValue returns the minimum representable value of a numeric domain —
// the identity of the max monoid (-∞ for floats).
func minValue[T Number]() T {
	if isFloat[T]() {
		inf := math.Inf(-1)
		return T(inf)
	}
	var zero T
	if zero-1 > zero {
		return zero // unsigned
	}
	v := T(1)
	for v > 0 {
		v *= 2
	}
	return v
}

package grb

import (
	"errors"

	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// MxM computes C⟨M⟩ = C ⊙ (A ⊕.⊗ B): sparse matrix–matrix multiplication
// over an arbitrary semiring (GrB_mxm), with optional mask M, accumulator ⊙
// and descriptor (transpose inputs, replace output, structural/complemented
// mask). In nonblocking mode the product is appended to C's sequence and
// deferred (§III).
func MxM[DC, DA, DB any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	semiring Semiring[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	if err := b.check(); err != nil {
		return err
	}
	if semiring.Add.Op == nil || semiring.Mul == nil {
		return errf(NullPointer, "MxM: semiring has nil operators")
	}
	ctxs := append([]*Context{c.ctx, a.ctx, b.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	bcsr, err := b.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	br, bc := bcsr.Rows, bcsr.Cols
	if d.Transpose1 {
		br, bc = bc, br
	}
	if ac != br {
		return errf(DimensionMismatch, "MxM: inner dimensions %d and %d differ", ac, br)
	}
	if cOld.Rows != ar || cOld.Cols != bc {
		return errf(DimensionMismatch, "MxM: output is %dx%d but product is %dx%d", cOld.Rows, cOld.Cols, ar, bc)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ() + bcsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("MxM").WithRoute(routeName(d.AxB)).WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).B(bcsr.Rows, bcsr.Cols, bcsr.NNZ()).
			WithFlops(mxmFlops(acsr, bcsr, d.Transpose0, d.Transpose1))
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[DC], error) {
		// Hardened execution environment, built at drain time so budget
		// charges and cancellation probes reflect execution order (§IV/§V).
		e := ctx.exec(threads)
		defer e.Close()
		e.Block = blockRoute(d.Block)
		A, err := maybeTransposeEx(acsr, d.Transpose0, e)
		if err != nil {
			return nil, err
		}
		B, err := maybeTransposeEx(bcsr, d.Transpose1, e)
		if err != nil {
			return nil, err
		}
		// The mask prunes the product at emit time only when it does not
		// change the accumulated result: pruned positions would be dropped
		// by MaskApplyM anyway.
		semi, spec := specRoute(d.Spec, semiring.semi)
		t, err := sparse.SpGEMMSemiEx(semi, spec, A, B, semiring.Mul, semiring.Add.Op, mk, e, kernelHint(d.AxB))
		if err != nil {
			return nil, err
		}
		z := sparse.AccumMergeM(cOld, t, accum, threads)
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// MxV computes w⟨m⟩ = w ⊙ (A ⊕.⊗ u): matrix–vector multiplication
// (GrB_mxv). The descriptor's Transpose0 flag transposes A; its Dir field
// pins the push/pull kernel choice (DirAuto routes by frontier and mask
// density, Beamer-style).
func MxV[DC, DA, DB any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	semiring Semiring[DA, DB, DC], a *Matrix[DA], u *Vector[DB], desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	if semiring.Add.Op == nil || semiring.Mul == nil {
		return errf(NullPointer, "MxV: semiring has nil operators")
	}
	ctxs := append([]*Context{w.ctx, a.ctx, u.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	if ac != uvec.N {
		return errf(DimensionMismatch, "MxV: matrix has %d columns but vector has size %d", ac, uvec.N)
	}
	if wOld.N != ar {
		return errf(DimensionMismatch, "MxV: output has size %d but product has size %d", wOld.N, ar)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ())
	// Direction-optimizing dispatch: pull gathers rows of the (possibly
	// transposed) matrix; push scatters the frontier's entries through the
	// opposite orientation, which the transpose cache makes free to obtain
	// after the first materialization. Both orientations fold products in
	// ascending input order, so for a given thread count the two kernels
	// agree bit-identically whenever the monoid is associative on the data.
	usePush := chooseDir(d.Dir, uvec.NNZ(), ac, mk, ar)
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("MxV").WithRoute(pushPull(usePush)).WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).B(uvec.N, 1, uvec.NNZ())
		// The frontier-flop bound Σ_{i∈u} nnz(A(i,:)) is free only when u
		// indexes stored rows; the other orientation would materialize Aᵀ
		// eagerly just because a sink is watching, so it reports no estimate.
		if d.Transpose0 {
			ev.WithFlops(sparse.FrontierFlops(acsr, uvec))
		}
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[DC], error) {
		e := ctx.exec(threads)
		defer e.Close()
		e.Block = blockRoute(d.Block)
		var t *sparse.Vec[DC]
		var err error
		push := usePush
		// Every monomorphized family has a commutative multiply, so the
		// orientation flip below is transparent to the specialized loops.
		semi, spec := specRoute(d.Spec, semiring.semi)
		if push {
			var At *sparse.CSR[DA]
			At, err = maybeTransposeEx(acsr, !d.Transpose0, e)
			if err == nil {
				mulFlip := func(x DB, a DA) DC { return semiring.Mul(a, x) }
				t, err = sparse.VxMSemiEx(semi, spec, uvec, At, mulFlip, semiring.Add.Op, mk, e)
			}
			// Budget degradation: the push route's scatter SPA (or the
			// transpose it rides on) did not fit, but the heuristic did not
			// pin push — retry through the pull gather, which can run with a
			// frontier-sized hash accumulator.
			if err != nil && errors.Is(err, sparse.ErrBudget) && d.Dir == DirAuto {
				sparse.NoteBudgetDegrade()
				push, err = false, nil
			}
		}
		if !push && err == nil {
			var A *sparse.CSR[DA]
			A, err = maybeTransposeEx(acsr, d.Transpose0, e)
			if err == nil {
				t, err = sparse.SpMVSemiEx(semi, spec, A, uvec, semiring.Mul, semiring.Add.Op, mk, e, kernelHint(d.AxB))
			}
		}
		if err != nil {
			return nil, err
		}
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

// VxM computes w⟨m⟩ = w ⊙ (u ⊕.⊗ A): vector–matrix multiplication
// (GrB_vxm), the classic traversal primitive. The descriptor's Transpose1
// flag transposes A; its Dir field pins the push/pull kernel choice
// (DirAuto routes by frontier and mask density, Beamer-style).
func VxM[DC, DA, DB any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	semiring Semiring[DA, DB, DC], u *Vector[DA], a *Matrix[DB], desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	if semiring.Add.Op == nil || semiring.Mul == nil {
		return errf(NullPointer, "VxM: semiring has nil operators")
	}
	ctxs := append([]*Context{w.ctx, u.ctx, a.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose1 {
		ar, ac = ac, ar
	}
	if uvec.N != ar {
		return errf(DimensionMismatch, "VxM: vector has size %d but matrix has %d rows", uvec.N, ar)
	}
	if wOld.N != ac {
		return errf(DimensionMismatch, "VxM: output has size %d but product has size %d", wOld.N, ac)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ())
	// Direction-optimizing dispatch, mirroring MxV: push scatters the
	// frontier through rows of A; pull gathers along output positions over
	// the cached transpose, which a sparse non-complemented mask can prune
	// wholesale.
	usePush := chooseDir(d.Dir, uvec.NNZ(), ar, mk, ac)
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("VxM").WithRoute(pushPull(usePush)).WithThreads(threads).
			A(uvec.N, 1, uvec.NNZ()).B(acsr.Rows, acsr.Cols, acsr.NNZ())
		if !d.Transpose1 {
			ev.WithFlops(sparse.FrontierFlops(acsr, uvec))
		}
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[DC], error) {
		e := ctx.exec(threads)
		defer e.Close()
		e.Block = blockRoute(d.Block)
		var t *sparse.Vec[DC]
		var err error
		push := usePush
		// The commutative-multiply note from MxV applies to the pull-side
		// flip below as well.
		semi, spec := specRoute(d.Spec, semiring.semi)
		if push {
			var A *sparse.CSR[DB]
			A, err = maybeTransposeEx(acsr, d.Transpose1, e)
			if err == nil {
				t, err = sparse.VxMSemiEx(semi, spec, uvec, A, semiring.Mul, semiring.Add.Op, mk, e)
			}
			// Budget degradation, mirroring MxV: when auto-routed push cannot
			// charge its scatter SPA, retry via the pull gather.
			if err != nil && errors.Is(err, sparse.ErrBudget) && d.Dir == DirAuto {
				sparse.NoteBudgetDegrade()
				push, err = false, nil
			}
		}
		if !push && err == nil {
			var At *sparse.CSR[DB]
			At, err = maybeTransposeEx(acsr, !d.Transpose1, e)
			if err == nil {
				mulFlip := func(a DB, x DA) DC { return semiring.Mul(x, a) }
				t, err = sparse.SpMVSemiEx(semi, spec, At, uvec, mulFlip, semiring.Add.Op, mk, e, kernelHint(d.AxB))
			}
		}
		if err != nil {
			return nil, err
		}
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

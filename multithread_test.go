package grb

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFig1Protocol reproduces Figure 1 of the paper as a test: thread 0
// computes a shared matrix Esh and completes it; the threads synchronize
// through a release-store/acquire-load flag; thread 1 then reads Esh. The
// test asserts that the shared read observes exactly the completed value.
func TestFig1Protocol(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 4, 4,
		[]Index{0, 1, 2, 3}, []Index{1, 2, 3, 0}, []int{1, 1, 1, 1}) // cyclic permutation
	esh := ck1(NewMatrix[int](4, 4))
	var flag atomic.Int32
	var hres *Matrix[int]
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // thread 0
		defer wg.Done()
		c := ck1(NewMatrix[int](4, 4))
		if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
			t.Error(err)
			flag.Store(1)
			return
		}
		if err := MxM(esh, nil, nil, PlusTimes[int](), a, c, nil); err != nil {
			t.Error(err)
			flag.Store(1)
			return
		}
		if err := esh.Wait(Complete); err != nil {
			t.Error(err)
		}
		flag.Store(1) // release
	}()
	go func() { // thread 1
		defer wg.Done()
		for flag.Load() == 0 { // acquire
		}
		hres = ck1(NewMatrix[int](4, 4))
		if err := MxM(hres, nil, nil, PlusTimes[int](), a, esh, nil); err != nil {
			t.Error(err)
			return
		}
		if err := hres.Wait(Complete); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	// A is the cyclic shift; Esh = A³, Hres = A⁴ = I.
	for i := 0; i < 4; i++ {
		if v, ok := ck2(hres.ExtractElement(i, i)); !ok || v != 1 {
			t.Fatalf("Hres(%d,%d) = %d,%v — shared read saw wrong data", i, i, v, ok)
		}
	}
	nv := ck1(hres.Nvals())
	if nv != 4 {
		t.Fatalf("Hres nvals = %d", nv)
	}
}

// TestThreadSafetyIndependentObjects: §III requires a conformant library to
// be thread safe for independent method calls. Run many goroutines, each
// with its own objects, under -race.
func TestThreadSafetyIndependentObjects(t *testing.T) {
	setMode(t, NonBlocking)
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int) {
			defer wg.Done()
			n := 16 + seed
			a, err := NewMatrix[int](n, n)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < n; i++ {
				if err := a.SetElement(i+1, i, (i*7+seed)%n); err != nil {
					errs <- err
					return
				}
			}
			c := ck1(NewMatrix[int](n, n))
			if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
				errs <- err
				return
			}
			if err := c.Wait(Materialize); err != nil {
				errs <- err
				return
			}
			s := ck1(NewScalar[int]())
			if err := MatrixReduceToScalar(s, nil, PlusMonoid[int](), c, nil); err != nil {
				errs <- err
				return
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestThreadSafetySharedInput: many goroutines read one completed matrix
// concurrently (reads of a complete object are safe without extra sync).
func TestThreadSafetySharedInput(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 10, 10,
		[]Index{0, 3, 7}, []Index{1, 4, 8}, []int{1, 2, 3})
	if err := a.Wait(Complete); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers)
	sums := make([]int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := ck1(NewMatrix[int](10, 10))
			if err := MatrixApply(c, nil, nil, func(x int) int { return x * 2 }, a, nil); err != nil {
				return
			}
			s := ck1(MatrixReduce(PlusMonoid[int](), c))
			sums[w] = s
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if sums[w] != 12 {
			t.Fatalf("worker %d sum = %d, want 12", w, sums[w])
		}
	}
}

// TestNonblockingDeferredThenRead: a deferred product must not be visible
// as stale state — any read forces completion (§III's "reads force the
// sequence").
func TestNonblockingDeferredThenRead(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{2, 3})
	c := ck1(NewMatrix[int](2, 2))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	// No explicit Wait: Nvals must force the sequence.
	nv, err := c.Nvals()
	if err != nil || nv != 2 {
		t.Fatalf("nvals = %d, %v", nv, err)
	}
	if v, _ := ck2(c.ExtractElement(1, 1)); v != 9 {
		t.Fatalf("c(1,1) = %d", v)
	}
}

// TestSequenceSnapshotSemantics: a deferred operation must observe its
// inputs as they were in program order, even if they change before the
// sequence executes.
func TestSequenceSnapshotSemantics(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{1, 1}) // I
	c := ck1(NewMatrix[int](2, 2))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	// Mutate A after the (deferred) product.
	if err := a.SetElement(100, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The deferred product must still be I·I = I (program order).
	matrixEquals(t, c, []Index{0, 1}, []Index{0, 1}, []int{1, 1})
}

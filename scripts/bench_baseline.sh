#!/bin/sh
# Benchmark baseline: runs the grbbench traversal experiment (push / pull /
# adaptive BFS on hypersparse and RMAT graphs), the dense experiment
# (monomorphized vs closure kernels on block-format operands), the blocked
# experiment (flat vs 2D-blocked SUMMA SpGEMM/SpMV plans with their
# modeled-span telemetry), and the serve experiment (closed- and open-loop
# latency/QPS against the multi-tenant query server), and records the
# measured series in BENCH_5.json at the repo root, so later PRs can diff
# performance against this one. Usage:
#
#   scripts/bench_baseline.sh [scale]
#
# with scale defaulting to 14 (the grbbench default; RMAT has 2^scale
# vertices).
#
# The baseline is only meaningful for a tree that passes the static-analysis
# gate — a discarded error can silently skip the very work being measured —
# so grblint runs first and a dirty tree refuses to emit the JSON.
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-14}"
OUT="BENCH_5.json"

echo "== lint gate: grblint must be clean before measuring =="
if ! make lint; then
    echo "bench_baseline: grblint reported diagnostics; fix them before recording a baseline" >&2
    exit 1
fi

echo "== traversal + dense + blocked + serve baseline: scale $SCALE -> $OUT =="
go run ./cmd/grbbench -run traversal,dense,blocked,serve -scale "$SCALE" -json "$OUT"

echo "baseline written to $OUT"

#!/bin/sh
# Direction-optimization benchmark baseline: runs the grbbench traversal
# experiment (push / pull / adaptive BFS on hypersparse and RMAT graphs) and
# records the measured series in BENCH_2.json at the repo root, so later PRs
# can diff traversal performance against this one. Usage:
#
#   scripts/bench_baseline.sh [scale]
#
# with scale defaulting to 14 (the grbbench default; RMAT has 2^scale
# vertices).
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-14}"
OUT="BENCH_2.json"

echo "== traversal baseline: scale $SCALE -> $OUT =="
go run ./cmd/grbbench -run traversal -scale "$SCALE" -json "$OUT"

echo "baseline written to $OUT"

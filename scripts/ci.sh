#!/bin/sh
# Tiered CI entrypoint (`make ci` runs this). Chains every gate the repo
# defines, times each tier, and ends with one machine-readable summary line:
#
#   CI_SUMMARY status=ok tiers=7 build=2s test=14s race=31s lint=9s grbcheck=22s serve=6s coverage=12s
#
# Tiers, in order (cheapest first so broken trees fail fast):
#
#   build     go build ./...
#   test      go test ./...                      (tier-1, the ROADMAP gate)
#   race      concurrency-sensitive suites under -race
#   lint      grblint: infocheck, snapshotcheck, lockcheck, enumcheck,
#             budgetcheck, obsvcheck, sitecheck, atomiccheck,
#             panicpathcheck (per-package passes fan out across the pool;
#             -time prints per-analyzer wall clock to stderr)
#   grbcheck  the race suites with the runtime snapshot validators compiled in
#   serve     grbserve -selfcheck: boots the multi-tenant query server on
#             generated graphs and probes every endpoint plus the tenant
#             isolation contract (starved -> 507, deadlined -> 408,
#             gated -> 429) and the graceful-shutdown drain against a live
#             loopback listener
#   coverage  total statement coverage against scripts/coverage_floor.txt
#
# Two advisory tiers follow (reported on the summary line, never gating):
# soak (10s serving-stack overload storm under -race with faults armed) and
# chaos (the fault-injection sweep).
#
# A failing tier stops the run; the summary line then reports status=fail and
# the tier that failed, still on one greppable line. The bench-regression gate
# is NOT part of this chain — it needs a quiet machine — but CI runs it in
# advisory mode afterwards (see scripts/bench_compare.sh). The chaos
# fault-injection sweep runs at the end of this script in advisory mode: its
# result is reported as chaos_status on the summary line but never flips
# status to fail (run `make chaos` for the hard version).
set -u
cd "$(dirname "$0")/.."

SUMMARY=""
TIERS=0

# run TIER_NAME cmd... — times one tier, appends "name=Ns" to the summary,
# and fails the whole run on a nonzero exit.
run() {
    name="$1"
    shift
    echo "== tier: $name =="
    t0=$(date +%s)
    if ! "$@"; then
        t1=$(date +%s)
        echo "CI_SUMMARY status=fail failed_tier=$name tiers=$TIERS $SUMMARY$name=$((t1 - t0))s"
        exit 1
    fi
    t1=$(date +%s)
    SUMMARY="$SUMMARY$name=$((t1 - t0))s "
    TIERS=$((TIERS + 1))
}

coverage_tier() {
    floor=$(cat scripts/coverage_floor.txt)
    go test -count=1 -coverprofile=coverage.out ./... >/dev/null || return 1
    total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    rm -f coverage.out
    echo "coverage: total=${total}% floor=${floor}%"
    # The floor is the measured total at the time it was last seeded, minus
    # two points of slack; a drop below it means a change shipped untested
    # code. Raise the floor when coverage genuinely improves.
    awk -v t="$total" -v f="$floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }' || {
        echo "coverage: ${total}% is below the floor ${floor}% (scripts/coverage_floor.txt)" >&2
        return 1
    }
}

run build go build ./...
run test go test ./...
run race go test -race . ./internal/sparse ./internal/parallel ./internal/obsv ./serve
run lint go run ./cmd/grblint -time ./...
run grbcheck go test -tags grbcheck -race . ./internal/sparse
run serve go run ./cmd/grbserve -selfcheck
run coverage coverage_tier

# Soak tier (advisory): the serving stack's overload battery stretched to a
# 10-second storm under -race — mixed tenants, armed delay + sampled
# allocation faults, AIMD limiters, breakers, bounded queues, and the memory
# governor all running hot, then a clean-recovery check. Advisory because a
# loaded CI machine can distort the storm's timing; its result lands on the
# summary line as soak_status without gating the run.
echo "== tier: soak (advisory) =="
t0=$(date +%s)
if GRB_SOAK=10s go test -race -count=1 -run 'TestOverloadSoak' ./serve; then
    soak_status=ok
else
    soak_status=fail
    echo "soak: advisory overload soak failed (does not gate the run)" >&2
fi
t1=$(date +%s)
SUMMARY="${SUMMARY}soak=$((t1 - t0))s "
TIERS=$((TIERS + 1))

# Chaos tier (advisory): the fault-injection sweep — every registered site
# crossed with alloc-failure and panic shapes, plus the budget/cancellation
# hardening suites — with the grbcheck validators compiled in. Advisory like
# the bench gate: a failure is reported on the summary line but does not gate
# the run, so an injection-harness flake cannot mask a tier-1 regression.
echo "== tier: chaos (advisory) =="
t0=$(date +%s)
if go test -tags grbcheck -race -count=1 \
    -run 'TestChaos|TestScattered|TestFaultSpec|TestBudget|TestCancel|TestDeadline|TestInjectedPanic|TestUserOperatorPanic' .; then
    chaos_status=ok
else
    chaos_status=fail
    echo "chaos: advisory sweep failed (does not gate the run; see make chaos)" >&2
fi
t1=$(date +%s)
SUMMARY="${SUMMARY}chaos=$((t1 - t0))s "
TIERS=$((TIERS + 1))

echo "CI_SUMMARY status=ok tiers=$TIERS ${SUMMARY}soak_status=$soak_status chaos_status=$chaos_status"

#!/bin/sh
# Repo verification: tier-1 (build + full test suite), the race tier
# (concurrency-sensitive suites under -race), the static-analysis tier
# (grblint must report zero diagnostics), and the invariant tier (the race
# suites again with the grbcheck runtime validators compiled in), then the
# chaos tier (the fault-injection sweep and hardening suites with grbcheck
# compiled in) and the soak tier (the serving stack's overload storm under
# -race with faults armed). Equivalent to `make verify`; kept as a script so
# CI hooks without make can run it.
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: go build ./... && go test ./... =="
go build ./...
go test ./...

echo "== race tier: multithread / nonblocking / differential / observability suites =="
go test -race . ./internal/sparse ./internal/parallel ./internal/obsv ./serve

echo "== lint tier: grblint (infocheck, snapshotcheck, lockcheck, enumcheck) =="
go run ./cmd/grblint ./...

echo "== invariant tier: grbcheck runtime validators under -race =="
go test -tags grbcheck -race . ./internal/sparse

echo "== chaos tier: fault-injection sweep + budget/cancel hardening suites =="
go test -tags grbcheck -race -count=1 \
    -run 'TestChaos|TestScattered|TestFaultSpec|TestBudget|TestCancel|TestDeadline|TestInjectedPanic|TestUserOperatorPanic' .

echo "== soak tier: serving-stack overload storm under -race, faults armed =="
GRB_SOAK=10s go test -race -count=1 -run 'TestOverloadSoak' ./serve

echo "verify: OK"

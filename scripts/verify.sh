#!/bin/sh
# Repo verification: tier-1 (build + full test suite) followed by the race
# tier (concurrency-sensitive suites under -race). Equivalent to
# `make verify`; kept as a script so CI hooks without make can run it.
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: go build ./... && go test ./... =="
go build ./...
go test ./...

echo "== race tier: multithread / nonblocking / differential suites =="
go test -race . ./internal/sparse ./internal/parallel

echo "verify: OK"

#!/bin/sh
# Bench-regression gate: re-runs the grbbench traversal and dense experiments
# and diffs them against the newest BENCH_*.json baseline at the repo root
# with cmd/benchcmp, failing when any (graph, dir) series slowed down by more
# than the tolerance — or when a monomorphized kernel no longer beats its
# closure twin by the required ratio.
#
#   scripts/bench_compare.sh              compare a fresh run against the baseline
#   scripts/bench_compare.sh --self-test  prove the gate fires (no benchmarks run):
#                                         baseline-vs-itself must pass, a synthetic
#                                         20% slowdown must be flagged, and mono
#                                         series degraded to closure parity must
#                                         trip the speedup floor
#
# Tolerance knob: GRB_BENCH_TOL, percent, default 15. Wall-clock numbers are
# noisy on shared machines, so CI runs this gate in ADVISORY mode (the
# workflow prints the verdict but does not fail the build); `make verify-bench`
# runs it as a hard gate for quiet machines and release checks. Raise
# GRB_BENCH_TOL (e.g. GRB_BENCH_TOL=30) rather than skipping the gate when a
# host is known to be noisy.
#
# Mono knob: GRB_MONO_MIN, ratio, default 2 — every graph with paired
# mono/closure series (the dense experiment) must show the monomorphized
# kernel at least this many times faster than the closure kernel. The ratio
# divides out machine speed, so unlike the wall-clock tolerance it holds on
# noisy hosts. Set GRB_MONO_MIN=0 to disable.
set -eu
cd "$(dirname "$0")/.."

TOL="${GRB_BENCH_TOL:-15}"
MONOMIN="${GRB_MONO_MIN:-2}"

# Newest baseline by the PR sequence number in the filename.
BASELINE=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$BASELINE" ]; then
    echo "bench_compare: no BENCH_*.json baseline at the repo root; record one with scripts/bench_baseline.sh" >&2
    exit 2
fi
echo "bench_compare: baseline $BASELINE, tolerance ${TOL}% (GRB_BENCH_TOL), mono floor ${MONOMIN}x (GRB_MONO_MIN)"

if [ "${1:-}" = "--self-test" ]; then
    SELFMONO="$MONOMIN"
    if ! grep -q '"dir": *"mono"' "$BASELINE"; then
        # Pre-dense baselines carry no mono/closure pairs; the ratio gate
        # has nothing to judge there.
        echo "bench_compare: baseline has no mono series; skipping the speedup floor"
        SELFMONO=0
    fi
    go run ./cmd/benchcmp -tol "$TOL" -monomin "$SELFMONO" -selftest "$BASELINE"
    exit $?
fi

SCALE=$(awk -F': *|,' '/"scale"/ {print $2; exit}' "$BASELINE")
SCALE="${SCALE:-14}"
CUR=$(mktemp /tmp/grbbench.XXXXXX.json)
trap 'rm -f "$CUR"' EXIT

echo "bench_compare: measuring traversal + dense at scale $SCALE"
go run ./cmd/grbbench -run traversal,dense -scale "$SCALE" -json "$CUR" >/dev/null

go run ./cmd/benchcmp -tol "$TOL" -monomin "$MONOMIN" "$BASELINE" "$CUR"

#!/bin/sh
# Bench-regression gate: re-runs the grbbench traversal experiment and diffs
# it against the newest BENCH_*.json baseline at the repo root with
# cmd/benchcmp, failing when any (graph, dir) series slowed down by more than
# the tolerance.
#
#   scripts/bench_compare.sh              compare a fresh run against the baseline
#   scripts/bench_compare.sh --self-test  prove the gate fires (no benchmarks run):
#                                         baseline-vs-itself must pass, a synthetic
#                                         20% slowdown must be flagged
#
# Tolerance knob: GRB_BENCH_TOL, percent, default 15. Wall-clock numbers are
# noisy on shared machines, so CI runs this gate in ADVISORY mode (the
# workflow prints the verdict but does not fail the build); `make verify-bench`
# runs it as a hard gate for quiet machines and release checks. Raise
# GRB_BENCH_TOL (e.g. GRB_BENCH_TOL=30) rather than skipping the gate when a
# host is known to be noisy.
set -eu
cd "$(dirname "$0")/.."

TOL="${GRB_BENCH_TOL:-15}"

# Newest baseline by the PR sequence number in the filename.
BASELINE=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$BASELINE" ]; then
    echo "bench_compare: no BENCH_*.json baseline at the repo root; record one with scripts/bench_baseline.sh" >&2
    exit 2
fi
echo "bench_compare: baseline $BASELINE, tolerance ${TOL}% (GRB_BENCH_TOL)"

if [ "${1:-}" = "--self-test" ]; then
    go run ./cmd/benchcmp -tol "$TOL" -selftest "$BASELINE"
    exit $?
fi

SCALE=$(awk -F': *|,' '/"scale"/ {print $2; exit}' "$BASELINE")
SCALE="${SCALE:-14}"
CUR=$(mktemp /tmp/grbbench.XXXXXX.json)
trap 'rm -f "$CUR"' EXIT

echo "bench_compare: measuring traversal at scale $SCALE"
go run ./cmd/grbbench -run traversal -scale "$SCALE" -json "$CUR" >/dev/null

go run ./cmd/benchcmp -tol "$TOL" "$BASELINE" "$CUR"

#!/bin/sh
# Bench-regression gate: re-runs the grbbench traversal, dense, blocked, and
# (when the baseline carries latency series) serve experiments and diffs them
# against the newest BENCH_*.json baseline at the repo root with cmd/benchcmp,
# failing when any (graph, dir) series slowed down by more than the tolerance
# — or when one of the paired-ratio floors (mono vs closure, flat vs blocked
# span, auto vs its chosen route, serve p50/p99 vs baseline) breaks. benchcmp
# ends its run with one machine-readable BENCH_GATE line (per-gate pass/fail
# plus the worst observed ratio) for log grepping in advisory CI runs.
#
#   scripts/bench_compare.sh              compare a fresh run against the baseline
#   scripts/bench_compare.sh --self-test  prove the gate fires (no benchmarks run):
#                                         baseline-vs-itself must pass, and each
#                                         enabled ratio gate must flag a synthetic
#                                         degradation of the baseline
#
# Tolerance knob: GRB_BENCH_TOL, percent, default 15. Wall-clock numbers are
# noisy on shared machines, so CI runs this gate in ADVISORY mode (the
# workflow prints the verdict but does not fail the build); `make verify-bench`
# runs it as a hard gate for quiet machines and release checks. Raise
# GRB_BENCH_TOL (e.g. GRB_BENCH_TOL=30) rather than skipping the gate when a
# host is known to be noisy. This same wall-clock tolerance is what enforces
# "auto-blocking never regresses the traversal/dense configs": those series
# run under default routing, so an auto-blocker misfire shows up as a
# slowdown against the baseline.
#
# Mono knob: GRB_MONO_MIN, ratio, default 2 — every graph with paired
# mono/closure series (the dense experiment) must show the monomorphized
# kernel at least this many times faster than the closure kernel. The ratio
# divides out machine speed, so unlike the wall-clock tolerance it holds on
# noisy hosts. Set GRB_MONO_MIN=0 to disable.
#
# Blocked knob: GRB_BLOCKED_MIN, ratio, default 1.5 — every graph with paired
# flat/blocked span telemetry (the blocked experiment's SpGEMM A/B) must show
# the flat plan's modeled parallel span at least this many times the blocked
# plan's. The span is deterministic critical-path flops, so the floor holds
# even on single-core hosts where wall-clock parallelism cannot show up. Set
# GRB_BLOCKED_MIN=0 to disable.
#
# Auto knob: GRB_AUTO_MAX, ratio, default 1.25 — every graph with paired
# flat/auto series must show the auto route tracking whichever plan it chose
# (flat wall time, or forced-blocked span) within this factor. Set
# GRB_AUTO_MAX=0 to disable.
#
# Serve knob: GRB_SERVE_MAX, ratio, default 1.5 — every serve-<algo> latency
# series present in both files must keep its p50 and p99 within this factor
# of the baseline's. Serve series carry Seconds=0, so the wall-clock
# tolerance never judges them; this paired multiplicative gate is their only
# owner (sub-millisecond latencies need more headroom than a percentage
# tolerance gives). Skipped automatically against pre-serve baselines. Set
# GRB_SERVE_MAX=0 to disable.
set -eu
cd "$(dirname "$0")/.."

TOL="${GRB_BENCH_TOL:-15}"
MONOMIN="${GRB_MONO_MIN:-2}"
BLOCKEDMIN="${GRB_BLOCKED_MIN:-1.5}"
AUTOMAX="${GRB_AUTO_MAX:-1.25}"
SERVEMAX="${GRB_SERVE_MAX:-1.5}"

# Newest baseline by the PR sequence number in the filename.
BASELINE=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$BASELINE" ]; then
    echo "bench_compare: no BENCH_*.json baseline at the repo root; record one with scripts/bench_baseline.sh" >&2
    exit 2
fi
echo "bench_compare: baseline $BASELINE, tolerance ${TOL}% (GRB_BENCH_TOL), mono floor ${MONOMIN}x (GRB_MONO_MIN), blocked span floor ${BLOCKEDMIN}x (GRB_BLOCKED_MIN), auto guard ${AUTOMAX}x (GRB_AUTO_MAX), serve ceiling ${SERVEMAX}x (GRB_SERVE_MAX)"

# Pre-serve baselines carry no latency percentiles; the serve gate has
# nothing to pair against there, so run without the serve experiment at all.
if ! grep -q '"p50_ms"' "$BASELINE"; then
    echo "bench_compare: baseline has no serve latency series; skipping the serve gate"
    SERVEMAX=0
fi

if [ "${1:-}" = "--self-test" ]; then
    SELFMONO="$MONOMIN"
    if ! grep -q '"dir": *"mono"' "$BASELINE"; then
        # Pre-dense baselines carry no mono/closure pairs; the ratio gate
        # has nothing to judge there.
        echo "bench_compare: baseline has no mono series; skipping the speedup floor"
        SELFMONO=0
    fi
    SELFBLOCKED="$BLOCKEDMIN"
    SELFAUTO="$AUTOMAX"
    if ! grep -q '"span_flops"' "$BASELINE"; then
        # Pre-blocked baselines carry no span telemetry; neither blocked
        # ratio gate has anything to judge there.
        echo "bench_compare: baseline has no span telemetry; skipping the blocked and auto gates"
        SELFBLOCKED=0
        SELFAUTO=0
    fi
    go run ./cmd/benchcmp -tol "$TOL" -monomin "$SELFMONO" -blockedmin "$SELFBLOCKED" -automax "$SELFAUTO" -servemax "$SERVEMAX" -selftest "$BASELINE"
    exit $?
fi

SCALE=$(awk -F': *|,' '/"scale"/ {print $2; exit}' "$BASELINE")
SCALE="${SCALE:-14}"
CUR=$(mktemp /tmp/grbbench.XXXXXX.json)
trap 'rm -f "$CUR"' EXIT

RUN="traversal,dense,blocked"
if [ "$SERVEMAX" != "0" ]; then
    RUN="$RUN,serve"
fi
echo "bench_compare: measuring $RUN at scale $SCALE"
go run ./cmd/grbbench -run "$RUN" -scale "$SCALE" -json "$CUR" >/dev/null

go run ./cmd/benchcmp -tol "$TOL" -monomin "$MONOMIN" -blockedmin "$BLOCKEDMIN" -automax "$AUTOMAX" -servemax "$SERVEMAX" "$BASELINE" "$CUR"

package grb_test

// Benchmarks regenerating the artifacts of "Introduction to GraphBLAS 2.0":
// one benchmark (or benchmark family) per figure and table of the paper,
// plus the §II ablation and core-kernel baselines. Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/lagraph"
)

const benchScale = 12

// benchInit makes sure the library is initialized exactly once for the
// benchmark half of the test binary.
func benchInit(b *testing.B) {
	b.Helper()
	if _, err := grb.GlobalContext(); err != nil {
		if err := grb.Init(grb.NonBlocking); err != nil {
			b.Fatal(err)
		}
	}
}

var benchGraphs sync.Map // scale -> gen.Graph

func benchGraph(scale int) gen.Graph {
	if g, ok := benchGraphs.Load(scale); ok {
		return g.(gen.Graph)
	}
	g := gen.Graph500RMAT(scale, 16, 42).Symmetrize()
	benchGraphs.Store(scale, g)
	return g
}

func benchBoolMatrix(b *testing.B, scale int) *grb.Matrix[bool] {
	b.Helper()
	g := benchGraph(scale)
	a, err := grb.NewMatrix[bool](g.N, g.N)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.BoolWeights(g), grb.LOr); err != nil {
		b.Fatal(err)
	}
	return a
}

func benchFloatMatrix(b *testing.B, scale int) *grb.Matrix[float64] {
	b.Helper()
	g := benchGraph(scale)
	a, err := grb.NewMatrix[float64](g.N, g.N)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.UniformWeights(g, 0.5, 2, 42), grb.Plus[float64]); err != nil {
		b.Fatal(err)
	}
	return a
}

// ---------------------------------------------------------------------------
// Figure 1 — multithreaded sequences sharing a matrix through
// Wait(COMPLETE) + release/acquire.
// ---------------------------------------------------------------------------

func fig1Pipelines(b *testing.B, a *grb.Matrix[float64], concurrent bool) {
	dim := ck1(a.Nrows())
	for i := 0; i < b.N; i++ {
		esh := ck1(grb.NewMatrix[float64](dim, dim))
		var flag atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		t0 := func() {
			defer wg.Done()
			c := ck1(grb.NewMatrix[float64](dim, dim))
			ck(grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, nil))
			ck(grb.MxM(esh, nil, nil, grb.PlusTimes[float64](), a, c, nil))
			ck(esh.Wait(grb.Complete))
			flag.Store(1)
		}
		t1 := func() {
			defer wg.Done()
			g := ck1(grb.NewMatrix[float64](dim, dim))
			ck(grb.MxM(g, nil, nil, grb.PlusTimes[float64](), a, a, nil))
			ck(g.Wait(grb.Complete))
			for flag.Load() == 0 {
			}
			h := ck1(grb.NewMatrix[float64](dim, dim))
			ck(grb.MxM(h, nil, nil, grb.PlusTimes[float64](), g, esh, nil))
			ck(h.Wait(grb.Complete))
		}
		if concurrent {
			go t0()
			go t1()
		} else {
			t0()
			t1()
		}
		wg.Wait()
	}
}

func BenchmarkFig1_SharedSequencesSequential(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-4)
	b.ResetTimer()
	fig1Pipelines(b, a, false)
}

func BenchmarkFig1_SharedSequencesConcurrent(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-4)
	b.ResetTimer()
	fig1Pipelines(b, a, true)
}

// ---------------------------------------------------------------------------
// Figure 2 — hierarchical contexts bounding mxm parallelism.
// ---------------------------------------------------------------------------

func BenchmarkFig2_ContextThreads(b *testing.B) {
	benchInit(b)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			ctx, err := grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(threads), grb.WithChunk(1))
			if err != nil {
				b.Fatal(err)
			}
			defer func() { ck(ctx.Free()) }()
			a := benchFloatMatrix(b, benchScale-2)
			if err := a.SwitchContext(ctx); err != nil {
				b.Fatal(err)
			}
			dim := ck1(a.Nrows())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := ck1(grb.NewMatrix[float64](dim, dim, grb.InContext(ctx)))
				if err := grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, nil); err != nil {
					b.Fatal(err)
				}
				if err := c.Wait(grb.Materialize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 3 — select and apply with index unary operators.
// ---------------------------------------------------------------------------

func BenchmarkFig3_SelectUserTriuGT(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	myTriuGT := func(v float64, row, col grb.Index, s float64) bool { return col > row && v > s }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[float64](dim, dim))
		if err := grb.MatrixSelect(c, nil, nil, myTriuGT, a, 1.0, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(grb.Materialize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_ApplyColIndex(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[int](dim, dim))
		if err := grb.MatrixApplyIndexOp(c, nil, nil, grb.ColIndex[float64], a, 1, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(grb.Materialize); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table I — GrB_Scalar manipulation methods.
// ---------------------------------------------------------------------------

func BenchmarkTableI_ScalarLifecycle(b *testing.B) {
	benchInit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := ck1(grb.NewScalar[float64]())
		ck(s.SetElement(float64(i)))
		d := ck1(s.Dup())
		_, _ = ck2(d.ExtractElement())
		_ = ck1(d.Nvals())
		ck(s.Clear())
	}
}

// ---------------------------------------------------------------------------
// Table II — GrB_Scalar variants (reduce shown; the costly path).
// ---------------------------------------------------------------------------

func BenchmarkTableII_ReduceToScalarMonoid(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	s := ck1(grb.NewScalar[float64]())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := grb.MatrixReduceToScalar(s, nil, grb.PlusMonoid[float64](), a, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_ReduceToScalarBinaryOp(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	s := ck1(grb.NewScalar[float64]())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := grb.MatrixReduceToScalarBinaryOp(s, nil, grb.Plus[float64], a, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_AssignScalarObj(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-4)
	dim := ck1(a.Nrows())
	sv := ck1(grb.ScalarOf(3.5))
	rows := make([]grb.Index, dim/4)
	for k := range rows {
		rows[k] = k * 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(a.Dup())
		if err := grb.MatrixAssignScalarObj(c, nil, nil, sv, rows, rows, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(grb.Materialize); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table III — import/export formats and the opaque serializer.
// ---------------------------------------------------------------------------

func BenchmarkTableIII_Export(b *testing.B) {
	benchInit(b)
	for _, f := range []grb.Format{grb.FormatCSR, grb.FormatCSC, grb.FormatCOO} {
		b.Run(f.String(), func(b *testing.B) {
			a := benchFloatMatrix(b, benchScale)
			np, ni, nv, err := a.MatrixExportSize(f)
			if err != nil {
				b.Fatal(err)
			}
			indptr := make([]grb.Index, np)
			indices := make([]grb.Index, ni)
			values := make([]float64, nv)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.MatrixExportInto(f, indptr, indices, values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, f := range []grb.Format{grb.FormatDenseRow, grb.FormatDenseCol} {
		b.Run(f.String(), func(b *testing.B) {
			a := benchFloatMatrix(b, 9) // dense buffers are quadratic
			np, ni, nv := ck3(a.MatrixExportSize(f))
			indptr := make([]grb.Index, np)
			indices := make([]grb.Index, ni)
			values := make([]float64, nv)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.MatrixExportInto(f, indptr, indices, values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableIII_Import(b *testing.B) {
	benchInit(b)
	for _, f := range []grb.Format{grb.FormatCSR, grb.FormatCSC, grb.FormatCOO} {
		b.Run(f.String(), func(b *testing.B) {
			a := benchFloatMatrix(b, benchScale)
			dim := ck1(a.Nrows())
			indptr, indices, values, err := a.MatrixExport(f)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := grb.MatrixImport(dim, dim, indptr, indices, values, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableIII_SerializeDeserialize(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	blob, err := a.SerializeBytes()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serialize", func(b *testing.B) {
		buf := make([]byte, len(blob))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Serialize(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deserialize", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := grb.MatrixDeserialize[float64](blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Table IV — predefined index unary operators through select.
// ---------------------------------------------------------------------------

func BenchmarkTableIV_Select(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	cases := []struct {
		name string
		run  func(c *grb.Matrix[float64]) error
	}{
		{"TRIL", func(c *grb.Matrix[float64]) error { return grb.MatrixSelect(c, nil, nil, grb.TriL[float64], a, 0, nil) }},
		{"TRIU", func(c *grb.Matrix[float64]) error { return grb.MatrixSelect(c, nil, nil, grb.TriU[float64], a, 0, nil) }},
		{"DIAG", func(c *grb.Matrix[float64]) error { return grb.MatrixSelect(c, nil, nil, grb.Diag[float64], a, 0, nil) }},
		{"OFFDIAG", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.Offdiag[float64], a, 0, nil)
		}},
		{"ROWLE", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.RowLE[float64], a, dim/2, nil)
		}},
		{"ROWGT", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.RowGT[float64], a, dim/2, nil)
		}},
		{"COLLE", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ColLE[float64], a, dim/2, nil)
		}},
		{"COLGT", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ColGT[float64], a, dim/2, nil)
		}},
		{"VALUEEQ", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueEQ[float64], a, 1, nil)
		}},
		{"VALUENE", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueNE[float64], a, 1, nil)
		}},
		{"VALUELT", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueLT[float64], a, 1, nil)
		}},
		{"VALUELE", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueLE[float64], a, 1, nil)
		}},
		{"VALUEGT", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueGT[float64], a, 1, nil)
		}},
		{"VALUEGE", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueGE[float64], a, 1, nil)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ck1(grb.NewMatrix[float64](dim, dim))
				if err := tc.run(c); err != nil {
					b.Fatal(err)
				}
				if err := c.Wait(grb.Materialize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableIV_Apply(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	cases := []struct {
		name string
		op   grb.IndexUnaryOp[float64, int, int]
	}{
		{"ROWINDEX", grb.RowIndex[float64]},
		{"COLINDEX", grb.ColIndex[float64]},
		{"DIAGINDEX", grb.DiagIndex[float64]},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ck1(grb.NewMatrix[int](dim, dim))
				if err := grb.MatrixApplyIndexOp(c, nil, nil, tc.op, a, 1, nil); err != nil {
					b.Fatal(err)
				}
				if err := c.Wait(grb.Materialize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// §II ablation — native index access vs. packing indices into values.
// ---------------------------------------------------------------------------

type packedEntry struct {
	Row, Col int64
	Val      float64
}

func BenchmarkAblation_SelectTriu_NativeIndexOp(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[float64](dim, dim))
		if err := grb.MatrixSelect(c, nil, nil, grb.TriU[float64], a, 1, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(grb.Materialize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SelectTriu_PackedValues(b *testing.B) {
	benchInit(b)
	g := benchGraph(benchScale)
	w := gen.UniformWeights(g, 0.5, 2, 42)
	pw := make([]packedEntry, len(w))
	for k := range w {
		pw[k] = packedEntry{int64(g.Src[k]), int64(g.Dst[k]), w[k]}
	}
	a := ck1(grb.NewMatrix[packedEntry](g.N, g.N))
	if err := a.Build(g.Src, g.Dst, pw, grb.Second[packedEntry, packedEntry]); err != nil {
		b.Fatal(err)
	}
	unpacking := func(v packedEntry, _, _ grb.Index, _ int) bool { return v.Col > v.Row }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[packedEntry](g.N, g.N))
		if err := grb.MatrixSelect(c, nil, nil, unpacking, a, 0, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(grb.Materialize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ApplyRowIndex_Native(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[int](dim, dim))
		if err := grb.MatrixApplyIndexOp(c, nil, nil, grb.RowIndex[float64], a, 0, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(grb.Materialize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ApplyRowIndex_PackedValues(b *testing.B) {
	benchInit(b)
	g := benchGraph(benchScale)
	w := gen.UniformWeights(g, 0.5, 2, 42)
	pw := make([]packedEntry, len(w))
	for k := range w {
		pw[k] = packedEntry{int64(g.Src[k]), int64(g.Dst[k]), w[k]}
	}
	a := ck1(grb.NewMatrix[packedEntry](g.N, g.N))
	if err := a.Build(g.Src, g.Dst, pw, grb.Second[packedEntry, packedEntry]); err != nil {
		b.Fatal(err)
	}
	unpack := func(v packedEntry) int { return int(v.Row) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[int](g.N, g.N))
		if err := grb.MatrixApply(c, nil, nil, unpack, a, nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(grb.Materialize); err != nil {
			b.Fatal(err)
		}
	}
}

// Algorithm-level ablation: parent BFS with the 2.0 ROWINDEX apply versus
// the 1.X host-round-trip workaround (extract tuples, copy indices over
// values, rebuild).
func BenchmarkAblation_BFSParents_NativeIndexOp(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParents(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_BFSParents_LegacyPacked(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParentsLegacy(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// §III thread safety — independent method calls from many goroutines.
// ---------------------------------------------------------------------------

func BenchmarkThreadSafety_IndependentPipelines(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-4)
	dim := ck1(a.Nrows())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c := ck1(grb.NewMatrix[float64](dim, dim))
			if err := grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, nil); err != nil {
				b.Fatal(err)
			}
			if err := c.Wait(grb.Materialize); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Core-kernel and algorithm baselines.
// ---------------------------------------------------------------------------

func BenchmarkCore_MxM(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-2)
	dim := ck1(a.Nrows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[float64](dim, dim))
		ck(grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, nil))
		ck(c.Wait(grb.Materialize))
	}
}

func BenchmarkCore_MxMMasked(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-2)
	dim := ck1(a.Nrows())
	mask, err := grb.AsMask(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[float64](dim, dim))
		ck(grb.MxM(c, mask, nil, grb.PlusTimes[float64](), a, a, grb.DescS))
		ck(c.Wait(grb.Materialize))
	}
}

func BenchmarkCore_MxV(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	u := ck1(grb.NewVector[float64](dim))
	ck(grb.VectorAssignScalar(u, nil, nil, 1.0, grb.All, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ck1(grb.NewVector[float64](dim))
		ck(grb.MxV(w, nil, nil, grb.PlusTimes[float64](), a, u, nil))
		ck(w.Wait(grb.Materialize))
	}
}

func BenchmarkCore_VxMSparseFrontier(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	u := ck1(grb.NewVector[float64](dim))
	for k := 0; k < 32; k++ {
		ck(u.SetElement(1, k*dim/32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ck1(grb.NewVector[float64](dim))
		ck(grb.VxM(w, nil, nil, grb.PlusTimes[float64](), u, a, nil))
		ck(w.Wait(grb.Materialize))
	}
}

func BenchmarkCore_EWiseAdd(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[float64](dim, dim))
		ck(grb.EWiseAddMatrix(c, nil, nil, grb.Plus[float64], a, a, nil))
		ck(c.Wait(grb.Materialize))
	}
}

func BenchmarkCore_Transpose(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale)
	dim := ck1(a.Nrows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ck1(grb.NewMatrix[float64](dim, dim))
		ck(grb.Transpose(c, nil, nil, a, nil))
		ck(c.Wait(grb.Materialize))
	}
}

func BenchmarkAlgo_BFSLevels(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSLevels(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_BFSParents(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParents(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_PageRank(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.PageRank(a, 0.85, 1e-6, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_TriangleCount(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale-2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.TriangleCount(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_ConnectedComponents(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale-2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.ConnectedComponents(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_BetweennessCentrality4Sources(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BetweennessCentrality(a, []grb.Index{0, 1, 2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_ClusteringCoefficient(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.ClusteringCoefficient(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_KTruss4(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.KTruss(a, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_MIS(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale-2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.MIS(a, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Hypersparse regime — adaptive hash/dense accumulator selection. n is far
// larger than nnz, so a dense O(n) accumulator per worker is almost entirely
// wasted; the adaptive router must pick the hash SPA. The kernel=... variants
// pin each accumulator via the descriptor to expose the gap the router is
// closing, and the auto variant asserts (via KernelCounts) that it actually
// routed to hash.
// ---------------------------------------------------------------------------

const (
	hyperN   = 1 << 20
	hyperNNZ = 400_000
)

var hyperDescs = []struct {
	name string
	desc *grb.Descriptor
}{
	{"auto", nil},
	{"dense", grb.DescDenseSPA},
	{"hash", grb.DescHashSPA},
}

func benchHypersparseMatrix(b *testing.B) *grb.Matrix[float64] {
	b.Helper()
	g := gen.Hypersparse(hyperN, hyperNNZ, 1234)
	a, err := grb.NewMatrix[float64](g.N, g.N)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.UniformWeights(g, 0.5, 2, 99), grb.Plus[float64]); err != nil {
		b.Fatal(err)
	}
	return a
}

func BenchmarkHypersparse_MxM(b *testing.B) {
	benchInit(b)
	a := benchHypersparseMatrix(b)
	dim := ck1(a.Nrows())
	for _, tc := range hyperDescs {
		b.Run("kernel="+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			grb.ResetKernelCounts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := ck1(grb.NewMatrix[float64](dim, dim))
				if err := grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, tc.desc); err != nil {
					b.Fatal(err)
				}
				if err := c.Wait(grb.Materialize); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			dense, hash := grb.KernelCounts()
			b.ReportMetric(float64(dense)/float64(b.N), "dense-ranges/op")
			b.ReportMetric(float64(hash)/float64(b.N), "hash-ranges/op")
			if tc.name == "auto" && hash == 0 {
				b.Fatal("adaptive selection never chose the hash SPA on a hypersparse product")
			}
		})
	}
}

func BenchmarkHypersparse_MxV(b *testing.B) {
	benchInit(b)
	a := benchHypersparseMatrix(b)
	dim := ck1(a.Nrows())
	u := ck1(grb.NewVector[float64](dim))
	for k := 0; k < 1024; k++ {
		ck(u.SetElement(1, k*(dim/1024)))
	}
	// Pin DirPull: this family measures the gather-buffer selection, and
	// the direction router would otherwise serve the sparse frontier with
	// the push kernel (BenchmarkTraversal_BFS measures that axis).
	pullDescs := []struct {
		name string
		desc *grb.Descriptor
	}{
		{"auto", grb.DescPull},
		{"dense", &grb.Descriptor{AxB: grb.AxBDenseSPA, Dir: grb.DirPull}},
		{"hash", &grb.Descriptor{AxB: grb.AxBHashSPA, Dir: grb.DirPull}},
	}
	for _, tc := range pullDescs {
		b.Run("kernel="+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			grb.ResetKernelCounts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ck1(grb.NewVector[float64](dim))
				if err := grb.MxV(w, nil, nil, grb.PlusTimes[float64](), a, u, tc.desc); err != nil {
					b.Fatal(err)
				}
				if err := w.Wait(grb.Materialize); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			dense, hash := grb.KernelCounts()
			b.ReportMetric(float64(dense)/float64(b.N), "dense-ranges/op")
			b.ReportMetric(float64(hash)/float64(b.N), "hash-ranges/op")
			if tc.name == "auto" && hash == 0 {
				b.Fatal("adaptive selection never chose the hash gather on a hypersparse mxv")
			}
		})
	}
}

func BenchmarkAlgo_SSSP(b *testing.B) {
	benchInit(b)
	a := benchFloatMatrix(b, benchScale-2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.SSSP(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Direction-optimizing traversal — the same BFS pinned push, pinned pull and
// adaptively routed. The adaptive row must beat pull-only decisively: the
// narrow early/late frontiers are served by the push scatter while only the
// dense middle levels pay for full row gathers.
// ---------------------------------------------------------------------------

func BenchmarkTraversal_BFS(b *testing.B) {
	benchInit(b)
	a := benchBoolMatrix(b, benchScale)
	for _, tc := range []struct {
		name string
		dir  grb.Direction
	}{
		{"dir=push", grb.DirPush},
		{"dir=pull", grb.DirPull},
		{"dir=auto", grb.DirAuto},
	} {
		b.Run(tc.name, func(b *testing.B) {
			grb.ResetKernelCounts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lagraph.BFSLevelsDir(a, 0, tc.dir); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			push, pull := grb.DirectionCounts()
			b.ReportMetric(float64(push)/float64(b.N), "push-levels/op")
			b.ReportMetric(float64(pull)/float64(b.N), "pull-levels/op")
		})
	}
}

package grb

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/grblas/grb/internal/faults"
)

// Acceptance tests for the execution-hardening tentpole: memory budgets with
// graceful degradation, cancellation/deadline abort, and panic isolation.

// pathGraph builds the undirected path 0–1–…–(n-1) as a boolean adjacency
// matrix inside ctx, fully materialized.
func pathGraph(t *testing.T, ctx *Context, n int) *Matrix[bool] {
	t.Helper()
	a, err := NewMatrix[bool](n, n, InContext(ctx))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	var is, js []Index
	var xs []bool
	for i := 0; i < n-1; i++ {
		is = append(is, Index(i), Index(i+1))
		js = append(js, Index(i+1), Index(i))
		xs = append(xs, true, true)
	}
	if err := a.Build(is, js, xs, Second[bool, bool]); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := a.Wait(Materialize); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return a
}

// bfsLevelsInContext is a hand-rolled BFS-levels traversal with every object
// in ctx, so the context's budget governs each level's kernels. The graph
// must be symmetric (MxV over A equals the usual pull over Aᵀ then).
func bfsLevelsInContext(t *testing.T, ctx *Context, a *Matrix[bool], n int, src Index) *Vector[int] {
	t.Helper()
	desc := &Descriptor{Replace: true, Structure: true, Complement: true, Dir: DirAuto}
	levels, err := NewVector[int](n, InContext(ctx))
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	visited, err := NewVector[bool](n, InContext(ctx))
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	frontier, err := NewVector[bool](n, InContext(ctx))
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	if err := frontier.SetElement(true, src); err != nil {
		t.Fatalf("seed frontier: %v", err)
	}
	for depth := 0; ; depth++ {
		nv, err := frontier.Nvals()
		if err != nil {
			t.Fatalf("depth %d: Nvals: %v", depth, err)
		}
		if nv == 0 {
			break
		}
		if err := VectorAssignScalar(levels, frontier, nil, depth, All, DescS); err != nil {
			t.Fatalf("depth %d: assign levels: %v", depth, err)
		}
		if err := VectorAssignScalar(visited, frontier, nil, true, All, DescS); err != nil {
			t.Fatalf("depth %d: assign visited: %v", depth, err)
		}
		// frontier⟨¬visited,structure,replace⟩ = A ∨.∧ frontier
		if err := MxV(frontier, visited, nil, LOrLAnd(), a, frontier, desc); err != nil {
			t.Fatalf("depth %d: MxV: %v", depth, err)
		}
		if err := frontier.Wait(Materialize); err != nil {
			t.Fatalf("depth %d: frontier wait: %v", depth, err)
		}
	}
	if err := levels.Wait(Materialize); err != nil {
		t.Fatalf("levels wait: %v", err)
	}
	return levels
}

// TestBudgetedBFSMatchesUnbudgeted is the degradation acceptance test: a
// BFS drain under a memory limit far below the dense-route scratch must
// complete through degraded routes (direction flip away from the transpose,
// hash gather instead of the dense scatter) with results identical to the
// unbudgeted run.
func TestBudgetedBFSMatchesUnbudgeted(t *testing.T) {
	setMode(t, NonBlocking)
	const n = 200
	free, err := NewContext(NonBlocking, nil, WithThreads(4))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	want := bfsLevelsInContext(t, free, pathGraph(t, free, n), n, 0)

	// 300 bytes: the push route's transpose (~n·16B) and the pull route's
	// dense gather (n·2B) are both unaffordable; the frontier-sized hash
	// gather (≤ a few hundred bytes on a path graph) fits.
	tight, err := NewContext(NonBlocking, nil, WithThreads(4), WithMemoryLimit(300))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	ResetKernelCounts()
	got := bfsLevelsInContext(t, tight, pathGraph(t, tight, n), n, 0)
	degrades, _ := HardeningCounts()
	if degrades == 0 {
		t.Fatal("tight budget produced no degradations: the limit was not exercised")
	}

	wi, wx, err := want.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	gi, gx, err := got.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	if len(wi) != n || len(gi) != len(wi) {
		t.Fatalf("level counts differ: unbudgeted %d, budgeted %d (want %d)", len(wi), len(gi), n)
	}
	for k := range wi {
		if wi[k] != gi[k] || wx[k] != gx[k] {
			t.Fatalf("levels diverge at %d: unbudgeted (%d)=%d, budgeted (%d)=%d",
				k, wi[k], wx[k], gi[k], gx[k])
		}
	}
	if used := tight.MemoryUsed(); used != 0 {
		t.Fatalf("budget leak: %d bytes still reserved after drain", used)
	}
	if lim := tight.MemoryLimit(); lim != 300 {
		t.Fatalf("MemoryLimit = %d, want 300", lim)
	}
}

// TestBudgetExhaustionParksOutOfMemory: when even the cheapest degraded
// route cannot be charged, the operation parks GrB_OUT_OF_MEMORY — it never
// crashes and never silently truncates.
func TestBudgetExhaustionParksOutOfMemory(t *testing.T) {
	setMode(t, NonBlocking)
	ctx, err := NewContext(NonBlocking, nil, WithThreads(2), WithMemoryLimit(16))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	a := pathGraph(t, ctx, 64)
	u, err := NewVector[bool](64, InContext(ctx))
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	if err := u.SetElement(true, 0); err != nil {
		t.Fatalf("SetElement: %v", err)
	}
	w, err := NewVector[bool](64, InContext(ctx))
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	if err := MxV(w, nil, nil, LOrLAnd(), a, u, nil); err != nil {
		t.Fatalf("MxV: %v", err)
	}
	if err := w.Wait(Materialize); Code(err) != OutOfMemory {
		t.Fatalf("16-byte budget: err = %v, want OutOfMemory", err)
	}
	if w.ErrorString() == "" {
		t.Fatal("parked OutOfMemory has empty ErrorString")
	}
	if used := ctx.MemoryUsed(); used != 0 {
		t.Fatalf("budget leak after abort: %d bytes", used)
	}
}

// TestCancelParksCanceled: cancelling before the drain means the very first
// range checkpoint aborts — the sequence parks the Canceled execution error
// and surfaces it through Wait(Materialize) and ErrorString.
func TestCancelParksCanceled(t *testing.T) {
	setMode(t, NonBlocking)
	ctx, err := NewContext(NonBlocking, nil, WithThreads(2), WithCancel())
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	a := pathGraph(t, ctx, 64)
	c, err := NewMatrix[bool](64, 64, InContext(ctx))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(c, nil, nil, LOrLAnd(), a, a, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := ctx.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if !ctx.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if err := c.Wait(Materialize); Code(err) != Canceled {
		t.Fatalf("Wait after Cancel: err = %v, want Canceled", err)
	}
	if s := c.ErrorString(); !strings.Contains(s, "cancel") {
		t.Fatalf("ErrorString = %q, want it to mention cancellation", s)
	}
	// Cancel without WithCancel is an API error; on a nil context too.
	plain, err := NewContext(NonBlocking, nil)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	if err := plain.Cancel(); Code(err) != InvalidValue {
		t.Fatalf("Cancel without WithCancel: err = %v, want InvalidValue", err)
	}
}

// TestCancelMidDrainParksWithinOneGranule: a Delay injection at the range
// checkpoint widens the cancellation window; a concurrent Cancel must abort
// at that same checkpoint (the documented one-range-granule latency), not
// run the kernel to completion.
func TestCancelMidDrainParksWithinOneGranule(t *testing.T) {
	setMode(t, NonBlocking)
	faults.Enable(faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: 50 * time.Millisecond})
	defer faults.Disable()
	ctx, err := NewContext(NonBlocking, nil, WithThreads(2), WithCancel())
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	a := pathGraph(t, ctx, 128)
	c, err := NewMatrix[bool](128, 128, InContext(ctx))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(c, nil, nil, LOrLAnd(), a, a, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond) // land inside the delayed checkpoint
		if err := ctx.Cancel(); err != nil {
			t.Errorf("Cancel: %v", err)
		}
	}()
	err = c.Wait(Materialize)
	wg.Wait()
	if Code(err) != Canceled {
		t.Fatalf("mid-drain cancel: err = %v, want Canceled", err)
	}
}

// TestDeadlineParksCanceled: an expired WithDeadline aborts at the first
// checkpoint exactly like an explicit Cancel.
func TestDeadlineParksCanceled(t *testing.T) {
	setMode(t, NonBlocking)
	ctx, err := NewContext(NonBlocking, nil, WithThreads(2), WithDeadline(time.Now().Add(-time.Second)))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	a := pathGraph(t, ctx, 64)
	c, err := NewMatrix[bool](64, 64, InContext(ctx))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(c, nil, nil, LOrLAnd(), a, a, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := c.Wait(Materialize); Code(err) != Canceled {
		t.Fatalf("expired deadline: err = %v, want Canceled", err)
	}
	// A future deadline does not abort anything.
	future, err := NewContext(NonBlocking, nil, WithThreads(2), WithDeadline(time.Now().Add(time.Hour)))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	b := pathGraph(t, future, 64)
	d, err := NewMatrix[bool](64, 64, InContext(future))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(d, nil, nil, LOrLAnd(), b, b, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := d.Wait(Materialize); err != nil {
		t.Fatalf("future deadline aborted a healthy drain: %v", err)
	}
}

// TestInjectedPanicIsIsolated: a simulated kernel crash is recovered into a
// parked GrB_PANIC, the recovered-panic counter ticks, and the library keeps
// serving unrelated work afterwards.
func TestInjectedPanicIsIsolated(t *testing.T) {
	setMode(t, NonBlocking)
	a, u := chaosInputs(t)
	_ = u
	ResetKernelCounts()
	faults.Enable(faults.Rule{Site: "sparse.spgemm.spa", Action: faults.Panic, Hit: 1})
	c, err := NewMatrix[float64](16, 16)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	// SpecGeneric keeps the tagged semiring on the closure kernel whose SPA
	// site the rule arms (the mono path has its own sites).
	if err := MxM(c, nil, nil, PlusTimes[float64](), a, a, &Descriptor{AxB: AxBDenseSPA, Spec: SpecGeneric}); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := c.Wait(Materialize); Code(err) != Panic {
		t.Fatalf("injected panic: err = %v, want Panic", err)
	}
	if s := c.ErrorString(); !strings.Contains(s, "panic") {
		t.Fatalf("ErrorString = %q, want it to mention the panic", s)
	}
	faults.Disable()
	if _, panics := HardeningCounts(); panics == 0 {
		t.Fatal("recovered-panic counter did not tick")
	}
	// The process — and fresh objects — are unaffected.
	d, err := NewMatrix[float64](16, 16)
	if err != nil {
		t.Fatalf("NewMatrix after panic: %v", err)
	}
	if err := MxM(d, nil, nil, PlusTimes[float64](), a, a, nil); err != nil {
		t.Fatalf("MxM after panic: %v", err)
	}
	if err := d.Wait(Materialize); err != nil {
		t.Fatalf("Wait after panic: %v", err)
	}
}

// TestUserOperatorPanicIsolated: the guarantee holds for genuine panics out
// of user-supplied operators, not only injected ones — in deferred kernels
// and in immediate-mode reductions.
func TestUserOperatorPanicIsolated(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 8, 8, []Index{0, 1, 2}, []Index{1, 2, 3}, []float64{1, 2, 3})
	boom := func(x, y float64) float64 { panic("user operator bug") }
	c, err := NewMatrix[float64](8, 8)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(c, nil, nil, Semiring[float64, float64, float64]{
		Add: Monoid[float64]{Op: boom}, Mul: func(x, y float64) float64 { return x * y },
	}, a, a, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	// The add operator only fires on collisions; ensure the pattern has one.
	if err := c.Wait(Materialize); err != nil && Code(err) != Panic {
		t.Fatalf("user panic: err = %v, want nil or Panic", err)
	}
	// Immediate-mode: a panicking reduction operator returns GrB_PANIC
	// directly (no sequence to park on).
	if _, err := MatrixReduce(Monoid[float64]{Op: boom, Identity: 0}, a); Code(err) != Panic {
		t.Fatalf("immediate reduce panic: err = %v, want Panic", err)
	}
}

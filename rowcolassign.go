package grb

import (
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// RowAssign computes C⟨m'⟩(i, cols) = C(i, cols) ⊙ u: assignment of a vector
// into (part of) one row of C (GrB_Row_assign). The mask m, when present, is
// a vector mask over the row. u must have size len(cols); nil cols means the
// whole row.
func RowAssign[T any](c *Matrix[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	u *Vector[T], i Index, cols []Index, desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx, u.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	if i < 0 || i >= cOld.Rows {
		return errf(InvalidIndex, "RowAssign: row %d outside %d rows", i, cOld.Rows)
	}
	nc := cOld.Cols
	if cols != nil {
		nc = len(cols)
		for _, cc := range cols {
			if cc < 0 || cc >= cOld.Cols {
				return errf(InvalidIndex, "RowAssign: column index %d outside %d columns", cc, cOld.Cols)
			}
		}
	}
	if uvec.N != nc {
		return errf(DimensionMismatch, "RowAssign: source has size %d but region has size %d", uvec.N, nc)
	}
	if err := checkMaskDimsV(mk, cOld.Cols); err != nil {
		return err
	}
	cj := append([]Index(nil), cols...)
	if cols == nil {
		cj = nil
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("RowAssign").
			A(cOld.Rows, cOld.Cols, cOld.NNZ()).B(uvec.N, 1, uvec.NNZ())
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		// Extract the row, assign into it as a vector, mask over the row,
		// and splice the result back.
		rowInd, rowVal := cOld.Row(i)
		rowVec := &sparse.Vec[T]{N: cOld.Cols, Ind: rowInd, Val: rowVal}
		z, err := sparse.AssignV(rowVec, uvec, cj, accum)
		if err != nil {
			return nil, mapSparseErr(err, "RowAssign")
		}
		final := sparse.MaskApplyV(rowVec, z, mk, d.Replace)
		return spliceRow(cOld, i, final), nil
	})
}

// ColAssign computes C⟨m'⟩(rows, j) = C(rows, j) ⊙ u: assignment of a vector
// into (part of) one column of C (GrB_Col_assign). The mask, when present,
// is a vector mask over the column. u must have size len(rows); nil rows
// means the whole column.
func ColAssign[T any](c *Matrix[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	u *Vector[T], rows []Index, j Index, desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx, u.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	if j < 0 || j >= cOld.Cols {
		return errf(InvalidIndex, "ColAssign: column %d outside %d columns", j, cOld.Cols)
	}
	nr := cOld.Rows
	if rows != nil {
		nr = len(rows)
		for _, r := range rows {
			if r < 0 || r >= cOld.Rows {
				return errf(InvalidIndex, "ColAssign: row index %d outside %d rows", r, cOld.Rows)
			}
		}
	}
	if uvec.N != nr {
		return errf(DimensionMismatch, "ColAssign: source has size %d but region has size %d", uvec.N, nr)
	}
	if err := checkMaskDimsV(mk, cOld.Rows); err != nil {
		return err
	}
	ri := append([]Index(nil), rows...)
	if rows == nil {
		ri = nil
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("ColAssign").
			A(cOld.Rows, cOld.Cols, cOld.NNZ()).B(uvec.N, 1, uvec.NNZ())
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		// Work on the transpose so the column becomes a row, then
		// transpose back. O(nnz) each way; the forward transpose is the
		// cached view, so repeated column assigns on a settled matrix pay
		// only the splice and the way back.
		ct := sparse.TransposeCached(cOld)
		rowInd, rowVal := ct.Row(j)
		rowVec := &sparse.Vec[T]{N: ct.Cols, Ind: rowInd, Val: rowVal}
		z, err := sparse.AssignV(rowVec, uvec, ri, accum)
		if err != nil {
			return nil, mapSparseErr(err, "ColAssign")
		}
		final := sparse.MaskApplyV(rowVec, z, mk, d.Replace)
		return sparse.Transpose(spliceRow(ct, j, final)), nil
	})
}

// spliceRow returns a copy of m with row i replaced by the given vector
// (whose size is m.Cols).
func spliceRow[T any](m *sparse.CSR[T], i int, row *sparse.Vec[T]) *sparse.CSR[T] {
	out := &sparse.CSR[T]{Rows: m.Rows, Cols: m.Cols, Ptr: make([]int, m.Rows+1)}
	oldInd, _ := m.Row(i)
	newLen := len(m.Ind) - len(oldInd) + row.NNZ()
	out.Ind = make([]int, 0, newLen)
	out.Val = make([]T, 0, newLen)
	for r := 0; r < m.Rows; r++ {
		if r == i {
			out.Ind = append(out.Ind, row.Ind...)
			out.Val = append(out.Val, row.Val...)
		} else {
			ind, val := m.Row(r)
			out.Ind = append(out.Ind, ind...)
			out.Val = append(out.Val, val...)
		}
		out.Ptr[r+1] = len(out.Ind)
	}
	return out
}

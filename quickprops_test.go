package grb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the public API: algebraic
// identities that must hold for every randomly generated operand.

// genMatrix produces a random matrix plus its dense mirror.
func genMatrixForProps(t *testing.T, rng *rand.Rand, rows, cols int) (*Matrix[int], *denseM) {
	d := randDense(rng, rows, cols, 0.3+rng.Float64()*0.4)
	return d.toMatrix(t), d
}

// TestPropTransposeInvolution: (Aᵀ)ᵀ = A through the public API.
func TestPropTransposeInvolution(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		a, _ := genMatrixForProps(t, rng, rows, cols)
		at := ck1(NewMatrix[int](cols, rows))
		if err := Transpose(at, nil, nil, a, nil); err != nil {
			return false
		}
		att := ck1(NewMatrix[int](rows, cols))
		if err := Transpose(att, nil, nil, at, nil); err != nil {
			return false
		}
		ai, aj, ax := ck3(a.ExtractTuples())
		bi, bj, bx := ck3(att.ExtractTuples())
		if len(ai) != len(bi) {
			return false
		}
		for k := range ai {
			if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMxMIdentity: A·I = A = I·A over plus-times.
func TestPropMxMIdentity(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a, _ := genMatrixForProps(t, rng, n, n)
		var ii []Index
		var xx []int
		for i := 0; i < n; i++ {
			ii = append(ii, i)
			xx = append(xx, 1)
		}
		ident := mustMatrix(t, n, n, ii, ii, xx)
		left := ck1(NewMatrix[int](n, n))
		right := ck1(NewMatrix[int](n, n))
		if err := MxM(left, nil, nil, PlusTimes[int](), ident, a, nil); err != nil {
			return false
		}
		if err := MxM(right, nil, nil, PlusTimes[int](), a, ident, nil); err != nil {
			return false
		}
		ai, aj, ax := ck3(a.ExtractTuples())
		for _, m := range []*Matrix[int]{left, right} {
			bi, bj, bx := ck3(m.ExtractTuples())
			if len(ai) != len(bi) {
				return false
			}
			for k := range ai {
				if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMaskComplementPartition: for any mask, the masked result and the
// complement-masked result (both with replace) partition the unmasked
// result's pattern.
func TestPropMaskComplementPartition(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a, _ := genMatrixForProps(t, rng, n, n)
		b, _ := genMatrixForProps(t, rng, n, n)
		maskVal, maskOk := randDenseBool(rng, n, n, 0.5)
		mask := boolMatrix(t, maskVal, maskOk)
		full := ck1(NewMatrix[int](n, n))
		pos := ck1(NewMatrix[int](n, n))
		neg := ck1(NewMatrix[int](n, n))
		if err := EWiseAddMatrix(full, nil, nil, Plus[int], a, b, nil); err != nil {
			return false
		}
		if err := EWiseAddMatrix(pos, mask, nil, Plus[int], a, b, DescRS); err != nil {
			return false
		}
		if err := EWiseAddMatrix(neg, mask, nil, Plus[int], a, b, DescRSC); err != nil {
			return false
		}
		fn := ck1(full.Nvals())
		pn := ck1(pos.Nvals())
		nn := ck1(neg.Nvals())
		if pn+nn != fn {
			return false
		}
		// every full entry appears in exactly one side with the same value
		fi, fj, fx := ck3(full.ExtractTuples())
		for k := range fi {
			pv, pok := ck2(pos.ExtractElement(fi[k], fj[k]))
			nv, nok := ck2(neg.ExtractElement(fi[k], fj[k]))
			if pok == nok {
				return false
			}
			if pok && pv != fx[k] || nok && nv != fx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSelectPartition: TriL(s) and TriU(s+1) partition any matrix.
func TestPropSelectPartition(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64, sRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		a, _ := genMatrixForProps(t, rng, rows, cols)
		s := int(sRaw) % (cols + 1)
		lo := ck1(NewMatrix[int](rows, cols))
		hi := ck1(NewMatrix[int](rows, cols))
		if err := MatrixSelect(lo, nil, nil, TriL[int], a, s, nil); err != nil {
			return false
		}
		if err := MatrixSelect(hi, nil, nil, TriU[int], a, s+1, nil); err != nil {
			return false
		}
		an := ck1(a.Nvals())
		ln := ck1(lo.Nvals())
		hn := ck1(hi.Nvals())
		return ln+hn == an
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropBuildExtractRoundTrip: build ∘ extractTuples is the identity.
func TestPropBuildExtractRoundTrip(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(15)
		cols := 1 + rng.Intn(15)
		a, _ := genMatrixForProps(t, rng, rows, cols)
		I, J, X, err := a.ExtractTuples()
		if err != nil {
			return false
		}
		b := ck1(NewMatrix[int](rows, cols))
		if len(I) > 0 {
			if err := b.Build(I, J, X, nil); err != nil {
				return false
			}
		}
		bi, bj, bx := ck3(b.ExtractTuples())
		if len(bi) != len(I) {
			return false
		}
		for k := range I {
			if I[k] != bi[k] || J[k] != bj[k] || X[k] != bx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropEWiseAddCommutative: A ⊕ B = B ⊕ A for a commutative operator.
func TestPropEWiseAddCommutative(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		a, _ := genMatrixForProps(t, rng, rows, cols)
		b, _ := genMatrixForProps(t, rng, rows, cols)
		ab := ck1(NewMatrix[int](rows, cols))
		ba := ck1(NewMatrix[int](rows, cols))
		if err := EWiseAddMatrix(ab, nil, nil, Plus[int], a, b, nil); err != nil {
			return false
		}
		if err := EWiseAddMatrix(ba, nil, nil, Plus[int], b, a, nil); err != nil {
			return false
		}
		ai, aj, ax := ck3(ab.ExtractTuples())
		bi, bj, bx := ck3(ba.ExtractTuples())
		if len(ai) != len(bi) {
			return false
		}
		for k := range ai {
			if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropReduceAgreesWithTupleSum: reduce(+) equals summing the extracted
// tuples.
func TestPropReduceAgreesWithTupleSum(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := genMatrixForProps(t, rng, 1+rng.Intn(15), 1+rng.Intn(15))
		_, _, X := ck3(a.ExtractTuples())
		want := 0
		for _, x := range X {
			want += x
		}
		got, err := MatrixReduce(PlusMonoid[int](), a)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropExtractAssignInverse: assigning an extracted region back into the
// same place is the identity.
func TestPropExtractAssignInverse(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a, _ := genMatrixForProps(t, rng, n, n)
		k := 1 + rng.Intn(n)
		rows := rand.New(rand.NewSource(seed + 1)).Perm(n)[:k]
		cols := rand.New(rand.NewSource(seed + 2)).Perm(n)[:k]
		sub := ck1(NewMatrix[int](k, k))
		if err := MatrixExtract(sub, nil, nil, a, rows, cols, nil); err != nil {
			return false
		}
		back := ck1(a.Dup())
		if err := MatrixAssign(back, nil, nil, sub, rows, cols, nil); err != nil {
			return false
		}
		ai, aj, ax := ck3(a.ExtractTuples())
		bi, bj, bx := ck3(back.ExtractTuples())
		if len(ai) != len(bi) {
			return false
		}
		for t := range ai {
			if ai[t] != bi[t] || aj[t] != bj[t] || ax[t] != bx[t] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSerializeAfterOps: streams survive arbitrary preceding operations
// (exercises the snapshot/immutability discipline).
func TestPropSerializeAfterOps(t *testing.T) {
	setMode(t, NonBlocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a, _ := genMatrixForProps(t, rng, n, n)
		c := ck1(NewMatrix[int](n, n))
		if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
			return false
		}
		blob, err := c.SerializeBytes()
		if err != nil {
			return false
		}
		back, err := MatrixDeserialize[int](blob)
		if err != nil {
			return false
		}
		ci, cj, cx := ck3(c.ExtractTuples())
		bi, bj, bx := ck3(back.ExtractTuples())
		if len(ci) != len(bi) {
			return false
		}
		for k := range ci {
			if ci[k] != bi[k] || cj[k] != bj[k] || cx[k] != bx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAsMaskHelpers(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{0, 5})
	mask, err := AsMask(m)
	if err != nil {
		t.Fatal(err)
	}
	// value-mask semantics: 0 maps to false, 5 to true
	matrixEquals(t, mask, []Index{0, 1}, []Index{0, 1}, []bool{false, true})
	mask2, err := AsMaskFunc(m, func(v int) bool { return v == 0 })
	if err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, mask2, []Index{0, 1}, []Index{0, 1}, []bool{true, false})
	v := mustVector(t, 3, []Index{0, 2}, []float64{0, 2.5})
	vm, err := AsVectorMask(v)
	if err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, vm, []Index{0, 2}, []bool{false, true})
	vm2, err := AsVectorMaskFunc(v, func(float64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, vm2, []Index{0, 2}, []bool{true, true})
}

// An end-to-end graph-analytics pipeline on the GraphBLAS: generate (or
// load) a graph, derive structural statistics, run the LAGraph-style
// algorithm suite, and ship the result matrix as an opaque serialized
// stream — the workflow the GraphBLAS 2.0 data-transfer and context
// machinery exists to support.
//
// Usage: analytics [file.mtx]   (generates an RMAT graph when no file given)
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/lagraph"
	"github.com/grblas/grb/mtx"
)

func main() {
	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	// ---- ingest ----
	var a *grb.Matrix[bool]
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		coord, err := mtx.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		bools := make([]bool, len(coord.I))
		for k := range bools {
			bools[k] = true
		}
		a, err = grb.NewMatrix[bool](coord.Rows, coord.Cols)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Build(coord.I, coord.J, bools, grb.LOr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %dx%d\n", os.Args[1], coord.Rows, coord.Cols)
	} else {
		g := gen.Graph500RMAT(11, 8, 17).Symmetrize()
		var err error
		a, err = grb.NewMatrix[bool](g.N, g.N)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Build(g.Src, g.Dst, gen.BoolWeights(g), grb.LOr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated RMAT scale 11: %d vertices, %d edges\n", g.N, g.NumEdges())
	}
	n := must1(a.Nrows())
	nnz := must1(a.Nvals())

	// ---- structure ----
	fmt.Printf("\n-- structure --\n")
	fmt.Printf("density: %.5f\n", float64(nnz)/float64(n)/float64(n))
	hist, err := lagraph.DegreeHistogram(a)
	if err != nil {
		log.Fatal(err)
	}
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Printf("degrees: min %d, max %d, %d isolated\n",
		degrees[0], degrees[len(degrees)-1], hist[0])
	diam, err := lagraph.PseudoDiameter(a, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pseudo-diameter from vertex 0: %d\n", diam)

	// ---- algorithms ----
	fmt.Printf("\n-- algorithms --\n")
	comp, err := lagraph.ConnectedComponents(a)
	if err != nil {
		log.Fatal(err)
	}
	_, labels := must2(comp.ExtractTuples())
	compSizes := map[int]int{}
	for _, l := range labels {
		compSizes[l]++
	}
	largest := 0
	for _, s := range compSizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("connected components: %d (largest %d vertices)\n", len(compSizes), largest)

	tri, err := lagraph.TriangleCount(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", tri)

	lcc, err := lagraph.ClusteringCoefficient(a)
	if err != nil {
		log.Fatal(err)
	}
	mean := must1(grb.VectorReduce(grb.PlusMonoid[float64](), lcc))
	fmt.Printf("mean local clustering coefficient: %.4f\n", mean/float64(n))

	iset, err := lagraph.MIS(a, 7)
	if err != nil {
		log.Fatal(err)
	}
	in := must1(iset.Nvals())
	fmt.Printf("maximal independent set: %d vertices\n", in)

	core, err := lagraph.KCore(a, 4)
	if err != nil {
		log.Fatal(err)
	}
	cn := must1(core.Nvals())
	fmt.Printf("4-core: %d vertices\n", cn)

	bc, err := lagraph.BetweennessCentrality(a, []grb.Index{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	bi, bx := must2(bc.ExtractTuples())
	top, topV := -1, -1.0
	for k := range bi {
		if bx[k] > topV {
			topV = bx[k]
			top = bi[k]
		}
	}
	fmt.Printf("highest betweenness (4-source sample): vertex %d (%.1f)\n", top, topV)

	// ---- ship the adjacency as an opaque stream (§VII-B) ----
	blob, err := a.SerializeBytes()
	if err != nil {
		log.Fatal(err)
	}
	back, err := grb.MatrixDeserialize[bool](blob)
	if err != nil {
		log.Fatal(err)
	}
	bn := must1(back.Nvals())
	fmt.Printf("\nserialized adjacency: %d bytes; deserialized %d entries ok\n", len(blob), bn)
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) grb result, aborting on error.
func must1[A any](a A, err error) A { must(err); return a }

// must2 unwraps a (value, value, error) grb result, aborting on error.
func must2[A, B any](a A, b B, err error) (A, B) { must(err); return a, b }

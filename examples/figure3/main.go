// Figure 3 of "Introduction to GraphBLAS 2.0": index-unary operators driving
// the new select operation and the index variants of apply.
//
// The paper's figure takes a weighted digraph and shows (top right) a select
// with a user-defined operator keeping strictly-upper-triangular entries
// whose value exceeds a scalar s, and (bottom right) an apply with the
// predefined COLINDEX operator replacing every stored value with its column
// index plus 1. This program reproduces both operations, including the
// user-defined operator written exactly like the paper's my_triu_eq_INT32.
package main

import (
	"fmt"
	"log"

	grb "github.com/grblas/grb"
)

// myTriuGT is the Go rendering of the paper's user-defined index unary
// operator: keep entries strictly above the diagonal whose value exceeds s.
//
//	*out = (indices[1] > indices[0]) && (*in > *s)
func myTriuGT(v int32, row, col grb.Index, s int32) bool {
	return col > row && v > s
}

func printMatrix(name string, m *grb.Matrix[int32]) {
	nr := must1(m.Nrows())
	nc := must1(m.Ncols())
	I, J, X, err := m.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%dx%d, %d stored):\n", name, nr, nc, len(I))
	k := 0
	for i := 0; i < nr; i++ {
		fmt.Print("  [")
		for j := 0; j < nc; j++ {
			if k < len(I) && I[k] == i && J[k] == j {
				fmt.Printf(" %2d", X[k])
				k++
			} else {
				fmt.Print("  .")
			}
		}
		fmt.Println(" ]")
	}
}

func printIdx(name string, m *grb.Matrix[int]) {
	nr := must1(m.Nrows())
	nc := must1(m.Ncols())
	I, J, X, err := m.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%dx%d, %d stored):\n", name, nr, nc, len(I))
	k := 0
	for i := 0; i < nr; i++ {
		fmt.Print("  [")
		for j := 0; j < nc; j++ {
			if k < len(I) && I[k] == i && J[k] == j {
				fmt.Printf(" %2d", X[k])
				k++
			} else {
				fmt.Print("  .")
			}
		}
		fmt.Println(" ]")
	}
}

func main() {
	if err := grb.Init(grb.Blocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	// A weighted 7-vertex digraph in the spirit of Fig. 3(a).
	const n = 7
	a, err := grb.NewMatrix[int32](n, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(
		[]grb.Index{0, 0, 1, 1, 2, 3, 3, 4, 5, 6, 6},
		[]grb.Index{1, 3, 4, 6, 5, 0, 2, 5, 2, 2, 3},
		[]int32{2, 3, 8, 1, 1, 3, 3, 1, 2, 5, 7},
		nil,
	); err != nil {
		log.Fatal(err)
	}
	printMatrix("A — adjacency matrix of the weighted graph", a)

	// --- select, top right of Fig. 3 ---
	// C = select(myTriuGT, A, s=0): strictly upper entries with value > 0.
	// The paper's call:
	//   GrB_select(C, GrB_NULL, GrB_NULL, myTriuEqINT32, A, 0UL, GrB_NULL)
	op, err := grb.NewIndexUnaryOp(myTriuGT)
	if err != nil {
		log.Fatal(err)
	}
	c, err := grb.NewMatrix[int32](n, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := grb.MatrixSelect(c, nil, nil, op, a, int32(0), nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	printMatrix("select(my_triu_gt, A, s=0) — upper-triangular entries kept", c)

	// --- apply, bottom right of Fig. 3 ---
	// C = apply(GrB_COLINDEX, A, s=1): values replaced by column index + 1.
	// The paper's call:
	//   GrB_apply(C, GrB_NULL, GrB_NULL, GrB_COLINDEX_UINT64T, A, 1UL, GrB_NULL)
	d, err := grb.NewMatrix[int](n, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := grb.MatrixApplyIndexOp(d, nil, nil, grb.ColIndex[int32], a, 1, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	printIdx("apply(GrB_COLINDEX, A, s=1) — values replaced by column index + 1", d)
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) grb result, aborting on error.
func must1[A any](a A, err error) A { must(err); return a }

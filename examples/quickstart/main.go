// Quickstart: build a small weighted digraph as a GraphBLAS matrix, run one
// semiring product, and inspect the result — the "hello world" of the grb
// public API.
package main

import (
	"fmt"
	"log"

	grb "github.com/grblas/grb"
)

func main() {
	// Every GraphBLAS program starts by initializing the top-level context
	// (GrB_init). Blocking mode: each call completes before returning.
	if err := grb.Init(grb.Blocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	// A 4-vertex digraph: 0→1 (w 2), 0→2 (w 1), 1→3 (w 5), 2→3 (w 1).
	a, err := grb.NewMatrix[float64](4, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(
		[]grb.Index{0, 0, 1, 2},
		[]grb.Index{1, 2, 3, 3},
		[]float64{2, 1, 5, 1},
		nil, // no duplicates: dup operator may be nil in GraphBLAS 2.0
	); err != nil {
		log.Fatal(err)
	}

	// Two-hop shortest paths: C = A min.+ A over the tropical semiring.
	c, err := grb.NewMatrix[float64](4, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := grb.MxM(c, nil, nil, grb.MinPlus[float64](), a, a, nil); err != nil {
		log.Fatal(err)
	}
	I, J, X, err := c.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two-hop shortest path lengths (min-plus product):")
	for k := range I {
		fmt.Printf("  %d -> %d : %g\n", I[k], J[k], X[k])
	}

	// Reduce to a GrB_Scalar (§VI): total weight of all two-hop paths.
	total, err := grb.NewScalar[float64]()
	if err != nil {
		log.Fatal(err)
	}
	if err := grb.MatrixReduceToScalar(total, nil, grb.PlusMonoid[float64](), c, nil); err != nil {
		log.Fatal(err)
	}
	if v, ok := must2(total.ExtractElement()); ok {
		fmt.Printf("sum of all two-hop path lengths: %g\n", v)
	}

	// Element access: the 0→3 two-hop distance should be min(2+5, 1+1) = 2.
	if v, ok := must2(c.ExtractElement(0, 3)); ok {
		fmt.Printf("shortest two-hop 0 -> 3: %g\n", v)
	}
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must2 unwraps a (value, value, error) grb result, aborting on error.
func must2[A, B any](a A, b B, err error) (A, B) { must(err); return a, b }

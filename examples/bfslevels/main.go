// BFS over an RMAT power-law graph: the motivating workload class for the
// GraphBLAS. Runs both the level BFS (lor-land semiring with a complemented
// structural visited mask) and the parent BFS, whose implementation uses the
// GraphBLAS 2.0 ROWINDEX index-unary operator instead of the 1.X trick of
// packing vertex indices into the values array.
package main

import (
	"fmt"
	"log"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/lagraph"
)

func main() {
	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	const scale, edgeFactor = 12, 16
	g := gen.Graph500RMAT(scale, edgeFactor, 42).Symmetrize()
	fmt.Printf("RMAT scale %d: %d vertices, %d directed edges\n", scale, g.N, g.NumEdges())

	a, err := grb.NewMatrix[bool](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.BoolWeights(g), grb.LOr); err != nil {
		log.Fatal(err)
	}

	const src = 0
	levels, err := lagraph.BFSLevels(a, src)
	if err != nil {
		log.Fatal(err)
	}
	_, lx, err := levels.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int]int{}
	maxLevel := 0
	for _, l := range lx {
		hist[l]++
		if l > maxLevel {
			maxLevel = l
		}
	}
	fmt.Printf("BFS from %d reached %d vertices in %d levels:\n", src, len(lx), maxLevel+1)
	for l := 0; l <= maxLevel; l++ {
		fmt.Printf("  level %2d: %6d vertices\n", l, hist[l])
	}

	parents, err := lagraph.BFSParents(a, src)
	if err != nil {
		log.Fatal(err)
	}
	pi, px, err := parents.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	// Validate the parent tree against the level vector: every non-root
	// vertex's parent must sit exactly one level above it.
	bad := 0
	for k := range pi {
		v, p := pi[k], px[k]
		if v == src {
			continue
		}
		lv, _ := must2(levels.ExtractElement(v))
		lp, _ := must2(parents.ExtractElement(p))
		_ = lp
		plv, _ := must2(levels.ExtractElement(p))
		if plv != lv-1 {
			bad++
		}
	}
	fmt.Printf("BFS parent tree: %d vertices, %d level violations (want 0)\n", len(pi), bad)

	// Direction optimization end-to-end: the identical level BFS pinned to
	// the push (frontier scatter) kernel, the pull (masked gather over the
	// cached transpose) kernel, and the adaptive Beamer-style router, which
	// should push the narrow early/late frontiers and pull the dense middle.
	fmt.Println("direction-optimized traversal (same BFS, kernel pinned per run):")
	for _, tc := range []struct {
		name string
		dir  grb.Direction
	}{
		{"push", grb.DirPush},
		{"pull", grb.DirPull},
		{"auto", grb.DirAuto},
	} {
		grb.ResetKernelCounts()
		start := time.Now()
		lv, err := lagraph.BFSLevelsDir(a, src, tc.dir)
		if err != nil {
			log.Fatal(err)
		}
		if err := lv.Wait(grb.Materialize); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		push, pull := grb.DirectionCounts()
		fmt.Printf("  %-5s %-12v %d push / %d pull levels\n", tc.name, el, push, pull)
	}
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must2 unwraps a (value, value, error) grb result, aborting on error.
func must2[A, B any](a A, b B, err error) (A, B) { must(err); return a, b }

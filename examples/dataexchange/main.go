// Data transfer (§VII of the paper): moving matrices between GraphBLAS and
// the outside world through every Table III non-opaque format, through the
// opaque serialize/deserialize byte-stream API, and through Matrix Market
// files. Each path round-trips and is verified entry-for-entry.
package main

import (
	"bytes"
	"fmt"
	"log"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/mtx"
)

func equalTuples(a, b *grb.Matrix[float64]) bool {
	ai, aj, ax, err := a.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	bi, bj, bx, err := b.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	if len(ai) != len(bi) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
			return false
		}
	}
	return true
}

func main() {
	if err := grb.Init(grb.Blocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	g := gen.ErdosRenyi(64, 400, 99)
	w := gen.UniformWeights(g, 0.1, 10, 99)
	a, err := grb.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, w, grb.Plus[float64]); err != nil {
		log.Fatal(err)
	}
	nv := must1(a.Nvals())
	fmt.Printf("source matrix: %dx%d with %d entries\n", g.N, g.N, nv)

	hint := must1(a.MatrixExportHint())
	fmt.Printf("export hint from the implementation: %v\n\n", hint)

	// --- every Table III matrix format, using the paper's two-call flow ---
	for _, format := range []grb.Format{
		grb.FormatCSR, grb.FormatCSC, grb.FormatCOO, grb.FormatDenseRow, grb.FormatDenseCol,
	} {
		// 1. GrB_Matrix_exportSize: learn the array sizes.
		np, ni, nvals, err := a.MatrixExportSize(format)
		if err != nil {
			log.Fatal(err)
		}
		// 2. Allocate however we like (here: plain make).
		indptr := make([]grb.Index, np)
		indices := make([]grb.Index, ni)
		values := make([]float64, nvals)
		// 3. GrB_Matrix_export into our arrays.
		if err := a.MatrixExportInto(format, indptr, indices, values); err != nil {
			log.Fatal(err)
		}
		// 4. GrB_Matrix_import back into a fresh object.
		back, err := grb.MatrixImport(g.N, g.N, indptr, indices, values, format)
		if err != nil {
			log.Fatal(err)
		}
		// Dense imports store every position (including explicit zeros), so
		// compare those via a dense re-export instead of stored tuples.
		ok := false
		if format == grb.FormatDenseRow || format == grb.FormatDenseCol {
			_, _, v2, err := back.MatrixExport(format)
			if err != nil {
				log.Fatal(err)
			}
			ok = len(v2) == len(values)
			for k := range v2 {
				if v2[k] != values[k] {
					ok = false
					break
				}
			}
		} else {
			ok = equalTuples(a, back)
		}
		fmt.Printf("%-22v indptr=%5d indices=%5d values=%5d round-trip ok=%v\n",
			format, np, ni, nvals, ok)
	}

	// --- serialize / deserialize (§VII-B) ---
	size, err := a.SerializeSize()
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, size)
	nw, err := a.Serialize(buf)
	if err != nil {
		log.Fatal(err)
	}
	back, err := grb.MatrixDeserialize[float64](buf[:nw])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialize: %d bytes, round-trip ok=%v\n", nw, equalTuples(a, back))

	// Deserializing into the wrong domain is a DomainMismatch error.
	if _, err := grb.MatrixDeserialize[int32](buf[:nw]); grb.Code(err) == grb.DomainMismatch {
		fmt.Println("deserialize into wrong domain correctly rejected (GrB_DOMAIN_MISMATCH)")
	}

	// --- Matrix Market interchange ---
	I, J, X := must3(a.ExtractTuples())
	var mm bytes.Buffer
	if err := mtx.Write(&mm, g.N, g.N, I, J, X); err != nil {
		log.Fatal(err)
	}
	mmLen := mm.Len()
	coord, err := mtx.Read(&mm)
	if err != nil {
		log.Fatal(err)
	}
	back2, err := grb.MatrixImport(coord.Rows, coord.Cols, coord.J, coord.I, coord.X, grb.FormatCOO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Matrix Market: %d bytes of text, round-trip ok=%v\n", mmLen, equalTuples(a, back2))

	// --- vector formats ---
	v, err := grb.NewVector[float64](8)
	if err != nil {
		log.Fatal(err)
	}
	if err := v.Build([]grb.Index{1, 3, 6}, []float64{1.5, -2, 7}, nil); err != nil {
		log.Fatal(err)
	}
	for _, format := range []grb.Format{grb.FormatSparseVector, grb.FormatDenseVector} {
		indices, values, err := v.VectorExport(format)
		if err != nil {
			log.Fatal(err)
		}
		vb, err := grb.VectorImport(8, indices, values, format)
		if err != nil {
			log.Fatal(err)
		}
		bi, bx := must2(vb.ExtractTuples())
		// Dense round-trip stores explicit zeros: compare via dense read-back.
		fmt.Printf("%-22v -> %d entries back (%v %v)\n", format, len(bi), bi, bx)
	}
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) grb result, aborting on error.
func must1[A any](a A, err error) A { must(err); return a }

// must2 unwraps a (value, value, error) grb result, aborting on error.
func must2[A, B any](a A, b B, err error) (A, B) { must(err); return a, b }

// must3 unwraps a (value, value, value, error) grb result, aborting on error.
func must3[A, B, C any](a A, b B, c C, err error) (A, B, C) { must(err); return a, b, c }

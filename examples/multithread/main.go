// Figure 1 of "Introduction to GraphBLAS 2.0": a properly synchronized
// multithreaded GraphBLAS program. Two workers share a matrix Esh; worker 0
// computes it, forces it into the COMPLETE state with Wait, and then
// release-stores a flag; worker 1 spins with acquire-loads until the flag is
// set and only then reads Esh. This is the paper's completion +
// happens-before protocol rendered with goroutines and sync/atomic (whose
// atomics provide the acquire/release ordering the paper requires).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	grb "github.com/grblas/grb"
)

const n = 200

// randomMatrix builds an n×n matrix with m random entries.
func randomMatrix(seed int64, m int) *grb.Matrix[float64] {
	rng := rand.New(rand.NewSource(seed))
	a, err := grb.NewMatrix[float64](n, n)
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k < m; k++ {
		if err := a.SetElement(rng.Float64(), rng.Intn(n), rng.Intn(n)); err != nil {
			log.Fatal(err)
		}
	}
	return a
}

func main() {
	// Nonblocking mode: method calls may defer execution, so completion
	// (GrB_wait) genuinely matters before sharing objects across threads.
	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	var flag atomic.Int32 // the synchronization flag of Fig. 1
	esh, err := grb.NewMatrix[float64](n, n)
	if err != nil {
		log.Fatal(err)
	}
	var hres, dres *grb.Matrix[float64]

	var wg sync.WaitGroup
	wg.Add(2)

	// Thread 0 of Fig. 1: compute the shared matrix Esh, complete it,
	// release the flag, then continue with its private result Dres.
	go func() {
		defer wg.Done()
		a := randomMatrix(1, 4000)
		b := randomMatrix(2, 4000)
		c := must1(grb.NewMatrix[float64](n, n))
		d := randomMatrix(3, 4000)

		// GrB_mxm(C, A, B); GrB_mxm(Esh, D, C);
		if err := grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, b, nil); err != nil {
			log.Fatal(err)
		}
		if err := grb.MxM(esh, nil, nil, grb.PlusTimes[float64](), d, c, nil); err != nil {
			log.Fatal(err)
		}

		// GrB_wait(Esh, GrB_COMPLETE): force Esh into a shareable state.
		if err := esh.Wait(grb.Complete); err != nil {
			log.Fatal(err)
		}

		// #pragma omp atomic write release — flag = 1
		flag.Store(1)

		// GrB_mxm(Dres, A, Esh); GrB_wait(Dres, GrB_COMPLETE);
		dres = must1(grb.NewMatrix[float64](n, n))
		if err := grb.MxM(dres, nil, nil, grb.PlusTimes[float64](), a, esh, nil); err != nil {
			log.Fatal(err)
		}
		if err := dres.Wait(grb.Complete); err != nil {
			log.Fatal(err)
		}
	}()

	// Thread 1 of Fig. 1: local work, spin on the flag with acquire loads,
	// then read the shared Esh.
	go func() {
		defer wg.Done()
		e := randomMatrix(4, 4000)
		f := randomMatrix(5, 4000)
		g := must1(grb.NewMatrix[float64](n, n))

		// GrB_mxm(G, E, F);
		if err := grb.MxM(g, nil, nil, grb.PlusTimes[float64](), e, f, nil); err != nil {
			log.Fatal(err)
		}

		// while(tmp == 0) { #pragma omp atomic read acquire tmp = flag; }
		for flag.Load() == 0 {
		}

		// GrB_mxm(Hres, G, Esh); GrB_wait(Hres, GrB_COMPLETE);
		hres = must1(grb.NewMatrix[float64](n, n))
		if err := grb.MxM(hres, nil, nil, grb.PlusTimes[float64](), g, esh, nil); err != nil {
			log.Fatal(err)
		}
		if err := hres.Wait(grb.Complete); err != nil {
			log.Fatal(err)
		}
	}()

	wg.Wait() // end of the parallel region: barrier implied

	// Dres and Hres are available at this point (Fig. 1, line 54).
	dn := must1(dres.Nvals())
	hn := must1(hres.Nvals())
	en := must1(esh.Nvals())
	fmt.Printf("Esh:  %d stored entries (shared across threads via COMPLETE + release/acquire)\n", en)
	fmt.Printf("Dres: %d stored entries (thread 0 result)\n", dn)
	fmt.Printf("Hres: %d stored entries (thread 1 result)\n", hn)

	sd := must1(grb.MatrixReduce(grb.PlusMonoid[float64](), dres))
	sh := must1(grb.MatrixReduce(grb.PlusMonoid[float64](), hres))
	fmt.Printf("sum(Dres) = %.4f, sum(Hres) = %.4f\n", sd, sh)
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) grb result, aborting on error.
func must1[A any](a A, err error) A { must(err); return a }

// PageRank over an RMAT web-like graph, expressed entirely in GraphBLAS
// operations (semiring products, element-wise combines, masked apply for the
// dangling-vertex mass). Prints the top-ranked vertices.
package main

import (
	"fmt"
	"log"
	"sort"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/lagraph"
)

func main() {
	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	const scale, edgeFactor = 12, 8
	g := gen.Graph500RMAT(scale, edgeFactor, 7)
	fmt.Printf("RMAT scale %d: %d vertices, %d edges (directed)\n", scale, g.N, g.NumEdges())

	a, err := grb.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.UnitWeights[float64](g), grb.Plus[float64]); err != nil {
		log.Fatal(err)
	}

	res, err := lagraph.PageRank(a, 0.85, 1e-8, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations\n", res.Iterations)

	inds, ranks, err := res.Ranks.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	order := make([]int, len(inds))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return ranks[order[a]] > ranks[order[b]] })
	total := 0.0
	for _, r := range ranks {
		total += r
	}
	fmt.Printf("rank mass: %.6f (should be ~1)\n", total)
	fmt.Println("top 10 vertices by rank:")
	for k := 0; k < 10 && k < len(order); k++ {
		fmt.Printf("  #%2d vertex %6d rank %.6f\n", k+1, inds[order[k]], ranks[order[k]])
	}
}

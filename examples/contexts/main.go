// Execution contexts (§IV, Fig. 2 of "Introduction to GraphBLAS 2.0"):
// creating nested contexts with thread budgets, placing matrices in
// contexts at construction, the shared-context rule, and moving objects
// between contexts with SwitchContext.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
)

func main() {
	// GrB_init establishes the top-level context (Fig. 2, line 1).
	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	// GrB_Context_new with a parent: nested contexts form a hierarchy and
	// the effective parallelism of an operation is bounded by every
	// ancestor's budget. The C API passes implementation-defined execution
	// info through void*; the Go binding uses options.
	outer, err := grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	inner, err := grb.NewContext(grb.NonBlocking, outer, grb.WithThreads(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outer budget: %d threads\n", outer.Threads())
	fmt.Printf("inner asks for 16 but is clamped by its ancestor: %d threads\n", inner.Threads())

	// Constructors take the context as an optional argument (Fig. 2's new
	// GrB_Matrix_new signature).
	g := gen.Graph500RMAT(11, 8, 42).Symmetrize()
	a, err := grb.NewMatrix[float64](g.N, g.N, grb.InContext(outer))
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.UniformWeights(g, 0, 1, 42), grb.Plus[float64]); err != nil {
		log.Fatal(err)
	}

	// All operands of an operation must share a context (§IV). A matrix in
	// a different context is rejected...
	other := must1(grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(1)))
	b := must1(grb.NewMatrix[float64](g.N, g.N, grb.InContext(other)))
	c := must1(grb.NewMatrix[float64](g.N, g.N, grb.InContext(outer)))
	err = grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, b, nil)
	fmt.Printf("mixing contexts: %v\n", grb.Code(err))

	// ...until GrB_Context_switch moves it over (Fig. 2, line 19).
	if err := b.SwitchContext(outer); err != nil {
		log.Fatal(err)
	}
	if err := grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, b, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after SwitchContext: product accepted")

	// Thread budgets steer real work: time the same product under
	// different budgets (speedups saturate at the host's core count —
	// this machine has GOMAXPROCS =", see below).
	fmt.Printf("host cores: %d\n", runtime.GOMAXPROCS(0))
	for _, budget := range []int{1, 2, 4} {
		ctx := must1(grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(budget), grb.WithChunk(1)))
		ac := must1(a.Dup())
		if err := ac.SwitchContext(ctx); err != nil {
			log.Fatal(err)
		}
		out := must1(grb.NewMatrix[float64](g.N, g.N, grb.InContext(ctx)))
		start := time.Now()
		if err := grb.MxM(out, nil, nil, grb.PlusTimes[float64](), ac, ac, nil); err != nil {
			log.Fatal(err)
		}
		if err := out.Wait(grb.Materialize); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %d: mxm in %v\n", budget, time.Since(start))
		must(ctx.Free())
	}

	// Freeing a context invalidates it (GrB_free); GrB_finalize (deferred
	// above) frees all contexts.
	if err := outer.Free(); err != nil {
		log.Fatal(err)
	}
	_, err = grb.NewMatrix[float64](2, 2, grb.InContext(outer))
	fmt.Printf("construct in freed context: %v\n", grb.Code(err))
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) grb result, aborting on error.
func must1[A any](a A, err error) A { must(err); return a }

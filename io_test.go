package grb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatStringsAndPinnedValues(t *testing.T) {
	// §IX: GrB_Format members carry pinned values.
	if int(FormatCSR) != 0 || int(FormatCSC) != 1 || int(FormatCOO) != 2 ||
		int(FormatDenseRow) != 3 || int(FormatDenseCol) != 4 ||
		int(FormatSparseVector) != 5 || int(FormatDenseVector) != 6 {
		t.Fatal("format values not pinned per spec")
	}
	names := map[Format]string{
		FormatCSR:          "GrB_CSR_MATRIX",
		FormatCSC:          "GrB_CSC_MATRIX",
		FormatCOO:          "GrB_COO_MATRIX",
		FormatDenseRow:     "GrB_DENSE_ROW_MATRIX",
		FormatDenseCol:     "GrB_DENSE_COL_MATRIX",
		FormatSparseVector: "GrB_SPARSE_VECTOR",
		FormatDenseVector:  "GrB_DENSE_VECTOR",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q want %q", int(f), f.String(), want)
		}
	}
	if Format(9).String() != "GrB_Format(?)" {
		t.Error("unknown format name")
	}
}

// TestTableIII_CSRImportExport covers the CSR format exactly as Table III
// describes it, including unsorted rows.
func TestTableIII_CSRImportExport(t *testing.T) {
	setMode(t, Blocking)
	// 3x4 matrix; row 0 given with UNSORTED column indices (allowed).
	indptr := []Index{0, 2, 2, 4}
	indices := []Index{3, 0, 1, 2}
	values := []float64{30, 0.5, 21, 22}
	m, err := MatrixImport(3, 4, indptr, indices, values, FormatCSR)
	if err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, m,
		[]Index{0, 0, 2, 2}, []Index{0, 3, 1, 2}, []float64{0.5, 30, 21, 22})
	// export is sorted canonical CSR
	op, oi, ov, err := m.MatrixExport(FormatCSR)
	if err != nil {
		t.Fatal(err)
	}
	wantP := []Index{0, 2, 2, 4}
	for k := range wantP {
		if op[k] != wantP[k] {
			t.Fatalf("export indptr = %v", op)
		}
	}
	if oi[0] != 0 || oi[1] != 3 || ov[0] != 0.5 {
		t.Fatalf("export indices/values = %v %v", oi, ov)
	}
}

func TestTableIII_CSCImportExport(t *testing.T) {
	setMode(t, Blocking)
	// CSC of [[1 0],[2 3]]: col 0 holds rows {0,1}, col 1 holds {1}
	m, err := MatrixImport(2, 2,
		[]Index{0, 2, 3}, []Index{0, 1, 1}, []float64{1, 2, 3}, FormatCSC)
	if err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, m, []Index{0, 1, 1}, []Index{0, 0, 1}, []float64{1, 2, 3})
	p, i, v, err := m.MatrixExport(FormatCSC)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 || p[1] != 2 || p[2] != 3 || i[0] != 0 || i[1] != 1 || i[2] != 1 || v[2] != 3 {
		t.Fatalf("CSC export %v %v %v", p, i, v)
	}
}

// TestTableIII_COOConvention checks the paper's (unusual) COO convention:
// indptr carries COLUMN indices and indices carries ROW indices.
func TestTableIII_COOConvention(t *testing.T) {
	setMode(t, Blocking)
	cols := []Index{2, 0}
	rows := []Index{0, 1}
	vals := []float64{7, 8}
	m, err := MatrixImport(2, 3, cols, rows, vals, FormatCOO)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ck2(m.ExtractElement(0, 2)); !ok || v != 7 {
		t.Fatalf("COO placement wrong: (0,2)=%v,%v", v, ok)
	}
	ep, ei, ev, err := m.MatrixExport(FormatCOO)
	if err != nil {
		t.Fatal(err)
	}
	// row-major export order: (0,2) then (1,0)
	if ei[0] != 0 || ep[0] != 2 || ev[0] != 7 || ei[1] != 1 || ep[1] != 0 {
		t.Fatalf("COO export %v %v %v", ep, ei, ev)
	}
}

func TestTableIII_DenseFormats(t *testing.T) {
	setMode(t, Blocking)
	// values row-major: [[1 2],[3 4]]
	m, err := MatrixImport(2, 2, nil, nil, []int{1, 2, 3, 4}, FormatDenseRow)
	if err != nil {
		t.Fatal(err)
	}
	nv := ck1(m.Nvals())
	if nv != 4 {
		t.Fatalf("dense import nvals = %d", nv)
	}
	if v, _ := ck2(m.ExtractElement(1, 0)); v != 3 {
		t.Fatalf("(1,0)=%d", v)
	}
	// column-major same data: [[1 3],[2 4]]
	mc, err := MatrixImport(2, 2, nil, nil, []int{1, 2, 3, 4}, FormatDenseCol)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(mc.ExtractElement(1, 0)); v != 2 {
		t.Fatalf("col-major (1,0)=%d", v)
	}
	if v, _ := ck2(mc.ExtractElement(0, 1)); v != 3 {
		t.Fatalf("col-major (0,1)=%d", v)
	}
	// dense export of a sparse matrix fills absent positions with zeros
	sp := mustMatrix(t, 2, 2, []Index{0}, []Index{1}, []int{9})
	_, _, vals, err := sp.MatrixExport(FormatDenseRow)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 || vals[1] != 9 || vals[2] != 0 || vals[3] != 0 {
		t.Fatalf("dense export = %v", vals)
	}
	_, _, cvals := ck3(sp.MatrixExport(FormatDenseCol))
	if cvals[2] != 9 {
		t.Fatalf("dense col export = %v", cvals)
	}
}

func TestImportValidation(t *testing.T) {
	setMode(t, Blocking)
	// wrong indptr length
	if _, err := MatrixImport(2, 2, []Index{0, 1}, []Index{0}, []int{1}, FormatCSR); Code(err) != InvalidValue {
		t.Fatalf("short indptr: %v", err)
	}
	// nonmonotone indptr
	if _, err := MatrixImport(2, 2, []Index{0, 2, 1}, []Index{0, 1}, []int{1, 2}, FormatCSR); Code(err) != InvalidValue {
		t.Fatalf("nonmonotone: %v", err)
	}
	// out-of-range index
	if _, err := MatrixImport(2, 2, []Index{0, 1, 1}, []Index{5}, []int{1}, FormatCSR); Code(err) != InvalidIndex {
		t.Fatalf("bad index: %v", err)
	}
	// duplicates rejected
	if _, err := MatrixImport(2, 2, []Index{0, 2, 2}, []Index{1, 1}, []int{1, 2}, FormatCSR); Code(err) != InvalidValue {
		t.Fatalf("dup: %v", err)
	}
	// COO length mismatch / bad coords
	if _, err := MatrixImport(2, 2, []Index{0}, []Index{0, 1}, []int{1, 2}, FormatCOO); Code(err) != InvalidValue {
		t.Fatalf("coo len: %v", err)
	}
	if _, err := MatrixImport(2, 2, []Index{3}, []Index{0}, []int{1}, FormatCOO); Code(err) != InvalidIndex {
		t.Fatalf("coo bad: %v", err)
	}
	// dense wrong length
	if _, err := MatrixImport(2, 2, nil, nil, []int{1, 2, 3}, FormatDenseRow); Code(err) != InvalidValue {
		t.Fatalf("dense len: %v", err)
	}
	// vector format passed to matrix import
	if _, err := MatrixImport(2, 2, nil, nil, []int{1}, FormatSparseVector); Code(err) != InvalidValue {
		t.Fatalf("vec format: %v", err)
	}
	// and matrix format to vector import
	if _, err := VectorImport(2, nil, []int{1, 2}, FormatCSR); Code(err) != InvalidValue {
		t.Fatalf("mat format: %v", err)
	}
}

func TestExportSizeHintAndInsufficientSpace(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 2, 3, []Index{0, 1}, []Index{1, 2}, []float64{1, 2})
	np, ni, nv, err := m.MatrixExportSize(FormatCSR)
	if err != nil || np != 3 || ni != 2 || nv != 2 {
		t.Fatalf("exportSize = %d %d %d, %v", np, ni, nv, err)
	}
	hint, err := m.MatrixExportHint()
	if err != nil || hint != FormatCSR {
		t.Fatalf("hint = %v, %v", hint, err)
	}
	err = m.MatrixExportInto(FormatCSR, make([]Index, 2), make([]Index, 2), make([]float64, 2))
	wantCode(t, err, InsufficientSpace)
	if _, _, _, err := m.MatrixExportSize(Format(9)); Code(err) != InvalidValue {
		t.Fatalf("bad format: %v", err)
	}
}

func TestVectorImportExport(t *testing.T) {
	setMode(t, Blocking)
	v, err := VectorImport(5, []Index{3, 1}, []float64{3.5, 1.5}, FormatSparseVector)
	if err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, v, []Index{1, 3}, []float64{1.5, 3.5})
	hint := ck1(v.VectorExportHint())
	if hint != FormatSparseVector {
		t.Fatalf("hint = %v", hint)
	}
	ind, vals, err := v.VectorExport(FormatSparseVector)
	if err != nil || len(ind) != 2 || vals[0] != 1.5 {
		t.Fatalf("sparse export %v %v %v", ind, vals, err)
	}
	_, dvals, err := v.VectorExport(FormatDenseVector)
	if err != nil || len(dvals) != 5 || dvals[3] != 3.5 || dvals[0] != 0 {
		t.Fatalf("dense export %v %v", dvals, err)
	}
	dv, err := VectorImport(5, nil, dvals, FormatDenseVector)
	if err != nil {
		t.Fatal(err)
	}
	nv := ck1(dv.Nvals())
	if nv != 5 { // dense import stores explicit zeros
		t.Fatalf("dense import nvals = %d", nv)
	}
	if x, _ := ck2(dv.ExtractElement(3)); x != 3.5 {
		t.Fatalf("dense import (3)=%v", x)
	}
	// insufficient space
	err = v.VectorExportInto(FormatSparseVector, make([]Index, 1), make([]float64, 1))
	wantCode(t, err, InsufficientSpace)
	// dup indices rejected
	if _, err := VectorImport(5, []Index{1, 1}, []float64{1, 2}, FormatSparseVector); Code(err) != InvalidValue {
		t.Fatalf("dup: %v", err)
	}
}

// TestImportExportRoundTripProperty round-trips random matrices through
// every matrix format.
func TestImportExportRoundTripProperty(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		d := randDense(rng, rows, cols, 0.35)
		m := d.toMatrix(t)
		for _, format := range []Format{FormatCSR, FormatCSC, FormatCOO} {
			p, i, v, err := m.MatrixExport(format)
			if err != nil {
				return false
			}
			back, err := MatrixImport(rows, cols, p, i, v, format)
			if err != nil {
				return false
			}
			bi, bj, bx := ck3(back.ExtractTuples())
			ai, aj, ax := ck3(m.ExtractTuples())
			if len(bi) != len(ai) {
				return false
			}
			for k := range ai {
				if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
					return false
				}
			}
		}
		// dense round trip compares the dense views
		_, _, dv, err := m.MatrixExport(FormatDenseRow)
		if err != nil {
			return false
		}
		back, err := MatrixImport(rows, cols, nil, nil, dv, FormatDenseRow)
		if err != nil {
			return false
		}
		_, _, dv2, err := back.MatrixExport(FormatDenseRow)
		if err != nil || len(dv) != len(dv2) {
			return false
		}
		for k := range dv {
			if dv[k] != dv2[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

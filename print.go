package grb

import (
	"fmt"
	"strings"
)

// String renders a small matrix as a dense grid for debugging; large
// matrices render as a summary plus the leading tuples. Reading the matrix
// completes its sequence; if the sequence carries a parked error the error
// text is rendered instead (String must not fail).
func (m *Matrix[T]) String() string {
	if m == nil {
		return "Matrix(nil)"
	}
	if err := m.check(); err != nil {
		return "Matrix(uninitialized)"
	}
	if _, err := m.context(); err != nil {
		return "Matrix(<" + err.Error() + ">)"
	}
	c, err := m.snapshot()
	if err != nil {
		return "Matrix(<" + err.Error() + ">)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d, %d entries", c.Rows, c.Cols, c.NNZ())
	const gridLimit = 16
	if c.Rows <= gridLimit && c.Cols <= gridLimit {
		for i := 0; i < c.Rows; i++ {
			b.WriteString("\n  [")
			ind, val := c.Row(i)
			k := 0
			for j := 0; j < c.Cols; j++ {
				if k < len(ind) && ind[k] == j {
					fmt.Fprintf(&b, " %v", val[k])
					k++
				} else {
					b.WriteString(" .")
				}
			}
			b.WriteString(" ]")
		}
		return b.String()
	}
	I, J, X := c.Tuples(nil, nil, nil)
	limit := 10
	if len(I) < limit {
		limit = len(I)
	}
	for k := 0; k < limit; k++ {
		fmt.Fprintf(&b, "\n  (%d,%d) = %v", I[k], J[k], X[k])
	}
	if len(I) > limit {
		fmt.Fprintf(&b, "\n  ... %d more", len(I)-limit)
	}
	return b.String()
}

// String renders a vector for debugging (see Matrix.String).
func (v *Vector[T]) String() string {
	if v == nil {
		return "Vector(nil)"
	}
	if err := v.check(); err != nil {
		return "Vector(uninitialized)"
	}
	if _, err := v.context(); err != nil {
		return "Vector(<" + err.Error() + ">)"
	}
	s, err := v.snapshot()
	if err != nil {
		return "Vector(<" + err.Error() + ">)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Vector size %d, %d entries", s.N, s.NNZ())
	limit := 16
	if s.NNZ() < limit {
		limit = s.NNZ()
	}
	for k := 0; k < limit; k++ {
		fmt.Fprintf(&b, "\n  (%d) = %v", s.Ind[k], s.Val[k])
	}
	if s.NNZ() > limit {
		fmt.Fprintf(&b, "\n  ... %d more", s.NNZ()-limit)
	}
	return b.String()
}

// String renders the scalar for debugging.
func (s *Scalar[T]) String() string {
	if s == nil {
		return "Scalar(nil)"
	}
	if err := s.check(); err != nil {
		return "Scalar(uninitialized)"
	}
	v, ok, err := s.ExtractElement()
	if err != nil {
		return "Scalar(<" + err.Error() + ">)"
	}
	if !ok {
		return "Scalar(empty)"
	}
	return fmt.Sprintf("Scalar(%v)", v)
}

package gen

import "testing"

func TestErdosRenyiProperties(t *testing.T) {
	g := ErdosRenyi(50, 200, 7)
	if g.N != 50 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != 200 {
		t.Fatalf("edges = %d, want 200", g.NumEdges())
	}
	seen := map[[2]int]bool{}
	for k := range g.Src {
		if g.Src[k] == g.Dst[k] {
			t.Fatal("self loop")
		}
		if g.Src[k] < 0 || g.Src[k] >= 50 || g.Dst[k] < 0 || g.Dst[k] >= 50 {
			t.Fatal("out of range")
		}
		key := [2]int{g.Src[k], g.Dst[k]}
		if seen[key] {
			t.Fatal("duplicate edge")
		}
		seen[key] = true
	}
	// determinism
	g2 := ErdosRenyi(50, 200, 7)
	for k := range g.Src {
		if g.Src[k] != g2.Src[k] || g.Dst[k] != g2.Dst[k] {
			t.Fatal("not deterministic")
		}
	}
	// different seeds give different graphs
	g3 := ErdosRenyi(50, 200, 8)
	same := true
	for k := range g.Src {
		if g.Src[k] != g3.Src[k] || g.Dst[k] != g3.Dst[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds have no effect")
	}
	// saturation: more edges than possible is clamped
	tiny := ErdosRenyi(3, 100, 1)
	if tiny.NumEdges() != 6 {
		t.Fatalf("clamped edges = %d, want 6", tiny.NumEdges())
	}
}

func TestHypersparseProperties(t *testing.T) {
	const n, m = 100000, 400 // n ≫ m: almost every row empty
	g := Hypersparse(n, m, 11)
	if g.N != n {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != m {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), m)
	}
	seen := map[[2]int]bool{}
	rows := map[int]bool{}
	for k := range g.Src {
		if g.Src[k] == g.Dst[k] {
			t.Fatal("self loop")
		}
		if g.Src[k] < 0 || g.Src[k] >= n || g.Dst[k] < 0 || g.Dst[k] >= n {
			t.Fatal("out of range")
		}
		key := [2]int{g.Src[k], g.Dst[k]}
		if seen[key] {
			t.Fatal("duplicate edge")
		}
		seen[key] = true
		rows[g.Src[k]] = true
	}
	if len(rows) > m {
		t.Fatalf("%d populated rows from %d edges", len(rows), m)
	}
	g2 := Hypersparse(n, m, 11)
	for k := range g.Src {
		if g.Src[k] != g2.Src[k] || g.Dst[k] != g2.Dst[k] {
			t.Fatal("not deterministic")
		}
	}
	// saturation clamps like ErdosRenyi
	tiny := Hypersparse(3, 100, 1)
	if tiny.NumEdges() != 6 {
		t.Fatalf("clamped edges = %d, want 6", tiny.NumEdges())
	}
	if Hypersparse(1, 10, 1).NumEdges() != 0 {
		t.Fatal("n<2 should be empty")
	}
}

func TestHubHypersparseSkew(t *testing.T) {
	const n, m, hubs = 50000, 2000, 4
	g := HubHypersparse(n, m, hubs, 5)
	if g.N != n || g.NumEdges() == 0 || g.NumEdges() > m {
		t.Fatalf("N=%d edges=%d", g.N, g.NumEdges())
	}
	deg := map[int]int{}
	for k := range g.Src {
		if g.Src[k] == g.Dst[k] {
			t.Fatal("self loop")
		}
		if g.Dst[k] < 0 || g.Dst[k] >= n || g.Src[k] < 0 || g.Src[k] >= n {
			t.Fatal("out of range")
		}
		deg[g.Src[k]]++
	}
	// the hub rows must dominate: max degree far above the uniform average
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < (m/2/hubs)/2 {
		t.Fatalf("hub degree %d suspiciously low", maxDeg)
	}
	g2 := HubHypersparse(n, m, hubs, 5)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("not deterministic")
	}
}

func TestBlockDiagonalProperties(t *testing.T) {
	const n, blocks, m = 120, 4, 600
	g := BlockDiagonal(n, blocks, m, 9)
	if g.N != n || g.NumEdges() != m {
		t.Fatalf("N=%d edges=%d, want %d/%d", g.N, g.NumEdges(), n, m)
	}
	width := n / blocks
	seen := map[[2]int]bool{}
	for k := range g.Src {
		s, d := g.Src[k], g.Dst[k]
		if s == d {
			t.Fatal("self loop")
		}
		if s/width != d/width {
			t.Fatalf("edge (%d,%d) crosses block boundary", s, d)
		}
		key := [2]int{s, d}
		if seen[key] {
			t.Fatal("duplicate edge")
		}
		seen[key] = true
	}
	g2 := BlockDiagonal(n, blocks, m, 9)
	for k := range g.Src {
		if g.Src[k] != g2.Src[k] || g.Dst[k] != g2.Dst[k] {
			t.Fatal("not deterministic")
		}
	}
	// saturation: per-block capacity clamps the edge count
	tiny := BlockDiagonal(4, 2, 100, 1)
	if tiny.NumEdges() != 4 { // 2 blocks × 2·1 capacity
		t.Fatalf("clamped edges = %d, want 4", tiny.NumEdges())
	}
}

func TestGridPartitionedSkew(t *testing.T) {
	const n, grid, m = 2048, 8, 8192
	g := GridPartitioned(n, grid, m, 13)
	if g.N != n || g.NumEdges() == 0 || g.NumEdges() > m {
		t.Fatalf("N=%d edges=%d", g.N, g.NumEdges())
	}
	deg := map[int]int{}
	for k := range g.Src {
		if g.Src[k] == g.Dst[k] {
			t.Fatal("self loop")
		}
		if g.Src[k] < 0 || g.Src[k] >= n || g.Dst[k] < 0 || g.Dst[k] >= n {
			t.Fatal("out of range")
		}
		deg[g.Src[k]]++
	}
	// Each pivot row covers the whole heavy band of one tile's height, and
	// the two pivots sit in different tile rows (0 and 2+band).
	band := n / grid
	if deg[0] != band || deg[2+band] != band {
		t.Fatalf("pivot degrees %d/%d, want %d", deg[0], deg[2+band], band)
	}
	// The squared product's flops must concentrate on the pivot rows: each
	// pivot's flop count (Σ nnz of the band rows it points at) has to dwarf
	// the per-row average — the skew that defeats 1D flop-balanced
	// partitioning.
	bandNNZ := 0
	for b := 0; b < band; b++ {
		bandNNZ += deg[2+b]
	}
	totalFlops := 0
	for k := range g.Src {
		totalFlops += deg[g.Dst[k]]
	}
	pivotFlops := bandNNZ // one pivot row's flops
	if 4*pivotFlops < totalFlops {
		t.Fatalf("pivot flops %d of %d total: not skewed enough", pivotFlops, totalFlops)
	}
	g2 := GridPartitioned(n, grid, m, 13)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("not deterministic")
	}
}

func TestRMATProperties(t *testing.T) {
	g := Graph500RMAT(8, 8, 3)
	if g.N != 256 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8*256 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	seen := map[[2]int]bool{}
	for k := range g.Src {
		if g.Src[k] == g.Dst[k] {
			t.Fatal("self loop survived")
		}
		key := [2]int{g.Src[k], g.Dst[k]}
		if seen[key] {
			t.Fatal("duplicate survived")
		}
		seen[key] = true
	}
	g2 := Graph500RMAT(8, 8, 3)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("not deterministic")
	}
	// power-law-ish: max out-degree far above average
	deg := map[int]int{}
	for _, s := range g.Src {
		deg[s]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.NumEdges()) / 256
	if float64(maxDeg) < 3*avg {
		t.Fatalf("degree distribution suspiciously flat: max %d avg %.1f", maxDeg, avg)
	}
}

func TestSymmetrize(t *testing.T) {
	g := Graph{N: 3, Src: []int{0, 1}, Dst: []int{1, 2}}
	s := g.Symmetrize()
	if s.NumEdges() != 4 {
		t.Fatalf("edges = %d", s.NumEdges())
	}
	has := map[[2]int]bool{}
	for k := range s.Src {
		has[[2]int{s.Src[k], s.Dst[k]}] = true
	}
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !has[e] {
			t.Fatalf("missing edge %v", e)
		}
	}
	// symmetrizing twice is idempotent
	s2 := s.Symmetrize()
	if s2.NumEdges() != s.NumEdges() {
		t.Fatal("not idempotent")
	}
}

func TestRegularTopologies(t *testing.T) {
	grid := Grid2D(3, 4)
	if grid.N != 12 {
		t.Fatalf("grid N = %d", grid.N)
	}
	// 2*(3*3 + 2*4) = 34 directed edges
	if grid.NumEdges() != 34 {
		t.Fatalf("grid edges = %d", grid.NumEdges())
	}
	ring := Ring(5)
	if ring.NumEdges() != 5 || ring.Dst[4] != 0 {
		t.Fatalf("ring wrong: %v", ring.Dst)
	}
	path := Path(5)
	if path.NumEdges() != 4 {
		t.Fatalf("path edges = %d", path.NumEdges())
	}
	kb := CompleteBipartite(2, 3)
	if kb.N != 5 || kb.NumEdges() != 12 {
		t.Fatalf("K23: N=%d edges=%d", kb.N, kb.NumEdges())
	}
	star := Star(4)
	if star.NumEdges() != 6 {
		t.Fatalf("star edges = %d", star.NumEdges())
	}
}

func TestWeights(t *testing.T) {
	g := Path(10)
	w := UniformWeights(g, 2, 5, 42)
	if len(w) != g.NumEdges() {
		t.Fatal("length")
	}
	for _, x := range w {
		if x < 2 || x >= 5 {
			t.Fatalf("weight %v out of range", x)
		}
	}
	w2 := UniformWeights(g, 2, 5, 42)
	for k := range w {
		if w[k] != w2[k] {
			t.Fatal("not deterministic")
		}
	}
	u := UnitWeights[int](g)
	for _, x := range u {
		if x != 1 {
			t.Fatal("unit weight")
		}
	}
	b := BoolWeights(g)
	for _, x := range b {
		if !x {
			t.Fatal("bool weight")
		}
	}
}

func TestDedupAndNoSelfLoops(t *testing.T) {
	g := Graph{N: 3, Src: []int{0, 0, 1, 1, 2}, Dst: []int{1, 1, 1, 2, 2}}
	d := g.Dedup()
	if d.NumEdges() != 4 {
		t.Fatalf("dedup edges = %d", d.NumEdges())
	}
	// d = {(0,1),(1,1),(1,2),(2,2)}: removing the two self-loops leaves 2.
	n := d.NoSelfLoops()
	if n.NumEdges() != 2 {
		t.Fatalf("no-self-loop edges = %d", n.NumEdges())
	}
}

// Package gen provides deterministic graph and workload generators for the
// GraphBLAS examples, tests and benchmark harness: Erdős–Rényi and
// RMAT/Kronecker random graphs (the synthetic stand-ins for the paper's
// motivating graph workloads), plus regular topologies (grid, ring, path,
// complete bipartite) whose algorithmic results are known in closed form.
// All generators are seeded and reproducible.
package gen

import (
	"math/rand"
	"sort"
)

// Graph is an edge list over vertices 0..N-1. Edges are directed; use
// Symmetrize for undirected graphs.
type Graph struct {
	N   int
	Src []int
	Dst []int
}

// NumEdges returns the number of (directed) edges.
func (g Graph) NumEdges() int { return len(g.Src) }

// Dedup returns a copy with duplicate edges removed (keeping one copy) and
// edges sorted by (src, dst).
func (g Graph) Dedup() Graph {
	type e struct{ s, d int }
	es := make([]e, len(g.Src))
	for k := range g.Src {
		es[k] = e{g.Src[k], g.Dst[k]}
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].s != es[b].s {
			return es[a].s < es[b].s
		}
		return es[a].d < es[b].d
	})
	out := Graph{N: g.N}
	for k := range es {
		if k > 0 && es[k] == es[k-1] {
			continue
		}
		out.Src = append(out.Src, es[k].s)
		out.Dst = append(out.Dst, es[k].d)
	}
	return out
}

// NoSelfLoops returns a copy with self-loops removed.
func (g Graph) NoSelfLoops() Graph {
	out := Graph{N: g.N}
	for k := range g.Src {
		if g.Src[k] != g.Dst[k] {
			out.Src = append(out.Src, g.Src[k])
			out.Dst = append(out.Dst, g.Dst[k])
		}
	}
	return out
}

// Symmetrize returns the union of g and its reverse, deduplicated — an
// undirected graph in directed-edge form.
func (g Graph) Symmetrize() Graph {
	out := Graph{N: g.N,
		Src: make([]int, 0, 2*len(g.Src)),
		Dst: make([]int, 0, 2*len(g.Dst))}
	out.Src = append(out.Src, g.Src...)
	out.Dst = append(out.Dst, g.Dst...)
	out.Src = append(out.Src, g.Dst...)
	out.Dst = append(out.Dst, g.Src...)
	return out.Dedup()
}

// ErdosRenyi samples m directed edges uniformly at random (without
// duplicates or self-loops) over n vertices.
func ErdosRenyi(n, m int, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]struct{}, m)
	g := Graph{N: n}
	if n < 2 {
		return g
	}
	maxEdges := n * (n - 1)
	if m > maxEdges {
		m = maxEdges
	}
	for len(g.Src) < m {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		key := [2]int{s, d}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.Src = append(g.Src, s)
		g.Dst = append(g.Dst, d)
	}
	return g.Dedup()
}

// Hypersparse samples m distinct directed edges (no self-loops) uniformly
// over n vertices with n ≫ m in mind: most rows are empty, the regime where
// adaptive hash accumulators beat dense O(n) workspaces. Memory and time are
// O(m) regardless of n. Equivalent to ErdosRenyi but guarded against the
// n*(n-1) edge-capacity product overflowing for very large n.
func Hypersparse(n, m int, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n}
	if n < 2 || m <= 0 {
		return g
	}
	// Cap m at the n*(n-1) distinct-edge capacity without computing the
	// product (it overflows for n ~ 2^32 on 64-bit ints).
	if n-1 <= m/n {
		m = n * (n - 1)
	}
	seen := make(map[[2]int]struct{}, m)
	for len(g.Src) < m {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		key := [2]int{s, d}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.Src = append(g.Src, s)
		g.Dst = append(g.Dst, d)
	}
	return g.Dedup()
}

// HubHypersparse is a skewed hypersparse graph: `hubs` designated source
// rows (evenly spaced over [0, n)) emit half the edges between them while
// the other half is uniform. The hub rows carry orders of magnitude more
// flops than the rest, which is the workload that breaks nnz(A)-balanced
// row partitioning and exercises flop-balanced kernel selection.
func HubHypersparse(n, m, hubs int, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n}
	if n < 2 || m <= 0 {
		return g
	}
	if hubs < 1 {
		hubs = 1
	}
	if hubs > n {
		hubs = n
	}
	perHub := m / 2 / hubs
	for h := 0; h < hubs; h++ {
		src := h * (n / hubs)
		for k := 0; k < perHub; k++ {
			dst := rng.Intn(n)
			if dst == src {
				continue
			}
			g.Src = append(g.Src, src)
			g.Dst = append(g.Dst, dst)
		}
	}
	for len(g.Src) < m {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		g.Src = append(g.Src, s)
		g.Dst = append(g.Dst, d)
	}
	return g.Dedup()
}

// BlockDiagonal samples m distinct edges (no self-loops) confined to
// `blocks` equal-sized square blocks along the diagonal of the n×n
// adjacency: every edge's source and destination fall in the same block.
// The off-diagonal tiles of any grid partition aligned with the block count
// are empty, which is the friendly regime for a 2D-blocked engine — tile
// tasks over empty tiles are skipped by their nnz metadata.
func BlockDiagonal(n, blocks, m int, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n}
	if n < 2 || m <= 0 {
		return g
	}
	if blocks < 1 {
		blocks = 1
	}
	if blocks > n/2 {
		blocks = n / 2 // every block keeps >= 2 vertices so edges exist
	}
	width := n / blocks
	seen := make(map[[2]int]struct{}, m)
	// Cap m below the per-block capacity sum so the loop terminates.
	if capacity := blocks * width * (width - 1); m > capacity {
		m = capacity
	}
	for len(g.Src) < m {
		b := rng.Intn(blocks)
		lo := b * width
		s := lo + rng.Intn(width)
		d := lo + rng.Intn(width)
		if s == d {
			continue
		}
		key := [2]int{s, d}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.Src = append(g.Src, s)
		g.Dst = append(g.Dst, d)
	}
	return g.Dedup()
}

// GridPartitioned builds the adversarially skewed SUMMA workload for squared
// products (A·A): two pivot rows whose multiply flops dwarf every other
// row's. Row 0 and row 2+band each point at an entire "heavy band" of rows
// [2, 2+band); the band rows carry ~m·(15/16) edges between them, with
// destinations confined to the cold upper half [n/2, n) whose rows stay
// (near) empty; the remaining ~m/16 edges are uniform background. Squaring
// the matrix, each pivot row's flop count is Σ nnz(band) ≈ 15m/16 — far
// above total/threads — while band rows multiply into empty cold rows and
// cost almost nothing. A 1D flop-balanced partition cannot split a row, so a
// flat SpGEMM serializes each pivot row on one worker; a 2D-blocked plan
// splits the pivot rows across the grid's column tiles (the band's
// destinations spread over the cold half) and keeps every worker busy. The
// grid parameter sizes the band to one tile's height, which also places the
// two pivots in different tile rows (row 0 in tile row 0, row 2+band in tile
// row 1), so their tile tasks land on disjoint workers.
func GridPartitioned(n, grid, m int, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n}
	if n < 4 || m <= 0 {
		return g
	}
	if grid < 1 {
		grid = 1
	}
	if grid > n {
		grid = n
	}
	band := n / grid
	if band < 1 {
		band = 1
	}
	if band > n/2-2 {
		band = n/2 - 2
	}
	// Pivot rows 0 and 2+band each cover the whole band. Neither pivot is a
	// band row itself, so each pivot's flops are exactly the band's nnz.
	for b := 0; b < band; b++ {
		g.Src = append(g.Src, 0, 2+band)
		g.Dst = append(g.Dst, 2+b, 2+b)
	}
	// Heavy band: ~15/16 of the edge budget, destinations in the cold half.
	for k := 0; k < m-m/16-2*band; k++ {
		s := 2 + rng.Intn(band)
		d := n/2 + rng.Intn(n/2)
		g.Src = append(g.Src, s)
		g.Dst = append(g.Dst, d)
	}
	// Uniform background for the remaining budget.
	for len(g.Src) < m {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		g.Src = append(g.Src, s)
		g.Dst = append(g.Dst, d)
	}
	return g.Dedup()
}

// RMAT generates a Kronecker/RMAT power-law graph with 2^scale vertices and
// approximately edgeFactor * 2^scale edges, using the standard (a, b, c, d)
// recursive quadrant probabilities (Graph500 uses 0.57, 0.19, 0.19, 0.05).
// Duplicate edges and self-loops are removed, so the final edge count is
// slightly below the target.
func RMAT(scale, edgeFactor int, a, b, c float64, seed int64) Graph {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n, Src: make([]int, m), Dst: make([]int, m)}
	for k := 0; k < m; k++ {
		src, dst := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		g.Src[k] = src
		g.Dst[k] = dst
	}
	return g.NoSelfLoops().Dedup()
}

// Graph500RMAT generates an RMAT graph with the Graph500 quadrant
// probabilities (0.57, 0.19, 0.19).
func Graph500RMAT(scale, edgeFactor int, seed int64) Graph {
	return RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// Grid2D builds the 4-neighbour lattice on rows × cols vertices (directed
// both ways; i.e. already symmetric). Vertex (r, c) has index r*cols + c.
func Grid2D(rows, cols int) Graph {
	g := Graph{N: rows * cols}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Src = append(g.Src, id(r, c))
				g.Dst = append(g.Dst, id(r, c+1))
				g.Src = append(g.Src, id(r, c+1))
				g.Dst = append(g.Dst, id(r, c))
			}
			if r+1 < rows {
				g.Src = append(g.Src, id(r, c))
				g.Dst = append(g.Dst, id(r+1, c))
				g.Src = append(g.Src, id(r+1, c))
				g.Dst = append(g.Dst, id(r, c))
			}
		}
	}
	return g
}

// Ring builds the directed cycle 0→1→...→n-1→0.
func Ring(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		g.Src = append(g.Src, i)
		g.Dst = append(g.Dst, (i+1)%n)
	}
	return g
}

// Path builds the directed path 0→1→...→n-1.
func Path(n int) Graph {
	g := Graph{N: n}
	for i := 0; i+1 < n; i++ {
		g.Src = append(g.Src, i)
		g.Dst = append(g.Dst, i+1)
	}
	return g
}

// CompleteBipartite builds K_{m,n}: edges both ways between the two parts.
// Left part is vertices 0..m-1, right part m..m+n-1.
func CompleteBipartite(m, n int) Graph {
	g := Graph{N: m + n}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g.Src = append(g.Src, i)
			g.Dst = append(g.Dst, m+j)
			g.Src = append(g.Src, m+j)
			g.Dst = append(g.Dst, i)
		}
	}
	return g
}

// Star builds the star with center 0 and n-1 leaves (edges both ways).
func Star(n int) Graph {
	g := Graph{N: n}
	for i := 1; i < n; i++ {
		g.Src = append(g.Src, 0)
		g.Dst = append(g.Dst, i)
		g.Src = append(g.Src, i)
		g.Dst = append(g.Dst, 0)
	}
	return g
}

// UniformWeights draws one weight in [lo, hi) per edge of g, seeded.
func UniformWeights(g Graph, lo, hi float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, g.NumEdges())
	for k := range w {
		w[k] = lo + (hi-lo)*rng.Float64()
	}
	return w
}

// UnitWeights returns a weight of 1 per edge, for unweighted algorithms
// expressed over numeric semirings.
func UnitWeights[T ~int | ~int32 | ~int64 | ~float32 | ~float64](g Graph) []T {
	w := make([]T, g.NumEdges())
	for k := range w {
		w[k] = 1
	}
	return w
}

// BoolWeights returns a true value per edge, for structural adjacency
// matrices.
func BoolWeights(g Graph) []bool {
	w := make([]bool, g.NumEdges())
	for k := range w {
		w[k] = true
	}
	return w
}

// Frontier samples k distinct vertex indices over [0, n), sorted ascending —
// a reproducible traversal frontier for the push/pull benchmarks and the
// direction-differential tests. k is clamped to n.
func Frontier(n, k int, seed int64) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	// Partial Fisher-Yates over a lazily materialized identity permutation:
	// O(k) memory even when n is huge.
	picked := make(map[int]int, 2*k)
	at := func(i int) int {
		if v, ok := picked[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		out[i] = at(j)
		picked[j] = at(i)
	}
	sort.Ints(out)
	return out
}

GO ?= go

.PHONY: all build test race bench lint checktags chaos soak verify ci verify-bench

all: build test

build:
	$(GO) build ./...

# Tier-1: the gate every change must pass (see ROADMAP.md).
test: build
	$(GO) test ./...

# Race tier: the concurrency-sensitive packages under the race detector —
# the root package (multithreaded method calls, the nonblocking pipeline),
# internal/sparse (the dense-vs-hash differential kernel harness, which runs
# both accumulators across worker counts), internal/parallel and
# internal/obsv (concurrent emit into every sink).
race:
	$(GO) test -race . ./internal/sparse ./internal/parallel ./internal/obsv ./serve

# Kernel benchmarks, including the hypersparse adaptive-selection family.
bench:
	$(GO) test ./internal/sparse -run '^$$' -bench . -benchmem
	$(GO) test . -run '^$$' -bench Hypersparse -benchmem

# Static-analysis tier: grblint's nine analyzers (infocheck, snapshotcheck,
# lockcheck, enumcheck, budgetcheck, obsvcheck, sitecheck, atomiccheck,
# panicpathcheck) over every package including test files. Must report
# zero diagnostics; suppress deliberate cases with //grblint:ignore, and
# audit the suppressions with `go run ./cmd/grblint -audit-ignores ./...`.
lint:
	$(GO) run ./cmd/grblint -time ./...

# Invariant tier: the concurrency-sensitive suites with the grbcheck runtime
# validators compiled in — every CSR/Vec install re-validates the snapshot
# contract (monotone row pointers, sorted+unique indices, nnz consistency).
checktags:
	$(GO) test -tags grbcheck -race . ./internal/sparse

# Chaos tier: the fault-injection differential sweep (every registered site
# crossed with alloc-failure and panic shapes) plus the budget, cancellation,
# and panic-isolation suites, with the grbcheck validators compiled in. Any
# injected fault must surface as a parked §V execution error — never a crash —
# and every intermediate snapshot must still satisfy the invariants.
chaos:
	$(GO) test -tags grbcheck -race -count=1 \
	    -run 'TestChaos|TestScattered|TestFaultSpec|TestBudget|TestCancel|TestDeadline|TestInjectedPanic|TestUserOperatorPanic' .

# Soak tier: the serving stack's overload storm stretched to 10 seconds
# under -race — AIMD limiters, circuit breakers, bounded queues, and the
# memory governor running hot against armed delay + sampled allocation
# faults, then a clean-recovery check. CI runs this in advisory mode.
soak:
	GRB_SOAK=10s $(GO) test -race -count=1 -run 'TestOverloadSoak' ./serve

verify: test race lint checktags chaos soak

# The full tiered CI chain: build -> tier-1 -> race -> lint -> grbcheck ->
# coverage floor, with per-tier timing and a machine-readable CI_SUMMARY line.
ci:
	sh scripts/ci.sh

# Bench-regression gate as a hard failure (CI runs the same script in
# advisory mode — wall times are too noisy on shared runners). Tolerance via
# GRB_BENCH_TOL, percent, default 15.
verify-bench:
	sh scripts/bench_compare.sh

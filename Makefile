GO ?= go

.PHONY: all build test race bench verify

all: build test

build:
	$(GO) build ./...

# Tier-1: the gate every change must pass (see ROADMAP.md).
test: build
	$(GO) test ./...

# Race tier: the concurrency-sensitive packages under the race detector —
# the root package (multithreaded method calls, the nonblocking pipeline),
# internal/sparse (the dense-vs-hash differential kernel harness, which runs
# both accumulators across worker counts) and internal/parallel.
race:
	$(GO) test -race . ./internal/sparse ./internal/parallel

# Kernel benchmarks, including the hypersparse adaptive-selection family.
bench:
	$(GO) test ./internal/sparse -run '^$$' -bench . -benchmem
	$(GO) test . -run '^$$' -bench Hypersparse -benchmem

verify: test race

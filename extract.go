package grb

import (
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// MatrixExtract computes C⟨M⟩ = C ⊙ A(rows, cols): the submatrix of A
// selected by the index lists (GrB_extract). nil index slices (grb.All)
// select all indices; lists may repeat and reorder indices. C must be
// len(rows) × len(cols).
func MatrixExtract[T any](c *Matrix[T], mask *Matrix[bool], accum BinaryOp[T, T, T],
	a *Matrix[T], rows, cols []Index, desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx, a.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	er := ar
	if rows != nil {
		er = len(rows)
		for _, r := range rows {
			if r < 0 || r >= ar {
				return errf(InvalidIndex, "MatrixExtract: row index %d outside %d rows", r, ar)
			}
		}
	}
	ec := ac
	if cols != nil {
		ec = len(cols)
		for _, cc := range cols {
			if cc < 0 || cc >= ac {
				return errf(InvalidIndex, "MatrixExtract: column index %d outside %d columns", cc, ac)
			}
		}
	}
	if cOld.Rows != er || cOld.Cols != ec {
		return errf(DimensionMismatch, "MatrixExtract: output is %dx%d but extraction is %dx%d", cOld.Rows, cOld.Cols, er, ec)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	ri := append([]Index(nil), rows...)
	cj := append([]Index(nil), cols...)
	if rows == nil {
		ri = nil
	}
	if cols == nil {
		cj = nil
	}
	threads := ctx.threadsFor(acsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("MatrixExtract").WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).B(er, ec, 0)
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		A := maybeTranspose(acsr, d.Transpose0)
		t, err := sparse.ExtractM(A, ri, cj, threads)
		if err != nil {
			return nil, mapSparseErr(err, "MatrixExtract")
		}
		z := sparse.AccumMergeM(cOld, t, accum, threads)
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// VectorExtract computes w⟨m⟩ = w ⊙ u(idx): the subvector of u selected by
// the index list (GrB_extract on vectors). w must have size len(idx); nil
// selects all of u.
func VectorExtract[T any](w *Vector[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	u *Vector[T], idx []Index, desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{w.ctx, u.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	en := uvec.N
	if idx != nil {
		en = len(idx)
		for _, i := range idx {
			if i < 0 || i >= uvec.N {
				return errf(InvalidIndex, "VectorExtract: index %d outside size %d", i, uvec.N)
			}
		}
	}
	if wOld.N != en {
		return errf(DimensionMismatch, "VectorExtract: output has size %d but extraction has size %d", wOld.N, en)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	ci := append([]Index(nil), idx...)
	if idx == nil {
		ci = nil
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("VectorExtract").A(uvec.N, 1, uvec.NNZ()).B(en, 1, 0)
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		t, err := sparse.ExtractV(uvec, ci)
		if err != nil {
			return nil, mapSparseErr(err, "VectorExtract")
		}
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

// ColExtract computes w⟨m⟩ = w ⊙ A(rows, j): one column of A gathered
// through a row index list (GrB_Col_extract). With the Transpose0
// descriptor flag it extracts a row instead.
func ColExtract[T any](w *Vector[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	a *Matrix[T], rows []Index, j Index, desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{w.ctx, a.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	if j < 0 || j >= ac {
		return errf(InvalidIndex, "ColExtract: column %d outside %d columns", j, ac)
	}
	en := ar
	if rows != nil {
		en = len(rows)
		for _, r := range rows {
			if r < 0 || r >= ar {
				return errf(InvalidIndex, "ColExtract: row index %d outside %d rows", r, ar)
			}
		}
	}
	if wOld.N != en {
		return errf(DimensionMismatch, "ColExtract: output has size %d but extraction has size %d", wOld.N, en)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	ri := append([]Index(nil), rows...)
	if rows == nil {
		ri = nil
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("ColExtract").A(acsr.Rows, acsr.Cols, acsr.NNZ()).B(en, 1, 0)
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		A := maybeTranspose(acsr, d.Transpose0)
		t, err := sparse.ExtractColV(A, ri, j)
		if err != nil {
			return nil, mapSparseErr(err, "ColExtract")
		}
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

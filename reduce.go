package grb

import (
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// MatrixReduceToVector computes w⟨m⟩ = w ⊙ [⊕_j A(:,j)]: each row of A
// reduced with the monoid (GrB_Matrix_reduce to a vector). With the
// Transpose0 descriptor flag columns are reduced instead. Rows with no
// entries produce no output entry.
func MatrixReduceToVector[T any](w *Vector[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	monoid Monoid[T], a *Matrix[T], desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	if monoid.Op == nil {
		return errf(NullPointer, "MatrixReduceToVector: nil monoid")
	}
	ctxs := append([]*Context{w.ctx, a.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	n := acsr.Rows
	if d.Transpose0 {
		n = acsr.Cols
	}
	if wOld.N != n {
		return errf(DimensionMismatch, "MatrixReduceToVector: output has size %d but reduction has size %d", wOld.N, n)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("MatrixReduceToVector").WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).WithFlops(int64(acsr.NNZ()))
		if d.Transpose0 {
			ev.WithRoute("cols")
		} else {
			ev.WithRoute("rows")
		}
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		var t *sparse.Vec[T]
		if d.Transpose0 {
			t = sparse.ReduceCols(acsr, monoid.Op, threads)
		} else {
			t = sparse.ReduceRows(acsr, monoid.Op, threads)
		}
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

// MatrixReduceToScalar reduces all stored entries of A into a GrB_Scalar —
// one of the new Table II scalar-output variants. An empty matrix yields an
// empty scalar (with a nil accumulator), rather than the monoid identity
// the 1.X typed variants return; §VI of the paper highlights exactly this
// uniformity gain. With an accumulator, s = s ⊙ t when both sides have
// values; an empty reduction leaves s unchanged.
func MatrixReduceToScalar[T any](s *Scalar[T], accum BinaryOp[T, T, T],
	monoid Monoid[T], a *Matrix[T], desc *Descriptor) error {
	if monoid.Op == nil {
		return errf(NullPointer, "MatrixReduceToScalar: nil monoid")
	}
	return matrixReduceScalarCommon("MatrixReduceToScalar", s, accum, monoid.Op, a)
}

// MatrixReduceToScalarBinaryOp is the Table II variant
// GrB_reduce(GrB_Scalar, accum, GrB_BinaryOp, GrB_Matrix, desc): GraphBLAS
// 2.0 newly permits reduction with a plain associative binary operator
// instead of a monoid, possible precisely because an empty result is now
// representable (no identity value is needed).
func MatrixReduceToScalarBinaryOp[T any](s *Scalar[T], accum BinaryOp[T, T, T],
	op BinaryOp[T, T, T], a *Matrix[T], desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "MatrixReduceToScalarBinaryOp: nil operator")
	}
	return matrixReduceScalarCommon("MatrixReduceToScalarBinaryOp", s, accum, op, a)
}

func matrixReduceScalarCommon[T any](opName string, s *Scalar[T], accum BinaryOp[T, T, T],
	op BinaryOp[T, T, T], a *Matrix[T]) error {
	if s == nil {
		return errf(NullPointer, "%s: nil output scalar", opName)
	}
	if err := s.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	ctx, err := sameContext(s.ctx, a.ctx)
	if err != nil {
		return err
	}
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ())
	// Scalar reductions execute immediately (the scalar output has no
	// deferred sequence), so the event brackets the kernel here, seq 0.
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel(opName).WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).WithFlops(int64(acsr.NNZ()))
	}
	x := obsv.Begin(ev, 0)
	// Immediate-mode kernel: runStep isolates a panicking user operator the
	// same way the sequence-step guard does, but the error is returned
	// directly (a scalar has no sequence to park it on).
	r, err := runStep(opName, func() (reduceResult[T], error) {
		t, tok := sparse.ReduceAll(acsr, op, threads)
		return reduceResult[T]{t, tok}, nil
	})
	out := 0
	if r.ok {
		out = 1
	}
	x.End(out, err)
	if err != nil {
		return err
	}
	return installScalarReduce(s, accum, r.val, r.ok)
}

// reduceResult bundles a reduction's value and presence bit through the
// single-result runStep guard.
type reduceResult[T any] struct {
	val T
	ok  bool
}

// VectorReduceToScalar reduces all stored entries of u into a GrB_Scalar
// (Table II). An empty vector yields an empty scalar.
func VectorReduceToScalar[T any](s *Scalar[T], accum BinaryOp[T, T, T],
	monoid Monoid[T], u *Vector[T], desc *Descriptor) error {
	if monoid.Op == nil {
		return errf(NullPointer, "VectorReduceToScalar: nil monoid")
	}
	return vectorReduceScalarCommon("VectorReduceToScalar", s, accum, monoid.Op, u)
}

// VectorReduceToScalarBinaryOp is the Table II binary-operator variant of
// vector reduce.
func VectorReduceToScalarBinaryOp[T any](s *Scalar[T], accum BinaryOp[T, T, T],
	op BinaryOp[T, T, T], u *Vector[T], desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "VectorReduceToScalarBinaryOp: nil operator")
	}
	return vectorReduceScalarCommon("VectorReduceToScalarBinaryOp", s, accum, op, u)
}

func vectorReduceScalarCommon[T any](opName string, s *Scalar[T], accum BinaryOp[T, T, T],
	op BinaryOp[T, T, T], u *Vector[T]) error {
	if s == nil {
		return errf(NullPointer, "%s: nil output scalar", opName)
	}
	if err := s.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	if _, err := sameContext(s.ctx, u.ctx); err != nil {
		return err
	}
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel(opName).A(uvec.N, 1, uvec.NNZ()).WithFlops(int64(uvec.NNZ()))
	}
	x := obsv.Begin(ev, 0)
	r, err := runStep(opName, func() (reduceResult[T], error) {
		t, tok := sparse.ReduceVec(uvec, op)
		return reduceResult[T]{t, tok}, nil
	})
	out := 0
	if r.ok {
		out = 1
	}
	x.End(out, err)
	if err != nil {
		return err
	}
	return installScalarReduce(s, accum, r.val, r.ok)
}

// installScalarReduce merges a reduction result into the output scalar under
// the accumulator rules: no accum → s mirrors the (possibly empty) result;
// accum → combine when both sides are present.
func installScalarReduce[T any](s *Scalar[T], accum BinaryOp[T, T, T], t T, tok bool) error {
	if accum == nil {
		if !tok {
			return s.Clear()
		}
		return s.SetElement(t)
	}
	if !tok {
		return nil // empty reduction: s unchanged
	}
	old, ok, err := s.ExtractElement()
	if err != nil {
		return err
	}
	if !ok {
		return s.SetElement(t)
	}
	return s.SetElement(accum(old, t))
}

// MatrixReduce is the GraphBLAS 1.X-style typed reduction of a matrix: it
// returns the monoid identity when the matrix is empty. It exists alongside
// MatrixReduceToScalar so the 1.X/2.0 behavioural difference that §VI
// discusses can be observed directly.
func MatrixReduce[T any](monoid Monoid[T], a *Matrix[T]) (T, error) {
	var zero T
	if monoid.Op == nil {
		return zero, errf(NullPointer, "MatrixReduce: nil monoid")
	}
	if err := a.check(); err != nil {
		return zero, err
	}
	ctx, err := a.context()
	if err != nil {
		return zero, err
	}
	acsr, err := a.snapshot()
	if err != nil {
		return zero, err
	}
	r, err := runStep("MatrixReduce", func() (reduceResult[T], error) {
		t, ok := sparse.ReduceAll(acsr, monoid.Op, ctx.threadsFor(acsr.NNZ()))
		return reduceResult[T]{t, ok}, nil
	})
	if err != nil {
		return zero, err
	}
	if !r.ok {
		return monoid.Identity, nil
	}
	return r.val, nil
}

// VectorReduce is the 1.X-style typed reduction of a vector, returning the
// monoid identity when empty.
func VectorReduce[T any](monoid Monoid[T], u *Vector[T]) (T, error) {
	var zero T
	if monoid.Op == nil {
		return zero, errf(NullPointer, "VectorReduce: nil monoid")
	}
	if err := u.check(); err != nil {
		return zero, err
	}
	if _, err := u.context(); err != nil {
		return zero, err
	}
	uvec, err := u.snapshot()
	if err != nil {
		return zero, err
	}
	r, err := runStep("VectorReduce", func() (reduceResult[T], error) {
		t, ok := sparse.ReduceVec(uvec, monoid.Op)
		return reduceResult[T]{t, ok}, nil
	})
	if err != nil {
		return zero, err
	}
	if !r.ok {
		return monoid.Identity, nil
	}
	return r.val, nil
}

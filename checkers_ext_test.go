package grb_test

// ck fails the running test by panicking on an unexpected error from a grb
// call; grblint (infocheck) forbids discarding these silently.
func ck(err error) {
	if err != nil {
		panic(err)
	}
}

// ck1 unwraps a (value, error) grb result, panicking on error.
func ck1[A any](a A, err error) A { ck(err); return a }

// ck2 unwraps a (value, value, error) grb result, panicking on error.
func ck2[A, B any](a A, b B, err error) (A, B) { ck(err); return a, b }

// ck3 unwraps a (value, value, value, error) grb result, panicking on error.
func ck3[A, B, C any](a A, b B, c C, err error) (A, B, C) { ck(err); return a, b, c }

package grb

import (
	"io"
	"net/http"

	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// This file is the public face of the observability subsystem (internal/obsv;
// see DESIGN.md, "Observability"). The library records one structured event
// per kernel execution — op name, operand dims/nnz, the kernel route actually
// taken, flop estimate, wall time, scratch bytes, goroutine fan-out — and one
// span per deferred-sequence drain, and fans them out to whichever sinks are
// enabled here: a per-op metrics registry, a Chrome-trace JSON writer, and an
// HTTP endpoint. With every sink off (the default) each emit point costs one
// atomic load and zero allocations.

// OpMetrics is one operation's aggregated totals since the last ResetMetrics.
type OpMetrics = obsv.OpMetrics

// EnableMetrics turns the in-process per-op metrics registry on or off,
// returning the previous setting. Read the totals with Metrics.
func EnableMetrics(on bool) bool { return obsv.EnableMetrics(on) }

// MetricsEnabled reports whether the metrics registry is collecting.
func MetricsEnabled() bool { return obsv.MetricsEnabled() }

// Metrics returns the per-op totals collected since the last ResetMetrics,
// keyed by operation name ("MxM", "VxM", "sequence(vector)", ...).
func Metrics() map[string]OpMetrics { return obsv.MetricsSnapshot() }

// MetricsOps returns the recorded operation names in sorted order.
func MetricsOps() []string { return obsv.MetricsOps() }

// ResetMetrics drops all per-op totals.
func ResetMetrics() { obsv.ResetMetrics() }

// TraceTo starts a trace session that buffers every kernel event and sequence
// span, then writes them to w as Chrome-trace-format JSON (load the file in
// chrome://tracing or Perfetto) when StopTrace is called. Only one trace
// session may be active; a second TraceTo fails.
func TraceTo(w io.Writer) error {
	if err := obsv.TraceToWriter(w); err != nil {
		return errf(InvalidValue, "TraceTo: %v", err)
	}
	return nil
}

// TraceToFile starts a persistent trace session writing to path: FlushTrace
// (called automatically by Finalize) rewrites the file with everything
// collected so far, so the trace survives Init/Finalize cycles. This is the
// session the GRB_TRACE=path environment variable starts at Init.
func TraceToFile(path string) error {
	if err := obsv.TraceToFile(path); err != nil {
		return errf(InvalidValue, "TraceToFile: %v", err)
	}
	return nil
}

// StopTrace ends the active trace session, serializing the buffered events
// to the session's writer or file.
func StopTrace() error {
	if err := obsv.EndTrace(); err != nil {
		return errf(InvalidValue, "StopTrace: %v", err)
	}
	return nil
}

// FlushTrace writes the cumulative buffer of a file trace session to its
// path and keeps collecting; it is a no-op for writer sessions. Finalize
// calls it so a GRB_TRACE file is valid even if the process never ends the
// session explicitly.
func FlushTrace() error {
	err := obsv.FlushTrace()
	if err != nil && err != obsv.ErrNotTracing {
		return errf(InvalidValue, "FlushTrace: %v", err)
	}
	return nil
}

// Tracing reports whether a trace session is collecting events.
func Tracing() bool { return obsv.Tracing() }

// MetricsHandler returns an expvar-style HTTP handler exposing the sink
// states, per-op metrics, and kernel-routing counters as JSON, for
// long-running serving processes:
//
//	http.Handle("/debug/grb", grb.MetricsHandler())
func MetricsHandler() http.Handler { return obsv.Handler() }

// evKernel builds the call-time half of a kernel event, or nil when no sink
// is observing — the nil flows through enqueue/Begin/End untouched, keeping
// the disabled path allocation-free.
func evKernel(op string) *obsv.Event {
	if !obsv.Active() {
		return nil
	}
	return &obsv.Event{Op: op, Kind: "kernel"}
}

// routeName names the descriptor's multiply-kernel request for the event's
// Route field; the adaptive "auto" is refined at End from counter deltas.
func routeName(m AxBMethod) string {
	switch m {
	case AxBDenseSPA:
		return "dense"
	case AxBHashSPA:
		return "hash"
	case AxBDefault:
		return "auto"
	default:
		return "auto"
	}
}

// pushPull names a direction-optimizing dispatch decision.
func pushPull(usePush bool) string {
	if usePush {
		return "push"
	}
	return "pull"
}

// mxmFlops returns the flop upper bound of A·B, or 0 when either input is
// transposed — estimating through a transpose would materialize it eagerly
// at call time, changing the deferred sequence's behavior just because a
// sink is watching. Only called when a sink is active.
func mxmFlops[DA, DB any](a *sparse.CSR[DA], b *sparse.CSR[DB], ta, tb bool) int64 {
	if ta || tb {
		return 0
	}
	return sparse.SpGEMMFlopsTotal(a, b)
}

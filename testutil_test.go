package grb

import "testing"

// setMode (re)initializes the library in the requested mode for one test,
// restoring a clean slate afterwards. Tests that depend on the execution
// mode must not run in parallel with each other.
func setMode(t *testing.T, mode Mode) {
	t.Helper()
	_ = Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	if err := Init(mode); err != nil {
		t.Fatalf("Init(%v): %v", mode, err)
	}
	t.Cleanup(func() { _ = Finalize() }) //grblint:ignore infocheck -- best-effort teardown
}

// mustMatrix builds a matrix from tuples or fails the test.
func mustMatrix[T any](t *testing.T, rows, cols int, I, J []Index, X []T) *Matrix[T] {
	t.Helper()
	m, err := NewMatrix[T](rows, cols)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if len(I) > 0 {
		if err := m.Build(I, J, X, Second[T, T]); err != nil {
			t.Fatalf("Build: %v", err)
		}
	}
	return m
}

// mustVector builds a vector from tuples or fails the test.
func mustVector[T any](t *testing.T, n int, I []Index, X []T) *Vector[T] {
	t.Helper()
	v, err := NewVector[T](n)
	if err != nil {
		t.Fatalf("NewVector: %v", err)
	}
	if len(I) > 0 {
		if err := v.Build(I, X, Second[T, T]); err != nil {
			t.Fatalf("Build: %v", err)
		}
	}
	return v
}

// matrixEquals checks a matrix against expected tuples (row-major order).
func matrixEquals[T comparable](t *testing.T, m *Matrix[T], wantI, wantJ []Index, wantX []T) {
	t.Helper()
	I, J, X, err := m.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	if len(I) != len(wantI) {
		t.Fatalf("nvals = %d, want %d (got I=%v J=%v X=%v)", len(I), len(wantI), I, J, X)
	}
	for k := range I {
		if I[k] != wantI[k] || J[k] != wantJ[k] || X[k] != wantX[k] {
			t.Fatalf("entry %d = (%d,%d)=%v, want (%d,%d)=%v", k, I[k], J[k], X[k], wantI[k], wantJ[k], wantX[k])
		}
	}
}

// vectorEquals checks a vector against expected tuples (index order).
func vectorEquals[T comparable](t *testing.T, v *Vector[T], wantI []Index, wantX []T) {
	t.Helper()
	I, X, err := v.ExtractTuples()
	if err != nil {
		t.Fatalf("ExtractTuples: %v", err)
	}
	if len(I) != len(wantI) {
		t.Fatalf("nvals = %d, want %d (got I=%v X=%v)", len(I), len(wantI), I, X)
	}
	for k := range I {
		if I[k] != wantI[k] || X[k] != wantX[k] {
			t.Fatalf("entry %d = (%d)=%v, want (%d)=%v", k, I[k], X[k], wantI[k], wantX[k])
		}
	}
}

// wantCode asserts the Info code of an error.
func wantCode(t *testing.T, err error, want Info) {
	t.Helper()
	if Code(err) != want {
		t.Fatalf("error = %v (code %v), want code %v", err, Code(err), want)
	}
}

// ck fails the running test by panicking on an unexpected error from a grb
// call; grblint (infocheck) forbids discarding these silently.
func ck(err error) {
	if err != nil {
		panic(err)
	}
}

// ck1 unwraps a (value, error) grb result, panicking on error.
func ck1[A any](a A, err error) A { ck(err); return a }

// ck2 unwraps a (value, value, error) grb result, panicking on error.
func ck2[A, B any](a A, b B, err error) (A, B) { ck(err); return a, b }

// ck3 unwraps a (value, value, value, error) grb result, panicking on error.
func ck3[A, B, C any](a A, b B, c C, err error) (A, B, C) { ck(err); return a, b, c }

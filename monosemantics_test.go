package grb

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// Public-API semantics of the monomorphized hot-semiring kernels: DescMono
// and DescGeneric must be observationally equivalent (the specialization is
// an implementation detail of the routing layer, never a semantic change),
// the kernel counters must expose which side served an operation, and the
// observability route labels must mark specialized kernels with "+mono".

// monoRandMatrix builds a size×size matrix with ~3·size random entries.
func monoRandMatrix[T any](t *testing.T, rng *rand.Rand, size int, mk func(*rand.Rand) T) *Matrix[T] {
	t.Helper()
	var I, J []Index
	var X []T
	for k := 0; k < 3*size; k++ {
		I = append(I, Index(rng.Intn(size)))
		J = append(J, Index(rng.Intn(size)))
		X = append(X, mk(rng))
	}
	return mustMatrix(t, size, size, I, J, X)
}

// monoRandVector builds a size-vector, dense when full, ~1/3 filled else.
func monoRandVector[T any](t *testing.T, rng *rand.Rand, size int, full bool, mk func(*rand.Rand) T) *Vector[T] {
	t.Helper()
	var I []Index
	var X []T
	for i := 0; i < size; i++ {
		if full || rng.Intn(3) == 0 {
			I = append(I, Index(i))
			X = append(X, mk(rng))
		}
	}
	return mustVector(t, size, I, X)
}

// identicalVectors extracts both vectors and requires exact agreement.
func identicalVectors[T comparable](t *testing.T, label string, got, want *Vector[T]) {
	t.Helper()
	gi, gx := ck2(got.ExtractTuples())
	wi, wx := ck2(want.ExtractTuples())
	if len(gi) != len(wi) {
		t.Fatalf("%s: nvals %d != %d", label, len(gi), len(wi))
	}
	for k := range wi {
		if gi[k] != wi[k] || gx[k] != wx[k] {
			t.Fatalf("%s: entry %d = (%d,%v), want (%d,%v)", label, k, gi[k], gx[k], wi[k], wx[k])
		}
	}
}

// monoVsGeneric drives MxV (pull and push), VxM and MxM for one hot
// semiring through the public API, once under SpecMono and once under
// SpecGeneric, and requires identical results — including with a value mask
// and with dense and sparse frontiers (the format-transition axis).
func monoVsGeneric[T comparable](t *testing.T, name string, semi Semiring[T, T, T], mk func(*rand.Rand) T) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	const size = 24
	a := monoRandMatrix(t, rng, size, mk)
	var maskI []Index
	var maskX []bool
	for i := 0; i < size; i++ {
		if rng.Intn(2) == 0 {
			maskI = append(maskI, Index(i))
			maskX = append(maskX, rng.Intn(2) == 0)
		}
	}
	mask := mustVector(t, size, maskI, maskX)

	for _, full := range []bool{false, true} {
		u := monoRandVector(t, rng, size, full, mk)
		shape := "sparse"
		if full {
			shape = "dense"
		}
		for _, dir := range []Direction{DirPull, DirPush} {
			for _, m := range []*Vector[bool]{nil, mask} {
				masked := "nomask"
				if m != nil {
					masked = "mask"
				}
				label := name + "/" + shape + "/" + masked
				wm := ck1(NewVector[T](size))
				wg := ck1(NewVector[T](size))
				ck(MxV(wm, m, nil, semi, a, u, &Descriptor{Dir: dir, Spec: SpecMono}))
				ck(MxV(wg, m, nil, semi, a, u, &Descriptor{Dir: dir, Spec: SpecGeneric}))
				ck(wm.Wait(Materialize))
				ck(wg.Wait(Materialize))
				identicalVectors(t, label+"/mxv", wm, wg)

				vm := ck1(NewVector[T](size))
				vg := ck1(NewVector[T](size))
				ck(VxM(vm, m, nil, semi, u, a, &Descriptor{Dir: dir, Spec: SpecMono}))
				ck(VxM(vg, m, nil, semi, u, a, &Descriptor{Dir: dir, Spec: SpecGeneric}))
				ck(vm.Wait(Materialize))
				ck(vg.Wait(Materialize))
				identicalVectors(t, label+"/vxm", vm, vg)
			}
		}
	}

	cm := ck1(NewMatrix[T](size, size))
	cg := ck1(NewMatrix[T](size, size))
	ck(MxM(cm, nil, nil, semi, a, a, DescMono))
	ck(MxM(cg, nil, nil, semi, a, a, DescGeneric))
	ck(cm.Wait(Materialize))
	ck(cg.Wait(Materialize))
	mi, mj, mx := ck3(cm.ExtractTuples())
	gi, gj, gx := ck3(cg.ExtractTuples())
	if len(mi) != len(gi) {
		t.Fatalf("%s/mxm: nvals %d != %d", name, len(mi), len(gi))
	}
	for k := range gi {
		if mi[k] != gi[k] || mj[k] != gj[k] || mx[k] != gx[k] {
			t.Fatalf("%s/mxm: entry %d = (%d,%d,%v), want (%d,%d,%v)",
				name, k, mi[k], mj[k], mx[k], gi[k], gj[k], gx[k])
		}
	}
}

func TestMonoDescriptorEquivalence(t *testing.T) {
	setMode(t, NonBlocking)
	monoVsGeneric(t, "plus_times/f64", PlusTimes[float64](), func(r *rand.Rand) float64 { return r.NormFloat64() })
	monoVsGeneric(t, "plus_times/i64", PlusTimes[int64](), func(r *rand.Rand) int64 { return int64(r.Intn(19) - 9) })
	monoVsGeneric(t, "min_plus/f64", MinPlus[float64](), func(r *rand.Rand) float64 { return r.Float64() * 50 })
	monoVsGeneric(t, "min_plus/i64", MinPlus[int64](), func(r *rand.Rand) int64 { return int64(r.Intn(500)) })
	monoVsGeneric(t, "lor_land", LOrLAnd(), func(r *rand.Rand) bool { return r.Intn(3) > 0 })
	monoVsGeneric(t, "plus_pair/i64", PlusPair[int64](), func(r *rand.Rand) int64 { return int64(r.Intn(50)) })
}

// TestMonoKernelCounters pins the counter surface: a pinned-mono pull ticks
// the mono counter and materializes the frontier's block view exactly once
// (the second product on the unchanged vector reuses the cached view), and
// a pinned-generic run ticks the fallback counter instead.
func TestMonoKernelCounters(t *testing.T) {
	setMode(t, NonBlocking)
	rng := rand.New(rand.NewSource(3))
	a := monoRandMatrix(t, rng, 32, func(r *rand.Rand) float64 { return r.NormFloat64() })
	u := monoRandVector(t, rng, 32, true, func(r *rand.Rand) float64 { return r.NormFloat64() })
	ck(a.Wait(Materialize))
	ck(u.Wait(Materialize))

	ResetKernelCounts()
	w := ck1(NewVector[float64](32))
	ck(MxV(w, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecMono}))
	ck(w.Wait(Materialize))
	mono, _ := MonoKernelCounts()
	if mono == 0 {
		t.Fatal("pinned-mono pull did not tick the mono kernel counter")
	}
	conv := FormatConversionCount()
	if conv == 0 {
		t.Fatal("pinned-mono pull did not materialize a block view")
	}

	// Unchanged frontier: the cached view serves the second product.
	w2 := ck1(NewVector[float64](32))
	ck(MxV(w2, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecMono}))
	ck(w2.Wait(Materialize))
	if got := FormatConversionCount(); got != conv {
		t.Fatalf("unchanged frontier re-materialized its block view: %d -> %d conversions", conv, got)
	}
	identicalVectors(t, "cached-view", w2, w)

	ResetKernelCounts()
	wg := ck1(NewVector[float64](32))
	ck(MxV(wg, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecGeneric}))
	ck(wg.Wait(Materialize))
	if mono, closure := MonoKernelCounts(); mono != 0 || closure == 0 {
		t.Fatalf("pinned-generic pull: mono=%d closure=%d, want 0/>0", mono, closure)
	}
}

// TestMonoViewCoherence pins the mutate→Wait contract for the cached block
// views: a vector mutation after a specialized product produces a new
// snapshot, so the next product materializes a fresh view (the stale one can
// never serve) and its result reflects the mutation exactly as the generic
// kernel sees it.
func TestMonoViewCoherence(t *testing.T) {
	setMode(t, NonBlocking)
	rng := rand.New(rand.NewSource(9))
	a := monoRandMatrix(t, rng, 32, func(r *rand.Rand) float64 { return r.NormFloat64() })
	u := monoRandVector(t, rng, 32, true, func(r *rand.Rand) float64 { return r.NormFloat64() })
	ck(a.Wait(Materialize))
	ck(u.Wait(Materialize))

	ResetKernelCounts()
	w1 := ck1(NewVector[float64](32))
	ck(MxV(w1, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecMono}))
	ck(w1.Wait(Materialize))
	conv := FormatConversionCount()
	if conv == 0 {
		t.Fatal("first specialized pull did not materialize a block view")
	}

	// Mutate the frontier and drain: a fresh snapshot, a fresh view.
	ck(u.SetElement(1234.5, 7))
	ck(u.Wait(Materialize))
	w2 := ck1(NewVector[float64](32))
	ck(MxV(w2, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecMono}))
	ck(w2.Wait(Materialize))
	if got := FormatConversionCount(); got <= conv {
		t.Fatalf("mutated frontier did not re-materialize its block view (%d -> %d conversions)", conv, got)
	}
	wg := ck1(NewVector[float64](32))
	ck(MxV(wg, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecGeneric}))
	ck(wg.Wait(Materialize))
	identicalVectors(t, "post-mutation", w2, wg)
}

// TestMonoRouteLabel checks the observability surface: a kernel event for a
// specialized product carries the "+mono" route suffix in the trace, and a
// pinned-generic product does not.
func TestMonoRouteLabel(t *testing.T) {
	setMode(t, NonBlocking)
	var buf bytes.Buffer
	ck(TraceTo(&buf))

	rng := rand.New(rand.NewSource(5))
	a := monoRandMatrix(t, rng, 32, func(r *rand.Rand) float64 { return r.NormFloat64() })
	u := monoRandVector(t, rng, 32, true, func(r *rand.Rand) float64 { return r.NormFloat64() })
	w := ck1(NewVector[float64](32))
	ck(MxV(w, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecMono}))
	ck(w.Wait(Materialize))
	wg := ck1(NewVector[float64](32))
	ck(MxV(wg, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: DirPull, Spec: SpecGeneric}))
	ck(wg.Wait(Materialize))
	ck(StopTrace())

	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	monoSeen, plainSeen := false, false
	for _, ev := range tr.TraceEvents {
		if ev.Cat != "kernel" || ev.Name != "MxV" {
			continue
		}
		route, _ := ev.Args["route"].(string)
		if strings.HasSuffix(route, "+mono") {
			monoSeen = true
		} else if route != "" {
			plainSeen = true
		}
	}
	if !monoSeen {
		t.Fatal("no MxV kernel event carries the +mono route label")
	}
	if !plainSeen {
		t.Fatal("the pinned-generic MxV also got a +mono route label")
	}
}

package grb

import (
	"math/rand"
	"testing"
)

// TestModesProduceIdenticalResults is a differential test of the deferred
// execution engine: the same randomized program — element updates, products,
// element-wise combines, selects, applies, assigns, in random order — is run
// once in Blocking and once in NonBlocking mode, and the final object states
// must be identical. §III requires deferred execution to be observationally
// equivalent to eager execution.
func TestModesProduceIdenticalResults(t *testing.T) {
	type step struct {
		kind int
		i, j Index
		v    int
	}
	makeProgram := func(rng *rand.Rand, steps int) []step {
		out := make([]step, steps)
		for k := range out {
			out[k] = step{
				kind: rng.Intn(8),
				i:    rng.Intn(6),
				j:    rng.Intn(6),
				v:    rng.Intn(50),
			}
		}
		return out
	}

	run := func(t *testing.T, mode Mode, prog []step) ([]Index, []Index, []int) {
		setMode(t, mode)
		a := mustMatrix(t, 6, 6,
			[]Index{0, 1, 2, 3, 4, 5}, []Index{1, 2, 3, 4, 5, 0},
			[]int{1, 2, 3, 4, 5, 6})
		c := mustMatrix(t, 6, 6,
			[]Index{0, 3}, []Index{0, 3}, []int{10, 20})
		for _, s := range prog {
			var err error
			switch s.kind {
			case 0:
				err = c.SetElement(s.v, s.i, s.j)
			case 1:
				err = c.RemoveElement(s.i, s.j)
			case 2:
				err = MxM(c, nil, Plus[int], PlusTimes[int](), a, a, nil)
			case 3:
				err = EWiseAddMatrix(c, nil, nil, Plus[int], c, a, nil)
			case 4:
				err = MatrixSelect(c, nil, nil, ValueLT[int], c, 1000, nil)
			case 5:
				err = MatrixApplyBindSecond(c, nil, nil, func(x, m int) int { return (x + m) % 997 }, c, s.v, nil)
			case 6:
				err = MatrixAssignScalar(c, nil, Plus[int], s.v, []Index{s.i}, []Index{s.j}, nil)
			case 7:
				err = Transpose(c, nil, Plus[int], c, DescT0) // accumulate a copy of itself
			}
			if err != nil {
				t.Fatalf("mode %v step %+v: %v", mode, s, err)
			}
		}
		if err := c.Wait(Materialize); err != nil {
			t.Fatalf("mode %v materialize: %v", mode, err)
		}
		I, J, X, err := c.ExtractTuples()
		if err != nil {
			t.Fatal(err)
		}
		return I, J, X
	}

	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := makeProgram(rng, 25)
		bi, bj, bx := run(t, Blocking, prog)
		ni, nj, nx := run(t, NonBlocking, prog)
		if len(bi) != len(ni) {
			t.Fatalf("seed %d: nvals %d (blocking) vs %d (nonblocking)", seed, len(bi), len(ni))
		}
		for k := range bi {
			if bi[k] != ni[k] || bj[k] != nj[k] || bx[k] != nx[k] {
				t.Fatalf("seed %d: entry %d differs: (%d,%d)=%d vs (%d,%d)=%d",
					seed, k, bi[k], bj[k], bx[k], ni[k], nj[k], nx[k])
			}
		}
	}
}

// TestModesIdenticalVectors mirrors the differential test for vectors.
func TestModesIdenticalVectors(t *testing.T) {
	type step struct {
		kind int
		i    Index
		v    int
	}
	makeProgram := func(rng *rand.Rand, steps int) []step {
		out := make([]step, steps)
		for k := range out {
			out[k] = step{kind: rng.Intn(6), i: rng.Intn(8), v: rng.Intn(40)}
		}
		return out
	}
	run := func(t *testing.T, mode Mode, prog []step) ([]Index, []int) {
		setMode(t, mode)
		a := mustMatrix(t, 8, 8,
			[]Index{0, 1, 2, 3, 4, 5, 6, 7}, []Index{1, 2, 3, 4, 5, 6, 7, 0},
			[]int{1, 1, 2, 2, 3, 3, 4, 4})
		w := mustVector(t, 8, []Index{0, 4}, []int{1, 2})
		for _, s := range prog {
			var err error
			switch s.kind {
			case 0:
				err = w.SetElement(s.v, s.i)
			case 1:
				err = w.RemoveElement(s.i)
			case 2:
				err = VxM(w, nil, Plus[int], PlusTimes[int](), w, a, nil)
			case 3:
				err = VectorApplyBindSecond(w, nil, nil, func(x, m int) int { return (x * (m + 1)) % 1013 }, w, s.v, nil)
			case 4:
				err = VectorSelect(w, nil, nil, ValueNE[int], w, s.v, nil)
			case 5:
				err = VectorAssignScalar(w, nil, Plus[int], s.v, []Index{s.i}, nil)
			}
			if err != nil {
				t.Fatalf("mode %v step %+v: %v", mode, s, err)
			}
		}
		if err := w.Wait(Materialize); err != nil {
			t.Fatal(err)
		}
		I, X, err := w.ExtractTuples()
		if err != nil {
			t.Fatal(err)
		}
		return I, X
	}
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := makeProgram(rng, 30)
		bi, bx := run(t, Blocking, prog)
		ni, nx := run(t, NonBlocking, prog)
		if len(bi) != len(ni) {
			t.Fatalf("seed %d: nvals differ %d vs %d", seed, len(bi), len(ni))
		}
		for k := range bi {
			if bi[k] != ni[k] || bx[k] != nx[k] {
				t.Fatalf("seed %d: entry %d differs", seed, k)
			}
		}
	}
}

package grb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Table III extension: the bitmap exchange formats (GxB_BITMAP_VECTOR,
// GxB_BITMAP_MATRIX). The layout is the block-format one — a full values
// array plus a parallel presence-flag array in indices (nonzero = present)
// — so import/export round-trips must preserve the pattern even where
// stored values equal the zero value of T.

func TestTableIII_BitmapVector(t *testing.T) {
	setMode(t, Blocking)
	// flags mark positions 1 and 3; position 2's value is ignored.
	v, err := VectorImport(4, []Index{0, 1, 0, 1}, []int{9, 10, 99, 12}, FormatBitmapVector)
	if err != nil {
		t.Fatal(err)
	}
	if nv := ck1(v.Nvals()); nv != 2 {
		t.Fatalf("bitmap import nvals = %d", nv)
	}
	if x, ok := ck2(v.ExtractElement(1)); !ok || x != 10 {
		t.Fatalf("(1) = %d,%v", x, ok)
	}
	if _, ok := ck2(v.ExtractElement(2)); ok {
		t.Fatal("unflagged position 2 imported an entry")
	}

	// Export: absent positions carry zero flag and zero value.
	ni, nvals := ck2(v.VectorExportSize(FormatBitmapVector))
	if ni != 4 || nvals != 4 {
		t.Fatalf("export size = %d/%d, want 4/4", ni, nvals)
	}
	ind, val := ck2(v.VectorExport(FormatBitmapVector))
	wantInd := []Index{0, 1, 0, 1}
	wantVal := []int{0, 10, 0, 12}
	for i := range wantInd {
		if ind[i] != wantInd[i] || val[i] != wantVal[i] {
			t.Fatalf("export[%d] = (%d,%d), want (%d,%d)", i, ind[i], val[i], wantInd[i], wantVal[i])
		}
	}

	// Length validation.
	if _, err := VectorImport(4, []Index{1, 1}, []int{1, 2}, FormatBitmapVector); Code(err) != InvalidValue {
		t.Fatalf("short bitmap import: err = %v, want InvalidValue", err)
	}
}

func TestTableIII_BitmapMatrix(t *testing.T) {
	setMode(t, Blocking)
	// 2x3, row-major flags: entries at (0,1) and (1,2).
	m, err := MatrixImport(2, 3, nil,
		[]Index{0, 1, 0, 0, 0, 1}, []int{0, 7, 0, 0, 0, 8}, FormatBitmapMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if nv := ck1(m.Nvals()); nv != 2 {
		t.Fatalf("bitmap import nvals = %d", nv)
	}
	if x, ok := ck2(m.ExtractElement(1, 2)); !ok || x != 8 {
		t.Fatalf("(1,2) = %d,%v", x, ok)
	}

	np, ni, nv := ck3(m.MatrixExportSize(FormatBitmapMatrix))
	if np != 0 || ni != 6 || nv != 6 {
		t.Fatalf("export size = %d/%d/%d, want 0/6/6", np, ni, nv)
	}
	_, ind, val := ck3(m.MatrixExport(FormatBitmapMatrix))
	wantInd := []Index{0, 1, 0, 0, 0, 1}
	wantVal := []int{0, 7, 0, 0, 0, 8}
	for k := range wantInd {
		if ind[k] != wantInd[k] || val[k] != wantVal[k] {
			t.Fatalf("export[%d] = (%d,%d), want (%d,%d)", k, ind[k], val[k], wantInd[k], wantVal[k])
		}
	}

	if _, err := MatrixImport(2, 3, nil, []Index{1}, []int{1}, FormatBitmapMatrix); Code(err) != InvalidValue {
		t.Fatalf("short bitmap import: err = %v, want InvalidValue", err)
	}
}

// TestBitmapRoundTripProperty: export→import through the bitmap formats is
// lossless for random objects — including explicitly stored zeros, which the
// presence flags (not the values) must carry.
func TestBitmapRoundTripProperty(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		var I, J []Index
		var X []int
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Intn(3) == 0 {
					I = append(I, Index(i))
					J = append(J, Index(j))
					X = append(X, rng.Intn(5)) // 0 is common: stored zeros
				}
			}
		}
		m := mustMatrix(t, rows, cols, I, J, X)
		_, ind, val, err := m.MatrixExport(FormatBitmapMatrix)
		if err != nil {
			return false
		}
		back, err := MatrixImport(rows, cols, nil, ind, val, FormatBitmapMatrix)
		if err != nil {
			return false
		}
		ai, aj, ax := ck3(m.ExtractTuples())
		bi, bj, bx := ck3(back.ExtractTuples())
		if len(ai) != len(bi) {
			return false
		}
		for k := range ai {
			if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
				return false
			}
		}

		// Vector: first row of the matrix, same discipline.
		n := 1 + rng.Intn(30)
		var VI []Index
		var VX []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				VI = append(VI, Index(i))
				VX = append(VX, rng.Intn(5))
			}
		}
		v := mustVector(t, n, VI, VX)
		vind, vval, err := v.VectorExport(FormatBitmapVector)
		if err != nil {
			return false
		}
		vback, err := VectorImport(n, vind, vval, FormatBitmapVector)
		if err != nil {
			return false
		}
		pi, px := ck2(v.ExtractTuples())
		qi, qx := ck2(vback.ExtractTuples())
		if len(pi) != len(qi) {
			return false
		}
		for k := range pi {
			if pi[k] != qi[k] || px[k] != qx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

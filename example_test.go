package grb_test

import (
	"fmt"

	grb "github.com/grblas/grb"
)

// ensureExample initializes the library for the godoc examples (each example
// runs in the shared test binary, so Init may already have happened).
func ensureExample() {
	if _, err := grb.GlobalContext(); err != nil {
		_ = grb.Init(grb.NonBlocking)
	}
}

// ExampleMxM multiplies two small matrices over the conventional semiring.
func ExampleMxM() {
	ensureExample()
	a, _ := grb.NewMatrix[int](2, 2)
	_ = a.Build([]grb.Index{0, 1}, []grb.Index{1, 0}, []int{2, 3}, nil)
	c, _ := grb.NewMatrix[int](2, 2)
	_ = grb.MxM(c, nil, nil, grb.PlusTimes[int](), a, a, nil)
	v, _, _ := c.ExtractElement(0, 0)
	fmt.Println(v)
	// Output: 6
}

// ExampleMatrixSelect keeps the strict upper triangle with the predefined
// TriU operator from Table IV of the GraphBLAS 2.0 paper.
func ExampleMatrixSelect() {
	ensureExample()
	a, _ := grb.NewMatrix[int](3, 3)
	_ = a.Build([]grb.Index{0, 1, 2}, []grb.Index{2, 0, 2}, []int{1, 2, 3}, nil)
	c, _ := grb.NewMatrix[int](3, 3)
	_ = grb.MatrixSelect(c, nil, nil, grb.TriU[int], a, 1, nil)
	n, _ := c.Nvals()
	fmt.Println(n)
	// Output: 1
}

// ExampleMatrixApplyIndexOp replaces stored values by their column index,
// the §VIII-B index variant of apply.
func ExampleMatrixApplyIndexOp() {
	ensureExample()
	a, _ := grb.NewMatrix[float64](2, 3)
	_ = a.Build([]grb.Index{0, 1}, []grb.Index{2, 1}, []float64{9.5, 4.5}, nil)
	c, _ := grb.NewMatrix[int](2, 3)
	_ = grb.MatrixApplyIndexOp(c, nil, nil, grb.ColIndex[float64], a, 1, nil)
	v1, _, _ := c.ExtractElement(0, 2)
	v2, _, _ := c.ExtractElement(1, 1)
	fmt.Println(v1, v2)
	// Output: 3 2
}

// ExampleMatrixReduceToScalar shows the GrB_Scalar-output reduce: an empty
// matrix reduces to an empty scalar rather than the monoid identity.
func ExampleMatrixReduceToScalar() {
	ensureExample()
	empty, _ := grb.NewMatrix[int](4, 4)
	s, _ := grb.NewScalar[int]()
	_ = grb.MatrixReduceToScalar(s, nil, grb.PlusMonoid[int](), empty, nil)
	n, _ := s.Nvals()
	identity, _ := grb.MatrixReduce(grb.PlusMonoid[int](), empty)
	fmt.Println(n, identity)
	// Output: 0 0
}

// ExampleVector_Wait demonstrates the nonblocking sequence model: the
// product is deferred until the materializing wait.
func ExampleVector_Wait() {
	ensureExample()
	a, _ := grb.NewMatrix[int](2, 2)
	_ = a.Build([]grb.Index{0, 1}, []grb.Index{0, 1}, []int{5, 7}, nil)
	u, _ := grb.NewVector[int](2)
	_ = u.Build([]grb.Index{0, 1}, []int{1, 1}, nil)
	w, _ := grb.NewVector[int](2)
	_ = grb.MxV(w, nil, nil, grb.PlusTimes[int](), a, u, nil)
	if err := w.Wait(grb.Materialize); err == nil {
		x, _, _ := w.ExtractElement(1)
		fmt.Println(x)
	}
	// Output: 7
}

// ExampleNewContext bounds an operation's parallelism with a nested
// execution context (§IV, Fig. 2 of the paper).
func ExampleNewContext() {
	ensureExample()
	ctx, _ := grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(2))
	a, _ := grb.NewMatrix[int](2, 2, grb.InContext(ctx))
	_ = a.Build([]grb.Index{0, 1}, []grb.Index{1, 0}, []int{1, 1}, nil)
	c, _ := grb.NewMatrix[int](2, 2, grb.InContext(ctx))
	_ = grb.MxM(c, nil, nil, grb.PlusTimes[int](), a, a, nil)
	n, _ := c.Nvals()
	fmt.Println(n, ctx.Threads())
	// Output: 2 2
}

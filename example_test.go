package grb_test

import (
	"fmt"

	grb "github.com/grblas/grb"
)

// ensureExample initializes the library for the godoc examples (each example
// runs in the shared test binary, so Init may already have happened).
func ensureExample() {
	if _, err := grb.GlobalContext(); err != nil {
		ck(grb.Init(grb.NonBlocking))
	}
}

// ExampleMxM multiplies two small matrices over the conventional semiring.
func ExampleMxM() {
	ensureExample()
	a := ck1(grb.NewMatrix[int](2, 2))
	ck(a.Build([]grb.Index{0, 1}, []grb.Index{1, 0}, []int{2, 3}, nil))
	c := ck1(grb.NewMatrix[int](2, 2))
	ck(grb.MxM(c, nil, nil, grb.PlusTimes[int](), a, a, nil))
	v, _ := ck2(c.ExtractElement(0, 0))
	fmt.Println(v)
	// Output: 6
}

// ExampleMatrixSelect keeps the strict upper triangle with the predefined
// TriU operator from Table IV of the GraphBLAS 2.0 paper.
func ExampleMatrixSelect() {
	ensureExample()
	a := ck1(grb.NewMatrix[int](3, 3))
	ck(a.Build([]grb.Index{0, 1, 2}, []grb.Index{2, 0, 2}, []int{1, 2, 3}, nil))
	c := ck1(grb.NewMatrix[int](3, 3))
	ck(grb.MatrixSelect(c, nil, nil, grb.TriU[int], a, 1, nil))
	n := ck1(c.Nvals())
	fmt.Println(n)
	// Output: 1
}

// ExampleMatrixApplyIndexOp replaces stored values by their column index,
// the §VIII-B index variant of apply.
func ExampleMatrixApplyIndexOp() {
	ensureExample()
	a := ck1(grb.NewMatrix[float64](2, 3))
	ck(a.Build([]grb.Index{0, 1}, []grb.Index{2, 1}, []float64{9.5, 4.5}, nil))
	c := ck1(grb.NewMatrix[int](2, 3))
	ck(grb.MatrixApplyIndexOp(c, nil, nil, grb.ColIndex[float64], a, 1, nil))
	v1, _ := ck2(c.ExtractElement(0, 2))
	v2, _ := ck2(c.ExtractElement(1, 1))
	fmt.Println(v1, v2)
	// Output: 3 2
}

// ExampleMatrixReduceToScalar shows the GrB_Scalar-output reduce: an empty
// matrix reduces to an empty scalar rather than the monoid identity.
func ExampleMatrixReduceToScalar() {
	ensureExample()
	empty := ck1(grb.NewMatrix[int](4, 4))
	s := ck1(grb.NewScalar[int]())
	ck(grb.MatrixReduceToScalar(s, nil, grb.PlusMonoid[int](), empty, nil))
	n := ck1(s.Nvals())
	identity := ck1(grb.MatrixReduce(grb.PlusMonoid[int](), empty))
	fmt.Println(n, identity)
	// Output: 0 0
}

// ExampleVector_Wait demonstrates the nonblocking sequence model: the
// product is deferred until the materializing wait.
func ExampleVector_Wait() {
	ensureExample()
	a := ck1(grb.NewMatrix[int](2, 2))
	ck(a.Build([]grb.Index{0, 1}, []grb.Index{0, 1}, []int{5, 7}, nil))
	u := ck1(grb.NewVector[int](2))
	ck(u.Build([]grb.Index{0, 1}, []int{1, 1}, nil))
	w := ck1(grb.NewVector[int](2))
	ck(grb.MxV(w, nil, nil, grb.PlusTimes[int](), a, u, nil))
	if err := w.Wait(grb.Materialize); err == nil {
		x, _ := ck2(w.ExtractElement(1))
		fmt.Println(x)
	}
	// Output: 7
}

// ExampleNewContext bounds an operation's parallelism with a nested
// execution context (§IV, Fig. 2 of the paper).
func ExampleNewContext() {
	ensureExample()
	ctx := ck1(grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(2)))
	a := ck1(grb.NewMatrix[int](2, 2, grb.InContext(ctx)))
	ck(a.Build([]grb.Index{0, 1}, []grb.Index{1, 0}, []int{1, 1}, nil))
	c := ck1(grb.NewMatrix[int](2, 2, grb.InContext(ctx)))
	ck(grb.MxM(c, nil, nil, grb.PlusTimes[int](), a, a, nil))
	n := ck1(c.Nvals())
	fmt.Println(n, ctx.Threads())
	// Output: 2 2
}

package grb

import (
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// Transpose computes C⟨M⟩ = C ⊙ Aᵀ (GrB_transpose). Combining with the
// Transpose0 descriptor flag yields a (possibly masked/accumulated) plain
// copy of A.
func Transpose[T any](c *Matrix[T], mask *Matrix[bool], accum BinaryOp[T, T, T],
	a *Matrix[T], desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx, a.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	// Result shape: Aᵀ, un-transposed again if Transpose0 is set.
	ar, ac := acsr.Cols, acsr.Rows
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	if cOld.Rows != ar || cOld.Cols != ac {
		return errf(DimensionMismatch, "Transpose: output is %dx%d but result is %dx%d", cOld.Rows, cOld.Cols, ar, ac)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ())
	// Route "transpose" with a zero transpose_mats delta at End means the
	// cached view served the call (cache hit).
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("Transpose").WithRoute("transpose").WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).WithFlops(int64(acsr.NNZ()))
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		t := acsr
		if !d.Transpose0 { // transpose of a transpose is the input itself
			t = sparse.TransposeCached(acsr)
		}
		z := sparse.AccumMergeM(cOld, t, accum, threads)
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// Kronecker computes C⟨M⟩ = C ⊙ kron(A, B) with the given multiplicative
// operator (GrB_kronecker): C(i·br+k, j·bc+l) = op(A(i,j), B(k,l)).
func Kronecker[DC, DA, DB any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	if err := b.check(); err != nil {
		return err
	}
	if op == nil {
		return errf(NullPointer, "Kronecker: nil operator")
	}
	ctxs := append([]*Context{c.ctx, a.ctx, b.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	bcsr, err := b.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	br, bc := bcsr.Rows, bcsr.Cols
	if d.Transpose1 {
		br, bc = bc, br
	}
	pr, okR := checkedMulIndex(ar, br)
	pc, okC := checkedMulIndex(ac, bc)
	if !okR || !okC {
		return errf(OutOfMemory, "Kronecker: product shape %d*%d x %d*%d overflows", ar, br, ac, bc)
	}
	if cOld.Rows != pr || cOld.Cols != pc {
		return errf(DimensionMismatch, "Kronecker: output is %dx%d but product is %dx%d",
			cOld.Rows, cOld.Cols, pr, pc)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ() * bcsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("Kronecker").WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).B(bcsr.Rows, bcsr.Cols, bcsr.NNZ()).
			WithFlops(int64(acsr.NNZ()) * int64(bcsr.NNZ()))
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[DC], error) {
		A := maybeTranspose(acsr, d.Transpose0)
		B := maybeTranspose(bcsr, d.Transpose1)
		t, err := sparse.Kron(A, B, op, threads)
		if err != nil {
			return nil, errf(OutOfMemory, "Kronecker: %v", err)
		}
		z := sparse.AccumMergeM(cOld, t, accum, threads)
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// checkedMulIndex returns x*y and whether the (nonnegative) product fits in
// an int — Kronecker shapes multiply, so huge operands can wrap around.
func checkedMulIndex(x, y int) (int, bool) {
	if x == 0 || y == 0 {
		return 0, true
	}
	p := x * y
	if p/y != x || p < 0 {
		return 0, false
	}
	return p, true
}

// MatrixDiag builds the square matrix whose k-th diagonal holds the entries
// of v (GrB_Matrix_diag): v(i) lands at (i, i+k) for k ≥ 0, (i-k, i) for
// k < 0. The result is (n+|k|) × (n+|k|) and lives in v's context.
func MatrixDiag[T any](v *Vector[T], k Index, opts ...ObjOption) (*Matrix[T], error) {
	if err := v.check(); err != nil {
		return nil, err
	}
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctxPtr := cfg.ctx
	if ctxPtr == nil {
		ctxPtr = v.ctx
	}
	if _, err := resolveCtx(ctxPtr); err != nil {
		return nil, err
	}
	uvec, err := v.snapshot()
	if err != nil {
		return nil, err
	}
	return &Matrix[T]{init: true, ctx: ctxPtr, csr: sparse.Diag(uvec, k)}, nil
}

package grb

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/grblas/grb/internal/faults"
)

// Acceptance tests for the 2D-blocked SUMMA engine at the API layer: the
// Block descriptor field routes multiplies through the blocked plans, the
// results match the flat kernels exactly, and the §V hardening contract
// (budget exhaustion and tile panics park execution errors on still-valid
// objects) holds on the blocked paths. The bit-for-bit sweep across
// semirings × masks × grids lives in internal/sparse
// (blocked_differential_test.go); these tests pin the surface behaviour.

// randomMatrix builds a materialized rows×cols float64 matrix with ~nnz
// random entries.
func randomMatrix(t *testing.T, rng *rand.Rand, rows, cols, nnz int) *Matrix[float64] {
	t.Helper()
	var is, js []Index
	var xs []float64
	for k := 0; k < nnz; k++ {
		is = append(is, Index(rng.Intn(rows)))
		js = append(js, Index(rng.Intn(cols)))
		xs = append(xs, rng.NormFloat64())
	}
	m := mustMatrix(t, rows, cols, is, js, xs)
	if err := m.Wait(Materialize); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return m
}

// identicalTuples fails unless the two matrices hold exactly the same
// tuples (values compared with ==).
func identicalTuples(t *testing.T, label string, got, want *Matrix[float64]) {
	t.Helper()
	gi, gj, gx, err := got.ExtractTuples()
	if err != nil {
		t.Fatalf("%s: ExtractTuples(got): %v", label, err)
	}
	wi, wj, wx, err := want.ExtractTuples()
	if err != nil {
		t.Fatalf("%s: ExtractTuples(want): %v", label, err)
	}
	if len(gi) != len(wi) {
		t.Fatalf("%s: nnz %d != %d", label, len(gi), len(wi))
	}
	for k := range wi {
		if gi[k] != wi[k] || gj[k] != wj[k] || gx[k] != wx[k] {
			t.Fatalf("%s: tuple %d = (%d,%d,%v), want (%d,%d,%v)",
				label, k, gi[k], gj[k], gx[k], wi[k], wj[k], wx[k])
		}
	}
}

// TestBlockedDescriptorMatchesFlat: DescBlocked forces the SUMMA plans and
// the products match DescFlat bit for bit — MxM and both MxV directions.
func TestBlockedDescriptorMatchesFlat(t *testing.T) {
	setMode(t, NonBlocking)
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(t, rng, 60, 60, 700)
	b := randomMatrix(t, rng, 60, 60, 700)

	run := func(desc *Descriptor) *Matrix[float64] {
		c, err := NewMatrix[float64](60, 60)
		if err != nil {
			t.Fatalf("NewMatrix: %v", err)
		}
		if err := MxM(c, nil, nil, PlusTimes[float64](), a, b, desc); err != nil {
			t.Fatalf("MxM: %v", err)
		}
		if err := c.Wait(Materialize); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		return c
	}
	ResetKernelCounts()
	flat := run(DescFlat)
	blocked := run(DescBlocked)
	if ops, _ := BlockKernelCounts(); ops == 0 {
		t.Fatal("DescBlocked never engaged the blocked engine")
	}
	identicalTuples(t, "mxm", blocked, flat)

	var ui []Index
	var ux []float64
	for j := 0; j < 60; j += 2 {
		ui = append(ui, Index(j))
		ux = append(ux, rng.NormFloat64())
	}
	u := mustVector(t, 60, ui, ux)
	for _, dir := range []Direction{DirPull, DirPush} {
		mxv := func(block BlockMode) *Vector[float64] {
			w, err := NewVector[float64](60)
			if err != nil {
				t.Fatalf("NewVector: %v", err)
			}
			if err := MxV(w, nil, nil, PlusTimes[float64](), a, u, &Descriptor{Dir: dir, Block: block}); err != nil {
				t.Fatalf("MxV: %v", err)
			}
			if err := w.Wait(Materialize); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			return w
		}
		wf := mxv(BlockOff)
		wb := mxv(BlockOn)
		fi, fx, err := wf.ExtractTuples()
		if err != nil {
			t.Fatalf("ExtractTuples: %v", err)
		}
		bi, bx, err := wb.ExtractTuples()
		if err != nil {
			t.Fatalf("ExtractTuples: %v", err)
		}
		if len(fi) != len(bi) {
			t.Fatalf("dir %v: nnz %d != %d", dir, len(bi), len(fi))
		}
		for k := range fi {
			if bi[k] != fi[k] || bx[k] != fx[k] {
				t.Fatalf("dir %v: entry %d = (%d,%v), want (%d,%v)", dir, k, bi[k], bx[k], fi[k], fx[k])
			}
		}
	}
}

// TestBlockedBudgetExhaustionParks: a blocked multiply under a budget too
// small for the blocked view parks GrB_OUT_OF_MEMORY per §V — the output
// stays a valid sticky-error object, the budget drains back to zero, and
// the inputs keep serving flat work in the same context.
func TestBlockedBudgetExhaustionParks(t *testing.T) {
	setMode(t, NonBlocking)
	ctx, err := NewContext(NonBlocking, nil, WithThreads(2), WithMemoryLimit(16))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	a := pathGraph(t, ctx, 64)
	c, err := NewMatrix[bool](64, 64, InContext(ctx))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(c, nil, nil, LOrLAnd(), a, a, DescBlocked); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := c.Wait(Materialize); Code(err) != OutOfMemory {
		t.Fatalf("blocked under 16-byte budget: err = %v, want OutOfMemory", err)
	}
	if c.ErrorString() == "" {
		t.Fatal("parked OutOfMemory has empty ErrorString")
	}
	if used := ctx.MemoryUsed(); used != 0 {
		t.Fatalf("budget leak after blocked abort: %d bytes", used)
	}
	// The parked object is still a valid object: clearing resets the error
	// and it accepts new work.
	if err := c.Clear(); err != nil {
		t.Fatalf("Clear on parked object: %v", err)
	}
	if nv, err := c.Nvals(); err != nil || nv != 0 {
		t.Fatalf("Nvals after Clear: %d, %v", nv, err)
	}
	// The inputs are untouched — a flat multiply in an unbudgeted context
	// still works on a copy of the same graph.
	free, err := NewContext(NonBlocking, nil, WithThreads(2))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	b := pathGraph(t, free, 64)
	d, err := NewMatrix[bool](64, 64, InContext(free))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(d, nil, nil, LOrLAnd(), b, b, nil); err != nil {
		t.Fatalf("MxM after park: %v", err)
	}
	if err := d.Wait(Materialize); err != nil {
		t.Fatalf("Wait after park: %v", err)
	}
}

// TestBlockedTilePanicParks: a simulated crash inside a tile task is
// recovered into a parked GrB_PANIC; the same inputs then serve both flat
// and blocked multiplies once injection is disarmed.
func TestBlockedTilePanicParks(t *testing.T) {
	setMode(t, NonBlocking)
	a, _ := chaosInputs(t)
	ResetKernelCounts()
	faults.Enable(faults.Rule{Site: "sparse.block.tile", Action: faults.Panic, Hit: 1})
	c, err := NewMatrix[float64](16, 16)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := MxM(c, nil, nil, PlusTimes[float64](), a, a, DescBlocked); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := c.Wait(Materialize); Code(err) != Panic {
		t.Fatalf("injected tile panic: err = %v, want Panic", err)
	}
	if s := c.ErrorString(); !strings.Contains(s, "panic") {
		t.Fatalf("ErrorString = %q, want it to mention the panic", s)
	}
	faults.Disable()
	if _, panics := HardeningCounts(); panics == 0 {
		t.Fatal("recovered-panic counter did not tick")
	}
	for _, desc := range []*Descriptor{nil, DescBlocked} {
		d, err := NewMatrix[float64](16, 16)
		if err != nil {
			t.Fatalf("NewMatrix after panic: %v", err)
		}
		if err := MxM(d, nil, nil, PlusTimes[float64](), a, a, desc); err != nil {
			t.Fatalf("MxM after panic: %v", err)
		}
		if err := d.Wait(Materialize); err != nil {
			t.Fatalf("Wait after panic: %v", err)
		}
	}
}

package grb

import (
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// matrixApplyCommon factors the validation + snapshot + enqueue pipeline for
// the matrix apply family: kernel receives the (possibly transposed) input
// snapshot and thread budget and returns the operation result T.
func matrixApplyCommon[DC, DA any](opName string, c *Matrix[DC], mask *Matrix[bool],
	accum BinaryOp[DC, DC, DC], a *Matrix[DA], desc *Descriptor,
	kernel func(in *sparse.CSR[DA], threads int) *sparse.CSR[DC]) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{c.ctx, a.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	if cOld.Rows != ar || cOld.Cols != ac {
		return errf(DimensionMismatch, "%s: output is %dx%d but input is %dx%d", opName, cOld.Rows, cOld.Cols, ar, ac)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel(opName).WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).WithFlops(int64(acsr.NNZ()))
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[DC], error) {
		in := maybeTranspose(acsr, d.Transpose0)
		t := kernel(in, threads)
		z := sparse.AccumMergeM(cOld, t, accum, threads)
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// vectorApplyCommon is the vector analogue of matrixApplyCommon.
func vectorApplyCommon[DC, DA any](opName string, w *Vector[DC], mask *Vector[bool],
	accum BinaryOp[DC, DC, DC], u *Vector[DA], desc *Descriptor,
	kernel func(in *sparse.Vec[DA]) *sparse.Vec[DC]) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	ctxs := append([]*Context{w.ctx, u.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	if wOld.N != uvec.N {
		return errf(DimensionMismatch, "%s: output has size %d but input has size %d", opName, wOld.N, uvec.N)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel(opName).A(uvec.N, 1, uvec.NNZ()).WithFlops(int64(uvec.NNZ()))
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[DC], error) {
		t := kernel(uvec)
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

// MatrixApply computes C⟨M⟩ = C ⊙ f(A): a unary operator mapped over every
// stored entry (GrB_apply).
func MatrixApply[DC, DA any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op UnaryOp[DA, DC], a *Matrix[DA], desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "MatrixApply: nil operator")
	}
	return matrixApplyCommon("MatrixApply", c, mask, accum, a, desc,
		func(in *sparse.CSR[DA], threads int) *sparse.CSR[DC] {
			return sparse.ApplyM(in, op, threads)
		})
}

// MatrixApplyBindFirst computes C⟨M⟩ = C ⊙ f(s, A): a binary operator with
// its first argument bound to the scalar value s (GrB_apply with BinaryOp
// and scalar first input).
func MatrixApplyBindFirst[DC, DS, DA any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DS, DA, DC], s DS, a *Matrix[DA], desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "MatrixApplyBindFirst: nil operator")
	}
	return matrixApplyCommon("MatrixApplyBindFirst", c, mask, accum, a, desc,
		func(in *sparse.CSR[DA], threads int) *sparse.CSR[DC] {
			return sparse.ApplyM(in, func(v DA) DC { return op(s, v) }, threads)
		})
}

// MatrixApplyBindSecond computes C⟨M⟩ = C ⊙ f(A, s): a binary operator with
// its second argument bound to the scalar value s.
func MatrixApplyBindSecond[DC, DA, DS any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DA, DS, DC], a *Matrix[DA], s DS, desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "MatrixApplyBindSecond: nil operator")
	}
	return matrixApplyCommon("MatrixApplyBindSecond", c, mask, accum, a, desc,
		func(in *sparse.CSR[DA], threads int) *sparse.CSR[DC] {
			return sparse.ApplyM(in, func(v DA) DC { return op(v, s) }, threads)
		})
}

// MatrixApplyBindFirstScalar is the Table II variant of MatrixApplyBindFirst
// taking the bound value from a GrB_Scalar. An empty scalar is an
// EmptyObject execution error, since every output value needs it.
func MatrixApplyBindFirstScalar[DC, DS, DA any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DS, DA, DC], s *Scalar[DS], a *Matrix[DA], desc *Descriptor) error {
	v, err := scalarValue("MatrixApplyBindFirstScalar", s)
	if err != nil {
		return err
	}
	return MatrixApplyBindFirst(c, mask, accum, op, v, a, desc)
}

// MatrixApplyBindSecondScalar is the Table II variant of
// MatrixApplyBindSecond taking the bound value from a GrB_Scalar.
func MatrixApplyBindSecondScalar[DC, DA, DS any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DA, DS, DC], a *Matrix[DA], s *Scalar[DS], desc *Descriptor) error {
	v, err := scalarValue("MatrixApplyBindSecondScalar", s)
	if err != nil {
		return err
	}
	return MatrixApplyBindSecond(c, mask, accum, op, a, v, desc)
}

// MatrixApplyIndexOp computes C⟨M⟩ = C ⊙ f(A, ind(A), s): the GraphBLAS 2.0
// index variant of apply (§VIII-B, Fig. 3). The operator sees each entry's
// value and its (row, col) position, plus the caller's scalar s. When A is
// transposed via the descriptor, indices refer to positions after the
// transpose, as the paper specifies.
func MatrixApplyIndexOp[DC, DA, DS any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op IndexUnaryOp[DA, DS, DC], a *Matrix[DA], s DS, desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "MatrixApplyIndexOp: nil operator")
	}
	return matrixApplyCommon("MatrixApplyIndexOp", c, mask, accum, a, desc,
		func(in *sparse.CSR[DA], threads int) *sparse.CSR[DC] {
			return sparse.ApplyIndexM(in, op, s, threads)
		})
}

// MatrixApplyIndexOpScalar is the Table II variant of MatrixApplyIndexOp
// taking s from a GrB_Scalar.
func MatrixApplyIndexOpScalar[DC, DA, DS any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op IndexUnaryOp[DA, DS, DC], a *Matrix[DA], s *Scalar[DS], desc *Descriptor) error {
	v, err := scalarValue("MatrixApplyIndexOpScalar", s)
	if err != nil {
		return err
	}
	return MatrixApplyIndexOp(c, mask, accum, op, a, v, desc)
}

// VectorApply computes w⟨m⟩ = w ⊙ f(u) (GrB_apply on vectors).
func VectorApply[DC, DA any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op UnaryOp[DA, DC], u *Vector[DA], desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "VectorApply: nil operator")
	}
	return vectorApplyCommon("VectorApply", w, mask, accum, u, desc,
		func(in *sparse.Vec[DA]) *sparse.Vec[DC] {
			return sparse.ApplyV(in, op)
		})
}

// VectorApplyBindFirst computes w⟨m⟩ = w ⊙ f(s, u).
func VectorApplyBindFirst[DC, DS, DA any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DS, DA, DC], s DS, u *Vector[DA], desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "VectorApplyBindFirst: nil operator")
	}
	return vectorApplyCommon("VectorApplyBindFirst", w, mask, accum, u, desc,
		func(in *sparse.Vec[DA]) *sparse.Vec[DC] {
			return sparse.ApplyV(in, func(v DA) DC { return op(s, v) })
		})
}

// VectorApplyBindSecond computes w⟨m⟩ = w ⊙ f(u, s).
func VectorApplyBindSecond[DC, DA, DS any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DA, DS, DC], u *Vector[DA], s DS, desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "VectorApplyBindSecond: nil operator")
	}
	return vectorApplyCommon("VectorApplyBindSecond", w, mask, accum, u, desc,
		func(in *sparse.Vec[DA]) *sparse.Vec[DC] {
			return sparse.ApplyV(in, func(v DA) DC { return op(v, s) })
		})
}

// VectorApplyBindFirstScalar is the Table II GrB_Scalar variant of
// VectorApplyBindFirst.
func VectorApplyBindFirstScalar[DC, DS, DA any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DS, DA, DC], s *Scalar[DS], u *Vector[DA], desc *Descriptor) error {
	v, err := scalarValue("VectorApplyBindFirstScalar", s)
	if err != nil {
		return err
	}
	return VectorApplyBindFirst(w, mask, accum, op, v, u, desc)
}

// VectorApplyBindSecondScalar is the Table II GrB_Scalar variant of
// VectorApplyBindSecond.
func VectorApplyBindSecondScalar[DC, DA, DS any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DA, DS, DC], u *Vector[DA], s *Scalar[DS], desc *Descriptor) error {
	v, err := scalarValue("VectorApplyBindSecondScalar", s)
	if err != nil {
		return err
	}
	return VectorApplyBindSecond(w, mask, accum, op, u, v, desc)
}

// VectorApplyIndexOp computes w⟨m⟩ = w ⊙ f(u, ind(u), s): the index variant
// of apply on vectors (§VIII-B). The operator's col argument is always 0.
func VectorApplyIndexOp[DC, DA, DS any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op IndexUnaryOp[DA, DS, DC], u *Vector[DA], s DS, desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "VectorApplyIndexOp: nil operator")
	}
	return vectorApplyCommon("VectorApplyIndexOp", w, mask, accum, u, desc,
		func(in *sparse.Vec[DA]) *sparse.Vec[DC] {
			return sparse.ApplyIndexV(in, op, s)
		})
}

// VectorApplyIndexOpScalar is the Table II variant of VectorApplyIndexOp
// taking s from a GrB_Scalar.
func VectorApplyIndexOpScalar[DC, DA, DS any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op IndexUnaryOp[DA, DS, DC], u *Vector[DA], s *Scalar[DS], desc *Descriptor) error {
	v, err := scalarValue("VectorApplyIndexOpScalar", s)
	if err != nil {
		return err
	}
	return VectorApplyIndexOp(w, mask, accum, op, u, v, desc)
}

// scalarValue extracts the value of a GrB_Scalar argument, mapping an empty
// scalar to the EmptyObject execution error (§V, §VI).
func scalarValue[T any](opName string, s *Scalar[T]) (T, error) {
	var zero T
	if s == nil {
		return zero, errf(NullPointer, "%s: nil scalar", opName)
	}
	v, ok, err := s.ExtractElement()
	if err != nil {
		return zero, err
	}
	if !ok {
		return zero, errf(EmptyObject, "%s: empty scalar", opName)
	}
	return v, nil
}

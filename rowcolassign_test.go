package grb

import "testing"

func TestRowAssign(t *testing.T) {
	setMode(t, Blocking)
	c := mustMatrix(t, 3, 4,
		[]Index{0, 1, 1, 2}, []Index{0, 1, 3, 2}, []int{1, 2, 3, 4})
	u := mustVector(t, 4, []Index{0, 2}, []int{10, 30})

	// pure row assignment replaces the whole row's region
	c1 := ck1(c.Dup())
	if err := RowAssign(c1, nil, nil, u, 1, All, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c1,
		[]Index{0, 1, 1, 2}, []Index{0, 0, 2, 2}, []int{1, 10, 30, 4})

	// partial columns with accumulation
	c2 := ck1(c.Dup())
	u2 := mustVector(t, 2, []Index{0, 1}, []int{100, 200})
	if err := RowAssign(c2, nil, Plus[int], u2, 1, []Index{1, 3}, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c2,
		[]Index{0, 1, 1, 2}, []Index{0, 1, 3, 2}, []int{1, 102, 203, 4})

	// masked row assign (mask over the row)
	c3 := ck1(c.Dup())
	mask := mustVector(t, 4, []Index{0}, []bool{true})
	if err := RowAssign(c3, mask, nil, u, 1, All, DescS); err != nil {
		t.Fatal(err)
	}
	// only column 0 admitted: row 1 keeps (1,1)=2,(1,3)=3 and gains (1,0)=10
	matrixEquals(t, c3,
		[]Index{0, 1, 1, 1, 2}, []Index{0, 0, 1, 3, 2}, []int{1, 10, 2, 3, 4})

	// errors
	wantCode(t, RowAssign(c1, nil, nil, u, 5, All, nil), InvalidIndex)
	wantCode(t, RowAssign(c1, nil, nil, u, 0, []Index{9}, nil), InvalidIndex)
	wantCode(t, RowAssign(c1, nil, nil, u2, 0, All, nil), DimensionMismatch)
}

func TestColAssign(t *testing.T) {
	setMode(t, Blocking)
	c := mustMatrix(t, 4, 3,
		[]Index{0, 1, 3, 2}, []Index{0, 1, 1, 2}, []int{1, 2, 4, 3})
	u := mustVector(t, 4, []Index{1, 2}, []int{20, 30})

	c1 := ck1(c.Dup())
	if err := ColAssign(c1, nil, nil, u, All, 1, nil); err != nil {
		t.Fatal(err)
	}
	// column 1 becomes {1:20, 2:30} (old (3,1) deleted)
	matrixEquals(t, c1,
		[]Index{0, 1, 2, 2}, []Index{0, 1, 1, 2}, []int{1, 20, 30, 3})

	// partial rows with accum
	c2 := ck1(c.Dup())
	u2 := mustVector(t, 2, []Index{0, 1}, []int{5, 7})
	if err := ColAssign(c2, nil, Plus[int], u2, []Index{1, 3}, 1, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c2,
		[]Index{0, 1, 2, 3}, []Index{0, 1, 2, 1}, []int{1, 7, 3, 11})

	// masked with replace: mask over the column
	c3 := ck1(c.Dup())
	mask := mustVector(t, 4, []Index{1}, []bool{true})
	if err := ColAssign(c3, mask, nil, u, All, 1, DescRS); err != nil {
		t.Fatal(err)
	}
	// only row 1 of column 1 admitted (20); (3,1) deleted by replace
	matrixEquals(t, c3,
		[]Index{0, 1, 2}, []Index{0, 1, 2}, []int{1, 20, 3})

	wantCode(t, ColAssign(c1, nil, nil, u, All, 7, nil), InvalidIndex)
	wantCode(t, ColAssign(c1, nil, nil, u, []Index{9, 0, 1, 2}, 1, nil), InvalidIndex)
	wantCode(t, ColAssign(c1, nil, nil, u2, All, 1, nil), DimensionMismatch)
}

// TestRowColAssignConsistency: ColAssign on C equals RowAssign on Cᵀ.
func TestRowColAssignConsistency(t *testing.T) {
	setMode(t, Blocking)
	c := mustMatrix(t, 3, 3,
		[]Index{0, 1, 2}, []Index{1, 2, 0}, []int{1, 2, 3})
	u := mustVector(t, 3, []Index{0, 2}, []int{9, 8})

	viaCol := ck1(c.Dup())
	if err := ColAssign(viaCol, nil, nil, u, All, 2, nil); err != nil {
		t.Fatal(err)
	}
	ct := ck1(NewMatrix[int](3, 3))
	if err := Transpose(ct, nil, nil, c, nil); err != nil {
		t.Fatal(err)
	}
	if err := RowAssign(ct, nil, nil, u, 2, All, nil); err != nil {
		t.Fatal(err)
	}
	back := ck1(NewMatrix[int](3, 3))
	if err := Transpose(back, nil, nil, ct, nil); err != nil {
		t.Fatal(err)
	}
	ai, aj, ax := ck3(viaCol.ExtractTuples())
	bi, bj, bx := ck3(back.ExtractTuples())
	if len(ai) != len(bi) {
		t.Fatalf("nvals %d vs %d", len(ai), len(bi))
	}
	for k := range ai {
		if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
			t.Fatal("ColAssign != transpose∘RowAssign∘transpose")
		}
	}
}

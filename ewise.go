package grb

import (
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// EWiseAddMatrix computes C⟨M⟩ = C ⊙ (A ⊕ B): the element-wise "addition"
// whose result pattern is the union of A's and B's patterns (GrB_eWiseAdd).
// Entries present in only one input pass through unchanged, which is why the
// Go binding requires a single domain T for all operands (the C spec
// typecasts pass-through values).
func EWiseAddMatrix[T any](c *Matrix[T], mask *Matrix[bool], accum BinaryOp[T, T, T],
	op BinaryOp[T, T, T], a, b *Matrix[T], desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	if err := b.check(); err != nil {
		return err
	}
	if op == nil {
		return errf(NullPointer, "EWiseAddMatrix: nil operator")
	}
	ctxs := append([]*Context{c.ctx, a.ctx, b.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	bcsr, err := b.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	br, bc := bcsr.Rows, bcsr.Cols
	if d.Transpose1 {
		br, bc = bc, br
	}
	if ar != br || ac != bc || cOld.Rows != ar || cOld.Cols != ac {
		return errf(DimensionMismatch, "EWiseAddMatrix: shapes %dx%d, %dx%d, %dx%d incompatible",
			cOld.Rows, cOld.Cols, ar, ac, br, bc)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ() + bcsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("EWiseAddMatrix").WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).B(bcsr.Rows, bcsr.Cols, bcsr.NNZ()).
			WithFlops(int64(acsr.NNZ() + bcsr.NNZ()))
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		A := maybeTranspose(acsr, d.Transpose0)
		B := maybeTranspose(bcsr, d.Transpose1)
		t := sparse.EWiseAddM(A, B, op, threads)
		z := sparse.AccumMergeM(cOld, t, accum, threads)
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// EWiseMultMatrix computes C⟨M⟩ = C ⊙ (A ⊗ B): the element-wise
// "multiplication" whose result pattern is the intersection of A's and B's
// patterns (GrB_eWiseMult). Since every output value flows through op, the
// three domains may differ.
func EWiseMultMatrix[DC, DA, DB any](c *Matrix[DC], mask *Matrix[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DA, DB, DC], a *Matrix[DA], b *Matrix[DB], desc *Descriptor) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := a.check(); err != nil {
		return err
	}
	if err := b.check(); err != nil {
		return err
	}
	if op == nil {
		return errf(NullPointer, "EWiseMultMatrix: nil operator")
	}
	ctxs := append([]*Context{c.ctx, a.ctx, b.ctx}, maskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	acsr, err := a.snapshot()
	if err != nil {
		return err
	}
	bcsr, err := b.snapshot()
	if err != nil {
		return err
	}
	cOld, err := c.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapMask(mask, d)
	if err != nil {
		return err
	}
	ar, ac := acsr.Rows, acsr.Cols
	if d.Transpose0 {
		ar, ac = ac, ar
	}
	br, bc := bcsr.Rows, bcsr.Cols
	if d.Transpose1 {
		br, bc = bc, br
	}
	if ar != br || ac != bc || cOld.Rows != ar || cOld.Cols != ac {
		return errf(DimensionMismatch, "EWiseMultMatrix: shapes %dx%d, %dx%d, %dx%d incompatible",
			cOld.Rows, cOld.Cols, ar, ac, br, bc)
	}
	if err := checkMaskDimsM(mk, cOld.Rows, cOld.Cols); err != nil {
		return err
	}
	threads := ctx.threadsFor(acsr.NNZ() + bcsr.NNZ())
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("EWiseMultMatrix").WithThreads(threads).
			A(acsr.Rows, acsr.Cols, acsr.NNZ()).B(bcsr.Rows, bcsr.Cols, bcsr.NNZ()).
			WithFlops(int64(acsr.NNZ() + bcsr.NNZ()))
	}
	return c.enqueue(ctx, ev, func() (*sparse.CSR[DC], error) {
		A := maybeTranspose(acsr, d.Transpose0)
		B := maybeTranspose(bcsr, d.Transpose1)
		t := sparse.EWiseMultM(A, B, op, threads)
		z := sparse.AccumMergeM(cOld, t, accum, threads)
		return sparse.MaskApplyM(cOld, z, mk, d.Replace, threads), nil
	})
}

// EWiseAddVector computes w⟨m⟩ = w ⊙ (u ⊕ v) with union pattern
// (GrB_eWiseAdd on vectors).
func EWiseAddVector[T any](w *Vector[T], mask *Vector[bool], accum BinaryOp[T, T, T],
	op BinaryOp[T, T, T], u, v *Vector[T], desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	if err := v.check(); err != nil {
		return err
	}
	if op == nil {
		return errf(NullPointer, "EWiseAddVector: nil operator")
	}
	ctxs := append([]*Context{w.ctx, u.ctx, v.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	vvec, err := v.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	if uvec.N != vvec.N || wOld.N != uvec.N {
		return errf(DimensionMismatch, "EWiseAddVector: sizes %d, %d, %d incompatible", wOld.N, uvec.N, vvec.N)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("EWiseAddVector").
			A(uvec.N, 1, uvec.NNZ()).B(vvec.N, 1, vvec.NNZ()).
			WithFlops(int64(uvec.NNZ() + vvec.NNZ()))
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[T], error) {
		t := sparse.EWiseAddV(uvec, vvec, op)
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

// EWiseMultVector computes w⟨m⟩ = w ⊙ (u ⊗ v) with intersection pattern
// (GrB_eWiseMult on vectors).
func EWiseMultVector[DC, DA, DB any](w *Vector[DC], mask *Vector[bool], accum BinaryOp[DC, DC, DC],
	op BinaryOp[DA, DB, DC], u *Vector[DA], v *Vector[DB], desc *Descriptor) error {
	if err := w.check(); err != nil {
		return err
	}
	if err := u.check(); err != nil {
		return err
	}
	if err := v.check(); err != nil {
		return err
	}
	if op == nil {
		return errf(NullPointer, "EWiseMultVector: nil operator")
	}
	ctxs := append([]*Context{w.ctx, u.ctx, v.ctx}, vmaskCtx(mask)...)
	ctx, err := sameContext(ctxs...)
	if err != nil {
		return err
	}
	d := desc.get()
	uvec, err := u.snapshot()
	if err != nil {
		return err
	}
	vvec, err := v.snapshot()
	if err != nil {
		return err
	}
	wOld, err := w.snapshot()
	if err != nil {
		return err
	}
	mk, err := snapVMask(mask, d)
	if err != nil {
		return err
	}
	if uvec.N != vvec.N || wOld.N != uvec.N {
		return errf(DimensionMismatch, "EWiseMultVector: sizes %d, %d, %d incompatible", wOld.N, uvec.N, vvec.N)
	}
	if err := checkMaskDimsV(mk, wOld.N); err != nil {
		return err
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = evKernel("EWiseMultVector").
			A(uvec.N, 1, uvec.NNZ()).B(vvec.N, 1, vvec.NNZ()).
			WithFlops(int64(uvec.NNZ() + vvec.NNZ()))
	}
	return w.enqueue(ctx, ev, func() (*sparse.Vec[DC], error) {
		t := sparse.EWiseMultV(uvec, vvec, op)
		z := sparse.AccumMergeV(wOld, t, accum)
		return sparse.MaskApplyV(wOld, z, mk, d.Replace), nil
	})
}

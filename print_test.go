package grb

import (
	"strings"
	"testing"
)

func TestMatrixString(t *testing.T) {
	setMode(t, NonBlocking)
	m := mustMatrix(t, 2, 3, []Index{0, 1}, []Index{1, 2}, []int{5, 7})
	s := m.String()
	if !strings.Contains(s, "2x3") || !strings.Contains(s, "2 entries") {
		t.Fatalf("summary missing: %q", s)
	}
	if !strings.Contains(s, "5") || !strings.Contains(s, "7") {
		t.Fatalf("values missing: %q", s)
	}
	// large matrix: tuple form with truncation
	var I, J []Index
	var X []int
	for k := 0; k < 30; k++ {
		I = append(I, k)
		J = append(J, k)
		X = append(X, k)
	}
	big := mustMatrix(t, 30, 30, I, J, X)
	bs := big.String()
	if !strings.Contains(bs, "more") {
		t.Fatalf("truncation marker missing: %q", bs)
	}
	// nil / uninitialized
	var nilM *Matrix[int]
	if nilM.String() != "Matrix(nil)" {
		t.Fatal("nil string")
	}
	var zero Matrix[int]
	if zero.String() != "Matrix(uninitialized)" {
		t.Fatal("uninit string")
	}
	// errored object renders the error, does not panic
	bad := ck1(NewMatrix[int](2, 2))
	ck(bad.Build([]Index{0, 0}, []Index{0, 0}, []int{1, 2}, nil))
	ck(bad.Wait(Complete))
	if !strings.Contains(bad.String(), "GrB_INVALID_VALUE") {
		t.Fatalf("error not rendered: %q", bad.String())
	}
}

func TestVectorAndScalarString(t *testing.T) {
	setMode(t, NonBlocking)
	v := mustVector(t, 5, []Index{1, 3}, []float64{1.5, -2})
	s := v.String()
	if !strings.Contains(s, "size 5") || !strings.Contains(s, "1.5") {
		t.Fatalf("vector string: %q", s)
	}
	var nilV *Vector[int]
	if nilV.String() != "Vector(nil)" {
		t.Fatal("nil vector string")
	}
	sc := ck1(ScalarOf(42))
	if sc.String() != "Scalar(42)" {
		t.Fatalf("scalar string: %q", sc.String())
	}
	ck(sc.Clear())
	if sc.String() != "Scalar(empty)" {
		t.Fatalf("empty scalar string: %q", sc.String())
	}
	var nilS *Scalar[int]
	if nilS.String() != "Scalar(nil)" {
		t.Fatal("nil scalar string")
	}
}

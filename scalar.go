package grb

import "sync"

// Scalar is the opaque GraphBLAS scalar object (GrB_Scalar, §VI of the
// paper): a container for a single element of domain T that — like matrices
// and vectors — may be empty. The paper gives two motivations, both of which
// carry into the Go binding:
//
//  1. Uniform typing of scalar arguments. The C API needed a nonpolymorphic
//     variant per predefined type plus void* for user-defined types; a
//     GrB_Scalar always knows its domain. (Go generics already give this for
//     plain values, but Scalar additionally carries *presence*.)
//  2. Uniform emptiness semantics: extractElement into a Scalar cannot fail
//     with NO_VALUE — it yields an empty Scalar — and reduce of an empty
//     object yields an empty Scalar instead of the monoid identity.
type Scalar[T any] struct {
	mu      sync.Mutex
	init    bool
	ctx     *Context
	val     T
	present bool
	errmsg  string
}

// NewScalar creates an empty scalar of domain T (GrB_Scalar_new, Table I).
func NewScalar[T any](opts ...ObjOption) (*Scalar[T], error) {
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, err := resolveCtx(cfg.ctx)
	if err != nil {
		return nil, err
	}
	return &Scalar[T]{init: true, ctx: ctx}, nil
}

// ScalarOf creates a scalar already holding v. A convenience constructor of
// the Go binding (the C API would be GrB_Scalar_new + setElement).
func ScalarOf[T any](v T, opts ...ObjOption) (*Scalar[T], error) {
	s, err := NewScalar[T](opts...)
	if err != nil {
		return nil, err
	}
	s.val = v
	s.present = true
	return s, nil
}

func (s *Scalar[T]) check() error {
	if s == nil {
		return errf(NullPointer, "nil Scalar")
	}
	if !s.init {
		return errf(UninitializedObject, "Scalar not initialized (use NewScalar)")
	}
	return nil
}

// Dup duplicates the scalar into a new one (GrB_Scalar_dup, Table I).
func (s *Scalar[T]) Dup() (*Scalar[T], error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	if _, err := resolveCtx(s.ctx); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Scalar[T]{init: true, ctx: s.ctx, val: s.val, present: s.present}, nil
}

// Clear empties the scalar (GrB_Scalar_clear, Table I).
func (s *Scalar[T]) Clear() error {
	if err := s.check(); err != nil {
		return err
	}
	if _, err := resolveCtx(s.ctx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero T
	s.val = zero
	s.present = false
	s.errmsg = ""
	return nil
}

// Nvals returns the number of stored elements: 0 or 1 (GrB_Scalar_nvals,
// Table I).
func (s *Scalar[T]) Nvals() (Index, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	if _, err := resolveCtx(s.ctx); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.present {
		return 1, nil
	}
	return 0, nil
}

// SetElement stores a value in the scalar (GrB_Scalar_setElement, Table I).
func (s *Scalar[T]) SetElement(v T) error {
	if err := s.check(); err != nil {
		return err
	}
	if _, err := resolveCtx(s.ctx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.val = v
	s.present = true
	return nil
}

// ExtractElement reads the scalar's value; ok is false when the scalar is
// empty (GrB_Scalar_extractElement, Table I — the NO_VALUE case).
func (s *Scalar[T]) ExtractElement() (val T, ok bool, err error) {
	var zero T
	if err := s.check(); err != nil {
		return zero, false, err
	}
	if _, err := resolveCtx(s.ctx); err != nil {
		return zero, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val, s.present, nil
}

// Wait completes the scalar's sequence (GrB_Scalar_wait). Scalar operations
// execute eagerly in this implementation, so Wait only validates arguments;
// it exists for API conformance.
func (s *Scalar[T]) Wait(mode WaitMode) error {
	if err := s.check(); err != nil {
		return err
	}
	if mode != Complete && mode != Materialize {
		return errf(InvalidValue, "Wait: invalid mode %d", int(mode))
	}
	_, err := resolveCtx(s.ctx)
	return err
}

// ErrorString returns the diagnostic string for the last error (GrB_error).
func (s *Scalar[T]) ErrorString() string {
	if s == nil || !s.init {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errmsg
}

// Free releases the scalar (GrB_free).
func (s *Scalar[T]) Free() error {
	if err := s.check(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init = false
	s.present = false
	return nil
}

package grb

import "testing"

// Argument-validation sweep: every operation family must reject nil and
// uninitialized operands with the right API error, before touching anything.

func TestOpsRejectNilOperands(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0}, []Index{0}, []int{1})
	u := mustVector(t, 2, []Index{0}, []int{1})
	c := ck1(NewMatrix[int](2, 2))
	w := ck1(NewVector[int](2))
	var nilM *Matrix[int]
	var nilV *Vector[int]

	wantCode(t, MxM(nilM, nil, nil, PlusTimes[int](), a, a, nil), NullPointer)
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), nilM, a, nil), NullPointer)
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), a, nilM, nil), NullPointer)
	wantCode(t, MxV(nilV, nil, nil, PlusTimes[int](), a, u, nil), NullPointer)
	wantCode(t, MxV(w, nil, nil, PlusTimes[int](), nilM, u, nil), NullPointer)
	wantCode(t, MxV(w, nil, nil, PlusTimes[int](), a, nilV, nil), NullPointer)
	wantCode(t, VxM(w, nil, nil, PlusTimes[int](), nilV, a, nil), NullPointer)
	wantCode(t, EWiseAddMatrix(c, nil, nil, Plus[int], nilM, a, nil), NullPointer)
	wantCode(t, EWiseMultMatrix(c, nil, nil, Times[int], a, nilM, nil), NullPointer)
	wantCode(t, EWiseAddVector(w, nil, nil, Plus[int], nilV, u, nil), NullPointer)
	wantCode(t, EWiseMultVector(w, nil, nil, Times[int], u, nilV, nil), NullPointer)
	wantCode(t, MatrixApply(c, nil, nil, Identity[int], nilM, nil), NullPointer)
	wantCode(t, VectorApply(w, nil, nil, Identity[int], nilV, nil), NullPointer)
	wantCode(t, MatrixSelect(c, nil, nil, TriL[int], nilM, 0, nil), NullPointer)
	wantCode(t, VectorSelect(w, nil, nil, RowLE[int], nilV, 0, nil), NullPointer)
	wantCode(t, MatrixExtract(c, nil, nil, nilM, All, All, nil), NullPointer)
	wantCode(t, VectorExtract(w, nil, nil, nilV, All, nil), NullPointer)
	wantCode(t, ColExtract(w, nil, nil, nilM, All, 0, nil), NullPointer)
	wantCode(t, MatrixAssign(c, nil, nil, nilM, All, All, nil), NullPointer)
	wantCode(t, VectorAssign(w, nil, nil, nilV, All, nil), NullPointer)
	wantCode(t, RowAssign(c, nil, nil, nilV, 0, All, nil), NullPointer)
	wantCode(t, ColAssign(c, nil, nil, nilV, All, 0, nil), NullPointer)
	wantCode(t, Transpose(c, nil, nil, nilM, nil), NullPointer)
	wantCode(t, Kronecker(c, nil, nil, Times[int], nilM, a, nil), NullPointer)
	wantCode(t, MatrixReduceToVector(w, nil, nil, PlusMonoid[int](), nilM, nil), NullPointer)
	s := ck1(NewScalar[int]())
	wantCode(t, MatrixReduceToScalar(s, nil, PlusMonoid[int](), nilM, nil), NullPointer)
	wantCode(t, VectorReduceToScalar(s, nil, PlusMonoid[int](), nilV, nil), NullPointer)
	var nilS *Scalar[int]
	wantCode(t, MatrixReduceToScalar(nilS, nil, PlusMonoid[int](), a, nil), NullPointer)
	if _, err := MatrixReduce(PlusMonoid[int](), nilM); Code(err) != NullPointer {
		t.Fatalf("MatrixReduce nil: %v", err)
	}
	if _, err := VectorReduce(PlusMonoid[int](), nilV); Code(err) != NullPointer {
		t.Fatalf("VectorReduce nil: %v", err)
	}
	if _, err := MatrixDiag(nilV, 0); Code(err) != NullPointer {
		t.Fatalf("MatrixDiag nil: %v", err)
	}
	if _, err := AsMask(nilM); Code(err) != NullPointer {
		t.Fatalf("AsMask nil: %v", err)
	}
	if _, err := AsVectorMask(nilV); Code(err) != NullPointer {
		t.Fatalf("AsVectorMask nil: %v", err)
	}
}

func TestOpsRejectUninitializedOperands(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0}, []Index{0}, []int{1})
	c := ck1(NewMatrix[int](2, 2))
	var zero Matrix[int] // constructed without NewMatrix
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), &zero, a, nil), UninitializedObject)
	freed := mustMatrix(t, 2, 2, nil, nil, []int(nil))
	ck(freed.Free())
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), freed, a, nil), UninitializedObject)
	wantCode(t, MxM(freed, nil, nil, PlusTimes[int](), a, a, nil), UninitializedObject)
	// uninitialized masks are rejected too
	var zeroMask Matrix[bool]
	wantCode(t, MxM(c, &zeroMask, nil, PlusTimes[int](), a, a, nil), UninitializedObject)
}

func TestVectorContextPlumbing(t *testing.T) {
	setMode(t, NonBlocking)
	ctx1 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	ctx2 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	u, err := NewVector[int](3, InContext(ctx1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := u.Context()
	if err != nil || got != ctx1 {
		t.Fatalf("vector context: %v %v", got, err)
	}
	v := ck1(NewVector[int](3, InContext(ctx2)))
	w := ck1(NewVector[int](3, InContext(ctx1)))
	wantCode(t, EWiseAddVector(w, nil, nil, Plus[int], u, v, nil), InvalidValue)
	if err := v.SwitchContext(ctx1); err != nil {
		t.Fatal(err)
	}
	if err := EWiseAddVector(w, nil, nil, Plus[int], u, v, nil); err != nil {
		t.Fatal(err)
	}
	// vector in freed context
	if err := ctx1.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Nvals(); Code(err) != UninitializedObject {
		t.Fatalf("vector in freed ctx: %v", err)
	}
	// SwitchContext validation
	wantCode(t, v.SwitchContext(nil), NullPointer)
	wantCode(t, v.SwitchContext(ctx1), UninitializedObject) // freed target
}

// TestMatrixVectorMixedContextOps checks the shared-context rule on
// matrix-vector operations too.
func TestMatrixVectorMixedContextOps(t *testing.T) {
	setMode(t, NonBlocking)
	c1 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	c2 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	a := ck1(NewMatrix[int](2, 2, InContext(c1)))
	ck(a.SetElement(1, 0, 0))
	u := ck1(NewVector[int](2, InContext(c2)))
	ck(u.SetElement(1, 0))
	w := ck1(NewVector[int](2, InContext(c1)))
	wantCode(t, MxV(w, nil, nil, PlusTimes[int](), a, u, nil), InvalidValue)
	if err := u.SwitchContext(c1); err != nil {
		t.Fatal(err)
	}
	if err := MxV(w, nil, nil, PlusTimes[int](), a, u, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{0}, []int{1})
}

package grb

import "testing"

func TestMatrixFromTuples(t *testing.T) {
	setMode(t, Blocking)
	m, err := MatrixFromTuples(2, 3, []Index{0, 1}, []Index{2, 0}, []int{7, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, m, []Index{0, 1}, []Index{2, 0}, []int{7, 8})
	// empty tuples: empty matrix
	e, err := MatrixFromTuples[int](2, 2, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nv := ck1(e.Nvals()); nv != 0 {
		t.Fatal("empty FromTuples not empty")
	}
	// errors pass through
	if _, err := MatrixFromTuples(2, 2, []Index{5}, []Index{0}, []int{1}, nil); Code(err) != InvalidIndex {
		t.Fatalf("bad index: %v", err)
	}
	if _, err := MatrixFromTuples(0, 2, nil, nil, []int(nil), nil); Code(err) != InvalidValue {
		t.Fatalf("bad dims: %v", err)
	}
	// duplicate combine
	d, err := MatrixFromTuples(2, 2, []Index{0, 0}, []Index{0, 0}, []int{1, 2}, Plus[int])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(d.ExtractElement(0, 0)); v != 3 {
		t.Fatalf("dup combine = %d", v)
	}
}

func TestVectorFromTuplesAndDense(t *testing.T) {
	setMode(t, Blocking)
	v, err := VectorFromTuples(4, []Index{1, 3}, []float64{0.5, 1.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, v, []Index{1, 3}, []float64{0.5, 1.5})
	dv, err := DenseVector(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, dv, []Index{0, 1, 2}, []int{42, 42, 42})
}

func TestIdentityMatrix(t *testing.T) {
	setMode(t, Blocking)
	ident, err := IdentityMatrix(3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, ident, []Index{0, 1, 2}, []Index{0, 1, 2}, []float64{1, 1, 1})
	// I·A = A
	a := ck1(MatrixFromTuples(3, 3, []Index{0, 2}, []Index{1, 0}, []float64{2.5, -1}, nil))
	c := ck1(NewMatrix[float64](3, 3))
	if err := MxM(c, nil, nil, PlusTimes[float64](), ident, a, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 2}, []Index{1, 0}, []float64{2.5, -1})
}

// TestContextConcurrentUse hammers context creation, inspection and freeing
// from many goroutines (race coverage for the Context internals).
func TestContextConcurrentUse(t *testing.T) {
	setMode(t, NonBlocking)
	parent, err := NewContext(NonBlocking, nil, WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func(w int) {
			child, err := NewContext(NonBlocking, parent, WithThreads(1+w%4))
			if err != nil {
				done <- err
				return
			}
			m, err := NewMatrix[int](4, 4, InContext(child))
			if err != nil {
				done <- err
				return
			}
			if err := m.SetElement(w, w%4, (w+1)%4); err != nil {
				done <- err
				return
			}
			c := ck1(NewMatrix[int](4, 4, InContext(child)))
			if err := MxM(c, nil, nil, PlusTimes[int](), m, m, nil); err != nil {
				done <- err
				return
			}
			if err := c.Wait(Materialize); err != nil {
				done <- err
				return
			}
			_ = child.Threads()
			done <- child.Free()
		}(w)
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

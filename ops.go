// Package grb is a Go implementation of the GraphBLAS 2.0 specification —
// graph algorithms in the language of sparse linear algebra — as introduced
// in "Introduction to GraphBLAS 2.0" (Brock, Buluç, Mattson, McMillan,
// Moreira; IPDPSW 2021). It provides the opaque Matrix, Vector, Scalar and
// Context objects, the full operation set (mxm, mxv, vxm, eWiseAdd,
// eWiseMult, apply, select, extract, assign, reduce, transpose, kronecker),
// blocking and nonblocking execution with sequences and completion (§III),
// hierarchical execution contexts (§IV), the split API/execution error model
// with deferred reporting (§V), GrB_Scalar semantics (§VI), import/export
// and serialization (§VII), and index-unary operators (§VIII).
//
// The Go binding uses generics in place of the C API's type-suffixed method
// families: Matrix[T], Vector[T] and Scalar[T] are strongly typed, and
// operators are ordinary function values, so the "user-defined function"
// machinery of the C spec is the natural case here.
package grb

// Index is the GraphBLAS index type (GrB_Index). The C specification uses
// uint64; the Go binding uses int for ergonomic slice indexing and reports
// negative values as GrB_INVALID_INDEX.
type Index = int

// All is the nil index slice, meaning "all indices" (GrB_ALL) in extract and
// assign operations.
var All []Index = nil

// UnaryOp is a GraphBLAS unary operator f: Din → Dout.
type UnaryOp[Din, Dout any] func(Din) Dout

// BinaryOp is a GraphBLAS binary operator f: Din1 × Din2 → Dout.
type BinaryOp[Din1, Din2, Dout any] func(Din1, Din2) Dout

// Signed groups Go's built-in signed integer types.
type Signed interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64
}

// Unsigned groups Go's built-in unsigned integer types.
type Unsigned interface {
	~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64
}

// Integer groups all built-in integer types.
type Integer interface{ Signed | Unsigned }

// Float groups the built-in floating-point types.
type Float interface{ ~float32 | ~float64 }

// Number groups the GraphBLAS predefined numeric domains.
type Number interface{ Integer | Float }

// Ordered groups domains with a total order, usable with Min/Max and the
// comparison operators.
type Ordered interface{ Number | ~string }

// ---------------------------------------------------------------------------
// Predefined unary operators (GrB_IDENTITY, GrB_AINV, GrB_ABS, ...).
// Each is an ordinary generic function so grb.Abs[float64] is directly
// usable as a UnaryOp[float64, float64].
// ---------------------------------------------------------------------------

// Identity returns its argument unchanged (GrB_IDENTITY).
func Identity[T any](x T) T { return x }

// AInv returns the additive inverse -x (GrB_AINV).
func AInv[T Number](x T) T { return -x }

// Abs returns the absolute value (GrB_ABS).
func Abs[T Number](x T) T {
	if x < 0 {
		return -x
	}
	return x
}

// MInv returns the multiplicative inverse 1/x (GrB_MINV).
func MInv[T Float](x T) T { return 1 / x }

// LNot returns logical negation (GrB_LNOT).
func LNot(x bool) bool { return !x }

// BNot returns bitwise complement (GrB_BNOT).
func BNot[T Integer](x T) T { return ^x }

// One returns the multiplicative identity regardless of input (GxB_ONE),
// useful for converting patterns to unweighted values.
func One[T Number](T) T { return 1 }

// ---------------------------------------------------------------------------
// Predefined binary operators (GrB_PLUS, GrB_TIMES, GrB_MIN, ...).
// ---------------------------------------------------------------------------

// First returns its first argument (GrB_FIRST).
func First[T, U any](x T, _ U) T { return x }

// Second returns its second argument (GrB_SECOND).
func Second[T, U any](_ T, y U) U { return y }

// Oneb returns 1 regardless of inputs (GrB_ONEB, the "pair" operator used by
// structure-only semirings such as plus_pair triangle counting).
func Oneb[T, U any, V Number](T, U) V { return 1 }

// Plus returns x + y (GrB_PLUS).
func Plus[T Number](x, y T) T { return x + y }

// Minus returns x - y (GrB_MINUS).
func Minus[T Number](x, y T) T { return x - y }

// Times returns x * y (GrB_TIMES).
func Times[T Number](x, y T) T { return x * y }

// Div returns x / y (GrB_DIV). Integer division by zero panics, as in Go.
func Div[T Number](x, y T) T { return x / y }

// Min returns the smaller argument (GrB_MIN).
func Min[T Ordered](x, y T) T {
	if y < x {
		return y
	}
	return x
}

// Max returns the larger argument (GrB_MAX).
func Max[T Ordered](x, y T) T {
	if y > x {
		return y
	}
	return x
}

// LAnd returns logical conjunction (GrB_LAND).
func LAnd(x, y bool) bool { return x && y }

// LOr returns logical disjunction (GrB_LOR).
func LOr(x, y bool) bool { return x || y }

// LXor returns logical exclusive-or (GrB_LXOR).
func LXor(x, y bool) bool { return x != y }

// LXnor returns logical equivalence (GrB_LXNOR).
func LXnor(x, y bool) bool { return x == y }

// BAnd returns bitwise conjunction (GrB_BAND).
func BAnd[T Integer](x, y T) T { return x & y }

// BOr returns bitwise disjunction (GrB_BOR).
func BOr[T Integer](x, y T) T { return x | y }

// BXor returns bitwise exclusive-or (GrB_BXOR).
func BXor[T Integer](x, y T) T { return x ^ y }

// Eq returns x == y (GrB_EQ).
func Eq[T comparable](x, y T) bool { return x == y }

// Ne returns x != y (GrB_NE).
func Ne[T comparable](x, y T) bool { return x != y }

// Lt returns x < y (GrB_LT).
func Lt[T Ordered](x, y T) bool { return x < y }

// Le returns x <= y (GrB_LE).
func Le[T Ordered](x, y T) bool { return x <= y }

// Gt returns x > y (GrB_GT).
func Gt[T Ordered](x, y T) bool { return x > y }

// Ge returns x >= y (GrB_GE).
func Ge[T Ordered](x, y T) bool { return x >= y }

package grb

// MatrixFromTuples builds a new matrix directly from coordinate lists — a
// Go-binding convenience over NewMatrix + Build for the overwhelmingly
// common construction pattern. dup may be nil per §IX (duplicates then
// raise an execution error).
func MatrixFromTuples[T any](nrows, ncols Index, I, J []Index, X []T,
	dup BinaryOp[T, T, T], opts ...ObjOption) (*Matrix[T], error) {
	m, err := NewMatrix[T](nrows, ncols, opts...)
	if err != nil {
		return nil, err
	}
	if len(I) > 0 {
		if err := m.Build(I, J, X, dup); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// VectorFromTuples builds a new vector directly from coordinate lists.
func VectorFromTuples[T any](size Index, I []Index, X []T,
	dup BinaryOp[T, T, T], opts ...ObjOption) (*Vector[T], error) {
	v, err := NewVector[T](size, opts...)
	if err != nil {
		return nil, err
	}
	if len(I) > 0 {
		if err := v.Build(I, X, dup); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// DenseVector builds a vector holding val at every position — a common
// starting point for iterative algorithms (PageRank ranks, labels, ...).
func DenseVector[T any](size Index, val T, opts ...ObjOption) (*Vector[T], error) {
	v, err := NewVector[T](size, opts...)
	if err != nil {
		return nil, err
	}
	if err := VectorAssignScalar(v, nil, nil, val, All, nil); err != nil {
		return nil, err
	}
	return v, nil
}

// IdentityMatrix builds the n×n identity over the given "one" value.
func IdentityMatrix[T any](n Index, one T, opts ...ObjOption) (*Matrix[T], error) {
	I := make([]Index, n)
	X := make([]T, n)
	for i := 0; i < n; i++ {
		I[i] = i
		X[i] = one
	}
	return MatrixFromTuples(n, n, I, I, X, nil, opts...)
}

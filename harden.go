package grb

import (
	"errors"

	"github.com/grblas/grb/internal/faults"
	"github.com/grblas/grb/internal/sparse"
)

// This file is the grb-side half of the execution-hardening layer: the step
// guard that gives every sequence-drain step and immediate-mode kernel the
// never-crash guarantee of §V, and the mapping from substrate failure
// sentinels onto GraphBLAS Info codes.

// runStep executes one compute — a sequence step's closure or an
// immediate-mode kernel — with panic isolation: any panic escaping it
// (kernel bug, injected fault, worker crash ferried by internal/parallel) is
// recovered, counted, and converted into the execution error the caller
// parks, so the process survives per §V. Errors the compute returns normally
// are mapped onto Info codes by the same taxonomy.
func runStep[S any](op string, compute func() (S, error)) (res S, err error) {
	defer func() {
		if r := recover(); r != nil {
			sparse.NotePanicRecovered()
			err = panicErr(op, r)
		}
	}()
	res, err = compute()
	if err != nil {
		err = mapExecErr(err, op)
	}
	return res, err
}

// panicErr converts a recovered panic value into a parked execution error.
func panicErr(op string, r any) *Error {
	if e, ok := r.(error); ok {
		return mapExecErr(e, op)
	}
	return errf(Panic, "%s: panic: %v", op, r)
}

// mapExecErr translates substrate errors into GraphBLAS execution errors:
// budget exhaustion and (injected or real) allocation failure are
// GrB_OUT_OF_MEMORY, cancellation is the Canceled extension code, a
// recovered kernel panic is GrB_PANIC, and the pre-hardening substrate
// sentinels keep their historical codes. An error that is already a grb
// *Error passes through unchanged.
func mapExecErr(err error, op string) *Error {
	var ge *Error
	if errors.As(err, &ge) {
		return ge
	}
	switch {
	case errors.Is(err, sparse.ErrBudget),
		errors.Is(err, faults.ErrInjected),
		errors.Is(err, sparse.ErrTooLarge):
		return errf(OutOfMemory, "%s: %v", op, err)
	case errors.Is(err, sparse.ErrCanceled):
		return errf(Canceled, "%s: %v", op, err)
	case errors.Is(err, sparse.ErrKernelPanic):
		return errf(Panic, "%s: %v", op, err)
	case errors.Is(err, sparse.ErrDuplicate):
		// §IX: with a nil dup operator, duplicates are an execution error.
		return errf(InvalidValue, "%s: duplicate coordinates and no dup operator", op)
	case errors.Is(err, sparse.ErrIndexOutOfBounds):
		return errf(IndexOutOfBounds, "%s: index out of bounds", op)
	}
	return errf(Panic, "%s: %v", op, err)
}

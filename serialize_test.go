package grb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSerializeMatrixRoundTrip(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 3, 4,
		[]Index{0, 1, 2}, []Index{3, 0, 2}, []float64{1.5, -2, 1e300})
	size, err := m.SerializeSize()
	if err != nil || size <= 0 {
		t.Fatalf("size = %d, %v", size, err)
	}
	buf := make([]byte, size)
	n, err := m.Serialize(buf)
	if err != nil || n != size {
		t.Fatalf("serialize = %d, %v", n, err)
	}
	back, err := MatrixDeserialize[float64](buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, back, []Index{0, 1, 2}, []Index{3, 0, 2}, []float64{1.5, -2, 1e300})
	// buffer too small
	if _, err := m.Serialize(make([]byte, size-1)); Code(err) != InsufficientSpace {
		t.Fatalf("small buffer: %v", err)
	}
}

func TestSerializeDomains(t *testing.T) {
	setMode(t, Blocking)
	// every predefined numeric domain plus bool round-trips
	checkRT := func(t *testing.T, build func() ([]byte, error), verify func([]byte) error) {
		blob, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := verify(blob); err != nil {
			t.Fatal(err)
		}
	}
	mi8 := ck1(NewMatrix[int8](2, 2))
	ck(mi8.Build([]Index{0, 1}, []Index{1, 0}, []int8{-5, 100}, nil))
	checkRT(t, mi8.SerializeBytes, func(b []byte) error {
		back, err := MatrixDeserialize[int8](b)
		if err != nil {
			return err
		}
		if v, _ := ck2(back.ExtractElement(0, 1)); v != -5 {
			t.Fatal("int8 value")
		}
		return nil
	})
	mu := ck1(NewMatrix[uint64](2, 2))
	ck(mu.Build([]Index{0}, []Index{0}, []uint64{1 << 63}, nil))
	checkRT(t, mu.SerializeBytes, func(b []byte) error {
		back, err := MatrixDeserialize[uint64](b)
		if err != nil {
			return err
		}
		if v, _ := ck2(back.ExtractElement(0, 0)); v != 1<<63 {
			t.Fatal("uint64 value")
		}
		return nil
	})
	mb := ck1(NewMatrix[bool](2, 2))
	ck(mb.Build([]Index{0, 1}, []Index{0, 1}, []bool{true, false}, nil))
	checkRT(t, mb.SerializeBytes, func(b []byte) error {
		back, err := MatrixDeserialize[bool](b)
		if err != nil {
			return err
		}
		if v, _ := ck2(back.ExtractElement(1, 1)); v != false {
			t.Fatal("bool value")
		}
		if v, _ := ck2(back.ExtractElement(0, 0)); v != true {
			t.Fatal("bool value 2")
		}
		return nil
	})
	mf32 := ck1(NewMatrix[float32](1, 1))
	ck(mf32.Build([]Index{0}, []Index{0}, []float32{3.25}, nil))
	checkRT(t, mf32.SerializeBytes, func(b []byte) error {
		back, err := MatrixDeserialize[float32](b)
		if err != nil {
			return err
		}
		if v, _ := ck2(back.ExtractElement(0, 0)); v != 3.25 {
			t.Fatal("float32 value")
		}
		return nil
	})
}

// TestSerializeUserDefinedDomain exercises the gob fallback path for
// user-defined domains (the spec allows any domain in a serialized stream).
func TestSerializeUserDefinedDomain(t *testing.T) {
	setMode(t, Blocking)
	type edge struct {
		W float64
		L string
	}
	m := ck1(NewMatrix[edge](2, 2))
	if err := m.Build([]Index{0, 1}, []Index{1, 0},
		[]edge{{1.5, "a"}, {2.5, "b"}}, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := m.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := MatrixDeserialize[edge](blob)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ck2(back.ExtractElement(1, 0))
	if !ok || v != (edge{2.5, "b"}) {
		t.Fatalf("user-defined round trip: %v,%v", v, ok)
	}
}

func TestSerializeDomainMismatch(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 2, 2, []Index{0}, []Index{0}, []float64{1})
	blob := ck1(m.SerializeBytes())
	if _, err := MatrixDeserialize[int32](blob); Code(err) != DomainMismatch {
		t.Fatalf("wrong domain: %v", err)
	}
	v := mustVector(t, 3, []Index{0}, []int{1})
	vb := ck1(v.SerializeBytes())
	if _, err := VectorDeserialize[float64](vb); Code(err) != DomainMismatch {
		t.Fatalf("vector wrong domain: %v", err)
	}
	// matrix stream into vector deserializer and vice versa
	if _, err := VectorDeserialize[float64](blob); Code(err) != InvalidObject {
		t.Fatalf("kind confusion: %v", err)
	}
	if _, err := MatrixDeserialize[int](vb); Code(err) != InvalidObject {
		t.Fatalf("kind confusion 2: %v", err)
	}
}

func TestDeserializeCorruptStreams(t *testing.T) {
	setMode(t, Blocking)
	if _, err := MatrixDeserialize[int](nil); Code(err) != InvalidObject {
		t.Fatalf("nil data: %v", err)
	}
	if _, err := MatrixDeserialize[int]([]byte("garbage!")); Code(err) != InvalidObject {
		t.Fatalf("garbage: %v", err)
	}
	m := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{1, 2})
	blob := ck1(m.SerializeBytes())
	// truncations at every prefix must fail cleanly, never panic
	for cut := 0; cut < len(blob); cut += 3 {
		if _, err := MatrixDeserialize[int](blob[:cut]); err == nil {
			t.Fatalf("truncated stream at %d accepted", cut)
		}
	}
}

func TestSerializeVectorRoundTrip(t *testing.T) {
	setMode(t, Blocking)
	v := mustVector(t, 6, []Index{1, 4, 5}, []int32{-1, 0, 7})
	size, err := v.SerializeSize()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	n, err := v.Serialize(buf)
	if err != nil || n != size {
		t.Fatalf("%d %v", n, err)
	}
	back, err := VectorDeserialize[int32](buf)
	if err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, back, []Index{1, 4, 5}, []int32{-1, 0, 7})
	if _, err := v.Serialize(make([]byte, 3)); Code(err) != InsufficientSpace {
		t.Fatalf("small buf: %v", err)
	}
}

// TestSerializeRoundTripProperty: serialize∘deserialize is the identity on
// random matrices.
func TestSerializeRoundTripProperty(t *testing.T) {
	setMode(t, Blocking)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randDense(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.3)
		m := d.toMatrix(t)
		blob, err := m.SerializeBytes()
		if err != nil {
			return false
		}
		back, err := MatrixDeserialize[int](blob)
		if err != nil {
			return false
		}
		ai, aj, ax := ck3(m.ExtractTuples())
		bi, bj, bx := ck3(back.ExtractTuples())
		if len(ai) != len(bi) {
			return false
		}
		for k := range ai {
			if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

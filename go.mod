module github.com/grblas/grb

go 1.22

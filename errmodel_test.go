package grb

import "testing"

// TestAPIErrorsNeverDeferred covers §V: API errors are deterministic,
// reported immediately even in nonblocking mode, and guarantee that no
// arguments were modified.
func TestAPIErrorsNeverDeferred(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 3, []Index{0}, []Index{0}, []int{1})
	b := mustMatrix(t, 2, 3, []Index{1}, []Index{1}, []int{2})
	c := mustMatrix(t, 2, 2, []Index{0}, []Index{1}, []int{9})

	// Dimension mismatch: immediate, and C unchanged.
	err := MxM(c, nil, nil, PlusTimes[int](), a, b, nil)
	wantCode(t, err, DimensionMismatch)
	matrixEquals(t, c, []Index{0}, []Index{1}, []int{9})
	// No parked error either: the object remains healthy.
	if err := c.Wait(Materialize); err != nil {
		t.Fatalf("API error leaked into the sequence: %v", err)
	}

	// Invalid index on setElement: immediate, object unchanged.
	wantCode(t, c.SetElement(5, 7, 7), InvalidIndex)
	matrixEquals(t, c, []Index{0}, []Index{1}, []int{9})
}

// TestExecutionErrorDeferral covers §V's deferred execution errors: in
// nonblocking mode the duplicate-without-dup build error (§IX) surfaces not
// at the call but at a later method — and Wait(Complete) parks it while
// Wait(Materialize) reports it.
func TestExecutionErrorDeferral(t *testing.T) {
	setMode(t, NonBlocking)
	m := ck1(NewMatrix[int](2, 2))
	// The call itself is well-formed: no API error.
	if err := m.Build([]Index{0, 0}, []Index{0, 0}, []int{1, 2}, nil); err != nil {
		t.Fatalf("build returned eagerly: %v", err)
	}
	// Wait(Complete) executes the sequence but may keep the error parked.
	if err := m.Wait(Complete); err != nil {
		t.Fatalf("Complete reported the error: %v", err)
	}
	// A later method on the object reports the parked execution error.
	_, err := m.Nvals()
	wantCode(t, err, InvalidValue)
	// So does the materializing wait.
	wantCode(t, m.Wait(Materialize), InvalidValue)
	// GrB_error returns the implementation-defined string.
	if m.ErrorString() == "" {
		t.Fatal("ErrorString should describe the failure")
	}
}

// TestBlockingModeReportsImmediately: the same failure in blocking mode is
// returned by the offending call itself.
func TestBlockingModeReportsImmediately(t *testing.T) {
	setMode(t, Blocking)
	m := ck1(NewMatrix[int](2, 2))
	err := m.Build([]Index{0, 0}, []Index{0, 0}, []int{1, 2}, nil)
	wantCode(t, err, InvalidValue)
}

// TestErrorStateSticky: once a sequence fails, subsequent operations on the
// object report the error rather than computing on undefined state.
func TestErrorStateSticky(t *testing.T) {
	setMode(t, NonBlocking)
	m := ck1(NewMatrix[int](2, 2))
	ck(m.Build([]Index{0, 0}, []Index{0, 0}, []int{1, 2}, nil))
	ck(m.Wait(Complete))
	// using the broken object as an operation output fails
	a := mustMatrix(t, 2, 2, []Index{0}, []Index{0}, []int{1})
	wantCode(t, MxM(m, nil, nil, PlusTimes[int](), a, a, nil), InvalidValue)
	// and as an input too (the sequence cannot be completed)
	c := ck1(NewMatrix[int](2, 2))
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), m, a, nil), InvalidValue)
	// the downstream object must NOT inherit a parked error from the failed
	// call — that call never enqueued
	if err := c.Wait(Materialize); err != nil {
		t.Fatalf("downstream object poisoned: %v", err)
	}
}

// TestErrorStringThreadSafe: §V requires GrB_error to be callable from two
// threads on the same object without synchronization.
func TestErrorStringThreadSafe(t *testing.T) {
	setMode(t, NonBlocking)
	m := ck1(NewMatrix[int](2, 2))
	ck(m.Build([]Index{0, 0}, []Index{0, 0}, []int{1, 2}, nil))
	ck(m.Wait(Complete))
	done := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- m.ErrorString() }()
	}
	s1, s2 := <-done, <-done
	if s1 != s2 || s1 == "" {
		t.Fatalf("concurrent ErrorString: %q vs %q", s1, s2)
	}
}

// TestWaitModeValidation: Wait validates its mode argument (API error).
func TestWaitModeValidation(t *testing.T) {
	setMode(t, NonBlocking)
	m := ck1(NewMatrix[int](2, 2))
	wantCode(t, m.Wait(WaitMode(9)), InvalidValue)
	v := ck1(NewVector[int](2))
	wantCode(t, v.Wait(WaitMode(-1)), InvalidValue)
}

// TestSequenceContinuationAcrossWaits mirrors §V's two-thread sequence
// description: one part of a sequence runs, Wait(Complete) is called, the
// sequence continues, and the materializing wait at the end succeeds.
func TestSequenceContinuationAcrossWaits(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{1, 0}, []int{1, 1})
	c := ck1(NewMatrix[int](2, 2))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(Complete); err != nil {
		t.Fatal(err)
	}
	// continue the sequence (second "thread" in the paper's scenario)
	if err := MxM(c, nil, Plus[int], PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(Materialize); err != nil {
		t.Fatal(err)
	}
	// (A²)(0,0) = 1; accumulated twice = 2
	if v, _ := ck2(c.ExtractElement(0, 0)); v != 2 {
		t.Fatalf("c(0,0) = %d", v)
	}
}

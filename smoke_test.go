package grb

import "testing"

// TestSmokeMxM checks a small known product in both execution modes.
func TestSmokeMxM(t *testing.T) {
	for _, mode := range []Mode{Blocking, NonBlocking} {
		t.Run(mode.String(), func(t *testing.T) {
			setMode(t, mode)
			// A = [[1 2],[0 3]], B = [[4 0],[5 6]] (as sparse)
			a := mustMatrix(t, 2, 2, []Index{0, 0, 1}, []Index{0, 1, 1}, []float64{1, 2, 3})
			b := mustMatrix(t, 2, 2, []Index{0, 1, 1}, []Index{0, 0, 1}, []float64{4, 5, 6})
			c, err := NewMatrix[float64](2, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := MxM(c, nil, nil, PlusTimes[float64](), a, b, nil); err != nil {
				t.Fatal(err)
			}
			// C = [[14 12],[15 18]]
			matrixEquals(t, c, []Index{0, 0, 1, 1}, []Index{0, 1, 0, 1}, []float64{14, 12, 15, 18})
		})
	}
}

func TestSmokeMxVAndVxM(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 3, []Index{0, 0, 1}, []Index{0, 2, 1}, []float64{1, 2, 3})
	u := mustVector(t, 3, []Index{0, 1, 2}, []float64{1, 1, 1})
	w, err := NewVector[float64](2)
	if err != nil {
		t.Fatal(err)
	}
	if err := MxV(w, nil, nil, PlusTimes[float64](), a, u, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{0, 1}, []float64{3, 3})

	v := mustVector(t, 2, []Index{0, 1}, []float64{1, 2})
	x, err := NewVector[float64](3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VxM(x, nil, nil, PlusTimes[float64](), v, a, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, x, []Index{0, 1, 2}, []float64{1, 6, 2})
}

func TestSmokeSelectApplyFigure3Style(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 3, 3,
		[]Index{0, 0, 1, 2, 2}, []Index{0, 2, 1, 0, 2}, []int{5, 7, 2, 9, 4})
	// select strict upper triangle
	c, err := NewMatrix[int](3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := MatrixSelect(c, nil, nil, TriU[int], a, 1, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0}, []Index{2}, []int{7})
	// apply colindex+1
	d, err := NewMatrix[int](3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := MatrixApplyIndexOp(d, nil, nil, ColIndex[int], a, 1, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, d, []Index{0, 0, 1, 2, 2}, []Index{0, 2, 1, 0, 2}, []int{1, 3, 2, 1, 3})
}

func TestSmokeMaskAccumReplace(t *testing.T) {
	setMode(t, Blocking)
	c := mustVector(t, 4, []Index{0, 1, 2, 3}, []int{10, 20, 30, 40})
	u := mustVector(t, 4, []Index{0, 1}, []int{1, 2})
	v := mustVector(t, 4, []Index{1, 2}, []int{5, 6})
	mask := mustVector(t, 4, []Index{0, 1, 3}, []bool{true, false, true})

	// plain value mask, accumulate with plus, no replace:
	// t = u (+) v = {0:1, 1:7, 2:6}; z = c + t = {11, 27, 36, 40}
	// mask true at 0 (take z), false/absent at 1,2 (keep c), true at 3 (take z)
	if err := EWiseAddVector(c, mask, Plus[int], Plus[int], u, v, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, c, []Index{0, 1, 2, 3}, []int{11, 20, 30, 40})

	// replace + structural mask: positions 0,1,3 admitted, others deleted
	c2 := mustVector(t, 4, []Index{0, 1, 2, 3}, []int{10, 20, 30, 40})
	if err := EWiseAddVector(c2, mask, Plus[int], Plus[int], u, v, DescRS); err != nil {
		t.Fatal(err)
	}
	// z = {11,27,36,40}; structural mask admits 0,1,3 -> take z; 2 deleted (replace)
	vectorEquals(t, c2, []Index{0, 1, 3}, []int{11, 27, 40})
}

func TestSmokeNonblockingDeferral(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{1, 0}, []int{1, 1})
	c, err := NewMatrix[int](2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	// Wait(Complete) then read.
	if err := c.Wait(Complete); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1}, []Index{0, 1}, []int{1, 1})
}

package grb

import "testing"

// TestTableI_ScalarMethods exercises the six GrB_Scalar manipulation methods
// of Table I, including the empty-scalar states §VI emphasizes.
func TestTableI_ScalarMethods(t *testing.T) {
	setMode(t, Blocking)

	// GrB_Scalar_new: starts empty.
	s, err := NewScalar[float64]()
	if err != nil {
		t.Fatal(err)
	}
	nv, err := s.Nvals()
	if err != nil || nv != 0 {
		t.Fatalf("new scalar nvals = %d, %v", nv, err)
	}
	if _, ok, err := s.ExtractElement(); ok || err != nil {
		t.Fatalf("new scalar should be empty (%v)", err)
	}

	// GrB_Scalar_setElement.
	if err := s.SetElement(2.5); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.ExtractElement()
	if err != nil || !ok || v != 2.5 {
		t.Fatalf("extract = %v,%v,%v", v, ok, err)
	}
	nv = ck1(s.Nvals())
	if nv != 1 {
		t.Fatalf("nvals = %d, want 1", nv)
	}

	// GrB_Scalar_dup is independent of the original.
	d, err := s.Dup()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetElement(9); err != nil {
		t.Fatal(err)
	}
	dv, dok := ck2(d.ExtractElement())
	if !dok || dv != 2.5 {
		t.Fatalf("dup sees %v,%v (should be snapshot)", dv, dok)
	}

	// GrB_Scalar_clear empties.
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	nv = ck1(s.Nvals())
	if nv != 0 {
		t.Fatalf("after clear nvals = %d", nv)
	}
}

func TestScalarOfAndWaitAndFree(t *testing.T) {
	setMode(t, NonBlocking)
	s, err := ScalarOf(42)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ck2(s.ExtractElement()); !ok || v != 42 {
		t.Fatalf("ScalarOf = %v,%v", v, ok)
	}
	if err := s.Wait(Complete); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(Materialize); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(WaitMode(5)); Code(err) != InvalidValue {
		t.Fatalf("bad wait mode: %v", err)
	}
	if s.ErrorString() != "" {
		t.Fatal("fresh scalar has error string")
	}
	if err := s.Free(); err != nil {
		t.Fatal(err)
	}
	// After free: uninitialized object semantics.
	if _, err := s.Nvals(); Code(err) != UninitializedObject {
		t.Fatalf("nvals after free: %v", err)
	}
	if err := s.SetElement(1); Code(err) != UninitializedObject {
		t.Fatalf("set after free: %v", err)
	}
}

func TestScalarUninitialized(t *testing.T) {
	setMode(t, Blocking)
	var s *Scalar[int]
	if _, _, err := s.ExtractElement(); Code(err) != NullPointer {
		t.Fatalf("nil scalar: %v", err)
	}
	var zero Scalar[int]
	if _, err := zero.Nvals(); Code(err) != UninitializedObject {
		t.Fatalf("zero-value scalar: %v", err)
	}
}

func TestScalarUserDefinedDomain(t *testing.T) {
	setMode(t, Blocking)
	type pt struct{ X, Y int }
	s, err := NewScalar[pt]()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetElement(pt{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, ok := ck2(s.ExtractElement())
	if !ok || v != (pt{1, 2}) {
		t.Fatalf("user-defined domain: %v,%v", v, ok)
	}
}

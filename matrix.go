package grb

import (
	"math"
	"sync"

	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// Matrix is the opaque GraphBLAS matrix object (GrB_Matrix), a
// two-dimensional sparse array over domain T. A Matrix belongs to an
// execution context (§IV) and, in nonblocking mode, is defined at any point
// in the program by its sequence of method calls (§III): operations may be
// deferred, and reads or Wait force completion.
//
// A Matrix is safe for the paper's thread-safety contract: independent
// method calls from multiple goroutines are race-free. Sharing one matrix
// across goroutines requires the completion + happens-before protocol of
// §III (see Wait and the examples/multithread program).
type Matrix[T any] struct {
	mu      sync.Mutex
	init    bool
	ctx     *Context
	csr     *sparse.CSR[T]
	pending []func(*Matrix[T]) // deferred sequence steps, run with mu held
	tuples  []sparse.Tuple[T]  // deferred setElement/removeElement updates
	derr    *Error             // parked (deferred) execution error, §V
	errmsg  string             // implementation-defined GrB_error string
	seq     obsv.SeqID         // open sequence span during a drain, else 0
}

// objConfig carries constructor options shared by all object types.
type objConfig struct{ ctx *Context }

// ObjOption configures object constructors.
type ObjOption func(*objConfig)

// InContext places the new object in the given execution context — the new
// optional constructor argument GraphBLAS 2.0 adds (§IV, Fig. 2). Objects
// constructed without it belong to the top-level context.
func InContext(ctx *Context) ObjOption {
	return func(c *objConfig) { c.ctx = ctx }
}

// NewMatrix creates an empty nrows × ncols matrix over domain T
// (GrB_Matrix_new). Both dimensions must be positive.
func NewMatrix[T any](nrows, ncols Index, opts ...ObjOption) (*Matrix[T], error) {
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, err := resolveCtx(cfg.ctx)
	if err != nil {
		return nil, err
	}
	if nrows <= 0 || ncols <= 0 {
		return nil, errf(InvalidValue, "NewMatrix: dimensions must be positive (got %d x %d)", nrows, ncols)
	}
	return &Matrix[T]{init: true, ctx: ctx, csr: sparse.NewCSR[T](nrows, ncols)}, nil
}

// check verifies the object was constructed.
func (m *Matrix[T]) check() error {
	if m == nil {
		return errf(NullPointer, "nil Matrix")
	}
	if !m.init {
		return errf(UninitializedObject, "Matrix not initialized (use NewMatrix)")
	}
	return nil
}

// context resolves the matrix's execution context.
func (m *Matrix[T]) context() (*Context, error) { return resolveCtx(m.ctx) }

// Context returns the execution context the matrix belongs to.
func (m *Matrix[T]) Context() (*Context, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	return m.context()
}

// SwitchContext moves the matrix into a different execution context
// (GrB_Context_switch, Fig. 2 of the paper). The matrix is completed first
// so no deferred work crosses contexts.
func (m *Matrix[T]) SwitchContext(ctx *Context) error {
	if err := m.check(); err != nil {
		return err
	}
	if ctx == nil {
		return errf(NullPointer, "SwitchContext: nil context")
	}
	if ctx.isFreed() {
		return errf(UninitializedObject, "SwitchContext: freed context")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.materializeLocked(); err != nil {
		return err
	}
	m.ctx = ctx
	return nil
}

// ViewInContext returns a new Matrix handle over this matrix's completed
// snapshot, owned by ctx. The receiver is completed first (§III), then the
// view aliases the immutable CSR snapshot — O(1), no copy. Because every
// mutation installs a fresh snapshot, later writes through either handle
// leave the other untouched (copy-on-write by construction), and derived
// views memoized on the snapshot (cached transpose, block grid) are shared.
// Combined with hierarchical context resolution this is the multi-tenant
// serving primitive: one shared graph snapshot, one cheap view per query
// context, so a per-query deadline and memory budget govern the kernels
// without duplicating the graph or blocking other readers.
func (m *Matrix[T]) ViewInContext(ctx *Context) (*Matrix[T], error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if ctx == nil {
		return nil, errf(NullPointer, "ViewInContext: nil context")
	}
	if ctx.isFreed() {
		return nil, errf(UninitializedObject, "ViewInContext: freed context")
	}
	if _, err := m.context(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.materializeLocked(); err != nil {
		return nil, err
	}
	return &Matrix[T]{init: true, ctx: ctx, csr: m.csr}, nil
}

// materializeLocked runs the deferred sequence (pending operations, then
// pending element updates) and returns the parked execution error, if any.
// Callers hold m.mu. When a sink is observing and there is work to drain,
// the drain runs under a sequence span whose id (m.seq) the step wrappers
// read, attributing each kernel event to this drain.
func (m *Matrix[T]) materializeLocked() error {
	var span obsv.Span
	if len(m.pending) > 0 || len(m.tuples) > 0 {
		span = obsv.SeqBegin("matrix")
		m.seq = span.ID()
		defer func() { m.seq = 0 }()
	}
	steps := 0
	for len(m.pending) > 0 {
		op := m.pending[0]
		m.pending = m.pending[1:]
		op(m)
		steps++
	}
	if len(m.tuples) > 0 {
		var ev *obsv.Event
		if obsv.Active() {
			ev = &obsv.Event{Op: "Matrix.setElement(merge)", Kind: "merge"}
			ev.A(m.csr.Rows, m.csr.Cols, m.csr.NNZ()).B(len(m.tuples), 1, len(m.tuples))
		}
		x := obsv.Begin(ev, m.seq)
		nc, err := runStep("setElement", func() (*sparse.CSR[T], error) {
			if err := sparse.MergeSite().Check(); err != nil {
				return nil, err
			}
			return sparse.MergeTuples(m.csr, m.tuples)
		})
		m.tuples = nil
		steps++
		if err != nil {
			x.End(0, err)
			m.parkLocked(err)
		} else {
			x.End(nc.NNZ(), nil)
			m.csr = nc
		}
	}
	if steps > 0 && m.derr == nil && m.csr != nil && m.ctx != nil {
		// Wait-time auto-blocker: once the sequence has drained onto fresh
		// storage, build (and cache) the 2D-blocked tile view when the policy
		// says the matrix has outgrown the flat-only representation — the
		// drain is where conversion cost belongs, not the first multiply that
		// happens to need tiles. Failures degrade to "no blocked view".
		e := m.ctx.exec(1)
		sparse.AutoBlockView(m.csr, e)
		e.Close()
	}
	span.End(steps)
	if m.derr != nil {
		return m.derr
	}
	return nil
}

// parkLocked records a deferred execution error on the object (§V): the
// first error of a sequence sticks and is reported by subsequent method
// calls or a materializing wait.
func (m *Matrix[T]) parkLocked(err error) {
	if m.derr == nil {
		if e, ok := err.(*Error); ok {
			m.derr = e
		} else {
			m.derr = errf(Panic, "%v", err)
		}
		m.errmsg = m.derr.Error()
	}
}

// snapshot completes the matrix and returns its immutable storage for use
// as an operation input. The returned CSR is never mutated: every deferred
// step and Wait installs a fresh storage object, so per-CSR caches (the
// memoized transpose, sparse.TransposeCached) stay coherent across
// mutate→Wait boundaries without any explicit invalidation — a stale cache
// can only live on a superseded snapshot, which readers that obtained it
// earlier may still use safely.
func (m *Matrix[T]) snapshot() (*sparse.CSR[T], error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.materializeLocked(); err != nil {
		return nil, err
	}
	return m.csr, nil
}

// enqueue appends a sequence step that computes a full replacement storage
// for the matrix. In blocking mode the step (and any previously deferred
// work) executes before returning; in nonblocking mode it is deferred. ev is
// the call-time half of the step's kernel event (nil when observation was
// off at call time); Begin/End bracket the compute so the event measures the
// kernel's actual execution inside the drain, not the enqueue.
func (m *Matrix[T]) enqueue(ctx *Context, ev *obsv.Event, compute func() (*sparse.CSR[T], error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.derr != nil {
		return m.derr
	}
	m.pending = append(m.pending, func(mm *Matrix[T]) {
		x := obsv.Begin(ev, mm.seq)
		// runStep isolates the kernel: a panic anywhere inside the step —
		// worker goroutines included — parks an execution error instead of
		// crashing the process (§V), leaving the object valid on its previous
		// storage.
		res, err := runStep("sequence step", compute)
		if err != nil {
			x.End(0, err)
			mm.parkLocked(err)
			return
		}
		x.End(res.NNZ(), nil)
		sparse.DebugCheckCSR(res, "Matrix sequence step")
		mm.csr = res
	})
	if ctx.Mode() == Blocking {
		return m.materializeLocked()
	}
	return nil
}

// WaitMode selects the strength of a Wait (GrB_WaitMode, §III & §V).
type WaitMode int

const (
	// Complete forces the object's sequence to finish computing and its
	// internal state to be safely shareable across goroutines
	// (GrB_COMPLETE). Execution errors from the sequence may still be
	// reported by later method calls rather than by this Wait.
	Complete WaitMode = 0
	// Materialize additionally guarantees that all execution errors from
	// the sequence have been reported: a successful materializing wait
	// means no more errors (or time) can come from prior methods
	// (GrB_MATERIALIZE).
	Materialize WaitMode = 1
)

// Wait forces the sequence that defines the matrix into the requested
// state (GrB_Matrix_wait). See WaitMode for the Complete/Materialize
// distinction the paper introduces.
func (m *Matrix[T]) Wait(mode WaitMode) error {
	if err := m.check(); err != nil {
		return err
	}
	if mode != Complete && mode != Materialize {
		return errf(InvalidValue, "Wait: invalid mode %d", int(mode))
	}
	if _, err := m.context(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.materializeLocked()
	if mode == Materialize {
		return err
	}
	return nil
}

// ErrorString returns the implementation-defined diagnostic string for the
// last error on this matrix (GrB_error, §V). It is safe to call from
// multiple goroutines under the §III conditions. An empty string means no
// further information is available.
func (m *Matrix[T]) ErrorString() string {
	if m == nil || !m.init {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.errmsg
}

// Free releases the matrix (GrB_free). The object behaves as uninitialized
// afterwards.
func (m *Matrix[T]) Free() error {
	if err := m.check(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init = false
	m.csr = nil
	m.pending = nil
	m.tuples = nil
	m.derr = nil
	return nil
}

// Nrows returns the number of rows (GrB_Matrix_nrows).
func (m *Matrix[T]) Nrows() (Index, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if _, err := m.context(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// A pending sequence may include a Resize; settle it so dimensions
	// reflect program order.
	if len(m.pending) > 0 {
		if err := m.materializeLocked(); err != nil {
			return 0, err
		}
	}
	return m.csr.Rows, nil
}

// Ncols returns the number of columns (GrB_Matrix_ncols).
func (m *Matrix[T]) Ncols() (Index, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if _, err := m.context(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) > 0 {
		if err := m.materializeLocked(); err != nil {
			return 0, err
		}
	}
	return m.csr.Cols, nil
}

// Nvals returns the number of stored entries (GrB_Matrix_nvals). This is a
// read: it completes the matrix first.
func (m *Matrix[T]) Nvals() (Index, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if _, err := m.context(); err != nil {
		return 0, err
	}
	c, err := m.snapshot()
	if err != nil {
		return 0, err
	}
	return c.NNZ(), nil
}

// Clear removes all stored entries, resolving any parked error and
// abandoning the deferred sequence (GrB_Matrix_clear).
func (m *Matrix[T]) Clear() error {
	if err := m.check(); err != nil {
		return err
	}
	if _, err := m.context(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = nil
	m.tuples = nil
	m.derr = nil
	m.errmsg = ""
	m.csr = sparse.NewCSR[T](m.csr.Rows, m.csr.Cols)
	return nil
}

// Dup returns a deep copy of the matrix (GrB_Matrix_dup), in the same
// context.
func (m *Matrix[T]) Dup() (*Matrix[T], error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	ctx, err := m.context()
	if err != nil {
		return nil, err
	}
	c, err := m.snapshot()
	if err != nil {
		return nil, err
	}
	// Defensive shape guard: every public constructor validates its shape,
	// but Dup is where an object built through an internal path would first
	// hand an unrepresentable dense extent to a caller.
	if _, ok := sparse.CheckedMul(c.Rows, c.Cols); !ok {
		return nil, errf(OutOfMemory, "Dup: shape %dx%d overflows the index range", c.Rows, c.Cols)
	}
	return &Matrix[T]{init: true, ctx: ctx, csr: c}, nil // csr is immutable; share
}

// Resize changes the matrix dimensions (GrB_Matrix_resize). Entries outside
// the new shape are dropped.
func (m *Matrix[T]) Resize(nrows, ncols Index) error {
	if err := m.check(); err != nil {
		return err
	}
	ctx, err := m.context()
	if err != nil {
		return err
	}
	if nrows <= 0 || ncols <= 0 {
		return errf(InvalidValue, "Resize: dimensions must be positive")
	}
	// Reject shapes whose dense extent (or Ptr length, nrows+1) overflows
	// before the kernel allocates anything (ErrTooLarge semantics; the same
	// taxonomy maps it onto GrB_OUT_OF_MEMORY).
	if _, ok := sparse.CheckedMul(nrows, ncols); !ok || nrows > math.MaxInt-1 {
		return errf(OutOfMemory, "Resize: shape %dx%d overflows the index range", nrows, ncols)
	}
	old, err := m.snapshot()
	if err != nil {
		return err
	}
	var ev *obsv.Event
	if obsv.Active() {
		ev = (&obsv.Event{Op: "Matrix.Resize", Kind: "kernel"}).
			A(old.Rows, old.Cols, old.NNZ())
	}
	return m.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		return old.Resize(nrows, ncols), nil
	})
}

// Build populates an empty matrix from coordinate lists (GrB_Matrix_build):
// entry (I[k], J[k]) receives X[k]. Duplicate coordinates are combined with
// dup; per GraphBLAS 2.0 §IX dup may be nil, in which case duplicates are
// reported as an execution error (InvalidValue in the C spec; here
// surfaced with code InvalidValue and deferred like any execution error in
// nonblocking mode).
func (m *Matrix[T]) Build(I, J []Index, X []T, dup BinaryOp[T, T, T]) error {
	if err := m.check(); err != nil {
		return err
	}
	ctx, err := m.context()
	if err != nil {
		return err
	}
	if len(I) != len(J) || len(I) != len(X) {
		return errf(InvalidValue, "Build: index and value slices must have equal length")
	}
	cur, err := m.snapshot()
	if err != nil {
		return err
	}
	if cur.NNZ() != 0 {
		return errf(OutputNotEmpty, "Build: matrix already contains entries")
	}
	rows, cols := cur.Rows, cur.Cols
	for k := range I {
		if I[k] < 0 || I[k] >= rows || J[k] < 0 || J[k] >= cols {
			return errf(InvalidIndex, "Build: coordinate (%d,%d) outside %dx%d", I[k], J[k], rows, cols)
		}
	}
	// Copy the caller's slices: the sequence may execute after they change.
	ci := append([]Index(nil), I...)
	cj := append([]Index(nil), J...)
	cx := append([]T(nil), X...)
	var ev *obsv.Event
	if obsv.Active() {
		ev = (&obsv.Event{Op: "Matrix.Build", Kind: "kernel"}).
			A(rows, cols, len(ci))
	}
	return m.enqueue(ctx, ev, func() (*sparse.CSR[T], error) {
		var d func(T, T) T
		if dup != nil {
			d = dup
		}
		nc, err := sparse.BuildCSR(rows, cols, ci, cj, cx, d)
		if err != nil {
			return nil, mapSparseErr(err, "Build")
		}
		return nc, nil
	})
}

// SetElement stores value v at (i, j), replacing any existing entry
// (GrB_Matrix_setElement). In nonblocking mode updates batch lazily.
func (m *Matrix[T]) SetElement(v T, i, j Index) error {
	if err := m.check(); err != nil {
		return err
	}
	ctx, err := m.context()
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.derr != nil {
		return m.derr
	}
	if len(m.pending) > 0 { // settle a possible pending Resize
		if err := m.materializeLocked(); err != nil {
			return err
		}
	}
	if i < 0 || i >= m.csr.Rows || j < 0 || j >= m.csr.Cols {
		return errf(InvalidIndex, "SetElement: (%d,%d) outside %dx%d", i, j, m.csr.Rows, m.csr.Cols)
	}
	m.tuples = append(m.tuples, sparse.Tuple[T]{Row: i, Col: j, Val: v})
	if ctx.Mode() == Blocking {
		return m.materializeLocked()
	}
	return nil
}

// SetElementScalar stores the value held by a GrB_Scalar at (i, j) — the
// Table II variant GrB_Matrix_setElement(GrB_Matrix, GrB_Scalar, ...). An
// empty scalar removes the element, mirroring SuiteSparse semantics for
// the Scalar variant.
func (m *Matrix[T]) SetElementScalar(s *Scalar[T], i, j Index) error {
	if err := m.check(); err != nil {
		return err
	}
	if s == nil {
		return errf(NullPointer, "SetElementScalar: nil scalar")
	}
	v, ok, err := s.ExtractElement()
	if err != nil {
		return err
	}
	if !ok {
		return m.RemoveElement(i, j)
	}
	return m.SetElement(v, i, j)
}

// RemoveElement deletes the entry at (i, j) if present
// (GrB_Matrix_removeElement).
func (m *Matrix[T]) RemoveElement(i, j Index) error {
	if err := m.check(); err != nil {
		return err
	}
	ctx, err := m.context()
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.derr != nil {
		return m.derr
	}
	if len(m.pending) > 0 {
		if err := m.materializeLocked(); err != nil {
			return err
		}
	}
	if i < 0 || i >= m.csr.Rows || j < 0 || j >= m.csr.Cols {
		return errf(InvalidIndex, "RemoveElement: (%d,%d) outside %dx%d", i, j, m.csr.Rows, m.csr.Cols)
	}
	m.tuples = append(m.tuples, sparse.Tuple[T]{Row: i, Col: j, Del: true})
	if ctx.Mode() == Blocking {
		return m.materializeLocked()
	}
	return nil
}

// ExtractElement reads the entry at (i, j) (GrB_Matrix_extractElement).
// ok is false when no entry is stored there — the GrB_NO_VALUE case; the
// paper's §VI explains why the Scalar variant (ExtractElementScalar) makes
// this more uniform.
func (m *Matrix[T]) ExtractElement(i, j Index) (val T, ok bool, err error) {
	var zero T
	if err := m.check(); err != nil {
		return zero, false, err
	}
	if _, err := m.context(); err != nil {
		return zero, false, err
	}
	c, err := m.snapshot()
	if err != nil {
		return zero, false, err
	}
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		return zero, false, errf(InvalidIndex, "ExtractElement: (%d,%d) outside %dx%d", i, j, c.Rows, c.Cols)
	}
	v, ok := c.Get(i, j)
	return v, ok, nil
}

// ExtractElementScalar extracts the (possibly missing) entry at (i, j) into
// a GrB_Scalar — the Table II variant. A missing entry yields an empty
// scalar rather than an error code, which is the uniformity §VI motivates.
func (m *Matrix[T]) ExtractElementScalar(s *Scalar[T], i, j Index) error {
	if s == nil {
		return errf(NullPointer, "ExtractElementScalar: nil scalar")
	}
	if err := s.check(); err != nil {
		return err
	}
	v, ok, err := m.ExtractElement(i, j)
	if err != nil {
		return err
	}
	if !ok {
		return s.Clear()
	}
	return s.SetElement(v)
}

// ExtractTuples returns the coordinates and values of all stored entries in
// row-major order (GrB_Matrix_extractTuples).
func (m *Matrix[T]) ExtractTuples() (I, J []Index, X []T, err error) {
	if err := m.check(); err != nil {
		return nil, nil, nil, err
	}
	if _, err := m.context(); err != nil {
		return nil, nil, nil, err
	}
	c, err := m.snapshot()
	if err != nil {
		return nil, nil, nil, err
	}
	I, J, X = c.Tuples(nil, nil, nil)
	return I, J, X, nil
}

// mapSparseErr translates substrate errors into GraphBLAS execution errors.
// It is the historical name for mapExecErr (harden.go), which now also
// covers the hardening sentinels (budget, cancellation, recovered panics).
func mapSparseErr(err error, op string) *Error { return mapExecErr(err, op) }

package grb

import "testing"

func TestMatrixConstructorValidation(t *testing.T) {
	setMode(t, Blocking)
	if _, err := NewMatrix[int](0, 3); Code(err) != InvalidValue {
		t.Fatalf("zero rows: %v", err)
	}
	if _, err := NewMatrix[int](3, -1); Code(err) != InvalidValue {
		t.Fatalf("negative cols: %v", err)
	}
	m, err := NewMatrix[int](3, 4)
	if err != nil {
		t.Fatal(err)
	}
	nr := ck1(m.Nrows())
	nc := ck1(m.Ncols())
	nv := ck1(m.Nvals())
	if nr != 3 || nc != 4 || nv != 0 {
		t.Fatalf("fresh matrix: %d %d %d", nr, nc, nv)
	}
}

func TestMatrixNilAndUninitialized(t *testing.T) {
	setMode(t, Blocking)
	var nilM *Matrix[int]
	if _, err := nilM.Nvals(); Code(err) != NullPointer {
		t.Fatalf("nil: %v", err)
	}
	var zero Matrix[int]
	if _, err := zero.Nrows(); Code(err) != UninitializedObject {
		t.Fatalf("zero value: %v", err)
	}
	if zero.ErrorString() != "" {
		t.Fatal("uninitialized ErrorString should be empty")
	}
}

func TestMatrixBuildValidation(t *testing.T) {
	setMode(t, Blocking)
	m := ck1(NewMatrix[int](2, 2))
	// unequal slices: API error
	wantCode(t, m.Build([]Index{0}, []Index{0, 1}, []int{1}, nil), InvalidValue)
	// out-of-range coordinate: API error, never deferred
	wantCode(t, m.Build([]Index{2}, []Index{0}, []int{1}, nil), InvalidIndex)
	// successful build
	if err := m.Build([]Index{0, 1}, []Index{1, 0}, []int{5, 6}, nil); err != nil {
		t.Fatal(err)
	}
	// build on a non-empty matrix: OUTPUT_NOT_EMPTY
	wantCode(t, m.Build([]Index{0}, []Index{0}, []int{1}, nil), OutputNotEmpty)
	// after clear it works again
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if err := m.Build([]Index{0}, []Index{0}, []int{1}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDupSemantics covers §IX: dup combines duplicates in input order;
// a nil dup makes duplicates an execution error.
func TestBuildDupSemantics(t *testing.T) {
	for _, mode := range []Mode{Blocking, NonBlocking} {
		t.Run(mode.String(), func(t *testing.T) {
			setMode(t, mode)
			m := ck1(NewMatrix[int](2, 2))
			if err := m.Build([]Index{0, 0, 0}, []Index{0, 0, 0}, []int{1, 2, 3}, Plus[int]); err != nil {
				t.Fatal(err)
			}
			ck(m.Wait(Materialize))
			if v, _ := ck2(m.ExtractElement(0, 0)); v != 6 {
				t.Fatalf("dup sum = %d", v)
			}
			// Minus is order-sensitive: ((1-2)-3) = -4 checks input order.
			m2 := ck1(NewMatrix[int](2, 2))
			if err := m2.Build([]Index{0, 0, 0}, []Index{0, 0, 0}, []int{1, 2, 3}, Minus[int]); err != nil {
				t.Fatal(err)
			}
			if v, _ := ck2(m2.ExtractElement(0, 0)); v != -4 {
				t.Fatalf("ordered dup = %d, want -4", v)
			}
			// nil dup + duplicates: execution error (InvalidValue).
			m3 := ck1(NewMatrix[int](2, 2))
			err := m3.Build([]Index{0, 0}, []Index{0, 0}, []int{1, 2}, nil)
			if mode == Blocking {
				wantCode(t, err, InvalidValue)
			} else {
				// In nonblocking mode the error may be deferred; it must be
				// reported by the materializing wait.
				if err == nil {
					err = m3.Wait(Materialize)
				}
				wantCode(t, err, InvalidValue)
			}
		})
	}
}

func TestSetGetRemoveElement(t *testing.T) {
	for _, mode := range []Mode{Blocking, NonBlocking} {
		t.Run(mode.String(), func(t *testing.T) {
			setMode(t, mode)
			m := ck1(NewMatrix[float64](3, 3))
			wantCode(t, m.SetElement(1, 3, 0), InvalidIndex)
			wantCode(t, m.SetElement(1, 0, -1), InvalidIndex)
			if err := m.SetElement(1.5, 1, 2); err != nil {
				t.Fatal(err)
			}
			if err := m.SetElement(2.5, 1, 2); err != nil { // overwrite
				t.Fatal(err)
			}
			v, ok, err := m.ExtractElement(1, 2)
			if err != nil || !ok || v != 2.5 {
				t.Fatalf("extract = %v,%v,%v", v, ok, err)
			}
			if _, ok := ck2(m.ExtractElement(0, 0)); ok {
				t.Fatal("phantom entry")
			}
			if _, _, err := m.ExtractElement(5, 0); Code(err) != InvalidIndex {
				t.Fatalf("bad extract index: %v", err)
			}
			if err := m.RemoveElement(1, 2); err != nil {
				t.Fatal(err)
			}
			if _, ok := ck2(m.ExtractElement(1, 2)); ok {
				t.Fatal("entry not removed")
			}
			// removing a missing entry is fine
			if err := m.RemoveElement(0, 0); err != nil {
				t.Fatal(err)
			}
			wantCode(t, m.RemoveElement(9, 9), InvalidIndex)
		})
	}
}

func TestMatrixDupIndependent(t *testing.T) {
	setMode(t, NonBlocking)
	m := mustMatrix(t, 2, 2, []Index{0}, []Index{1}, []int{7})
	d, err := m.Dup()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetElement(9, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(d.ExtractElement(0, 1)); v != 7 {
		t.Fatalf("dup sees %d, want 7 (snapshot)", v)
	}
	if v, _ := ck2(m.ExtractElement(0, 1)); v != 9 {
		t.Fatalf("original = %d", v)
	}
}

func TestMatrixResize(t *testing.T) {
	setMode(t, NonBlocking)
	m := mustMatrix(t, 3, 3, []Index{0, 2}, []Index{0, 2}, []int{1, 9})
	if err := m.Resize(2, 2); err != nil {
		t.Fatal(err)
	}
	nr := ck1(m.Nrows())
	nc := ck1(m.Ncols())
	nv := ck1(m.Nvals())
	if nr != 2 || nc != 2 || nv != 1 {
		t.Fatalf("after shrink: %dx%d nvals=%d", nr, nc, nv)
	}
	// setElement after pending resize uses the new bounds
	wantCode(t, m.SetElement(1, 2, 2), InvalidIndex)
	if err := m.Resize(4, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.SetElement(5, 3, 3); err != nil {
		t.Fatal(err)
	}
	wantCode(t, m.Resize(0, 4), InvalidValue)
}

func TestMatrixExtractTuplesOrder(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 3, 3,
		[]Index{2, 0, 1, 0}, []Index{0, 2, 1, 0}, []int{4, 2, 3, 1})
	matrixEquals(t, m, []Index{0, 0, 1, 2}, []Index{0, 2, 1, 0}, []int{1, 2, 3, 4})
}

func TestMatrixClearResetsError(t *testing.T) {
	setMode(t, NonBlocking)
	m := ck1(NewMatrix[int](2, 2))
	ck(m.Build([]Index{0, 0}, []Index{0, 0}, []int{1, 2}, nil)) // deferred dup error
	err := m.Wait(Materialize)
	wantCode(t, err, InvalidValue)
	if m.ErrorString() == "" {
		t.Fatal("error string should be set")
	}
	// The parked error is sticky for ordinary methods...
	wantCode(t, m.SetElement(1, 0, 0), InvalidValue)
	// ...until Clear resets the object.
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if m.ErrorString() != "" {
		t.Fatal("error string should be cleared")
	}
	if err := m.SetElement(1, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixFree(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 2, 2, []Index{0}, []Index{0}, []int{1})
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Nvals(); Code(err) != UninitializedObject {
		t.Fatalf("after free: %v", err)
	}
	if err := m.Free(); Code(err) != UninitializedObject {
		t.Fatalf("double free: %v", err)
	}
}

func TestMatrixDiag(t *testing.T) {
	setMode(t, Blocking)
	v := mustVector(t, 3, []Index{0, 2}, []int{5, 7})
	d, err := MatrixDiag(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	nr := ck1(d.Nrows())
	if nr != 3 {
		t.Fatalf("diag dim = %d", nr)
	}
	if x, ok := ck2(d.ExtractElement(2, 2)); !ok || x != 7 {
		t.Fatalf("diag(2,2) = %d,%v", x, ok)
	}
	up, err := MatrixDiag(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	nr = ck1(up.Nrows())
	if nr != 5 {
		t.Fatalf("superdiag dim = %d", nr)
	}
	if x, ok := ck2(up.ExtractElement(0, 2)); !ok || x != 5 {
		t.Fatalf("superdiag(0,2) = %d,%v", x, ok)
	}
}

func TestVectorBasics(t *testing.T) {
	setMode(t, Blocking)
	if _, err := NewVector[int](0); Code(err) != InvalidValue {
		t.Fatalf("zero size: %v", err)
	}
	v := ck1(NewVector[int](5))
	n := ck1(v.Size())
	if n != 5 {
		t.Fatalf("size = %d", n)
	}
	wantCode(t, v.SetElement(1, 5), InvalidIndex)
	if err := v.SetElement(3, 2); err != nil {
		t.Fatal(err)
	}
	x, ok := ck2(v.ExtractElement(2))
	if !ok || x != 3 {
		t.Fatalf("v(2)=%d,%v", x, ok)
	}
	if err := v.RemoveElement(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck2(v.ExtractElement(2)); ok {
		t.Fatal("not removed")
	}
	wantCode(t, v.Build([]Index{0}, []int{1, 2}, nil), InvalidValue)
	if err := v.Build([]Index{1, 0}, []int{10, 20}, nil); err != nil {
		t.Fatal(err)
	}
	wantCode(t, v.Build([]Index{0}, []int{1}, nil), OutputNotEmpty)
	vectorEquals(t, v, []Index{0, 1}, []int{20, 10})
	d := ck1(v.Dup())
	ck(v.Clear())
	nv := ck1(v.Nvals())
	dn := ck1(d.Nvals())
	if nv != 0 || dn != 2 {
		t.Fatalf("clear/dup: %d %d", nv, dn)
	}
	if err := v.Resize(2); err != nil {
		t.Fatal(err)
	}
	n = ck1(v.Size())
	if n != 2 {
		t.Fatalf("resized = %d", n)
	}
	if err := v.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Size(); Code(err) != UninitializedObject {
		t.Fatalf("after free: %v", err)
	}
}

func TestVectorBuildDupNil(t *testing.T) {
	setMode(t, NonBlocking)
	v := ck1(NewVector[int](3))
	ck(v.Build([]Index{1, 1}, []int{1, 2}, nil))
	wantCode(t, v.Wait(Materialize), InvalidValue)
}

// TestScalarElementVariants covers the Table II setElement/extractElement
// GrB_Scalar variants on both matrices and vectors, including the
// empty-scalar paths.
func TestScalarElementVariants(t *testing.T) {
	setMode(t, Blocking)
	m := mustMatrix(t, 2, 2, []Index{0}, []Index{0}, []int{7})
	s := ck1(NewScalar[int]())

	// extract present entry -> full scalar
	if err := m.ExtractElementScalar(s, 0, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := ck2(s.ExtractElement()); !ok || v != 7 {
		t.Fatalf("scalar = %v,%v", v, ok)
	}
	// extract missing entry -> empty scalar (no NO_VALUE error, §VI)
	if err := m.ExtractElementScalar(s, 1, 1); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(s.Nvals()); nv != 0 {
		t.Fatal("scalar should be emptied")
	}
	// setElement from a full scalar
	full := ck1(ScalarOf(9))
	if err := m.SetElementScalar(full, 1, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(m.ExtractElement(1, 1)); v != 9 {
		t.Fatalf("m(1,1)=%d", v)
	}
	// setElement from an empty scalar removes
	if err := m.SetElementScalar(s, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck2(m.ExtractElement(1, 1)); ok {
		t.Fatal("empty-scalar set should remove")
	}

	// vector variants
	v := mustVector(t, 3, []Index{1}, []int{4})
	if err := v.ExtractElementScalar(s, 1); err != nil {
		t.Fatal(err)
	}
	if x, ok := ck2(s.ExtractElement()); !ok || x != 4 {
		t.Fatalf("vec scalar = %v,%v", x, ok)
	}
	if err := v.SetElementScalar(full, 0); err != nil {
		t.Fatal(err)
	}
	if x, _ := ck2(v.ExtractElement(0)); x != 9 {
		t.Fatalf("v(0)=%d", x)
	}
	empty := ck1(NewScalar[int]())
	if err := v.SetElementScalar(empty, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck2(v.ExtractElement(0)); ok {
		t.Fatal("empty-scalar set should remove")
	}
}

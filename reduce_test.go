package grb

import "testing"

func TestMatrixReduceToVector(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 3, 3,
		[]Index{0, 0, 2}, []Index{0, 2, 1}, []int{1, 2, 5})
	w := ck1(NewVector[int](3))
	if err := MatrixReduceToVector(w, nil, nil, PlusMonoid[int](), a, nil); err != nil {
		t.Fatal(err)
	}
	// row sums: row 0 -> 3, row 1 -> no entry, row 2 -> 5
	vectorEquals(t, w, []Index{0, 2}, []int{3, 5})
	// column reduce via Transpose0
	wc := ck1(NewVector[int](3))
	if err := MatrixReduceToVector(wc, nil, nil, PlusMonoid[int](), a, DescT0); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, wc, []Index{0, 1, 2}, []int{1, 5, 2})
	// min monoid row reduce
	wm := ck1(NewVector[int](3))
	if err := MatrixReduceToVector(wm, nil, nil, MinMonoid[int](), a, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, wm, []Index{0, 2}, []int{1, 5})
	// masked + accumulated
	w2 := mustVector(t, 3, []Index{0, 1}, []int{10, 20})
	mask := mustVector(t, 3, []Index{0}, []bool{true})
	if err := MatrixReduceToVector(w2, mask, Plus[int], PlusMonoid[int](), a, nil); err != nil {
		t.Fatal(err)
	}
	// z = {0:13, 1:20, 2:5}; mask admits only 0; merge keeps w2(1)=20
	vectorEquals(t, w2, []Index{0, 1}, []int{13, 20})
	// wrong output size
	bad := ck1(NewVector[int](2))
	wantCode(t, MatrixReduceToVector(bad, nil, nil, PlusMonoid[int](), a, nil), DimensionMismatch)
	wantCode(t, MatrixReduceToVector(w, nil, nil, Monoid[int]{}, a, nil), NullPointer)
}

// TestTableII_ReduceScalarSemantics covers the §VI behavioural contrast:
// the 2.0 scalar-output reduce yields an EMPTY scalar for an empty object,
// whereas the 1.X typed reduce yields the monoid identity.
func TestTableII_ReduceScalarSemantics(t *testing.T) {
	setMode(t, Blocking)
	empty := ck1(NewMatrix[int](3, 3))
	s := ck1(ScalarOf(777)) // pre-existing value must be overwritten/cleared

	if err := MatrixReduceToScalar(s, nil, PlusMonoid[int](), empty, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(s.Nvals()); nv != 0 {
		t.Fatalf("reduce(empty) scalar nvals = %d, want 0", nv)
	}
	old, err := MatrixReduce(PlusMonoid[int](), empty)
	if err != nil || old != 0 {
		t.Fatalf("1.X reduce(empty) = %d, %v (want identity 0)", old, err)
	}
	oldMin := ck1(MatrixReduce(MinMonoid[int](), empty))
	if oldMin != MinMonoid[int]().Identity {
		t.Fatalf("1.X min reduce(empty) = %d", oldMin)
	}

	// non-empty
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{1, 0}, []int{4, 6})
	if err := MatrixReduceToScalar(s, nil, PlusMonoid[int](), a, nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := ck2(s.ExtractElement()); !ok || v != 10 {
		t.Fatalf("reduce = %v,%v", v, ok)
	}

	// accumulator semantics: s = accum(s, t)
	if err := MatrixReduceToScalar(s, Plus[int], PlusMonoid[int](), a, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(s.ExtractElement()); v != 20 {
		t.Fatalf("accum reduce = %v", v)
	}
	// empty reduction with accum leaves s unchanged
	if err := MatrixReduceToScalar(s, Plus[int], PlusMonoid[int](), empty, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(s.ExtractElement()); v != 20 {
		t.Fatalf("empty accum reduce changed s: %v", v)
	}
	// empty s with accum takes t
	s2 := ck1(NewScalar[int]())
	if err := MatrixReduceToScalar(s2, Plus[int], PlusMonoid[int](), a, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(s2.ExtractElement()); v != 10 {
		t.Fatalf("empty-s accum reduce = %v", v)
	}
}

// TestTableII_ReduceBinaryOp covers the new reduce-with-BinaryOp variants —
// legal in 2.0 precisely because an empty result is representable.
func TestTableII_ReduceBinaryOp(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{3, 9})
	s := ck1(NewScalar[int]())
	if err := MatrixReduceToScalarBinaryOp(s, nil, Max[int], a, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(s.ExtractElement()); v != 9 {
		t.Fatalf("binop reduce = %v", v)
	}
	empty := ck1(NewMatrix[int](2, 2))
	if err := MatrixReduceToScalarBinaryOp(s, nil, Max[int], empty, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(s.Nvals()); nv != 0 {
		t.Fatal("binop reduce of empty should clear")
	}
	u := mustVector(t, 4, []Index{1, 3}, []int{5, 2})
	if err := VectorReduceToScalarBinaryOp(s, nil, Min[int], u, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(s.ExtractElement()); v != 2 {
		t.Fatalf("vector binop reduce = %v", v)
	}
	wantCode(t, MatrixReduceToScalarBinaryOp(s, nil, nil, a, nil), NullPointer)
	wantCode(t, VectorReduceToScalarBinaryOp(s, nil, nil, u, nil), NullPointer)
}

func TestVectorReduceVariants(t *testing.T) {
	setMode(t, Blocking)
	u := mustVector(t, 5, []Index{0, 2, 4}, []int{1, 2, 4})
	s := ck1(NewScalar[int]())
	if err := VectorReduceToScalar(s, nil, PlusMonoid[int](), u, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(s.ExtractElement()); v != 7 {
		t.Fatalf("reduce = %v", v)
	}
	ev := ck1(NewVector[int](3))
	if err := VectorReduceToScalar(s, nil, PlusMonoid[int](), ev, nil); err != nil {
		t.Fatal(err)
	}
	if nv := ck1(s.Nvals()); nv != 0 {
		t.Fatal("empty vector reduce should clear")
	}
	x, err := VectorReduce(PlusMonoid[int](), u)
	if err != nil || x != 7 {
		t.Fatalf("typed reduce = %v, %v", x, err)
	}
	xe := ck1(VectorReduce(TimesMonoid[int](), ev))
	if xe != 1 {
		t.Fatalf("typed reduce empty = %v, want identity 1", xe)
	}
}

package grb

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/grblas/grb/internal/faults"
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/internal/sparse"
)

// Mode selects the execution mode of a context (GrB_Mode). In Blocking mode
// every method call completes before returning. In NonBlocking mode method
// calls on an object may be deferred and executed lazily as a sequence
// (§III of the paper); completion is forced by Wait, or implicitly by any
// method that reads the object.
type Mode int

const (
	// NonBlocking allows deferred execution of sequences (GrB_NONBLOCKING).
	NonBlocking Mode = 0
	// Blocking forces every call to complete before returning (GrB_BLOCKING).
	Blocking Mode = 1
)

// String returns the spec name of the mode.
func (m Mode) String() string {
	switch m {
	case NonBlocking:
		return "GrB_NONBLOCKING"
	case Blocking:
		return "GrB_BLOCKING"
	}
	return "GrB_Mode(?)"
}

// Context is the GraphBLAS 2.0 execution context (GrB_Context, §IV of the
// paper). A context carries an execution mode and resource information —
// here, a thread budget — and contexts nest hierarchically: the effective
// parallelism of an operation is bounded by every ancestor's budget. Every
// Matrix and Vector belongs to a context (the top-level context by default),
// and all objects participating in one operation must share a context, which
// lets the implementation manage placement without exposing low-level
// details.
//
// The C API passes implementation-defined execution information through a
// void* argument; the Go binding uses functional options (WithThreads,
// WithChunk) instead.
type Context struct {
	mode    Mode
	parent  *Context
	threads int // 0 = inherit from parent chain
	chunk   int // minimum work per thread before parallelizing
	freed   bool
	mu      sync.Mutex

	// Execution-hardening resource controls (§IV resource information, §V
	// execution errors). budget and deadline are immutable after NewContext;
	// canceled/cancelable use atomics only, so the abort probe the kernels
	// poll never takes a lock (and never violates the lock-ordering rule that
	// nothing lock-acquiring runs under an object mutex).
	budget     *sparse.Budget
	cancelable bool
	canceled   atomic.Bool
	deadline   time.Time
}

// ContextOption configures a new context (the implementation-defined
// `void *exec` argument of GrB_Context_new).
type ContextOption func(*Context)

// WithThreads bounds the number of threads operations in this context may
// use. Zero means inherit the parent's budget.
func WithThreads(n int) ContextOption {
	return func(c *Context) { c.threads = n }
}

// WithChunk sets the minimum number of row-units of work per thread before
// an operation parallelizes. Smaller values parallelize more eagerly.
func WithChunk(n int) ContextOption {
	return func(c *Context) { c.chunk = n }
}

// WithMemoryLimit bounds the kernel scratch and result memory, in bytes,
// that operations in this context may hold live at once. Exceeding the
// budget degrades gracefully first — fewer worker accumulators, hash SPA
// instead of dense, pull instead of push, uncached transposes — and only
// when the cheapest route still does not fit does the operation park
// GrB_OUT_OF_MEMORY (§V). Zero or negative means unlimited. The limit is the
// context's own; it is not combined with ancestors' limits — the nearest
// limited context up the chain governs an operation. Usage, however, rolls
// up: a budgeted descendant's reservations are mirrored into the nearest
// budgeted ancestor's MemoryUsed aggregate (observation only, never
// enforcement) until the descendant is freed.
func WithMemoryLimit(bytes int64) ContextOption {
	return func(c *Context) { c.budget = sparse.NewBudget(bytes) }
}

// WithCancel makes the context cancelable: Context.Cancel aborts in-flight
// and future operations in it, parking the Canceled execution error at the
// next range-granularity checkpoint inside the kernels.
func WithCancel() ContextOption {
	return func(c *Context) { c.cancelable = true }
}

// WithDeadline aborts operations in this context that are still running
// after t, parking the Canceled execution error. The deadline is checked at
// range granularity inside the kernels; it is immutable after NewContext.
func WithDeadline(t time.Time) ContextOption {
	return func(c *Context) { c.deadline = t }
}

// global holds the top-level context created by Init (GrB_init).
var global struct {
	mu          sync.Mutex
	ctx         *Context
	initialized bool
}

// Init initializes the GraphBLAS library and creates the top-level context
// with the given mode (GrB_init). Calling Init twice without an intervening
// Finalize is an API error.
func Init(mode Mode) error {
	if mode != Blocking && mode != NonBlocking {
		return errf(InvalidValue, "Init: invalid mode %d", int(mode))
	}
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.initialized {
		return errf(InvalidValue, "Init: already initialized")
	}
	// The top-level context carries no explicit budget (0): children may
	// set any budget, and the GOMAXPROCS fallback applies only when no
	// context in the chain declares one.
	global.ctx = &Context{mode: mode, threads: 0, chunk: 4096}
	global.initialized = true
	// GRB_TRACE=path starts a persistent trace session on first Init; the
	// session spans Init/Finalize cycles (Finalize flushes, never ends it),
	// so a test binary cycling the library still produces one cumulative
	// Chrome-trace file.
	if path := os.Getenv("GRB_TRACE"); path != "" && !obsv.Tracing() {
		if err := obsv.TraceToFile(path); err != nil {
			global.ctx = nil
			global.initialized = false
			return errf(InvalidValue, "Init: GRB_TRACE=%s: %v", path, err)
		}
	}
	// GRB_FAULTS arms the deterministic fault-injection plan (chaos testing
	// without recompilation); see internal/faults.ParseRules for the grammar.
	if spec := os.Getenv("GRB_FAULTS"); spec != "" {
		if err := faults.ArmFromSpec(spec); err != nil {
			global.ctx = nil
			global.initialized = false
			return errf(InvalidValue, "Init: GRB_FAULTS=%s: %v", spec, err)
		}
	}
	return nil
}

// Finalize shuts the library down and frees all Context objects
// (GrB_finalize). GraphBLAS objects must not be used afterwards.
func Finalize() error {
	global.mu.Lock()
	defer global.mu.Unlock()
	if !global.initialized {
		return errf(UninitializedObject, "Finalize: not initialized")
	}
	global.ctx = nil
	global.initialized = false
	// Keep a GRB_TRACE file valid at every shutdown: rewrite it with the
	// cumulative buffer. Writer sessions (TraceTo) are unaffected.
	if err := obsv.FlushTrace(); err != nil && err != obsv.ErrNotTracing {
		return errf(InvalidValue, "Finalize: trace flush: %v", err)
	}
	return nil
}

// initialized reports library state; used by every public method.
func initializedContext() (*Context, error) {
	global.mu.Lock()
	defer global.mu.Unlock()
	if !global.initialized {
		return nil, errf(UninitializedObject, "GraphBLAS not initialized: call grb.Init first")
	}
	return global.ctx, nil
}

// GlobalContext returns the top-level context created by Init.
func GlobalContext() (*Context, error) {
	return initializedContext()
}

// NewContext creates a context nested within parent (GrB_Context_new). A
// nil parent nests within the top-level context (the C API's GrB_NULL).
func NewContext(mode Mode, parent *Context, opts ...ContextOption) (*Context, error) {
	top, err := initializedContext()
	if err != nil {
		return nil, err
	}
	if mode != Blocking && mode != NonBlocking {
		return nil, errf(InvalidValue, "NewContext: invalid mode %d", int(mode))
	}
	if parent == nil {
		parent = top
	}
	if parent.isFreed() {
		return nil, errf(UninitializedObject, "NewContext: parent context has been freed")
	}
	c := &Context{mode: mode, parent: parent}
	for _, o := range opts {
		o(c)
	}
	if c.threads < 0 {
		return nil, errf(InvalidValue, "NewContext: negative thread budget")
	}
	// Rollup wiring: a budgeted child mirrors its reservations into the
	// nearest budgeted ancestor, so MemoryUsed on an interior context is a
	// live aggregate over its subtree — the serving governor's admission
	// signal. Enforcement is unchanged: the nearest limit still governs.
	if c.budget != nil && parent != nil {
		c.budget.SetParent(parent.memBudget())
	}
	return c, nil
}

// Free releases the context's resources (GrB_free). After Free the context
// behaves as an uninitialized object.
func (c *Context) Free() error {
	if c == nil {
		return errf(NullPointer, "Context.Free: nil context")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.freed {
		return errf(UninitializedObject, "Context.Free: already freed")
	}
	c.freed = true
	// Leave the ancestors' aggregates: any residual (persistent) reservations
	// this context still holds are subtracted from the rollup, so a finished
	// request's cached artifacts cannot inflate a long-lived governor context.
	c.budget.Detach()
	return nil
}

func (c *Context) isFreed() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freed
}

// Cancel aborts operations running in this context (and its descendants):
// kernels observe the flag at their next range-granularity checkpoint and
// park the Canceled execution error on the output object (§V deferred
// reporting — Wait(Materialize) or the next method call surfaces it). The
// context must have been created with WithCancel. Cancel is idempotent and
// safe to call from any goroutine, including while a drain is in flight.
func (c *Context) Cancel() error {
	if c == nil {
		return errf(NullPointer, "Context.Cancel: nil context")
	}
	if !c.cancelable {
		return errf(InvalidValue, "Context.Cancel: context not created with WithCancel")
	}
	c.canceled.Store(true)
	return nil
}

// Canceled reports whether Cancel has been called on this context or any
// ancestor, or a deadline along the chain has expired.
func (c *Context) Canceled() bool { return c.abortErr() != nil }

// abortErr is the kernels' cancellation probe: non-nil when this context or
// any ancestor was canceled or ran past its deadline. Atomics and immutable
// fields only — it runs inside kernels, under object locks, at range
// granularity.
func (c *Context) abortErr() error {
	for p := c; p != nil; p = p.parent {
		if p.canceled.Load() {
			return sparse.ErrCanceled
		}
		if !p.deadline.IsZero() && time.Now().After(p.deadline) {
			return sparse.ErrCanceled
		}
	}
	return nil
}

// memBudget returns the nearest memory budget up the context chain (nil when
// no context declares one).
func (c *Context) memBudget() *sparse.Budget {
	for p := c; p != nil; p = p.parent {
		if p.budget != nil {
			return p.budget
		}
	}
	return nil
}

// MemoryLimit returns the effective memory limit in bytes (the nearest
// WithMemoryLimit up the chain), or 0 when unlimited.
func (c *Context) MemoryLimit() int64 { return c.memBudget().Limit() }

// MemoryUsed returns the bytes currently reserved against the effective
// memory budget (0 when unlimited). Because budgeted descendants mirror
// their reservations into the nearest budgeted ancestor, this is a live
// aggregate over the context's subtree: a server that parents every request
// context under one budgeted "governor" context reads total in-flight
// memory here with a single atomic load.
func (c *Context) MemoryUsed() int64 { return c.memBudget().Used() }

// MemoryPeak returns the high-water mark of MemoryUsed over the effective
// budget's lifetime (0 when unlimited) — the per-request signal the serving
// layer's admission estimator learns from.
func (c *Context) MemoryPeak() int64 { return c.memBudget().Peak() }

// needsAbortProbe reports whether any context in the chain can cancel.
func (c *Context) needsAbortProbe() bool {
	for p := c; p != nil; p = p.parent {
		if p.cancelable || !p.deadline.IsZero() {
			return true
		}
	}
	return false
}

// exec builds the hardened execution environment for one drained operation:
// the already-resolved thread count, a budget transaction (closed by the
// caller via Exec.Close when the operation completes), and the cancellation
// probe. Called at drain time, inside the sequence step, so budget state and
// cancellation reflect execution order rather than enqueue order.
func (c *Context) exec(threads int) sparse.Exec {
	e := sparse.Exec{Threads: threads}
	if b := c.memBudget(); b != nil {
		e.Tx = b.Tx()
	}
	if c.needsAbortProbe() {
		e.Cancel = c.abortErr
	}
	return e
}

// Mode returns the context's execution mode.
func (c *Context) Mode() Mode {
	if c == nil {
		return NonBlocking
	}
	return c.mode
}

// Parent returns the enclosing context (nil for the top-level context).
func (c *Context) Parent() *Context { return c.parent }

// Threads returns the effective thread budget: the minimum declared budget
// along the chain from this context to the root (contexts with budget 0
// inherit). This is how hierarchical nesting bounds parallelism, §IV.
func (c *Context) Threads() int {
	eff := 0
	for p := c; p != nil; p = p.parent {
		if p.threads > 0 && (eff == 0 || p.threads < eff) {
			eff = p.threads
		}
	}
	if eff == 0 {
		eff = runtime.GOMAXPROCS(0)
	}
	return eff
}

// Chunk returns the effective minimum-work-per-thread granule: the nearest
// explicitly set value up the chain, defaulting to 4096.
func (c *Context) Chunk() int {
	for p := c; p != nil; p = p.parent {
		if p.chunk > 0 {
			return p.chunk
		}
	}
	return 4096
}

// threadsFor returns the thread count to use for an operation touching
// roughly `work` units, respecting the chunk granule so tiny operations run
// serially.
func (c *Context) threadsFor(work int) int {
	t := c.Threads()
	ch := c.Chunk()
	if ch > 0 && work/ch+1 < t {
		t = work/ch + 1
	}
	if t < 1 {
		t = 1
	}
	return t
}

// resolveCtx maps an object's context pointer (possibly nil) to the
// effective context, requiring the library to be initialized.
func resolveCtx(c *Context) (*Context, error) {
	top, err := initializedContext()
	if err != nil {
		return nil, err
	}
	if c == nil {
		return top, nil
	}
	if c.isFreed() {
		return nil, errf(UninitializedObject, "operation on freed context")
	}
	return c, nil
}

// sameContext verifies that the operands' contexts are compatible and
// returns the context the operation executes in. §IV requires that "all the
// GraphBLAS matrices and vectors in a GraphBLAS method share a context";
// this implementation reads the rule through the paper's own hierarchical
// nesting model: operands may additionally belong to *nested* contexts —
// every pair related by ancestry in the context tree — and the operation
// executes in the deepest one. A per-query context derived from the shared
// top-level context can therefore operate on library-owned objects (shared
// graph snapshots) while its own deadline, cancellation flag, and memory
// budget govern the kernels — the multi-tenant serving shape. Contexts on
// different branches of the tree remain an InvalidValue error, exactly as
// before.
func sameContext(ctxs ...*Context) (*Context, error) {
	top, err := initializedContext()
	if err != nil {
		return nil, err
	}
	eff := top
	seen := false
	for _, c := range ctxs {
		if c == nil {
			c = top
		}
		if c.isFreed() {
			return nil, errf(UninitializedObject, "operand belongs to a freed context")
		}
		switch {
		case !seen:
			eff = c
			seen = true
		case c == eff || isAncestor(c, eff):
			// eff already governs: c is eff itself or one of its ancestors.
		case isAncestor(eff, c):
			eff = c // c nests inside eff: the deeper context governs
		default:
			return nil, errf(InvalidValue, "operands belong to different execution contexts")
		}
	}
	return eff, nil
}

// isAncestor reports whether a is a proper ancestor of b in the context
// tree. Contexts created with a nil parent nest under the top-level context,
// so every live chain terminates there.
func isAncestor(a, b *Context) bool {
	for p := b.parent; p != nil; p = p.parent {
		if p == a {
			return true
		}
	}
	return false
}

package grb

import (
	"os"
	"runtime"
	"sync"

	"github.com/grblas/grb/internal/obsv"
)

// Mode selects the execution mode of a context (GrB_Mode). In Blocking mode
// every method call completes before returning. In NonBlocking mode method
// calls on an object may be deferred and executed lazily as a sequence
// (§III of the paper); completion is forced by Wait, or implicitly by any
// method that reads the object.
type Mode int

const (
	// NonBlocking allows deferred execution of sequences (GrB_NONBLOCKING).
	NonBlocking Mode = 0
	// Blocking forces every call to complete before returning (GrB_BLOCKING).
	Blocking Mode = 1
)

// String returns the spec name of the mode.
func (m Mode) String() string {
	switch m {
	case NonBlocking:
		return "GrB_NONBLOCKING"
	case Blocking:
		return "GrB_BLOCKING"
	}
	return "GrB_Mode(?)"
}

// Context is the GraphBLAS 2.0 execution context (GrB_Context, §IV of the
// paper). A context carries an execution mode and resource information —
// here, a thread budget — and contexts nest hierarchically: the effective
// parallelism of an operation is bounded by every ancestor's budget. Every
// Matrix and Vector belongs to a context (the top-level context by default),
// and all objects participating in one operation must share a context, which
// lets the implementation manage placement without exposing low-level
// details.
//
// The C API passes implementation-defined execution information through a
// void* argument; the Go binding uses functional options (WithThreads,
// WithChunk) instead.
type Context struct {
	mode    Mode
	parent  *Context
	threads int // 0 = inherit from parent chain
	chunk   int // minimum work per thread before parallelizing
	freed   bool
	mu      sync.Mutex
}

// ContextOption configures a new context (the implementation-defined
// `void *exec` argument of GrB_Context_new).
type ContextOption func(*Context)

// WithThreads bounds the number of threads operations in this context may
// use. Zero means inherit the parent's budget.
func WithThreads(n int) ContextOption {
	return func(c *Context) { c.threads = n }
}

// WithChunk sets the minimum number of row-units of work per thread before
// an operation parallelizes. Smaller values parallelize more eagerly.
func WithChunk(n int) ContextOption {
	return func(c *Context) { c.chunk = n }
}

// global holds the top-level context created by Init (GrB_init).
var global struct {
	mu          sync.Mutex
	ctx         *Context
	initialized bool
}

// Init initializes the GraphBLAS library and creates the top-level context
// with the given mode (GrB_init). Calling Init twice without an intervening
// Finalize is an API error.
func Init(mode Mode) error {
	if mode != Blocking && mode != NonBlocking {
		return errf(InvalidValue, "Init: invalid mode %d", int(mode))
	}
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.initialized {
		return errf(InvalidValue, "Init: already initialized")
	}
	// The top-level context carries no explicit budget (0): children may
	// set any budget, and the GOMAXPROCS fallback applies only when no
	// context in the chain declares one.
	global.ctx = &Context{mode: mode, threads: 0, chunk: 4096}
	global.initialized = true
	// GRB_TRACE=path starts a persistent trace session on first Init; the
	// session spans Init/Finalize cycles (Finalize flushes, never ends it),
	// so a test binary cycling the library still produces one cumulative
	// Chrome-trace file.
	if path := os.Getenv("GRB_TRACE"); path != "" && !obsv.Tracing() {
		if err := obsv.TraceToFile(path); err != nil {
			global.ctx = nil
			global.initialized = false
			return errf(InvalidValue, "Init: GRB_TRACE=%s: %v", path, err)
		}
	}
	return nil
}

// Finalize shuts the library down and frees all Context objects
// (GrB_finalize). GraphBLAS objects must not be used afterwards.
func Finalize() error {
	global.mu.Lock()
	defer global.mu.Unlock()
	if !global.initialized {
		return errf(UninitializedObject, "Finalize: not initialized")
	}
	global.ctx = nil
	global.initialized = false
	// Keep a GRB_TRACE file valid at every shutdown: rewrite it with the
	// cumulative buffer. Writer sessions (TraceTo) are unaffected.
	if err := obsv.FlushTrace(); err != nil && err != obsv.ErrNotTracing {
		return errf(InvalidValue, "Finalize: trace flush: %v", err)
	}
	return nil
}

// initialized reports library state; used by every public method.
func initializedContext() (*Context, error) {
	global.mu.Lock()
	defer global.mu.Unlock()
	if !global.initialized {
		return nil, errf(UninitializedObject, "GraphBLAS not initialized: call grb.Init first")
	}
	return global.ctx, nil
}

// GlobalContext returns the top-level context created by Init.
func GlobalContext() (*Context, error) {
	return initializedContext()
}

// NewContext creates a context nested within parent (GrB_Context_new). A
// nil parent nests within the top-level context (the C API's GrB_NULL).
func NewContext(mode Mode, parent *Context, opts ...ContextOption) (*Context, error) {
	top, err := initializedContext()
	if err != nil {
		return nil, err
	}
	if mode != Blocking && mode != NonBlocking {
		return nil, errf(InvalidValue, "NewContext: invalid mode %d", int(mode))
	}
	if parent == nil {
		parent = top
	}
	if parent.isFreed() {
		return nil, errf(UninitializedObject, "NewContext: parent context has been freed")
	}
	c := &Context{mode: mode, parent: parent}
	for _, o := range opts {
		o(c)
	}
	if c.threads < 0 {
		return nil, errf(InvalidValue, "NewContext: negative thread budget")
	}
	return c, nil
}

// Free releases the context's resources (GrB_free). After Free the context
// behaves as an uninitialized object.
func (c *Context) Free() error {
	if c == nil {
		return errf(NullPointer, "Context.Free: nil context")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.freed {
		return errf(UninitializedObject, "Context.Free: already freed")
	}
	c.freed = true
	return nil
}

func (c *Context) isFreed() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freed
}

// Mode returns the context's execution mode.
func (c *Context) Mode() Mode {
	if c == nil {
		return NonBlocking
	}
	return c.mode
}

// Parent returns the enclosing context (nil for the top-level context).
func (c *Context) Parent() *Context { return c.parent }

// Threads returns the effective thread budget: the minimum declared budget
// along the chain from this context to the root (contexts with budget 0
// inherit). This is how hierarchical nesting bounds parallelism, §IV.
func (c *Context) Threads() int {
	eff := 0
	for p := c; p != nil; p = p.parent {
		if p.threads > 0 && (eff == 0 || p.threads < eff) {
			eff = p.threads
		}
	}
	if eff == 0 {
		eff = runtime.GOMAXPROCS(0)
	}
	return eff
}

// Chunk returns the effective minimum-work-per-thread granule: the nearest
// explicitly set value up the chain, defaulting to 4096.
func (c *Context) Chunk() int {
	for p := c; p != nil; p = p.parent {
		if p.chunk > 0 {
			return p.chunk
		}
	}
	return 4096
}

// threadsFor returns the thread count to use for an operation touching
// roughly `work` units, respecting the chunk granule so tiny operations run
// serially.
func (c *Context) threadsFor(work int) int {
	t := c.Threads()
	ch := c.Chunk()
	if ch > 0 && work/ch+1 < t {
		t = work/ch + 1
	}
	if t < 1 {
		t = 1
	}
	return t
}

// resolveCtx maps an object's context pointer (possibly nil) to the
// effective context, requiring the library to be initialized.
func resolveCtx(c *Context) (*Context, error) {
	top, err := initializedContext()
	if err != nil {
		return nil, err
	}
	if c == nil {
		return top, nil
	}
	if c.isFreed() {
		return nil, errf(UninitializedObject, "operation on freed context")
	}
	return c, nil
}

// sameContext verifies that all non-nil contexts among the operands resolve
// to the same context, as §IV requires ("all the GraphBLAS matrices and
// vectors in a GraphBLAS method share a context"), and returns it.
func sameContext(ctxs ...*Context) (*Context, error) {
	top, err := initializedContext()
	if err != nil {
		return nil, err
	}
	eff := top
	seen := false
	for _, c := range ctxs {
		if c == nil {
			c = top
		}
		if c.isFreed() {
			return nil, errf(UninitializedObject, "operand belongs to a freed context")
		}
		if !seen {
			eff = c
			seen = true
		} else if c != eff {
			return nil, errf(InvalidValue, "operands belong to different execution contexts")
		}
	}
	return eff, nil
}

package grb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPredefinedUnaryOps(t *testing.T) {
	if Identity(42) != 42 {
		t.Error("Identity")
	}
	if AInv(5) != -5 || AInv(-2.5) != 2.5 {
		t.Error("AInv")
	}
	if Abs(-7) != 7 || Abs(7) != 7 || Abs(-1.5) != 1.5 {
		t.Error("Abs")
	}
	if MInv(4.0) != 0.25 {
		t.Error("MInv")
	}
	if LNot(true) || !LNot(false) {
		t.Error("LNot")
	}
	if BNot(uint8(0)) != 255 {
		t.Error("BNot")
	}
	if One(99) != 1 || One(0.0) != 1.0 {
		t.Error("One")
	}
}

func TestPredefinedBinaryOps(t *testing.T) {
	if First(1, "x") != 1 || Second(1, "x") != "x" {
		t.Error("First/Second")
	}
	if Oneb[int, int, int](3, 4) != 1 {
		t.Error("Oneb")
	}
	if Plus(2, 3) != 5 || Minus(2, 3) != -1 || Times(2, 3) != 6 || Div(7, 2) != 3 {
		t.Error("arithmetic")
	}
	if Min(3, 2) != 2 || Max(3, 2) != 3 || Min("a", "b") != "a" {
		t.Error("Min/Max")
	}
	if !LAnd(true, true) || LAnd(true, false) {
		t.Error("LAnd")
	}
	if !LOr(false, true) || LOr(false, false) {
		t.Error("LOr")
	}
	if !LXor(true, false) || LXor(true, true) {
		t.Error("LXor")
	}
	if !LXnor(true, true) || LXnor(true, false) {
		t.Error("LXnor")
	}
	if BAnd(6, 3) != 2 || BOr(6, 3) != 7 || BXor(6, 3) != 5 {
		t.Error("bitwise")
	}
	if !Eq(1, 1) || Eq(1, 2) || !Ne(1, 2) {
		t.Error("Eq/Ne")
	}
	if !Lt(1, 2) || !Le(2, 2) || !Gt(3, 2) || !Ge(2, 2) {
		t.Error("comparisons")
	}
}

// TestMonoidIdentities verifies op(identity, x) == x for every predefined
// monoid over representative domains (the defining monoid law).
func TestMonoidIdentities(t *testing.T) {
	checkInt := func(name string, m Monoid[int], samples []int) {
		for _, x := range samples {
			if m.Op(m.Identity, x) != x || m.Op(x, m.Identity) != x {
				t.Errorf("%s[int]: identity law fails for %d", name, x)
			}
		}
	}
	ints := []int{-100, -1, 0, 1, 42, 1 << 40}
	checkInt("plus", PlusMonoid[int](), ints)
	checkInt("times", TimesMonoid[int](), ints)
	checkInt("min", MinMonoid[int](), ints)
	checkInt("max", MaxMonoid[int](), ints)

	checkF := func(name string, m Monoid[float64], samples []float64) {
		for _, x := range samples {
			if m.Op(m.Identity, x) != x || m.Op(x, m.Identity) != x {
				t.Errorf("%s[float64]: identity law fails for %v", name, x)
			}
		}
	}
	floats := []float64{-1e300, -1, 0, 1, 3.5, 1e300}
	checkF("plus", PlusMonoid[float64](), floats)
	checkF("min", MinMonoid[float64](), floats)
	checkF("max", MaxMonoid[float64](), floats)

	for _, x := range []bool{true, false} {
		if LAndMonoid().Op(LAndMonoid().Identity, x) != x {
			t.Error("land identity")
		}
		if LOrMonoid().Op(LOrMonoid().Identity, x) != x {
			t.Error("lor identity")
		}
		if LXorMonoid().Op(LXorMonoid().Identity, x) != x {
			t.Error("lxor identity")
		}
		if LXnorMonoid().Op(LXnorMonoid().Identity, x) != x {
			t.Error("lxnor identity")
		}
	}
}

// TestMinMaxIdentityValues checks the extreme-value computation that backs
// the min/max monoids across all numeric domains.
func TestMinMaxIdentityValues(t *testing.T) {
	if MinMonoid[int8]().Identity != 127 || MaxMonoid[int8]().Identity != -128 {
		t.Error("int8 extremes")
	}
	if MinMonoid[uint8]().Identity != 255 || MaxMonoid[uint8]().Identity != 0 {
		t.Error("uint8 extremes")
	}
	if MinMonoid[int16]().Identity != math.MaxInt16 || MaxMonoid[int16]().Identity != math.MinInt16 {
		t.Error("int16 extremes")
	}
	if MinMonoid[int32]().Identity != math.MaxInt32 || MaxMonoid[int32]().Identity != math.MinInt32 {
		t.Error("int32 extremes")
	}
	if MinMonoid[int64]().Identity != math.MaxInt64 || MaxMonoid[int64]().Identity != math.MinInt64 {
		t.Error("int64 extremes")
	}
	if MinMonoid[int]().Identity != math.MaxInt || MaxMonoid[int]().Identity != math.MinInt {
		t.Error("int extremes")
	}
	if MinMonoid[uint64]().Identity != math.MaxUint64 || MaxMonoid[uint64]().Identity != 0 {
		t.Error("uint64 extremes")
	}
	if !math.IsInf(MinMonoid[float64]().Identity, 1) || !math.IsInf(MaxMonoid[float64]().Identity, -1) {
		t.Error("float64 extremes")
	}
	if !math.IsInf(float64(MinMonoid[float32]().Identity), 1) {
		t.Error("float32 extremes")
	}
}

func TestMonoidConstructors(t *testing.T) {
	setMode(t, Blocking)
	m, err := NewMonoid(Plus[int], 0)
	if err != nil || m.Op(2, 3) != 5 {
		t.Fatalf("NewMonoid: %v", err)
	}
	if _, err := NewMonoid[int](nil, 0); Code(err) != NullPointer {
		t.Fatalf("nil op: %v", err)
	}
	// GrB_Scalar identity variant (Table II).
	s := ck1(ScalarOf(1))
	m2, err := NewMonoidScalar(Times[int], s)
	if err != nil || m2.Identity != 1 {
		t.Fatalf("NewMonoidScalar: %v", err)
	}
	empty := ck1(NewScalar[int]())
	if _, err := NewMonoidScalar(Times[int], empty); Code(err) != EmptyObject {
		t.Fatalf("empty identity: %v", err)
	}
}

func TestSemiringConstructorsAndLaws(t *testing.T) {
	if _, err := NewSemiring[int, int, int](Monoid[int]{}, Times[int]); err == nil {
		t.Fatal("nil add op accepted")
	}
	sr, err := NewSemiring(PlusMonoid[int](), Times[int])
	if err != nil {
		t.Fatal(err)
	}
	// distributivity spot-check by property
	f := func(a, b, c int16) bool {
		x, y, z := int(a), int(b), int(c)
		return sr.Mul(x, sr.Add.Op(y, z)) == sr.Add.Op(sr.Mul(x, y), sr.Mul(x, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// tropical semiring: min distributes over +
	tp := MinPlus[float64]()
	g := func(a, b, c int16) bool {
		x, y, z := float64(a), float64(b), float64(c)
		return tp.Mul(x, tp.Add.Op(y, z)) == tp.Add.Op(tp.Mul(x, y), tp.Mul(x, z))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredefinedSemirings(t *testing.T) {
	if MaxMin[int]().Mul(3, 5) != 3 || MaxMin[int]().Add.Op(3, 5) != 5 {
		t.Error("MaxMin")
	}
	if MinMax[int]().Mul(3, 5) != 5 {
		t.Error("MinMax")
	}
	if MaxPlus[int]().Add.Op(2, 9) != 9 || MaxPlus[int]().Mul(2, 9) != 11 {
		t.Error("MaxPlus")
	}
	if MinTimes[int]().Mul(2, 9) != 18 {
		t.Error("MinTimes")
	}
	if !LOrLAnd().Mul(true, true) || LOrLAnd().Mul(true, false) {
		t.Error("LOrLAnd mul")
	}
	if LAndLOr().Add.Op(true, false) {
		t.Error("LAndLOr add")
	}
	if LXorLAnd().Add.Op(true, true) {
		t.Error("LXorLAnd add")
	}
	if PlusPair[int]().Mul(7, 9) != 1 {
		t.Error("PlusPair")
	}
	if MinFirst[int]().Mul(7, 9) != 7 || MinSecond[int]().Mul(7, 9) != 9 {
		t.Error("MinFirst/Second")
	}
	if MaxFirst[int]().Mul(7, 9) != 7 || MaxSecond[int]().Mul(7, 9) != 9 {
		t.Error("MaxFirst/Second")
	}
}

func TestPredefinedIndexOps(t *testing.T) {
	// Table IV semantics at specific coordinates.
	if RowIndex[string]("x", 3, 9, 2) != 5 {
		t.Error("RowIndex")
	}
	if ColIndex[string]("x", 3, 9, 1) != 10 {
		t.Error("ColIndex")
	}
	if DiagIndex[string]("x", 3, 9, 0) != 6 {
		t.Error("DiagIndex")
	}
	if !TriL[int](0, 5, 5, 0) || TriL[int](0, 5, 6, 0) || !TriL[int](0, 5, 6, 1) {
		t.Error("TriL")
	}
	if !TriU[int](0, 5, 5, 0) || TriU[int](0, 6, 5, 0) || !TriU[int](0, 6, 5, -1) {
		t.Error("TriU")
	}
	if !Diag[int](0, 4, 4, 0) || Diag[int](0, 4, 5, 0) || !Diag[int](0, 4, 5, 1) {
		t.Error("Diag")
	}
	if Offdiag[int](0, 4, 4, 0) || !Offdiag[int](0, 4, 5, 0) {
		t.Error("Offdiag")
	}
	if !RowLE[int](0, 3, 0, 3) || RowLE[int](0, 4, 0, 3) {
		t.Error("RowLE")
	}
	if !RowGT[int](0, 4, 0, 3) || RowGT[int](0, 3, 0, 3) {
		t.Error("RowGT")
	}
	if !ColLE[int](0, 0, 3, 3) || ColLE[int](0, 0, 4, 3) {
		t.Error("ColLE")
	}
	if !ColGT[int](0, 0, 4, 3) || ColGT[int](0, 0, 3, 3) {
		t.Error("ColGT")
	}
	if !ValueEQ(5, 0, 0, 5) || ValueEQ(5, 0, 0, 6) {
		t.Error("ValueEQ")
	}
	if !ValueNE(5, 0, 0, 6) || ValueNE(5, 0, 0, 5) {
		t.Error("ValueNE")
	}
	if !ValueLT(4, 0, 0, 5) || ValueLT(5, 0, 0, 5) {
		t.Error("ValueLT")
	}
	if !ValueLE(5, 0, 0, 5) || ValueLE(6, 0, 0, 5) {
		t.Error("ValueLE")
	}
	if !ValueGT(6, 0, 0, 5) || ValueGT(5, 0, 0, 5) {
		t.Error("ValueGT")
	}
	if !ValueGE(5, 0, 0, 5) || ValueGE(4, 0, 0, 5) {
		t.Error("ValueGE")
	}
	if _, err := NewIndexUnaryOp[int, int, bool](nil); Code(err) != NullPointer {
		t.Error("NewIndexUnaryOp nil")
	}
	op, err := NewIndexUnaryOp(func(v int, i, j Index, s int) bool { return v > s })
	if err != nil || !op(7, 0, 0, 6) {
		t.Error("NewIndexUnaryOp wrap")
	}
}

package grb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
)

// chromeTrace is the subset of the Chrome trace-event schema the tests check.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Tid  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// bfsLevels runs the classic push-pattern BFS (vxm over lor-land, masked by
// the complement of the visited set) so the trace tests exercise a real
// multi-step nonblocking workload without importing lagraph (import cycle).
func bfsLevels(t *testing.T, a *Matrix[bool], src Index) *Vector[int] {
	t.Helper()
	n := ck1(a.Nrows())
	levels := ck1(NewVector[int](n))
	visited := ck1(NewVector[bool](n))
	frontier := ck1(NewVector[bool](n))
	ck(frontier.SetElement(true, src))
	for depth := 0; ; depth++ {
		if ck1(frontier.Nvals()) == 0 {
			break
		}
		ck(VectorAssignScalar(levels, frontier, nil, depth, All, DescS))
		ck(VectorAssignScalar(visited, frontier, nil, true, All, DescS))
		ck(VxM(frontier, visited, nil, LOrLAnd(), frontier, a, DescRSC))
	}
	// Drain the last deferred assign so observers see the full sequence.
	ck(levels.Wait(Materialize))
	return levels
}

// ringBool builds the directed n-cycle, whose BFS has n levels — a long
// chain of deferred sequences.
func ringBool(t *testing.T, n int) *Matrix[bool] {
	t.Helper()
	I := make([]Index, n)
	J := make([]Index, n)
	X := make([]bool, n)
	for i := 0; i < n; i++ {
		I[i], J[i], X[i] = i, (i+1)%n, true
	}
	return mustMatrix(t, n, n, I, J, X)
}

// TestBFSTraceSequenceSpans is the end-to-end trace acceptance test: running
// a nonblocking BFS under an active trace session must produce a valid
// Chrome-trace JSON document in which kernel events carry a sequence id and
// fall inside the matching sequence span's time window. It works under both
// session flavours: with GRB_TRACE set (the env file session Init starts) it
// validates the trace file; otherwise it starts its own writer session.
func TestBFSTraceSequenceSpans(t *testing.T) {
	setMode(t, NonBlocking)
	envPath := os.Getenv("GRB_TRACE")
	var buf bytes.Buffer
	if envPath == "" {
		if err := TraceTo(&buf); err != nil {
			t.Fatal(err)
		}
	}

	a := ringBool(t, 32)
	levels := bfsLevels(t, a, 0)
	if got := ck1(levels.Nvals()); got != 32 {
		t.Fatalf("BFS reached %d vertices, want 32", got)
	}

	var blob []byte
	if envPath == "" {
		ck(StopTrace())
		blob = buf.Bytes()
	} else {
		ck(FlushTrace())
		blob = ck1(os.ReadFile(envPath))
	}

	var tr chromeTrace
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 || tr.TraceEvents[0].Ph != "M" {
		t.Fatal("trace does not start with the process metadata event")
	}

	// Index the sequence spans by tid, then check every kernel/merge event
	// that claims a sequence parents under a span covering its time window.
	type window struct{ ts, end float64 }
	spans := map[uint64][]window{}
	seqs, kernels, attributed := 0, 0, 0
	for _, ev := range tr.TraceEvents {
		if ev.Cat == "sequence" {
			seqs++
			if ev.Tid == 0 {
				t.Fatalf("sequence span %q has tid 0", ev.Name)
			}
			spans[ev.Tid] = append(spans[ev.Tid], window{ev.Ts, ev.Ts + ev.Dur})
		}
	}
	const eps = 0.01 // µs; ns→µs float rounding slack
	for _, ev := range tr.TraceEvents {
		if ev.Cat != "kernel" && ev.Cat != "merge" {
			continue
		}
		kernels++
		if ev.Tid == 0 {
			continue // immediate execution (blocking mode, scalar reads)
		}
		attributed++
		ok := false
		for _, w := range spans[ev.Tid] {
			if ev.Ts >= w.ts-eps && ev.Ts+ev.Dur <= w.end+eps {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("kernel %q (tid %d, [%f,%f]) outside every span of its sequence",
				ev.Name, ev.Tid, ev.Ts, ev.Ts+ev.Dur)
		}
	}
	if seqs == 0 {
		t.Fatal("nonblocking BFS produced no sequence spans")
	}
	if attributed == 0 {
		t.Fatalf("none of the %d kernel events carry a sequence id", kernels)
	}
	// The BFS kernels must be visible by name.
	found := false
	for _, ev := range tr.TraceEvents {
		if ev.Name == "VxM" && ev.Cat == "kernel" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no VxM kernel event in the BFS trace")
	}
}

// TestBFSMetricsProfile checks the metrics sink over the same workload: per-
// op counts and routing splits for a direction-optimizing BFS.
func TestBFSMetricsProfile(t *testing.T) {
	setMode(t, NonBlocking)
	EnableMetrics(true)
	defer func() {
		EnableMetrics(false)
		ResetMetrics()
	}()
	ResetMetrics()

	a := ringBool(t, 64)
	_ = bfsLevels(t, a, 0)

	m := Metrics()
	vxm, ok := m["VxM"]
	if !ok {
		t.Fatalf("no VxM metrics; ops = %v", MetricsOps())
	}
	// The 64-cycle BFS runs one VxM per level.
	if vxm.Count < 64 {
		t.Fatalf("VxM count = %d, want >= 64", vxm.Count)
	}
	if vxm.PushCalls+vxm.PullCalls < 64 {
		t.Fatalf("VxM routing split %dp/%dg does not cover the levels", vxm.PushCalls, vxm.PullCalls)
	}
	if vxm.TotalNs <= 0 {
		t.Fatalf("VxM TotalNs = %d", vxm.TotalNs)
	}
	if seq := m["sequence(vector)"]; seq.Count == 0 || seq.Steps == 0 {
		t.Fatalf("sequence spans not recorded: %+v", seq)
	}
	if assign, ok := m["VectorAssignScalar"]; !ok || assign.Count < 128 {
		t.Fatalf("VectorAssignScalar metrics = %+v (ok=%v)", assign, ok)
	}

	ResetMetrics()
	if len(Metrics()) != 0 {
		t.Fatalf("ResetMetrics left %v", MetricsOps())
	}
}

// TestObservabilityParallelKernels emits events from kernels running on
// separate goroutines with both sinks hot; under -race (the race tier) this
// is the subsystem's end-to-end data-race test.
func TestObservabilityParallelKernels(t *testing.T) {
	setMode(t, NonBlocking)
	EnableMetrics(true)
	defer func() {
		EnableMetrics(false)
		ResetMetrics()
	}()
	var buf bytes.Buffer
	tracing := Tracing() // GRB_TRACE env session already collecting
	if !tracing {
		if err := TraceTo(&buf); err != nil {
			t.Fatal(err)
		}
		defer func() { _ = StopTrace() }() //grblint:ignore infocheck -- best-effort teardown
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 32 + 8*w
			I := make([]Index, n)
			J := make([]Index, n)
			X := make([]bool, n)
			for i := 0; i < n; i++ {
				I[i], J[i], X[i] = i, (i+1)%n, true
			}
			a := ck1(NewMatrix[bool](n, n))
			ck(a.Build(I, J, X, LOr))
			c := ck1(NewMatrix[bool](n, n))
			for i := 0; i < 8; i++ {
				ck(MxM(c, nil, nil, Semiring[bool, bool, bool]{Add: LOrMonoid(), Mul: LAnd}, a, a, nil))
				ck(c.Wait(Materialize))
			}
		}(w)
	}
	wg.Wait()

	if m := Metrics()["MxM"]; m.Count < 4*8 {
		t.Fatalf("parallel MxM count = %d, want >= 32", m.Count)
	}
	if !tracing {
		ck(StopTrace())
		var tr chromeTrace
		if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
			t.Fatalf("trace from parallel kernels is not valid JSON: %v", err)
		}
		if len(tr.TraceEvents) < 4*8 {
			t.Fatalf("trace holds %d events", len(tr.TraceEvents))
		}
	}
}

// TestTraceSecondSessionFails pins the public API error: one session at a time.
func TestTraceSecondSessionFails(t *testing.T) {
	setMode(t, NonBlocking)
	if Tracing() {
		t.Skip("GRB_TRACE session active")
	}
	var buf bytes.Buffer
	ck(TraceTo(&buf))
	err := TraceTo(&buf)
	wantCode(t, err, InvalidValue)
	ck(StopTrace())
}

// TestMetricsHandlerServesJSON smoke-tests the HTTP sink through the public
// constructor (the handler logic itself is tested in internal/obsv).
func TestMetricsHandlerServesJSON(t *testing.T) {
	if MetricsHandler() == nil {
		t.Fatal("MetricsHandler returned nil")
	}
}

// TestGRBTraceEnvBadPath checks that a bad GRB_TRACE path fails at Init with
// a clear error instead of at process exit.
func TestGRBTraceEnvBadPath(t *testing.T) {
	if Tracing() {
		t.Skip("a trace session is already active")
	}
	_ = Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	t.Setenv("GRB_TRACE", fmt.Sprintf("%s/no-such-dir/t.json", t.TempDir()))
	err := Init(NonBlocking)
	wantCode(t, err, InvalidValue)
	if Tracing() {
		t.Fatal("failed Init left a trace session active")
	}
	t.Setenv("GRB_TRACE", "")
	setMode(t, NonBlocking) // leave the library initialized for later tests
}

package serve

import (
	"sync"
	"time"

	"github.com/grblas/grb/internal/obsv"
)

// breakerState is the classic three-state circuit: closed (requests flow),
// open (requests rejected for the cooldown), half-open (one probe in flight
// decides whether to close again).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String returns the state name used in shed bodies and gauges.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// breaker is one tenant's circuit breaker: it opens after `threshold`
// consecutive execution failures (blown deadlines, memory exhaustion,
// recovered panics — never client errors or sheds), rejects everything for
// `cooldown`, then lets exactly one probe through; the probe's outcome
// closes the circuit or re-opens it. A poisoned query pattern therefore
// stops burning shared CPU after a bounded number of failures instead of
// failing at full concurrency forever.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     breakerState
	fails     int // consecutive execution failures while closed
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	tenant    string
}

// breakerSnapshot is the state exposed in shed bodies.
type breakerSnapshot struct {
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
}

// newBreaker builds a breaker; threshold <= 0 means the tenant opted out and
// the caller should keep a nil breaker.
func newBreaker(tenant string, threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	b := &breaker{threshold: threshold, cooldown: cooldown, tenant: tenant}
	obsv.ServeSet("breaker.state."+tenant, int64(breakerClosed))
	return b
}

// allow reports whether a request may execute now; when it may not, the
// returned duration is the suggested Retry-After. An allowed request in the
// half-open state is the probe; its note() outcome decides the transition.
func (b *breaker) allow(now time.Time) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := b.cooldown - now.Sub(b.openedAt); wait > 0 {
			return false, wait
		}
		b.setStateLocked(breakerHalfOpen)
		b.probing = true
		return true, 0
	case breakerHalfOpen:
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
	return true, 0
}

// note feeds one executed request's outcome into the circuit. Sheds and
// client errors must not be reported here — only requests that actually ran.
func (b *breaker) note(o outcome, now time.Time) {
	if b == nil {
		return
	}
	failed := o == outcomeOverload || o == outcomeFailure
	if o == outcomeNeutral {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !failed {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = now
			b.setStateLocked(breakerOpen)
			obsv.ServeAdd("breaker.opened."+b.tenant, 1)
		}
	case breakerHalfOpen:
		b.probing = false
		if failed {
			b.openedAt = now
			b.fails = b.threshold
			b.setStateLocked(breakerOpen)
			obsv.ServeAdd("breaker.opened."+b.tenant, 1)
			return
		}
		b.fails = 0
		b.setStateLocked(breakerClosed)
	case breakerOpen:
		// A request admitted before the circuit opened finished late; its
		// outcome carries no new information about the open circuit.
	}
}

// setStateLocked transitions the state and mirrors it to the gauge.
// Callers hold b.mu.
func (b *breaker) setStateLocked(s breakerState) {
	b.state = s
	obsv.ServeSet("breaker.state."+b.tenant, int64(s))
}

// snapshot returns the breaker's instantaneous state for shed bodies.
func (b *breaker) snapshot() *breakerSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return &breakerSnapshot{State: b.state.String(), ConsecutiveFails: b.fails}
}

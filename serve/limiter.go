package serve

import (
	"sort"
	"sync"
	"time"

	"github.com/grblas/grb/internal/obsv"
)

// outcome classifies one completed request for the adaptive control loops.
type outcome int

const (
	// outcomeOK: the request succeeded; its latency feeds the AIMD window.
	outcomeOK outcome = iota
	// outcomeOverload: the request hit a capacity signal — blown deadline
	// (408) or memory exhaustion (507). Halves the AIMD window and counts
	// against the circuit breaker.
	outcomeOverload
	// outcomeFailure: an execution failure that is not a capacity signal
	// (recovered panic, internal error). Counts against the breaker but does
	// not halve the window.
	outcomeFailure
	// outcomeNeutral: client-side errors (4xx) and abandoned requests.
	// Feeds neither loop.
	outcomeNeutral
)

// aimdLimiter is one tenant's adaptive concurrency controller: an AIMD
// window (additive increase while the observed p99 stays under target,
// multiplicative decrease on overload signals) in front of a deadline-aware
// bounded FIFO queue. The static MaxInFlight of earlier revisions survives
// as the window's ceiling; the window itself breathes between 1 and that
// ceiling on live latency and overload measurements.
type aimdLimiter struct {
	mu       sync.Mutex
	window   float64 // current concurrency allowance, [minW, maxW]
	minW     float64
	maxW     float64
	inflight int
	queue    []*waiter
	maxQueue int

	target    time.Duration // p99 latency target for additive increase
	cooldown  time.Duration // minimum spacing between halvings
	lastHalve time.Time

	lats [64]float64 // ring of recent success latencies, ms
	nLat int         // total recorded (ring fill level = min(nLat, len))
	good int         // successes since the last window adjustment

	tenant string // obsv gauge labeling
}

// waiter is one queued admission: granted receives the slot handover;
// abandoned marks a waiter that timed out or disconnected so release skips
// it without losing the slot.
type waiter struct {
	granted   chan struct{}
	abandoned bool
}

// limiterSnapshot is the state exposed in shed bodies and /metrics gauges.
type limiterSnapshot struct {
	Window   int `json:"window"`
	Inflight int `json:"inflight"`
	Queued   int `json:"queued"`
}

// newAIMDLimiter builds a limiter for one tenant. ceiling <= 0 means the
// tenant is unlimited and the caller should not construct a limiter at all.
func newAIMDLimiter(tenant string, ceiling, minW, maxQueue int, target, cooldown time.Duration) *aimdLimiter {
	if minW < 1 {
		minW = 1
	}
	if minW > ceiling {
		minW = ceiling
	}
	if target <= 0 {
		target = 250 * time.Millisecond
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	l := &aimdLimiter{
		window:   float64(ceiling), // start wide open: halve on evidence, not on guesses
		minW:     float64(minW),
		maxW:     float64(ceiling),
		maxQueue: maxQueue,
		target:   target,
		cooldown: cooldown,
		tenant:   tenant,
	}
	obsv.ServeSet("limiter.window."+tenant, int64(l.window))
	return l
}

// admitResult says how an admission attempt ended.
type admitResult int

const (
	admitGranted admitResult = iota
	admitShedQueueFull
	admitShedDeadline // queued, but the request's deadline expired before a slot freed
	admitShedDrain    // the server began draining while queued
	admitShedGone     // the client disconnected while queued
)

// tryAcquire is the non-blocking admission probe: a slot or nothing. Used by
// the compatibility acquire() path and as the fast path of acquire.
func (l *aimdLimiter) tryAcquire() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= int(l.window) {
		return false
	}
	l.inflight++
	return true
}

// acquire admits the request now, queues it (FIFO, bounded) until a slot
// frees, or sheds it. deadline is the request's absolute deadline (zero =
// none): a queued request whose deadline passes is dropped without ever
// executing, and because the deadline was anchored at arrival, queue wait is
// charged against the request's time budget. gone fires when the client
// disconnects; drain fires when the server stops accepting.
func (l *aimdLimiter) acquire(deadline time.Time, gone <-chan struct{}, drain <-chan struct{}) (admitResult, time.Duration) {
	if l == nil {
		return admitGranted, 0
	}
	l.mu.Lock()
	if l.inflight < int(l.window) {
		l.inflight++
		l.mu.Unlock()
		return admitGranted, 0
	}
	if len(l.queue) >= l.maxQueue {
		l.mu.Unlock()
		obsv.ServeAdd("limiter.sheds."+l.tenant, 1)
		return admitShedQueueFull, 0
	}
	w := &waiter{granted: make(chan struct{}, 1)}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	var expired <-chan time.Time
	var timer *time.Timer
	if !deadline.IsZero() {
		timer = time.NewTimer(time.Until(deadline))
		expired = timer.C
		defer timer.Stop()
	}
	start := time.Now()
	select {
	case <-w.granted:
		// The releaser handed its slot over; inflight already accounts for us.
		return admitGranted, time.Since(start)
	case <-expired:
		l.abandon(w)
		obsv.ServeAdd("queue.dropped_deadline."+l.tenant, 1)
		return admitShedDeadline, time.Since(start)
	case <-gone:
		l.abandon(w)
		return admitShedGone, time.Since(start)
	case <-drain:
		l.abandon(w)
		return admitShedDrain, time.Since(start)
	}
}

// abandon marks a queued waiter dead. If a grant raced in before the mark,
// the slot is pushed back so it is not lost.
func (l *aimdLimiter) abandon(w *waiter) {
	l.mu.Lock()
	w.abandoned = true
	select {
	case <-w.granted:
		// Lost the race: a slot was already handed to us. Return it.
		l.releaseSlotLocked()
	default:
	}
	l.mu.Unlock()
}

// releaseSlotLocked frees one slot or hands it to the first live waiter,
// preserving FIFO order. Callers hold l.mu.
func (l *aimdLimiter) releaseSlotLocked() {
	for len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if w.abandoned {
			continue
		}
		if l.inflight <= int(l.window) {
			// Hand the slot over without ever decrementing: the waiter
			// inherits this request's admission.
			w.granted <- struct{}{}
			return
		}
		// The window shrank below the in-flight count: shed the handover,
		// re-queue the waiter at the front, and shrink inflight instead.
		l.queue = append([]*waiter{w}, l.queue...)
		break
	}
	l.inflight--
}

// release completes one admitted request: frees (or hands over) the slot and
// feeds the adaptive loop with the request's outcome and latency.
func (l *aimdLimiter) release(o outcome, latency time.Duration) {
	l.releaseAt(o, latency, time.Now())
}

// releaseAt is release with an explicit clock, for deterministic tests.
func (l *aimdLimiter) releaseAt(o outcome, latency time.Duration, now time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.releaseSlotLocked()
	switch o {
	case outcomeOK:
		ms := float64(latency) / float64(time.Millisecond)
		l.lats[l.nLat%len(l.lats)] = ms
		l.nLat++
		if l.p99Locked() <= float64(l.target)/float64(time.Millisecond) {
			l.good++
			// Additive increase: one extra slot per window's worth of
			// on-target completions — roughly +1 per RTT at saturation.
			if need := int(l.window); l.good >= need {
				l.good = 0
				if l.window+1 <= l.maxW {
					l.window++
					obsv.ServeSet("limiter.window."+l.tenant, int64(l.window))
				}
			}
		} else {
			l.good = 0
		}
	case outcomeOverload:
		// Multiplicative decrease, rate-limited so one burst of deadline
		// failures does not collapse the window to the floor instantly.
		if now.Sub(l.lastHalve) >= l.cooldown {
			l.lastHalve = now
			l.good = 0
			l.window = l.window / 2
			if l.window < l.minW {
				l.window = l.minW
			}
			obsv.ServeSet("limiter.window."+l.tenant, int64(l.window))
		}
	case outcomeFailure, outcomeNeutral:
		// No window signal.
	}
}

// p99Locked estimates the 99th percentile of the recent-success latency ring.
// Callers hold l.mu.
func (l *aimdLimiter) p99Locked() float64 {
	n := l.nLat
	if n > len(l.lats) {
		n = len(l.lats)
	}
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, l.lats[:n])
	sort.Float64s(tmp)
	idx := int(0.99*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx]
}

// snapshot returns the limiter's instantaneous state for shed bodies.
func (l *aimdLimiter) snapshot() *limiterSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return &limiterSnapshot{Window: int(l.window), Inflight: l.inflight, Queued: len(l.queue)}
}

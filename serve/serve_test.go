package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/internal/faults"
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/lagraph"
)

func initLib(t *testing.T) {
	t.Helper()
	_ = grb.Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	if err := grb.Init(grb.NonBlocking); err != nil {
		t.Fatal(err)
	}
	obsv.ResetLabels()
	t.Cleanup(func() {
		obsv.ResetLabels()
		_ = grb.Finalize() //grblint:ignore infocheck -- best-effort teardown
	})
}

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromGen("g", gen.Graph500RMAT(7, 8, 11).Symmetrize())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func get(t *testing.T, url, tenant string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Grb-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// bfsOracle runs the differential reference: direct lagraph BFS on the
// shared pattern, returned as an index→level map for comparison with
// response JSON.
func bfsOracle(t *testing.T, g *Graph, src int) map[int]int {
	t.Helper()
	levels, err := lagraph.BFSLevels(g.pattern, src)
	if err != nil {
		t.Fatal(err)
	}
	idx, vals, err := levels.ExtractTuples()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]int, len(idx))
	for k := range idx {
		out[idx[k]] = vals[k]
	}
	return out
}

// TestServerTenantIsolation is the satellite isolation battery, built to
// run under -race: several well-behaved tenants hammer mixed endpoints
// concurrently while one tenant's every query blows its 1-byte memory
// budget and another's every query starts past its deadline. The
// well-behaved tenants' responses must stay bit-identical to direct
// lagraph calls on the shared graph, the saboteurs must keep getting their
// mapped statuses, and the server must answer a final health probe — it
// never wedges.
func TestServerTenantIsolation(t *testing.T) {
	initLib(t)
	g := testGraph(t)
	cfg := Config{
		Default: TenantConfig{Deadline: 30 * time.Second},
		Tenants: map[string]TenantConfig{
			"starved": {Deadline: 30 * time.Second, MemoryBytes: 1},
			"notime":  {Deadline: time.Nanosecond},
		},
	}
	ts := httptest.NewServer(NewServer([]*Graph{g}, cfg).Handler())
	defer ts.Close()

	// Oracles computed once, before the storm, straight from lagraph.
	oracles := map[int]map[int]int{}
	for src := 0; src < 4; src++ {
		oracles[src] = bfsOracle(t, g, src)
	}
	wantTri, err := lagraph.TriangleCount(g.pattern)
	if err != nil {
		t.Fatal(err)
	}

	const goodWorkers, iters = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, (goodWorkers+2)*iters)
	for w := 0; w < goodWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("good%d", w)
			for i := 0; i < iters; i++ {
				src := (w + i) % 4
				switch i % 2 {
				case 0:
					status, body := get(t, fmt.Sprintf("%s/query/bfs?src=%d", ts.URL, src), tenant)
					if status != http.StatusOK {
						errs <- fmt.Errorf("%s bfs: status %d: %s", tenant, status, body)
						return
					}
					var resp struct {
						Indices []int `json:"indices"`
						Levels  []int `json:"levels"`
					}
					if err := json.Unmarshal(body, &resp); err != nil {
						errs <- fmt.Errorf("%s bfs: %v", tenant, err)
						return
					}
					want := oracles[src]
					if len(resp.Indices) != len(want) {
						errs <- fmt.Errorf("%s bfs src=%d: %d reached, oracle %d", tenant, src, len(resp.Indices), len(want))
						return
					}
					for k := range resp.Indices {
						if want[resp.Indices[k]] != resp.Levels[k] {
							errs <- fmt.Errorf("%s bfs src=%d: level[%d]=%d, oracle %d",
								tenant, src, resp.Indices[k], resp.Levels[k], want[resp.Indices[k]])
							return
						}
					}
				case 1:
					status, body := get(t, ts.URL+"/query/triangles", tenant)
					if status != http.StatusOK {
						errs <- fmt.Errorf("%s triangles: status %d: %s", tenant, status, body)
						return
					}
					var resp struct {
						Triangles int64 `json:"triangles"`
					}
					if err := json.Unmarshal(body, &resp); err != nil {
						errs <- fmt.Errorf("%s triangles: %v", tenant, err)
						return
					}
					if resp.Triangles != wantTri {
						errs <- fmt.Errorf("%s triangles: %d, oracle %d", tenant, resp.Triangles, wantTri)
						return
					}
				}
			}
		}(w)
	}
	// Saboteur 1: every query exceeds its memory budget.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			status, body := get(t, ts.URL+"/query/triangles", "starved")
			if status != http.StatusInsufficientStorage {
				errs <- fmt.Errorf("starved: status %d, want 507: %s", status, body)
				return
			}
		}
	}()
	// Saboteur 2: every query starts past its deadline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			status, body := get(t, ts.URL+"/query/pagerank?maxiter=40", "notime")
			if status != http.StatusRequestTimeout {
				errs <- fmt.Errorf("notime: status %d, want 408: %s", status, body)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Server answers after the storm, and the ledger saw every tenant.
	if status, _ := get(t, ts.URL+"/healthz", ""); status != http.StatusOK {
		t.Fatalf("healthz after storm: %d", status)
	}
	snap := obsv.LabelsSnapshot()
	if snap["starved"].Errors != iters || snap["notime"].Errors != iters {
		t.Fatalf("saboteur accounting: starved=%+v notime=%+v", snap["starved"], snap["notime"])
	}
	for w := 0; w < goodWorkers; w++ {
		name := fmt.Sprintf("good%d", w)
		if lm := snap[name]; lm.Requests != iters || lm.Errors != 0 {
			t.Fatalf("%s accounting: %+v", name, lm)
		}
	}
}

// TestServerFaultInjection arms the kernel fault plan against a live
// server: sampled allocation failures at the SpGEMM and VxM sites must
// surface as mapped 507s (never hangs, wedges, or unmapped 500s), and the
// server must return to all-200 service the moment the plan is disarmed.
func TestServerFaultInjection(t *testing.T) {
	initLib(t)
	g := testGraph(t)
	ts := httptest.NewServer(NewServer([]*Graph{g},
		Config{Default: TenantConfig{Deadline: 30 * time.Second}}).Handler())
	defer ts.Close()

	if err := faults.ArmFromSpec("sparse.spgemm.spa:alloc%2;sparse.vxm.spa:alloc%3;seed=7"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disable()
	sawInjected := false
	for i := 0; i < 20; i++ {
		path := "/query/triangles"
		if i%2 == 1 {
			path = fmt.Sprintf("/query/bfs?src=%d", i%4)
		}
		status, body := get(t, ts.URL+path, "chaos")
		switch status {
		case http.StatusOK:
		case http.StatusInsufficientStorage:
			sawInjected = true
			var eb struct {
				InfoName string `json:"info_name"`
			}
			if err := json.Unmarshal(body, &eb); err != nil || eb.InfoName != "GrB_OUT_OF_MEMORY" {
				t.Fatalf("injected failure body: %s (err %v)", body, err)
			}
		default:
			t.Fatalf("GET %s under faults: status %d: %s", path, status, body)
		}
	}
	if !sawInjected {
		t.Fatal("fault plan armed but no query ever failed")
	}
	faults.Disable()
	for i := 0; i < 3; i++ {
		if status, body := get(t, ts.URL+"/query/triangles", "chaos"); status != http.StatusOK {
			t.Fatalf("after disarm: status %d: %s", status, body)
		}
	}
}

// TestClientDisconnectReleasesResources pins the mid-flight abandonment
// path: a client that walks away from an expensive PageRank gets its query
// canceled at range granularity, the request's concurrency slot frees, and
// the memory governor's live aggregate returns to zero — an abandoned
// request cannot keep either the engine or the admission budget occupied.
func TestClientDisconnectReleasesResources(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g := testGraph(t)
	cfg := Config{
		Default:      TenantConfig{Deadline: 60 * time.Second},
		MemHighWater: 64 << 20,
		Tenants: map[string]TenantConfig{
			"walker": {Deadline: 60 * time.Second, MaxInFlight: 1},
		},
	}
	s := NewServer([]*Graph{g}, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Slow the kernels down so the disconnect lands mid-iteration.
	faults.Enable(faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: 10 * time.Millisecond})
	defer faults.Disable()

	rctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(rctx, "GET", ts.URL+"/query/pagerank?maxiter=400&tol=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Grb-Tenant", "walker")
	clientErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("abandoned request completed with status %d", resp.StatusCode)
		}
		clientErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never entered flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-clientErr; err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("client error: %v, want context.Canceled", err)
	}
	// The watcher cancels the grb context; kernels park Canceled at the next
	// range checkpoint and the handler unwinds, releasing slot + reservation.
	for s.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned request still in flight (%d)", s.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	faults.Disable()
	if s.gov == nil {
		t.Fatal("governor not constructed despite MemHighWater")
	}
	if live := s.gov.live(); live != 0 {
		t.Fatalf("governor live bytes after disconnect: %d, want 0", live)
	}
	// The single concurrency slot must be free again.
	if status, body := get(t, ts.URL+"/query/bfs?src=0", "walker"); status != http.StatusOK {
		t.Fatalf("after disconnect: status %d (slot leaked?): %s", status, body)
	}
}

// TestSelfCheck keeps the ci.sh serve tier's driver honest (and covered).
func TestSelfCheck(t *testing.T) {
	initLib(t)
	if err := SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestServeHTTPContract covers the endpoint surface the smoke tier relies
// on, without concurrency: response fields, the 404/400/429 mappings, and
// the ego response's original-id edge list.
func TestServeHTTPContract(t *testing.T) {
	initLib(t)
	// 0→1→2→3→4 path with a shortcut 0→2.
	pg, err := buildGraph("p", 5,
		[]grb.Index{0, 1, 2, 3, 0}, []grb.Index{1, 2, 3, 4, 2},
		[]float64{1, 1, 1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Default: TenantConfig{Deadline: 10 * time.Second},
		Tenants: map[string]TenantConfig{"gated": {MaxInFlight: 1}},
	}
	s := NewServer([]*Graph{pg}, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := get(t, ts.URL+"/query/ego?src=0&hops=1", "")
	if status != http.StatusOK {
		t.Fatalf("ego: %d: %s", status, body)
	}
	var ego struct {
		Vertices []int     `json:"vertices"`
		ESrc     []int     `json:"edge_src"`
		EDst     []int     `json:"edge_dst"`
		EW       []float64 `json:"edge_w"`
	}
	if err := json.Unmarshal(body, &ego); err != nil {
		t.Fatal(err)
	}
	if len(ego.Vertices) != 3 || ego.Vertices[0] != 0 || ego.Vertices[2] != 2 {
		t.Fatalf("ego vertices: %v", ego.Vertices)
	}
	// Induced edges in original ids: 0→1, 0→2 (w=5), 1→2.
	if len(ego.ESrc) != 3 {
		t.Fatalf("ego edges: %v -> %v", ego.ESrc, ego.EDst)
	}
	found5 := false
	for k := range ego.ESrc {
		if ego.ESrc[k] == 0 && ego.EDst[k] == 2 && ego.EW[k] == 5 {
			found5 = true
		}
	}
	if !found5 {
		t.Fatalf("ego shortcut edge missing: %v %v %v", ego.ESrc, ego.EDst, ego.EW)
	}

	if status, _ := get(t, ts.URL+"/query/sssp?graph=absent", ""); status != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", status)
	}
	if status, _ := get(t, ts.URL+"/query/pagerank?damping=2", ""); status != http.StatusBadRequest {
		t.Fatalf("bad damping: %d", status)
	}
	if status, _ := get(t, ts.URL+"/query/bfs?hops=x&src=x", ""); status != http.StatusBadRequest {
		t.Fatalf("bad src: %d", status)
	}

	// 429 deterministically: hold the gated tenant's single slot.
	req, err := http.NewRequest("GET", ts.URL+"/query/bfs", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Grb-Tenant", "gated")
	tn := s.tenantFor(req)
	release, ok := tn.acquire()
	if !ok {
		t.Fatal("gated slot busy")
	}
	if status, _ := get(t, ts.URL+"/query/bfs", "gated"); status != http.StatusTooManyRequests {
		t.Fatal("gated tenant not rejected")
	}
	release()
	if status, _ := get(t, ts.URL+"/query/bfs", "gated"); status != http.StatusOK {
		t.Fatal("gated tenant not restored")
	}

	// /graphs and /metrics surface.
	status, body = get(t, ts.URL+"/graphs", "")
	if status != http.StatusOK {
		t.Fatalf("/graphs: %d", status)
	}
	var gl struct {
		Graphs []struct {
			Name  string `json:"name"`
			N     int    `json:"n"`
			Edges int    `json:"edges"`
		} `json:"graphs"`
	}
	if err := json.Unmarshal(body, &gl); err != nil {
		t.Fatal(err)
	}
	if len(gl.Graphs) != 1 || gl.Graphs[0].Name != "p" || gl.Graphs[0].N != 5 || gl.Graphs[0].Edges != 5 {
		t.Fatalf("/graphs: %+v", gl)
	}
}

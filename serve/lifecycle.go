package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/internal/obsv"
)

// lifecycle tracks the server's drain state and the set of in-flight request
// contexts, so shutdown can first let requests finish naturally and then
// cancel the stragglers at §IV range granularity.
type lifecycle struct {
	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once
	inflight  atomic.Int64
	live      sync.Map // *grb.Context -> struct{}
}

func newLifecycle() *lifecycle {
	return &lifecycle{drainCh: make(chan struct{})}
}

// beginDrain flips the server into draining mode: new requests are shed with
// 503 and queued waiters are woken to be shed too. Idempotent.
func (lc *lifecycle) beginDrain() {
	lc.drainOnce.Do(func() {
		lc.draining.Store(true)
		close(lc.drainCh)
		obsv.ServeSet("drain.state", 1)
	})
}

func (lc *lifecycle) register(ctx *grb.Context) {
	lc.inflight.Add(1)
	lc.live.Store(ctx, struct{}{})
}

func (lc *lifecycle) unregister(ctx *grb.Context) {
	lc.live.Delete(ctx)
	lc.inflight.Add(-1)
}

// Draining reports whether the server has stopped accepting new work.
func (s *Server) Draining() bool { return s.lc.draining.Load() }

// InFlight returns the number of requests currently holding a live context.
func (s *Server) InFlight() int64 { return s.lc.inflight.Load() }

// Shutdown drains the server gracefully: stop accepting new requests
// immediately, give in-flight requests most of the timeout to finish on
// their own, then Cancel the stragglers' contexts — kernels observe the
// flag at their next range checkpoint and park Canceled on the output — and
// wait out the remainder. A nil return means every request completed or was
// canceled to completion; an error means work was still in flight at the
// deadline (the process may exit anyway, but should log it).
func (s *Server) Shutdown(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	s.lc.beginDrain()
	deadline := time.Now().Add(timeout)
	// Phase 1 — natural drain: three quarters of the budget for requests to
	// finish at their own pace.
	natural := time.Now().Add(timeout * 3 / 4)
	for time.Now().Before(natural) {
		if s.lc.inflight.Load() == 0 {
			obsv.ServeSet("drain.state", 2)
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	// Phase 2 — cancel stragglers and wait for them to unwind.
	s.lc.live.Range(func(k, _ any) bool {
		_ = k.(*grb.Context).Cancel() //grblint:ignore infocheck -- best-effort abort; a context without WithCancel just runs out
		return true
	})
	obsv.ServeAdd("drain.canceled", 1)
	for time.Now().Before(deadline) {
		if s.lc.inflight.Load() == 0 {
			obsv.ServeSet("drain.state", 2)
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	n := s.lc.inflight.Load()
	obsv.ServeSet("drain.state", 3)
	return fmt.Errorf("shutdown: %d request(s) still in flight after %v", n, timeout)
}

// SetGraphs atomically replaces the served graph set. In-flight requests
// keep the snapshot they resolved at admission; new requests see the new
// set. The previous graphs are not freed here — their snapshots may still
// back running queries.
func (s *Server) SetGraphs(graphs []*Graph) {
	m := make(map[string]*Graph, len(graphs))
	for _, g := range graphs {
		m[g.Name] = g
	}
	s.graphs.Store(&m)
}

// Reload hot-swaps the graph set from a loader function. The swap is atomic
// and all-or-nothing: if the loader fails or returns no graphs, the previous
// set stays in place (rollback is "never left it") and the error is
// returned.
func (s *Server) Reload(load func() ([]*Graph, error)) error {
	graphs, err := load()
	if err != nil {
		obsv.ServeAdd("reload.fail", 1)
		return fmt.Errorf("reload: %w", err)
	}
	if len(graphs) == 0 {
		obsv.ServeAdd("reload.fail", 1)
		return fmt.Errorf("reload: loader returned no graphs; keeping current set")
	}
	s.SetGraphs(graphs)
	obsv.ServeAdd("reload.ok", 1)
	return nil
}

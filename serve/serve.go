package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/lagraph"
)

// TenantConfig is one tenant's admission-control envelope. Zero values mean
// "no limit" for that axis; the server default fills unset deadlines.
type TenantConfig struct {
	Deadline    time.Duration // per-request wall-clock budget
	MemoryBytes int64         // per-request memory budget (grb.WithMemoryLimit)
	MaxInFlight int           // concurrency ceiling; the AIMD window breathes below it

	// Adaptive-control knobs; zero values keep earlier revisions' behavior
	// (static limit, no queue, no breaker).
	MinInFlight      int           // AIMD window floor (default 1)
	MaxQueue         int           // bounded admission queue depth; 0 = shed immediately
	P99Target        time.Duration // latency target for additive increase (default 250ms)
	BreakerThreshold int           // consecutive failures to open the circuit; 0 = no breaker
	BreakerCooldown  time.Duration // open-state hold before the half-open probe (default 1s)
}

// Config carries the per-tenant table plus the envelope applied to tenants
// the table does not name (including the implicit "default" tenant).
type Config struct {
	Default TenantConfig
	Tenants map[string]TenantConfig

	// MemHighWater bounds the server-wide live memory reservation aggregate:
	// requests whose projected footprint would push past it are rejected at
	// admission (429 + Retry-After). 0 disables the governor.
	MemHighWater int64
}

// tenant is the runtime state for one tenant name: its config plus the
// adaptive concurrency limiter and circuit breaker, created once on first
// sight.
type tenant struct {
	name    string
	cfg     TenantConfig
	limiter *aimdLimiter // nil when MaxInFlight == 0
	breaker *breaker     // nil when BreakerThreshold == 0
}

// acquire is the non-blocking admission probe kept for the selfcheck and
// test drivers: take a slot now or report busy. The release func returns the
// slot without feeding the adaptive loops.
func (t *tenant) acquire() (release func(), ok bool) {
	if t.limiter == nil {
		return func() {}, true
	}
	if !t.limiter.tryAcquire() {
		return nil, false
	}
	return func() { t.limiter.release(outcomeNeutral, 0) }, true
}

// newRequestCtx derives the §IV per-request context from the tenant
// envelope: always cancellable (for client disconnects), with the deadline
// and memory budget layered on when configured. The deadline anchors at the
// request's arrival, not at admission, so time spent queued is charged
// against the request's own budget. Under a governor the context parents
// under the governor's budgeted context — the budget rollup then aggregates
// every in-flight reservation there — and an unbudgeted tenant gets the
// high-water mark as its per-request cap. Without a governor the parent is
// the library top context; either way shared snapshots (owned by the top
// context) remain legal operands under the hierarchical sharing rule.
func (t *tenant) newRequestCtx(arrival time.Time, gov *memGovernor) (*grb.Context, error) {
	opts := []grb.ContextOption{grb.WithCancel()}
	if t.cfg.Deadline > 0 {
		opts = append(opts, grb.WithDeadline(arrival.Add(t.cfg.Deadline)))
	}
	mem := t.cfg.MemoryBytes
	var parent *grb.Context
	if gov != nil && gov.ctx != nil {
		parent = gov.ctx
		if mem <= 0 {
			mem = gov.highWater
		}
	}
	if mem > 0 {
		opts = append(opts, grb.WithMemoryLimit(mem))
	}
	return grb.NewContext(grb.NonBlocking, parent, opts...)
}

// Server serves concurrent algorithm queries over a shared graph set. The
// graph map is an atomic snapshot — Reload/SetGraphs swap the whole map and
// in-flight requests keep whichever snapshot they resolved — and all
// per-request mutable state lives in the request's own Context, so handlers
// need no locks around the graph data itself.
type Server struct {
	graphs  atomic.Pointer[map[string]*Graph]
	cfg     Config
	tenants sync.Map // name -> *tenant
	mux     *http.ServeMux
	gov     *memGovernor // nil when cfg.MemHighWater == 0
	lc      *lifecycle
}

// graphMap returns the current graph snapshot.
func (s *Server) graphMap() map[string]*Graph { return *s.graphs.Load() }

// NewServer builds the handler tree over the given graphs. Queries name
// their graph with ?graph=; when exactly one graph is loaded it is the
// default.
func NewServer(graphs []*Graph, cfg Config) *Server {
	s := &Server{cfg: cfg, lc: newLifecycle()}
	s.SetGraphs(graphs)
	if cfg.MemHighWater > 0 {
		s.gov = newMemGovernor(cfg.MemHighWater)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/graphs", s.handleGraphs)
	mux.Handle("/metrics", grb.MetricsHandler())
	mux.HandleFunc("/query/bfs", s.query("bfs", s.runBFS))
	mux.HandleFunc("/query/sssp", s.query("sssp", s.runSSSP))
	mux.HandleFunc("/query/pagerank", s.query("pagerank", s.runPageRank))
	mux.HandleFunc("/query/triangles", s.query("triangles", s.runTriangles))
	mux.HandleFunc("/query/ego", s.query("ego", s.runEgo))
	s.mux = mux
	return s
}

// Handler returns the root handler: queries, /graphs, /healthz, and the
// ops endpoint (/metrics = grb.MetricsHandler, whose document includes the
// per-tenant request counters this package records).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	type graphInfo struct {
		Name  string `json:"name"`
		N     int    `json:"n"`
		Edges int    `json:"edges"`
	}
	graphs := s.graphMap()
	out := make([]graphInfo, 0, len(graphs))
	for _, g := range graphs {
		out = append(out, graphInfo{Name: g.Name, N: g.N, Edges: g.Edges})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

// tenantFor resolves the caller's tenant from the X-Grb-Tenant header or
// ?tenant= parameter ("default" otherwise) and returns its runtime state,
// creating it from the config table — or the default envelope — on first
// sight.
func (s *Server) tenantFor(r *http.Request) *tenant {
	name := r.Header.Get("X-Grb-Tenant")
	if name == "" {
		name = r.URL.Query().Get("tenant")
	}
	if name == "" {
		name = "default"
	}
	if t, ok := s.tenants.Load(name); ok {
		return t.(*tenant)
	}
	cfg, ok := s.cfg.Tenants[name]
	if !ok {
		cfg = s.cfg.Default
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = s.cfg.Default.Deadline
	}
	t := &tenant{name: name, cfg: cfg}
	if cfg.MaxInFlight > 0 {
		t.limiter = newAIMDLimiter(name, cfg.MaxInFlight, cfg.MinInFlight, cfg.MaxQueue,
			cfg.P99Target, 0)
	}
	if cfg.BreakerThreshold > 0 {
		t.breaker = newBreaker(name, cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	actual, _ := s.tenants.LoadOrStore(name, t)
	return actual.(*tenant)
}

// errBody is the JSON error envelope: the mapped Info code rides along so
// clients can distinguish "over budget" from "bad request" without parsing
// prose, and shed responses carry the control-plane state that produced
// them so clients can back off intelligently.
type errBody struct {
	Error    string    `json:"error"`
	Info     int       `json:"info,omitempty"`
	InfoName string    `json:"info_name,omitempty"`
	Shed     *shedInfo `json:"shed,omitempty"`
}

// shedInfo explains an admission rejection: which control loop shed the
// request, how long to back off, and that loop's instantaneous state.
type shedInfo struct {
	Reason       string            `json:"reason"`
	RetryAfterMs int64             `json:"retry_after_ms"`
	Limiter      *limiterSnapshot  `json:"limiter,omitempty"`
	Breaker      *breakerSnapshot  `json:"breaker,omitempty"`
	Governor     *governorSnapshot `json:"governor,omitempty"`
}

// writeShed answers an admission rejection: Retry-After header (whole
// seconds, ceiling, minimum 1) plus the structured shed body.
func (s *Server) writeShed(w http.ResponseWriter, status int, tn *tenant, reason, msg string, retry time.Duration) {
	if retry <= 0 {
		retry = time.Second
	}
	secs := int64(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, errBody{
		Error: msg,
		Shed: &shedInfo{
			Reason:       reason,
			RetryAfterMs: retry.Milliseconds(),
			Limiter:      tn.limiter.snapshot(),
			Breaker:      tn.breaker.snapshot(),
			Governor:     s.gov.snapshot(),
		},
	})
}

// httpStatus maps a query error to its HTTP status — the Info→HTTP
// taxonomy: resource exhaustion inside the engine is the server's capacity
// (507), a blown deadline is the request's time budget (408), admission
// rejection is backpressure (429, applied before execution), and the API
// errors are the caller's fault (400).
func httpStatus(err error) int {
	var nf notFoundError
	if errors.As(err, &nf) {
		return http.StatusNotFound
	}
	switch grb.Code(err) {
	case grb.Canceled:
		return http.StatusRequestTimeout // 408
	case grb.OutOfMemory, grb.InsufficientSpace:
		return http.StatusInsufficientStorage // 507
	case grb.InvalidValue, grb.InvalidIndex, grb.NullPointer, grb.DomainMismatch,
		grb.DimensionMismatch, grb.OutputNotEmpty, grb.EmptyObject, grb.IndexOutOfBounds:
		return http.StatusBadRequest
	case grb.NotImplemented:
		return http.StatusNotImplemented
	case grb.Panic:
		// A recovered handler panic: the request failed, the process lives.
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// classify maps one executed request's result to the adaptive-control
// outcome: capacity signals halve the AIMD window, execution failures feed
// the breaker, client errors feed nothing.
func classify(err error) outcome {
	if err == nil {
		return outcomeOK
	}
	switch httpStatus(err) {
	case http.StatusRequestTimeout, http.StatusInsufficientStorage:
		return outcomeOverload
	case http.StatusBadRequest, http.StatusNotFound, http.StatusNotImplemented:
		return outcomeNeutral
	default:
		return outcomeFailure
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		return // headers are out; nothing useful left to send
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	body := errBody{Error: err.Error()}
	var ge *grb.Error
	if errors.As(err, &ge) {
		body.Info = int(ge.Info)
		body.InfoName = ge.Info.String()
	}
	writeJSON(w, status, body)
}

// runRecovered executes one handler with a panic fence: a panicking
// algorithm is converted to a GrB_PANIC error for this request alone, so
// the slot, breaker, and governor bookkeeping that follows still runs and
// the process survives.
func runRecovered(run func(r *http.Request, ctx *grb.Context) (any, error), r *http.Request, ctx *grb.Context) (body any, err error) {
	defer func() {
		if p := recover(); p != nil {
			obsv.ServeAdd("panics.recovered", 1)
			body, err = nil, &grb.Error{Info: grb.Panic, Msg: fmt.Sprintf("handler panic: %v", p)}
		}
	}()
	return run(r, ctx)
}

// query wraps one algorithm endpoint in the full request lifecycle:
// tenant resolution → drain gate → circuit breaker → adaptive concurrency
// admission (AIMD window + deadline-aware bounded queue) → memory-governor
// admission → per-request Context derivation (deadline anchored at arrival)
// → client-disconnect watcher → panic-fenced execution → Info→HTTP mapping
// → adaptive-loop feedback → per-tenant accounting. run receives the
// request and its Context; it must allocate every grb object it creates
// inside that context (the lagraph algorithms inherit it from the graph
// views).
func (s *Server) query(op string, run func(r *http.Request, ctx *grb.Context) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		arrival := time.Now()
		tn := s.tenantFor(r)
		failed := true
		defer func() {
			obsv.NoteLabeled(tn.name, op, time.Since(arrival).Nanoseconds(), failed)
		}()
		if s.Draining() {
			s.writeShed(w, http.StatusServiceUnavailable, tn, "draining",
				"server is draining; not accepting new queries", time.Second)
			return
		}
		if ok, wait := tn.breaker.allow(arrival); !ok {
			s.writeShed(w, http.StatusServiceUnavailable, tn, "breaker",
				fmt.Sprintf("tenant %q: circuit open after repeated failures", tn.name), wait)
			return
		}
		var deadline time.Time
		if tn.cfg.Deadline > 0 {
			deadline = arrival.Add(tn.cfg.Deadline)
		}
		admit, _ := tn.limiter.acquire(deadline, r.Context().Done(), s.lc.drainCh)
		switch admit {
		case admitGranted:
		case admitShedQueueFull:
			s.writeShed(w, http.StatusTooManyRequests, tn, "queue_full",
				fmt.Sprintf("tenant %q: in-flight limit %d reached", tn.name, tn.cfg.MaxInFlight), 0)
			return
		case admitShedDeadline:
			// Queued past its own deadline: drop without executing — running
			// it now could only produce a late 408 at full cost.
			s.writeShed(w, http.StatusRequestTimeout, tn, "queue_deadline",
				fmt.Sprintf("tenant %q: deadline expired while queued", tn.name), 0)
			return
		case admitShedDrain:
			s.writeShed(w, http.StatusServiceUnavailable, tn, "draining",
				"server began draining while request was queued", time.Second)
			return
		case admitShedGone:
			// The client disconnected while queued; nobody is listening.
			return
		}
		slotHeld := true
		releaseSlot := func(o outcome, lat time.Duration) {
			if slotHeld {
				slotHeld = false
				tn.limiter.release(o, lat)
			}
		}
		defer releaseSlot(outcomeNeutral, 0)
		if ok, reason, retry := s.gov.admit(tn.name, op); !ok {
			releaseSlot(outcomeNeutral, 0)
			s.writeShed(w, http.StatusTooManyRequests, tn, reason,
				fmt.Sprintf("tenant %q: memory governor rejected request (%s)", tn.name, reason), retry)
			return
		}
		ctx, err := tn.newRequestCtx(arrival, s.gov)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		defer func() {
			_ = ctx.Free() //grblint:ignore infocheck -- request teardown; the response is already decided
		}()
		s.gov.enter(tn.name, ctx)
		defer s.gov.depart(tn.name, op, ctx)
		s.lc.register(ctx)
		defer s.lc.unregister(ctx)
		// A client that goes away cancels its own query — at abort-probe
		// granularity — so an abandoned expensive request cannot occupy the
		// engine. The done channel unblocks the watcher on normal completion.
		done := make(chan struct{})
		defer close(done)
		go func() {
			defer func() {
				_ = recover() // watcher must never take the process down
			}()
			select {
			case <-r.Context().Done():
				_ = ctx.Cancel() //grblint:ignore infocheck -- best-effort abort of an abandoned request
			case <-done:
			}
		}()
		body, err := runRecovered(run, r, ctx)
		o := classify(err)
		releaseSlot(o, time.Since(arrival))
		tn.breaker.note(o, time.Now())
		if err != nil {
			writeErr(w, httpStatus(err), err)
			return
		}
		failed = false
		writeJSON(w, http.StatusOK, body)
	}
}

// graphParam resolves the ?graph= parameter; with a single loaded graph the
// parameter is optional.
func (s *Server) graphParam(r *http.Request) (*Graph, error) {
	graphs := s.graphMap()
	name := r.URL.Query().Get("graph")
	if name == "" && len(graphs) == 1 {
		for _, g := range graphs {
			return g, nil
		}
	}
	if g, ok := graphs[name]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("unknown graph %q", name)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &grb.Error{Info: grb.InvalidValue, Msg: fmt.Sprintf("parameter %s=%q is not an integer", name, v)}
	}
	return n, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &grb.Error{Info: grb.InvalidValue, Msg: fmt.Sprintf("parameter %s=%q is not a number", name, v)}
	}
	return f, nil
}

func (s *Server) runBFS(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	src, err := intParam(r, "src", 0)
	if err != nil {
		return nil, err
	}
	view, err := g.pattern.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	levels, err := lagraph.BFSLevels(view, src)
	if err != nil {
		return nil, err
	}
	idx, vals, err := levels.ExtractTuples()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"graph": g.Name, "src": src, "reached": len(idx),
		"indices": idx, "levels": vals,
	}, nil
}

func (s *Server) runSSSP(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	src, err := intParam(r, "src", 0)
	if err != nil {
		return nil, err
	}
	view, err := g.weights.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	dist, err := lagraph.SSSP(view, src)
	if err != nil {
		return nil, err
	}
	idx, vals, err := dist.ExtractTuples()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"graph": g.Name, "src": src, "reached": len(idx),
		"indices": idx, "dist": vals,
	}, nil
}

func (s *Server) runPageRank(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	damping, err := floatParam(r, "damping", 0.85)
	if err != nil {
		return nil, err
	}
	tol, err := floatParam(r, "tol", 1e-6)
	if err != nil {
		return nil, err
	}
	maxIter, err := intParam(r, "maxiter", 50)
	if err != nil {
		return nil, err
	}
	view, err := g.weights.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	res, err := lagraph.PageRank(view, damping, tol, maxIter)
	if err != nil {
		return nil, err
	}
	idx, vals, err := res.Ranks.ExtractTuples()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"graph": g.Name, "iterations": res.Iterations,
		"indices": idx, "ranks": vals,
	}, nil
}

func (s *Server) runTriangles(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	view, err := g.pattern.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	count, err := lagraph.TriangleCount(view)
	if err != nil {
		return nil, err
	}
	return map[string]any{"graph": g.Name, "triangles": count}, nil
}

func (s *Server) runEgo(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	src, err := intParam(r, "src", 0)
	if err != nil {
		return nil, err
	}
	hops, err := intParam(r, "hops", 1)
	if err != nil {
		return nil, err
	}
	view, err := g.weights.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	sub, verts, err := lagraph.EgoNet(view, src, hops)
	if err != nil {
		return nil, err
	}
	si, sj, sx, err := sub.ExtractTuples()
	if err != nil {
		return nil, err
	}
	// Report edges in original vertex ids so the response stands alone.
	esrc := make([]grb.Index, len(si))
	edst := make([]grb.Index, len(sj))
	for k := range si {
		esrc[k] = verts[si[k]]
		edst[k] = verts[sj[k]]
	}
	return map[string]any{
		"graph": g.Name, "src": src, "hops": hops,
		"vertices": verts, "edge_src": esrc, "edge_dst": edst, "edge_w": sx,
	}, nil
}

// notFoundError tags "unknown graph" so httpStatus can answer 404 instead
// of the generic 500.
type notFoundError struct{ error }

func notFound(err error) error { return notFoundError{err} }

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/internal/obsv"
	"github.com/grblas/grb/lagraph"
)

// TenantConfig is one tenant's admission-control envelope. Zero values mean
// "no limit" for that axis; the server default fills unset deadlines.
type TenantConfig struct {
	Deadline    time.Duration // per-request wall-clock budget
	MemoryBytes int64         // per-request memory budget (grb.WithMemoryLimit)
	MaxInFlight int           // concurrent requests before 429
}

// Config carries the per-tenant table plus the envelope applied to tenants
// the table does not name (including the implicit "default" tenant).
type Config struct {
	Default TenantConfig
	Tenants map[string]TenantConfig
}

// tenant is the runtime state for one tenant name: its config plus the
// in-flight semaphore, created once on first sight.
type tenant struct {
	name  string
	cfg   TenantConfig
	slots chan struct{} // nil when MaxInFlight == 0
}

func (t *tenant) acquire() (release func(), ok bool) {
	if t.slots == nil {
		return func() {}, true
	}
	select {
	case t.slots <- struct{}{}:
		return func() { <-t.slots }, true
	default:
		return nil, false
	}
}

// newRequestCtx derives the §IV per-request context from the tenant
// envelope: always cancellable (for client disconnects), with the deadline
// and memory budget layered on when configured. The parent is the library
// top context, so shared snapshots — owned by the top context — remain
// legal operands under the hierarchical sharing rule.
func (t *tenant) newRequestCtx() (*grb.Context, error) {
	opts := []grb.ContextOption{grb.WithCancel()}
	if t.cfg.Deadline > 0 {
		opts = append(opts, grb.WithDeadline(time.Now().Add(t.cfg.Deadline)))
	}
	if t.cfg.MemoryBytes > 0 {
		opts = append(opts, grb.WithMemoryLimit(t.cfg.MemoryBytes))
	}
	return grb.NewContext(grb.NonBlocking, nil, opts...)
}

// Server serves concurrent algorithm queries over a fixed set of shared
// graphs. The graph map is immutable after NewServer; all per-request
// mutable state lives in the request's own Context, so handlers need no
// locks around the graph data itself.
type Server struct {
	graphs  map[string]*Graph
	cfg     Config
	tenants sync.Map // name -> *tenant
	mux     *http.ServeMux
}

// NewServer builds the handler tree over the given graphs. Queries name
// their graph with ?graph=; when exactly one graph is loaded it is the
// default.
func NewServer(graphs []*Graph, cfg Config) *Server {
	s := &Server{graphs: make(map[string]*Graph, len(graphs)), cfg: cfg}
	for _, g := range graphs {
		s.graphs[g.Name] = g
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/graphs", s.handleGraphs)
	mux.Handle("/metrics", grb.MetricsHandler())
	mux.HandleFunc("/query/bfs", s.query("bfs", s.runBFS))
	mux.HandleFunc("/query/sssp", s.query("sssp", s.runSSSP))
	mux.HandleFunc("/query/pagerank", s.query("pagerank", s.runPageRank))
	mux.HandleFunc("/query/triangles", s.query("triangles", s.runTriangles))
	mux.HandleFunc("/query/ego", s.query("ego", s.runEgo))
	s.mux = mux
	return s
}

// Handler returns the root handler: queries, /graphs, /healthz, and the
// ops endpoint (/metrics = grb.MetricsHandler, whose document includes the
// per-tenant request counters this package records).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	type graphInfo struct {
		Name  string `json:"name"`
		N     int    `json:"n"`
		Edges int    `json:"edges"`
	}
	out := make([]graphInfo, 0, len(s.graphs))
	for _, g := range s.graphs {
		out = append(out, graphInfo{Name: g.Name, N: g.N, Edges: g.Edges})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

// tenantFor resolves the caller's tenant from the X-Grb-Tenant header or
// ?tenant= parameter ("default" otherwise) and returns its runtime state,
// creating it from the config table — or the default envelope — on first
// sight.
func (s *Server) tenantFor(r *http.Request) *tenant {
	name := r.Header.Get("X-Grb-Tenant")
	if name == "" {
		name = r.URL.Query().Get("tenant")
	}
	if name == "" {
		name = "default"
	}
	if t, ok := s.tenants.Load(name); ok {
		return t.(*tenant)
	}
	cfg, ok := s.cfg.Tenants[name]
	if !ok {
		cfg = s.cfg.Default
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = s.cfg.Default.Deadline
	}
	t := &tenant{name: name, cfg: cfg}
	if cfg.MaxInFlight > 0 {
		t.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	actual, _ := s.tenants.LoadOrStore(name, t)
	return actual.(*tenant)
}

// errBody is the JSON error envelope: the mapped Info code rides along so
// clients can distinguish "over budget" from "bad request" without parsing
// prose.
type errBody struct {
	Error    string `json:"error"`
	Info     int    `json:"info,omitempty"`
	InfoName string `json:"info_name,omitempty"`
}

// httpStatus maps a query error to its HTTP status — the Info→HTTP
// taxonomy: resource exhaustion inside the engine is the server's capacity
// (507), a blown deadline is the request's time budget (408), admission
// rejection is backpressure (429, applied before execution), and the API
// errors are the caller's fault (400).
func httpStatus(err error) int {
	var nf notFoundError
	if errors.As(err, &nf) {
		return http.StatusNotFound
	}
	switch grb.Code(err) {
	case grb.Canceled:
		return http.StatusRequestTimeout // 408
	case grb.OutOfMemory, grb.InsufficientSpace:
		return http.StatusInsufficientStorage // 507
	case grb.InvalidValue, grb.InvalidIndex, grb.NullPointer, grb.DomainMismatch,
		grb.DimensionMismatch, grb.OutputNotEmpty, grb.EmptyObject, grb.IndexOutOfBounds:
		return http.StatusBadRequest
	case grb.NotImplemented:
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		return // headers are out; nothing useful left to send
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	body := errBody{Error: err.Error()}
	var ge *grb.Error
	if errors.As(err, &ge) {
		body.Info = int(ge.Info)
		body.InfoName = ge.Info.String()
	}
	writeJSON(w, status, body)
}

// query wraps one algorithm endpoint in the full request lifecycle:
// tenant resolution → admission (in-flight slot) → per-request Context
// derivation → client-disconnect watcher → execution → Info→HTTP mapping →
// per-tenant accounting. run receives the request and its Context; it must
// allocate every grb object it creates inside that context (the lagraph
// algorithms inherit it from the graph views).
func (s *Server) query(op string, run func(r *http.Request, ctx *grb.Context) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tn := s.tenantFor(r)
		failed := true
		defer func() {
			obsv.NoteLabeled(tn.name, op, time.Since(start).Nanoseconds(), failed)
		}()
		release, ok := tn.acquire()
		if !ok {
			writeJSON(w, http.StatusTooManyRequests,
				errBody{Error: fmt.Sprintf("tenant %q: in-flight limit %d reached", tn.name, tn.cfg.MaxInFlight)})
			return
		}
		defer release()
		ctx, err := tn.newRequestCtx()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		defer func() {
			_ = ctx.Free() //grblint:ignore infocheck -- request teardown; the response is already decided
		}()
		// A client that goes away cancels its own query — at abort-probe
		// granularity — so an abandoned expensive request cannot occupy the
		// engine. The done channel unblocks the watcher on normal completion.
		done := make(chan struct{})
		defer close(done)
		go func() {
			defer func() {
				_ = recover() // watcher must never take the process down
			}()
			select {
			case <-r.Context().Done():
				_ = ctx.Cancel() //grblint:ignore infocheck -- best-effort abort of an abandoned request
			case <-done:
			}
		}()
		body, err := run(r, ctx)
		if err != nil {
			writeErr(w, httpStatus(err), err)
			return
		}
		failed = false
		writeJSON(w, http.StatusOK, body)
	}
}

// graphParam resolves the ?graph= parameter; with a single loaded graph the
// parameter is optional.
func (s *Server) graphParam(r *http.Request) (*Graph, error) {
	name := r.URL.Query().Get("graph")
	if name == "" && len(s.graphs) == 1 {
		for _, g := range s.graphs {
			return g, nil
		}
	}
	if g, ok := s.graphs[name]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("unknown graph %q", name)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &grb.Error{Info: grb.InvalidValue, Msg: fmt.Sprintf("parameter %s=%q is not an integer", name, v)}
	}
	return n, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &grb.Error{Info: grb.InvalidValue, Msg: fmt.Sprintf("parameter %s=%q is not a number", name, v)}
	}
	return f, nil
}

func (s *Server) runBFS(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	src, err := intParam(r, "src", 0)
	if err != nil {
		return nil, err
	}
	view, err := g.pattern.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	levels, err := lagraph.BFSLevels(view, src)
	if err != nil {
		return nil, err
	}
	idx, vals, err := levels.ExtractTuples()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"graph": g.Name, "src": src, "reached": len(idx),
		"indices": idx, "levels": vals,
	}, nil
}

func (s *Server) runSSSP(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	src, err := intParam(r, "src", 0)
	if err != nil {
		return nil, err
	}
	view, err := g.weights.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	dist, err := lagraph.SSSP(view, src)
	if err != nil {
		return nil, err
	}
	idx, vals, err := dist.ExtractTuples()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"graph": g.Name, "src": src, "reached": len(idx),
		"indices": idx, "dist": vals,
	}, nil
}

func (s *Server) runPageRank(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	damping, err := floatParam(r, "damping", 0.85)
	if err != nil {
		return nil, err
	}
	tol, err := floatParam(r, "tol", 1e-6)
	if err != nil {
		return nil, err
	}
	maxIter, err := intParam(r, "maxiter", 50)
	if err != nil {
		return nil, err
	}
	view, err := g.weights.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	res, err := lagraph.PageRank(view, damping, tol, maxIter)
	if err != nil {
		return nil, err
	}
	idx, vals, err := res.Ranks.ExtractTuples()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"graph": g.Name, "iterations": res.Iterations,
		"indices": idx, "ranks": vals,
	}, nil
}

func (s *Server) runTriangles(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	view, err := g.pattern.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	count, err := lagraph.TriangleCount(view)
	if err != nil {
		return nil, err
	}
	return map[string]any{"graph": g.Name, "triangles": count}, nil
}

func (s *Server) runEgo(r *http.Request, ctx *grb.Context) (any, error) {
	g, err := s.graphParam(r)
	if err != nil {
		return nil, notFound(err)
	}
	src, err := intParam(r, "src", 0)
	if err != nil {
		return nil, err
	}
	hops, err := intParam(r, "hops", 1)
	if err != nil {
		return nil, err
	}
	view, err := g.weights.ViewInContext(ctx)
	if err != nil {
		return nil, err
	}
	sub, verts, err := lagraph.EgoNet(view, src, hops)
	if err != nil {
		return nil, err
	}
	si, sj, sx, err := sub.ExtractTuples()
	if err != nil {
		return nil, err
	}
	// Report edges in original vertex ids so the response stands alone.
	esrc := make([]grb.Index, len(si))
	edst := make([]grb.Index, len(sj))
	for k := range si {
		esrc[k] = verts[si[k]]
		edst[k] = verts[sj[k]]
	}
	return map[string]any{
		"graph": g.Name, "src": src, "hops": hops,
		"vertices": verts, "edge_src": esrc, "edge_dst": edst, "edge_w": sx,
	}, nil
}

// notFoundError tags "unknown graph" so httpStatus can answer 404 instead
// of the generic 500.
type notFoundError struct{ error }

func notFound(err error) error { return notFoundError{err} }

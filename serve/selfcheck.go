package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// SelfCheck is the serve smoke gate behind `grbserve -selfcheck` and the
// ci.sh serve tier: it stands up a real HTTP server on a loopback port
// over small generated graphs and drives the whole contract — every
// endpoint answers 200 with valid JSON, a deliberately over-budget tenant
// gets 507, a no-time tenant gets 408, admission rejection gets 429, the
// 404/400 paths map, /metrics parses and carries the per-tenant counters,
// and a short closed-loop burst of mixed tenants stays clean. It returns
// nil only if every probe passed.
func SelfCheck() error {
	g1, err := ParseGenSpec("rmat=rmat:8")
	if err != nil {
		return err
	}
	g2, err := ParseGenSpec("ring=grid:12")
	if err != nil {
		return err
	}
	cfg := Config{
		Default: TenantConfig{Deadline: 10 * time.Second},
		Tenants: map[string]TenantConfig{
			"starved": {Deadline: 10 * time.Second, MemoryBytes: 1},
			"notime":  {Deadline: time.Nanosecond},
			"gated":   {Deadline: 10 * time.Second, MaxInFlight: 1},
		},
	}
	s := NewServer([]*Graph{g1, g2}, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path, tenant string) (int, []byte, error) {
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			return 0, nil, err
		}
		if tenant != "" {
			req.Header.Set("X-Grb-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}
	expect := func(path, tenant string, want int) error {
		status, body, err := get(path, tenant)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		if status != want {
			return fmt.Errorf("GET %s (tenant %q): status %d, want %d: %s", path, tenant, status, want, body)
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("GET %s: response is not JSON: %w", path, err)
		}
		return nil
	}

	// Every endpoint answers 200 with valid JSON, on both graphs.
	for _, path := range []string{
		"/healthz", "/graphs", "/metrics",
		"/query/bfs?graph=rmat&src=0",
		"/query/sssp?graph=rmat&src=0",
		"/query/pagerank?graph=rmat&maxiter=20",
		"/query/triangles?graph=rmat",
		"/query/ego?graph=rmat&src=0&hops=2",
		"/query/bfs?graph=ring&src=0",
		"/query/triangles?graph=ring",
	} {
		if err := expect(path, "", http.StatusOK); err != nil {
			return err
		}
	}

	// The error taxonomy: over-budget → 507, out-of-time → 408,
	// unknown graph → 404, bad parameter → 400.
	if err := expect("/query/triangles?graph=rmat", "starved", http.StatusInsufficientStorage); err != nil {
		return err
	}
	if err := expect("/query/pagerank?graph=rmat", "notime", http.StatusRequestTimeout); err != nil {
		return err
	}
	if err := expect("/query/bfs?graph=nope", "", http.StatusNotFound); err != nil {
		return err
	}
	if err := expect("/query/bfs?graph=rmat&src=banana", "", http.StatusBadRequest); err != nil {
		return err
	}

	// Admission rejection: hold the gated tenant's only slot and probe.
	req, err := http.NewRequest("GET", ts.URL+"/query/bfs", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Grb-Tenant", "gated")
	tn := s.tenantFor(req)
	release, ok := tn.acquire()
	if !ok {
		return fmt.Errorf("gated tenant slot unexpectedly busy")
	}
	if err := expect("/query/bfs?graph=rmat", "gated", http.StatusTooManyRequests); err != nil {
		release()
		return err
	}
	release()
	if err := expect("/query/bfs?graph=rmat", "gated", http.StatusOK); err != nil {
		return err
	}

	// Closed-loop burst: mixed tenants and endpoints, all clean, while the
	// starved tenant keeps failing in its mapped way — neighbors unharmed.
	paths := []string{
		"/query/bfs?graph=rmat&src=1",
		"/query/sssp?graph=ring&src=2",
		"/query/triangles?graph=ring",
		"/query/ego?graph=rmat&src=3&hops=1",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Errorf("selfcheck worker panic: %v", p)
				}
				wg.Done()
			}()
			for i := 0; i < 6; i++ {
				if w == 3 {
					if err := expect("/query/triangles?graph=rmat", "starved", http.StatusInsufficientStorage); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err := expect(paths[(w+i)%len(paths)], fmt.Sprintf("team%d", w), http.StatusOK); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// The ops endpoint reflects the tenants that just ran.
	status, body, err := get("/metrics", "")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d err %v", status, err)
	}
	var doc struct {
		Tenants map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("/metrics does not parse: %w", err)
	}
	if doc.Tenants["starved"].Requests == 0 || doc.Tenants["starved"].Errors == 0 {
		return fmt.Errorf("/metrics tenants section missing starved tenant activity: %+v", doc.Tenants)
	}
	if doc.Tenants["team0"].Requests == 0 || doc.Tenants["team0"].Errors != 0 {
		return fmt.Errorf("/metrics tenants section wrong for team0: %+v", doc.Tenants)
	}
	return nil
}

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"github.com/grblas/grb/internal/faults"
)

// SelfCheck is the serve smoke gate behind `grbserve -selfcheck` and the
// ci.sh serve tier: it stands up a real HTTP server on a loopback port
// over small generated graphs and drives the whole contract — every
// endpoint answers 200 with valid JSON, a deliberately over-budget tenant
// gets 507, a no-time tenant gets 408, admission rejection gets 429, the
// 404/400 paths map, /metrics parses and carries the per-tenant counters,
// a short closed-loop burst of mixed tenants stays clean, and graceful
// shutdown drains: with a slow query in flight, new requests shed 503
// ("draining") while the in-flight one completes 200. It returns nil only
// if every probe passed.
func SelfCheck() error {
	g1, err := ParseGenSpec("rmat=rmat:8")
	if err != nil {
		return err
	}
	g2, err := ParseGenSpec("ring=grid:12")
	if err != nil {
		return err
	}
	cfg := Config{
		Default: TenantConfig{Deadline: 10 * time.Second},
		Tenants: map[string]TenantConfig{
			"starved": {Deadline: 10 * time.Second, MemoryBytes: 1},
			"notime":  {Deadline: time.Nanosecond},
			"gated":   {Deadline: 10 * time.Second, MaxInFlight: 1},
		},
	}
	s := NewServer([]*Graph{g1, g2}, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path, tenant string) (int, []byte, error) {
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			return 0, nil, err
		}
		if tenant != "" {
			req.Header.Set("X-Grb-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}
	expect := func(path, tenant string, want int) error {
		status, body, err := get(path, tenant)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		if status != want {
			return fmt.Errorf("GET %s (tenant %q): status %d, want %d: %s", path, tenant, status, want, body)
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("GET %s: response is not JSON: %w", path, err)
		}
		return nil
	}

	// Every endpoint answers 200 with valid JSON, on both graphs.
	for _, path := range []string{
		"/healthz", "/graphs", "/metrics",
		"/query/bfs?graph=rmat&src=0",
		"/query/sssp?graph=rmat&src=0",
		"/query/pagerank?graph=rmat&maxiter=20",
		"/query/triangles?graph=rmat",
		"/query/ego?graph=rmat&src=0&hops=2",
		"/query/bfs?graph=ring&src=0",
		"/query/triangles?graph=ring",
	} {
		if err := expect(path, "", http.StatusOK); err != nil {
			return err
		}
	}

	// The error taxonomy: over-budget → 507, out-of-time → 408,
	// unknown graph → 404, bad parameter → 400.
	if err := expect("/query/triangles?graph=rmat", "starved", http.StatusInsufficientStorage); err != nil {
		return err
	}
	if err := expect("/query/pagerank?graph=rmat", "notime", http.StatusRequestTimeout); err != nil {
		return err
	}
	if err := expect("/query/bfs?graph=nope", "", http.StatusNotFound); err != nil {
		return err
	}
	if err := expect("/query/bfs?graph=rmat&src=banana", "", http.StatusBadRequest); err != nil {
		return err
	}

	// Admission rejection: hold the gated tenant's only slot and probe.
	req, err := http.NewRequest("GET", ts.URL+"/query/bfs", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Grb-Tenant", "gated")
	tn := s.tenantFor(req)
	release, ok := tn.acquire()
	if !ok {
		return fmt.Errorf("gated tenant slot unexpectedly busy")
	}
	if err := expect("/query/bfs?graph=rmat", "gated", http.StatusTooManyRequests); err != nil {
		release()
		return err
	}
	release()
	if err := expect("/query/bfs?graph=rmat", "gated", http.StatusOK); err != nil {
		return err
	}

	// Closed-loop burst: mixed tenants and endpoints, all clean, while the
	// starved tenant keeps failing in its mapped way — neighbors unharmed.
	paths := []string{
		"/query/bfs?graph=rmat&src=1",
		"/query/sssp?graph=ring&src=2",
		"/query/triangles?graph=ring",
		"/query/ego?graph=rmat&src=3&hops=1",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Errorf("selfcheck worker panic: %v", p)
				}
				wg.Done()
			}()
			for i := 0; i < 6; i++ {
				if w == 3 {
					if err := expect("/query/triangles?graph=rmat", "starved", http.StatusInsufficientStorage); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err := expect(paths[(w+i)%len(paths)], fmt.Sprintf("team%d", w), http.StatusOK); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Graceful-shutdown probe: with a slow query in flight, Shutdown must
	// stop new admissions (503 + draining shed body) while the in-flight
	// request completes cleanly, and then return nil.
	s2 := NewServer([]*Graph{g1}, Config{Default: TenantConfig{Deadline: 30 * time.Second}})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	faults.Enable(faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: 5 * time.Millisecond})
	defer faults.Disable()
	slow := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				slow <- fmt.Errorf("selfcheck slow query panic: %v", p)
			}
		}()
		resp, err := http.Get(ts2.URL + "/query/pagerank?maxiter=10")
		if err != nil {
			slow <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			slow <- fmt.Errorf("in-flight query during drain: status %d: %s", resp.StatusCode, b)
			return
		}
		slow <- nil
	}()
	probeDeadline := time.Now().Add(5 * time.Second)
	for s2.InFlight() != 1 {
		if time.Now().After(probeDeadline) {
			return fmt.Errorf("selfcheck: slow query never entered flight")
		}
		time.Sleep(time.Millisecond)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				shutdownErr <- fmt.Errorf("selfcheck shutdown panic: %v", p)
			}
		}()
		shutdownErr <- s2.Shutdown(10 * time.Second)
	}()
	for !s2.Draining() {
		if time.Now().After(probeDeadline) {
			return fmt.Errorf("selfcheck: shutdown never began draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts2.URL + "/query/bfs?src=0")
	if err != nil {
		return err
	}
	drainBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("request during drain: status %d, want 503: %s", resp.StatusCode, drainBody)
	}
	var drainDoc struct {
		Shed struct {
			Reason string `json:"reason"`
		} `json:"shed"`
	}
	if err := json.Unmarshal(drainBody, &drainDoc); err != nil || drainDoc.Shed.Reason != "draining" {
		return fmt.Errorf("drain shed body malformed: %s (err %v)", drainBody, err)
	}
	if err := <-slow; err != nil {
		return err
	}
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	faults.Disable()

	// The ops endpoint reflects the tenants that just ran.
	status, body, err := get("/metrics", "")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d err %v", status, err)
	}
	var doc struct {
		Tenants map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("/metrics does not parse: %w", err)
	}
	if doc.Tenants["starved"].Requests == 0 || doc.Tenants["starved"].Errors == 0 {
		return fmt.Errorf("/metrics tenants section missing starved tenant activity: %+v", doc.Tenants)
	}
	if doc.Tenants["team0"].Requests == 0 || doc.Tenants["team0"].Errors != 0 {
		return fmt.Errorf("/metrics tenants section wrong for team0: %+v", doc.Tenants)
	}
	return nil
}

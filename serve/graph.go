// Package serve is the multi-tenant graph query service: it composes the
// library's §IV hierarchical contexts, immutable CSR snapshots, and the obsv
// metrics registry into a long-lived HTTP/JSON server. Graphs are loaded
// once at startup and shared across every request; each request runs under
// its own Context derived from per-tenant config (WithDeadline +
// WithMemoryLimit), so a slow or memory-hungry query degrades or parks
// without disturbing its neighbors.
package serve

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/lagraph"
	"github.com/grblas/grb/mtx"
)

// Graph is one shared, immutable, queryable graph: a boolean pattern for
// the structural algorithms and a float64 weighting for the numeric ones,
// both materialized to CSR snapshots at load time. Queries never mutate
// either matrix — each request wraps them in O(1) snapshot views bound to
// its own context — so any number of tenants read the same graph lock-free.
type Graph struct {
	Name  string
	N     int
	Edges int

	pattern *grb.Matrix[bool]
	weights *grb.Matrix[float64]
}

// buildGraph materializes both representations and warms the shared caches
// (one pull-directed BFS populates the pattern's cached transpose) in the
// top-level context, so the cost of shared artifacts is never charged to
// the first tenant's per-request budget.
func buildGraph(name string, n int, i, j []grb.Index, x []float64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph %q: empty dimension", name)
	}
	pattern, err := grb.NewMatrix[bool](n, n)
	if err != nil {
		return nil, err
	}
	weights, err := grb.NewMatrix[float64](n, n)
	if err != nil {
		return nil, err
	}
	if len(i) > 0 {
		ones := make([]bool, len(i))
		for k := range ones {
			ones[k] = true
		}
		if err := pattern.Build(i, j, ones, grb.LOr); err != nil {
			return nil, err
		}
		if err := weights.Build(i, j, x, grb.Plus[float64]); err != nil {
			return nil, err
		}
	}
	if err := pattern.Wait(grb.Materialize); err != nil {
		return nil, err
	}
	if err := weights.Wait(grb.Materialize); err != nil {
		return nil, err
	}
	nv, err := pattern.Nvals()
	if err != nil {
		return nil, err
	}
	if nv > 0 {
		if _, err := lagraph.BFSLevelsDir(pattern, 0, grb.DirPull); err != nil {
			return nil, fmt.Errorf("graph %q: transpose warmup: %w", name, err)
		}
	}
	return &Graph{Name: name, N: n, Edges: nv, pattern: pattern, weights: weights}, nil
}

// LoadMTX reads a Matrix Market file into a served graph. Rectangular
// files are padded to square so the adjacency algorithms apply; symmetric
// files arrive already expanded from the mtx reader. Pattern files get
// unit weights.
func LoadMTX(name, path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := mtx.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	n := c.Rows
	if c.Cols > n {
		n = c.Cols
	}
	return buildGraph(name, n, c.I, c.J, c.X)
}

// FromGen builds a served graph from a generated edge list with uniform
// [1, 2) weights — deterministic per name so selfchecks and benchmarks are
// reproducible.
func FromGen(name string, g gen.Graph) (*Graph, error) {
	return buildGraph(name, g.N, g.Src, g.Dst, gen.UniformWeights(g, 1, 2, 7))
}

// ParseGenSpec builds a served graph from a "name=kind:arg" generator spec,
// the loader behind grbserve's -gen flag (and the CI smoke tier, which
// must not depend on fixture files). Kinds:
//
//	rmat:S   Graph500 R-MAT at scale S (2^S vertices, edge factor 8), symmetrized
//	path:N   directed path on N vertices
//	grid:N   N×N 2D grid, symmetrized
func ParseGenSpec(spec string) (*Graph, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("gen spec %q: want name=kind:arg", spec)
	}
	kind, argStr, ok := strings.Cut(rest, ":")
	if !ok {
		return nil, fmt.Errorf("gen spec %q: want name=kind:arg", spec)
	}
	arg, err := strconv.Atoi(argStr)
	if err != nil || arg < 1 {
		return nil, fmt.Errorf("gen spec %q: bad argument %q", spec, argStr)
	}
	switch kind {
	case "rmat":
		if arg > 20 {
			return nil, fmt.Errorf("gen spec %q: rmat scale capped at 20", spec)
		}
		return FromGen(name, gen.Graph500RMAT(arg, 8, 42).Symmetrize())
	case "path":
		return FromGen(name, gen.Path(arg))
	case "grid":
		return FromGen(name, gen.Grid2D(arg, arg).Symmetrize())
	default:
		return nil, fmt.Errorf("gen spec %q: unknown kind %q", spec, kind)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/internal/faults"
	"github.com/grblas/grb/internal/obsv"
)

// TestAIMDLimiterWindow pins the control law with an explicit clock:
// multiplicative decrease on overload (rate-limited by the cooldown),
// additive increase on on-target completions, both clamped to [min, max].
func TestAIMDLimiterWindow(t *testing.T) {
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	l := newAIMDLimiter("aimd", 8, 1, 0, 50*time.Millisecond, 100*time.Millisecond)
	for i := 0; i < 8; i++ {
		if !l.tryAcquire() {
			t.Fatalf("slot %d refused under full window", i)
		}
	}
	if l.tryAcquire() {
		t.Fatal("9th slot granted over the ceiling")
	}

	base := time.Now()
	l.releaseAt(outcomeOverload, 0, base)
	if w := l.snapshot().Window; w != 4 {
		t.Fatalf("after 1st overload: window %d, want 4", w)
	}
	// Within the cooldown a second overload must not halve again.
	l.releaseAt(outcomeOverload, 0, base.Add(10*time.Millisecond))
	if w := l.snapshot().Window; w != 4 {
		t.Fatalf("overload inside cooldown: window %d, want 4", w)
	}
	l.releaseAt(outcomeOverload, 0, base.Add(150*time.Millisecond))
	l.releaseAt(outcomeOverload, 0, base.Add(300*time.Millisecond))
	if w := l.snapshot().Window; w != 1 {
		t.Fatalf("after repeated overloads: window %d, want floor 1", w)
	}
	if g := obsv.ServeGet("limiter.window.aimd"); g != 1 {
		t.Fatalf("window gauge = %d, want 1", g)
	}
	// Drain the remaining held slots without feeding the loop.
	for l.snapshot().Inflight > 0 {
		l.releaseAt(outcomeNeutral, 0, base)
	}

	// Additive regrowth: on-target completions climb the window back to the
	// ceiling — one extra slot per window's worth of good finishes — and
	// never past it.
	for i := 0; i < 40; i++ {
		if !l.tryAcquire() {
			t.Fatalf("regrow iter %d: slot refused with empty inflight", i)
		}
		l.releaseAt(outcomeOK, time.Millisecond, base.Add(time.Second))
	}
	if w := l.snapshot().Window; w != 8 {
		t.Fatalf("after regrowth: window %d, want ceiling 8", w)
	}
}

// TestAIMDQueueHandover covers the bounded FIFO queue: a full-window arrival
// waits, the releasing request hands its slot over without a decrement race,
// and arrivals past the queue bound shed immediately.
func TestAIMDQueueHandover(t *testing.T) {
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	l := newAIMDLimiter("queue", 1, 1, 2, 0, 0)
	if !l.tryAcquire() {
		t.Fatal("first slot refused")
	}
	got := make(chan admitResult, 1)
	go func() {
		res, _ := l.acquire(time.Time{}, nil, nil)
		got <- res
	}()
	// Wait for the waiter to join the queue, then fill the rest of it.
	deadline := time.Now().Add(2 * time.Second)
	for l.snapshot().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		res, _ := l.acquire(time.Time{}, nil, nil)
		got <- res
	}()
	for l.snapshot().Queued != 2 {
		if time.Now().After(deadline) {
			t.Fatal("second waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if res, _ := l.acquire(time.Time{}, nil, nil); res != admitShedQueueFull {
		t.Fatalf("over-bound arrival: %v, want admitShedQueueFull", res)
	}
	// Each release hands the slot to the next waiter in turn.
	l.release(outcomeOK, time.Millisecond)
	if res := <-got; res != admitGranted {
		t.Fatalf("first handover: %v", res)
	}
	l.release(outcomeOK, time.Millisecond)
	if res := <-got; res != admitGranted {
		t.Fatalf("second handover: %v", res)
	}
	l.release(outcomeOK, time.Millisecond)
	snap := l.snapshot()
	if snap.Inflight != 0 || snap.Queued != 0 {
		t.Fatalf("after drain: %+v", snap)
	}
}

// TestAIMDQueueDeadline pins the deadline-aware drop: a queued request whose
// deadline expires is shed without ever holding a slot, and the abandoned
// waiter does not swallow the next handover.
func TestAIMDQueueDeadline(t *testing.T) {
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	l := newAIMDLimiter("qd", 1, 1, 4, 0, 0)
	if !l.tryAcquire() {
		t.Fatal("first slot refused")
	}
	res, waited := l.acquire(time.Now().Add(20*time.Millisecond), nil, nil)
	if res != admitShedDeadline {
		t.Fatalf("expired waiter: %v, want admitShedDeadline", res)
	}
	if waited < 15*time.Millisecond {
		t.Fatalf("queue wait %v did not consume the deadline", waited)
	}
	if got := obsv.ServeGet("queue.dropped_deadline.qd"); got != 1 {
		t.Fatalf("dropped_deadline counter = %d, want 1", got)
	}
	// The abandoned waiter must be skipped: release frees the slot outright.
	l.release(outcomeOK, time.Millisecond)
	snap := l.snapshot()
	if snap.Inflight != 0 || snap.Queued != 0 {
		t.Fatalf("after release past abandoned waiter: %+v", snap)
	}
	if !l.tryAcquire() {
		t.Fatal("slot lost to an abandoned waiter")
	}
}

// TestBreakerStateMachine walks the circuit with a fixed clock: closed under
// scattered failures, open at the consecutive-failure threshold, half-open
// single probe after the cooldown, re-open on probe failure, closed on probe
// success.
func TestBreakerStateMachine(t *testing.T) {
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	now := time.Now()
	b := newBreaker("cb", 3, 50*time.Millisecond)

	// Scattered failures never open the circuit: a success resets the run.
	b.note(outcomeFailure, now)
	b.note(outcomeFailure, now)
	b.note(outcomeOK, now)
	b.note(outcomeFailure, now)
	if ok, _ := b.allow(now); !ok {
		t.Fatal("circuit opened below threshold")
	}
	// Three consecutive failures open it.
	b.note(outcomeFailure, now)
	b.note(outcomeFailure, now)
	if ok, retry := b.allow(now); ok || retry <= 0 {
		t.Fatalf("circuit not open at threshold (ok=%v retry=%v)", ok, retry)
	}
	if got := obsv.ServeGet("breaker.opened.cb"); got != 1 {
		t.Fatalf("opened counter = %d, want 1", got)
	}
	// After the cooldown exactly one probe passes; a second is rejected.
	probe := now.Add(60 * time.Millisecond)
	if ok, _ := b.allow(probe); !ok {
		t.Fatal("half-open probe rejected")
	}
	if ok, _ := b.allow(probe); ok {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe failure re-opens; probe success closes.
	b.note(outcomeOverload, probe)
	if ok, _ := b.allow(probe.Add(10 * time.Millisecond)); ok {
		t.Fatal("circuit closed despite failed probe")
	}
	reprobe := probe.Add(70 * time.Millisecond)
	if ok, _ := b.allow(reprobe); !ok {
		t.Fatal("second probe rejected after cooldown")
	}
	b.note(outcomeOK, reprobe)
	if ok, _ := b.allow(reprobe); !ok {
		t.Fatal("circuit not closed after successful probe")
	}
	if snap := b.snapshot(); snap.State != "closed" || snap.ConsecutiveFails != 0 {
		t.Fatalf("final snapshot: %+v", snap)
	}
}

// TestMemGovernorAdmission pins the admission arithmetic with injected live
// readings: global projection past high water sheds, the fair-share carve-out
// binds only above the soft watermark, and headroom admits.
func TestMemGovernorAdmission(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g := newMemGovernor(1000)
	if g.ctx == nil {
		t.Fatal("governor context missing")
	}
	var live, tenantLive int64
	g.liveOverride = func() int64 { return live }
	g.tenantLiveOverride = func(string) int64 { return tenantLive }
	g.est["t/triangles"] = 500

	live = 600
	if ok, reason, retry := g.admit("t", "triangles"); ok || reason != "governor" || retry <= 0 {
		t.Fatalf("projection 1100/1000 admitted (ok=%v reason=%q retry=%v)", ok, reason, retry)
	}
	// Below the soft watermark the fair share does not bind.
	live, tenantLive = 400, 400
	if ok, _, _ := g.admit("t", "triangles"); !ok {
		t.Fatal("request below soft watermark shed")
	}
	// Above it, a tenant over its slice is shed even though the global
	// projection fits. Two other tenants are live, so with the requester the
	// slice is highWater/3 = 333.
	g.inflight["other1"] = map[*grb.Context]struct{}{}
	g.inflight["other2"] = map[*grb.Context]struct{}{}
	live, tenantLive = 750, 400
	g.est["t/bfs"] = 100
	if ok, reason, _ := g.admit("t", "bfs"); ok || reason != "fairshare" {
		t.Fatalf("over-slice tenant admitted (ok=%v reason=%q)", ok, reason)
	}
	if got := obsv.ServeGet("govern.fair_sheds"); got != 1 {
		t.Fatalf("fair_sheds = %d, want 1", got)
	}
	live, tenantLive = 750, 100
	if ok, _, _ := g.admit("t", "bfs"); !ok {
		t.Fatal("under-slice tenant shed")
	}
	delete(g.inflight, "other1")
	delete(g.inflight, "other2")

	// The estimator blends departures: EWMA of observed peaks. A context
	// with no reservations reports peak 0, pulling a seeded estimate down.
	ctx, err := grb.NewContext(grb.NonBlocking, nil, grb.WithMemoryLimit(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = ctx.Free() //grblint:ignore infocheck -- test teardown
	}()
	g.enter("t", ctx)
	g.depart("t", "triangles", ctx)
	if est := g.estimate("t", "triangles"); est != 400 {
		t.Fatalf("EWMA after zero-peak departure: %d, want 0.8*500 = 400", est)
	}
}

// shedResp decodes one shed response body.
type shedResp struct {
	Error string `json:"error"`
	Shed  *struct {
		Reason       string `json:"reason"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	} `json:"shed"`
}

// TestOverloadBattery floods a narrow tenant (window 2, queue 2) with slow
// queries under -race: every response must be 200 or a well-formed shed
// (429 + Retry-After + structured body), some load must actually shed, and
// the server must serve cleanly the moment the storm and faults stop.
func TestOverloadBattery(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g := testGraph(t)
	cfg := Config{
		Default: TenantConfig{Deadline: 30 * time.Second},
		Tenants: map[string]TenantConfig{
			"burst": {Deadline: 5 * time.Second, MaxInFlight: 2, MaxQueue: 2},
		},
	}
	s := NewServer([]*Graph{g}, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults.Enable(faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: 2 * time.Millisecond})
	defer faults.Disable()

	const workers, iters = 8, 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req, err := http.NewRequest("GET", fmt.Sprintf("%s/query/bfs?src=%d", ts.URL, (w+i)%4), nil)
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set("X-Grb-Tenant", "burst")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				var body shedResp
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				mu.Lock()
				counts[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						errs <- fmt.Errorf("429 without Retry-After header")
						return
					}
					if decErr != nil || body.Shed == nil || body.Shed.Reason == "" || body.Shed.RetryAfterMs <= 0 {
						errs <- fmt.Errorf("429 shed body malformed: %+v (err %v)", body, decErr)
						return
					}
				default:
					errs <- fmt.Errorf("unexpected status %d under overload", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Fatalf("8-wide closed loop against window 2 + queue 2 never shed: %v", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("storm starved every request: %v", counts)
	}
	faults.Disable()
	if status, body := get(t, ts.URL+"/query/bfs?src=0", "burst"); status != http.StatusOK {
		t.Fatalf("after storm: %d: %s", status, body)
	}
	if obsv.ServeGet("limiter.sheds.burst") == 0 {
		t.Fatal("limiter shed counter never ticked")
	}
}

// TestBreakerHTTP drives the circuit over HTTP: repeated injected 507s open
// it (503 + shed body without executing), and after the cooldown a clean
// probe closes it again.
func TestBreakerHTTP(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g := testGraph(t)
	cfg := Config{
		Default: TenantConfig{Deadline: 30 * time.Second},
		Tenants: map[string]TenantConfig{
			"flaky": {Deadline: 30 * time.Second, BreakerThreshold: 2, BreakerCooldown: 750 * time.Millisecond},
		},
	}
	ts := httptest.NewServer(NewServer([]*Graph{g}, cfg).Handler())
	defer ts.Close()

	faults.Enable(faults.Rule{Site: "sparse.spgemm.spa", Action: faults.AllocFail})
	defer faults.Disable()
	for i := 0; i < 2; i++ {
		if status, body := get(t, ts.URL+"/query/triangles", "flaky"); status != http.StatusInsufficientStorage {
			t.Fatalf("injected failure %d: status %d: %s", i, status, body)
		}
	}
	status, body := get(t, ts.URL+"/query/triangles", "flaky")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status %d, want 503: %s", status, body)
	}
	var shed shedResp
	if err := json.Unmarshal(body, &shed); err != nil || shed.Shed == nil || shed.Shed.Reason != "breaker" {
		t.Fatalf("breaker shed body: %s (err %v)", body, err)
	}
	if got := obsv.ServeGet("breaker.state.flaky"); got != int64(breakerOpen) {
		t.Fatalf("breaker gauge = %d, want open", got)
	}

	// Heal the backend; after the cooldown the half-open probe succeeds and
	// the tenant is back in business.
	faults.Disable()
	time.Sleep(800 * time.Millisecond)
	if status, body := get(t, ts.URL+"/query/triangles", "flaky"); status != http.StatusOK {
		t.Fatalf("probe after heal: status %d: %s", status, body)
	}
	if status, _ := get(t, ts.URL+"/query/triangles", "flaky"); status != http.StatusOK {
		t.Fatal("circuit did not close after successful probe")
	}
}

// TestShutdownDrain covers the graceful path: draining rejects new requests
// with 503 while the in-flight slow query runs to a clean 200, and Shutdown
// returns nil once the last request leaves.
func TestShutdownDrain(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g := testGraph(t)
	s := NewServer([]*Graph{g}, Config{Default: TenantConfig{Deadline: 30 * time.Second}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults.Enable(faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: 5 * time.Millisecond})
	defer faults.Disable()

	slow := make(chan error, 1)
	go func() {
		status, body := get(t, ts.URL+"/query/pagerank?maxiter=10", "slowpoke")
		if status != http.StatusOK {
			slow <- fmt.Errorf("in-flight query during drain: %d: %s", status, body)
			return
		}
		slow <- nil
	}()
	waitFor(t, "query in flight", func() bool { return s.InFlight() == 1 })

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(10 * time.Second) }()
	waitFor(t, "drain begun", s.Draining)

	status, body := get(t, ts.URL+"/query/bfs?src=0", "latecomer")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d, want 503: %s", status, body)
	}
	var shed shedResp
	if err := json.Unmarshal(body, &shed); err != nil || shed.Shed == nil || shed.Shed.Reason != "draining" {
		t.Fatalf("drain shed body: %s (err %v)", body, err)
	}
	if err := <-slow; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after shutdown: %d", s.InFlight())
	}
	if obsv.ServeGet("drain.state") != 2 {
		t.Fatalf("drain.state = %d, want 2 (drained)", obsv.ServeGet("drain.state"))
	}
}

// TestShutdownCancelsStragglers covers the hard tail of the drain: a query
// that outlives the natural-drain phase is canceled at range granularity,
// surfaces 408 to its client, and Shutdown still returns nil within its
// timeout.
func TestShutdownCancelsStragglers(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g := testGraph(t)
	s := NewServer([]*Graph{g}, Config{Default: TenantConfig{Deadline: 60 * time.Second}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 25ms per range checkpoint across a full 400-iteration PageRank (tol=0
	// disables convergence): seconds of work, far past the natural-drain
	// phase below.
	faults.Enable(faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: 25 * time.Millisecond})
	defer faults.Disable()

	slow := make(chan int, 1)
	go func() {
		status, _ := get(t, ts.URL+"/query/pagerank?maxiter=400&tol=0", "straggler")
		slow <- status
	}()
	waitFor(t, "straggler in flight", func() bool { return s.InFlight() == 1 })

	if err := s.Shutdown(400 * time.Millisecond); err != nil {
		t.Fatalf("shutdown with straggler: %v", err)
	}
	if status := <-slow; status != http.StatusRequestTimeout {
		t.Fatalf("canceled straggler: status %d, want 408", status)
	}
	if got := obsv.ServeGet("drain.canceled"); got != 1 {
		t.Fatalf("drain.canceled = %d, want 1", got)
	}
}

// TestPanicReleasesSlot pins the panic fence: an injected kernel panic maps
// to 500/GrB_PANIC for that request only, and — the regression this guards —
// the tenant's single concurrency slot is released so the next request runs.
func TestPanicReleasesSlot(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g := testGraph(t)
	cfg := Config{
		Default: TenantConfig{Deadline: 30 * time.Second},
		Tenants: map[string]TenantConfig{
			"pan": {Deadline: 30 * time.Second, MaxInFlight: 1},
		},
	}
	s := NewServer([]*Graph{g}, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults.Enable(faults.Rule{Site: "sparse.spgemm.spa", Action: faults.Panic, Hit: 1})
	defer faults.Disable()
	status, body := get(t, ts.URL+"/query/triangles", "pan")
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d: %s", status, body)
	}
	var eb struct {
		InfoName string `json:"info_name"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.InfoName != "GrB_PANIC" {
		t.Fatalf("panic body: %s (err %v)", body, err)
	}
	faults.Disable()
	// The slot must be free: with MaxInFlight=1 a leaked token would make
	// this 429, not 200.
	if status, body := get(t, ts.URL+"/query/triangles", "pan"); status != http.StatusOK {
		t.Fatalf("after panic: status %d (slot leaked?): %s", status, body)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after panic: %d", s.InFlight())
	}
}

// TestReload covers the hot graph swap: the new set serves immediately, the
// old names 404, and a failing or empty loader leaves the serving set
// untouched.
func TestReload(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	g1 := testGraph(t)
	s := NewServer([]*Graph{g1}, Config{Default: TenantConfig{Deadline: 30 * time.Second}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _ := get(t, ts.URL+"/query/triangles?graph=g", ""); status != http.StatusOK {
		t.Fatal("initial graph not served")
	}
	g2, err := ParseGenSpec("fresh=grid:10")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(func() ([]*Graph, error) { return []*Graph{g2}, nil }); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if status, body := get(t, ts.URL+"/query/triangles?graph=fresh", ""); status != http.StatusOK {
		t.Fatalf("reloaded graph: %d: %s", status, body)
	}
	if status, _ := get(t, ts.URL+"/query/triangles?graph=g", ""); status != http.StatusNotFound {
		t.Fatal("stale graph name still resolves")
	}
	// Rollback: a failing loader must not disturb the serving set.
	if err := s.Reload(func() ([]*Graph, error) { return nil, fmt.Errorf("disk gone") }); err == nil {
		t.Fatal("failing loader reported success")
	}
	if err := s.Reload(func() ([]*Graph, error) { return nil, nil }); err == nil {
		t.Fatal("empty loader reported success")
	}
	if status, _ := get(t, ts.URL+"/query/triangles?graph=fresh", ""); status != http.StatusOK {
		t.Fatal("failed reload disturbed the serving set")
	}
	if obsv.ServeGet("reload.ok") != 1 || obsv.ServeGet("reload.fail") != 2 {
		t.Fatalf("reload counters: ok=%d fail=%d", obsv.ServeGet("reload.ok"), obsv.ServeGet("reload.fail"))
	}
}

// TestOverloadSoak is the soak battery behind the advisory CI soak tier:
// mixed tenants, armed delay + sampled allocation faults, a memory governor,
// breakers, and bounded queues, all hammered closed-loop under -race for the
// soak duration (default 1.5s locally; GRB_SOAK stretches it in CI). Every
// response must be a mapped status with well-formed shed metadata, and the
// server must come out of the storm healthy, drained to zero in-flight, and
// serving 200s.
func TestOverloadSoak(t *testing.T) {
	initLib(t)
	obsv.ResetServe()
	t.Cleanup(obsv.ResetServe)
	dur := 1500 * time.Millisecond
	if env := os.Getenv("GRB_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("GRB_SOAK=%q: %v", env, err)
		}
		dur = d
	}
	g := testGraph(t)
	cfg := Config{
		Default:      TenantConfig{Deadline: 10 * time.Second},
		MemHighWater: 64 << 20,
		Tenants: map[string]TenantConfig{
			"soak0": {Deadline: 2 * time.Second, MaxInFlight: 2, MaxQueue: 2,
				BreakerThreshold: 4, BreakerCooldown: 100 * time.Millisecond},
			"soak1": {Deadline: 2 * time.Second, MaxInFlight: 3, MaxQueue: 1},
			"soak2": {Deadline: 50 * time.Millisecond, MaxInFlight: 2},
		},
	}
	s := NewServer([]*Graph{g}, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults.EnableSeeded(7,
		faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: time.Millisecond},
		faults.Rule{Site: "sparse.spgemm.spa", Action: faults.AllocFail, OneIn: 3},
		faults.Rule{Site: "sparse.vxm.spa", Action: faults.AllocFail, OneIn: 4},
	)
	defer faults.Disable()

	paths := []string{
		"/query/bfs?src=1", "/query/triangles", "/query/pagerank?maxiter=8",
		"/query/sssp?src=2", "/query/ego?src=3&hops=1",
	}
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusRequestTimeout:      true, // blown/queue-burned deadline
		http.StatusTooManyRequests:     true, // limiter or governor shed
		http.StatusServiceUnavailable:  true, // open breaker
		http.StatusInsufficientStorage: true, // injected allocation failure
	}
	const workers = 9
	stop := time.Now().Add(dur)
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("soak%d", w%3)
			for i := 0; time.Now().Before(stop); i++ {
				req, err := http.NewRequest("GET", ts.URL+paths[(w+i)%len(paths)], nil)
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set("X-Grb-Tenant", tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				var body shedResp
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				mu.Lock()
				counts[resp.StatusCode]++
				mu.Unlock()
				if !allowed[resp.StatusCode] {
					errs <- fmt.Errorf("soak: unmapped status %d on %s", resp.StatusCode, paths[(w+i)%len(paths)])
					return
				}
				if decErr != nil {
					errs <- fmt.Errorf("soak: status %d body not JSON: %v", resp.StatusCode, decErr)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
					errs <- fmt.Errorf("soak: 429 without Retry-After")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	t.Logf("soak status mix over %v: %v", dur, counts)
	if counts[http.StatusOK] == 0 {
		t.Fatal("soak never completed a request")
	}

	// Storm over: faults off, breakers cool, the server must be clean.
	faults.Disable()
	time.Sleep(150 * time.Millisecond)
	waitFor(t, "in-flight drained", func() bool { return s.InFlight() == 0 })
	if status, _ := get(t, ts.URL+"/healthz", ""); status != http.StatusOK {
		t.Fatal("healthz after soak failed")
	}
	if status, body := get(t, ts.URL+"/query/bfs?src=0", "soak1"); status != http.StatusOK {
		t.Fatalf("after soak: %d: %s", status, body)
	}
	if s.gov != nil && s.gov.live() != 0 {
		t.Fatalf("governor live bytes after drain: %d", s.gov.live())
	}
}

// waitFor polls cond (1ms cadence) until true or the 5s cap, failing the
// test on timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

package serve

import (
	"sync"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/internal/obsv"
)

// govSoftWatermark is the fraction of the high-water mark above which the
// governor starts enforcing per-tenant fair shares in addition to the global
// ceiling.
const govSoftWatermark = 0.7

// govRetryAfter is the backoff hint attached to governor sheds: memory
// pressure drains at request-completion granularity, so a flat second is an
// honest "come back after some requests finish" signal.
const govRetryAfter = time.Second

// memGovernor is the server-wide live-memory admission controller. Every
// request context is parented under the governor's own budgeted context, so
// the §IV budget rollup makes `ctx.MemoryUsed()` a single-atomic-load
// aggregate of all in-flight reservations. Admission projects that live
// figure plus a per-(tenant,op) EWMA of recent request peaks; projections
// past the high-water mark are rejected before any allocation happens
// (429 + Retry-After) instead of failing mid-flight with 507. Above the soft
// watermark each tenant is additionally held to its fair share of the
// remaining headroom, so one hungry tenant cannot starve the rest.
type memGovernor struct {
	highWater int64
	ctx       *grb.Context // budgeted parent for every request context

	mu       sync.Mutex
	inflight map[string]map[*grb.Context]struct{} // tenant -> live request ctxs
	est      map[string]float64                   // "tenant/op" -> EWMA of MemoryPeak

	// Test injection points: when non-nil they replace the live readings so
	// the admission arithmetic can be pinned without staging real allocations.
	liveOverride       func() int64
	tenantLiveOverride func(string) int64
}

// governorSnapshot is the state exposed in shed bodies.
type governorSnapshot struct {
	LiveBytes     int64 `json:"live_bytes"`
	HighWater     int64 `json:"high_water"`
	ActiveTenants int   `json:"active_tenants"`
}

// newMemGovernor builds the governor and its budgeted root context.
// highWater <= 0 disables governing; callers keep a nil governor.
func newMemGovernor(highWater int64) *memGovernor {
	g := &memGovernor{
		highWater: highWater,
		inflight:  make(map[string]map[*grb.Context]struct{}),
		est:       make(map[string]float64),
	}
	ctx, err := grb.NewContext(grb.NonBlocking, nil, grb.WithMemoryLimit(highWater))
	if err != nil {
		// No budget context means no live aggregate; degrade to estimates
		// only rather than refusing to serve.
		obsv.ServeAdd("govern.init_fail", 1)
		return g
	}
	g.ctx = ctx
	return g
}

// live returns the current server-wide in-flight reservation aggregate.
func (g *memGovernor) live() int64 {
	if g.liveOverride != nil {
		return g.liveOverride()
	}
	if g.ctx == nil {
		return 0
	}
	return g.ctx.MemoryUsed()
}

// tenantLive sums the live reservations of one tenant's in-flight request
// contexts. Callers hold g.mu.
func (g *memGovernor) tenantLiveLocked(tenant string) int64 {
	if g.tenantLiveOverride != nil {
		return g.tenantLiveOverride(tenant)
	}
	var sum int64
	for ctx := range g.inflight[tenant] {
		sum += ctx.MemoryUsed()
	}
	return sum
}

// estimate returns the learned per-(tenant,op) peak-memory estimate.
func (g *memGovernor) estimate(tenant, op string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(g.est[tenant+"/"+op])
}

// admit decides whether one request may enter. When it may not, reason is
// "governor" (global projection past high water) or "fairshare" (tenant over
// its carve-out under pressure) and the duration is the Retry-After hint.
func (g *memGovernor) admit(tenant, op string) (ok bool, reason string, retry time.Duration) {
	if g == nil {
		return true, "", 0
	}
	live := g.live()
	obsv.ServeSet("govern.live_bytes", live)
	g.mu.Lock()
	defer g.mu.Unlock()
	est := int64(g.est[tenant+"/"+op])
	if live+est > g.highWater {
		obsv.ServeAdd("govern.sheds", 1)
		return false, "governor", govRetryAfter
	}
	if float64(live) > govSoftWatermark*float64(g.highWater) {
		// Pressure regime: hold each active tenant to an equal slice of the
		// whole budget. The requesting tenant counts as active even before
		// its first admission so a newcomer gets a slice too.
		active := len(g.inflight)
		if _, seen := g.inflight[tenant]; !seen {
			active++
		}
		share := g.highWater / int64(active)
		if g.tenantLiveLocked(tenant)+est > share {
			obsv.ServeAdd("govern.fair_sheds", 1)
			return false, "fairshare", govRetryAfter
		}
	}
	return true, "", 0
}

// enter registers an admitted request's context so its reservations count
// toward the tenant's live figure.
func (g *memGovernor) enter(tenant string, ctx *grb.Context) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.inflight[tenant]
	if m == nil {
		m = make(map[*grb.Context]struct{})
		g.inflight[tenant] = m
	}
	m[ctx] = struct{}{}
}

// depart folds the finished request's observed memory peak into the
// per-(tenant,op) estimator and drops the context from the live set. Call
// before ctx.Free so MemoryPeak still reads the real high-water mark.
func (g *memGovernor) depart(tenant, op string, ctx *grb.Context) {
	if g == nil {
		return
	}
	peak := float64(ctx.MemoryPeak())
	g.mu.Lock()
	if m := g.inflight[tenant]; m != nil {
		delete(m, ctx)
		if len(m) == 0 {
			delete(g.inflight, tenant)
		}
	}
	key := tenant + "/" + op
	if old, seen := g.est[key]; seen {
		g.est[key] = 0.8*old + 0.2*peak
	} else {
		g.est[key] = peak
	}
	g.mu.Unlock()
	obsv.ServeSet("govern.live_bytes", g.live())
}

// snapshot returns the governor's instantaneous state for shed bodies.
func (g *memGovernor) snapshot() *governorSnapshot {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	active := len(g.inflight)
	g.mu.Unlock()
	return &governorSnapshot{LiveBytes: g.live(), HighWater: g.highWater, ActiveTenants: active}
}

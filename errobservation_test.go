package grb_test

// Error observation through the §V nonblocking machinery, driven from the
// outside: a deferred execution error planted in a sequence must surface
// through a materializing Wait, through GrB_error (ErrorString), and through
// the lagraph helpers that consume the object — the exact paths grblint's
// infocheck keeps observable by forbidding discarded results.

import (
	"strings"
	"testing"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/lagraph"
)

func initNonblocking(t *testing.T) {
	t.Helper()
	_ = grb.Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	if err := grb.Init(grb.NonBlocking); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = grb.Finalize() }) //grblint:ignore infocheck -- best-effort teardown
}

// dupMatrix plants the §IX execution error: duplicate coordinates with a nil
// dup operator. In nonblocking mode Build returns Success and parks the
// error in the deferred sequence.
func dupMatrix(t *testing.T, n int) *grb.Matrix[bool] {
	t.Helper()
	a := ck1(grb.NewMatrix[bool](n, n))
	if err := a.Build([]grb.Index{0, 0, 1}, []grb.Index{1, 1, 0}, []bool{true, true, true}, nil); err != nil {
		t.Fatalf("nonblocking Build should defer the duplicate error, got %v now", err)
	}
	return a
}

func TestDeferredErrorViaMaterializingWait(t *testing.T) {
	initNonblocking(t)
	a := dupMatrix(t, 3)

	// Complete only forces the computation; §V allows it to stay silent
	// about execution errors.
	if err := a.Wait(grb.Complete); err != nil {
		t.Fatalf("Wait(Complete) may not report the deferred error, got %v", err)
	}
	// Materialize must report it.
	err := a.Wait(grb.Materialize)
	if grb.Code(err) != grb.InvalidValue {
		t.Fatalf("Wait(Materialize) = %v, want InvalidValue (duplicate with nil dup)", err)
	}
	// GrB_error: the diagnostic string names the failure.
	if msg := a.ErrorString(); !strings.Contains(msg, "duplicate") {
		t.Fatalf("ErrorString() = %q, want the duplicate-coordinates diagnostic", msg)
	}
}

func TestDeferredErrorSurfacesThroughLagraph(t *testing.T) {
	initNonblocking(t)
	a := dupMatrix(t, 3)

	// The lagraph helper is the first reader of the sequence: the parked
	// error must come out of it, not vanish.
	if _, err := lagraph.BFSLevels(a, 0); grb.Code(err) != grb.InvalidValue {
		t.Fatalf("BFSLevels over a poisoned sequence = %v, want InvalidValue", err)
	}
	// The error sticks (§V: first error of the sequence is retained).
	if _, err := lagraph.TriangleCount(a); grb.Code(err) != grb.InvalidValue {
		t.Fatalf("TriangleCount after the first report = %v, want the sticky InvalidValue", err)
	}
	if msg := a.ErrorString(); !strings.Contains(msg, "duplicate") {
		t.Fatalf("ErrorString() = %q, want the duplicate-coordinates diagnostic", msg)
	}
}

func TestHealthySequenceStaysClean(t *testing.T) {
	initNonblocking(t)
	a := ck1(grb.NewMatrix[bool](3, 3))
	ck(a.Build([]grb.Index{0, 1, 2, 1, 2, 0}, []grb.Index{1, 0, 1, 2, 0, 2}, []bool{true, true, true, true, true, true}, grb.LOr))
	levels := ck1(lagraph.BFSLevels(a, 0))
	if n := ck1(levels.Size()); n != 3 {
		t.Fatalf("levels size = %d, want 3", n)
	}
	ck(a.Wait(grb.Materialize))
	if msg := a.ErrorString(); msg != "" {
		t.Fatalf("clean sequence has ErrorString %q", msg)
	}
}

package grb

import "github.com/grblas/grb/internal/sparse"

// MatrixSelect computes C⟨M⟩ = C ⊙ A⟨f(A, ind(A), s)⟩: the GraphBLAS 2.0
// select operation (§VIII-C of the paper, Fig. 3), a "functional input
// mask". The boolean index operator decides per stored entry whether it is
// kept (true) or annihilated (false). Predefined operators from Table IV —
// TriL, TriU, Diag, Offdiag, RowLE/RowGT/ColLE/ColGT and the Value*
// comparison family — cover the common cases.
func MatrixSelect[DA, DS any](c *Matrix[DA], mask *Matrix[bool], accum BinaryOp[DA, DA, DA],
	op IndexUnaryOp[DA, DS, bool], a *Matrix[DA], s DS, desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "MatrixSelect: nil operator")
	}
	return matrixApplyCommon("MatrixSelect", c, mask, accum, a, desc,
		func(in *sparse.CSR[DA], threads int) *sparse.CSR[DA] {
			return sparse.SelectM(in, op, s, threads)
		})
}

// MatrixSelectScalar is the Table II variant of MatrixSelect taking the
// threshold scalar s from a GrB_Scalar. An empty scalar is an EmptyObject
// execution error.
func MatrixSelectScalar[DA, DS any](c *Matrix[DA], mask *Matrix[bool], accum BinaryOp[DA, DA, DA],
	op IndexUnaryOp[DA, DS, bool], a *Matrix[DA], s *Scalar[DS], desc *Descriptor) error {
	v, err := scalarValue("MatrixSelectScalar", s)
	if err != nil {
		return err
	}
	return MatrixSelect(c, mask, accum, op, a, v, desc)
}

// VectorSelect computes w⟨m⟩ = w ⊙ u⟨f(u, ind(u), s)⟩: select on vectors
// (§VIII-C). The operator's col argument is always 0.
func VectorSelect[DA, DS any](w *Vector[DA], mask *Vector[bool], accum BinaryOp[DA, DA, DA],
	op IndexUnaryOp[DA, DS, bool], u *Vector[DA], s DS, desc *Descriptor) error {
	if op == nil {
		return errf(NullPointer, "VectorSelect: nil operator")
	}
	return vectorApplyCommon("VectorSelect", w, mask, accum, u, desc,
		func(in *sparse.Vec[DA]) *sparse.Vec[DA] {
			return sparse.SelectV(in, op, s)
		})
}

// VectorSelectScalar is the Table II variant of VectorSelect taking s from
// a GrB_Scalar.
func VectorSelectScalar[DA, DS any](w *Vector[DA], mask *Vector[bool], accum BinaryOp[DA, DA, DA],
	op IndexUnaryOp[DA, DS, bool], u *Vector[DA], s *Scalar[DS], desc *Descriptor) error {
	v, err := scalarValue("VectorSelectScalar", s)
	if err != nil {
		return err
	}
	return VectorSelect(w, mask, accum, op, u, v, desc)
}

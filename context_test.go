package grb

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/grblas/grb/internal/faults"
)

func TestInitFinalizeLifecycle(t *testing.T) {
	_ = Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	// Using the library before Init is an UninitializedObject error.
	if _, err := NewMatrix[int](2, 2); Code(err) != UninitializedObject {
		t.Fatalf("pre-Init NewMatrix: %v", err)
	}
	if err := Init(Mode(42)); Code(err) != InvalidValue {
		t.Fatalf("bad mode: %v", err)
	}
	if err := Init(Blocking); err != nil {
		t.Fatal(err)
	}
	// Double Init is an error.
	if err := Init(Blocking); Code(err) != InvalidValue {
		t.Fatalf("double Init: %v", err)
	}
	if err := Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := Finalize(); Code(err) != UninitializedObject {
		t.Fatalf("double Finalize: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Blocking.String() != "GrB_BLOCKING" || NonBlocking.String() != "GrB_NONBLOCKING" {
		t.Error("mode names")
	}
	if Mode(9).String() != "GrB_Mode(?)" {
		t.Error("unknown mode name")
	}
}

func TestContextHierarchyThreads(t *testing.T) {
	setMode(t, NonBlocking)
	top, err := GlobalContext()
	if err != nil {
		t.Fatal(err)
	}
	if top.Threads() != runtime.GOMAXPROCS(0) {
		t.Fatalf("top threads = %d", top.Threads())
	}
	// Child with an explicit budget.
	c8, err := NewContext(NonBlocking, nil, WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	// Grandchild inheriting (0) is bounded by the parent...
	inherit, err := NewContext(NonBlocking, c8)
	if err != nil {
		t.Fatal(err)
	}
	if inherit.Threads() != 8 {
		t.Fatalf("inherited threads = %d, want 8", inherit.Threads())
	}
	// ...and a grandchild asking for more is clamped by the ancestor.
	c2, err := NewContext(NonBlocking, c8, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Threads() != 2 {
		t.Fatalf("c2 threads = %d", c2.Threads())
	}
	big, err := NewContext(NonBlocking, c2, WithThreads(64))
	if err != nil {
		t.Fatal(err)
	}
	if big.Threads() != 2 {
		t.Fatalf("hierarchical min violated: %d", big.Threads())
	}
	if big.Parent() != c2 || c2.Parent() != c8 {
		t.Fatal("parent chain wrong")
	}
	if _, err := NewContext(NonBlocking, nil, WithThreads(-1)); Code(err) != InvalidValue {
		t.Fatalf("negative budget: %v", err)
	}
	if _, err := NewContext(Mode(7), nil); Code(err) != InvalidValue {
		t.Fatalf("bad mode: %v", err)
	}
}

func TestContextChunk(t *testing.T) {
	setMode(t, NonBlocking)
	c := ck1(NewContext(NonBlocking, nil, WithThreads(4), WithChunk(100)))
	if c.Chunk() != 100 {
		t.Fatalf("chunk = %d", c.Chunk())
	}
	child := ck1(NewContext(NonBlocking, c))
	if child.Chunk() != 100 {
		t.Fatalf("inherited chunk = %d", child.Chunk())
	}
	// threadsFor respects the chunk granule.
	if got := c.threadsFor(50); got != 1 {
		t.Fatalf("tiny work threads = %d", got)
	}
	if got := c.threadsFor(1000); got != 4 {
		t.Fatalf("large work threads = %d", got)
	}
}

func TestContextFree(t *testing.T) {
	setMode(t, NonBlocking)
	c := ck1(NewContext(NonBlocking, nil, WithThreads(2)))
	if err := c.Free(); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(); Code(err) != UninitializedObject {
		t.Fatalf("double free: %v", err)
	}
	// Objects cannot be created in a freed context.
	if _, err := NewMatrix[int](2, 2, InContext(c)); Code(err) != UninitializedObject {
		t.Fatalf("new in freed ctx: %v", err)
	}
	// A freed context cannot parent a new one.
	if _, err := NewContext(NonBlocking, c); Code(err) != UninitializedObject {
		t.Fatalf("child of freed ctx: %v", err)
	}
	var nilCtx *Context
	if err := nilCtx.Free(); Code(err) != NullPointer {
		t.Fatalf("nil free: %v", err)
	}
}

// TestContextSharingRequired checks §IV's rule that all objects of an
// operation share one context.
func TestContextSharingRequired(t *testing.T) {
	setMode(t, NonBlocking)
	c1 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	c2 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	a := ck1(NewMatrix[int](2, 2, InContext(c1)))
	b := ck1(NewMatrix[int](2, 2, InContext(c2)))
	c := ck1(NewMatrix[int](2, 2, InContext(c1)))
	err := MxM(c, nil, nil, PlusTimes[int](), a, b, nil)
	wantCode(t, err, InvalidValue)

	// Context_switch moves b into c1, making the operation legal (Fig. 2).
	if err := b.SwitchContext(c1); err != nil {
		t.Fatal(err)
	}
	if err := MxM(c, nil, nil, PlusTimes[int](), a, b, nil); err != nil {
		t.Fatal(err)
	}
	got, err := b.Context()
	if err != nil || got != c1 {
		t.Fatalf("Context() = %v, %v", got, err)
	}
}

// TestContextBoundOperations verifies operations actually run under a
// restricted context without error and produce identical results.
func TestContextBoundOperations(t *testing.T) {
	setMode(t, NonBlocking)
	for _, threads := range []int{1, 2, 5} {
		ctx, err := NewContext(NonBlocking, nil, WithThreads(threads), WithChunk(1))
		if err != nil {
			t.Fatal(err)
		}
		a := ck1(NewMatrix[int](8, 8, InContext(ctx)))
		var I, J []Index
		var X []int
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if (i+j)%3 == 0 {
					I = append(I, i)
					J = append(J, j)
					X = append(X, i*8+j+1)
				}
			}
		}
		if err := a.Build(I, J, X, nil); err != nil {
			t.Fatal(err)
		}
		c := ck1(NewMatrix[int](8, 8, InContext(ctx)))
		if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
			t.Fatal(err)
		}
		sum, err := MatrixReduce(PlusMonoid[int](), c)
		if err != nil {
			t.Fatal(err)
		}
		if sum == 0 {
			t.Fatal("empty product")
		}
		// Same computation in the default context must agree.
		a2 := mustMatrix(t, 8, 8, I, J, X)
		c2 := ck1(NewMatrix[int](8, 8))
		if err := MxM(c2, nil, nil, PlusTimes[int](), a2, a2, nil); err != nil {
			t.Fatal(err)
		}
		sum2 := ck1(MatrixReduce(PlusMonoid[int](), c2))
		if sum != sum2 {
			t.Fatalf("threads=%d sum %d != %d", threads, sum, sum2)
		}
	}
}

// TestHierarchicalContextResolution checks the nested-context reading of the
// §IV sharing rule: operands whose contexts lie on one ancestor chain are
// legal, and the deepest context governs execution — its deadline and budget
// apply even when the other operands belong to ancestors.
func TestHierarchicalContextResolution(t *testing.T) {
	setMode(t, NonBlocking)
	mid := ck1(NewContext(NonBlocking, nil, WithThreads(2)))
	leaf := ck1(NewContext(NonBlocking, mid, WithThreads(1)))

	// a lives in the top-level context (no InContext), u in mid, w in leaf:
	// three depths on one chain — the operation is legal.
	a := ck1(NewMatrix[int](3, 3))
	ck(a.SetElement(1, 0, 1))
	ck(a.SetElement(1, 1, 2))
	u := ck1(NewVector[int](3, InContext(mid)))
	ck(u.SetElement(1, 0))
	w := ck1(NewVector[int](3, InContext(leaf)))
	if err := VxM(w, nil, nil, PlusTimes[int](), u, a, nil); err != nil {
		t.Fatalf("chain-nested operands: %v", err)
	}
	vectorEquals(t, w, []Index{1}, []int{1})

	// Order must not matter: deepest-first resolves the same way.
	w2 := ck1(NewVector[int](3, InContext(leaf)))
	if err := EWiseAddVector(w2, nil, nil, Plus[int], w, u, nil); err != nil {
		t.Fatalf("deep output, shallow inputs: %v", err)
	}

	// Sibling branches still violate the sharing rule.
	sib := ck1(NewContext(NonBlocking, mid, WithThreads(1)))
	other := ck1(NewContext(NonBlocking, nil))
	v := ck1(NewVector[int](3, InContext(sib)))
	x := ck1(NewVector[int](3, InContext(other)))
	wantCode(t, EWiseAddVector(v, nil, nil, Plus[int], v, x, nil), InvalidValue)
}

// TestHierarchicalDeepestGoverns proves the deepest context's resource
// controls bind the operation: a canceled leaf context aborts an operation
// whose other operands live in healthy ancestors.
func TestHierarchicalDeepestGoverns(t *testing.T) {
	setMode(t, NonBlocking)
	a := ck1(NewMatrix[bool](64, 64))
	for i := 0; i < 63; i++ {
		ck(a.SetElement(true, Index(i), Index(i+1)))
	}
	ck(a.Wait(Materialize))

	leaf := ck1(NewContext(NonBlocking, nil, WithCancel()))
	ck(leaf.Cancel())
	w := ck1(NewVector[bool](64, InContext(leaf)))
	u := ck1(NewVector[bool](64))
	ck(u.SetElement(true, 0))
	// Output in the canceled leaf, inputs in the top context: the op must
	// run under the leaf and park Canceled.
	err := VxM(w, nil, nil, LOrLAnd(), u, a, nil)
	if err == nil {
		err = w.Wait(Materialize)
	}
	wantCode(t, err, Canceled)
}

// TestViewInContext checks the O(1) snapshot-view primitive: a view shares
// the completed snapshot, lives in its own context, is isolated from later
// writes on either side, and carries the view context's resource limits.
func TestViewInContext(t *testing.T) {
	setMode(t, NonBlocking)
	a := ck1(NewMatrix[int](4, 4))
	ck(a.SetElement(7, 0, 1))
	ck(a.SetElement(9, 2, 3))

	// Validation: nil and freed target contexts.
	if _, err := a.ViewInContext(nil); Code(err) != NullPointer {
		t.Fatalf("nil ctx: %v", err)
	}
	dead := ck1(NewContext(NonBlocking, nil))
	ck(dead.Free())
	if _, err := a.ViewInContext(dead); Code(err) != UninitializedObject {
		t.Fatalf("freed ctx: %v", err)
	}

	ctx := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	v := ck1(a.ViewInContext(ctx))
	got := ck1(v.Context())
	if got != ctx {
		t.Fatalf("view context = %v", got)
	}
	// The view sees the completed snapshot.
	if nv := ck1(v.Nvals()); nv != 2 {
		t.Fatalf("view nvals = %d", nv)
	}
	// Writes through the view never touch the original (snapshot
	// immutability + install-on-write)...
	ck(v.SetElement(1, 3, 3))
	ck(v.Wait(Materialize))
	if nv := ck1(a.Nvals()); nv != 2 {
		t.Fatalf("write-through-view mutated original: nvals=%d", nv)
	}
	// ...and writes through the original never reach the view.
	ck(a.SetElement(1, 1, 1))
	ck(a.Wait(Materialize))
	if nv := ck1(v.Nvals()); nv != 3 {
		t.Fatalf("write-through-original mutated view: nvals=%d", nv)
	}

	// Views work as operands in their context, with lagraph-style outputs.
	w := ck1(NewVector[int](4, InContext(ctx)))
	u := ck1(NewVector[int](4, InContext(ctx)))
	ck(u.SetElement(1, 0))
	if err := VxM(w, nil, nil, PlusTimes[int](), u, v, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1}, []int{7})
}

// TestViewInContextBudgetIsolation is the serving story end to end: two
// views of one shared matrix, one in a generous context and one in a
// starved context; the starved query parks OutOfMemory while the healthy
// query — and the shared snapshot — are unaffected.
func TestViewInContextBudgetIsolation(t *testing.T) {
	setMode(t, NonBlocking)
	const n = 256
	a := ck1(NewMatrix[float64](n, n))
	for i := 0; i < n-1; i++ {
		ck(a.SetElement(1.5, Index(i), Index(i+1)))
		ck(a.SetElement(0.5, Index(i+1), Index(i)))
	}
	ck(a.Wait(Materialize))

	starved := ck1(NewContext(NonBlocking, nil, WithMemoryLimit(1)))
	rich := ck1(NewContext(NonBlocking, nil))
	vs := ck1(a.ViewInContext(starved))
	vr := ck1(a.ViewInContext(rich))

	cs := ck1(NewMatrix[float64](n, n, InContext(starved)))
	err := MxM(cs, nil, nil, PlusTimes[float64](), vs, vs, nil)
	if err == nil {
		err = cs.Wait(Materialize)
	}
	wantCode(t, err, OutOfMemory)

	cr := ck1(NewMatrix[float64](n, n, InContext(rich)))
	if err := MxM(cr, nil, nil, PlusTimes[float64](), vr, vr, nil); err != nil {
		t.Fatalf("rich tenant disturbed by starved neighbor: %v", err)
	}
	ck(cr.Wait(Materialize))
	if nv := ck1(cr.Nvals()); nv == 0 {
		t.Fatal("rich tenant result empty")
	}
}

// TestContextMemoryRollup pins the aggregate-usage contract the serving
// governor is built on: a budgeted child context mirrors its reservations
// into the nearest budgeted ancestor's MemoryUsed, transaction closes
// subtract them, the high-water mark is sticky, and Free detaches any
// residual so a finished request leaves the aggregate clean.
func TestContextMemoryRollup(t *testing.T) {
	setMode(t, NonBlocking)
	gov := ck1(NewContext(NonBlocking, nil, WithMemoryLimit(1<<30)))
	req := ck1(NewContext(NonBlocking, gov, WithMemoryLimit(1<<20)))
	// An unbudgeted context in between must not break the chain: leaf's
	// budget finds gov's as its rollup parent through mid.
	mid := ck1(NewContext(NonBlocking, gov))
	leaf := ck1(NewContext(NonBlocking, mid, WithMemoryLimit(1<<20)))

	// White-box: drive the request budgets directly through transactions,
	// exactly as a drained kernel would.
	tx := req.budget.Tx()
	if !tx.Reserve(4096) {
		t.Fatal("reserve failed")
	}
	ltx := leaf.budget.Tx()
	if !ltx.Reserve(1024) {
		t.Fatal("leaf reserve failed")
	}
	if got := req.MemoryUsed(); got != 4096 {
		t.Fatalf("req.MemoryUsed = %d, want 4096", got)
	}
	if got := gov.MemoryUsed(); got != 4096+1024 {
		t.Fatalf("gov.MemoryUsed = %d, want %d (aggregate of both children)", got, 4096+1024)
	}
	ltx.Close()
	tx.Close()
	if got := gov.MemoryUsed(); got != 0 {
		t.Fatalf("gov.MemoryUsed after close = %d, want 0", got)
	}
	if got := gov.MemoryPeak(); got != 4096+1024 {
		t.Fatalf("gov.MemoryPeak = %d, want %d (sticky high-water)", got, 4096+1024)
	}
	// Residual persistent reservations leave the aggregate on Free.
	tx2 := req.budget.Tx()
	if !tx2.ReservePersistent(512) {
		t.Fatal("persistent reserve failed")
	}
	tx2.Close()
	if got := gov.MemoryUsed(); got != 512 {
		t.Fatalf("gov.MemoryUsed with residual = %d, want 512", got)
	}
	ck(req.Free())
	if got := gov.MemoryUsed(); got != 0 {
		t.Fatalf("gov.MemoryUsed after child Free = %d, want 0", got)
	}
}

// TestContextRollupRealOperation runs a real kernel under a two-level budget
// chain: the governor aggregate must register activity while the request
// runs its operation (visible in the sticky peak) and return to zero once
// the request context is freed — no leak through any kernel path.
func TestContextRollupRealOperation(t *testing.T) {
	setMode(t, NonBlocking)
	gov := ck1(NewContext(NonBlocking, nil, WithMemoryLimit(1<<30)))
	req := ck1(NewContext(NonBlocking, gov, WithMemoryLimit(64<<20)))
	a := pathGraph(t, req, 128)
	c := ck1(NewMatrix[bool](128, 128, InContext(req)))
	ck(MxM(c, nil, nil, LOrLAnd(), a, a, nil))
	ck(c.Wait(Materialize))
	if gov.MemoryPeak() == 0 {
		t.Fatal("governor aggregate never saw the request's kernel activity")
	}
	ck(req.Free())
	if got := gov.MemoryUsed(); got != 0 {
		t.Fatalf("gov.MemoryUsed after request Free = %d, want 0", got)
	}
}

// TestCancelReleasesRollupReservation is the client-disconnect story at the
// context layer: a canceled mid-flight operation parks Canceled at range
// granularity, and freeing the request context returns the governor
// aggregate to zero — an abandoned request cannot strand memory in the
// admission signal.
func TestCancelReleasesRollupReservation(t *testing.T) {
	setMode(t, NonBlocking)
	faults.Enable(faults.Rule{Site: "sparse.kernel.range", Action: faults.Delay, Delay: 30 * time.Millisecond})
	defer faults.Disable()
	gov := ck1(NewContext(NonBlocking, nil, WithMemoryLimit(1<<30)))
	req := ck1(NewContext(NonBlocking, gov, WithMemoryLimit(64<<20), WithCancel(), WithThreads(2)))
	a := pathGraph(t, req, 128)
	c := ck1(NewMatrix[bool](128, 128, InContext(req)))
	ck(MxM(c, nil, nil, LOrLAnd(), a, a, nil))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond) // land inside the delayed checkpoint
		if err := req.Cancel(); err != nil {
			t.Errorf("Cancel: %v", err)
		}
	}()
	err := c.Wait(Materialize)
	wg.Wait()
	if Code(err) != Canceled {
		t.Fatalf("mid-flight cancel: err = %v, want Canceled", err)
	}
	faults.Disable()
	ck(req.Free())
	if got := gov.MemoryUsed(); got != 0 {
		t.Fatalf("gov.MemoryUsed after canceled request Free = %d, want 0", got)
	}
}

package grb

import (
	"runtime"
	"testing"
)

func TestInitFinalizeLifecycle(t *testing.T) {
	_ = Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	// Using the library before Init is an UninitializedObject error.
	if _, err := NewMatrix[int](2, 2); Code(err) != UninitializedObject {
		t.Fatalf("pre-Init NewMatrix: %v", err)
	}
	if err := Init(Mode(42)); Code(err) != InvalidValue {
		t.Fatalf("bad mode: %v", err)
	}
	if err := Init(Blocking); err != nil {
		t.Fatal(err)
	}
	// Double Init is an error.
	if err := Init(Blocking); Code(err) != InvalidValue {
		t.Fatalf("double Init: %v", err)
	}
	if err := Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := Finalize(); Code(err) != UninitializedObject {
		t.Fatalf("double Finalize: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Blocking.String() != "GrB_BLOCKING" || NonBlocking.String() != "GrB_NONBLOCKING" {
		t.Error("mode names")
	}
	if Mode(9).String() != "GrB_Mode(?)" {
		t.Error("unknown mode name")
	}
}

func TestContextHierarchyThreads(t *testing.T) {
	setMode(t, NonBlocking)
	top, err := GlobalContext()
	if err != nil {
		t.Fatal(err)
	}
	if top.Threads() != runtime.GOMAXPROCS(0) {
		t.Fatalf("top threads = %d", top.Threads())
	}
	// Child with an explicit budget.
	c8, err := NewContext(NonBlocking, nil, WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	// Grandchild inheriting (0) is bounded by the parent...
	inherit, err := NewContext(NonBlocking, c8)
	if err != nil {
		t.Fatal(err)
	}
	if inherit.Threads() != 8 {
		t.Fatalf("inherited threads = %d, want 8", inherit.Threads())
	}
	// ...and a grandchild asking for more is clamped by the ancestor.
	c2, err := NewContext(NonBlocking, c8, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Threads() != 2 {
		t.Fatalf("c2 threads = %d", c2.Threads())
	}
	big, err := NewContext(NonBlocking, c2, WithThreads(64))
	if err != nil {
		t.Fatal(err)
	}
	if big.Threads() != 2 {
		t.Fatalf("hierarchical min violated: %d", big.Threads())
	}
	if big.Parent() != c2 || c2.Parent() != c8 {
		t.Fatal("parent chain wrong")
	}
	if _, err := NewContext(NonBlocking, nil, WithThreads(-1)); Code(err) != InvalidValue {
		t.Fatalf("negative budget: %v", err)
	}
	if _, err := NewContext(Mode(7), nil); Code(err) != InvalidValue {
		t.Fatalf("bad mode: %v", err)
	}
}

func TestContextChunk(t *testing.T) {
	setMode(t, NonBlocking)
	c := ck1(NewContext(NonBlocking, nil, WithThreads(4), WithChunk(100)))
	if c.Chunk() != 100 {
		t.Fatalf("chunk = %d", c.Chunk())
	}
	child := ck1(NewContext(NonBlocking, c))
	if child.Chunk() != 100 {
		t.Fatalf("inherited chunk = %d", child.Chunk())
	}
	// threadsFor respects the chunk granule.
	if got := c.threadsFor(50); got != 1 {
		t.Fatalf("tiny work threads = %d", got)
	}
	if got := c.threadsFor(1000); got != 4 {
		t.Fatalf("large work threads = %d", got)
	}
}

func TestContextFree(t *testing.T) {
	setMode(t, NonBlocking)
	c := ck1(NewContext(NonBlocking, nil, WithThreads(2)))
	if err := c.Free(); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(); Code(err) != UninitializedObject {
		t.Fatalf("double free: %v", err)
	}
	// Objects cannot be created in a freed context.
	if _, err := NewMatrix[int](2, 2, InContext(c)); Code(err) != UninitializedObject {
		t.Fatalf("new in freed ctx: %v", err)
	}
	// A freed context cannot parent a new one.
	if _, err := NewContext(NonBlocking, c); Code(err) != UninitializedObject {
		t.Fatalf("child of freed ctx: %v", err)
	}
	var nilCtx *Context
	if err := nilCtx.Free(); Code(err) != NullPointer {
		t.Fatalf("nil free: %v", err)
	}
}

// TestContextSharingRequired checks §IV's rule that all objects of an
// operation share one context.
func TestContextSharingRequired(t *testing.T) {
	setMode(t, NonBlocking)
	c1 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	c2 := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	a := ck1(NewMatrix[int](2, 2, InContext(c1)))
	b := ck1(NewMatrix[int](2, 2, InContext(c2)))
	c := ck1(NewMatrix[int](2, 2, InContext(c1)))
	err := MxM(c, nil, nil, PlusTimes[int](), a, b, nil)
	wantCode(t, err, InvalidValue)

	// Context_switch moves b into c1, making the operation legal (Fig. 2).
	if err := b.SwitchContext(c1); err != nil {
		t.Fatal(err)
	}
	if err := MxM(c, nil, nil, PlusTimes[int](), a, b, nil); err != nil {
		t.Fatal(err)
	}
	got, err := b.Context()
	if err != nil || got != c1 {
		t.Fatalf("Context() = %v, %v", got, err)
	}
}

// TestContextBoundOperations verifies operations actually run under a
// restricted context without error and produce identical results.
func TestContextBoundOperations(t *testing.T) {
	setMode(t, NonBlocking)
	for _, threads := range []int{1, 2, 5} {
		ctx, err := NewContext(NonBlocking, nil, WithThreads(threads), WithChunk(1))
		if err != nil {
			t.Fatal(err)
		}
		a := ck1(NewMatrix[int](8, 8, InContext(ctx)))
		var I, J []Index
		var X []int
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if (i+j)%3 == 0 {
					I = append(I, i)
					J = append(J, j)
					X = append(X, i*8+j+1)
				}
			}
		}
		if err := a.Build(I, J, X, nil); err != nil {
			t.Fatal(err)
		}
		c := ck1(NewMatrix[int](8, 8, InContext(ctx)))
		if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
			t.Fatal(err)
		}
		sum, err := MatrixReduce(PlusMonoid[int](), c)
		if err != nil {
			t.Fatal(err)
		}
		if sum == 0 {
			t.Fatal("empty product")
		}
		// Same computation in the default context must agree.
		a2 := mustMatrix(t, 8, 8, I, J, X)
		c2 := ck1(NewMatrix[int](8, 8))
		if err := MxM(c2, nil, nil, PlusTimes[int](), a2, a2, nil); err != nil {
			t.Fatal(err)
		}
		sum2 := ck1(MatrixReduce(PlusMonoid[int](), c2))
		if sum != sum2 {
			t.Fatalf("threads=%d sum %d != %d", threads, sum, sum2)
		}
	}
}

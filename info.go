package grb

import (
	"errors"
	"fmt"
)

// Info is the GraphBLAS return code enumeration. GraphBLAS 2.0 (§IX of the
// paper) pins explicit values for every enumeration member so that programs
// link correctly against any conforming implementation; the values below are
// the ones the 2.0 C specification assigns.
//
// Codes are split into two kinds (§V):
//
//   - API errors (UninitializedObject .. NotImplemented) mean the method call
//     itself was malformed. They are deterministic, never deferred — even in
//     nonblocking mode — and guarantee that no arguments were modified.
//   - Execution errors (Panic .. EmptyObject) mean something went wrong while
//     executing a well-formed call. In nonblocking mode their reporting may be
//     deferred until a materializing wait (see WaitMode).
type Info int

// Return codes with the values pinned by the GraphBLAS 2.0 specification.
const (
	// Success indicates the method completed successfully.
	Success Info = 0
	// NoValue is an informational code: the requested element is not stored.
	NoValue Info = 1

	// UninitializedObject: an object has not been initialized by a call to
	// its constructor (or Init has not been called).
	UninitializedObject Info = -1
	// NullPointer: a required input was nil.
	NullPointer Info = -2
	// InvalidValue: an argument value is invalid (wrong mode, bad format,
	// mismatched execution contexts, ...).
	InvalidValue Info = -3
	// InvalidIndex: an index argument is negative or too large for the
	// object it addresses. Never deferred.
	InvalidIndex Info = -4
	// DomainMismatch: object domains are incompatible with the operation.
	DomainMismatch Info = -5
	// DimensionMismatch: object shapes are incompatible with the operation.
	DimensionMismatch Info = -6
	// OutputNotEmpty: Build was called on an object that already holds
	// entries.
	OutputNotEmpty Info = -7
	// NotImplemented: the implementation does not support the requested
	// feature.
	NotImplemented Info = -8

	// Panic: unrecoverable internal error.
	Panic Info = -101
	// OutOfMemory: allocation failed.
	OutOfMemory Info = -102
	// InsufficientSpace: a caller-provided buffer is too small.
	InsufficientSpace Info = -103
	// InvalidObject: an object is internally inconsistent.
	InvalidObject Info = -104
	// IndexOutOfBounds: a computed index fell outside the object (an
	// execution error, distinct from the API error InvalidIndex).
	IndexOutOfBounds Info = -105
	// EmptyObject: an operation required a value from an empty Scalar.
	EmptyObject Info = -106
	// Canceled: the operation was aborted by Context.Cancel or an expired
	// WithDeadline before completing. An extension code (the C specification
	// reserves no value for cancellation); like every execution error its
	// reporting may be deferred in nonblocking mode.
	Canceled Info = -107
)

// infoNames maps codes to their spec names.
var infoNames = map[Info]string{
	Success:             "GrB_SUCCESS",
	NoValue:             "GrB_NO_VALUE",
	UninitializedObject: "GrB_UNINITIALIZED_OBJECT",
	NullPointer:         "GrB_NULL_POINTER",
	InvalidValue:        "GrB_INVALID_VALUE",
	InvalidIndex:        "GrB_INVALID_INDEX",
	DomainMismatch:      "GrB_DOMAIN_MISMATCH",
	DimensionMismatch:   "GrB_DIMENSION_MISMATCH",
	OutputNotEmpty:      "GrB_OUTPUT_NOT_EMPTY",
	NotImplemented:      "GrB_NOT_IMPLEMENTED",
	Panic:               "GrB_PANIC",
	OutOfMemory:         "GrB_OUT_OF_MEMORY",
	InsufficientSpace:   "GrB_INSUFFICIENT_SPACE",
	InvalidObject:       "GrB_INVALID_OBJECT",
	IndexOutOfBounds:    "GrB_INDEX_OUT_OF_BOUNDS",
	EmptyObject:         "GrB_EMPTY_OBJECT",
	Canceled:            "GxB_CANCELED",
}

// String returns the spec name of the code.
func (i Info) String() string {
	if s, ok := infoNames[i]; ok {
		return s
	}
	return fmt.Sprintf("GrB_Info(%d)", int(i))
}

// IsAPIError reports whether the code is an API error: deterministic,
// never deferred, and guaranteed not to have modified any argument (§V).
func (i Info) IsAPIError() bool { return i <= UninitializedObject && i >= NotImplemented }

// IsExecutionError reports whether the code is an execution error: a
// failure during execution of a well-formed call, whose reporting may be
// deferred in nonblocking mode (§V).
func (i Info) IsExecutionError() bool { return i <= Panic && i >= Canceled }

// Error is the concrete error type returned by all grb methods. It carries
// the GraphBLAS Info code plus an implementation-defined message (the string
// GrB_error exposes).
type Error struct {
	Info Info
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Msg == "" {
		return e.Info.String()
	}
	return e.Info.String() + ": " + e.Msg
}

// errf builds an *Error.
func errf(info Info, format string, args ...any) *Error {
	return &Error{Info: info, Msg: fmt.Sprintf(format, args...)}
}

// Code extracts the Info code from an error returned by this package.
// A nil error maps to Success; a foreign error maps to Panic.
func Code(err error) Info {
	if err == nil {
		return Success
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Info
	}
	return Panic
}

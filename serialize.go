package grb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"

	"github.com/grblas/grb/internal/sparse"
)

// Serialization (§VII-B of the paper): GraphBLAS objects can be turned into
// an opaque byte stream — e.g. to ship over a wire in a distributed setting —
// that need not be interpretable by other implementations. This
// implementation uses a little-endian framed layout with fast paths for the
// numeric predefined domains and a gob fallback for user-defined domains.
// The stream records the Go domain name; deserializing into a different
// domain fails with DomainMismatch.

var serMagic = [6]byte{'G', 'R', 'B', '2', '.', '0'}

const (
	serKindMatrix = byte('M')
	serKindVector = byte('V')
)

// typeName returns the stable name recorded in serialized streams.
func typeName[T any]() string {
	var zero T
	return reflect.TypeOf(&zero).Elem().String()
}

// encodeValues appends the encoded value payload. Numeric and bool domains
// use fixed-width little-endian fast paths; everything else uses gob.
func encodeValues[T any](buf *bytes.Buffer, vals []T) error {
	switch vs := any(vals).(type) {
	case []bool:
		buf.WriteByte(0)
		for _, v := range vs {
			if v {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		}
	case []int8:
		buf.WriteByte(0)
		for _, v := range vs {
			buf.WriteByte(byte(v))
		}
	case []uint8:
		buf.WriteByte(0)
		buf.Write(vs)
	case []int16:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v int16) { binary.LittleEndian.PutUint16(b, uint16(v)) }, 2)
	case []uint16:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }, 2)
	case []int32:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v int32) { binary.LittleEndian.PutUint32(b, uint32(v)) }, 4)
	case []uint32:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }, 4)
	case []int64:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) }, 8)
	case []uint64:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }, 8)
	case []int:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v int) { binary.LittleEndian.PutUint64(b, uint64(v)) }, 8)
	case []uint:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v uint) { binary.LittleEndian.PutUint64(b, uint64(v)) }, 8)
	case []float32:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) }, 4)
	case []float64:
		buf.WriteByte(0)
		writeFixed(buf, vs, func(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }, 8)
	default:
		buf.WriteByte(1) // gob-encoded payload
		enc := gob.NewEncoder(buf)
		if err := enc.Encode(vals); err != nil {
			return errf(InvalidValue, "serialize: gob encoding failed: %v", err)
		}
	}
	return nil
}

func writeFixed[T any](buf *bytes.Buffer, vals []T, put func([]byte, T), width int) {
	var scratch [8]byte
	for _, v := range vals {
		put(scratch[:width], v)
		buf.Write(scratch[:width])
	}
}

// decodeValues reads a value payload of n entries.
func decodeValues[T any](r *bytes.Reader, n int) ([]T, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, errf(InvalidObject, "deserialize: truncated value payload")
	}
	if tag == 1 {
		var vals []T
		dec := gob.NewDecoder(r)
		if err := dec.Decode(&vals); err != nil {
			return nil, errf(InvalidObject, "deserialize: gob decoding failed: %v", err)
		}
		if len(vals) != n {
			return nil, errf(InvalidObject, "deserialize: expected %d values, got %d", n, len(vals))
		}
		return vals, nil
	}
	vals := make([]T, n)
	switch vs := any(vals).(type) {
	case []bool:
		for i := range vs {
			b, err := r.ReadByte()
			if err != nil {
				return nil, errf(InvalidObject, "deserialize: truncated bool payload")
			}
			vs[i] = b != 0
		}
	case []int8:
		for i := range vs {
			b, err := r.ReadByte()
			if err != nil {
				return nil, errf(InvalidObject, "deserialize: truncated int8 payload")
			}
			vs[i] = int8(b)
		}
	case []uint8:
		if _, err := r.Read(vs); err != nil && n > 0 {
			return nil, errf(InvalidObject, "deserialize: truncated uint8 payload")
		}
	case []int16:
		if err := readFixed(r, vs, func(b []byte) int16 { return int16(binary.LittleEndian.Uint16(b)) }, 2); err != nil {
			return nil, err
		}
	case []uint16:
		if err := readFixed(r, vs, binary.LittleEndian.Uint16, 2); err != nil {
			return nil, err
		}
	case []int32:
		if err := readFixed(r, vs, func(b []byte) int32 { return int32(binary.LittleEndian.Uint32(b)) }, 4); err != nil {
			return nil, err
		}
	case []uint32:
		if err := readFixed(r, vs, binary.LittleEndian.Uint32, 4); err != nil {
			return nil, err
		}
	case []int64:
		if err := readFixed(r, vs, func(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }, 8); err != nil {
			return nil, err
		}
	case []uint64:
		if err := readFixed(r, vs, binary.LittleEndian.Uint64, 8); err != nil {
			return nil, err
		}
	case []int:
		if err := readFixed(r, vs, func(b []byte) int { return int(binary.LittleEndian.Uint64(b)) }, 8); err != nil {
			return nil, err
		}
	case []uint:
		if err := readFixed(r, vs, func(b []byte) uint { return uint(binary.LittleEndian.Uint64(b)) }, 8); err != nil {
			return nil, err
		}
	case []float32:
		if err := readFixed(r, vs, func(b []byte) float32 { return math.Float32frombits(binary.LittleEndian.Uint32(b)) }, 4); err != nil {
			return nil, err
		}
	case []float64:
		if err := readFixed(r, vs, func(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }, 8); err != nil {
			return nil, err
		}
	default:
		return nil, errf(InvalidObject, "deserialize: stream has fixed-width payload but domain %s needs gob", typeName[T]())
	}
	return vals, nil
}

func readFixed[T any](r *bytes.Reader, vals []T, get func([]byte) T, width int) error {
	var scratch [8]byte
	for i := range vals {
		if _, err := fullRead(r, scratch[:width]); err != nil {
			return errf(InvalidObject, "deserialize: truncated payload")
		}
		vals[i] = get(scratch[:width])
	}
	return nil
}

func fullRead(r *bytes.Reader, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := r.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func writeInt(buf *bytes.Buffer, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	buf.Write(b[:])
}

func readInt(r *bytes.Reader) (int, error) {
	var b [8]byte
	if _, err := fullRead(r, b[:]); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint64(b[:])), nil
}

func writeString(buf *bytes.Buffer, s string) {
	writeInt(buf, len(s))
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := readInt(r)
	// Bound by the bytes actually remaining: corrupted streams must fail
	// before any allocation proportional to the bogus length.
	if err != nil || n < 0 || n > r.Len() {
		return "", fmt.Errorf("bad string length")
	}
	b := make([]byte, n)
	if _, err := fullRead(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeIntSlice(buf *bytes.Buffer, s []int) {
	writeInt(buf, len(s))
	for _, v := range s {
		writeInt(buf, v)
	}
}

func readIntSlice(r *bytes.Reader) ([]int, error) {
	n, err := readInt(r)
	// Each element occupies 8 bytes; a length beyond the remaining input is
	// corruption and must be rejected before allocating.
	if err != nil || n < 0 || n > r.Len()/8 {
		return nil, fmt.Errorf("bad slice length")
	}
	s := make([]int, n)
	for i := range s {
		if s[i], err = readInt(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// serializeMatrixBytes builds the full serialized stream for a matrix.
func serializeMatrixBytes[T any](m *Matrix[T]) ([]byte, error) {
	c, err := m.snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(serMagic[:])
	buf.WriteByte(serKindMatrix)
	writeString(&buf, typeName[T]())
	writeInt(&buf, c.Rows)
	writeInt(&buf, c.Cols)
	writeIntSlice(&buf, c.Ptr)
	writeIntSlice(&buf, c.Ind)
	writeInt(&buf, len(c.Val))
	if err := encodeValues(&buf, c.Val); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SerializeSize returns the number of bytes Serialize needs
// (GrB_Matrix_serializeSize).
func (m *Matrix[T]) SerializeSize() (Index, error) {
	data, err := serializeMatrixBytes(m)
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// Serialize writes the matrix into buf as an opaque byte stream
// (GrB_Matrix_serialize) and returns the number of bytes written.
// InsufficientSpace is returned when buf is smaller than SerializeSize.
func (m *Matrix[T]) Serialize(buf []byte) (Index, error) {
	data, err := serializeMatrixBytes(m)
	if err != nil {
		return 0, err
	}
	if len(buf) < len(data) {
		return 0, errf(InsufficientSpace, "Serialize: need %d bytes, buffer has %d", len(data), len(buf))
	}
	copy(buf, data)
	return len(data), nil
}

// SerializeBytes allocates and returns the serialized stream (a Go-binding
// convenience over SerializeSize + Serialize).
func (m *Matrix[T]) SerializeBytes() ([]byte, error) {
	return serializeMatrixBytes(m)
}

// MatrixDeserialize reconstructs a matrix from a stream produced by
// Serialize (GrB_Matrix_deserialize). The stream's domain must match T.
func MatrixDeserialize[T any](data []byte, opts ...ObjOption) (*Matrix[T], error) {
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, err := resolveCtx(cfg.ctx)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(data)
	var magic [6]byte
	if _, err := fullRead(r, magic[:]); err != nil || magic != serMagic {
		return nil, errf(InvalidObject, "MatrixDeserialize: bad magic")
	}
	kind, err := r.ReadByte()
	if err != nil || kind != serKindMatrix {
		return nil, errf(InvalidObject, "MatrixDeserialize: stream does not hold a matrix")
	}
	tn, err := readString(r)
	if err != nil {
		return nil, errf(InvalidObject, "MatrixDeserialize: %v", err)
	}
	if tn != typeName[T]() {
		return nil, errf(DomainMismatch, "MatrixDeserialize: stream domain %s, requested %s", tn, typeName[T]())
	}
	rows, err := readInt(r)
	if err != nil {
		return nil, errf(InvalidObject, "MatrixDeserialize: truncated")
	}
	cols, err := readInt(r)
	if err != nil {
		return nil, errf(InvalidObject, "MatrixDeserialize: truncated")
	}
	ptr, err := readIntSlice(r)
	if err != nil {
		return nil, errf(InvalidObject, "MatrixDeserialize: %v", err)
	}
	ind, err := readIntSlice(r)
	if err != nil {
		return nil, errf(InvalidObject, "MatrixDeserialize: %v", err)
	}
	// Validate the shape against the decoded arrays BEFORE building any
	// structure sized by it (a corrupted row count must not drive an
	// allocation).
	if rows <= 0 || cols <= 0 || len(ptr) != rows+1 {
		return nil, errf(InvalidObject, "MatrixDeserialize: inconsistent shape")
	}
	nval, err := readInt(r)
	if err != nil || nval != len(ind) {
		return nil, errf(InvalidObject, "MatrixDeserialize: inconsistent value count")
	}
	vals, err := decodeValues[T](r, nval)
	if err != nil {
		return nil, err
	}
	m := &Matrix[T]{init: true, ctx: ctx,
		csr: &sparse.CSR[T]{Rows: rows, Cols: cols, Ptr: ptr, Ind: ind, Val: vals}}
	if !m.csr.Valid() {
		return nil, errf(InvalidObject, "MatrixDeserialize: stream describes an invalid matrix")
	}
	return m, nil
}

// serializeVectorBytes builds the full serialized stream for a vector.
func serializeVectorBytes[T any](v *Vector[T]) ([]byte, error) {
	s, err := v.snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(serMagic[:])
	buf.WriteByte(serKindVector)
	writeString(&buf, typeName[T]())
	writeInt(&buf, s.N)
	writeIntSlice(&buf, s.Ind)
	writeInt(&buf, len(s.Val))
	if err := encodeValues(&buf, s.Val); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SerializeSize returns the number of bytes Serialize needs
// (GrB_Vector_serializeSize).
func (v *Vector[T]) SerializeSize() (Index, error) {
	data, err := serializeVectorBytes(v)
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// Serialize writes the vector into buf (GrB_Vector_serialize).
func (v *Vector[T]) Serialize(buf []byte) (Index, error) {
	data, err := serializeVectorBytes(v)
	if err != nil {
		return 0, err
	}
	if len(buf) < len(data) {
		return 0, errf(InsufficientSpace, "Serialize: need %d bytes, buffer has %d", len(data), len(buf))
	}
	copy(buf, data)
	return len(data), nil
}

// SerializeBytes allocates and returns the serialized stream.
func (v *Vector[T]) SerializeBytes() ([]byte, error) {
	return serializeVectorBytes(v)
}

// VectorDeserialize reconstructs a vector from a stream produced by
// Serialize (GrB_Vector_deserialize).
func VectorDeserialize[T any](data []byte, opts ...ObjOption) (*Vector[T], error) {
	var cfg objConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, err := resolveCtx(cfg.ctx)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(data)
	var magic [6]byte
	if _, err := fullRead(r, magic[:]); err != nil || magic != serMagic {
		return nil, errf(InvalidObject, "VectorDeserialize: bad magic")
	}
	kind, err := r.ReadByte()
	if err != nil || kind != serKindVector {
		return nil, errf(InvalidObject, "VectorDeserialize: stream does not hold a vector")
	}
	tn, err := readString(r)
	if err != nil {
		return nil, errf(InvalidObject, "VectorDeserialize: %v", err)
	}
	if tn != typeName[T]() {
		return nil, errf(DomainMismatch, "VectorDeserialize: stream domain %s, requested %s", tn, typeName[T]())
	}
	n, err := readInt(r)
	if err != nil {
		return nil, errf(InvalidObject, "VectorDeserialize: truncated")
	}
	ind, err := readIntSlice(r)
	if err != nil {
		return nil, errf(InvalidObject, "VectorDeserialize: %v", err)
	}
	if n <= 0 {
		return nil, errf(InvalidObject, "VectorDeserialize: inconsistent size")
	}
	nval, err := readInt(r)
	if err != nil || nval != len(ind) {
		return nil, errf(InvalidObject, "VectorDeserialize: inconsistent value count")
	}
	vals, err := decodeValues[T](r, nval)
	if err != nil {
		return nil, err
	}
	v := &Vector[T]{init: true, ctx: ctx,
		vec: &sparse.Vec[T]{N: n, Ind: ind, Val: vals}}
	if !v.vec.Valid() {
		return nil, errf(InvalidObject, "VectorDeserialize: stream describes an invalid vector")
	}
	return v, nil
}

package grb

import (
	"math/rand"
	"testing"
)

// Dense reference machinery for validating the full operation pipeline
// (operation ⨯ accumulator ⨯ mask ⨯ descriptor) in the public API.

type denseM struct {
	rows, cols int
	val        [][]int
	ok         [][]bool
}

func newDense(rows, cols int) *denseM {
	d := &denseM{rows: rows, cols: cols, val: make([][]int, rows), ok: make([][]bool, rows)}
	for i := range d.val {
		d.val[i] = make([]int, cols)
		d.ok[i] = make([]bool, cols)
	}
	return d
}

func randDense(rng *rand.Rand, rows, cols int, density float64) *denseM {
	d := newDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				d.val[i][j] = 1 + rng.Intn(9)
				d.ok[i][j] = true
			}
		}
	}
	return d
}

func randDenseBool(rng *rand.Rand, rows, cols int, density float64) ([][]bool, [][]bool) {
	val := make([][]bool, rows)
	ok := make([][]bool, rows)
	for i := 0; i < rows; i++ {
		val[i] = make([]bool, cols)
		ok[i] = make([]bool, cols)
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				ok[i][j] = true
				val[i][j] = rng.Intn(2) == 0
			}
		}
	}
	return val, ok
}

func (d *denseM) toMatrix(t *testing.T) *Matrix[int] {
	t.Helper()
	var I, J []Index
	var X []int
	for i := 0; i < d.rows; i++ {
		for j := 0; j < d.cols; j++ {
			if d.ok[i][j] {
				I = append(I, i)
				J = append(J, j)
				X = append(X, d.val[i][j])
			}
		}
	}
	return mustMatrix(t, d.rows, d.cols, I, J, X)
}

func boolMatrix(t *testing.T, val, ok [][]bool) *Matrix[bool] {
	t.Helper()
	rows := len(val)
	cols := len(val[0])
	var I, J []Index
	var X []bool
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if ok[i][j] {
				I = append(I, i)
				J = append(J, j)
				X = append(X, val[i][j])
			}
		}
	}
	m, err := NewMatrix[bool](rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(I) > 0 {
		if err := m.Build(I, J, X, nil); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func (d *denseM) transpose() *denseM {
	out := newDense(d.cols, d.rows)
	for i := 0; i < d.rows; i++ {
		for j := 0; j < d.cols; j++ {
			out.val[j][i] = d.val[i][j]
			out.ok[j][i] = d.ok[i][j]
		}
	}
	return out
}

// refPipeline applies accumulate-then-mask to a computed candidate zd over
// old output cd, mirroring the GraphBLAS operation pipeline.
func refPipeline(cd, td *denseM, maskVal, maskOk [][]bool, d Descriptor, withAccum bool) *denseM {
	zd := newDense(cd.rows, cd.cols)
	for i := 0; i < cd.rows; i++ {
		for j := 0; j < cd.cols; j++ {
			switch {
			case withAccum && cd.ok[i][j] && td.ok[i][j]:
				zd.val[i][j], zd.ok[i][j] = cd.val[i][j]+td.val[i][j], true
			case withAccum && cd.ok[i][j]:
				zd.val[i][j], zd.ok[i][j] = cd.val[i][j], true
			case td.ok[i][j]:
				zd.val[i][j], zd.ok[i][j] = td.val[i][j], true
			}
		}
	}
	out := newDense(cd.rows, cd.cols)
	for i := 0; i < cd.rows; i++ {
		for j := 0; j < cd.cols; j++ {
			mt := true
			if maskOk != nil {
				mt = maskOk[i][j]
				if !d.Structure {
					mt = mt && maskVal[i][j]
				}
			}
			if d.Complement {
				mt = !mt
			}
			if mt {
				if zd.ok[i][j] {
					out.val[i][j], out.ok[i][j] = zd.val[i][j], true
				}
			} else if !d.Replace && cd.ok[i][j] {
				out.val[i][j], out.ok[i][j] = cd.val[i][j], true
			}
		}
	}
	return out
}

func checkAgainstDense(t *testing.T, got *Matrix[int], want *denseM, label string) {
	t.Helper()
	I, J, X, err := got.ExtractTuples()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	k := 0
	for i := 0; i < want.rows; i++ {
		for j := 0; j < want.cols; j++ {
			if want.ok[i][j] {
				if k >= len(I) || I[k] != i || J[k] != j || X[k] != want.val[i][j] {
					t.Fatalf("%s: mismatch at (%d,%d)", label, i, j)
				}
				k++
			}
		}
	}
	if k != len(I) {
		t.Fatalf("%s: %d extra entries", label, len(I)-k)
	}
}

// TestMxMFullPipeline sweeps mxm across accumulate/mask/descriptor
// combinations against the dense reference.
func TestMxMFullPipeline(t *testing.T) {
	setMode(t, Blocking)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(8)
		k := 2 + rng.Intn(8)
		n := 2 + rng.Intn(8)
		ad := randDense(rng, m, k, 0.4)
		bd := randDense(rng, k, n, 0.4)
		cd := randDense(rng, m, n, 0.3)
		maskVal, maskOk := randDenseBool(rng, m, n, 0.5)
		for _, useMask := range []bool{false, true} {
			for _, withAccum := range []bool{false, true} {
				for _, desc := range []*Descriptor{nil, DescR, DescS, DescC, DescRSC} {
					a := ad.toMatrix(t)
					b := bd.toMatrix(t)
					c := cd.toMatrix(t)
					var mask *Matrix[bool]
					var mv, mo [][]bool
					if useMask {
						mask = boolMatrix(t, maskVal, maskOk)
						mv, mo = maskVal, maskOk
					}
					var accum BinaryOp[int, int, int]
					if withAccum {
						accum = Plus[int]
					}
					if err := MxM(c, mask, accum, PlusTimes[int](), a, b, desc); err != nil {
						t.Fatal(err)
					}
					// dense product
					td := newDense(m, n)
					for i := 0; i < m; i++ {
						for kk := 0; kk < k; kk++ {
							if !ad.ok[i][kk] {
								continue
							}
							for j := 0; j < n; j++ {
								if bd.ok[kk][j] {
									td.val[i][j] += ad.val[i][kk] * bd.val[kk][j]
									td.ok[i][j] = true
								}
							}
						}
					}
					d := desc.get()
					if !useMask && d.Complement {
						// complement of a nil mask: nothing admitted
					}
					want := refPipeline(cd, td, mv, mo, d, withAccum)
					checkAgainstDense(t, c, want, "MxM")
				}
			}
		}
	}
}

func TestMxMTransposes(t *testing.T) {
	setMode(t, Blocking)
	rng := rand.New(rand.NewSource(18))
	ad := randDense(rng, 5, 7, 0.4)
	bd := randDense(rng, 5, 6, 0.4)
	// C = Aᵀ B : 7x6
	a := ad.toMatrix(t)
	b := bd.toMatrix(t)
	c := ck1(NewMatrix[int](7, 6))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, b, DescT0); err != nil {
		t.Fatal(err)
	}
	at := ad.transpose()
	td := newDense(7, 6)
	for i := 0; i < 7; i++ {
		for kk := 0; kk < 5; kk++ {
			if !at.ok[i][kk] {
				continue
			}
			for j := 0; j < 6; j++ {
				if bd.ok[kk][j] {
					td.val[i][j] += at.val[i][kk] * bd.val[kk][j]
					td.ok[i][j] = true
				}
			}
		}
	}
	checkAgainstDense(t, c, td, "MxM T0")

	// C = A Bᵀ with A 5x7 needs B 6x7: reuse bd transposed shape
	b2d := randDense(rng, 6, 7, 0.4)
	b2 := b2d.toMatrix(t)
	c2 := ck1(NewMatrix[int](5, 6))
	if err := MxM(c2, nil, nil, PlusTimes[int](), a, b2, DescT1); err != nil {
		t.Fatal(err)
	}
	b2t := b2d.transpose()
	td2 := newDense(5, 6)
	for i := 0; i < 5; i++ {
		for kk := 0; kk < 7; kk++ {
			if !ad.ok[i][kk] {
				continue
			}
			for j := 0; j < 6; j++ {
				if b2t.ok[kk][j] {
					td2.val[i][j] += ad.val[i][kk] * b2t.val[kk][j]
					td2.ok[i][j] = true
				}
			}
		}
	}
	checkAgainstDense(t, c2, td2, "MxM T1")
}

func TestMxMDimensionErrors(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 3, nil, nil, []int(nil))
	b := mustMatrix(t, 2, 3, nil, nil, []int(nil))
	c := mustMatrix(t, 2, 3, nil, nil, []int(nil))
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), a, b, nil), DimensionMismatch)
	// Transposing B fixes the inner dimension but the output must be 2x2.
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), a, b, DescT1), DimensionMismatch)
	c22 := mustMatrix(t, 2, 2, nil, nil, []int(nil))
	if err := MxM(c22, nil, nil, PlusTimes[int](), a, b, DescT1); err != nil {
		t.Fatal(err)
	}
	// Mask shape must match the output.
	badMask := ck1(NewMatrix[bool](3, 2))
	wantCode(t, MxM(c22, badMask, nil, PlusTimes[int](), a, b, DescT1), DimensionMismatch)
	// Nil semiring operators.
	wantCode(t, MxM(c22, nil, nil, Semiring[int, int, int]{}, a, b, DescT1), NullPointer)
}

// TestVxMEquivalences: vxm(u, A) equals mxv(Aᵀ, u), and the descriptor
// transposes compose correctly.
func TestVxMEquivalences(t *testing.T) {
	setMode(t, Blocking)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		ad := randDense(rng, m, n, 0.4)
		a := ad.toMatrix(t)
		var ui []Index
		var ux []int
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.5 {
				ui = append(ui, i)
				ux = append(ux, 1+rng.Intn(5))
			}
		}
		u := mustVector(t, m, ui, ux)
		w1 := ck1(NewVector[int](n))
		if err := VxM(w1, nil, nil, PlusTimes[int](), u, a, nil); err != nil {
			t.Fatal(err)
		}
		w2 := ck1(NewVector[int](n))
		if err := MxV(w2, nil, nil, PlusTimes[int](), a, u, DescT0); err != nil {
			t.Fatal(err)
		}
		i1, x1 := ck2(w1.ExtractTuples())
		i2, x2 := ck2(w2.ExtractTuples())
		if len(i1) != len(i2) {
			t.Fatalf("vxm/mxv sizes differ: %d %d", len(i1), len(i2))
		}
		for k := range i1 {
			if i1[k] != i2[k] || x1[k] != x2[k] {
				t.Fatal("vxm != mxv(transpose)")
			}
		}
		// vxm with T1 equals mxv untransposed (square only).
		if m == n {
			w3 := ck1(NewVector[int](m))
			if err := VxM(w3, nil, nil, PlusTimes[int](), u, a, DescT1); err != nil {
				t.Fatal(err)
			}
			w4 := ck1(NewVector[int](m))
			if err := MxV(w4, nil, nil, PlusTimes[int](), a, u, nil); err != nil {
				t.Fatal(err)
			}
			i3, x3 := ck2(w3.ExtractTuples())
			i4, x4 := ck2(w4.ExtractTuples())
			if len(i3) != len(i4) {
				t.Fatal("vxm T1 != mxv")
			}
			for k := range i3 {
				if i3[k] != i4[k] || x3[k] != x4[k] {
					t.Fatal("vxm T1 != mxv values")
				}
			}
		}
	}
}

func TestMxVMaskAndAccum(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 3, 3,
		[]Index{0, 0, 1, 2}, []Index{0, 1, 2, 0}, []int{1, 2, 3, 4})
	u := mustVector(t, 3, []Index{0, 1, 2}, []int{1, 1, 1})
	w := mustVector(t, 3, []Index{0, 2}, []int{100, 200})
	mask := mustVector(t, 3, []Index{0, 1}, []bool{true, true})
	// t = A·u = {0:3, 1:3, 2:4}; accum: z = {0:103, 1:3, 2:204}
	// mask admits 0,1; merge keeps w(2)=200
	if err := MxV(w, mask, Plus[int], PlusTimes[int](), a, u, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{0, 1, 2}, []int{103, 3, 200})
	// replace: position 2 deleted
	w2 := mustVector(t, 3, []Index{0, 2}, []int{100, 200})
	if err := MxV(w2, mask, Plus[int], PlusTimes[int](), a, u, DescR); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w2, []Index{0, 1}, []int{103, 3})
}

// Command grbserve is the multi-tenant graph query server: it loads Matrix
// Market graphs (or generated ones) as shared immutable snapshots at
// startup and serves concurrent algorithm queries over HTTP/JSON, each
// request under its own deadline- and memory-budgeted Context derived from
// per-tenant config. See the serve package for the endpoint contract.
//
//	grbserve -graph wiki=wiki.mtx -gen smoke=rmat:10 \
//	         -tenant gold:2000:67108864:8:16:5 -addr :8080 \
//	         -mem-highwater 1073741824 -shutdown-timeout 15s -reload
//
// Endpoints: /query/{bfs,sssp,pagerank,triangles,ego}, /graphs, /healthz,
// and /metrics (the grb ops document plus per-tenant request counters and
// the serve control-plane gauges). SIGTERM/SIGINT drain gracefully within
// -shutdown-timeout; SIGHUP re-runs the graph specs and hot-swaps the set
// when -reload is on.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/serve"
)

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// parseTenant parses
// name:deadline_ms[:mem_bytes[:max_inflight[:max_queue[:breaker_threshold]]]]
// (later fields optional; 0 means unlimited / disabled). max_inflight is the
// AIMD concurrency ceiling, max_queue the bounded admission queue depth, and
// breaker_threshold the consecutive-failure count that opens the tenant's
// circuit.
func parseTenant(spec string) (string, serve.TenantConfig, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || parts[0] == "" {
		return "", serve.TenantConfig{}, fmt.Errorf("tenant spec %q: want name:deadline_ms[:mem_bytes[:max_inflight[:max_queue[:breaker_threshold]]]]", spec)
	}
	var cfg serve.TenantConfig
	ms, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", cfg, fmt.Errorf("tenant spec %q: bad deadline %q", spec, parts[1])
	}
	cfg.Deadline = time.Duration(ms) * time.Millisecond
	if len(parts) > 2 {
		b, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return "", cfg, fmt.Errorf("tenant spec %q: bad mem_bytes %q", spec, parts[2])
		}
		cfg.MemoryBytes = b
	}
	if len(parts) > 3 {
		n, err := strconv.Atoi(parts[3])
		if err != nil {
			return "", cfg, fmt.Errorf("tenant spec %q: bad max_inflight %q", spec, parts[3])
		}
		cfg.MaxInFlight = n
	}
	if len(parts) > 4 {
		n, err := strconv.Atoi(parts[4])
		if err != nil {
			return "", cfg, fmt.Errorf("tenant spec %q: bad max_queue %q", spec, parts[4])
		}
		cfg.MaxQueue = n
	}
	if len(parts) > 5 {
		n, err := strconv.Atoi(parts[5])
		if err != nil {
			return "", cfg, fmt.Errorf("tenant spec %q: bad breaker_threshold %q", spec, parts[5])
		}
		cfg.BreakerThreshold = n
	}
	return parts[0], cfg, nil
}

func main() {
	var graphs, gens, tenants multiFlag
	addr := flag.String("addr", ":8080", "listen address")
	deadlineMs := flag.Int("deadline-ms", 5000, "default per-request deadline in milliseconds")
	memBudget := flag.Int64("mem-budget", 0, "default per-request memory budget in bytes (0 = unlimited)")
	memHighWater := flag.Int64("mem-highwater", 0, "server-wide live-memory admission ceiling in bytes (0 = governor off)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful-drain budget on SIGTERM/SIGINT before in-flight queries are canceled")
	reload := flag.Bool("reload", false, "reload the graph set from the -graph/-gen specs on SIGHUP (atomic swap, rollback on failure)")
	selfcheck := flag.Bool("selfcheck", false, "run the serve smoke battery against a live loopback server and exit")
	flag.Var(&graphs, "graph", "name=path.mtx graph to load (repeatable)")
	flag.Var(&gens, "gen", "name=kind:arg generated graph, e.g. smoke=rmat:10 (repeatable)")
	flag.Var(&tenants, "tenant", "name:deadline_ms[:mem_bytes[:max_inflight[:max_queue[:breaker_threshold]]]] tenant envelope (repeatable)")
	flag.Parse()

	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	grb.EnableMetrics(true)

	if *selfcheck {
		if err := serve.SelfCheck(); err != nil {
			log.Printf("selfcheck: FAIL: %v", err)
			os.Exit(1)
		}
		log.Printf("selfcheck: ok")
		return
	}

	// loadAll realizes the -graph/-gen specs; SIGHUP reloads reuse it so a
	// hot swap sees exactly what a restart would.
	loadAll := func() ([]*serve.Graph, error) {
		var loaded []*serve.Graph
		for _, spec := range graphs {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				return nil, fmt.Errorf("-graph %q: want name=path.mtx", spec)
			}
			t0 := time.Now()
			g, err := serve.LoadMTX(name, path)
			if err != nil {
				return nil, err
			}
			log.Printf("loaded %s: n=%d edges=%d (%.2fs)", name, g.N, g.Edges, time.Since(t0).Seconds())
			loaded = append(loaded, g)
		}
		for _, spec := range gens {
			t0 := time.Now()
			g, err := serve.ParseGenSpec(spec)
			if err != nil {
				return nil, err
			}
			log.Printf("generated %s: n=%d edges=%d (%.2fs)", g.Name, g.N, g.Edges, time.Since(t0).Seconds())
			loaded = append(loaded, g)
		}
		return loaded, nil
	}
	loaded, err := loadAll()
	if err != nil {
		log.Fatal(err)
	}
	if len(loaded) == 0 {
		log.Fatal("no graphs: pass at least one -graph name=path.mtx or -gen name=kind:arg")
	}

	cfg := serve.Config{
		Default: serve.TenantConfig{
			Deadline:    time.Duration(*deadlineMs) * time.Millisecond,
			MemoryBytes: *memBudget,
		},
		Tenants:      map[string]serve.TenantConfig{},
		MemHighWater: *memHighWater,
	}
	for _, spec := range tenants {
		name, tc, err := parseTenant(spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants[name] = tc
	}

	s := serve.NewServer(loaded, cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// Signal plumbing: SIGTERM/SIGINT drain gracefully (stop admissions,
	// let in-flight queries finish, cancel stragglers past the budget);
	// SIGHUP hot-reloads the graph set when -reload is on.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				log.Printf("signal handler panic: %v", p)
			}
		}()
		for sig := range sigCh {
			if sig == syscall.SIGHUP {
				if !*reload {
					log.Printf("SIGHUP ignored: start with -reload to enable hot graph reload")
					continue
				}
				if err := s.Reload(loadAll); err != nil {
					log.Printf("reload failed, serving previous graph set: %v", err)
				} else {
					log.Printf("graph set reloaded")
				}
				continue
			}
			log.Printf("%v: draining (budget %v)", sig, *shutdownTimeout)
			if err := s.Shutdown(*shutdownTimeout); err != nil {
				log.Printf("drain incomplete: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = httpSrv.Shutdown(ctx) //grblint:ignore infocheck -- best-effort listener close; the drain already ran
			cancel()
			return
		}
	}()

	log.Printf("grbserve listening on %s (%d graphs, %d tenant envelopes)", *addr, len(loaded), len(cfg.Tenants))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("grbserve: drained, exiting")
}

// Command grbserve is the multi-tenant graph query server: it loads Matrix
// Market graphs (or generated ones) as shared immutable snapshots at
// startup and serves concurrent algorithm queries over HTTP/JSON, each
// request under its own deadline- and memory-budgeted Context derived from
// per-tenant config. See the serve package for the endpoint contract.
//
//	grbserve -graph wiki=wiki.mtx -gen smoke=rmat:10 \
//	         -tenant gold:2000:67108864:8 -addr :8080
//
// Endpoints: /query/{bfs,sssp,pagerank,triangles,ego}, /graphs, /healthz,
// and /metrics (the grb ops document plus per-tenant request counters).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/serve"
)

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// parseTenant parses name:deadline_ms:mem_bytes:max_inflight (later fields
// optional; 0 means unlimited).
func parseTenant(spec string) (string, serve.TenantConfig, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || parts[0] == "" {
		return "", serve.TenantConfig{}, fmt.Errorf("tenant spec %q: want name:deadline_ms[:mem_bytes[:max_inflight]]", spec)
	}
	var cfg serve.TenantConfig
	ms, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", cfg, fmt.Errorf("tenant spec %q: bad deadline %q", spec, parts[1])
	}
	cfg.Deadline = time.Duration(ms) * time.Millisecond
	if len(parts) > 2 {
		b, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return "", cfg, fmt.Errorf("tenant spec %q: bad mem_bytes %q", spec, parts[2])
		}
		cfg.MemoryBytes = b
	}
	if len(parts) > 3 {
		n, err := strconv.Atoi(parts[3])
		if err != nil {
			return "", cfg, fmt.Errorf("tenant spec %q: bad max_inflight %q", spec, parts[3])
		}
		cfg.MaxInFlight = n
	}
	return parts[0], cfg, nil
}

func main() {
	var graphs, gens, tenants multiFlag
	addr := flag.String("addr", ":8080", "listen address")
	deadlineMs := flag.Int("deadline-ms", 5000, "default per-request deadline in milliseconds")
	memBudget := flag.Int64("mem-budget", 0, "default per-request memory budget in bytes (0 = unlimited)")
	selfcheck := flag.Bool("selfcheck", false, "run the serve smoke battery against a live loopback server and exit")
	flag.Var(&graphs, "graph", "name=path.mtx graph to load (repeatable)")
	flag.Var(&gens, "gen", "name=kind:arg generated graph, e.g. smoke=rmat:10 (repeatable)")
	flag.Var(&tenants, "tenant", "name:deadline_ms[:mem_bytes[:max_inflight]] tenant envelope (repeatable)")
	flag.Parse()

	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	grb.EnableMetrics(true)

	if *selfcheck {
		if err := serve.SelfCheck(); err != nil {
			log.Printf("selfcheck: FAIL: %v", err)
			os.Exit(1)
		}
		log.Printf("selfcheck: ok")
		return
	}

	var loaded []*serve.Graph
	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("-graph %q: want name=path.mtx", spec)
		}
		t0 := time.Now()
		g, err := serve.LoadMTX(name, path)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %s: n=%d edges=%d (%.2fs)", name, g.N, g.Edges, time.Since(t0).Seconds())
		loaded = append(loaded, g)
	}
	for _, spec := range gens {
		t0 := time.Now()
		g, err := serve.ParseGenSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("generated %s: n=%d edges=%d (%.2fs)", g.Name, g.N, g.Edges, time.Since(t0).Seconds())
		loaded = append(loaded, g)
	}
	if len(loaded) == 0 {
		log.Fatal("no graphs: pass at least one -graph name=path.mtx or -gen name=kind:arg")
	}

	cfg := serve.Config{
		Default: serve.TenantConfig{
			Deadline:    time.Duration(*deadlineMs) * time.Millisecond,
			MemoryBytes: *memBudget,
		},
		Tenants: map[string]serve.TenantConfig{},
	}
	for _, spec := range tenants {
		name, tc, err := parseTenant(spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants[name] = tc
	}

	s := serve.NewServer(loaded, cfg)
	log.Printf("grbserve listening on %s (%d graphs, %d tenant envelopes)", *addr, len(loaded), len(cfg.Tenants))
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		log.Fatal(err)
	}
}

// grblint is the repo's static-analysis gate: a multichecker with nine
// analyzers enforcing the GraphBLAS 2.0 invariants a Go compiler cannot —
//
//	infocheck       every grb.Info / grb API error must be observed (§V)
//	snapshotcheck   kernels must not mutate *CSR/*Vec snapshots (§III)
//	lockcheck       no lock-acquiring entry point under a held object mutex
//	enumcheck       switches over the pinned enums must be exhaustive (§IX)
//	budgetcheck     sparse Exec kernel scratch must be budget-charged (§IV)
//	obsvcheck       obsv Begin/End tokens pair on all paths; counter banks
//	                written only via group-atomic helpers
//	sitecheck       every fault site is probed and chaos-battery-covered
//	atomiccheck     sync/atomic memory is never accessed plainly
//	panicpathcheck  goroutine launches / fan-out kernels carry recover guards
//
// Usage:
//
//	grblint [-only name1,name2] [-list] [-time] [-audit-ignores] [packages...]
//
// Packages default to ./... and accept the usual go package patterns; test
// files (in-package and external) are analyzed too. Per-package analyzers
// fan out across the worker pool, one task per package; program-level
// analyzers (sitecheck) run once over the whole load. -time reports each
// analyzer's cumulative wall time. -audit-ignores lists every
// //grblint:ignore suppression with its file:line and reason, exiting
// nonzero if any suppression lacks a reason. Exit status is 1 when any
// diagnostic survives suppression. Diagnostics are silenced per line with
// a trailing (or immediately preceding) comment:
//
//	//grblint:ignore infocheck -- reason
//
// The analyzers are built on internal/lint, a stdlib-only stand-in for
// golang.org/x/tools/go/analysis (the build runs offline, so the x/tools
// multichecker/vettool protocol is not available; `make lint` runs this
// binary directly instead of through `go vet -vettool`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/grblas/grb/internal/lint"
	"github.com/grblas/grb/internal/lint/atomiccheck"
	"github.com/grblas/grb/internal/lint/budgetcheck"
	"github.com/grblas/grb/internal/lint/enumcheck"
	"github.com/grblas/grb/internal/lint/infocheck"
	"github.com/grblas/grb/internal/lint/lockcheck"
	"github.com/grblas/grb/internal/lint/obsvcheck"
	"github.com/grblas/grb/internal/lint/panicpathcheck"
	"github.com/grblas/grb/internal/lint/sitecheck"
	"github.com/grblas/grb/internal/lint/snapshotcheck"
	"github.com/grblas/grb/internal/parallel"
)

var analyzers = []*lint.Analyzer{
	infocheck.Analyzer,
	snapshotcheck.Analyzer,
	lockcheck.Analyzer,
	enumcheck.Analyzer,
	budgetcheck.Analyzer,
	obsvcheck.Analyzer,
	sitecheck.Analyzer,
	atomiccheck.Analyzer,
	panicpathcheck.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	timing := flag.Bool("time", false, "report per-analyzer cumulative wall time")
	auditIgnores := flag.Bool("audit-ignores", false, "list every //grblint:ignore suppression; fail if one lacks a reason")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "grblint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grblint: %v\n", err)
		os.Exit(2)
	}

	if *auditIgnores {
		os.Exit(auditSuppressions(pkgs))
	}

	// Per-package analyzers fan out across the pool, one task per package
	// (the load is already type-checked, so the tasks are pure traversal
	// and share nothing but the analyzer values and the timing sink).
	var mu sync.Mutex
	times := map[string]time.Duration{}
	recordTime := func(name string, d time.Duration) {
		mu.Lock()
		times[name] += d
		mu.Unlock()
	}
	perPkg := make([][]lint.Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	parallel.Tasks(len(pkgs), runtime.GOMAXPROCS(0), func(task int) {
		perPkg[task], errs[task] = lint.RunTimed(pkgs[task], active, recordTime)
	})

	found := 0
	for i := range pkgs {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "grblint: %v\n", errs[i])
			os.Exit(2)
		}
		for _, d := range perPkg[i] {
			fmt.Println(d)
			found++
		}
	}

	progDiags, err := lint.RunProgram(pkgs, active, recordTime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grblint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range progDiags {
		fmt.Println(d)
		found++
	}

	if *timing {
		reportTimes(times)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "grblint: %d diagnostic(s)\n", found)
		os.Exit(1)
	}
}

// reportTimes prints each analyzer's cumulative wall time (summed across
// packages; with the parallel fan-out the wall clock is lower).
func reportTimes(times map[string]time.Duration) {
	type row struct {
		name string
		d    time.Duration
	}
	var rows []row
	for name, d := range times {
		rows = append(rows, row{name, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	for _, r := range rows {
		fmt.Fprintf(os.Stderr, "grblint: %-15s %s\n", r.name, r.d.Round(time.Microsecond))
	}
}

// auditSuppressions lists every //grblint:ignore with its position and
// reason, returning exit status 1 when any suppression is reason-less.
func auditSuppressions(pkgs []*lint.Package) int {
	missing := 0
	total := 0
	for _, pkg := range pkgs {
		for _, s := range lint.SuppressionsIn(pkg.Fset, pkg.Syntax) {
			total++
			reason := s.Reason
			if reason == "" {
				reason = "<MISSING REASON>"
				missing++
			}
			fmt.Printf("%s:%d: %s -- %s\n", s.Pos.Filename, s.Pos.Line, strings.Join(s.Names, ","), reason)
		}
	}
	fmt.Fprintf(os.Stderr, "grblint: %d suppression(s), %d without a reason\n", total, missing)
	if missing > 0 {
		return 1
	}
	return 0
}

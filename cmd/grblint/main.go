// grblint is the repo's static-analysis gate: a multichecker with four
// analyzers enforcing the GraphBLAS 2.0 invariants a Go compiler cannot —
//
//	infocheck      every grb.Info / grb API error must be observed (§V)
//	snapshotcheck  kernels must not mutate *CSR/*Vec snapshots (§III)
//	lockcheck      no lock-acquiring entry point under a held object mutex
//	enumcheck      switches over the pinned enums must be exhaustive (§IX)
//
// Usage:
//
//	grblint [-only name1,name2] [-list] [packages...]
//
// Packages default to ./... and accept the usual go package patterns; test
// files (in-package and external) are analyzed too. Exit status is 1 when
// any diagnostic survives suppression. Diagnostics are silenced per line
// with a trailing (or immediately preceding) comment:
//
//	//grblint:ignore infocheck -- reason
//
// The analyzers are built on internal/lint, a stdlib-only stand-in for
// golang.org/x/tools/go/analysis (the build runs offline, so the x/tools
// multichecker/vettool protocol is not available; `make lint` runs this
// binary directly instead of through `go vet -vettool`).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/grblas/grb/internal/lint"
	"github.com/grblas/grb/internal/lint/enumcheck"
	"github.com/grblas/grb/internal/lint/infocheck"
	"github.com/grblas/grb/internal/lint/lockcheck"
	"github.com/grblas/grb/internal/lint/snapshotcheck"
)

var analyzers = []*lint.Analyzer{
	infocheck.Analyzer,
	snapshotcheck.Analyzer,
	lockcheck.Analyzer,
	enumcheck.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "grblint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grblint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, active)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grblint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "grblint: %d diagnostic(s)\n", found)
		os.Exit(1)
	}
}

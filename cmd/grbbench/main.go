// grbbench regenerates every table and figure of "Introduction to GraphBLAS
// 2.0" (IPDPSW 2021) against this implementation, printing one section per
// artifact. Since the paper is an API specification, the artifacts are
// (a) the worked examples of Figs. 1–3 and Tables I–IV, reproduced exactly,
// and (b) the performance motivations of §II (native index operators vs. the
// GraphBLAS 1.X packed-values workaround) and §IV (context-bounded thread
// scaling), reproduced as measured series.
//
// A further section, "hyper", measures the adaptive hash/dense accumulator
// selection on a hypersparse workload (n = 1e6 ≫ nnz ≈ 4e5); the -kernel
// flag pins the accumulator instead of sweeping all three.
//
// The "traversal" section measures direction-optimizing BFS: the same
// level-synchronous traversal pinned to the push (scatter) kernel, the pull
// (masked gather) kernel, and the adaptive router, over hypersparse and RMAT
// graphs; the -dir flag pins one direction instead of sweeping all three,
// and -json writes the measured series — plus the per-op metrics profile
// (grb.Metrics) collected over the whole run — to a machine-readable file.
//
// Usage: grbbench [-run fig1,...,hyper,traversal] [-scale N]
//
//	[-kernel auto|dense|hash] [-dir auto|push|pull] [-json F]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/lagraph"
)

var (
	runList  = flag.String("run", "fig1,fig2,fig3,tab1,tab2,tab3,tab4,ablation,hyper,traversal,dense,blocked,serve", "comma-separated experiments")
	scale    = flag.Int("scale", 14, "RMAT scale for the measured experiments")
	kernel   = flag.String("kernel", "", "pin the multiply accumulator for the hyper experiment: auto, dense or hash (empty sweeps all three)")
	dirFlag  = flag.String("dir", "", "pin the traversal direction for the traversal experiment: auto, push or pull (empty sweeps all three)")
	format   = flag.String("format", "", "pin the block-format tier for the dense experiment: auto, bitmap or sparse (empty leaves the auto router)")
	gridFlag = flag.String("grid", "", "pin the blocked-view grid shape RxC (e.g. 8x8) for the blocked experiment (empty lets the experiment choose)")
	jsonPath = flag.String("json", "", "write the measured series (traversal + dense + blocked experiments) to this JSON file")
)

// benchResults collects the measured series from every experiment that
// contributes to -json; main writes the file once after all sections run.
var benchResults []traversalResult

func main() {
	flag.Parse()
	switch *kernel {
	case "", "auto", "dense", "hash":
	default:
		log.Fatalf("-kernel %q: must be auto, dense or hash", *kernel)
	}
	switch *dirFlag {
	case "", "auto", "push", "pull":
	default:
		log.Fatalf("-dir %q: must be auto, push or pull", *dirFlag)
	}
	switch *format {
	case "":
	case "auto":
		grb.SetFormatHint(grb.FormatHintAuto)
	case "bitmap":
		grb.SetFormatHint(grb.FormatHintBitmap)
	case "sparse":
		grb.SetFormatHint(grb.FormatHintSparse)
	default:
		log.Fatalf("-format %q: must be auto, bitmap or sparse", *format)
	}
	if *gridFlag != "" {
		var gr, gc int
		if _, err := fmt.Sscanf(*gridFlag, "%dx%d", &gr, &gc); err != nil || gr < 1 || gc < 1 {
			log.Fatalf("-grid %q: must be RxC with positive integers, e.g. 8x8", *gridFlag)
		}
		grb.SetBlockGrid(gr, gc)
	}
	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit
	if *jsonPath != "" {
		// -json reports a per-op profile alongside the measured series, so
		// collect metrics for the whole run.
		grb.EnableMetrics(true)
	}

	want := map[string]bool{}
	for _, s := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(s)] = true
	}
	if want["fig1"] {
		figure1()
	}
	if want["fig2"] {
		figure2()
	}
	if want["fig3"] {
		figure3()
	}
	if want["tab1"] {
		table1()
	}
	if want["tab2"] {
		table2()
	}
	if want["tab3"] {
		table3()
	}
	if want["tab4"] {
		table4()
	}
	if want["ablation"] {
		ablation()
	}
	if want["hyper"] {
		hypersparse()
	}
	if want["traversal"] {
		traversal()
	}
	if want["dense"] {
		denseKernels()
	}
	if want["blocked"] {
		blockedEngine()
	}
	if want["serve"] {
		serveBench()
	}
	writeBenchJSON()
}

// writeBenchJSON serializes the series collected by the measured experiments
// (traversal, dense) plus the per-op profile into -json, once per run.
func writeBenchJSON() {
	if *jsonPath == "" || len(benchResults) == 0 {
		return
	}
	blob, err := json.MarshalIndent(map[string]any{
		"experiment": "traversal,dense",
		"threads":    runtime.GOMAXPROCS(0),
		"scale":      *scale,
		"results":    benchResults,
		"per_op":     grb.Metrics(),
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *jsonPath)
}

func header(s string) { fmt.Printf("\n===== %s =====\n", s) }

// rmatBool builds the standard measured workload.
func rmatBool(scale int) (*grb.Matrix[bool], gen.Graph) {
	g := gen.Graph500RMAT(scale, 16, 42).Symmetrize()
	a, err := grb.NewMatrix[bool](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.BoolWeights(g), grb.LOr); err != nil {
		log.Fatal(err)
	}
	return a, g
}

func rmatFloat(scale int) *grb.Matrix[float64] {
	g := gen.Graph500RMAT(scale, 16, 42).Symmetrize()
	a, err := grb.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.UniformWeights(g, 0.5, 2.0, 42), grb.Plus[float64]); err != nil {
		log.Fatal(err)
	}
	return a
}

// figure1 measures the paper's two-thread completion protocol: two pipelines
// that share one matrix, synchronized with Wait(COMPLETE) + release/acquire
// flag, versus the same work run sequentially.
func figure1() {
	header("Figure 1 — multithreaded sequences with completion + happens-before")
	const n = 14
	a := rmatFloat(n - 4)

	work := func(parallelMode bool) time.Duration {
		start := time.Now()
		dim := must1(a.Nrows())
		esh := must1(grb.NewMatrix[float64](dim, dim))
		var flag atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		t0 := func() {
			defer wg.Done()
			c := must1(grb.NewMatrix[float64](dim, dim))
			must(grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, nil))
			must(grb.MxM(esh, nil, nil, grb.PlusTimes[float64](), a, c, nil))
			must(esh.Wait(grb.Complete)) // GrB_wait(Esh, GrB_COMPLETE)
			flag.Store(1)                // atomic write, release
		}
		t1 := func() {
			defer wg.Done()
			g := must1(grb.NewMatrix[float64](dim, dim))
			must(grb.MxM(g, nil, nil, grb.PlusTimes[float64](), a, a, nil))
			must(g.Wait(grb.Complete))
			for flag.Load() == 0 { // atomic read, acquire
				runtime.Gosched()
			}
			h := must1(grb.NewMatrix[float64](dim, dim))
			must(grb.MxM(h, nil, nil, grb.PlusTimes[float64](), g, esh, nil))
			must(h.Wait(grb.Complete))
		}
		if parallelMode {
			go t0()
			go t1()
		} else {
			t0()
			t1()
		}
		wg.Wait()
		return time.Since(start)
	}
	seq := work(false)
	par := work(true)
	fmt.Printf("  sequential threads : %v\n", seq)
	fmt.Printf("  concurrent threads : %v  (ratio %.2fx)\n", par, float64(seq)/float64(par))
	fmt.Println("  correctness is the artifact here: Esh is shared race-free through")
	fmt.Println("  Wait(COMPLETE) + a release-store/acquire-load flag, exactly as in Fig. 1;")
	fmt.Println("  on multicore hosts the concurrent version additionally overlaps the")
	fmt.Println("  two private pipelines")
}

// figure2 measures mxm scaling under nested execution contexts with thread
// budgets 1, 2, 4, ... — the resource-bounding role of GrB_Context.
func figure2() {
	header("Figure 2 — execution contexts: thread budget vs. mxm time")
	a := rmatFloat(*scale - 2)
	dim := must1(a.Nrows())
	maxT := runtime.GOMAXPROCS(0)
	if maxT < 8 {
		maxT = 8 // sweep the budget ladder even on small hosts; speedup
		// saturates at the physical core count
	}
	fmt.Printf("  (host has %d usable CPUs — speedups saturate there)\n", runtime.GOMAXPROCS(0))
	fmt.Printf("  %-8s %-12s %s\n", "threads", "mxm time", "speedup vs 1 thread")
	var base time.Duration
	for t := 1; t <= maxT; t *= 2 {
		ctx, err := grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(t), grb.WithChunk(1))
		if err != nil {
			log.Fatal(err)
		}
		ac := must1(a.Dup())
		must(ac.SwitchContext(ctx))
		c := must1(grb.NewMatrix[float64](dim, dim, grb.InContext(ctx)))
		start := time.Now()
		if err := grb.MxM(c, nil, nil, grb.PlusTimes[float64](), ac, ac, nil); err != nil {
			log.Fatal(err)
		}
		must(c.Wait(grb.Materialize))
		el := time.Since(start)
		if t == 1 {
			base = el
		}
		fmt.Printf("  %-8d %-12v %.2fx\n", t, el, float64(base)/float64(el))
		must(ctx.Free())
	}
}

// figure3 reproduces the select/apply worked example (see examples/figure3
// for the verbose version).
func figure3() {
	header("Figure 3 — select and apply with index unary operators")
	a := must1(grb.NewMatrix[int32](7, 7))
	must(a.Build(
		[]grb.Index{0, 0, 1, 1, 2, 3, 3, 4, 5, 6, 6},
		[]grb.Index{1, 3, 4, 6, 5, 0, 2, 5, 2, 2, 3},
		[]int32{2, 3, 8, 1, 1, 3, 3, 1, 2, 5, 7}, nil))
	sel := must1(grb.NewMatrix[int32](7, 7))
	myTriuGT := func(v int32, row, col grb.Index, s int32) bool { return col > row && v > s }
	must(grb.MatrixSelect(sel, nil, nil, myTriuGT, a, 0, nil))
	app := must1(grb.NewMatrix[int](7, 7))
	must(grb.MatrixApplyIndexOp(app, nil, nil, grb.ColIndex[int32], a, 1, nil))
	an := must1(a.Nvals())
	sn := must1(sel.Nvals())
	pn := must1(app.Nvals())
	fmt.Printf("  A: %d stored; select(my_triu_gt, s=0): %d kept; apply(COLINDEX, s=1): %d rewritten\n", an, sn, pn)
	I, J, X := must3(sel.ExtractTuples())
	for k := range I {
		fmt.Printf("    kept  (%d,%d) = %d\n", I[k], J[k], X[k])
	}
	I, J, Y := must3(app.ExtractTuples())
	for k := 0; k < 3 && k < len(I); k++ {
		fmt.Printf("    apply (%d,%d) -> %d (= col+1)\n", I[k], J[k], Y[k])
	}
}

// table1 exercises the six GrB_Scalar manipulation methods.
func table1() {
	header("Table I — GrB_Scalar manipulation methods")
	s := must1(grb.NewScalar[float64]()) // GrB_Scalar_new
	nv := must1(s.Nvals())               // GrB_Scalar_nvals
	fmt.Printf("  new scalar:            nvals=%d (empty)\n", nv)
	must(s.SetElement(3.25)) // GrB_Scalar_setElement
	v, ok := must2(s.ExtractElement())
	nv = must1(s.Nvals())
	fmt.Printf("  after setElement(3.25): nvals=%d value=%v present=%v\n", nv, v, ok)
	d := must1(s.Dup()) // GrB_Scalar_dup
	dv, dok := must2(d.ExtractElement())
	fmt.Printf("  dup:                    value=%v present=%v\n", dv, dok)
	must(s.Clear()) // GrB_Scalar_clear
	_, ok = must2(s.ExtractElement())
	nv = must1(s.Nvals())
	fmt.Printf("  after clear:            nvals=%d present=%v (dup unaffected: %v)\n", nv, ok, dok)
}

// table2 demonstrates the GrB_Scalar method variants: empty-propagating
// extract, reduce-to-empty-scalar vs. 1.X identity, reduce with BinaryOp,
// assign/apply/select with scalar arguments.
func table2() {
	header("Table II — GrB_Scalar variants of the core methods")
	empty := must1(grb.NewMatrix[int](4, 4))
	s := must1(grb.NewScalar[int]())

	// reduce of an empty matrix: 2.0 scalar variant vs. 1.X typed variant
	must(grb.MatrixReduceToScalar(s, nil, grb.PlusMonoid[int](), empty, nil))
	nv := must1(s.Nvals())
	oldStyle := must1(grb.MatrixReduce(grb.PlusMonoid[int](), empty))
	fmt.Printf("  reduce(empty matrix):   GrB_Scalar output nvals=%d (empty), 1.X typed output=%d (identity)\n", nv, oldStyle)

	// reduce with a plain BinaryOp (no identity needed, new in 2.0)
	m := must1(grb.NewMatrix[int](2, 2))
	must(m.Build([]grb.Index{0, 1}, []grb.Index{1, 0}, []int{7, 8}, nil))
	must(grb.MatrixReduceToScalarBinaryOp(s, nil, grb.Plus[int], m, nil))
	v, _ := must2(s.ExtractElement())
	fmt.Printf("  reduce(BinaryOp +):     %d (monoid-free reduction)\n", v)

	// extractElement into a scalar: missing entry -> empty scalar, no error
	must(m.ExtractElementScalar(s, 0, 0))
	nv = must1(s.Nvals())
	fmt.Printf("  extractElement(miss):   scalar nvals=%d (no NO_VALUE handling needed)\n", nv)

	// setElement from a scalar; assign from a scalar
	sv := must1(grb.ScalarOf(42))
	must(m.SetElementScalar(sv, 0, 0))
	v, _ = must2(m.ExtractElement(0, 0))
	fmt.Printf("  setElement(Scalar 42):  m(0,0)=%d\n", v)
	must(grb.MatrixAssignScalarObj(m, nil, nil, sv, grb.All, grb.All, nil))
	nvm := must1(m.Nvals())
	fmt.Printf("  assign(Scalar 42, all): nvals=%d (dense fill)\n", nvm)

	// apply / select with GrB_Scalar threshold
	w := must1(grb.NewVector[int](5))
	must(w.Build([]grb.Index{0, 2, 4}, []int{1, 5, 9}, nil))
	thr := must1(grb.ScalarOf(4))
	out := must1(grb.NewVector[int](5))
	must(grb.VectorSelectScalar(out, nil, nil, grb.ValueGT[int], w, thr, nil))
	oi, ox := must2(out.ExtractTuples())
	fmt.Printf("  select(VALUEGT, s=4):   kept %v = %v\n", oi, ox)
	es := must1(grb.NewScalar[int]())
	err := grb.VectorSelectScalar(out, nil, nil, grb.ValueGT[int], w, es, nil)
	fmt.Printf("  select(empty Scalar):   error %v (execution error, §V)\n", grb.Code(err))
}

// table3 measures import/export throughput for every non-opaque format plus
// the opaque serializer.
func table3() {
	header("Table III — import/export formats (round-trip on RMAT graph)")
	g := gen.Graph500RMAT(*scale-2, 8, 3)
	a := must1(grb.NewMatrix[float64](g.N, g.N))
	must(a.Build(g.Src, g.Dst, gen.UniformWeights(g, 0, 1, 3), grb.Plus[float64]))
	nv := must1(a.Nvals())
	fmt.Printf("  matrix: %d x %d, %d entries\n", g.N, g.N, nv)
	fmt.Printf("  %-24s %-12s %-12s %s\n", "format", "export", "import", "bytes moved")
	for _, f := range []grb.Format{grb.FormatCSR, grb.FormatCSC, grb.FormatCOO} {
		start := time.Now()
		indptr, indices, values, err := a.MatrixExport(f)
		if err != nil {
			log.Fatal(err)
		}
		exp := time.Since(start)
		start = time.Now()
		if _, err := grb.MatrixImport(g.N, g.N, indptr, indices, values, f); err != nil {
			log.Fatal(err)
		}
		imp := time.Since(start)
		bytes := 8 * (len(indptr) + len(indices) + len(values))
		fmt.Printf("  %-24v %-12v %-12v %d\n", f, exp, imp, bytes)
	}
	// Dense formats on a smaller matrix (quadratic storage).
	small := gen.Graph500RMAT(10, 8, 3)
	sm := must1(grb.NewMatrix[float64](small.N, small.N))
	must(sm.Build(small.Src, small.Dst, gen.UniformWeights(small, 0, 1, 3), grb.Plus[float64]))
	for _, f := range []grb.Format{grb.FormatDenseRow, grb.FormatDenseCol} {
		start := time.Now()
		indptr, indices, values := must3(sm.MatrixExport(f))
		exp := time.Since(start)
		start = time.Now()
		_ = must1(grb.MatrixImport(small.N, small.N, indptr, indices, values, f))
		imp := time.Since(start)
		fmt.Printf("  %-24v %-12v %-12v %d (scale 10)\n", f, exp, imp, 8*len(values))
	}
	start := time.Now()
	blob := must1(a.SerializeBytes())
	ser := time.Since(start)
	start = time.Now()
	_ = must1(grb.MatrixDeserialize[float64](blob))
	des := time.Since(start)
	fmt.Printf("  %-24s %-12v %-12v %d (opaque, §VII-B)\n", "serialize/deserialize", ser, des, len(blob))
}

// table4 runs select with every predefined index unary operator and reports
// the surviving entry counts and timing.
func table4() {
	header("Table IV — predefined index unary operators via select/apply")
	a := rmatFloat(*scale - 2)
	dim := must1(a.Nrows())
	nv := must1(a.Nvals())
	fmt.Printf("  matrix: %d x %d, %d entries\n", dim, dim, nv)
	type entry struct {
		name string
		run  func(c *grb.Matrix[float64]) error
	}
	sMid := dim / 2
	selOps := []entry{
		{"GrB_TRIL(0)", func(c *grb.Matrix[float64]) error { return grb.MatrixSelect(c, nil, nil, grb.TriL[float64], a, 0, nil) }},
		{"GrB_TRIU(0)", func(c *grb.Matrix[float64]) error { return grb.MatrixSelect(c, nil, nil, grb.TriU[float64], a, 0, nil) }},
		{"GrB_DIAG(0)", func(c *grb.Matrix[float64]) error { return grb.MatrixSelect(c, nil, nil, grb.Diag[float64], a, 0, nil) }},
		{"GrB_OFFDIAG(0)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.Offdiag[float64], a, 0, nil)
		}},
		{"GrB_ROWLE(n/2)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.RowLE[float64], a, sMid, nil)
		}},
		{"GrB_ROWGT(n/2)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.RowGT[float64], a, sMid, nil)
		}},
		{"GrB_COLLE(n/2)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ColLE[float64], a, sMid, nil)
		}},
		{"GrB_COLGT(n/2)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ColGT[float64], a, sMid, nil)
		}},
		{"GrB_VALUEEQ(1.0)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueEQ[float64], a, 1.0, nil)
		}},
		{"GrB_VALUENE(1.0)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueNE[float64], a, 1.0, nil)
		}},
		{"GrB_VALUELT(1.0)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueLT[float64], a, 1.0, nil)
		}},
		{"GrB_VALUELE(1.0)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueLE[float64], a, 1.0, nil)
		}},
		{"GrB_VALUEGT(1.0)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueGT[float64], a, 1.0, nil)
		}},
		{"GrB_VALUEGE(1.0)", func(c *grb.Matrix[float64]) error {
			return grb.MatrixSelect(c, nil, nil, grb.ValueGE[float64], a, 1.0, nil)
		}},
	}
	fmt.Printf("  %-20s %-10s %s\n", "select operator", "kept", "time")
	for _, e := range selOps {
		c := must1(grb.NewMatrix[float64](dim, dim))
		start := time.Now()
		if err := e.run(c); err != nil {
			log.Fatal(err)
		}
		must(c.Wait(grb.Materialize))
		el := time.Since(start)
		kept := must1(c.Nvals())
		fmt.Printf("  %-20s %-10d %v\n", e.name, kept, el)
	}
	// The three "replace" operators through apply.
	fmt.Printf("  %-20s %-10s %s\n", "apply operator", "entries", "time")
	applyOps := []struct {
		name string
		op   grb.IndexUnaryOp[float64, int, int]
	}{
		{"GrB_ROWINDEX(+1)", grb.RowIndex[float64]},
		{"GrB_COLINDEX(+1)", grb.ColIndex[float64]},
		{"GrB_DIAGINDEX(+0)", grb.DiagIndex[float64]},
	}
	for _, e := range applyOps {
		c := must1(grb.NewMatrix[int](dim, dim))
		start := time.Now()
		if err := grb.MatrixApplyIndexOp(c, nil, nil, e.op, a, 1, nil); err != nil {
			log.Fatal(err)
		}
		must(c.Wait(grb.Materialize))
		el := time.Since(start)
		nvc := must1(c.Nvals())
		fmt.Printf("  %-20s %-10d %v\n", e.name, nvc, el)
	}
}

// ablation reproduces the §II motivation: selecting the strict upper
// triangle natively with an IndexUnaryOp versus the GraphBLAS 1.X
// workaround, where each stored value carries its packed (row, col) indices
// and a user-defined operator unpacks them per scalar.
func ablation() {
	header("§II ablation — native index ops vs. 1.X packed-values workaround")
	fmt.Printf("  %-8s %-14s %-14s %-9s %-14s %s\n", "scale", "native select", "packed select", "ratio", "extra memory", "result equal")
	for _, sc := range []int{*scale - 4, *scale - 2, *scale} {
		g := gen.Graph500RMAT(sc, 16, 5).Symmetrize()
		w := gen.UniformWeights(g, 1, 100, 5)

		// Native: a float64 matrix + TriU select with the 2.0 index op.
		a := must1(grb.NewMatrix[float64](g.N, g.N))
		must(a.Build(g.Src, g.Dst, w, grb.Plus[float64]))
		c := must1(grb.NewMatrix[float64](g.N, g.N))
		start := time.Now()
		must(grb.MatrixSelect(c, nil, nil, grb.TriU[float64], a, 1, nil))
		must(c.Wait(grb.Materialize))
		native := time.Since(start)
		nKept := must1(c.Nvals())

		// 1.X workaround: values are structs carrying (row, col, value); a
		// plain select-style apply must unpack indices from the value.
		type packed struct {
			Row, Col int64
			Val      float64
		}
		pw := make([]packed, len(w))
		for k := range w {
			pw[k] = packed{int64(g.Src[k]), int64(g.Dst[k]), w[k]}
		}
		ap := must1(grb.NewMatrix[packed](g.N, g.N))
		must(ap.Build(g.Src, g.Dst, pw, grb.Second[packed, packed]))
		cp := must1(grb.NewMatrix[packed](g.N, g.N))
		start = time.Now()
		// The "user-defined operator unpacking index values from the values
		// array" the paper describes: ignores the real indices entirely.
		unpackingOp := func(v packed, _, _ grb.Index, _ int) bool { return v.Col > v.Row }
		must(grb.MatrixSelect(cp, nil, nil, unpackingOp, ap, 0, nil))
		must(cp.Wait(grb.Materialize))
		packedTime := time.Since(start)
		pKept := must1(cp.Nvals())

		extra := len(w) * 16 // two packed int64 indices per stored value
		fmt.Printf("  %-8d %-14v %-14v %-9.2f %-14s %v\n",
			sc, native, packedTime, float64(packedTime)/float64(native),
			fmt.Sprintf("%d KiB", extra/1024), nKept == pKept)
	}
	fmt.Println("  (the packed representation streams 2x8 extra bytes per entry and runs the")
	fmt.Println("   unpacking through a user function per scalar — the costs §II calls out)")

	// Algorithm-level comparison: parent BFS with the 2.0 ROWINDEX apply vs.
	// the 1.X host-round-trip workaround (extract tuples / overwrite values /
	// rebuild each iteration).
	ab, _ := rmatBool(*scale - 2)
	start := time.Now()
	if _, err := lagraph.BFSParents(ab, 0); err != nil {
		log.Fatal(err)
	}
	nat := time.Since(start)
	start = time.Now()
	if _, err := lagraph.BFSParentsLegacy(ab, 0); err != nil {
		log.Fatal(err)
	}
	leg := time.Since(start)
	fmt.Printf("  BFS parents: native index op %v, 1.X host round-trip %v (ratio %.2f)\n",
		nat, leg, float64(leg)/float64(nat))
	fmt.Println("  (in-process Go round-trips are cheap at frontier sizes; the paper's")
	fmt.Println("   bandwidth penalty appears when values carry packed indices, above)")
	_ = sort.Ints
}

// hypersparse measures the adaptive hash/dense accumulator selection on a
// workload where the matrix dimension (1e6) dwarfs the entry count (~4e5):
// a dense O(n) accumulator per worker is almost entirely wasted space, and
// the router must pick the hash SPA on its own. Each kernel's wall time,
// row-range routing counts and accumulator scratch are printed side by side.
func hypersparse() {
	header("Hypersparse — adaptive hash/dense accumulator selection")
	const n, nnz = 1_000_000, 400_000
	g := gen.Hypersparse(n, nnz, 7)
	a, err := grb.NewMatrix[float64](g.N, g.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Build(g.Src, g.Dst, gen.UniformWeights(g, 0.5, 2, 7), grb.Plus[float64]); err != nil {
		log.Fatal(err)
	}
	u := must1(grb.NewVector[float64](n))
	for k := 0; k < 1024; k++ {
		must(u.SetElement(1, k*(n/1024)))
	}
	fmt.Printf("  matrix: %d x %d, %d entries; vector: %d entries\n", n, n, g.NumEdges(), 1024)

	// The mxv rows pin DirPull: this section measures the gather-buffer
	// (accumulator) selection, and the direction router would otherwise
	// serve the sparse frontier with the push kernel, which never touches
	// the gather buffer (the traversal section measures that axis).
	kernels := []struct {
		name  string
		desc  *grb.Descriptor
		vdesc *grb.Descriptor
	}{
		{"auto", nil, grb.DescPull},
		{"dense", grb.DescDenseSPA, &grb.Descriptor{AxB: grb.AxBDenseSPA, Dir: grb.DirPull}},
		{"hash", grb.DescHashSPA, &grb.Descriptor{AxB: grb.AxBHashSPA, Dir: grb.DirPull}},
	}
	fmt.Printf("  %-8s %-9s %-12s %-12s %-14s %s\n",
		"kernel", "op", "time", "ranges", "scratch", "(dense/hash routing)")
	for _, tc := range kernels {
		if *kernel != "" && tc.name != *kernel {
			continue
		}
		grb.ResetKernelCounts()
		c := must1(grb.NewMatrix[float64](n, n))
		start := time.Now()
		if err := grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, tc.desc); err != nil {
			log.Fatal(err)
		}
		must(c.Wait(grb.Materialize))
		el := time.Since(start)
		dense, hash := grb.KernelCounts()
		fmt.Printf("  %-8s %-9s %-12v %-12s %-14s\n", tc.name, "mxm", el,
			fmt.Sprintf("%dd/%dh", dense, hash),
			fmt.Sprintf("%d B", grb.KernelScratchBytes()))

		grb.ResetKernelCounts()
		w := must1(grb.NewVector[float64](n))
		start = time.Now()
		if err := grb.MxV(w, nil, nil, grb.PlusTimes[float64](), a, u, tc.vdesc); err != nil {
			log.Fatal(err)
		}
		must(w.Wait(grb.Materialize))
		el = time.Since(start)
		dense, hash = grb.KernelCounts()
		fmt.Printf("  %-8s %-9s %-12v %-12s %-14s\n", tc.name, "mxv", el,
			fmt.Sprintf("%dd/%dh", dense, hash),
			fmt.Sprintf("%d B", grb.KernelScratchBytes()))
	}
	fmt.Println("  (auto must match the hash row: the flop estimate is far below the width,")
	fmt.Println("   so every range routes to the hash SPA and scratch shrinks by orders of")
	fmt.Println("   magnitude; -kernel pins one accumulator for A/B comparisons)")
}

// traversalResult is one measured BFS run, serialized by -json.
type traversalResult struct {
	Graph     string  `json:"graph"`
	Vertices  int     `json:"vertices"`
	Edges     int     `json:"edges"`
	Dir       string  `json:"dir"`
	Seconds   float64 `json:"seconds"`
	Levels    int     `json:"levels"`
	Reached   int     `json:"reached"`
	PushCalls int64   `json:"push_calls"`
	PullCalls int64   `json:"pull_calls"`
	Transpose int64   `json:"transpose_materializations"`
	// Execution-hardening telemetry (nonzero only for the budgeted run).
	BudgetDegrades  int64 `json:"budget_degrades,omitempty"`
	PanicsRecovered int64 `json:"panics_recovered,omitempty"`
	// Blocked-engine telemetry (nonzero only for the blocked experiment).
	BlockedOps       int64 `json:"blocked_ops,omitempty"`
	TileTasks        int64 `json:"tile_tasks,omitempty"`
	BlockedFallbacks int64 `json:"blocked_fallbacks,omitempty"`
	// Modeled parallel span of the SpGEMM plan (critical-path flops under
	// greedy list scheduling) and its total flops. Deterministic, so the
	// benchcmp flat/blocked load-balance gate built on the span ratio is
	// noise-free and independent of the host's core count.
	SpanFlops int64 `json:"span_flops,omitempty"`
	WorkFlops int64 `json:"work_flops,omitempty"`
	// Serving-layer load results (nonzero only for the serve experiment):
	// request latency percentiles and sustained throughput. Seconds stays 0
	// for these series so the wall-clock tolerance gate skips them — the
	// benchcmp -servemax paired gate owns latency regressions.
	P50Ms float64 `json:"p50_ms,omitempty"`
	P95Ms float64 `json:"p95_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	QPS   float64 `json:"qps,omitempty"`
}

// traversal measures direction-optimizing BFS: the identical level-
// synchronous traversal (lagraph.BFSLevelsDir) pinned to push, pinned to
// pull, and left to the adaptive router, on a hypersparse uniform graph and
// a power-law RMAT graph. The per-level kernel routing counters and the
// number of transpose materializations (the pull side runs over the cached
// transpose view, so it must be exactly one per matrix) are printed beside
// the wall times.
func traversal() {
	header("Traversal — direction-optimizing (push/pull) BFS")
	threads := runtime.GOMAXPROCS(0)
	fmt.Printf("  host: %d usable CPUs; default context uses all of them\n", threads)

	type workload struct {
		name string
		a    *grb.Matrix[bool]
		n, m int
	}
	var loads []workload
	{
		g := gen.Hypersparse(200_000, 1_600_000, 11).Symmetrize()
		a, err := grb.NewMatrix[bool](g.N, g.N)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Build(g.Src, g.Dst, gen.BoolWeights(g), grb.LOr); err != nil {
			log.Fatal(err)
		}
		loads = append(loads, workload{"hypersparse", a, g.N, g.NumEdges()})
	}
	{
		a, g := rmatBool(*scale)
		loads = append(loads, workload{"rmat", a, g.N, g.NumEdges()})
	}

	fmt.Printf("  %-12s %-6s %-12s %-8s %-9s %-12s %s\n",
		"graph", "dir", "time", "levels", "reached", "push/pull", "transpose mats")
	for _, w := range loads {
		var pullTime, autoTime time.Duration
		for _, tc := range []struct {
			name string
			dir  grb.Direction
		}{
			{"push", grb.DirPush},
			{"pull", grb.DirPull},
			{"auto", grb.DirAuto},
		} {
			if *dirFlag != "" && tc.name != *dirFlag {
				continue
			}
			grb.ResetKernelCounts()
			start := time.Now()
			levels, err := lagraph.BFSLevelsDir(w.a, 0, tc.dir)
			if err != nil {
				log.Fatal(err)
			}
			if err := levels.Wait(grb.Materialize); err != nil {
				log.Fatal(err)
			}
			el := time.Since(start)
			push, pull := grb.DirectionCounts()
			tmats := grb.TransposeCount()
			reached := must1(levels.Nvals())
			maxLevel := 0
			if _, lv, err := levels.ExtractTuples(); err == nil {
				for _, l := range lv {
					if l > maxLevel {
						maxLevel = l
					}
				}
			}
			switch tc.name {
			case "pull":
				pullTime = el
			case "auto":
				autoTime = el
			}
			fmt.Printf("  %-12s %-6s %-12v %-8d %-9d %-12s %d\n",
				w.name, tc.name, el, maxLevel+1, reached,
				fmt.Sprintf("%dp/%dg", push, pull), tmats)
			benchResults = append(benchResults, traversalResult{
				Graph: w.name, Vertices: w.n, Edges: w.m, Dir: tc.name,
				Seconds: el.Seconds(), Levels: maxLevel + 1, Reached: reached,
				PushCalls: push, PullCalls: pull, Transpose: tmats,
			})
		}
		if pullTime > 0 && autoTime > 0 {
			fmt.Printf("  %-12s auto vs pull-only: %.2fx\n", w.name, float64(pullTime)/float64(autoTime))
		}
	}
	fmt.Println("  (push scatters frontier edges, pull gathers unvisited rows over the")
	fmt.Println("   cached transpose — materialized once per matrix, hence the final")
	fmt.Println("   column; auto switches per level by frontier density, Beamer-style)")

	// Budgeted rerun: the same traversal inside a context whose memory limit
	// (256 KiB) is far below the transpose the push route needs, so every
	// auto-routed push level degrades to the pull gather instead — the
	// graceful-degradation ladder of the execution-hardening design, measured.
	// The result stays exact; the route changes are counted as
	// budget_degrades, which (with panics_recovered) also lands in the per-op
	// profile written by -json.
	{
		w := loads[len(loads)-1]
		ctx := must1(grb.NewContext(grb.NonBlocking, nil, grb.WithMemoryLimit(256<<10)))
		// A fresh build (not a Dup) so no transpose cached by the unbudgeted
		// runs rides along — the budgeted push route must pay for its own.
		g := gen.Graph500RMAT(*scale, 16, 42).Symmetrize()
		ac := must1(grb.NewMatrix[bool](g.N, g.N, grb.InContext(ctx)))
		must(ac.Build(g.Src, g.Dst, gen.BoolWeights(g), grb.LOr))
		must(ac.Wait(grb.Materialize))
		dim := must1(ac.Nrows())
		desc := &grb.Descriptor{Replace: true, Structure: true, Complement: true, Dir: grb.DirAuto}
		levels := must1(grb.NewVector[int](dim, grb.InContext(ctx)))
		visited := must1(grb.NewVector[bool](dim, grb.InContext(ctx)))
		frontier := must1(grb.NewVector[bool](dim, grb.InContext(ctx)))
		must(frontier.SetElement(true, 0))
		grb.ResetKernelCounts()
		start := time.Now()
		for depth := 0; ; depth++ {
			if must1(frontier.Nvals()) == 0 {
				break
			}
			must(grb.VectorAssignScalar(levels, frontier, nil, depth, grb.All, grb.DescS))
			must(grb.VectorAssignScalar(visited, frontier, nil, true, grb.All, grb.DescS))
			must(grb.MxV(frontier, visited, nil, grb.LOrLAnd(), ac, frontier, desc))
			must(frontier.Wait(grb.Materialize))
		}
		el := time.Since(start)
		degrades, panics := grb.HardeningCounts()
		push, pull := grb.DirectionCounts()
		reached := must1(levels.Nvals())
		maxLevel := 0
		if _, lv, err := levels.ExtractTuples(); err == nil {
			for _, l := range lv {
				if l > maxLevel {
					maxLevel = l
				}
			}
		}
		fmt.Printf("  %-12s %-6s %-12v %-8d %-9d %-12s degrades=%d panics=%d\n",
			w.name, "budget", el, maxLevel+1, reached,
			fmt.Sprintf("%dp/%dg", push, pull), degrades, panics)
		fmt.Println("  (budget run: 256 KiB context limit — the push route's transpose no")
		fmt.Println("   longer fits, so the router falls back to pull per level instead of")
		fmt.Println("   failing; degrades counts those budget-forced route changes)")
		benchResults = append(benchResults, traversalResult{
			Graph: w.name, Vertices: w.n, Edges: w.m, Dir: "budget",
			Seconds: el.Seconds(), Levels: maxLevel + 1, Reached: reached,
			PushCalls: push, PullCalls: pull,
			BudgetDegrades: degrades, PanicsRecovered: panics,
		})
		must(ctx.Free())
	}
}

// denseKernels measures the monomorphized hot-semiring kernels against the
// generic closure kernels on block-format operands, single-threaded so the
// ratio certifies per-core kernel quality rather than parallel scaling. Two
// workloads: a PageRank-style power iteration (PLUS/TIMES float64 pull SpMV
// over a full rank vector, the canonical dense-frontier case) and a
// saturated-frontier BFS step (LOR/LAND pull over an all-true frontier,
// where the monomorphized loop also short-circuits on the first hit). The
// Spec descriptor pin selects the kernel tier per run — the top level of the
// routing decision tree — and -format moves the block-format tier underneath
// it. Each (workload, spec) pair lands in -json as a (graph, mono|closure)
// series; cmd/benchcmp -monomin turns the pair ratio into a CI gate.
func denseKernels() {
	header("Dense — monomorphized hot-semiring kernels vs closure kernels")
	hintName := "auto"
	if *format != "" {
		hintName = *format
	}
	ctx := must1(grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(1)))

	a := rmatFloat(*scale)
	must(a.SwitchContext(ctx))
	dim := must1(a.Nrows())
	nnz := must1(a.Nvals())
	ab, g := rmatBool(*scale)
	must(ab.SwitchContext(ctx))

	const iters = 12
	fmt.Printf("  scale=%d: n=%d nnz=%d, %d iterations per timing, 1 thread, format hint %s\n",
		*scale, int(dim), nnz, iters, hintName)
	fmt.Printf("  %-14s %-8s %-12s %-11s %s\n", "workload", "spec", "time", "mono/clos", "conversions")

	ind := make([]grb.Index, dim)
	for i := range ind {
		ind[i] = grb.Index(i)
	}
	fill := func(x float64) *grb.Vector[float64] {
		val := make([]float64, dim)
		for i := range val {
			val[i] = x
		}
		v := must1(grb.NewVector[float64](dim, grb.InContext(ctx)))
		must(v.Build(ind, val, nil))
		must(v.Wait(grb.Materialize))
		return v
	}

	// pagerank: r' = 0.85·(A r) ⊕ teleport. The teleport vector is full, so
	// the eWiseAdd union keeps r full and every pull SpMV sees a dense
	// frontier. The damping apply and the add are identical work on both
	// sides; the measured gap is the SpMV kernel tier.
	damp := func(x, y float64) float64 { return 0.85*x + y }
	pagerank := func(spec grb.SpecMode) (time.Duration, int64, int64, int64) {
		r := fill(1 / float64(dim))
		tele := fill(0.15 / float64(dim))
		w := must1(grb.NewVector[float64](dim, grb.InContext(ctx)))
		desc := &grb.Descriptor{Dir: grb.DirPull, Spec: spec}
		grb.ResetKernelCounts()
		start := time.Now()
		for it := 0; it < iters; it++ {
			must(grb.MxV(w, nil, nil, grb.PlusTimes[float64](), a, r, desc))
			must(grb.EWiseAddVector(r, nil, nil, damp, w, tele, nil))
			must(r.Wait(grb.Materialize))
		}
		el := time.Since(start)
		mono, clos := grb.MonoKernelCounts()
		return el, mono, clos, grb.FormatConversionCount()
	}

	// bfs-sat: the steady state of a direction-optimized BFS once the
	// frontier saturates — every position set, so the pull gather walks full
	// rows and the LOR monoid can stop at the first true product.
	bfsSat := func(spec grb.SpecMode) (time.Duration, int64, int64, int64) {
		f := must1(grb.NewVector[bool](dim, grb.InContext(ctx)))
		tv := make([]bool, dim)
		for i := range tv {
			tv[i] = true
		}
		must(f.Build(ind, tv, nil))
		must(f.Wait(grb.Materialize))
		w := must1(grb.NewVector[bool](dim, grb.InContext(ctx)))
		desc := &grb.Descriptor{Dir: grb.DirPull, Spec: spec}
		grb.ResetKernelCounts()
		start := time.Now()
		for it := 0; it < iters; it++ {
			must(grb.MxV(w, nil, nil, grb.LOrLAnd(), ab, f, desc))
			must(w.Wait(grb.Materialize))
		}
		el := time.Since(start)
		mono, clos := grb.MonoKernelCounts()
		return el, mono, clos, grb.FormatConversionCount()
	}

	for _, wl := range []struct {
		name  string
		edges int
		run   func(grb.SpecMode) (time.Duration, int64, int64, int64)
	}{
		{"pagerank", int(nnz), pagerank},
		{"bfs-sat", g.NumEdges(), bfsSat},
	} {
		var monoTime, closTime time.Duration
		for _, tc := range []struct {
			name string
			spec grb.SpecMode
		}{
			{"mono", grb.SpecMono},
			{"closure", grb.SpecGeneric},
		} {
			// Best of three repetitions: the mono loops finish in a few
			// milliseconds, where scheduler noise on a shared host easily
			// doubles a single sample.
			el, mono, clos, conv := wl.run(tc.spec)
			for rep := 0; rep < 2; rep++ {
				if el2, _, _, _ := wl.run(tc.spec); el2 < el {
					el = el2
				}
			}
			fmt.Printf("  %-14s %-8s %-12v %-11s %d\n",
				wl.name, tc.name, el, fmt.Sprintf("%dm/%dc", mono, clos), conv)
			if tc.name == "mono" {
				monoTime = el
			} else {
				closTime = el
			}
			benchResults = append(benchResults, traversalResult{
				Graph: wl.name, Vertices: int(dim), Edges: wl.edges,
				Dir: tc.name, Seconds: el.Seconds(),
			})
		}
		if monoTime > 0 {
			fmt.Printf("  %-14s closure/mono speedup: %.2fx\n", wl.name, float64(closTime)/float64(monoTime))
		}
	}
	fmt.Println("  (spec pins the kernel tier per run: mono takes the monomorphized")
	fmt.Println("   direct-arithmetic loop over the cached block view, closure erases the")
	fmt.Println("   semiring tag so the generic kernels run; -format moves the block tier)")
	must(ctx.Free())
}

// blockedEngine measures the 2D-blocked SUMMA plans against the flat
// kernels at 8 threads. Two workloads:
//
//   - blocked-spgemm: A·A on gen.GridPartitioned, whose two pivot rows carry
//     flop counts far above total/threads. A 1D flop-balanced row partition
//     cannot split a row, so the flat kernel serializes each pivot on one
//     worker; the blocked plan spreads the pivots across column tiles. The
//     flat/blocked ratio on this series is the cmd/benchcmp -blockedmin gate.
//   - blocked-pagerank: the PageRank pull SpMV (full rank vector) on
//     gen.BlockDiagonal, flat vs the forced blocked plan. Row-parallel flat
//     SpMV is already balanced here, so this series documents blocked SpMV
//     overhead rather than a win; auto routing therefore keeps SpMV flat.
//
// Each series runs flat (Block off), blocked (forced) and auto (default
// routing: the threshold-gated auto-blocker plus the per-op router). The
// -grid flag pins the tile grid; unset, the experiment uses 8x8 to match
// the thread count.
func blockedEngine() {
	header("Blocked — 2D SUMMA plans vs flat kernels")
	const threads = 8
	if *gridFlag == "" {
		grb.SetBlockGrid(8, 8)
		defer grb.SetBlockGrid(0, 0)
	}
	gr, gc := grb.BlockGrid()
	fmt.Printf("  threads=%d grid=%dx%d (pin with -grid RxC) block threshold=%d nnz\n",
		threads, gr, gc, grb.BlockThreshold())
	ctx := must1(grb.NewContext(grb.NonBlocking, nil, grb.WithThreads(threads)))

	// SpGEMM on the skewed generator.
	const n, m = 8192, 1 << 17
	g := gen.GridPartitioned(n, 8, m, 21)
	a := must1(grb.NewMatrix[float64](g.N, g.N, grb.InContext(ctx)))
	must(a.Build(g.Src, g.Dst, gen.UniformWeights(g, 0.5, 2, 21), grb.Plus[float64]))
	must(a.Wait(grb.Materialize))
	annz := must1(a.Nvals())
	fmt.Printf("  spgemm: %d x %d, %d entries (two pivot rows dominate the A·A flops)\n", n, n, annz)
	fmt.Printf("  %-16s %-9s %-12s %-11s %-11s %-9s %s\n",
		"workload", "route", "time", "ops/tasks", "dense/hash", "fallbacks", "modeled")

	series := []struct {
		name string
		desc *grb.Descriptor
	}{
		{"flat", grb.DescFlat},
		{"blocked", grb.DescBlocked},
		{"auto", nil},
	}
	var flatSpan, blockedSpan int64
	for _, tc := range series {
		var el time.Duration
		var ops, tasks, td, th, falls, span, work int64
		for rep := 0; rep < 3; rep++ { // best of three: wall times are noisy
			grb.ResetKernelCounts()
			c := must1(grb.NewMatrix[float64](n, n, grb.InContext(ctx)))
			start := time.Now()
			must(grb.MxM(c, nil, nil, grb.PlusTimes[float64](), a, a, tc.desc))
			must(c.Wait(grb.Materialize))
			e := time.Since(start)
			if rep == 0 || e < el {
				el = e
				ops, tasks = grb.BlockKernelCounts()
				td, th = grb.BlockTileCounts()
				falls = grb.BlockFallbackCount()
				span, work = grb.SpanFlops()
			}
		}
		fmt.Printf("  %-16s %-9s %-12v %-11s %-11s %-9d %.2fx\n",
			"blocked-spgemm", tc.name, el,
			fmt.Sprintf("%d/%d", ops, tasks), fmt.Sprintf("%dd/%dh", td, th), falls,
			float64(work)/float64(span))
		switch tc.name {
		case "flat":
			flatSpan = span
		case "blocked":
			blockedSpan = span
		}
		benchResults = append(benchResults, traversalResult{
			Graph: "blocked-spgemm", Vertices: n, Edges: annz, Dir: tc.name,
			Seconds: el.Seconds(), BlockedOps: ops, TileTasks: tasks,
			BlockedFallbacks: falls, SpanFlops: span, WorkFlops: work,
		})
	}
	if flatSpan > 0 && blockedSpan > 0 {
		fmt.Printf("  %-16s flat/blocked span ratio: %.2fx (modeled %d-thread makespan,\n",
			"blocked-spgemm", float64(flatSpan)/float64(blockedSpan), threads)
		fmt.Println("                   the load-balance win the 2D plan exists for; wall times on")
		fmt.Println("                   hosts with fewer cores than threads show overhead instead)")
	}

	// PageRank pull SpMV on a block-diagonal graph.
	const pn, pm, iters = 16384, 1 << 17, 8
	pg := gen.BlockDiagonal(pn, 8, pm, 23)
	pa := must1(grb.NewMatrix[float64](pn, pn, grb.InContext(ctx)))
	must(pa.Build(pg.Src, pg.Dst, gen.UniformWeights(pg, 0.5, 2, 23), grb.Plus[float64]))
	must(pa.Wait(grb.Materialize))
	fmt.Printf("  pagerank: %d x %d, %d entries, %d iterations per timing\n",
		pn, pn, must1(pa.Nvals()), iters)

	ind := make([]grb.Index, pn)
	val := make([]float64, pn)
	for i := range ind {
		ind[i] = grb.Index(i)
		val[i] = 1 / float64(pn)
	}
	damp := func(x, y float64) float64 { return 0.85*x + y }
	pagerank := func(block grb.BlockMode) time.Duration {
		r := must1(grb.NewVector[float64](pn, grb.InContext(ctx)))
		must(r.Build(ind, val, nil))
		tele := must1(grb.NewVector[float64](pn, grb.InContext(ctx)))
		must(tele.Build(ind, val, nil))
		w := must1(grb.NewVector[float64](pn, grb.InContext(ctx)))
		desc := &grb.Descriptor{Dir: grb.DirPull, Block: block}
		start := time.Now()
		for it := 0; it < iters; it++ {
			must(grb.MxV(w, nil, nil, grb.PlusTimes[float64](), pa, r, desc))
			must(grb.EWiseAddVector(r, nil, nil, damp, w, tele, nil))
			must(r.Wait(grb.Materialize))
		}
		return time.Since(start)
	}
	for _, tc := range []struct {
		name  string
		block grb.BlockMode
	}{
		{"flat", grb.BlockOff},
		{"blocked", grb.BlockOn},
		{"auto", grb.BlockDefault},
	} {
		grb.ResetKernelCounts()
		el := pagerank(tc.block)
		for rep := 0; rep < 2; rep++ {
			if e := pagerank(tc.block); e < el {
				el = e
			}
		}
		ops, tasks := grb.BlockKernelCounts()
		fmt.Printf("  %-16s %-9s %-12v %-11s\n",
			"blocked-pagerank", tc.name, el, fmt.Sprintf("%d/%d", ops, tasks))
		benchResults = append(benchResults, traversalResult{
			Graph: "blocked-pagerank", Vertices: pn, Edges: pg.NumEdges(), Dir: tc.name,
			Seconds: el.Seconds(), BlockedOps: ops, TileTasks: tasks,
		})
	}
	fmt.Println("  (the spgemm flat/blocked span ratio is the benchcmp -blockedmin gate; the")
	fmt.Println("   pagerank pair documents forced-blocked SpMV overhead — auto keeps SpMV")
	fmt.Println("   flat, so its auto wall time must track the flat one: the -automax gate)")
	must(ctx.Free())
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) grb result, aborting on error.
func must1[A any](a A, err error) A { must(err); return a }

// must2 unwraps a (value, value, error) grb result, aborting on error.
func must2[A, B any](a A, b B, err error) (A, B) { must(err); return a, b }

// must3 unwraps a (value, value, value, error) grb result, aborting on error.
func must3[A, B, C any](a A, b B, c C, err error) (A, B, C) { must(err); return a, b, c }

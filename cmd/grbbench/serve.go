package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/serve"
)

// The serve experiment measures the multi-tenant query service the way a
// capacity plan would: per algorithm, a closed-loop driver (fixed worker
// count, next request on completion) establishes the sustained throughput
// ceiling, then an open-loop driver (fixed arrival schedule, latency
// measured from the scheduled arrival, so queueing delay counts) probes
// tail latency at a fraction of that ceiling. p50/p95/p99 and QPS land in
// the -json schema as serve-<algo>/{closed,open} series with Seconds=0 —
// the wall-clock tolerance gate skips them; `benchcmp -servemax` owns
// latency regressions.
var (
	serveDur   = flag.Duration("serve-dur", 1500*time.Millisecond, "measurement window per serve driver")
	serveConc  = flag.Int("serve-conc", 4, "closed-loop concurrency for the serve experiment")
	serveRate  = flag.Float64("serve-rate", 0, "open-loop arrival rate in req/s (0 derives 70% of the measured closed-loop throughput)")
	serveScale = flag.Int("serve-scale", 10, "RMAT scale of the serve experiment graph")
)

// loadStats is one driver run's summary. sheds counts backpressure
// rejections (429/503) the driver absorbed with backoff — load the server
// declined, not errors.
type loadStats struct {
	n             int
	p50, p95, p99 float64 // milliseconds
	qps           float64
	sheds         int
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarize(latMs []float64, elapsed time.Duration) loadStats {
	sort.Float64s(latMs)
	qps := 0.0
	if elapsed > 0 {
		qps = float64(len(latMs)) / elapsed.Seconds()
	}
	return loadStats{
		n:   len(latMs),
		p50: percentile(latMs, 50), p95: percentile(latMs, 95), p99: percentile(latMs, 99),
		qps: qps,
	}
}

// serveShedRetryCap bounds how long a driver honors a Retry-After hint, so
// a pathological hint cannot stall the measurement window.
const serveShedRetryCap = 250 * time.Millisecond

// doServeReq issues one query. A 429/503 is backpressure, not an error:
// shed reports it and retryAfter carries the server's Retry-After hint
// (zero when absent) for the caller's backoff.
func doServeReq(client *http.Client, url string) (retryAfter time.Duration, shed bool, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return 0, false, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return retryAfter, true, nil
	default:
		return 0, false, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
}

// shedBackoff sleeps out a shed: the server's hint capped to the retry
// bound, with ±50% jitter so a fleet of shed clients does not resynchronize
// into the next thundering herd.
func shedBackoff(hint time.Duration) {
	base := hint
	if base <= 0 || base > serveShedRetryCap {
		base = serveShedRetryCap
	}
	time.Sleep(base/2 + time.Duration(rand.Int63n(int64(base))))
}

// driveClosed is the closed-loop driver: `workers` goroutines each issue
// the next request the moment the previous one completes, for the window.
// Latency here is pure service time under full concurrency.
func driveClosed(client *http.Client, url string, workers int, dur time.Duration) loadStats {
	var mu sync.Mutex
	var lats []float64
	var sheds int64
	start := time.Now()
	stop := start.Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []float64
			for time.Now().Before(stop) {
				t0 := time.Now()
				hint, shed, err := doServeReq(client, url)
				must(err)
				if shed {
					atomic.AddInt64(&sheds, 1)
					shedBackoff(hint)
					continue
				}
				local = append(local, time.Since(t0).Seconds()*1000)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	st := summarize(lats, time.Since(start))
	st.sheds = int(atomic.LoadInt64(&sheds))
	return st
}

// driveOpen is the open-loop driver: arrivals on a fixed schedule at
// `rate` req/s regardless of completions, latency measured from the
// scheduled arrival time — so a server that falls behind pays its queueing
// delay in the tail percentiles instead of silently shedding load.
func driveOpen(client *http.Client, url string, rate float64, dur time.Duration) loadStats {
	n := int(rate * dur.Seconds())
	if n < 1 {
		n = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	lats := make([]float64, n)
	var sheds int64
	start := time.Now()
	var wg sync.WaitGroup
	// Batched dispatch: fire every arrival that is due, then sleep until the
	// next — per-arrival Sleep calls cannot hold a sub-millisecond schedule,
	// and a late dispatcher would charge its own lag to the server's tail.
	for i := 0; i < n; {
		due := int(time.Since(start)/interval) + 1
		if due > n {
			due = n
		}
		for ; i < due; i++ {
			sched := start.Add(time.Duration(i) * interval)
			wg.Add(1)
			go func(i int, sched time.Time) {
				defer wg.Done()
				// A shed arrival backs off on the server's hint and retries:
				// its latency (from the scheduled instant) then includes the
				// backoff, which is exactly what that client experienced. An
				// arrival shed through every retry records no latency sample.
				lats[i] = -1
				for attempt := 0; attempt < 4; attempt++ {
					hint, shed, err := doServeReq(client, url)
					must(err)
					if !shed {
						lats[i] = time.Since(sched).Seconds() * 1000
						return
					}
					atomic.AddInt64(&sheds, 1)
					shedBackoff(hint)
				}
			}(i, sched)
		}
		if i < n {
			time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		}
	}
	wg.Wait()
	served := lats[:0:0]
	for _, l := range lats {
		if l >= 0 {
			served = append(served, l)
		}
	}
	st := summarize(served, time.Since(start))
	st.sheds = int(atomic.LoadInt64(&sheds))
	return st
}

func serveBench() {
	header("Serve — multi-tenant query service under load")
	g := must1(serve.FromGen("serve", gen.Graph500RMAT(*serveScale, 8, 42).Symmetrize()))
	cfg := serve.Config{Default: serve.TenantConfig{Deadline: 30 * time.Second}}
	ts := httptest.NewServer(serve.NewServer([]*serve.Graph{g}, cfg).Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}

	fmt.Printf("  graph: rmat scale %d (n=%d, edges=%d)\n", *serveScale, g.N, g.Edges)
	fmt.Printf("  closed loop: %d workers × %s; open loop: %s at 70%% of closed throughput (capped 500/s)\n",
		*serveConc, *serveDur, *serveDur)
	fmt.Printf("  %-12s %-7s %8s %8s %8s %8s %6s %6s\n", "algo", "driver", "p50ms", "p95ms", "p99ms", "qps", "n", "sheds")

	algos := []struct{ name, path string }{
		{"bfs", "/query/bfs?src=0"},
		{"sssp", "/query/sssp?src=0"},
		{"pagerank", "/query/pagerank?maxiter=10"},
		{"triangles", "/query/triangles"},
		{"ego", "/query/ego?src=0&hops=2"},
	}
	report := func(algo, driver string, st loadStats) {
		fmt.Printf("  %-12s %-7s %8.2f %8.2f %8.2f %8.1f %6d %6d\n",
			algo, driver, st.p50, st.p95, st.p99, st.qps, st.n, st.sheds)
		benchResults = append(benchResults, traversalResult{
			Graph: "serve-" + algo, Vertices: g.N, Edges: g.Edges, Dir: driver,
			P50Ms: st.p50, P95Ms: st.p95, P99Ms: st.p99, QPS: st.qps,
		})
	}
	for _, al := range algos {
		url := ts.URL + al.path
		for i := 0; i < 3; i++ { // warmup: caches, connection pool, JIT-ish paths
			_, _, err := doServeReq(client, url)
			must(err)
		}
		closed := driveClosed(client, url, *serveConc, *serveDur)
		report(al.name, "closed", closed)
		rate := *serveRate
		if rate == 0 {
			// 70% of the closed-loop ceiling, capped: the open driver probes
			// tail latency at a sustainable rate — past the knee, queueing
			// delay grows without bound and the numbers only measure overload.
			rate = closed.qps * 0.7
			if rate > 500 {
				rate = 500
			}
		}
		if rate < 1 {
			rate = 1
		}
		report(al.name, "open", driveOpen(client, url, rate, *serveDur))
	}
	fmt.Println("  (closed = service time at fixed concurrency; open = scheduled arrivals,")
	fmt.Println("   latency from the scheduled instant, so queueing delay counts in the tail)")
}

// benchcmp diffs two grbbench traversal JSON files (the BENCH_*.json series
// written by -json / scripts/bench_baseline.sh) and fails when any measured
// (graph, dir) series slowed down by more than the tolerance:
//
//	benchcmp [-tol 15] baseline.json current.json
//
// Exit status 0 means every series is within tolerance; 1 means at least one
// regressed; 2 means the inputs could not be compared (missing file, no
// overlapping series). Series present in only one file are reported but do
// not fail the comparison — experiments come and go across PRs.
//
// -selftest runs the gate against itself: the baseline must pass unchanged,
// and a synthetic 20% slowdown of every series must be flagged at the default
// 15% tolerance. CI uses it to prove the gate can actually fire. Each ratio
// gate enabled alongside -selftest adds a pass/fire step pair of its own.
//
// -monomin R adds a paired-ratio gate on the current file (the baseline under
// -selftest): every graph carrying both a mono and a closure series — the
// dense experiment's kernel-tier A/B — must show closure/mono >= R, i.e. the
// monomorphized kernel at least R× faster than the closure kernel it
// replaces. 0 (the default) disables the gate.
//
// -blockedmin R adds the 2D-blocked load-balance gate: every graph carrying
// both a flat and a blocked series with span telemetry (the blocked
// experiment's SpGEMM A/B) must show span(flat)/span(blocked) >= R. The span
// is the modeled parallel makespan in flops — deterministic and independent
// of the host's core count, so the gate holds on single-core CI runners
// where wall-clock parallel speedups cannot exist. 0 disables the gate.
//
// -automax R adds the auto-routing guard: for every graph carrying both a
// flat and an auto series, the auto route must track whichever plan it
// chose. When the auto series shows no blocked ops it took the flat route,
// so its wall time must stay within R× of the flat series; when it engaged
// the blocked engine and span telemetry is present, its span must stay
// within R× of the forced-blocked series. 0 disables the gate.
//
// -servemax R adds the serving-latency gate: every (graph, dir) series
// present in BOTH files with measured latency percentiles (the serve
// experiment's serve-<algo>/{closed,open} series) must keep its current
// p50 and p99 within R× of the baseline's. Unlike the within-file ratio
// gates this one is paired across the two files, like the wall-clock
// tolerance — but multiplicative, because sub-millisecond latencies need
// more headroom than percentage tolerances give. 0 disables the gate.
//
// In two-file mode every enabled gate is evaluated (no early exit) and one
// machine-readable summary line mirroring ci.sh's CI_SUMMARY is printed:
//
//	BENCH_GATE status=ok wall=pass wall_worst=+3.2% mono=pass mono_worst=2.31x serve=off
//
// so the advisory bench job in the workflow is greppable per gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

var (
	tol        = flag.Float64("tol", 15, "maximum allowed slowdown, percent")
	monomin    = flag.Float64("monomin", 0, "minimum closure/mono speedup for every graph with paired mono+closure series (0 disables)")
	blockedmin = flag.Float64("blockedmin", 0, "minimum flat/blocked modeled-span ratio for every graph with paired flat+blocked span series (0 disables)")
	automax    = flag.Float64("automax", 0, "maximum auto-vs-chosen-route ratio for every graph with paired flat+auto series (0 disables)")
	servemax   = flag.Float64("servemax", 0, "maximum current/baseline latency ratio for p50 and p99 of every paired serve series (0 disables)")
	selftest   = flag.Bool("selftest", false, "verify each enabled gate fires on a synthetic degradation of the baseline")
)

// series is one measured (graph, dir) run from a grbbench JSON file: the
// wall time plus the blocked-engine telemetry the ratio gates read.
type series struct {
	Graph      string  `json:"graph"`
	Dir        string  `json:"dir"`
	Seconds    float64 `json:"seconds"`
	BlockedOps int64   `json:"blocked_ops"`
	SpanFlops  int64   `json:"span_flops"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// benchFile is the subset of the grbbench -json schema the gate reads.
type benchFile struct {
	Results []series `json:"results"`
}

func load(path string) (map[string]series, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("%s: no results array", path)
	}
	m := make(map[string]series, len(f.Results))
	for _, s := range f.Results {
		m[s.Graph+"/"+s.Dir] = s
	}
	return m, nil
}

// compare reports every overlapping series and returns the keys that slowed
// down by more than tolPct.
func compare(base, cur map[string]series, tolPct float64) (regressed []string, worst float64) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k].Seconds
		c, ok := cur[k]
		if !ok {
			fmt.Printf("  %-24s base=%.4fs  (missing from current — skipped)\n", k, b)
			continue
		}
		if b <= 0 {
			fmt.Printf("  %-24s base=%.4fs  (non-positive baseline — skipped)\n", k, b)
			continue
		}
		delta := (c.Seconds - b) / b * 100
		if delta > worst {
			worst = delta
		}
		mark := "ok"
		if delta > tolPct {
			mark = "REGRESSED"
			regressed = append(regressed, k)
		}
		fmt.Printf("  %-24s base=%.4fs cur=%.4fs delta=%+.1f%% %s\n", k, b, c.Seconds, delta, mark)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("  %-24s cur=%.4fs  (new series — no baseline)\n", k, cur[k].Seconds)
		}
	}
	return regressed, worst
}

// checkMono enforces the paired-ratio gate: for every graph that carries
// both a "<graph>/mono" and a "<graph>/closure" series, the closure time
// divided by the mono time must reach minRatio. Graphs without the pair are
// untouched — the gate is about the kernel-tier A/B, not general series.
func checkMono(cur map[string]series, minRatio float64) (failed []string, worst float64) {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		graph, ok := strings.CutSuffix(k, "/mono")
		if !ok {
			continue
		}
		clos, ok := cur[graph+"/closure"]
		mono := cur[k].Seconds
		if !ok || mono <= 0 {
			continue
		}
		ratio := clos.Seconds / mono
		if worst == 0 || ratio < worst {
			worst = ratio
		}
		mark := "ok"
		if ratio < minRatio {
			mark = "TOO SLOW"
			failed = append(failed, graph)
		}
		fmt.Printf("  %-24s mono=%.4fs closure=%.4fs speedup=%.2fx (need %.2fx) %s\n",
			graph, mono, clos.Seconds, ratio, minRatio, mark)
	}
	return failed, worst
}

// checkBlocked enforces the 2D-blocked load-balance gate: for every graph
// carrying both a "<graph>/flat" and a "<graph>/blocked" series with span
// telemetry, the flat plan's modeled span divided by the blocked plan's must
// reach minRatio. Graphs without span data (series predating the telemetry,
// or non-SpGEMM experiments) are untouched.
func checkBlocked(cur map[string]series, minRatio float64) (failed []string, pairs int, worst float64) {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		graph, ok := strings.CutSuffix(k, "/flat")
		if !ok {
			continue
		}
		blk, ok := cur[graph+"/blocked"]
		flat := cur[k]
		if !ok || flat.SpanFlops <= 0 || blk.SpanFlops <= 0 {
			continue
		}
		pairs++
		ratio := float64(flat.SpanFlops) / float64(blk.SpanFlops)
		if worst == 0 || ratio < worst {
			worst = ratio
		}
		mark := "ok"
		if ratio < minRatio {
			mark = "TOO SLOW"
			failed = append(failed, graph)
		}
		fmt.Printf("  %-24s span flat=%d blocked=%d ratio=%.2fx (need %.2fx) %s\n",
			graph, flat.SpanFlops, blk.SpanFlops, ratio, minRatio, mark)
	}
	return failed, pairs, worst
}

// checkAuto enforces the auto-routing guard: for every graph carrying both a
// "<graph>/flat" and a "<graph>/auto" series, the auto route must track the
// plan it chose — flat wall time when it stayed flat (no blocked ops),
// forced-blocked span when it engaged the blocked engine. maxRatio bounds
// how far above the chosen route's number the auto series may drift.
func checkAuto(cur map[string]series, maxRatio float64) (failed []string, pairs int, worst float64) {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		graph, ok := strings.CutSuffix(k, "/flat")
		if !ok {
			continue
		}
		auto, ok := cur[graph+"/auto"]
		flat := cur[k]
		if !ok {
			continue
		}
		var ratio float64
		var desc string
		switch {
		case auto.BlockedOps == 0 && flat.Seconds > 0:
			ratio = auto.Seconds / flat.Seconds
			desc = fmt.Sprintf("stayed flat: auto=%.4fs flat=%.4fs", auto.Seconds, flat.Seconds)
		case auto.BlockedOps > 0 && auto.SpanFlops > 0:
			blk, ok := cur[graph+"/blocked"]
			if !ok || blk.SpanFlops <= 0 {
				continue
			}
			ratio = float64(auto.SpanFlops) / float64(blk.SpanFlops)
			desc = fmt.Sprintf("went blocked: span auto=%d blocked=%d", auto.SpanFlops, blk.SpanFlops)
		default:
			continue
		}
		pairs++
		if ratio > worst {
			worst = ratio
		}
		mark := "ok"
		if ratio > maxRatio {
			mark = "ADRIFT"
			failed = append(failed, graph)
		}
		fmt.Printf("  %-24s %s ratio=%.2fx (max %.2fx) %s\n", graph, desc, ratio, maxRatio, mark)
	}
	return failed, pairs, worst
}

// checkServe enforces the paired cross-file latency gate: for every
// (graph, dir) series present in both files with a measured p50, the
// current file's p50 and p99 must each stay within maxRatio of the
// baseline's. Serve series carry Seconds=0, so the wall-clock tolerance
// gate skips them and this gate is their only owner.
func checkServe(base, cur map[string]series, maxRatio float64) (failed []string, pairs int, worst float64) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok || b.P50Ms <= 0 || c.P50Ms <= 0 {
			continue
		}
		pairs++
		ratio := c.P50Ms / b.P50Ms
		if b.P99Ms > 0 && c.P99Ms > 0 {
			if r99 := c.P99Ms / b.P99Ms; r99 > ratio {
				ratio = r99
			}
		}
		if ratio > worst {
			worst = ratio
		}
		mark := "ok"
		if ratio > maxRatio {
			mark = "SLOWER"
			failed = append(failed, k)
		}
		fmt.Printf("  %-24s p50 %.2f->%.2fms p99 %.2f->%.2fms ratio=%.2fx (max %.2fx) %s\n",
			k, b.P50Ms, c.P50Ms, b.P99Ms, c.P99Ms, ratio, maxRatio, mark)
	}
	return failed, pairs, worst
}

func main() {
	flag.Parse()
	if *selftest {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchcmp -selftest baseline.json")
			os.Exit(2)
		}
		base, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		steps := 2
		for _, gate := range []float64{*monomin, *blockedmin, *automax, *servemax} {
			if gate > 0 {
				steps += 2
			}
		}
		step := 0
		announce := func(format string, args ...any) {
			step++
			fmt.Printf("selftest %d/%d: %s\n", step, steps, fmt.Sprintf(format, args...))
		}
		announce("baseline vs itself at tol=%.0f%% (must pass)", *tol)
		if reg, _ := compare(base, base, *tol); len(reg) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp selftest: identical inputs flagged %v\n", reg)
			os.Exit(1)
		}
		slowed := make(map[string]series, len(base))
		for k, v := range base {
			v.Seconds *= 1.20
			slowed[k] = v
		}
		timed := 0
		for _, v := range base {
			if v.Seconds > 0 {
				timed++
			}
		}
		announce("synthetic 20%% slowdown at tol=%.0f%% (must be flagged)", *tol)
		if reg, _ := compare(base, slowed, *tol); len(reg) != timed {
			fmt.Fprintf(os.Stderr, "benchcmp selftest: 20%% slowdown flagged %d of %d timed series\n", len(reg), timed)
			os.Exit(1)
		}
		if *monomin > 0 {
			announce("mono speedup gate at %.2fx (baseline must pass)", *monomin)
			if failed, _ := checkMono(base, *monomin); len(failed) > 0 {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: baseline failed the mono gate: %v\n", failed)
				os.Exit(1)
			}
			// Degrade every mono series to its closure time: ratio 1.0 must
			// be flagged, proving the gate can fire.
			degraded := make(map[string]series, len(base))
			pairs := 0
			for k, v := range base {
				if g, ok := strings.CutSuffix(k, "/mono"); ok {
					if clos, ok := base[g+"/closure"]; ok {
						v.Seconds = clos.Seconds
						pairs++
					}
				}
				degraded[k] = v
			}
			if pairs == 0 {
				fmt.Fprintln(os.Stderr, "benchcmp selftest: -monomin set but no mono/closure pairs in baseline")
				os.Exit(1)
			}
			announce("mono degraded to closure parity (must be flagged)")
			if failed, _ := checkMono(degraded, *monomin); len(failed) != pairs {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: parity flagged %d of %d pairs\n", len(failed), pairs)
				os.Exit(1)
			}
		}
		if *blockedmin > 0 {
			announce("blocked span gate at %.2fx (baseline must pass)", *blockedmin)
			failed, pairs, _ := checkBlocked(base, *blockedmin)
			if len(failed) > 0 {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: baseline failed the blocked gate: %v\n", failed)
				os.Exit(1)
			}
			if pairs == 0 {
				fmt.Fprintln(os.Stderr, "benchcmp selftest: -blockedmin set but no flat/blocked span pairs in baseline")
				os.Exit(1)
			}
			// Degrade every blocked span to its flat span: ratio 1.0 must be
			// flagged, proving the load-balance gate can fire.
			degraded := make(map[string]series, len(base))
			for k, v := range base {
				if g, ok := strings.CutSuffix(k, "/blocked"); ok {
					if flat, ok := base[g+"/flat"]; ok && flat.SpanFlops > 0 && v.SpanFlops > 0 {
						v.SpanFlops = flat.SpanFlops
					}
				}
				degraded[k] = v
			}
			announce("blocked span degraded to flat parity (must be flagged)")
			if failed, _, _ := checkBlocked(degraded, *blockedmin); len(failed) != pairs {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: span parity flagged %d of %d pairs\n", len(failed), pairs)
				os.Exit(1)
			}
		}
		if *automax > 0 {
			announce("auto routing guard at %.2fx (baseline must pass)", *automax)
			failed, pairs, _ := checkAuto(base, *automax)
			if len(failed) > 0 {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: baseline failed the auto guard: %v\n", failed)
				os.Exit(1)
			}
			if pairs == 0 {
				fmt.Fprintln(os.Stderr, "benchcmp selftest: -automax set but no flat/auto pairs in baseline")
				os.Exit(1)
			}
			// Blow every auto series past its chosen route by 4×: wall time
			// for flat-routed autos, span for blocked-routed ones.
			adrift := make(map[string]series, len(base))
			for k, v := range base {
				if _, ok := strings.CutSuffix(k, "/auto"); ok {
					v.Seconds *= 4
					v.SpanFlops *= 4
				}
				adrift[k] = v
			}
			announce("auto series blown 4x past its route (must be flagged)")
			if failed, _, _ := checkAuto(adrift, *automax); len(failed) != pairs {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: adrift auto flagged %d of %d pairs\n", len(failed), pairs)
				os.Exit(1)
			}
		}
		if *servemax > 0 {
			announce("serve latency gate at %.2fx (baseline vs itself must pass)", *servemax)
			failed, pairs, _ := checkServe(base, base, *servemax)
			if len(failed) > 0 {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: baseline failed the serve gate against itself: %v\n", failed)
				os.Exit(1)
			}
			if pairs == 0 {
				fmt.Fprintln(os.Stderr, "benchcmp selftest: -servemax set but no serve latency series in baseline")
				os.Exit(1)
			}
			// Quadruple every latency percentile: every pair must be flagged,
			// proving the paired gate can fire.
			slower := make(map[string]series, len(base))
			for k, v := range base {
				if v.P50Ms > 0 {
					v.P50Ms *= 4
					v.P99Ms *= 4
				}
				slower[k] = v
			}
			announce("serve latencies blown 4x (must be flagged)")
			if failed, _, _ := checkServe(base, slower, *servemax); len(failed) != pairs {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: slowed serve flagged %d of %d pairs\n", len(failed), pairs)
				os.Exit(1)
			}
		}
		fmt.Println("benchcmp selftest: OK")
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-tol pct] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	overlap := 0
	for k := range base {
		if _, ok := cur[k]; ok {
			overlap++
		}
	}
	if overlap == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no overlapping (graph, dir) series between the two files")
		os.Exit(2)
	}
	// Every enabled gate runs — no early exit — so one bad gate does not hide
	// another, and the BENCH_GATE line always reports the full picture.
	type gateResult struct {
		name   string
		on     bool
		failed []string
		worst  string // formatted worst ratio/delta, "" when no pairs
	}
	gates := make([]gateResult, 0, 5)
	anyFailed := false
	record := func(name string, on bool, failed []string, worst string) {
		gates = append(gates, gateResult{name, on, failed, worst})
		if on && len(failed) > 0 {
			anyFailed = true
		}
	}

	fmt.Printf("benchcmp: tolerance %.0f%%\n", *tol)
	reg, wallWorst := compare(base, cur, *tol)
	if len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d series regressed beyond %.0f%%: %v\n", len(reg), *tol, reg)
	}
	record("wall", true, reg, fmt.Sprintf("%+.1f%%", wallWorst))

	if *monomin > 0 {
		fmt.Printf("benchcmp: mono speedup gate %.2fx\n", *monomin)
		failed, worst := checkMono(cur, *monomin)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: %d graphs under the %.2fx mono speedup floor: %v\n",
				len(failed), *monomin, failed)
		}
		record("mono", true, failed, fmt.Sprintf("%.2fx", worst))
	} else {
		record("mono", false, nil, "")
	}
	if *blockedmin > 0 {
		fmt.Printf("benchcmp: blocked span gate %.2fx\n", *blockedmin)
		failed, _, worst := checkBlocked(cur, *blockedmin)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: %d graphs under the %.2fx blocked span floor: %v\n",
				len(failed), *blockedmin, failed)
		}
		record("blocked", true, failed, fmt.Sprintf("%.2fx", worst))
	} else {
		record("blocked", false, nil, "")
	}
	if *automax > 0 {
		fmt.Printf("benchcmp: auto routing guard %.2fx\n", *automax)
		failed, _, worst := checkAuto(cur, *automax)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: %d graphs with the auto route adrift beyond %.2fx: %v\n",
				len(failed), *automax, failed)
		}
		record("auto", true, failed, fmt.Sprintf("%.2fx", worst))
	} else {
		record("auto", false, nil, "")
	}
	if *servemax > 0 {
		fmt.Printf("benchcmp: serve latency gate %.2fx\n", *servemax)
		failed, pairs, worst := checkServe(base, cur, *servemax)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: %d serve series beyond the %.2fx latency ceiling: %v\n",
				len(failed), *servemax, failed)
		}
		if pairs == 0 {
			fmt.Fprintln(os.Stderr, "benchcmp: -servemax set but no paired serve latency series — gate vacuous")
		}
		record("serve", true, failed, fmt.Sprintf("%.2fx", worst))
	} else {
		record("serve", false, nil, "")
	}

	status := "ok"
	if anyFailed {
		status = "fail"
	}
	line := "BENCH_GATE status=" + status
	for _, g := range gates {
		switch {
		case !g.on:
			line += fmt.Sprintf(" %s=off", g.name)
		case len(g.failed) > 0:
			line += fmt.Sprintf(" %s=fail %s_worst=%s", g.name, g.name, g.worst)
		default:
			line += fmt.Sprintf(" %s=pass %s_worst=%s", g.name, g.name, g.worst)
		}
	}
	fmt.Println(line)
	if anyFailed {
		os.Exit(1)
	}
	fmt.Println("benchcmp: OK")
}

// benchcmp diffs two grbbench traversal JSON files (the BENCH_*.json series
// written by -json / scripts/bench_baseline.sh) and fails when any measured
// (graph, dir) series slowed down by more than the tolerance:
//
//	benchcmp [-tol 15] baseline.json current.json
//
// Exit status 0 means every series is within tolerance; 1 means at least one
// regressed; 2 means the inputs could not be compared (missing file, no
// overlapping series). Series present in only one file are reported but do
// not fail the comparison — experiments come and go across PRs.
//
// -selftest runs the gate against itself: the baseline must pass unchanged,
// and a synthetic 20% slowdown of every series must be flagged at the default
// 15% tolerance. CI uses it to prove the gate can actually fire.
//
// -monomin R adds a paired-ratio gate on the current file (the baseline under
// -selftest): every graph carrying both a mono and a closure series — the
// dense experiment's kernel-tier A/B — must show closure/mono >= R, i.e. the
// monomorphized kernel at least R× faster than the closure kernel it
// replaces. 0 (the default) disables the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

var (
	tol      = flag.Float64("tol", 15, "maximum allowed slowdown, percent")
	monomin  = flag.Float64("monomin", 0, "minimum closure/mono speedup for every graph with paired mono+closure series (0 disables)")
	selftest = flag.Bool("selftest", false, "verify the gate fires on a synthetic 20% slowdown of the baseline")
)

// series is one measured (graph, dir) wall time from a grbbench JSON file.
type series struct {
	Graph   string  `json:"graph"`
	Dir     string  `json:"dir"`
	Seconds float64 `json:"seconds"`
}

// benchFile is the subset of the grbbench -json schema the gate reads.
type benchFile struct {
	Results []series `json:"results"`
}

func load(path string) (map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("%s: no results array", path)
	}
	m := make(map[string]float64, len(f.Results))
	for _, s := range f.Results {
		m[s.Graph+"/"+s.Dir] = s.Seconds
	}
	return m, nil
}

// compare reports every overlapping series and returns the keys that slowed
// down by more than tolPct.
func compare(base, cur map[string]float64, tolPct float64) (regressed []string) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			fmt.Printf("  %-24s base=%.4fs  (missing from current — skipped)\n", k, b)
			continue
		}
		if b <= 0 {
			fmt.Printf("  %-24s base=%.4fs  (non-positive baseline — skipped)\n", k, b)
			continue
		}
		delta := (c - b) / b * 100
		mark := "ok"
		if delta > tolPct {
			mark = "REGRESSED"
			regressed = append(regressed, k)
		}
		fmt.Printf("  %-24s base=%.4fs cur=%.4fs delta=%+.1f%% %s\n", k, b, c, delta, mark)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("  %-24s cur=%.4fs  (new series — no baseline)\n", k, cur[k])
		}
	}
	return regressed
}

// checkMono enforces the paired-ratio gate: for every graph that carries
// both a "<graph>/mono" and a "<graph>/closure" series, the closure time
// divided by the mono time must reach minRatio. Graphs without the pair are
// untouched — the gate is about the kernel-tier A/B, not general series.
func checkMono(cur map[string]float64, minRatio float64) (failed []string) {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		graph, ok := strings.CutSuffix(k, "/mono")
		if !ok {
			continue
		}
		clos, ok := cur[graph+"/closure"]
		mono := cur[k]
		if !ok || mono <= 0 {
			continue
		}
		ratio := clos / mono
		mark := "ok"
		if ratio < minRatio {
			mark = "TOO SLOW"
			failed = append(failed, graph)
		}
		fmt.Printf("  %-24s mono=%.4fs closure=%.4fs speedup=%.2fx (need %.2fx) %s\n",
			graph, mono, clos, ratio, minRatio, mark)
	}
	return failed
}

func main() {
	flag.Parse()
	if *selftest {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchcmp -selftest baseline.json")
			os.Exit(2)
		}
		base, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		steps := 2
		if *monomin > 0 {
			steps = 4
		}
		fmt.Printf("selftest 1/%d: baseline vs itself at tol=%.0f%% (must pass)\n", steps, *tol)
		if reg := compare(base, base, *tol); len(reg) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp selftest: identical inputs flagged %v\n", reg)
			os.Exit(1)
		}
		slowed := make(map[string]float64, len(base))
		for k, v := range base {
			slowed[k] = v * 1.20
		}
		fmt.Printf("selftest 2/%d: synthetic 20%% slowdown at tol=%.0f%% (must be flagged)\n", steps, *tol)
		if reg := compare(base, slowed, *tol); len(reg) != len(base) {
			fmt.Fprintf(os.Stderr, "benchcmp selftest: 20%% slowdown flagged %d of %d series\n", len(reg), len(base))
			os.Exit(1)
		}
		if *monomin > 0 {
			fmt.Printf("selftest 3/4: mono speedup gate at %.2fx (baseline must pass)\n", *monomin)
			if failed := checkMono(base, *monomin); len(failed) > 0 {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: baseline failed the mono gate: %v\n", failed)
				os.Exit(1)
			}
			// Degrade every mono series to its closure time: ratio 1.0 must
			// be flagged, proving the gate can fire.
			degraded := make(map[string]float64, len(base))
			pairs := 0
			for k, v := range base {
				if g, ok := strings.CutSuffix(k, "/mono"); ok {
					if clos, ok := base[g+"/closure"]; ok {
						v = clos
						pairs++
					}
				}
				degraded[k] = v
			}
			if pairs == 0 {
				fmt.Fprintln(os.Stderr, "benchcmp selftest: -monomin set but no mono/closure pairs in baseline")
				os.Exit(1)
			}
			fmt.Printf("selftest 4/4: mono degraded to closure parity (must be flagged)\n")
			if failed := checkMono(degraded, *monomin); len(failed) != pairs {
				fmt.Fprintf(os.Stderr, "benchcmp selftest: parity flagged %d of %d pairs\n", len(failed), pairs)
				os.Exit(1)
			}
		}
		fmt.Println("benchcmp selftest: OK")
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-tol pct] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	overlap := 0
	for k := range base {
		if _, ok := cur[k]; ok {
			overlap++
		}
	}
	if overlap == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no overlapping (graph, dir) series between the two files")
		os.Exit(2)
	}
	fmt.Printf("benchcmp: tolerance %.0f%%\n", *tol)
	if reg := compare(base, cur, *tol); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d series regressed beyond %.0f%%: %v\n", len(reg), *tol, reg)
		os.Exit(1)
	}
	if *monomin > 0 {
		fmt.Printf("benchcmp: mono speedup gate %.2fx\n", *monomin)
		if failed := checkMono(cur, *monomin); len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: %d graphs under the %.2fx mono speedup floor: %v\n",
				len(failed), *monomin, failed)
			os.Exit(1)
		}
	}
	fmt.Println("benchcmp: OK")
}

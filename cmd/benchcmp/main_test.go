package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name string, results []series) string {
	t.Helper()
	blob, err := json.Marshal(benchFile{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// secs builds a series map from wall times alone — the shape of every
// pre-blocked benchmark file.
func secs(m map[string]float64) map[string]series {
	out := make(map[string]series, len(m))
	for k, v := range m {
		out[k] = series{Seconds: v}
	}
	return out
}

func TestLoadKeysSeries(t *testing.T) {
	dir := t.TempDir()
	path := writeBench(t, dir, "b.json", []series{
		{Graph: "rmat", Dir: "push", Seconds: 1.5},
		{Graph: "rmat", Dir: "pull", Seconds: 2.0, SpanFlops: 77},
	})
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["rmat/push"].Seconds != 1.5 || m["rmat/pull"].Seconds != 2.0 {
		t.Fatalf("load = %v", m)
	}
	if m["rmat/pull"].SpanFlops != 77 {
		t.Fatalf("span telemetry lost: %v", m["rmat/pull"])
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, []byte(`{"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Fatal("load accepted a file with no results")
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := secs(map[string]float64{"g/push": 1.0, "g/pull": 2.0})
	cur := secs(map[string]float64{"g/push": 1.10, "g/pull": 1.5})
	if reg, _ := compare(base, cur, 15); len(reg) != 0 {
		t.Fatalf("10%% slowdown flagged at 15%% tolerance: %v", reg)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := secs(map[string]float64{"g/push": 1.0, "g/pull": 2.0})
	cur := secs(map[string]float64{"g/push": 1.20, "g/pull": 2.0})
	reg, worst := compare(base, cur, 15)
	if worst < 19 || worst > 21 {
		t.Fatalf("worst delta = %v, want ~20", worst)
	}
	if len(reg) != 1 || reg[0] != "g/push" {
		t.Fatalf("20%% slowdown at 15%% tolerance: got %v, want [g/push]", reg)
	}
}

func TestCompareTolKnob(t *testing.T) {
	base := secs(map[string]float64{"g/auto": 1.0})
	cur := secs(map[string]float64{"g/auto": 1.20})
	if reg, _ := compare(base, cur, 25); len(reg) != 0 {
		t.Fatalf("20%% slowdown flagged at 25%% tolerance: %v", reg)
	}
}

func TestCompareSkipsNonOverlapping(t *testing.T) {
	base := secs(map[string]float64{"g/push": 1.0, "old/push": 1.0})
	cur := secs(map[string]float64{"g/push": 1.0, "new/push": 99.0})
	if reg, _ := compare(base, cur, 15); len(reg) != 0 {
		t.Fatalf("non-overlapping series affected the verdict: %v", reg)
	}
}

func TestCheckMonoPassesAboveFloor(t *testing.T) {
	cur := secs(map[string]float64{
		"pagerank/mono": 1.0, "pagerank/closure": 2.5,
		"bfs-sat/mono": 0.1, "bfs-sat/closure": 1.0,
	})
	if failed, _ := checkMono(cur, 2.0); len(failed) != 0 {
		t.Fatalf("2.5x and 10x speedups failed the 2x floor: %v", failed)
	}
}

func TestCheckMonoFlagsSlowPair(t *testing.T) {
	cur := secs(map[string]float64{
		"pagerank/mono": 1.0, "pagerank/closure": 1.5,
		"bfs-sat/mono": 0.1, "bfs-sat/closure": 1.0,
	})
	failed, worst := checkMono(cur, 2.0)
	if worst != 1.5 {
		t.Fatalf("worst speedup = %v, want 1.5", worst)
	}
	if len(failed) != 1 || failed[0] != "pagerank" {
		t.Fatalf("1.5x speedup at 2x floor: got %v, want [pagerank]", failed)
	}
}

func TestCheckMonoIgnoresUnpairedSeries(t *testing.T) {
	// Traversal series and a mono series with no closure partner must not
	// trip the gate — it judges only the kernel-tier A/B pairs.
	cur := secs(map[string]float64{
		"rmat/push": 9.0, "rmat/pull": 1.0,
		"orphan/mono": 5.0,
	})
	if failed, _ := checkMono(cur, 2.0); len(failed) != 0 {
		t.Fatalf("unpaired series tripped the mono gate: %v", failed)
	}
}

func TestCheckBlockedPassesAboveFloor(t *testing.T) {
	cur := map[string]series{
		"spgemm/flat":    {Seconds: 1, SpanFlops: 200_000},
		"spgemm/blocked": {Seconds: 2, SpanFlops: 100_000},
	}
	failed, pairs, _ := checkBlocked(cur, 1.5)
	if len(failed) != 0 || pairs != 1 {
		t.Fatalf("2x span ratio at 1.5x floor: failed=%v pairs=%d", failed, pairs)
	}
}

func TestCheckBlockedFlagsPoorBalance(t *testing.T) {
	cur := map[string]series{
		"spgemm/flat":    {SpanFlops: 110_000},
		"spgemm/blocked": {SpanFlops: 100_000},
	}
	failed, pairs, _ := checkBlocked(cur, 1.5)
	if len(failed) != 1 || pairs != 1 || failed[0] != "spgemm" {
		t.Fatalf("1.1x span ratio at 1.5x floor: failed=%v pairs=%d", failed, pairs)
	}
}

func TestCheckBlockedIgnoresSpanlessPairs(t *testing.T) {
	// A flat/blocked wall-time pair without span telemetry (an SpMV
	// experiment, or a pre-telemetry file) must not trip the span gate.
	cur := map[string]series{
		"pagerank/flat":    {Seconds: 1.0},
		"pagerank/blocked": {Seconds: 2.0},
	}
	failed, pairs, _ := checkBlocked(cur, 1.5)
	if len(failed) != 0 || pairs != 0 {
		t.Fatalf("spanless pair judged: failed=%v pairs=%d", failed, pairs)
	}
}

func TestCheckAutoFlatRouteTracksWall(t *testing.T) {
	cur := map[string]series{
		"pagerank/flat": {Seconds: 1.0},
		"pagerank/auto": {Seconds: 1.1}, // BlockedOps 0: stayed flat
	}
	failed, pairs, _ := checkAuto(cur, 1.25)
	if len(failed) != 0 || pairs != 1 {
		t.Fatalf("flat-routed auto within 1.25x flagged: failed=%v pairs=%d", failed, pairs)
	}
	cur["pagerank/auto"] = series{Seconds: 1.5}
	failed, _, _ = checkAuto(cur, 1.25)
	if len(failed) != 1 || failed[0] != "pagerank" {
		t.Fatalf("flat-routed auto 1.5x adrift not flagged: %v", failed)
	}
}

func TestCheckAutoBlockedRouteTracksSpan(t *testing.T) {
	cur := map[string]series{
		"spgemm/flat":    {Seconds: 1.0, SpanFlops: 200_000},
		"spgemm/blocked": {Seconds: 2.0, SpanFlops: 100_000},
		"spgemm/auto":    {Seconds: 2.1, SpanFlops: 100_000, BlockedOps: 1},
	}
	failed, pairs, _ := checkAuto(cur, 1.25)
	if len(failed) != 0 || pairs != 1 {
		t.Fatalf("blocked-routed auto at span parity flagged: failed=%v pairs=%d", failed, pairs)
	}
	// The auto route picking a worse grid (span drifting past the forced
	// blocked plan's) must be flagged, regardless of wall time.
	cur["spgemm/auto"] = series{Seconds: 2.0, SpanFlops: 150_000, BlockedOps: 1}
	failed, _, _ = checkAuto(cur, 1.25)
	if len(failed) != 1 || failed[0] != "spgemm" {
		t.Fatalf("blocked-routed auto 1.5x span drift not flagged: %v", failed)
	}
}

func TestCheckServePairedGate(t *testing.T) {
	base := map[string]series{
		"serve-bfs/closed": {P50Ms: 1.0, P99Ms: 4.0},
		"serve-bfs/open":   {P50Ms: 0.8, P99Ms: 2.0},
		"rmat/push":        {Seconds: 1.0}, // no latency — not a serve pair
	}
	cur := map[string]series{
		"serve-bfs/closed": {P50Ms: 1.2, P99Ms: 4.4},
		"serve-bfs/open":   {P50Ms: 0.9, P99Ms: 2.1},
		"rmat/push":        {Seconds: 5.0},
	}
	failed, pairs, worst := checkServe(base, cur, 1.5)
	if len(failed) != 0 || pairs != 2 {
		t.Fatalf("20%% latency drift at 1.5x ceiling: failed=%v pairs=%d", failed, pairs)
	}
	if worst < 1.19 || worst > 1.21 {
		t.Fatalf("worst ratio = %v, want ~1.2", worst)
	}
}

func TestCheckServeFlagsP99Blowup(t *testing.T) {
	// p50 steady but p99 doubled: tail regressions alone must trip the gate.
	base := map[string]series{"serve-pr/open": {P50Ms: 1.0, P99Ms: 3.0}}
	cur := map[string]series{"serve-pr/open": {P50Ms: 1.0, P99Ms: 6.0}}
	failed, pairs, _ := checkServe(base, cur, 1.5)
	if len(failed) != 1 || pairs != 1 || failed[0] != "serve-pr/open" {
		t.Fatalf("2x p99 at 1.5x ceiling: failed=%v pairs=%d", failed, pairs)
	}
}

func TestCheckServeSkipsUnpaired(t *testing.T) {
	// A serve series missing from the current file (experiment renamed or
	// dropped) must not fail the gate, matching the wall-gate convention.
	base := map[string]series{"serve-ego/open": {P50Ms: 1.0, P99Ms: 2.0}}
	cur := map[string]series{"serve-bfs/open": {P50Ms: 99, P99Ms: 99}}
	failed, pairs, _ := checkServe(base, cur, 1.5)
	if len(failed) != 0 || pairs != 0 {
		t.Fatalf("unpaired serve series judged: failed=%v pairs=%d", failed, pairs)
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name string, results []series) string {
	t.Helper()
	blob, err := json.Marshal(benchFile{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadKeysSeries(t *testing.T) {
	dir := t.TempDir()
	path := writeBench(t, dir, "b.json", []series{
		{Graph: "rmat", Dir: "push", Seconds: 1.5},
		{Graph: "rmat", Dir: "pull", Seconds: 2.0},
	})
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["rmat/push"] != 1.5 || m["rmat/pull"] != 2.0 {
		t.Fatalf("load = %v", m)
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, []byte(`{"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Fatal("load accepted a file with no results")
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := map[string]float64{"g/push": 1.0, "g/pull": 2.0}
	cur := map[string]float64{"g/push": 1.10, "g/pull": 1.5}
	if reg := compare(base, cur, 15); len(reg) != 0 {
		t.Fatalf("10%% slowdown flagged at 15%% tolerance: %v", reg)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := map[string]float64{"g/push": 1.0, "g/pull": 2.0}
	cur := map[string]float64{"g/push": 1.20, "g/pull": 2.0}
	reg := compare(base, cur, 15)
	if len(reg) != 1 || reg[0] != "g/push" {
		t.Fatalf("20%% slowdown at 15%% tolerance: got %v, want [g/push]", reg)
	}
}

func TestCompareTolKnob(t *testing.T) {
	base := map[string]float64{"g/auto": 1.0}
	cur := map[string]float64{"g/auto": 1.20}
	if reg := compare(base, cur, 25); len(reg) != 0 {
		t.Fatalf("20%% slowdown flagged at 25%% tolerance: %v", reg)
	}
}

func TestCompareSkipsNonOverlapping(t *testing.T) {
	base := map[string]float64{"g/push": 1.0, "old/push": 1.0}
	cur := map[string]float64{"g/push": 1.0, "new/push": 99.0}
	if reg := compare(base, cur, 15); len(reg) != 0 {
		t.Fatalf("non-overlapping series affected the verdict: %v", reg)
	}
}

func TestCheckMonoPassesAboveFloor(t *testing.T) {
	cur := map[string]float64{
		"pagerank/mono": 1.0, "pagerank/closure": 2.5,
		"bfs-sat/mono": 0.1, "bfs-sat/closure": 1.0,
	}
	if failed := checkMono(cur, 2.0); len(failed) != 0 {
		t.Fatalf("2.5x and 10x speedups failed the 2x floor: %v", failed)
	}
}

func TestCheckMonoFlagsSlowPair(t *testing.T) {
	cur := map[string]float64{
		"pagerank/mono": 1.0, "pagerank/closure": 1.5,
		"bfs-sat/mono": 0.1, "bfs-sat/closure": 1.0,
	}
	failed := checkMono(cur, 2.0)
	if len(failed) != 1 || failed[0] != "pagerank" {
		t.Fatalf("1.5x speedup at 2x floor: got %v, want [pagerank]", failed)
	}
}

func TestCheckMonoIgnoresUnpairedSeries(t *testing.T) {
	// Traversal series and a mono series with no closure partner must not
	// trip the gate — it judges only the kernel-tier A/B pairs.
	cur := map[string]float64{
		"rmat/push": 9.0, "rmat/pull": 1.0,
		"orphan/mono": 5.0,
	}
	if failed := checkMono(cur, 2.0); len(failed) != 0 {
		t.Fatalf("unpaired series tripped the mono gate: %v", failed)
	}
}

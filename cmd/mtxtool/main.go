// mtxtool inspects and converts Matrix Market files through the GraphBLAS
// import/export and serialization APIs.
//
//	mtxtool info file.mtx            print dimensions, nnz, degree stats
//	mtxtool pack file.mtx out.grb    serialize into the opaque GraphBLAS stream
//	mtxtool unpack in.grb out.mtx    deserialize back to Matrix Market
//	mtxtool gen rmat:SCALE out.mtx   write a generated graph (rmat:N, er:N:M,
//	                                 grid:R:C, ring:N)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	grb "github.com/grblas/grb"
	"github.com/grblas/grb/gen"
	"github.com/grblas/grb/mtx"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: mtxtool info|pack|unpack|gen ...")
		os.Exit(2)
	}
	if err := grb.Init(grb.NonBlocking); err != nil {
		log.Fatal(err)
	}
	defer grb.Finalize() //grblint:ignore infocheck -- best-effort shutdown at process exit

	switch os.Args[1] {
	case "info":
		info(os.Args[2])
	case "pack":
		if len(os.Args) < 4 {
			log.Fatal("usage: mtxtool pack in.mtx out.grb")
		}
		pack(os.Args[2], os.Args[3])
	case "unpack":
		if len(os.Args) < 4 {
			log.Fatal("usage: mtxtool unpack in.grb out.mtx")
		}
		unpack(os.Args[2], os.Args[3])
	case "gen":
		if len(os.Args) < 4 {
			log.Fatal("usage: mtxtool gen SPEC out.mtx")
		}
		generate(os.Args[2], os.Args[3])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func load(path string) *grb.Matrix[float64] {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	coord, err := mtx.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	m, err := grb.MatrixImport(coord.Rows, coord.Cols, coord.J, coord.I, coord.X, grb.FormatCOO)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func info(path string) {
	m := load(path)
	nr := must1(m.Nrows())
	nc := must1(m.Ncols())
	nv := must1(m.Nvals())
	fmt.Printf("%s: %d x %d, %d stored entries (density %.4g)\n",
		path, nr, nc, nv, float64(nv)/(float64(nr)*float64(nc)))
	deg, err := grb.NewVector[float64](nr)
	if err != nil {
		log.Fatal(err)
	}
	one := func(float64) float64 { return 1 }
	ones := must1(grb.NewMatrix[float64](nr, nc))
	if err := grb.MatrixApply(ones, nil, nil, one, m, nil); err != nil {
		log.Fatal(err)
	}
	if err := grb.MatrixReduceToVector(deg, nil, nil, grb.PlusMonoid[float64](), ones, nil); err != nil {
		log.Fatal(err)
	}
	minDeg := must1(grb.VectorReduce(grb.MinMonoid[float64](), deg))
	maxDeg := must1(grb.VectorReduce(grb.MaxMonoid[float64](), deg))
	sumDeg := must1(grb.VectorReduce(grb.PlusMonoid[float64](), deg))
	nzRows := must1(deg.Nvals())
	fmt.Printf("row degree: min %g, max %g, mean %.2f over %d non-empty rows (%d empty)\n",
		minDeg, maxDeg, sumDeg/float64(nzRows), nzRows, nr-nzRows)
	sMin := must1(grb.VectorReduce(grb.MinMonoid[float64](), valuesOf(m)))
	sMax := must1(grb.VectorReduce(grb.MaxMonoid[float64](), valuesOf(m)))
	fmt.Printf("values: min %g, max %g\n", sMin, sMax)
}

// valuesOf flattens the stored values into a vector for reductions.
func valuesOf(m *grb.Matrix[float64]) *grb.Vector[float64] {
	_, _, x, err := m.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	if len(x) == 0 {
		v := must1(grb.NewVector[float64](1))
		return v
	}
	v, err := grb.NewVector[float64](len(x))
	if err != nil {
		log.Fatal(err)
	}
	idx := make([]grb.Index, len(x))
	for k := range idx {
		idx[k] = k
	}
	if err := v.Build(idx, x, grb.Second[float64, float64]); err != nil {
		log.Fatal(err)
	}
	return v
}

func pack(in, out string) {
	m := load(in)
	blob, err := m.SerializeBytes()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	nv := must1(m.Nvals())
	fmt.Printf("packed %d entries into %d bytes (%s)\n", nv, len(blob), out)
}

func unpack(in, out string) {
	blob, err := os.ReadFile(in)
	if err != nil {
		log.Fatal(err)
	}
	m, err := grb.MatrixDeserialize[float64](blob)
	if err != nil {
		log.Fatal(err)
	}
	nr := must1(m.Nrows())
	nc := must1(m.Ncols())
	I, J, X, err := m.ExtractTuples()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := mtx.Write(f, nr, nc, I, J, X); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unpacked %d entries into %s\n", len(I), out)
}

func generate(spec, out string) {
	parts := strings.Split(spec, ":")
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			log.Fatalf("bad spec %q: %v", spec, err)
		}
		return v
	}
	var g gen.Graph
	switch parts[0] {
	case "rmat":
		g = gen.Graph500RMAT(atoi(parts[1]), 16, 42)
	case "er":
		g = gen.ErdosRenyi(atoi(parts[1]), atoi(parts[2]), 42)
	case "grid":
		g = gen.Grid2D(atoi(parts[1]), atoi(parts[2]))
	case "ring":
		g = gen.Ring(atoi(parts[1]))
	default:
		log.Fatalf("unknown generator %q (rmat|er|grid|ring)", parts[0])
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := gen.UnitWeights[float64](g)
	if err := mtx.Write(f, g.N, g.N, g.Src, g.Dst, w); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", out, g.N, g.NumEdges())
}

// must aborts on an unexpected error from a grb call; grblint (infocheck)
// forbids discarding these silently.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// must1 unwraps a (value, error) grb result, aborting on error.
func must1[A any](a A, err error) A { must(err); return a }

package grb

import "testing"

// Deeper coverage of the nonblocking sequence engine: chained deferrals,
// interleavings of element updates with operations, and reads that force
// completion at every entry point.

func TestChainedDeferredOperations(t *testing.T) {
	setMode(t, NonBlocking)
	// A is the 3-cycle shift; A³ = I.
	a := mustMatrix(t, 3, 3, []Index{0, 1, 2}, []Index{1, 2, 0}, []int{1, 1, 1})
	c := ck1(NewMatrix[int](3, 3))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	// Chain: c = c·a (flushes the pending first product at enqueue).
	if err := MxM(c, nil, nil, PlusTimes[int](), c, a, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1, 2}, []Index{0, 1, 2}, []int{1, 1, 1})
}

func TestSetElementThenOperationOrder(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{1, 1})
	c := ck1(NewMatrix[int](2, 2))
	// setElement before the op: the op (with accumulate) must see it.
	if err := c.SetElement(100, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := MxM(c, nil, Plus[int], PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	// set after the op: applies on top of the op result.
	if err := c.SetElement(7, 1, 1); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1}, []Index{0, 1}, []int{101, 7})
}

func TestRemoveAfterDeferredOp(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{2, 3})
	c := ck1(NewMatrix[int](2, 2))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveElement(0, 0); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{1}, []Index{1}, []int{9})
}

func TestDupForcesCompletion(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0}, []Index{1}, []int{5})
	c := ck1(NewMatrix[int](2, 2))
	if err := Transpose(c, nil, nil, a, nil); err != nil {
		t.Fatal(err)
	}
	d, err := c.Dup()
	if err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, d, []Index{1}, []Index{0}, []int{5})
}

func TestEveryReadForcesSequence(t *testing.T) {
	setMode(t, NonBlocking)
	build := func() *Matrix[int] {
		a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{1, 0}, []int{1, 2})
		c := ck1(NewMatrix[int](2, 2))
		if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Nvals
	c := build()
	if nv := ck1(c.Nvals()); nv != 2 {
		t.Fatalf("Nvals = %d", nv)
	}
	// ExtractElement
	c = build()
	if v, _ := ck2(c.ExtractElement(0, 0)); v != 2 {
		t.Fatalf("extract = %d", v)
	}
	// ExtractTuples
	c = build()
	_, _, X := ck3(c.ExtractTuples())
	if len(X) != 2 || X[0] != 2 {
		t.Fatalf("tuples = %v", X)
	}
	// Export
	c = build()
	_, _, vals, err := c.MatrixExport(FormatCSR)
	if err != nil || vals[0] != 2 {
		t.Fatalf("export = %v, %v", vals, err)
	}
	// Serialize
	c = build()
	blob, err := c.SerializeBytes()
	if err != nil {
		t.Fatal(err)
	}
	back := ck1(MatrixDeserialize[int](blob))
	if v, _ := ck2(back.ExtractElement(0, 0)); v != 2 {
		t.Fatalf("serialized = %d", v)
	}
	// use as input of another operation
	c = build()
	d := ck1(NewMatrix[int](2, 2))
	if err := MatrixApply(d, nil, nil, Identity[int], c, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(d.ExtractElement(0, 0)); v != 2 {
		t.Fatalf("apply of pending input = %d", v)
	}
}

func TestVectorDeferredPipeline(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 3, 3, []Index{0, 1, 2}, []Index{1, 2, 0}, []int{1, 1, 1})
	w := mustVector(t, 3, []Index{0}, []int{1})
	// three deferred hops around the cycle
	for hop := 0; hop < 3; hop++ {
		if err := VxM(w, nil, nil, PlusTimes[int](), w, a, nil); err != nil {
			t.Fatal(err)
		}
	}
	vectorEquals(t, w, []Index{0}, []int{1})
}

func TestClearDiscardsPendingWork(t *testing.T) {
	setMode(t, NonBlocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{1, 1})
	c := ck1(NewMatrix[int](2, 2))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	nv := ck1(c.Nvals())
	if nv != 0 {
		t.Fatalf("pending op survived Clear: nvals=%d", nv)
	}
}

func TestBlockingModeIsEager(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{1, 1})
	c := ck1(NewMatrix[int](2, 2))
	if err := MxM(c, nil, nil, PlusTimes[int](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	// In blocking mode no pending work remains after the call.
	c.mu.Lock()
	pending := len(c.pending) + len(c.tuples)
	c.mu.Unlock()
	if pending != 0 {
		t.Fatalf("blocking mode left %d pending steps", pending)
	}
}

// TestFreedContextBlocksOperations: operating on objects whose context has
// been freed is an UninitializedObject error.
func TestFreedContextBlocksOperations(t *testing.T) {
	setMode(t, NonBlocking)
	ctx := ck1(NewContext(NonBlocking, nil, WithThreads(1)))
	a := ck1(NewMatrix[int](2, 2, InContext(ctx)))
	if err := a.SetElement(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Nvals(); Code(err) != UninitializedObject {
		t.Fatalf("op in freed context: %v", err)
	}
	c := ck1(NewMatrix[int](2, 2))
	wantCode(t, MxM(c, nil, nil, PlusTimes[int](), a, a, nil), UninitializedObject)
}

// TestFinalizeInvalidatesObjects: after Finalize, every method reports
// UninitializedObject (the library context is gone).
func TestFinalizeInvalidatesObjects(t *testing.T) {
	_ = Finalize() //grblint:ignore infocheck -- reset idiom: "not initialized" is expected
	if err := Init(NonBlocking); err != nil {
		t.Fatal(err)
	}
	m := ck1(NewMatrix[int](2, 2))
	if err := Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Nvals(); Code(err) != UninitializedObject {
		t.Fatalf("after Finalize: %v", err)
	}
	// restore for subsequent tests
	_ = Init(NonBlocking)                //grblint:ignore infocheck -- best-effort restore for later tests
	t.Cleanup(func() { _ = Finalize() }) //grblint:ignore infocheck -- best-effort teardown
}

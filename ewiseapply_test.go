package grb

import (
	"math/rand"
	"testing"
)

func TestEWiseAddMatrixSemantics(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 3, []Index{0, 0, 1}, []Index{0, 1, 2}, []int{1, 2, 3})
	b := mustMatrix(t, 2, 3, []Index{0, 1, 1}, []Index{1, 0, 2}, []int{10, 20, 30})
	c := ck1(NewMatrix[int](2, 3))
	if err := EWiseAddMatrix(c, nil, nil, Plus[int], a, b, nil); err != nil {
		t.Fatal(err)
	}
	// union pattern; co-located (0,1) and (1,2) combined
	matrixEquals(t, c,
		[]Index{0, 0, 1, 1}, []Index{0, 1, 0, 2}, []int{1, 12, 20, 33})
}

func TestEWiseMultMatrixMixedDomains(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{3, 4})
	bm := ck1(NewMatrix[float64](2, 2))
	if err := bm.Build([]Index{0, 1}, []Index{0, 0}, []float64{0.5, 2}, nil); err != nil {
		t.Fatal(err)
	}
	c := ck1(NewMatrix[bool](2, 2))
	op := func(x int, y float64) bool { return float64(x) > y }
	if err := EWiseMultMatrix(c, nil, nil, op, a, bm, nil); err != nil {
		t.Fatal(err)
	}
	// intersection: only (0,0): 3 > 0.5 = true
	matrixEquals(t, c, []Index{0}, []Index{0}, []bool{true})
}

// TestEWisePatternProperties: add yields the union pattern, mult the
// intersection, on random inputs.
func TestEWisePatternProperties(t *testing.T) {
	setMode(t, Blocking)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		ad := randDense(rng, rows, cols, 0.4)
		bd := randDense(rng, rows, cols, 0.4)
		a := ad.toMatrix(t)
		b := bd.toMatrix(t)
		sum := ck1(NewMatrix[int](rows, cols))
		prod := ck1(NewMatrix[int](rows, cols))
		if err := EWiseAddMatrix(sum, nil, nil, Plus[int], a, b, nil); err != nil {
			t.Fatal(err)
		}
		if err := EWiseMultMatrix(prod, nil, nil, Times[int], a, b, nil); err != nil {
			t.Fatal(err)
		}
		an := ck1(a.Nvals())
		bn := ck1(b.Nvals())
		sn := ck1(sum.Nvals())
		pn := ck1(prod.Nvals())
		if sn+pn != an+bn { // |A∪B| + |A∩B| = |A| + |B|
			t.Fatalf("inclusion-exclusion violated: %d+%d != %d+%d", sn, pn, an, bn)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				sv, sok := ck2(sum.ExtractElement(i, j))
				pv, pok := ck2(prod.ExtractElement(i, j))
				if sok != (ad.ok[i][j] || bd.ok[i][j]) || pok != (ad.ok[i][j] && bd.ok[i][j]) {
					t.Fatal("pattern law violated")
				}
				if pok && pv != ad.val[i][j]*bd.val[i][j] {
					t.Fatal("mult value wrong")
				}
				if sok {
					want := 0
					if ad.ok[i][j] {
						want += ad.val[i][j]
					}
					if bd.ok[i][j] {
						want += bd.val[i][j]
					}
					if sv != want {
						t.Fatal("add value wrong")
					}
				}
			}
		}
	}
}

func TestEWiseVectorVariants(t *testing.T) {
	setMode(t, Blocking)
	u := mustVector(t, 4, []Index{0, 2}, []int{1, 3})
	v := mustVector(t, 4, []Index{2, 3}, []int{10, 20})
	sum := ck1(NewVector[int](4))
	if err := EWiseAddVector(sum, nil, nil, Plus[int], u, v, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, sum, []Index{0, 2, 3}, []int{1, 13, 20})
	prod := ck1(NewVector[int](4))
	if err := EWiseMultVector(prod, nil, nil, Times[int], u, v, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, prod, []Index{2}, []int{30})
	// dimension mismatch
	short := mustVector(t, 3, nil, []int(nil))
	wantCode(t, EWiseAddVector(sum, nil, nil, Plus[int], u, short, nil), DimensionMismatch)
	wantCode(t, EWiseMultVector(prod, nil, nil, Times[int], u, short, nil), DimensionMismatch)
	// nil op
	wantCode(t, EWiseAddVector(sum, nil, nil, nil, u, v, nil), NullPointer)
}

func TestMatrixApplyVariants(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{1, 0}, []int{3, -4})

	// unary
	c := ck1(NewMatrix[int](2, 2))
	if err := MatrixApply(c, nil, nil, Abs[int], a, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1}, []Index{1, 0}, []int{3, 4})

	// domain-changing unary
	f := ck1(NewMatrix[float64](2, 2))
	if err := MatrixApply(f, nil, nil, func(x int) float64 { return float64(x) / 2 }, a, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := ck2(f.ExtractElement(0, 1)); v != 1.5 {
		t.Fatalf("f(0,1)=%v", v)
	}

	// bind-first / bind-second
	if err := MatrixApplyBindFirst(c, nil, nil, Minus[int], 10, a, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1}, []Index{1, 0}, []int{7, 14})
	if err := MatrixApplyBindSecond(c, nil, nil, Minus[int], a, 1, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1}, []Index{1, 0}, []int{2, -5})

	// GrB_Scalar-bound variants (Table II)
	s := ck1(ScalarOf(100))
	if err := MatrixApplyBindFirstScalar(c, nil, nil, Plus[int], s, a, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1}, []Index{1, 0}, []int{103, 96})
	if err := MatrixApplyBindSecondScalar(c, nil, nil, Plus[int], a, s, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{0, 1}, []Index{1, 0}, []int{103, 96})
	empty := ck1(NewScalar[int]())
	wantCode(t, MatrixApplyBindFirstScalar(c, nil, nil, Plus[int], empty, a, nil), EmptyObject)
	wantCode(t, MatrixApplyBindSecondScalar(c, nil, nil, Plus[int], a, empty, nil), EmptyObject)

	// apply with transpose: indices are post-transpose (§VIII-B)
	idx := ck1(NewMatrix[int](2, 2))
	if err := MatrixApplyIndexOp(idx, nil, nil, RowIndex[int], a, 0, DescT0); err != nil {
		t.Fatal(err)
	}
	// Aᵀ has entries at (1,0) and (0,1); ROWINDEX gives 1 and 0
	matrixEquals(t, idx, []Index{0, 1}, []Index{1, 0}, []int{0, 1})

	// index op via Scalar
	sidx := ck1(ScalarOf(5))
	if err := MatrixApplyIndexOpScalar(idx, nil, nil, RowIndex[int], a, sidx, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, idx, []Index{0, 1}, []Index{1, 0}, []int{5, 6})
}

func TestVectorApplyVariants(t *testing.T) {
	setMode(t, Blocking)
	u := mustVector(t, 4, []Index{1, 3}, []int{-2, 5})
	w := ck1(NewVector[int](4))
	if err := VectorApply(w, nil, nil, Abs[int], u, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 3}, []int{2, 5})
	if err := VectorApplyBindFirst(w, nil, nil, Times[int], 3, u, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 3}, []int{-6, 15})
	if err := VectorApplyBindSecond(w, nil, nil, Plus[int], u, 1, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 3}, []int{-1, 6})
	s := ck1(ScalarOf(2))
	if err := VectorApplyBindFirstScalar(w, nil, nil, Times[int], s, u, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 3}, []int{-4, 10})
	if err := VectorApplyBindSecondScalar(w, nil, nil, Times[int], u, s, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 3}, []int{-4, 10})
	empty := ck1(NewScalar[int]())
	wantCode(t, VectorApplyBindFirstScalar(w, nil, nil, Times[int], empty, u, nil), EmptyObject)
	wantCode(t, VectorApplyBindSecondScalar(w, nil, nil, Times[int], u, empty, nil), EmptyObject)

	// vector index ops see (rowindex, col=0)
	if err := VectorApplyIndexOp(w, nil, nil, RowIndex[int], u, 10, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 3}, []int{11, 13})
	si := ck1(ScalarOf(100))
	if err := VectorApplyIndexOpScalar(w, nil, nil, RowIndex[int], u, si, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 3}, []int{101, 103})
	wantCode(t, VectorApplyIndexOpScalar(w, nil, nil, RowIndex[int], u, empty, nil), EmptyObject)
}

// TestTableIV_SelectOperatorsMatrix exercises every Table IV "keep" operator
// on a matrix with known structure.
func TestTableIV_SelectOperatorsMatrix(t *testing.T) {
	setMode(t, Blocking)
	// 4x4 fully dense with value = 10*i + j
	var I, J []Index
	var X []int
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			I = append(I, i)
			J = append(J, j)
			X = append(X, 10*i+j)
		}
	}
	a := mustMatrix(t, 4, 4, I, J, X)
	sel := func(op IndexUnaryOp[int, int, bool], s int) *Matrix[int] {
		c := ck1(NewMatrix[int](4, 4))
		if err := MatrixSelect(c, nil, nil, op, a, s, nil); err != nil {
			t.Fatal(err)
		}
		return c
	}
	count := func(m *Matrix[int]) int { return ck1(m.Nvals()) }

	if n := count(sel(TriL[int], 0)); n != 10 {
		t.Fatalf("TriL(0) kept %d, want 10", n)
	}
	if n := count(sel(TriL[int], -1)); n != 6 {
		t.Fatalf("TriL(-1) kept %d, want 6", n)
	}
	if n := count(sel(TriU[int], 0)); n != 10 {
		t.Fatalf("TriU(0) kept %d, want 10", n)
	}
	if n := count(sel(TriU[int], 1)); n != 6 {
		t.Fatalf("TriU(1) kept %d, want 6", n)
	}
	if n := count(sel(Diag[int], 0)); n != 4 {
		t.Fatalf("Diag(0) kept %d, want 4", n)
	}
	if n := count(sel(Diag[int], 1)); n != 3 {
		t.Fatalf("Diag(1) kept %d, want 3", n)
	}
	if n := count(sel(Offdiag[int], 0)); n != 12 {
		t.Fatalf("Offdiag(0) kept %d, want 12", n)
	}
	if n := count(sel(RowLE[int], 1)); n != 8 {
		t.Fatalf("RowLE(1) kept %d, want 8", n)
	}
	if n := count(sel(RowGT[int], 1)); n != 8 {
		t.Fatalf("RowGT(1) kept %d, want 8", n)
	}
	if n := count(sel(ColLE[int], 0)); n != 4 {
		t.Fatalf("ColLE(0) kept %d, want 4", n)
	}
	if n := count(sel(ColGT[int], 2)); n != 4 {
		t.Fatalf("ColGT(2) kept %d, want 4", n)
	}
	if n := count(sel(ValueEQ[int], 12)); n != 1 {
		t.Fatalf("ValueEQ kept %d, want 1", n)
	}
	if n := count(sel(ValueNE[int], 12)); n != 15 {
		t.Fatalf("ValueNE kept %d, want 15", n)
	}
	if n := count(sel(ValueLT[int], 10)); n != 4 {
		t.Fatalf("ValueLT(10) kept %d, want 4", n)
	}
	if n := count(sel(ValueLE[int], 10)); n != 5 {
		t.Fatalf("ValueLE(10) kept %d, want 5", n)
	}
	if n := count(sel(ValueGT[int], 30)); n != 3 {
		t.Fatalf("ValueGT(30) kept %d, want 3", n)
	}
	if n := count(sel(ValueGE[int], 30)); n != 4 {
		t.Fatalf("ValueGE(30) kept %d, want 4", n)
	}

	// TriL(-1) ∪ Diag(0) ∪ TriU(1) partitions the pattern.
	l := count(sel(TriL[int], -1))
	d := count(sel(Diag[int], 0))
	u := count(sel(TriU[int], 1))
	an := ck1(a.Nvals())
	if l+d+u != an {
		t.Fatalf("tril/diag/triu partition: %d+%d+%d != %d", l, d, u, an)
	}
}

func TestSelectVectorAndScalarVariant(t *testing.T) {
	setMode(t, Blocking)
	u := mustVector(t, 6, []Index{0, 1, 3, 5}, []int{4, 9, 2, 7})
	w := ck1(NewVector[int](6))
	// vector RowLE keeps indices <= 2
	if err := VectorSelect(w, nil, nil, RowLE[int], u, 2, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{0, 1}, []int{4, 9})
	// value select via GrB_Scalar
	s := ck1(ScalarOf(4))
	if err := VectorSelectScalar(w, nil, nil, ValueGT[int], u, s, nil); err != nil {
		t.Fatal(err)
	}
	vectorEquals(t, w, []Index{1, 5}, []int{9, 7})
	empty := ck1(NewScalar[int]())
	wantCode(t, VectorSelectScalar(w, nil, nil, ValueGT[int], u, empty, nil), EmptyObject)
	// matrix scalar variant
	a := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 1}, []int{1, 9})
	c := ck1(NewMatrix[int](2, 2))
	if err := MatrixSelectScalar(c, nil, nil, ValueGT[int], a, s, nil); err != nil {
		t.Fatal(err)
	}
	matrixEquals(t, c, []Index{1}, []Index{1}, []int{9})
	wantCode(t, MatrixSelectScalar(c, nil, nil, ValueGT[int], a, empty, nil), EmptyObject)
}

// TestSelectWithMaskAccum checks select runs through the full
// mask/accumulator pipeline like any other operation.
func TestSelectWithMaskAccum(t *testing.T) {
	setMode(t, Blocking)
	a := mustMatrix(t, 2, 2, []Index{0, 0, 1, 1}, []Index{0, 1, 0, 1}, []int{1, 2, 3, 4})
	c := mustMatrix(t, 2, 2, []Index{0, 1}, []Index{0, 0}, []int{100, 300})
	mask := boolMatrix(t,
		[][]bool{{true, false}, {true, true}},
		[][]bool{{true, true}, {true, false}})
	// T = triu(A,0) = {(0,0):1,(0,1):2,(1,1):4}; Z = C + T
	// mask(value): true at (0,0),(1,0); (0,1) present-false; (1,1) absent
	if err := MatrixSelect(c, mask, Plus[int], TriU[int], a, 0, nil); err != nil {
		t.Fatal(err)
	}
	// (0,0): mask true -> z=101; (0,1): mask false -> keep none (c had none)
	// (1,0): mask true -> z=c only=300; (1,1): absent -> keep c (none)
	matrixEquals(t, c, []Index{0, 1}, []Index{0, 0}, []int{101, 300})
}

package grb

import (
	"sync"
	"testing"
)

// These tests exercise Context.Free racing live work. The contract: freeing
// a context while kernels run in it (or while sequences still reference it)
// must never panic, race, or corrupt an object — each operation either
// completes normally or reports UninitializedObject/a parked error through
// the usual channels. Run them under -race (the race CI tier does).

// freeRaceGraph builds a small multiplication workload inside ctx.
func freeRaceGraph(t *testing.T, ctx *Context) (*Matrix[float64], *Matrix[float64]) {
	t.Helper()
	a, err := NewMatrix[float64](20, 20, InContext(ctx))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	var is, js []Index
	var xs []float64
	for i := 0; i < 20; i++ {
		is = append(is, Index(i))
		js = append(js, Index((i*7+3)%20))
		xs = append(xs, float64(i+1))
	}
	if err := a.Build(is, js, xs, Second[float64, float64]); err != nil {
		t.Fatalf("Build: %v", err)
	}
	c, err := NewMatrix[float64](20, 20, InContext(ctx))
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	return a, c
}

// TestContextFreeRacesConcurrentKernels frees a context while other
// goroutines keep launching operations in it.
func TestContextFreeRacesConcurrentKernels(t *testing.T) {
	setMode(t, NonBlocking)
	for round := 0; round < 25; round++ {
		ctx, err := NewContext(NonBlocking, nil, WithThreads(4))
		if err != nil {
			t.Fatalf("NewContext: %v", err)
		}
		a, c := freeRaceGraph(t, ctx)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for k := 0; k < 10; k++ {
					// Valid outcomes: success, or UninitializedObject once
					// the free lands. Anything else is a broken error path.
					err := MxM(c, nil, Plus[float64], PlusTimes[float64](), a, a, nil)
					if err != nil && Code(err) != UninitializedObject {
						t.Errorf("MxM during Free: unexpected error %v", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := ctx.Free(); err != nil {
				t.Errorf("Free: %v", err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

// TestWaitOnObjectWithFreedContext enqueues deferred work, frees the
// context, then forces completion: freed-context detection must fire — every
// access reports UninitializedObject through the normal error channel, never
// a panic or a half-drained object.
func TestWaitOnObjectWithFreedContext(t *testing.T) {
	setMode(t, NonBlocking)
	ctx, err := NewContext(NonBlocking, nil, WithThreads(2))
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	a, c := freeRaceGraph(t, ctx)
	if err := MxM(c, nil, Plus[float64], PlusTimes[float64](), a, a, nil); err != nil {
		t.Fatalf("MxM: %v", err)
	}
	if err := ctx.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// The object's context is gone: the pending sequence cannot drain, and
	// every access path says so with the same clean error.
	if err := c.Wait(Materialize); Code(err) != UninitializedObject {
		t.Fatalf("Wait after context free: err = %v, want UninitializedObject", err)
	}
	if _, err := c.Nvals(); Code(err) != UninitializedObject {
		t.Fatalf("Nvals after context free: err = %v, want UninitializedObject", err)
	}
	if err := MxM(c, nil, Plus[float64], PlusTimes[float64](), a, a, nil); Code(err) != UninitializedObject {
		t.Fatalf("MxM on freed context: err = %v, want UninitializedObject", err)
	}
}

// TestContextFreeRacesWait frees the context concurrently with Wait calls
// draining a pending sequence.
func TestContextFreeRacesWait(t *testing.T) {
	setMode(t, NonBlocking)
	for round := 0; round < 25; round++ {
		ctx, err := NewContext(NonBlocking, nil, WithThreads(4))
		if err != nil {
			t.Fatalf("NewContext: %v", err)
		}
		a, c := freeRaceGraph(t, ctx)
		for k := 0; k < 3; k++ {
			if err := MxM(c, nil, Plus[float64], PlusTimes[float64](), a, a, nil); err != nil {
				t.Fatalf("MxM: %v", err)
			}
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			// Either the drain wins (success) or the free lands first and
			// Wait reports the freed context; both leave the object valid.
			if err := c.Wait(Materialize); err != nil && Code(err) != UninitializedObject {
				t.Errorf("Wait during Free: unexpected error %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			if err := ctx.Free(); err != nil {
				t.Errorf("Free during Wait: %v", err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

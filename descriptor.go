package grb

// AxBMethod selects the accumulator kernel used by the multiply operations
// (MxM, MxV). This is an extension, analogous to SuiteSparse:GraphBLAS's
// GxB_AxB_METHOD descriptor field: the default lets the library route each
// row range adaptively by estimated flops, and the pinned variants force one
// kernel — for benchmarking, differential testing, or workloads whose shape
// the caller knows better.
type AxBMethod int

const (
	// AxBDefault routes each row range adaptively (flop estimate vs. width).
	AxBDefault AxBMethod = iota
	// AxBDenseSPA forces the dense accumulator (O(cols) scratch per worker).
	AxBDenseSPA
	// AxBHashSPA forces the hash accumulator (O(flops) scratch per worker).
	AxBHashSPA
)

// Direction selects the traversal direction of the matrix-vector products
// (MxV, VxM). This is an extension in the spirit of direction-optimizing
// (push/pull) BFS: the default routes each product by frontier and mask
// density (see ChoosePush in internal/sparse), and the pinned variants force
// one kernel — for benchmarking, differential testing, or traversals whose
// phase the caller knows better.
type Direction int

const (
	// DirAuto routes each product adaptively (frontier vs. mask density).
	DirAuto Direction = iota
	// DirPush forces the push kernel: scatter the stored frontier entries
	// through their matrix rows (SpMSpV-style; work ∝ frontier edges).
	DirPush
	// DirPull forces the pull kernel: gather along output positions
	// (masked SpMV; work ∝ unmasked rows).
	DirPull
)

// SpecMode selects whether the multiply operations may run monomorphized
// (specialized direct-arithmetic) kernels for the hot semirings. This is an
// extension, completing the kernel-pinning triple with AxBMethod
// (accumulator) and Direction (push/pull): the default routes by the
// semiring's constructor tag and format heuristics, and the pinned variants
// force one side — for benchmarking and the mono≡closure differential
// battery.
type SpecMode int

const (
	// SpecAuto routes by semiring tag, operand types and format heuristics.
	SpecAuto SpecMode = iota
	// SpecMono forces the monomorphized kernel wherever one exists for the
	// semiring and value types (falling back only when none does).
	SpecMono
	// SpecGeneric forces the generic closure kernels.
	SpecGeneric
)

// BlockMode selects whether the multiply operations run through the
// 2D-blocked SUMMA plans or the flat row-partitioned kernels. This is an
// extension completing the routing pins (AxBMethod, Direction, SpecMode) with
// a storage-layout axis: the default defers to the global hint and the
// auto-blocker thresholds (see SetBlockHint), and the pinned variants force
// one engine — for benchmarking, the blocked≡flat differential battery, and
// workloads whose tiling the caller knows better.
type BlockMode int

const (
	// BlockDefault defers to the global hint and the auto-blocker thresholds.
	BlockDefault BlockMode = iota
	// BlockOn forces the 2D-blocked SUMMA plans, materializing blocked views
	// as needed (grids clamp to the operand dimensions).
	BlockOn
	// BlockOff forces the flat kernels.
	BlockOff
)

// Descriptor modifies how a GraphBLAS operation treats its output, mask and
// inputs (GrB_Descriptor). A nil *Descriptor everywhere means default
// behaviour: merge into the output, value mask, untransposed inputs.
type Descriptor struct {
	// Replace clears output entries not written by the operation
	// (GrB_OUTP = GrB_REPLACE).
	Replace bool
	// Structure interprets the mask structurally: an entry's presence
	// counts, its stored value is ignored (GrB_MASK = GrB_STRUCTURE).
	Structure bool
	// Complement inverts the mask (GrB_MASK = GrB_COMP). May be combined
	// with Structure.
	Complement bool
	// Transpose0 transposes the first matrix input (GrB_INP0 = GrB_TRAN).
	Transpose0 bool
	// Transpose1 transposes the second matrix input (GrB_INP1 = GrB_TRAN).
	Transpose1 bool
	// AxB selects the multiply accumulator kernel (extension; see AxBMethod).
	AxB AxBMethod
	// Dir selects the matrix-vector traversal direction (extension; see
	// Direction).
	Dir Direction
	// Spec selects monomorphized vs. generic closure kernels (extension;
	// see SpecMode).
	Spec SpecMode
	// Block selects the 2D-blocked SUMMA engine vs. the flat kernels
	// (extension; see BlockMode).
	Block BlockMode
}

// Predefined descriptors mirroring the C API's GrB_DESC_* constants.
var (
	// DescT1 transposes the second input.
	DescT1 = &Descriptor{Transpose1: true}
	// DescT0 transposes the first input.
	DescT0 = &Descriptor{Transpose0: true}
	// DescT0T1 transposes both inputs.
	DescT0T1 = &Descriptor{Transpose0: true, Transpose1: true}
	// DescR replaces the output.
	DescR = &Descriptor{Replace: true}
	// DescC complements the mask.
	DescC = &Descriptor{Complement: true}
	// DescS uses the mask structurally.
	DescS = &Descriptor{Structure: true}
	// DescRC replaces the output and complements the mask.
	DescRC = &Descriptor{Replace: true, Complement: true}
	// DescRS replaces the output and uses the mask structurally.
	DescRS = &Descriptor{Replace: true, Structure: true}
	// DescRSC replaces the output with a complemented structural mask.
	DescRSC = &Descriptor{Replace: true, Structure: true, Complement: true}
	// DescSC uses a complemented structural mask.
	DescSC = &Descriptor{Structure: true, Complement: true}
	// DescDenseSPA pins the multiply kernel to the dense accumulator.
	DescDenseSPA = &Descriptor{AxB: AxBDenseSPA}
	// DescHashSPA pins the multiply kernel to the hash accumulator.
	DescHashSPA = &Descriptor{AxB: AxBHashSPA}
	// DescPush pins matrix-vector products to the push (scatter) kernel.
	DescPush = &Descriptor{Dir: DirPush}
	// DescPull pins matrix-vector products to the pull (gather) kernel.
	DescPull = &Descriptor{Dir: DirPull}
	// DescMono pins multiply operations to the monomorphized hot-semiring
	// kernels where they exist.
	DescMono = &Descriptor{Spec: SpecMono}
	// DescGeneric pins multiply operations to the generic closure kernels.
	DescGeneric = &Descriptor{Spec: SpecGeneric}
	// DescBlocked pins multiply operations to the 2D-blocked SUMMA plans.
	DescBlocked = &Descriptor{Block: BlockOn}
	// DescFlat pins multiply operations to the flat row-partitioned kernels.
	DescFlat = &Descriptor{Block: BlockOff}
)

// get normalizes a possibly-nil descriptor to a value.
func (d *Descriptor) get() Descriptor {
	if d == nil {
		return Descriptor{}
	}
	return *d
}

package faults

import (
	"errors"
	"testing"
	"time"
)

// cleanup disarms after each test so state never leaks across the package.
func cleanup(t *testing.T) {
	t.Helper()
	t.Cleanup(Disable)
}

func TestDisarmedCheckIsNil(t *testing.T) {
	cleanup(t)
	s := Register("test.disarmed")
	Disable()
	for i := 0; i < 10; i++ {
		if err := s.Check(); err != nil {
			t.Fatalf("disarmed Check returned %v", err)
		}
	}
}

func TestHitAddressedAllocFail(t *testing.T) {
	cleanup(t)
	s := Register("test.hit")
	Enable(Rule{Site: "test.hit", Action: AllocFail, Hit: 3})
	for i := 1; i <= 5; i++ {
		err := s.Check()
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: want nil, got %v", i, err)
		}
	}
}

func TestEnableResetsHitCounters(t *testing.T) {
	cleanup(t)
	s := Register("test.reset")
	Enable(Rule{Site: "test.reset", Action: AllocFail, Hit: 1})
	if err := s.Check(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first arm, first hit: got %v", err)
	}
	// Re-arming must restart the count: the next first hit fires again.
	Enable(Rule{Site: "test.reset", Action: AllocFail, Hit: 1})
	if err := s.Check(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second arm, first hit: got %v", err)
	}
}

func TestWildcardMatchesEverySite(t *testing.T) {
	cleanup(t)
	a := Register("test.wild.a")
	b := Register("test.wild.b")
	Enable(Rule{Site: "*", Action: AllocFail})
	if err := a.Check(); !errors.Is(err, ErrInjected) {
		t.Fatalf("site a: got %v", err)
	}
	if err := b.Check(); !errors.Is(err, ErrInjected) {
		t.Fatalf("site b: got %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	cleanup(t)
	s := Register("test.panic")
	Enable(Rule{Site: "test.panic", Action: Panic, Hit: 1})
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want InjectedPanic", r, r)
		}
		if ip.Site != "test.panic" {
			t.Fatalf("panic site = %q", ip.Site)
		}
	}()
	_ = s.Check() //grblint:ignore infocheck -- the call must panic, not return
	t.Fatal("Check did not panic")
}

func TestDelayAction(t *testing.T) {
	cleanup(t)
	s := Register("test.delay")
	Enable(Rule{Site: "test.delay", Action: Delay, Delay: 20 * time.Millisecond})
	t0 := time.Now()
	if err := s.Check(); err != nil {
		t.Fatalf("delay Check returned %v", err)
	}
	if el := time.Since(t0); el < 15*time.Millisecond {
		t.Fatalf("delay too short: %v", el)
	}
}

func TestOneInIsDeterministic(t *testing.T) {
	cleanup(t)
	s := Register("test.onein")
	fire := func(seed int64) []int {
		EnableSeeded(seed, Rule{Site: "test.onein", Action: AllocFail, OneIn: 4})
		var hits []int
		for i := 1; i <= 64; i++ {
			if s.Check() != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a := fire(42)
	b := fire(42)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("OneIn=4 fired %d/64 times; want a proper subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
	c := fire(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical schedules %v", a)
	}
}

func TestRegisterIsIdempotent(t *testing.T) {
	cleanup(t)
	a := Register("test.idem")
	b := Register("test.idem")
	if a != b {
		t.Fatal("Register returned distinct sites for one name")
	}
	found := false
	for _, n := range Sites() {
		if n == "test.idem" {
			found = true
		}
	}
	if !found {
		t.Fatal("Sites() does not list the registered site")
	}
}

func TestParseRules(t *testing.T) {
	seed, rules, err := ParseRules("seed=7;a.b:alloc@2;*:panic%100;x:delay:5ms")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 7 {
		t.Fatalf("seed = %d", seed)
	}
	want := []Rule{
		{Site: "a.b", Action: AllocFail, Hit: 2},
		{Site: "*", Action: Panic, OneIn: 100},
		{Site: "x", Action: Delay, Delay: 5 * time.Millisecond},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{"x", "x:frobnicate", "x:alloc@0", "x:alloc:5ms", "x:delay:parsec", "seed=zebra"} {
		if _, _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted a malformed spec", bad)
		}
	}
}

func TestArmFromSpec(t *testing.T) {
	cleanup(t)
	s := Register("test.env")
	if err := ArmFromSpec("test.env:alloc@1"); err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("spec did not arm")
	}
	if err := s.Check(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed spec: got %v", err)
	}
	if err := ArmFromSpec(""); err != nil {
		t.Fatal(err)
	}
	if Armed() {
		t.Fatal("empty spec did not disarm")
	}
}

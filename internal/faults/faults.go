// Package faults is the library's deterministic fault-injection substrate:
// the chaos-testing half of the execution-hardening layer. Kernels and
// allocators register named injection Sites at package init; a test (or the
// GRB_FAULTS environment variable) arms a set of Rules, and every Site.Check
// call consults them. A matching rule either reports a simulated allocation
// failure (ErrInjected), panics with an InjectedPanic, or delays the caller —
// the three failure shapes §V of the GraphBLAS 2.0 paper requires an
// implementation to survive (GrB_OUT_OF_MEMORY, GrB_PANIC, and slow kernels a
// cancellation must be able to interrupt).
//
// Determinism contract: a rule addresses its site by exact name (or "*"),
// and fires either on an exact per-site hit number (Hit) or on the
// pseudo-random-but-reproducible schedule derived from (Seed, site, hit)
// (OneIn). Replaying the same program with the same rules therefore injects
// the same faults at the same points, which is what lets the chaos
// differential suite assert exact outcomes.
//
// Overhead contract: with no plan armed (the default), Check is one atomic
// load and allocates nothing.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is returned by Check for an armed alloc-failure rule. The
// sparse substrate maps it onto its out-of-memory abort, and the grb layer
// parks it as GrB_OUT_OF_MEMORY.
var ErrInjected = errors.New("faults: injected allocation failure")

// InjectedPanic is the value an armed panic rule panics with. It records the
// site so recovery layers can attribute the (simulated) crash.
type InjectedPanic struct{ Site string }

// Error makes the payload self-describing when a recovery layer formats it.
func (p InjectedPanic) Error() string { return "faults: injected panic at site " + p.Site }

// String mirrors Error for %v formatting of the raw panic value.
func (p InjectedPanic) String() string { return p.Error() }

// Action selects what a matching rule does to the caller.
type Action int

const (
	// AllocFail makes Check return ErrInjected: a simulated allocation
	// failure at the site.
	AllocFail Action = iota
	// Panic makes Check panic with InjectedPanic: a simulated kernel crash.
	Panic
	// Delay makes Check sleep for the rule's Delay before returning nil:
	// a simulated slow kernel, used to widen cancellation windows.
	Delay
)

// String returns the spec-style name of the action.
func (a Action) String() string {
	switch a {
	case AllocFail:
		return "alloc"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule arms one injection behaviour. Site is an exact registered site name or
// "*" for every site. Exactly one of the addressing modes applies:
//
//   - Hit > 0: fire on the Hit-th Check of each matching site (1-based),
//     and only that one — the precise mode the chaos sweep uses.
//   - OneIn > 0: fire whenever the deterministic hash of (Seed, site, hit)
//     lands in the 1/OneIn bucket — the scattered chaos mode.
//   - both zero: fire on every Check.
type Rule struct {
	Site   string
	Action Action
	Hit    int64
	OneIn  int64
	Delay  time.Duration
}

// plan is one armed configuration; swapped atomically so Check never locks.
type plan struct {
	seed  int64
	rules []Rule
}

// Site is one registered injection point. Sites are package-level singletons
// created by Register at init time; Check is their only runtime operation.
type Site struct {
	name string
	hits atomic.Int64
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

var (
	registryMu sync.Mutex
	registry   = map[string]*Site{}

	armed   atomic.Bool
	current atomic.Pointer[plan]
)

// Register creates (or returns the existing) injection site with the given
// name. Call it from a package-level var initializer so Sites() can enumerate
// every injection point for the chaos sweep.
func Register(name string) *Site {
	registryMu.Lock()
	defer registryMu.Unlock()
	if s, ok := registry[name]; ok {
		return s
	}
	s := &Site{name: name}
	registry[name] = s
	return s
}

// Sites returns the names of every registered injection point, sorted — the
// address space the chaos sweep iterates.
func Sites() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Enable arms the given rules with seed 0 and resets every site's hit
// counter, so hit-addressed rules count from a known origin.
func Enable(rules ...Rule) { EnableSeeded(0, rules...) }

// EnableSeeded arms the rules with an explicit seed for OneIn-addressed
// rules, resetting per-site hit counters.
func EnableSeeded(seed int64, rules ...Rule) {
	registryMu.Lock()
	for _, s := range registry {
		s.hits.Store(0)
	}
	registryMu.Unlock()
	current.Store(&plan{seed: seed, rules: append([]Rule(nil), rules...)})
	armed.Store(len(rules) > 0)
}

// Disable disarms every rule; Check returns to its one-atomic-load fast path.
func Disable() {
	armed.Store(false)
	current.Store(nil)
}

// Armed reports whether any rule is active.
func Armed() bool { return armed.Load() }

// splitmix64 is the deterministic scrambler behind OneIn addressing.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashSite folds a site name into the OneIn hash.
func hashSite(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Check consults the armed plan at this site: it returns ErrInjected for a
// matching alloc-failure rule, panics with InjectedPanic for a matching panic
// rule, sleeps for a matching delay rule, and returns nil otherwise. With no
// plan armed it is one atomic load.
func (s *Site) Check() error {
	if !armed.Load() {
		return nil
	}
	p := current.Load()
	if p == nil {
		return nil
	}
	hit := s.hits.Add(1)
	for i := range p.rules {
		r := &p.rules[i]
		if r.Site != "*" && r.Site != s.name {
			continue
		}
		switch {
		case r.Hit > 0:
			if hit != r.Hit {
				continue
			}
		case r.OneIn > 0:
			h := splitmix64(uint64(p.seed) ^ hashSite(s.name) ^ uint64(hit))
			if h%uint64(r.OneIn) != 0 {
				continue
			}
		}
		switch r.Action {
		case AllocFail:
			return ErrInjected
		case Panic:
			panic(InjectedPanic{Site: s.name})
		case Delay:
			d := r.Delay
			if d <= 0 {
				d = time.Millisecond
			}
			time.Sleep(d)
		}
	}
	return nil
}

// ParseRules parses the GRB_FAULTS environment-variable grammar:
//
//	spec  := item (';' item)*
//	item  := 'seed=' N | rule
//	rule  := site ':' action [ '@' hit | '%' onein ] [ ':' delay ]
//
// where site is a registered name or '*', action is alloc|panic|delay, hit
// and onein are positive integers, and delay is a Go duration (delay rules
// only; default 1ms). Examples:
//
//	GRB_FAULTS="sparse.spgemm.spa:alloc@2"          third-party-free repro
//	GRB_FAULTS="seed=7;*:panic%1000"                scattered chaos
//	GRB_FAULTS="sparse.spmv.gather:delay:5ms"       slow-kernel simulation
func ParseRules(spec string) (seed int64, rules []Rule, err error) {
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if v, ok := strings.CutPrefix(item, "seed="); ok {
			seed, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 {
			return 0, nil, fmt.Errorf("faults: rule %q needs site:action", item)
		}
		r := Rule{Site: parts[0]}
		act := parts[1]
		if i := strings.IndexAny(act, "@%"); i >= 0 {
			n, perr := strconv.ParseInt(act[i+1:], 10, 64)
			if perr != nil || n <= 0 {
				return 0, nil, fmt.Errorf("faults: rule %q has bad count %q", item, act[i+1:])
			}
			if act[i] == '@' {
				r.Hit = n
			} else {
				r.OneIn = n
			}
			act = act[:i]
		}
		switch act {
		case "alloc":
			r.Action = AllocFail
		case "panic":
			r.Action = Panic
		case "delay":
			r.Action = Delay
		default:
			return 0, nil, fmt.Errorf("faults: rule %q has unknown action %q", item, act)
		}
		if len(parts) > 2 {
			if r.Action != Delay {
				return 0, nil, fmt.Errorf("faults: rule %q: only delay rules take a duration", item)
			}
			d, perr := time.ParseDuration(parts[2])
			if perr != nil {
				return 0, nil, fmt.Errorf("faults: rule %q has bad duration %q: %v", item, parts[2], perr)
			}
			r.Delay = d
		}
		rules = append(rules, r)
	}
	return seed, rules, nil
}

// ArmFromSpec parses a GRB_FAULTS spec and arms it; an empty spec disarms.
// The grb layer calls this from Init so a production binary can be chaos-run
// without recompilation.
func ArmFromSpec(spec string) error {
	if strings.TrimSpace(spec) == "" {
		Disable()
		return nil
	}
	seed, rules, err := ParseRules(spec)
	if err != nil {
		return err
	}
	EnableSeeded(seed, rules...)
	return nil
}

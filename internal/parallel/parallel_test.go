package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	f := func(nRaw uint8, tRaw uint8) bool {
		n := int(nRaw)
		threads := 1 + int(tRaw)%16
		hits := make([]int32, n)
		For(n, threads, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i := range hits {
			if atomic.LoadInt32(&hits[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForDegenerate(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("called for n=0")
	}
	For(5, 0, func(lo, hi int) {
		if lo != 0 || hi != 5 {
			t.Fatal("threads<=1 should run inline over the whole range")
		}
	})
}

func TestRangesProperties(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		n := int(nRaw)
		k := int(kRaw)
		b := Ranges(n, k)
		if len(b) < 2 && n > 0 {
			return false
		}
		if b[0] != 0 || b[len(b)-1] != n {
			return false
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedRangesBalanceAndCoverage(t *testing.T) {
	// skewed row weights: one heavy row among many light rows
	rows := 64
	ptr := make([]int, rows+1)
	for i := 0; i < rows; i++ {
		w := 1
		if i == 10 {
			w = 1000
		}
		ptr[i+1] = ptr[i] + w
	}
	b := BalancedRanges(rows, 8, ptr)
	if b[0] != 0 || b[len(b)-1] != rows {
		t.Fatalf("coverage: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("monotonicity: %v", b)
		}
	}
	// the heavy row must sit alone-ish: its range should hold most weight
	// and the partition must not put everything in one range.
	nonEmpty := 0
	for i := 1; i < len(b); i++ {
		if b[i] > b[i-1] {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("no parallelism extracted: %v", b)
	}
	// degenerate inputs
	if b := BalancedRanges(0, 4, []int{0}); b[len(b)-1] != 0 {
		t.Fatal("rows=0")
	}
	uniform := make([]int, 11)
	for i := range uniform {
		uniform[i] = i
	}
	b2 := BalancedRanges(10, 3, uniform)
	if b2[0] != 0 || b2[len(b2)-1] != 10 {
		t.Fatalf("uniform coverage: %v", b2)
	}
}

func TestRunVisitsEveryRange(t *testing.T) {
	b := []int{0, 3, 3, 7, 10} // middle range empty
	var total int64
	var calls int64
	Run(b, 2, func(part, lo, hi int) {
		atomic.AddInt64(&calls, 1)
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if got := atomic.LoadInt64(&total); got != 10 {
		t.Fatalf("covered %d elements", got)
	}
	if got := atomic.LoadInt64(&calls); got != 3 { // empty range skipped
		t.Fatalf("calls = %d", got)
	}
}

// sentinel is a typed panic payload; the hardening contract requires the
// original value to survive the goroutine hop inside WorkerPanic.Value so
// the sparse layer can distinguish its own abort sentinels from real crashes.
type sentinel struct{ n int }

func TestForWorkerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		wp, ok := r.(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want WorkerPanic", r, r)
		}
		s, ok := wp.Value.(sentinel)
		if !ok || s.n != 7 {
			t.Fatalf("payload %T (%v), want sentinel{7}", wp.Value, wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Fatal("worker stack not captured")
		}
	}()
	For(100, 4, func(lo, hi int) {
		if lo == 0 {
			panic(sentinel{n: 7})
		}
	})
	t.Fatal("For did not re-raise the worker panic")
}

func TestForInlinePanicUnwrapped(t *testing.T) {
	defer func() {
		r := recover()
		if _, ok := r.(WorkerPanic); ok {
			t.Fatal("inline panic must not be wrapped")
		}
		if s, ok := r.(sentinel); !ok || s.n != 3 {
			t.Fatalf("recovered %v, want sentinel{3}", r)
		}
	}()
	For(10, 1, func(lo, hi int) { panic(sentinel{n: 3}) })
	t.Fatal("inline For did not panic")
}

func TestForAllWorkersJoinBeforeRethrow(t *testing.T) {
	// Every non-panicking worker must finish its range even when another
	// worker panics: cooperative isolation, not hard abort.
	n := 64
	hits := make([]int32, n)
	func() {
		defer func() { _ = recover() }()
		For(n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			if lo == 0 {
				panic("boom")
			}
		})
	}()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("element %d visited %d times", i, h)
		}
	}
}

func TestRunWorkerPanicPropagates(t *testing.T) {
	b := []int{0, 4, 8, 12, 16}
	defer func() {
		r := recover()
		wp, ok := r.(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want WorkerPanic", r, r)
		}
		if s, ok := wp.Value.(sentinel); !ok || s.n != 2 {
			t.Fatalf("payload %v, want sentinel{2}", wp.Value)
		}
	}()
	Run(b, 2, func(part, lo, hi int) {
		if part == 2 {
			panic(sentinel{n: 2})
		}
	})
	t.Fatal("Run did not re-raise the worker panic")
}

func TestRunSerialPanicUnwrapped(t *testing.T) {
	defer func() {
		if _, ok := recover().(WorkerPanic); ok {
			t.Fatal("serial panic must not be wrapped")
		}
	}()
	Run([]int{0, 5}, 1, func(part, lo, hi int) { panic("serial") })
	t.Fatal("serial Run did not panic")
}

func TestWorkerPanicError(t *testing.T) {
	cases := []struct {
		val  any
		want string
	}{
		{val: "boom", want: "parallel: worker panic: boom"},
		{val: sentinel{}, want: "parallel: worker panic: non-string panic value"},
	}
	for _, c := range cases {
		if got := (WorkerPanic{Value: c.val}).Error(); got != c.want {
			t.Errorf("Error() = %q, want %q", got, c.want)
		}
	}
}

package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	f := func(nRaw uint8, tRaw uint8) bool {
		n := int(nRaw)
		threads := 1 + int(tRaw)%16
		var hits []int32
		if n > 0 {
			hits = make([]int32, n)
		}
		For(n, threads, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i := range hits {
			if hits[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForDegenerate(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("called for n=0")
	}
	For(5, 0, func(lo, hi int) {
		if lo != 0 || hi != 5 {
			t.Fatal("threads<=1 should run inline over the whole range")
		}
	})
}

func TestRangesProperties(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		n := int(nRaw)
		k := int(kRaw)
		b := Ranges(n, k)
		if len(b) < 2 && n > 0 {
			return false
		}
		if b[0] != 0 || b[len(b)-1] != n {
			return false
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedRangesBalanceAndCoverage(t *testing.T) {
	// skewed row weights: one heavy row among many light rows
	rows := 64
	ptr := make([]int, rows+1)
	for i := 0; i < rows; i++ {
		w := 1
		if i == 10 {
			w = 1000
		}
		ptr[i+1] = ptr[i] + w
	}
	b := BalancedRanges(rows, 8, ptr)
	if b[0] != 0 || b[len(b)-1] != rows {
		t.Fatalf("coverage: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("monotonicity: %v", b)
		}
	}
	// the heavy row must sit alone-ish: its range should hold most weight
	// and the partition must not put everything in one range.
	nonEmpty := 0
	for i := 1; i < len(b); i++ {
		if b[i] > b[i-1] {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("no parallelism extracted: %v", b)
	}
	// degenerate inputs
	if b := BalancedRanges(0, 4, []int{0}); b[len(b)-1] != 0 {
		t.Fatal("rows=0")
	}
	uniform := make([]int, 11)
	for i := range uniform {
		uniform[i] = i
	}
	b2 := BalancedRanges(10, 3, uniform)
	if b2[0] != 0 || b2[len(b2)-1] != 10 {
		t.Fatalf("uniform coverage: %v", b2)
	}
}

func TestRunVisitsEveryRange(t *testing.T) {
	b := []int{0, 3, 3, 7, 10} // middle range empty
	var total int64
	var calls int64
	Run(b, 2, func(part, lo, hi int) {
		atomic.AddInt64(&calls, 1)
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 10 {
		t.Fatalf("covered %d elements", total)
	}
	if calls != 3 { // empty range skipped
		t.Fatalf("calls = %d", calls)
	}
}

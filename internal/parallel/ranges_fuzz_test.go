package parallel

import "testing"

// Fuzz coverage for the partitioners: any input — degenerate or adversarial —
// must yield monotone boundaries b with b[0] = 0 and b[len(b)-1] = n, so the
// ranges cover [0, n) exactly once. The seed corpus pins the degenerate cases
// (all-empty rows, one giant row, k > rows, zero rows); `go test` replays it
// as unit tests, and `go test -fuzz=FuzzBalancedRanges ./internal/parallel`
// explores further.

// checkBoundaries asserts the shared partition invariants.
func checkBoundaries(t *testing.T, b []int, n int) {
	t.Helper()
	if len(b) < 2 {
		t.Fatalf("only %d boundaries", len(b))
	}
	if b[0] != 0 {
		t.Fatalf("b[0] = %d", b[0])
	}
	if b[len(b)-1] != n {
		t.Fatalf("b[last] = %d, want %d", b[len(b)-1], n)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("boundaries not monotone at %d: %v", i, b)
		}
	}
}

func FuzzRanges(f *testing.F) {
	f.Add(0, 0)   // zero rows, zero parts
	f.Add(0, 5)   // zero rows
	f.Add(7, 0)   // k < 1
	f.Add(3, 100) // k > rows
	f.Add(100, 7)
	f.Add(1, 1)
	f.Add(-4, -2) // negative inputs must clamp, not panic
	f.Fuzz(func(t *testing.T, n, k int) {
		if n > 1<<20 || k > 1<<20 {
			t.Skip("bound allocation")
		}
		b := Ranges(n, k)
		want := n
		if want < 0 {
			want = 0
		}
		checkBoundaries(t, b, want)
		if got := len(b) - 1; k > 0 && got > k && got != 1 {
			t.Fatalf("%d ranges exceed requested k=%d", got, k)
		}
	})
}

// FuzzBalancedRanges derives a nondecreasing ptr array from raw fuzz bytes:
// each byte is one row's weight, so the fuzzer controls the full weight
// distribution — empty rows, giant rows, front- or back-loaded skew.
func FuzzBalancedRanges(f *testing.F) {
	f.Add(4, []byte{})                     // zero rows
	f.Add(0, []byte{1, 2, 3})              // k clamps to 1... rows from bytes
	f.Add(3, []byte{0, 0, 0, 0, 0, 0})     // all-empty rows
	f.Add(4, []byte{0, 0, 255, 0, 0})      // one giant row
	f.Add(100, []byte{1, 1})               // k > rows
	f.Add(2, []byte{255, 255, 255, 255})   // uniform heavy
	f.Add(7, []byte{1, 0, 0, 0, 0, 0, 99}) // back-loaded skew
	f.Fuzz(func(t *testing.T, k int, weights []byte) {
		if len(weights) > 1<<16 || k > 1<<16 {
			t.Skip("bound allocation")
		}
		rows := len(weights)
		ptr := make([]int, rows+1)
		for i, w := range weights {
			ptr[i+1] = ptr[i] + int(w)
		}
		b := BalancedRanges(rows, k, ptr)
		checkBoundaries(t, b, rows)
		// every row lands in exactly one range — guaranteed by monotone
		// boundaries plus exact [0, rows) coverage, checked above. Also run
		// the boundaries through Run and count visits to close the loop.
		seen := make([]int, rows)
		Run(b, 4, func(part, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("row %d visited %d times (boundaries %v)", i, c, b)
			}
		}
	})
}

// Package parallel provides the work-partitioning and bounded fork/join
// primitives used by the sparse kernels. The degree of parallelism is always
// supplied by the caller (ultimately from a grb.Context chain, §IV of the
// GraphBLAS 2.0 paper); this package never consults runtime.NumCPU itself so
// that context thread budgets are honored exactly.
package parallel

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic wraps a panic recovered on a worker goroutine so For/Run can
// re-raise it on the joining goroutine instead of crashing the process — the
// execution-hardening contract: a panic inside any parallel kernel range must
// surface to the kernel's caller, where the grb layer converts it into a
// parked GrB_PANIC execution error (§V). Value is the original panic payload
// (preserved so typed sentinels like the sparse budget abort survive the
// goroutine hop); Stack is the worker's stack at recovery time, since the
// re-raise happens on a different goroutine and would otherwise lose it.
type WorkerPanic struct {
	Value any
	Stack []byte
}

// Error formats the wrapped panic; WorkerPanic intentionally satisfies the
// error interface so recovery layers can log it directly.
func (w WorkerPanic) Error() string {
	return "parallel: worker panic: " + formatPanic(w.Value)
}

func formatPanic(v any) string {
	switch t := v.(type) {
	case error:
		return t.Error()
	case string:
		return t
	}
	return "non-string panic value"
}

// panicBox captures the first panic among a group of workers.
type panicBox struct {
	mu  sync.Mutex
	val *WorkerPanic
}

// capture records the current recover() value, keeping only the first.
// Call only from a deferred context.
func (b *panicBox) capture() {
	if r := recover(); r != nil {
		wp := WorkerPanic{Value: r, Stack: debug.Stack()}
		b.mu.Lock()
		if b.val == nil {
			b.val = &wp
		}
		b.mu.Unlock()
	}
}

// rethrow re-raises the captured panic, if any, on the calling goroutine.
func (b *panicBox) rethrow() {
	if b.val != nil {
		panic(*b.val)
	}
}

// For runs body(lo, hi) over a partition of [0, n) using at most threads
// concurrent goroutines. With threads <= 1 or n small it runs inline.
// Partitions are contiguous and cover [0, n) exactly once. A panic on any
// worker is re-raised on the calling goroutine as a WorkerPanic after all
// workers join (inline execution panics directly, without the wrapper).
func For(n, threads int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func(lo, hi int) {
			defer wg.Done()
			defer pb.capture()
			if lo < hi {
				body(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
	pb.rethrow()
}

// Ranges splits [0, n) into at most k contiguous ranges of near-equal size.
// It returns the boundary slice b with len(b) = r+1 for r ranges, so range i
// is [b[i], b[i+1]). Used when per-range scratch state must be preallocated.
func Ranges(n, k int) []int {
	if n < 0 {
		n = 0
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k == 0 {
		k = 1
	}
	b := make([]int, k+1)
	for i := 0; i <= k; i++ {
		b[i] = i * n / k
	}
	return b
}

// BalancedRanges splits rows [0, rows) into at most k contiguous ranges such
// that each range holds approximately equal total weight, where weight of row
// i is ptr[i+1]-ptr[i] (its nnz). ptr must have length rows+1 and be
// nondecreasing. Returns boundaries as in Ranges. This is the standard
// nnz-balanced row partition used for CSR traversals whose per-row cost is
// proportional to the row's population.
func BalancedRanges(rows, k int, ptr []int) []int {
	if k < 1 {
		k = 1
	}
	if rows <= 0 {
		return []int{0, 0}
	}
	if k > rows {
		k = rows
	}
	total := ptr[rows] - ptr[0]
	if total == 0 || k == 1 {
		return Ranges(rows, k)
	}
	b := make([]int, k+1)
	b[0] = 0
	row := 0
	for i := 1; i < k; i++ {
		target := ptr[0] + total*i/k
		// advance to the first row boundary whose cumulative nnz reaches target
		for row < rows && ptr[row+1] < target {
			row++
		}
		if row < rows {
			row++
		}
		b[i] = row
	}
	b[k] = rows
	// enforce monotonicity (degenerate weight distributions)
	for i := 1; i <= k; i++ {
		if b[i] < b[i-1] {
			b[i] = b[i-1]
		}
	}
	return b
}

// Tasks executes fn(task) for every task in [0, n) on at most threads worker
// goroutines that pull tasks from a shared atomic counter — work stealing in
// its simplest form. Unlike Run, which assigns one goroutine per precomputed
// range, Tasks lets a worker that finishes a cheap task immediately claim the
// next one, so heavily skewed task costs (one hot tile among many cold ones)
// self-balance without a weight-estimation pass. A panic on any worker is
// re-raised on the calling goroutine as a WorkerPanic after all workers join
// (serial execution panics directly); remaining tasks still run, keeping the
// cooperative-cancellation semantics of Run.
func Tasks(n, threads int, fn func(task int)) {
	if n <= 0 {
		return
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// Run executes fn(i) for i in [0, r) on at most threads goroutines, where r
// is the number of ranges encoded by boundaries b (len(b)-1). It is a helper
// for the BalancedRanges/Ranges output shape. A panic on any worker is
// re-raised on the calling goroutine as a WorkerPanic after all workers join
// (serial execution panics directly, without the wrapper); remaining ranges
// still run — cooperative cancellation, not hard abort, keeps the semantics
// identical to the panic-free path for every range that does execute.
func Run(b []int, threads int, fn func(part, lo, hi int)) {
	r := len(b) - 1
	if r <= 0 {
		return
	}
	if threads > r {
		threads = r
	}
	if threads <= 1 {
		for i := 0; i < r; i++ {
			if b[i] < b[i+1] {
				fn(i, b[i], b[i+1])
			}
		}
		return
	}
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(r)
	sem := make(chan struct{}, threads)
	for i := 0; i < r; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			defer pb.capture()
			if b[i] < b[i+1] {
				fn(i, b[i], b[i+1])
			}
		}(i)
	}
	wg.Wait()
	pb.rethrow()
}

package sparse

import (
	"math/rand"
	"testing"
)

// Masked SpMV/VxM kernels checked against the unmasked kernel plus a
// post-filter, across mask flag combinations.
func TestSpMVMaskedAgainstPostFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	add := func(a, b int) int { return a + b }
	mul := func(a, b int) int { return a * b }
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(12)
		n := 2 + rng.Intn(12)
		a := randCSR(rng, m, n, 0.4)
		u := randVec(rng, n, 0.5)
		mask := &Vec[bool]{N: m}
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.5 {
				mask.Ind = append(mask.Ind, i)
				mask.Val = append(mask.Val, rng.Intn(2) == 0)
			}
		}
		for _, structural := range []bool{false, true} {
			for _, comp := range []bool{false, true} {
				mk := VMask{M: mask, Structural: structural, Complement: comp}
				got := SpMV(a, u, mul, add, mk, 2)
				full := SpMV(a, u, mul, add, VMask{}, 1)
				want := MaskApplyV(NewVec[int](m), full, mk, true)
				if !VecEqualFunc(got, want, func(a, b int) bool { return a == b }) {
					t.Fatalf("masked SpMV mismatch (s=%v c=%v)", structural, comp)
				}
				got2 := VxM(u, Transpose(a), mul, add, mk, 2)
				want2 := MaskApplyV(NewVec[int](m), VxM(u, Transpose(a), mul, add, VMask{}, 1), mk, true)
				if !VecEqualFunc(got2, want2, func(a, b int) bool { return a == b }) {
					t.Fatalf("masked VxM mismatch (s=%v c=%v)", structural, comp)
				}
			}
		}
	}
}

func TestExtractVKernel(t *testing.T) {
	u, _ := BuildVec(6, []int{0, 2, 5}, []int{10, 30, 60}, nil)
	// nil = all
	all, err := ExtractV(u, nil)
	if err != nil || !VecEqualFunc(u, all, func(a, b int) bool { return a == b }) {
		t.Fatalf("ExtractV(all): %v", err)
	}
	// reorder + repeat
	sub, err := ExtractV(u, []int{5, 5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N != 4 || sub.NNZ() != 3 {
		t.Fatalf("sub: N=%d nnz=%d", sub.N, sub.NNZ())
	}
	if v, _ := sub.Get(0); v != 60 {
		t.Fatal("sub(0)")
	}
	if v, _ := sub.Get(1); v != 60 {
		t.Fatal("sub(1)")
	}
	if _, ok := sub.Get(2); ok {
		t.Fatal("sub(2) should be empty (u(1) missing)")
	}
	if v, _ := sub.Get(3); v != 30 {
		t.Fatal("sub(3)")
	}
	if _, err := ExtractV(u, []int{9}); err != ErrIndexOutOfBounds {
		t.Fatalf("bounds: %v", err)
	}
}

func TestAssignScalarVKernel(t *testing.T) {
	c, _ := BuildVec(5, []int{0, 2, 4}, []int{1, 3, 5}, nil)
	// no accum: all region positions set
	z, err := AssignScalarV(c, 9, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 1, 1: 9, 2: 9, 4: 5}
	if z.NNZ() != len(want) {
		t.Fatalf("nnz=%d", z.NNZ())
	}
	for i, wv := range want {
		if v, ok := z.Get(i); !ok || v != wv {
			t.Fatalf("z(%d)=%d,%v want %d", i, v, ok, wv)
		}
	}
	// accum combines where present
	z2, err := AssignScalarV(c, 9, []int{2, 3}, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := z2.Get(2); v != 12 {
		t.Fatalf("accum z(2)=%d", v)
	}
	if v, _ := z2.Get(3); v != 9 {
		t.Fatalf("accum z(3)=%d", v)
	}
	if _, err := AssignScalarV(c, 9, []int{7}, nil); err != ErrIndexOutOfBounds {
		t.Fatalf("bounds: %v", err)
	}
}

func TestSelectVAndApplyVKernels(t *testing.T) {
	u, _ := BuildVec(8, []int{1, 3, 5, 7}, []int{-1, 4, -9, 16}, nil)
	pos := SelectV(u, func(v int, i, j int, s int) bool { return v > s }, 0)
	if pos.NNZ() != 2 {
		t.Fatalf("pos nnz=%d", pos.NNZ())
	}
	neg := SelectV(u, func(v int, i, j int, s int) bool { return v <= s }, 0)
	if pos.NNZ()+neg.NNZ() != u.NNZ() {
		t.Fatal("select does not partition vector")
	}
	idx := ApplyIndexV(u, func(v int, i, j int, s int) int { return i*10 + j }, 0)
	for k, i := range idx.Ind {
		if idx.Val[k] != i*10 {
			t.Fatalf("index apply saw wrong coords: %d -> %d", i, idx.Val[k])
		}
	}
	dbl := ApplyV(u, func(v int) int { return v * 2 })
	for k := range dbl.Val {
		if dbl.Val[k] != 2*u.Val[k] {
			t.Fatal("apply value wrong")
		}
	}
}

func TestAccumMergeV(t *testing.T) {
	c, _ := BuildVec(4, []int{0, 2}, []int{1, 3}, nil)
	tv, _ := BuildVec(4, []int{1, 2}, []int{10, 20}, nil)
	// nil accum: result is t
	z := AccumMergeV[int](c, tv, nil)
	if !VecEqualFunc(z, tv, func(a, b int) bool { return a == b }) {
		t.Fatal("nil accum should return t")
	}
	z2 := AccumMergeV(c, tv, func(a, b int) int { return a + b })
	if v, _ := z2.Get(0); v != 1 {
		t.Fatal("c-only entry lost")
	}
	if v, _ := z2.Get(1); v != 10 {
		t.Fatal("t-only entry lost")
	}
	if v, _ := z2.Get(2); v != 23 {
		t.Fatal("merge wrong")
	}
}

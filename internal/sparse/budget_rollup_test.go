package sparse

import (
	"sync"
	"testing"
)

// TestBudgetRollup pins the parent-mirroring contract: child reservations
// appear in the ancestor aggregate, releases and transaction closes subtract
// them, and the parent never enforces its limit against child traffic.
func TestBudgetRollup(t *testing.T) {
	root := NewBudget(1 << 20)
	mid := NewBudget(1 << 19)
	leaf := NewBudget(1 << 16)
	mid.SetParent(root)
	leaf.SetParent(mid)

	tx := leaf.Tx()
	if !tx.Reserve(1000) {
		t.Fatal("leaf reserve failed")
	}
	if got := leaf.Used(); got != 1000 {
		t.Fatalf("leaf used = %d, want 1000", got)
	}
	if got := mid.Used(); got != 1000 {
		t.Fatalf("mid aggregate = %d, want 1000", got)
	}
	if got := root.Used(); got != 1000 {
		t.Fatalf("root aggregate = %d, want 1000", got)
	}
	if got := root.Peak(); got != 1000 {
		t.Fatalf("root peak = %d, want 1000", got)
	}
	tx.Close()
	if root.Used() != 0 || mid.Used() != 0 || leaf.Used() != 0 {
		t.Fatalf("after close: root=%d mid=%d leaf=%d, want all 0",
			root.Used(), mid.Used(), leaf.Used())
	}
	if got := root.Peak(); got != 1000 {
		t.Fatalf("peak after close = %d, want 1000 (high-water is sticky)", got)
	}
}

// TestBudgetRollupParentObservesOnly proves the nearest budget governs: a
// child reservation that fits the child but would overflow the parent's own
// limit still succeeds — the parent aggregate merely records it.
func TestBudgetRollupParentObservesOnly(t *testing.T) {
	parent := NewBudget(100)
	child := NewBudget(1 << 20)
	child.SetParent(parent)
	tx := child.Tx()
	if !tx.Reserve(5000) {
		t.Fatal("child reserve must not consult the parent limit")
	}
	if got := parent.Used(); got != 5000 {
		t.Fatalf("parent aggregate = %d, want 5000 (observed past its own limit)", got)
	}
	tx.Close()
	if got := parent.Used(); got != 0 {
		t.Fatalf("parent aggregate after close = %d, want 0", got)
	}
}

// TestBudgetDetach pins the teardown contract: a detached budget's residual
// (persistent) reservations leave every ancestor aggregate exactly once,
// and further child activity no longer mirrors up.
func TestBudgetDetach(t *testing.T) {
	root := NewBudget(1 << 20)
	child := NewBudget(1 << 18)
	child.SetParent(root)

	tx := child.Tx()
	if !tx.ReservePersistent(700) {
		t.Fatal("persistent reserve failed")
	}
	tx.Close() // persistent reservations survive Close
	if got := root.Used(); got != 700 {
		t.Fatalf("root aggregate = %d, want 700 residual", got)
	}
	child.Detach()
	if got := root.Used(); got != 0 {
		t.Fatalf("root aggregate after detach = %d, want 0", got)
	}
	child.Detach() // idempotent
	if got := root.Used(); got != 0 {
		t.Fatalf("root aggregate after double detach = %d, want 0", got)
	}
	// Post-detach traffic stays local.
	tx2 := child.Tx()
	if !tx2.Reserve(300) {
		t.Fatal("post-detach reserve failed")
	}
	if got := root.Used(); got != 0 {
		t.Fatalf("root aggregate saw post-detach traffic: %d", got)
	}
	tx2.Close()
}

// TestBudgetRollupConcurrent hammers one parent from many child budgets
// under the race detector: the aggregate must return to zero when every
// transaction closes and the peak must never exceed the true maximum.
func TestBudgetRollupConcurrent(t *testing.T) {
	root := NewBudget(1 << 30)
	const workers, iters, bytes = 8, 200, 4096
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := NewBudget(1 << 20)
			child.SetParent(root)
			for i := 0; i < iters; i++ {
				tx := child.Tx()
				if !tx.Reserve(bytes) {
					t.Error("reserve failed")
					return
				}
				tx.Close()
			}
			child.Detach()
		}()
	}
	wg.Wait()
	if got := root.Used(); got != 0 {
		t.Fatalf("root aggregate after all detach = %d, want 0", got)
	}
	if p := root.Peak(); p < bytes || p > workers*bytes {
		t.Fatalf("root peak = %d, want within [%d, %d]", p, bytes, workers*bytes)
	}
}

package sparse

import "unsafe"

// DenseMat is the row-major block view of a matrix: Val has Rows*Cols slots
// with element (i,j) at i*Cols+j. Bit == nil marks the full variant (every
// position stored, Nnz == Rows*Cols); otherwise Bit mirrors Val's layout and
// absent slots are zero-valued padding with no semiring meaning.
type DenseMat[T any] struct {
	Rows, Cols int
	Val        []T
	Bit        []bool
	Nnz        int
}

// Full reports whether the view stores every position (no bitmap).
func (d *DenseMat[T]) Full() bool { return d.Bit == nil }

// DenseView returns the memoized block view, materializing it on first use.
// Convenience wrapper for tests and unbudgeted callers.
func (m *CSR[T]) DenseView() *DenseMat[T] {
	d, err := m.DenseViewEx(Exec{})
	if err != nil {
		panic(err)
	}
	return d
}

// DenseViewEx returns the memoized block view of m, materializing it on
// first use under a persistent budget charge (the view is cached, like the
// transpose). Returns ErrBudget when the charge does not fit and ErrTooLarge
// when Rows*Cols overflows, letting the caller keep the sparse route.
func (m *CSR[T]) DenseViewEx(e Exec) (*DenseMat[T], error) {
	if d := m.dm.Load(); d != nil {
		return d, nil
	}
	size, ok := CheckedMul(m.Rows, m.Cols)
	if !ok {
		return nil, ErrTooLarge
	}
	denseViewMu.Lock()
	defer denseViewMu.Unlock()
	if d := m.dm.Load(); d != nil {
		return d, nil
	}
	if err := siteFormatConvert.Check(); err != nil {
		return nil, err
	}
	var zero T
	full := m.NNZ() == size && CurrentFormatHint() != FormatHintBitmap
	bytes := int64(size) * int64(unsafe.Sizeof(zero))
	if !full {
		bytes += int64(size)
	}
	if !e.Tx.ReservePersistent(bytes) {
		return nil, ErrBudget
	}
	d := &DenseMat[T]{Rows: m.Rows, Cols: m.Cols, Val: make([]T, size), Nnz: m.NNZ()}
	if !full {
		d.Bit = make([]bool, size)
	}
	for i := 0; i < m.Rows; i++ {
		ind, val := m.Row(i)
		base := i * m.Cols
		for k, j := range ind {
			d.Val[base+j] = val[k]
			if d.Bit != nil {
				d.Bit[base+j] = true
			}
		}
	}
	formatConversions.Add(1)
	scratchBytes.Add(bytes)
	DebugCheckDenseMat(d, "CSR.DenseView")
	m.dm.Store(d)
	return d, nil
}

// CSR converts the block view back to compressed-sparse-row form.
func (d *DenseMat[T]) CSR() *CSR[T] {
	out := &CSR[T]{Rows: d.Rows, Cols: d.Cols, Ptr: make([]int, d.Rows+1)}
	out.Ind = make([]int, 0, d.Nnz)
	out.Val = make([]T, 0, d.Nnz)
	for i := 0; i < d.Rows; i++ {
		base := i * d.Cols
		for j := 0; j < d.Cols; j++ {
			if d.Bit == nil || d.Bit[base+j] {
				out.Ind = append(out.Ind, j)
				out.Val = append(out.Val, d.Val[base+j])
			}
		}
		out.Ptr[i+1] = len(out.Ind)
	}
	DebugCheckCSR(out, "DenseMat.CSR")
	return out
}

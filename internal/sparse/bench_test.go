package sparse

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel-level microbenchmarks: the raw substrate costs underneath the
// public-API benchmarks at the repository root. Densities are chosen to
// mimic graph adjacency matrices (~8 entries/row).

func benchMatrix(n int, seed int64) *CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	out := NewCSR[float64](n, n)
	per := 8
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		for k := 0; k < per; k++ {
			seen[rng.Intn(n)] = true
		}
		cols := make([]int, 0, len(seen))
		for j := range seen {
			cols = append(cols, j)
		}
		// insertion order doesn't matter for the bench; sort for validity
		for x := 1; x < len(cols); x++ {
			for y := x; y > 0 && cols[y-1] > cols[y]; y-- {
				cols[y-1], cols[y] = cols[y], cols[y-1]
			}
		}
		for _, j := range cols {
			out.Ind = append(out.Ind, j)
			out.Val = append(out.Val, rng.Float64())
		}
		out.Ptr[i+1] = len(out.Ind)
	}
	return out
}

var addF = func(a, b float64) float64 { return a + b }
var mulF = func(a, b float64) float64 { return a * b }

func BenchmarkKernelSpGEMM(b *testing.B) {
	for _, n := range []int{512, 2048} {
		a := benchMatrix(n, 1)
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/threads=%d", n, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					SpGEMM(a, a, mulF, addF, Mask{}, threads)
				}
			})
		}
	}
}

func BenchmarkKernelSpGEMMMasked(b *testing.B) {
	n := 2048
	a := benchMatrix(n, 1)
	mask := &CSR[bool]{Rows: n, Cols: n, Ptr: a.Ptr, Ind: a.Ind, Val: make([]bool, len(a.Ind))}
	for i := range mask.Val {
		mask.Val[i] = true
	}
	b.Run("structural-mask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SpGEMM(a, a, mulF, addF, Mask{M: mask, Structural: true}, 1)
		}
	})
}

// hypersparseCSR builds an n×n matrix with ~nnz random entries: n ≫ nnz, so
// nearly every row is empty and per-row flop bounds are tiny next to n.
func hypersparseCSR(n, nnz int, seed int64) *CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	I := make([]int, nnz)
	J := make([]int, nnz)
	X := make([]float64, nnz)
	for k := 0; k < nnz; k++ {
		I[k] = rng.Intn(n)
		J[k] = rng.Intn(n)
		X[k] = rng.Float64()
	}
	m, err := BuildCSR(n, n, I, J, X, func(a, b float64) float64 { return b })
	if err != nil {
		panic(err)
	}
	return m
}

// The hypersparse regime the adaptive kernel targets: n = 2^20 ≈ 1e6,
// nnz ≈ 4e5. The dense SPA must allocate and stamp O(n) scratch per worker
// (~16 MiB each); the hash SPA allocates O(maxRowFlops) slots. Run with
// -benchmem: the B/op gap is the per-worker scratch saving the adaptive
// router buys (≥ 5× is the acceptance bar; in practice it is orders of
// magnitude).
func BenchmarkKernelSpGEMMHypersparse(b *testing.B) {
	const n, nnz = 1 << 20, 400_000
	a := hypersparseCSR(n, nnz, 17)
	for _, tc := range []struct {
		name string
		kern Kernel
	}{{"dense", KernelDense}, {"hash", KernelHash}, {"auto", KernelAuto}} {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("kernel=%s/threads=%d", tc.name, threads), func(b *testing.B) {
				b.ReportAllocs()
				ResetKernelCounts()
				for i := 0; i < b.N; i++ {
					SpGEMMKernel(a, a, mulF, addF, Mask{}, threads, tc.kern)
				}
				dense, hash := KernelCounts()
				b.ReportMetric(float64(dense)/float64(b.N), "dense-ranges/op")
				b.ReportMetric(float64(hash)/float64(b.N), "hash-ranges/op")
				b.ReportMetric(float64(ScratchBytes())/float64(b.N), "scratch-B/op")
			})
		}
	}
}

// Pull-style SpMV over a wide, hypersparse input vector: the dense path
// scatters u into O(n) value+presence buffers per call, the hash path builds
// an O(nnz(u)) read-only table shared by all workers.
func BenchmarkKernelSpMVHypersparse(b *testing.B) {
	const n, nnz = 1 << 20, 400_000
	a := hypersparseCSR(n, nnz, 18)
	u := &Vec[float64]{N: n}
	for i := 0; i < 1024; i++ {
		u.Ind = append(u.Ind, i*(n/1024))
		u.Val = append(u.Val, 1)
	}
	for _, tc := range []struct {
		name string
		kern Kernel
	}{{"dense", KernelDense}, {"hash", KernelHash}, {"auto", KernelAuto}} {
		b.Run("kernel="+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			ResetKernelCounts()
			for i := 0; i < b.N; i++ {
				SpMVKernel(a, u, mulF, addF, VMask{}, 4, tc.kern)
			}
			b.ReportMetric(float64(ScratchBytes())/float64(b.N), "scratch-B/op")
		})
	}
}

func BenchmarkKernelSpMV(b *testing.B) {
	a := benchMatrix(4096, 2)
	u := &Vec[float64]{N: 4096}
	for i := 0; i < 4096; i++ {
		u.Ind = append(u.Ind, i)
		u.Val = append(u.Val, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMV(a, u, mulF, addF, VMask{}, 1)
	}
}

func BenchmarkKernelVxMSparse(b *testing.B) {
	a := benchMatrix(4096, 2)
	u := &Vec[float64]{N: 4096}
	for i := 0; i < 4096; i += 128 { // 32-entry frontier
		u.Ind = append(u.Ind, i)
		u.Val = append(u.Val, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VxM(u, a, mulF, addF, VMask{}, 1)
	}
}

func BenchmarkKernelEWiseAdd(b *testing.B) {
	x := benchMatrix(4096, 3)
	y := benchMatrix(4096, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EWiseAddM(x, y, addF, 1)
	}
}

func BenchmarkKernelTranspose(b *testing.B) {
	a := benchMatrix(4096, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(a)
	}
}

func BenchmarkKernelSelect(b *testing.B) {
	a := benchMatrix(4096, 6)
	f := func(v float64, i, j int, s int) bool { return j > i }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectM(a, f, 0, 1)
	}
}

func BenchmarkKernelBuildCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 4096
	m := 8 * n
	I := make([]int, m)
	J := make([]int, m)
	X := make([]float64, m)
	for k := 0; k < m; k++ {
		I[k] = rng.Intn(n)
		J[k] = rng.Intn(n)
		X[k] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = BuildCSR(n, n, I, J, X, addF)
	}
}

func BenchmarkKernelMaskApply(b *testing.B) {
	c := benchMatrix(4096, 8)
	z := benchMatrix(4096, 9)
	mask := &CSR[bool]{Rows: c.Rows, Cols: c.Cols, Ptr: c.Ptr, Ind: c.Ind, Val: make([]bool, len(c.Ind))}
	for i := range mask.Val {
		mask.Val[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaskApplyM(c, z, Mask{M: mask}, false, 1)
	}
}

package sparse

import "sync/atomic"

// Direction-optimizing traversal policy (Beamer-style push/pull selection).
//
// A matrix-vector product over a sparse frontier u can be served two ways:
//
//   - push (VxM): iterate the stored entries of u and scatter each one's row
//     of contributions into a SPA. Work is O(Σ_{i∈u} nnz(A(i,:))) — only the
//     edges leaving the frontier — but output order must be reconstructed.
//   - pull (SpMVKernel): iterate output positions and gather matching input
//     entries row by row. Work touches every unmasked row of the (possibly
//     transposed) matrix, but a sparse non-complemented mask prunes rows
//     before any gather happens.
//
// For BFS-style traversals the frontier starts and ends tiny (push wins) and
// the mask is the complement of the visited set (so pull cannot prune); for
// dense iterative kernels (PageRank, Bellman-Ford past the first hops) pull's
// sequential row gathers win. chooseDirection routes each call by frontier
// and mask density; the Descriptor's Dir field pins it per operation.

// directionThreshold is the frontier-density knob: with no better signal the
// push kernel is chosen when nnz(u) < inDim/threshold. Stored atomically so
// benchmarks can pin it while operations run on other goroutines.
var directionThreshold atomic.Int64

// defaultDirectionThreshold = 16 is the classic direction-optimizing BFS
// switch point (Beamer et al. report α ≈ 14 for edge-based estimates; with
// our vertex-count proxy 16 keeps push through the growing phase of a
// power-law traversal and hands dense frontiers to pull).
const defaultDirectionThreshold = 16

func init() { directionThreshold.Store(defaultDirectionThreshold) }

// DirectionThreshold returns the current push/pull selection threshold.
func DirectionThreshold() int { return int(directionThreshold.Load()) }

// SetDirectionThreshold pins the push/pull selection threshold and returns
// the previous value. Values < 1 are clamped to 1.
func SetDirectionThreshold(t int) int {
	if t < 1 {
		t = 1
	}
	return int(directionThreshold.Swap(int64(t)))
}

// ChoosePush is the push/pull selection rule for a matrix-vector product
// whose frontier u has nnzU stored entries over an input dimension inDim,
// with outDim output positions guarded by mask. It returns true when the
// push (scatter) kernel should serve the call:
//
//   - a sparse non-complemented mask admits few outputs, and the pull kernel
//     skips every non-admitted row before doing any work — pull wins outright
//     (this is the masked-pull traversal case of §II of the paper);
//   - otherwise push wins exactly when the frontier is sparse: its scatter
//     touches only the frontier's edges, while pull must gather every
//     unmasked row.
func ChoosePush(nnzU, inDim int, mask VMask, outDim int) bool {
	t := DirectionThreshold()
	if mask.M != nil && !mask.Complement && mask.M.NNZ() < outDim/t {
		return false
	}
	return nnzU < inDim/t
}

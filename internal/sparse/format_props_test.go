package sparse

import (
	"math/rand"
	"testing"
)

// Format-transition property tests: converting a sparse object to its
// bitmap/dense block view and back must be lossless — same shape, same
// nnz, same pattern, same values — for every density and under either
// format hint. Built with -tags grbcheck the conversions additionally run
// the structural validators at every install point, so a malformed view or
// a broken round-trip fails twice over.

// roundTripVec pushes v through its block view and back and checks the
// result is exactly v.
func roundTripVec[T comparable](t *testing.T, label string, v *Vec[T], wantFull bool) {
	t.Helper()
	dv, err := v.DenseViewEx(Exec{})
	if err != nil {
		t.Fatalf("%s: DenseViewEx: %v", label, err)
	}
	if dv.N != v.N || dv.Nnz != v.NNZ() {
		t.Fatalf("%s: view shape/nnz (%d,%d) != (%d,%d)", label, dv.N, dv.Nnz, v.N, v.NNZ())
	}
	if dv.Full() != wantFull {
		t.Fatalf("%s: view Full() = %v, want %v", label, dv.Full(), wantFull)
	}
	back := dv.Sparse()
	identicalVec(t, label+"/round-trip", back, v)
}

func TestFormatVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mk := func(r *rand.Rand) float64 { return r.NormFloat64() }
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		// Sparse frontier: a bitmap view unless the spray happened to
		// saturate every position (likely only at tiny n).
		sv := sprayVec(rng, n, 3, mk)
		roundTripVec(t, "sparse", sv, sv.NNZ() == sv.N)
		// Full frontier: a dense view under the auto hint...
		roundTripVec(t, "full-auto", fullVec(rng, n, mk), true)
		// ...and a bitmap view under the bitmap pin.
		prev := SetFormatHint(FormatHintBitmap)
		roundTripVec(t, "full-bitmap", fullVec(rng, n, mk), false)
		SetFormatHint(prev)
	}
	// Degenerate shapes.
	roundTripVec(t, "empty", NewVec[float64](17), false)
	roundTripVec(t, "zero-dim", NewVec[float64](0), true)
}

func TestFormatVecRoundTripInt64(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mk := func(r *rand.Rand) int64 { return int64(r.Intn(2000) - 1000) }
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(200)
		sv := sprayVec(rng, n, 3, mk)
		roundTripVec(t, "sparse-i64", sv, sv.NNZ() == sv.N)
		roundTripVec(t, "full-i64", fullVec(rng, n, mk), true)
	}
}

// roundTripMat pushes m through its block view and back.
func roundTripMat[T comparable](t *testing.T, label string, m *CSR[T], wantFull bool) {
	t.Helper()
	dm, err := m.DenseViewEx(Exec{})
	if err != nil {
		t.Fatalf("%s: DenseViewEx: %v", label, err)
	}
	if dm.Rows != m.Rows || dm.Cols != m.Cols || dm.Nnz != m.NNZ() {
		t.Fatalf("%s: view %dx%d/%d != %dx%d/%d", label,
			dm.Rows, dm.Cols, dm.Nnz, m.Rows, m.Cols, m.NNZ())
	}
	if dm.Full() != wantFull {
		t.Fatalf("%s: view Full() = %v, want %v", label, dm.Full(), wantFull)
	}
	back := dm.CSR()
	identicalCSR(t, label+"/round-trip", back, m)
}

func TestFormatMatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mk := func(r *rand.Rand) float64 { return r.NormFloat64() }
	for trial := 0; trial < 12; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		// A spray of rows+cols entries can saturate a tiny matrix, in
		// which case the auto-hint view is legitimately full.
		sm := sprayCSR(rng, rows, cols, rows+cols, mk)
		roundTripMat(t, "sparse", sm, sm.NNZ() == rows*cols)
		roundTripMat(t, "full", fullCSR(rng, rows, cols, mk), true)
		prev := SetFormatHint(FormatHintBitmap)
		roundTripMat(t, "full-bitmap", fullCSR(rng, rows, cols, mk), false)
		SetFormatHint(prev)
	}
	roundTripMat(t, "empty", NewCSR[float64](9, 13), false)
}

// TestFormatViewCaching pins the caching contract: the view is built once
// per snapshot and the cached pointer is returned afterwards, and the
// conversion counter records exactly the materializations.
func TestFormatViewCaching(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	v := sprayVec(rng, 100, 2, func(r *rand.Rand) float64 { return r.NormFloat64() })
	ResetKernelCounts()
	dv1, err := v.DenseViewEx(Exec{})
	if err != nil {
		t.Fatal(err)
	}
	dv2, err := v.DenseViewEx(Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if dv1 != dv2 {
		t.Fatal("second DenseViewEx did not return the cached view")
	}
	if got := FormatConversionCount(); got != 1 {
		t.Fatalf("conversions = %d, want 1", got)
	}

	m := sprayCSR(rng, 20, 20, 60, func(r *rand.Rand) float64 { return r.NormFloat64() })
	dm1, err := m.DenseViewEx(Exec{})
	if err != nil {
		t.Fatal(err)
	}
	dm2, err := m.DenseViewEx(Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if dm1 != dm2 {
		t.Fatal("second matrix DenseViewEx did not return the cached view")
	}
	if got := FormatConversionCount(); got != 2 {
		t.Fatalf("conversions = %d, want 2", got)
	}
}

// TestFormatViewBudget pins the budget interaction: a budget too small for
// the block view refuses with ErrBudget (so the router can fall back to
// the closure kernels) and releasing the budget is the caller's problem,
// while a sufficient budget charges the view persistently.
func TestFormatViewBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	v := fullVec(rng, 1000, func(r *rand.Rand) float64 { return r.NormFloat64() })
	small := NewBudget(16).Tx() // bytes: far below the 8000-byte view
	if _, err := v.DenseViewEx(Exec{Tx: small}); err == nil {
		t.Fatal("DenseViewEx under a 16-byte budget did not refuse")
	}
	big := NewBudget(1 << 20)
	if _, err := v.DenseViewEx(Exec{Tx: big.Tx()}); err != nil {
		t.Fatalf("DenseViewEx under a 1MiB budget: %v", err)
	}
	if big.Used() == 0 {
		t.Fatal("materialized view left no persistent budget charge")
	}
}

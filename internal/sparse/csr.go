// Package sparse is the sparse linear-algebra substrate underneath the public
// GraphBLAS 2.0 API. It provides generic compressed-sparse-row matrices,
// sorted-coordinate vectors, and the computational kernels (SpGEMM, SpMV,
// element-wise merges, apply/select with index operators, extract, assign,
// reduce, transpose, Kronecker, mask/accumulator application) that the grb
// package wraps with GraphBLAS semantics (masks, accumulators, descriptors,
// modes, contexts).
//
// All structures in this package are treated as immutable once built: kernels
// always allocate fresh output buffers and never mutate their inputs. The grb
// layer relies on this to snapshot operands for deferred (nonblocking-mode)
// sequences, per §III of the GraphBLAS 2.0 paper.
package sparse

import (
	"errors"
	"sort"
	"sync/atomic"
)

// Errors surfaced by substrate kernels. The grb layer maps these onto
// GraphBLAS Info codes (execution errors, §V of the paper).
var (
	// ErrDuplicate reports duplicate coordinates in a build whose dup
	// operator is nil (GraphBLAS 2.0 §IX: duplicates become an execution
	// error when no dup function is supplied).
	ErrDuplicate = errors.New("sparse: duplicate coordinates with nil dup operator")
	// ErrIndexOutOfBounds reports a coordinate outside the object's shape.
	ErrIndexOutOfBounds = errors.New("sparse: index out of bounds")
	// ErrTooLarge reports a result whose shape or entry count overflows the
	// int range (e.g. a Kronecker product of huge operands). The grb layer
	// maps this onto GrB_OUT_OF_MEMORY.
	ErrTooLarge = errors.New("sparse: result dimensions or nnz overflow")
)

// CSR is a generic compressed-sparse-row matrix. Column indices within each
// row are sorted and unique. Ptr has length Rows+1; row i occupies
// Ind[Ptr[i]:Ptr[i+1]] and Val[Ptr[i]:Ptr[i+1]].
type CSR[T any] struct {
	Rows, Cols int
	Ptr        []int
	Ind        []int
	Val        []T

	// tr memoizes the transpose of this matrix (see TransposeCached). It
	// piggybacks on the immutable-on-write contract: a CSR never changes
	// after it is built, and every mutation in the grb layer installs a
	// freshly built CSR whose cache starts empty, so a cached transpose can
	// never go stale. Atomic so concurrent readers of a completed object
	// share the view without locks.
	tr atomic.Pointer[CSR[T]]

	// dm memoizes the bitmap/dense block view (see DenseView), under the
	// same immutable-on-write coherence argument as tr.
	dm atomic.Pointer[DenseMat[T]]

	// blk memoizes the 2D-blocked tile view (see BlockedViewEx), under the
	// same immutable-on-write coherence argument as tr/dm. A view built for
	// a different grid is replaced rather than kept alongside: any cached
	// BlockedCSR is valid for its own grid, so replacement is safe.
	blk atomic.Pointer[BlockedCSR[T]]
}

// NewCSR returns an empty rows×cols matrix.
func NewCSR[T any](rows, cols int) *CSR[T] {
	return &CSR[T]{Rows: rows, Cols: cols, Ptr: make([]int, rows+1)}
}

// NNZ returns the number of stored entries.
func (m *CSR[T]) NNZ() int { return len(m.Ind) }

// Row returns the column-index and value slices of row i (views, do not
// mutate).
func (m *CSR[T]) Row(i int) ([]int, []T) {
	lo, hi := m.Ptr[i], m.Ptr[i+1]
	return m.Ind[lo:hi], m.Val[lo:hi]
}

// Clone returns a deep copy.
func (m *CSR[T]) Clone() *CSR[T] {
	c := &CSR[T]{Rows: m.Rows, Cols: m.Cols,
		Ptr: make([]int, len(m.Ptr)),
		Ind: make([]int, len(m.Ind)),
		Val: make([]T, len(m.Val))}
	copy(c.Ptr, m.Ptr)
	copy(c.Ind, m.Ind)
	copy(c.Val, m.Val)
	return c
}

// Get returns the entry at (i, j) and whether it is present. Callers must
// have validated 0 <= i < Rows, 0 <= j < Cols.
func (m *CSR[T]) Get(i, j int) (T, bool) {
	ind, val := m.Row(i)
	k := sort.SearchInts(ind, j)
	if k < len(ind) && ind[k] == j {
		return val[k], true
	}
	var zero T
	return zero, false
}

// Tuples appends the (row, col, value) triples of m in row-major order to the
// provided slices and returns them. Pass nils to allocate fresh slices.
func (m *CSR[T]) Tuples(I, J []int, X []T) ([]int, []int, []T) {
	for i := 0; i < m.Rows; i++ {
		ind, val := m.Row(i)
		for k := range ind {
			I = append(I, i)
			J = append(J, ind[k])
			X = append(X, val[k])
		}
	}
	return I, J, X
}

// Valid performs an internal-consistency check, used by tests and by the
// grb layer's InvalidObject detection.
func (m *CSR[T]) Valid() bool {
	if m.Rows < 0 || m.Cols < 0 || len(m.Ptr) != m.Rows+1 {
		return false
	}
	if m.Ptr[0] != 0 || m.Ptr[m.Rows] != len(m.Ind) || len(m.Ind) != len(m.Val) {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		if m.Ptr[i] < 0 || m.Ptr[i] > m.Ptr[i+1] || m.Ptr[i+1] > len(m.Ind) {
			return false
		}
	}
	for i := 0; i < m.Rows; i++ {
		ind, _ := m.Row(i)
		for k := range ind {
			if ind[k] < 0 || ind[k] >= m.Cols {
				return false
			}
			if k > 0 && ind[k-1] >= ind[k] {
				return false
			}
		}
	}
	return true
}

// BuildCSR constructs a rows×cols CSR matrix from coordinate triples
// (I[k], J[k], X[k]). Duplicate coordinates are combined with dup (first
// argument is the earlier value in input order); if dup is nil, duplicates
// yield ErrDuplicate — the GraphBLAS 2.0 §IX behaviour where the dup operator
// became optional and its absence turns duplicates into an execution error.
func BuildCSR[T any](rows, cols int, I, J []int, X []T, dup func(T, T) T) (*CSR[T], error) {
	n := len(I)
	if len(J) != n || len(X) != n {
		return nil, errors.New("sparse: build slices have unequal lengths")
	}
	for k := 0; k < n; k++ {
		if I[k] < 0 || I[k] >= rows || J[k] < 0 || J[k] >= cols {
			return nil, ErrIndexOutOfBounds
		}
	}
	perm := make([]int, n)
	for k := range perm {
		perm[k] = k
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := perm[a], perm[b]
		if I[ka] != I[kb] {
			return I[ka] < I[kb]
		}
		return J[ka] < J[kb]
	})
	m := &CSR[T]{Rows: rows, Cols: cols,
		Ptr: make([]int, rows+1),
		Ind: make([]int, 0, n),
		Val: make([]T, 0, n)}
	for s := 0; s < n; {
		k := perm[s]
		i, j, v := I[k], J[k], X[k]
		s++
		for s < n && I[perm[s]] == i && J[perm[s]] == j {
			if dup == nil {
				return nil, ErrDuplicate
			}
			v = dup(v, X[perm[s]])
			s++
		}
		m.Ind = append(m.Ind, j)
		m.Val = append(m.Val, v)
		m.Ptr[i+1]++
	}
	for i := 0; i < rows; i++ {
		m.Ptr[i+1] += m.Ptr[i]
	}
	DebugCheckCSR(m, "BuildCSR")
	return m, nil
}

// Tuple is a pending coordinate update: set (Del=false) or delete (Del=true).
// The grb layer accumulates setElement/removeElement calls as Tuples and
// merges them lazily, which is what lets a GraphBLAS sequence defer work in
// nonblocking mode.
type Tuple[T any] struct {
	Row, Col int
	Val      T
	Del      bool
}

// MergeTuples folds a list of pending updates into m, later updates winning
// over earlier ones and over existing entries (setElement semantics).
// Deletions remove entries. Returns a fresh matrix.
func MergeTuples[T any](m *CSR[T], tuples []Tuple[T]) (*CSR[T], error) {
	if len(tuples) == 0 {
		return m, nil
	}
	for _, t := range tuples {
		if t.Row < 0 || t.Row >= m.Rows || t.Col < 0 || t.Col >= m.Cols {
			return nil, ErrIndexOutOfBounds
		}
	}
	// Stable sort by coordinate; for equal coordinates the last in program
	// order must win, so walk groups and keep the final element.
	ts := make([]Tuple[T], len(tuples))
	copy(ts, tuples)
	sort.SliceStable(ts, func(a, b int) bool {
		if ts[a].Row != ts[b].Row {
			return ts[a].Row < ts[b].Row
		}
		return ts[a].Col < ts[b].Col
	})
	dedup := ts[:0]
	for s := 0; s < len(ts); {
		e := s
		for e+1 < len(ts) && ts[e+1].Row == ts[s].Row && ts[e+1].Col == ts[s].Col {
			e++
		}
		dedup = append(dedup, ts[e])
		s = e + 1
	}
	ts = dedup

	out := &CSR[T]{Rows: m.Rows, Cols: m.Cols,
		Ptr: make([]int, m.Rows+1),
		Ind: make([]int, 0, len(m.Ind)+len(ts)),
		Val: make([]T, 0, len(m.Val)+len(ts))}
	p := 0 // cursor into ts
	for i := 0; i < m.Rows; i++ {
		ind, val := m.Row(i)
		k := 0
		for k < len(ind) || (p < len(ts) && ts[p].Row == i) {
			tActive := p < len(ts) && ts[p].Row == i
			switch {
			case tActive && (k >= len(ind) || ts[p].Col < ind[k]):
				if !ts[p].Del {
					out.Ind = append(out.Ind, ts[p].Col)
					out.Val = append(out.Val, ts[p].Val)
				}
				p++
			case tActive && ts[p].Col == ind[k]:
				if !ts[p].Del {
					out.Ind = append(out.Ind, ts[p].Col)
					out.Val = append(out.Val, ts[p].Val)
				}
				p++
				k++
			default:
				out.Ind = append(out.Ind, ind[k])
				out.Val = append(out.Val, val[k])
				k++
			}
		}
		out.Ptr[i+1] = len(out.Ind)
	}
	DebugCheckCSR(out, "MergeTuples")
	return out, nil
}

// Resize returns a copy of m with the new shape. Entries outside the new
// shape are dropped; growing adds empty space (GrB_Matrix_resize semantics).
func (m *CSR[T]) Resize(rows, cols int) *CSR[T] {
	out := &CSR[T]{Rows: rows, Cols: cols, Ptr: make([]int, rows+1)}
	keep := m.Rows
	if rows < keep {
		keep = rows
	}
	for i := 0; i < keep; i++ {
		ind, val := m.Row(i)
		for k := range ind {
			if ind[k] < cols {
				out.Ind = append(out.Ind, ind[k])
				out.Val = append(out.Val, val[k])
			}
		}
		out.Ptr[i+1] = len(out.Ind)
	}
	for i := keep; i < rows; i++ {
		out.Ptr[i+1] = len(out.Ind)
	}
	DebugCheckCSR(out, "CSR.Resize")
	return out
}

// EqualFunc reports whether a and b have identical shape, pattern, and
// values under eq.
func EqualFunc[T any](a, b *CSR[T], eq func(T, T) bool) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Ptr {
		if a.Ptr[i] != b.Ptr[i] {
			return false
		}
	}
	for k := range a.Ind {
		if a.Ind[k] != b.Ind[k] || !eq(a.Val[k], b.Val[k]) {
			return false
		}
	}
	return true
}

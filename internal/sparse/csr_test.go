package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func eqInt(a, b int) bool { return a == b }

func TestBuildCSRBasic(t *testing.T) {
	m, err := BuildCSR(3, 4,
		[]int{2, 0, 0, 1}, []int{1, 3, 0, 2}, []int{20, 3, 1, 12},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid() {
		t.Fatal("invalid CSR")
	}
	if m.NNZ() != 4 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if v, ok := m.Get(0, 0); !ok || v != 1 {
		t.Fatalf("Get(0,0) = %d,%v", v, ok)
	}
	if v, ok := m.Get(2, 1); !ok || v != 20 {
		t.Fatalf("Get(2,1) = %d,%v", v, ok)
	}
	if _, ok := m.Get(1, 0); ok {
		t.Fatal("Get(1,0) should be absent")
	}
}

func TestBuildCSRDuplicates(t *testing.T) {
	// dup supplied: combined in input order.
	m, err := BuildCSR(2, 2,
		[]int{0, 0, 0}, []int{1, 1, 1}, []int{1, 2, 4},
		func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(0, 1); v != 7 {
		t.Fatalf("dup sum = %d, want 7", v)
	}
	// nil dup: duplicates are an error (GraphBLAS 2.0 §IX).
	if _, err := BuildCSR(2, 2, []int{0, 0}, []int{1, 1}, []int{1, 2}, nil); err != ErrDuplicate {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestBuildCSRBounds(t *testing.T) {
	if _, err := BuildCSR(2, 2, []int{2}, []int{0}, []int{1}, nil); err != ErrIndexOutOfBounds {
		t.Fatalf("err = %v", err)
	}
	if _, err := BuildCSR(2, 2, []int{0}, []int{-1}, []int{1}, nil); err != ErrIndexOutOfBounds {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeTuplesLastWins(t *testing.T) {
	m, _ := BuildCSR(2, 3, []int{0, 1}, []int{0, 2}, []int{1, 2}, nil)
	out, err := MergeTuples(m, []Tuple[int]{
		{Row: 0, Col: 0, Val: 10},            // overwrite
		{Row: 0, Col: 1, Val: 5},             // insert
		{Row: 0, Col: 1, Val: 6},             // later wins
		{Row: 1, Col: 2, Del: true},          // delete
		{Row: 1, Col: 1, Val: 9, Del: false}, // insert
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Valid() {
		t.Fatal("invalid after merge")
	}
	if v, _ := out.Get(0, 0); v != 10 {
		t.Fatalf("(0,0)=%d", v)
	}
	if v, _ := out.Get(0, 1); v != 6 {
		t.Fatalf("(0,1)=%d", v)
	}
	if _, ok := out.Get(1, 2); ok {
		t.Fatal("(1,2) should be deleted")
	}
	if v, _ := out.Get(1, 1); v != 9 {
		t.Fatalf("(1,1)=%d", v)
	}
	// original untouched (immutability)
	if v, _ := m.Get(0, 0); v != 1 {
		t.Fatal("input mutated")
	}
}

func TestMergeTuplesSetThenDeleteThenSet(t *testing.T) {
	m := NewCSR[int](1, 1)
	out, err := MergeTuples(m, []Tuple[int]{
		{Row: 0, Col: 0, Val: 1},
		{Row: 0, Col: 0, Del: true},
		{Row: 0, Col: 0, Val: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out.Get(0, 0); !ok || v != 3 {
		t.Fatalf("(0,0)=%d,%v want 3", v, ok)
	}
}

func TestResize(t *testing.T) {
	m, _ := BuildCSR(3, 3, []int{0, 1, 2}, []int{0, 1, 2}, []int{1, 2, 3}, nil)
	small := m.Resize(2, 2)
	if !small.Valid() || small.NNZ() != 2 {
		t.Fatalf("shrink: nnz=%d", small.NNZ())
	}
	big := m.Resize(5, 5)
	if !big.Valid() || big.NNZ() != 3 || big.Rows != 5 {
		t.Fatalf("grow: nnz=%d rows=%d", big.NNZ(), big.Rows)
	}
}

func TestTuplesRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		n := rng.Intn(rows * cols)
		// distinct coordinates
		perm := rng.Perm(rows * cols)[:n]
		I := make([]int, n)
		J := make([]int, n)
		X := make([]int, n)
		for k, p := range perm {
			I[k], J[k], X[k] = p/cols, p%cols, rng.Int()
		}
		m, err := BuildCSR(rows, cols, I, J, X, nil)
		if err != nil || !m.Valid() {
			return false
		}
		oi, oj, ox := m.Tuples(nil, nil, nil)
		back, err := BuildCSR(rows, cols, oi, oj, ox, nil)
		if err != nil {
			return false
		}
		return EqualFunc(m, back, eqInt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := BuildCSR(2, 2, []int{0}, []int{0}, []int{1}, nil)
	c := m.Clone()
	c.Val[0] = 99
	if v, _ := m.Get(0, 0); v != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestValidDetectsCorruption(t *testing.T) {
	m, _ := BuildCSR(2, 2, []int{0, 1}, []int{0, 1}, []int{1, 2}, nil)
	if !m.Valid() {
		t.Fatal("should be valid")
	}
	bad := m.Clone()
	bad.Ind[0] = 5 // out of range column
	if bad.Valid() {
		t.Fatal("corruption not detected")
	}
	bad2 := m.Clone()
	bad2.Ptr[1] = 3 // non-monotone / out of range
	if bad2.Valid() {
		t.Fatal("corruption not detected")
	}
}

func TestVecBuildAndTuples(t *testing.T) {
	v, err := BuildVec(5, []int{3, 0}, []float64{3.5, 0.5}, nil)
	if err != nil || !v.Valid() {
		t.Fatal(err)
	}
	if x, ok := v.Get(3); !ok || x != 3.5 {
		t.Fatalf("Get(3)=%v,%v", x, ok)
	}
	if _, err := BuildVec(5, []int{1, 1}, []float64{1, 2}, nil); err != ErrDuplicate {
		t.Fatalf("err=%v", err)
	}
	if _, err := BuildVec(5, []int{5}, []float64{1}, nil); err != ErrIndexOutOfBounds {
		t.Fatalf("err=%v", err)
	}
}

func TestMergeVTuples(t *testing.T) {
	v, _ := BuildVec(4, []int{1, 3}, []int{10, 30}, nil)
	out, err := MergeVTuples(v, []VTuple[int]{
		{Idx: 1, Del: true},
		{Idx: 0, Val: 5},
		{Idx: 3, Val: 33},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Valid() || out.NNZ() != 2 {
		t.Fatalf("nnz=%d", out.NNZ())
	}
	if x, _ := out.Get(0); x != 5 {
		t.Fatalf("(0)=%d", x)
	}
	if x, _ := out.Get(3); x != 33 {
		t.Fatalf("(3)=%d", x)
	}
}

func TestScatterGather(t *testing.T) {
	v, _ := BuildVec(6, []int{1, 4}, []int{7, 8}, nil)
	dv, ok := v.Scatter()
	back := GatherVec(dv, ok)
	if !VecEqualFunc(v, back, eqInt) {
		t.Fatal("scatter/gather mismatch")
	}
}

package sparse

import "sort"

// AssignM computes the "assign region" candidate Z for GrB_assign:
// Z = C with the region (rows × cols) overwritten by A, where
// Z(rows[i], cols[j]) receives A(i,j). Entries of C inside the region that
// have no counterpart in A are deleted when accum is nil (pure assignment)
// and kept when accum is non-nil; co-located entries combine with accum.
// Entries of C outside the region pass through untouched. The caller then
// applies the operation mask over all of Z (GrB_assign's mask spans C).
//
// nil rows/cols mean all indices. A must be len(rows)×len(cols).
func AssignM[T any](c, a *CSR[T], rows, cols []int, accum func(T, T) T) (*CSR[T], error) {
	nr, nc := c.Rows, c.Cols
	if rows != nil {
		nr = len(rows)
	}
	if cols != nil {
		nc = len(cols)
	}
	if a.Rows != nr || a.Cols != nc {
		return nil, ErrIndexOutOfBounds
	}
	// invRow[r] = source row of A assigned to C row r, or -1.
	invRow := make([]int, c.Rows)
	for i := range invRow {
		invRow[i] = -1
	}
	if rows == nil {
		for i := 0; i < c.Rows; i++ {
			invRow[i] = i
		}
	} else {
		for i, r := range rows {
			if r < 0 || r >= c.Rows {
				return nil, ErrIndexOutOfBounds
			}
			invRow[r] = i // duplicates: last occurrence wins
		}
	}
	inCol := make([]bool, c.Cols)
	if cols == nil {
		for j := range inCol {
			inCol[j] = true
		}
	} else {
		for _, cc := range cols {
			if cc < 0 || cc >= c.Cols {
				return nil, ErrIndexOutOfBounds
			}
			inCol[cc] = true
		}
	}

	out := NewCSR[T](c.Rows, c.Cols)
	type pair struct {
		col int
		pos int // position within A's row, to resolve duplicate targets (last wins)
		v   T
	}
	var region []pair
	for r := 0; r < c.Rows; r++ {
		cInd, cVal := c.Row(r)
		ar := invRow[r]
		if ar < 0 {
			out.Ind = append(out.Ind, cInd...)
			out.Val = append(out.Val, cVal...)
			out.Ptr[r+1] = len(out.Ind)
			continue
		}
		// Gather A row ar mapped into C column space, sorted by target col.
		aInd, aVal := a.Row(ar)
		region = region[:0]
		for k := range aInd {
			tgt := aInd[k]
			if cols != nil {
				tgt = cols[aInd[k]]
			}
			region = append(region, pair{tgt, k, aVal[k]})
		}
		sort.Slice(region, func(x, y int) bool {
			if region[x].col != region[y].col {
				return region[x].col < region[y].col
			}
			return region[x].pos < region[y].pos
		})
		// Deduplicate duplicate target columns, keeping the last source.
		w := 0
		for k := 0; k < len(region); k++ {
			if w > 0 && region[w-1].col == region[k].col {
				region[w-1] = region[k]
			} else {
				region[w] = region[k]
				w++
			}
		}
		region = region[:w]

		ci, ri := 0, 0
		for ci < len(cInd) || ri < len(region) {
			switch {
			case ri >= len(region) || (ci < len(cInd) && cInd[ci] < region[ri].col):
				j := cInd[ci]
				if inCol[j] && accum == nil {
					// inside region, no source entry, pure assignment: deleted
				} else {
					out.Ind = append(out.Ind, j)
					out.Val = append(out.Val, cVal[ci])
				}
				ci++
			case ci >= len(cInd) || region[ri].col < cInd[ci]:
				out.Ind = append(out.Ind, region[ri].col)
				out.Val = append(out.Val, region[ri].v)
				ri++
			default:
				v := region[ri].v
				if accum != nil {
					v = accum(cVal[ci], v)
				}
				out.Ind = append(out.Ind, region[ri].col)
				out.Val = append(out.Val, v)
				ci++
				ri++
			}
		}
		out.Ptr[r+1] = len(out.Ind)
	}
	return out, nil
}

// AssignScalarM computes the candidate Z for GrB_assign with a scalar
// source: every position in rows × cols receives val (combined with the
// existing C entry through accum when present). Positions of C outside the
// region pass through.
func AssignScalarM[T any](c *CSR[T], val T, rows, cols []int, accum func(T, T) T) (*CSR[T], error) {
	inRow, err := memberSet(rows, c.Rows)
	if err != nil {
		return nil, err
	}
	sortedCols, err := sortedUnique(cols, c.Cols)
	if err != nil {
		return nil, err
	}
	out := NewCSR[T](c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		cInd, cVal := c.Row(r)
		if !inRow[r] {
			out.Ind = append(out.Ind, cInd...)
			out.Val = append(out.Val, cVal...)
			out.Ptr[r+1] = len(out.Ind)
			continue
		}
		ci, ri := 0, 0
		for ci < len(cInd) || ri < len(sortedCols) {
			switch {
			case ri >= len(sortedCols) || (ci < len(cInd) && cInd[ci] < sortedCols[ri]):
				out.Ind = append(out.Ind, cInd[ci])
				out.Val = append(out.Val, cVal[ci])
				ci++
			case ci >= len(cInd) || sortedCols[ri] < cInd[ci]:
				out.Ind = append(out.Ind, sortedCols[ri])
				out.Val = append(out.Val, val)
				ri++
			default:
				v := val
				if accum != nil {
					v = accum(cVal[ci], val)
				}
				out.Ind = append(out.Ind, sortedCols[ri])
				out.Val = append(out.Val, v)
				ci++
				ri++
			}
		}
		out.Ptr[r+1] = len(out.Ind)
	}
	return out, nil
}

// AssignV computes the candidate Z for vector assign: Z = C with
// Z(idx[i]) receiving U(i); same deletion/accumulation rules as AssignM.
func AssignV[T any](c, u *Vec[T], idx []int, accum func(T, T) T) (*Vec[T], error) {
	n := c.N
	if idx != nil {
		n = len(idx)
	}
	if u.N != n {
		return nil, ErrIndexOutOfBounds
	}
	inv := make([]int, c.N)
	for i := range inv {
		inv[i] = -1
	}
	if idx == nil {
		for i := 0; i < c.N; i++ {
			inv[i] = i
		}
	} else {
		for i, p := range idx {
			if p < 0 || p >= c.N {
				return nil, ErrIndexOutOfBounds
			}
			inv[p] = i
		}
	}
	out := &Vec[T]{N: c.N}
	ci := 0
	for p := 0; p < c.N; p++ {
		hasC := ci < len(c.Ind) && c.Ind[ci] == p
		src := inv[p]
		if src < 0 {
			if hasC {
				out.Ind = append(out.Ind, p)
				out.Val = append(out.Val, c.Val[ci])
				ci++
			}
			continue
		}
		uv, hasU := u.Get(src)
		switch {
		case hasU && hasC:
			v := uv
			if accum != nil {
				v = accum(c.Val[ci], uv)
			}
			out.Ind = append(out.Ind, p)
			out.Val = append(out.Val, v)
		case hasU:
			out.Ind = append(out.Ind, p)
			out.Val = append(out.Val, uv)
		case hasC && accum != nil:
			out.Ind = append(out.Ind, p)
			out.Val = append(out.Val, c.Val[ci])
		}
		if hasC {
			ci++
		}
	}
	return out, nil
}

// AssignScalarV computes the candidate Z for vector assign with a scalar
// source: every position in idx receives val.
func AssignScalarV[T any](c *Vec[T], val T, idx []int, accum func(T, T) T) (*Vec[T], error) {
	member, err := memberSet(idx, c.N)
	if err != nil {
		return nil, err
	}
	out := &Vec[T]{N: c.N}
	ci := 0
	for p := 0; p < c.N; p++ {
		hasC := ci < len(c.Ind) && c.Ind[ci] == p
		if member[p] {
			v := val
			if accum != nil && hasC {
				v = accum(c.Val[ci], val)
			}
			out.Ind = append(out.Ind, p)
			out.Val = append(out.Val, v)
		} else if hasC {
			out.Ind = append(out.Ind, p)
			out.Val = append(out.Val, c.Val[ci])
		}
		if hasC {
			ci++
		}
	}
	return out, nil
}

// memberSet converts an index list (nil = all) into a membership bitmap of
// length n, validating bounds.
func memberSet(idx []int, n int) ([]bool, error) {
	m := make([]bool, n)
	if idx == nil {
		for i := range m {
			m[i] = true
		}
		return m, nil
	}
	for _, i := range idx {
		if i < 0 || i >= n {
			return nil, ErrIndexOutOfBounds
		}
		m[i] = true
	}
	return m, nil
}

// sortedUnique returns the sorted deduplicated copy of idx (nil = 0..n-1),
// validating bounds.
func sortedUnique(idx []int, n int) ([]int, error) {
	if idx == nil {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	s := make([]int, len(idx))
	copy(s, idx)
	sort.Ints(s)
	w := 0
	for k := range s {
		if s[k] < 0 || s[k] >= n {
			return nil, ErrIndexOutOfBounds
		}
		if w == 0 || s[w-1] != s[k] {
			s[w] = s[k]
			w++
		}
	}
	return s[:w], nil
}

package sparse

import "github.com/grblas/grb/internal/parallel"

// Mask bundles an optional boolean mask matrix with the descriptor flags
// that control its interpretation (GraphBLAS masks, §2 of the C spec;
// unchanged in 2.0 but exercised by every operation here).
type Mask struct {
	M          *CSR[bool]
	Structural bool // use presence only, ignore stored values
	Complement bool // invert the mask
}

// VMask is the vector analogue of Mask.
type VMask struct {
	M          *Vec[bool]
	Structural bool
	Complement bool
}

// vmaskLookup compiles a vector mask into an O(1)-per-position admit
// predicate for the matrix-vector kernels. A nil return means every position
// is admitted (no pruning needed). The representation follows the dense/hash
// accumulator policy: a dense mask is scattered once into an O(n) bitmap
// (O(1) exact lookups, one pass to build), while a hypersparse mask gets a
// read-only hash table of O(nnz(m)) slots so the O(n) scatter is never paid.
// Either way a masked kernel stops paying O(log nnz(m)) per position.
//
// The predicate implements the full GraphBLAS mask semantics (value vs.
// structural, complement), so kernels may prune work at any granularity —
// whole rows in the pull gather, single products in the push scatter — and
// the final MaskApplyV pass observes the same admitted set it would have
// filtered itself.
func vmaskLookup(mask VMask, n int) func(int) bool {
	if mask.M == nil {
		if mask.Complement {
			// Complemented nil mask: nothing is admitted (the mask defaults
			// to all-true, so its complement rules every position out).
			return func(int) bool { return false }
		}
		return nil
	}
	m := mask.M
	structural, comp := mask.Structural, mask.Complement
	if !chooseHash(KernelAuto, m.NNZ(), n) {
		admit := vmaskBitmap(mask, n)
		return func(j int) bool { return admit[j] }
	}
	h := newHashLookup(m)
	return func(j int) bool {
		v, present := h.get(j)
		adm := present && (structural || v)
		if comp {
			adm = !adm
		}
		return adm
	}
}

// vmaskBitmap scatters a non-nil vector mask into an O(n) admit bitmap
// implementing the full mask semantics (value vs. structural, complement).
// It is the dense half of vmaskLookup, exposed separately because the
// monomorphized scatter kernels index the bitmap directly instead of paying
// a closure call per product.
func vmaskBitmap(mask VMask, n int) []bool {
	m := mask.M
	structural, comp := mask.Structural, mask.Complement
	admit := make([]bool, n)
	scratchBytes.Add(int64(n))
	if comp {
		for i := range admit {
			admit[i] = true
		}
	}
	for k, j := range m.Ind {
		v := structural || m.Val[k]
		if comp {
			v = !v
		}
		admit[j] = v
	}
	return admit
}

// test reports whether the mask admits position j given a cursor into the
// mask row's index list; it advances *k past indices < j.
func maskTest(ind []int, val []bool, structural bool, j int, k *int) bool {
	for *k < len(ind) && ind[*k] < j {
		*k++
	}
	present := *k < len(ind) && ind[*k] == j
	if structural {
		return present
	}
	return present && val[*k]
}

// AccumMergeM computes Z = C ⊙ T: the union merge of the old output C with
// the freshly computed T, combining overlapping entries with accum. A nil
// accum means Z = T (the operation result replaces C entirely, before
// masking). This is the standard "accumulator step" of every GraphBLAS
// operation.
func AccumMergeM[T any](c, t *CSR[T], accum func(T, T) T, threads int) *CSR[T] {
	if accum == nil {
		return t
	}
	return mergeUnionM(c, t, func(cv, tv T) T { return accum(cv, tv) }, threads)
}

// AccumMergeV is the vector analogue of AccumMergeM.
func AccumMergeV[T any](c, t *Vec[T], accum func(T, T) T) *Vec[T] {
	if accum == nil {
		return t
	}
	out := &Vec[T]{N: c.N, Ind: make([]int, 0, len(c.Ind)+len(t.Ind)), Val: make([]T, 0, len(c.Val)+len(t.Val))}
	i, j := 0, 0
	for i < len(c.Ind) || j < len(t.Ind) {
		switch {
		case j >= len(t.Ind) || (i < len(c.Ind) && c.Ind[i] < t.Ind[j]):
			out.Ind = append(out.Ind, c.Ind[i])
			out.Val = append(out.Val, c.Val[i])
			i++
		case i >= len(c.Ind) || t.Ind[j] < c.Ind[i]:
			out.Ind = append(out.Ind, t.Ind[j])
			out.Val = append(out.Val, t.Val[j])
			j++
		default:
			out.Ind = append(out.Ind, c.Ind[i])
			out.Val = append(out.Val, accum(c.Val[i], t.Val[j]))
			i++
			j++
		}
	}
	return out
}

// MaskApplyM computes the final output of a matrix operation from the old
// output C, the accumulated candidate Z, and the mask: positions where the
// mask is true take Z's entry (or nothing, if Z has none); positions where
// it is false keep C's entry unless replace is set, in which case they are
// deleted. With a nil mask (and mask.Complement false) the result is simply
// Z. This single kernel implements the replace/merge × structure ×
// complement descriptor matrix semantics shared by all operations.
func MaskApplyM[T any](c, z *CSR[T], mask Mask, replace bool, threads int) *CSR[T] {
	if mask.M == nil && !mask.Complement {
		return z
	}
	if mask.M == nil && mask.Complement {
		// Complemented empty mask: everything masked out.
		if replace {
			return NewCSR[T](c.Rows, c.Cols)
		}
		return c
	}
	rows := c.Rows
	out := NewCSR[T](c.Rows, c.Cols)
	parts := parallel.Ranges(rows, threads)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]T, nparts)
	rowLen := make([]int, rows)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		var ind []int
		var val []T
		for i := lo; i < hi; i++ {
			cInd, cVal := c.Row(i)
			zInd, zVal := z.Row(i)
			mInd, mVal := mask.M.Row(i)
			mk := 0
			start := len(ind)
			ci, zi := 0, 0
			for ci < len(cInd) || zi < len(zInd) {
				var j int
				switch {
				case zi >= len(zInd) || (ci < len(cInd) && cInd[ci] < zInd[zi]):
					j = cInd[ci]
				case ci >= len(cInd) || zInd[zi] < cInd[ci]:
					j = zInd[zi]
				default:
					j = cInd[ci]
				}
				mt := maskTest(mInd, mVal, mask.Structural, j, &mk)
				if mask.Complement {
					mt = !mt
				}
				hasC := ci < len(cInd) && cInd[ci] == j
				hasZ := zi < len(zInd) && zInd[zi] == j
				if mt {
					if hasZ {
						ind = append(ind, j)
						val = append(val, zVal[zi])
					}
				} else if !replace && hasC {
					ind = append(ind, j)
					val = append(val, cVal[ci])
				}
				if hasC {
					ci++
				}
				if hasZ {
					zi++
				}
			}
			rowLen[i] = len(ind) - start
		}
		pInd[part] = ind
		pVal[part] = val
	})
	installStitched(out, parts, pInd, pVal, rowLen)
	return out
}

// MaskApplyV is the vector analogue of MaskApplyM.
func MaskApplyV[T any](c, z *Vec[T], mask VMask, replace bool) *Vec[T] {
	if mask.M == nil && !mask.Complement {
		return z
	}
	if mask.M == nil && mask.Complement {
		if replace {
			return NewVec[T](c.N)
		}
		return c
	}
	out := &Vec[T]{N: c.N}
	mk := 0
	ci, zi := 0, 0
	for ci < len(c.Ind) || zi < len(z.Ind) {
		var j int
		switch {
		case zi >= len(z.Ind) || (ci < len(c.Ind) && c.Ind[ci] < z.Ind[zi]):
			j = c.Ind[ci]
		case ci >= len(c.Ind) || z.Ind[zi] < c.Ind[ci]:
			j = z.Ind[zi]
		default:
			j = c.Ind[ci]
		}
		mt := maskTest(mask.M.Ind, mask.M.Val, mask.Structural, j, &mk)
		if mask.Complement {
			mt = !mt
		}
		hasC := ci < len(c.Ind) && c.Ind[ci] == j
		hasZ := zi < len(z.Ind) && z.Ind[zi] == j
		if mt {
			if hasZ {
				out.Ind = append(out.Ind, j)
				out.Val = append(out.Val, z.Val[zi])
			}
		} else if !replace && hasC {
			out.Ind = append(out.Ind, j)
			out.Val = append(out.Val, c.Val[ci])
		}
		if hasC {
			ci++
		}
		if hasZ {
			zi++
		}
	}
	return out
}

// installStitched assembles per-partition row buffers into out. parts are the range
// boundaries used to produce pInd/pVal; rowLen[i] is the emitted length of
// row i. Shared by all row-parallel kernels.
func installStitched[T any](out *CSR[T], parts []int, pInd [][]int, pVal [][]T, rowLen []int) {
	total := 0
	for _, s := range pInd {
		total += len(s)
	}
	out.Ind = make([]int, 0, total)
	out.Val = make([]T, 0, total)
	for p := 0; p < len(parts)-1; p++ {
		out.Ind = append(out.Ind, pInd[p]...)
		out.Val = append(out.Val, pVal[p]...)
	}
	for i := 0; i < out.Rows; i++ {
		out.Ptr[i+1] = out.Ptr[i] + rowLen[i]
	}
	DebugCheckCSR(out, "installStitched")
}

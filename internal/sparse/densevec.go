package sparse

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Block formats (bitmap and full/dense) for vectors and matrices. A block
// view stores one value slot per position, so dense frontiers and PageRank
// iterations index it directly instead of binary-searching or hashing the
// sorted-coordinate form. Views are memoized on the sparse object
// (Vec.dv/CSR.dm) under the immutable-on-write contract, and converted back
// with Sparse/CSR for the round-trip property tests.

// FormatHint pins the block-format tier of the kernel router, mirroring how
// the Kernel hint pins the accumulator and Direction pins push/pull. The
// default lets DenseView pick full storage when every position is present
// and bitmap otherwise; the pinned variants exist for benchmarking
// (cmd/grbbench -format) and for the differential battery's format axis.
type FormatHint int

const (
	// FormatHintAuto picks full storage for nnz == n operands, bitmap
	// otherwise.
	FormatHintAuto FormatHint = iota
	// FormatHintBitmap forces bitmap storage even for full operands.
	FormatHintBitmap
	// FormatHintSparse disables block-format materialization entirely:
	// the monomorphized kernels fall back to the closure kernels, which
	// run on the sparse form.
	FormatHintSparse
)

var formatHint atomic.Int64

// CurrentFormatHint returns the block-format routing hint.
func CurrentFormatHint() FormatHint { return FormatHint(formatHint.Load()) }

// SetFormatHint pins the block-format routing hint and returns the previous
// value. Out-of-range values are normalized to FormatHintAuto. It affects
// only future materializations; already-cached views are served as built.
func SetFormatHint(h FormatHint) FormatHint {
	if h < FormatHintAuto || h > FormatHintSparse {
		h = FormatHintAuto
	}
	return FormatHint(formatHint.Swap(int64(h)))
}

// DenseVec is the block view of a vector: Val has one slot per position.
// Bit == nil marks the full variant (every position stored, Nnz == N);
// otherwise Bit[i] reports whether position i holds an entry and absent
// slots of Val are zero-valued padding with no semiring meaning.
type DenseVec[T any] struct {
	N   int
	Val []T
	Bit []bool
	Nnz int
}

// Full reports whether the view stores every position (no bitmap).
func (d *DenseVec[T]) Full() bool { return d.Bit == nil }

// denseViewMu serializes block-view materialization (vector and matrix).
// Concurrent readers that lose the build race share the winner's view; the
// double-checked load keeps the common cached-hit path lock-free.
var denseViewMu sync.Mutex

// DenseView returns the memoized block view, materializing it on first use.
// Convenience wrapper for tests and unbudgeted callers; kernels use
// DenseViewEx so the materialization charges the operation's budget.
func (v *Vec[T]) DenseView() *DenseVec[T] {
	d, err := v.DenseViewEx(Exec{})
	if err != nil {
		panic(err)
	}
	return d
}

// DenseViewEx returns the memoized block view of v, materializing it on
// first use. The value (and bitmap) arrays are charged persistently against
// the budget — like the transpose cache, the view outlives the operation
// that built it. Returns ErrBudget when the charge does not fit, letting
// the caller fall back to the sparse-form closure kernel.
func (v *Vec[T]) DenseViewEx(e Exec) (*DenseVec[T], error) {
	if d := v.dv.Load(); d != nil {
		return d, nil
	}
	denseViewMu.Lock()
	defer denseViewMu.Unlock()
	if d := v.dv.Load(); d != nil {
		return d, nil
	}
	if err := siteFormatConvert.Check(); err != nil {
		return nil, err
	}
	var zero T
	full := v.NNZ() == v.N && CurrentFormatHint() != FormatHintBitmap
	bytes := int64(v.N) * int64(unsafe.Sizeof(zero))
	if !full {
		bytes += int64(v.N)
	}
	if !e.Tx.ReservePersistent(bytes) {
		return nil, ErrBudget
	}
	d := &DenseVec[T]{N: v.N, Val: make([]T, v.N), Nnz: v.NNZ()}
	if !full {
		d.Bit = make([]bool, v.N)
	}
	for k, i := range v.Ind {
		d.Val[i] = v.Val[k]
		if d.Bit != nil {
			d.Bit[i] = true
		}
	}
	formatConversions.Add(1)
	scratchBytes.Add(bytes)
	DebugCheckDenseVec(d, "Vec.DenseView")
	v.dv.Store(d)
	return d, nil
}

// Sparse converts the block view back to sorted-coordinate form.
func (d *DenseVec[T]) Sparse() *Vec[T] {
	out := &Vec[T]{N: d.N}
	if d.Bit == nil {
		out.Ind = make([]int, d.N)
		out.Val = make([]T, d.N)
		for i := range out.Ind {
			out.Ind[i] = i
		}
		copy(out.Val, d.Val)
	} else {
		out.Ind = make([]int, 0, d.Nnz)
		out.Val = make([]T, 0, d.Nnz)
		for i, ok := range d.Bit {
			if ok {
				out.Ind = append(out.Ind, i)
				out.Val = append(out.Val, d.Val[i])
			}
		}
	}
	DebugCheckVec(out, "DenseVec.Sparse")
	return out
}

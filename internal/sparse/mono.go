package sparse

import (
	"errors"
	"sort"
	"unsafe"

	"github.com/grblas/grb/internal/parallel"
)

// Monomorphized hot-semiring kernels. The generic kernels (SpGEMMKernelEx,
// SpMVKernelEx, VxMEx) evaluate the semiring through two closure calls per
// product — exactly the per-scalar function-call overhead §II of the paper
// motivates eliminating. For the handful of semirings that dominate graph
// workloads the grb layer tags the operation with a Semi constant, and the
// SemiEx entry points here route it to a hand-monomorphized loop whose
// multiply-add compiles to direct arithmetic. Everything else — unknown
// semirings, non-hot value types, hash-pinned accumulators, sparse-pinned
// formats — falls back to the closure kernel, so the specialization is
// invisible except in the route labels and the clock.
//
// Equivalence discipline: every monomorphized loop replicates its closure
// kernel's product visit order, first-assign-then-add accumulation, mask
// admission points, partition fold order and output sorting, so the
// differential battery (mono_differential_test.go) can compare the two with
// == even on float64. The shared pieces (reduceSpas, installStitched,
// vmaskLookup/vmaskBitmap, chooseHash) are literally the same code.

// Semi tags the hot semirings the monomorphized kernel table covers. The
// grb-layer constructors (PlusTimes, MinPlus, LOrLAnd, PlusPair) set the
// tag; hand-assembled Semiring values stay SemiGeneric and always take the
// closure kernels. All four families have commutative multiplies, so the
// push/pull orientation flip (mulFlip in MxV/VxM) is transparent to them.
type Semi int

const (
	// SemiGeneric is an untagged semiring: closure kernels only.
	SemiGeneric Semi = iota
	// SemiPlusTimes is (+, ×) over int64/float64.
	SemiPlusTimes
	// SemiMinPlus is (min, +) over int64/float64.
	SemiMinPlus
	// SemiLorLand is (∨, ∧) over bool.
	SemiLorLand
	// SemiPlusPair is (+, pair) over int64/float64 — structure-only
	// counting (triangle counting, degree computations).
	SemiPlusPair
)

// String names the tag for route labels and test output.
func (s Semi) String() string {
	switch s {
	case SemiPlusTimes:
		return "plus_times"
	case SemiMinPlus:
		return "min_plus"
	case SemiLorLand:
		return "lor_land"
	case SemiPlusPair:
		return "plus_pair"
	default:
		return "generic"
	}
}

// Spec is the descriptor-level pin for the monomorphized route, mirroring
// Kernel (accumulator pin) and the push/pull Direction pin.
type Spec int

const (
	// SpecAuto takes the monomorphized kernel whenever the semiring tag,
	// value types and format routing admit it.
	SpecAuto Spec = iota
	// SpecMono forces the monomorphized kernel even where the router would
	// prefer the closure path (e.g. hypersparse operands that would
	// otherwise hash-gather). Falls back only when the semiring or value
	// types cannot be specialized at all.
	SpecMono
	// SpecGeneric forces the closure kernels — the differential battery's
	// reference arm.
	SpecGeneric
)

// monoArith constrains the arithmetic hot types. int64 and float64 have
// distinct gcshapes, so loops instantiated over this constraint compile to
// direct integer/float instructions rather than dictionary-indirect calls.
type monoArith interface {
	~int64 | ~float64
}

// monoEnabled is the common routing gate: a tagged semiring, no generic
// pin, and block formats not disabled.
func monoEnabled(semi Semi, spec Spec) bool {
	return semi != SemiGeneric && spec != SpecGeneric && CurrentFormatHint() != FormatHintSparse
}

// castVec converts *Vec[T] to *Vec[Y]; the dispatch has already proven
// T == Y, so the assertion cannot fail on non-nil input.
func castVec[T, Y any](v *Vec[T]) *Vec[Y] {
	if v == nil {
		return nil
	}
	out, _ := any(v).(*Vec[Y])
	return out
}

// castCSR is castVec for matrices.
func castCSR[T, Y any](m *CSR[T]) *CSR[Y] {
	if m == nil {
		return nil
	}
	out, _ := any(m).(*CSR[Y])
	return out
}

// sameVecType reports whether Vec[T] and Vec[Y] are the same instantiation,
// i.e. T == Y exactly (named types with a hot underlying type do not match
// — they stay on the closure kernels).
func sameVecType[T, Y any]() bool {
	_, ok := any((*Vec[T])(nil)).(*Vec[Y])
	return ok
}

// SpMVSemiEx is the semiring-routed pull product: it runs the monomorphized
// gather loop when the Semi tag, the operand types and the format router
// admit it, and falls back to SpMVKernelEx (the closure kernel) otherwise.
// mul/add are always supplied so the fallback needs no second dispatch.
func SpMVSemiEx[A, X, Y any](semi Semi, spec Spec, a *CSR[A], u *Vec[X],
	mul func(A, X) Y, add func(Y, Y) Y, mask VMask, e Exec, hint Kernel) (*Vec[Y], error) {
	if out, handled, err := blockedSpMVDispatch(a, u, mul, add, mask, e); handled {
		return out, err
	}
	if monoEnabled(semi, spec) {
		if out, handled, err := monoSpMVDispatch[A, X, Y](semi, spec, a, u, mask, e, hint); handled {
			return out, err
		}
	}
	closureFallbacks.Add(1)
	return SpMVKernelEx(a, u, mul, add, mask, e, hint)
}

// monoSpMVDispatch narrows the type parameters onto a concrete hot type and
// runs the matching family loop. handled == false means "not specializable
// here" (wrong types, hash-routed, budget refusal) and the caller falls
// back to the closure kernel.
func monoSpMVDispatch[A, X, Y any](semi Semi, spec Spec, a *CSR[A], u *Vec[X],
	mask VMask, e Exec, hint Kernel) (*Vec[Y], bool, error) {
	switch semi {
	case SemiPlusTimes:
		if a2, u2, ok := monoVecOperands[A, X, Y, int64](a, u); ok {
			out, handled, err := spmvMono(a2, u2, mask, e, hint, spec, spmvRowsPlusTimes[int64], gemvRowsPlusTimes[int64])
			return castVec[int64, Y](out), handled, err
		}
		if a2, u2, ok := monoVecOperands[A, X, Y, float64](a, u); ok {
			out, handled, err := spmvMono(a2, u2, mask, e, hint, spec, spmvRowsPlusTimes[float64], gemvRowsPlusTimes[float64])
			return castVec[float64, Y](out), handled, err
		}
	case SemiMinPlus:
		if a2, u2, ok := monoVecOperands[A, X, Y, int64](a, u); ok {
			out, handled, err := spmvMono(a2, u2, mask, e, hint, spec, spmvRowsMinPlus[int64], gemvRowsMinPlus[int64])
			return castVec[int64, Y](out), handled, err
		}
		if a2, u2, ok := monoVecOperands[A, X, Y, float64](a, u); ok {
			out, handled, err := spmvMono(a2, u2, mask, e, hint, spec, spmvRowsMinPlus[float64], gemvRowsMinPlus[float64])
			return castVec[float64, Y](out), handled, err
		}
	case SemiLorLand:
		if a2, u2, ok := monoVecOperands[A, X, Y, bool](a, u); ok {
			out, handled, err := spmvMono(a2, u2, mask, e, hint, spec, spmvRowsLorLand, nil)
			return castVec[bool, Y](out), handled, err
		}
	case SemiPlusPair:
		if a2, u2, ok := monoVecOperands[A, X, Y, int64](a, u); ok {
			out, handled, err := spmvMono(a2, u2, mask, e, hint, spec, spmvRowsPlusPair[int64], nil)
			return castVec[int64, Y](out), handled, err
		}
		if a2, u2, ok := monoVecOperands[A, X, Y, float64](a, u); ok {
			out, handled, err := spmvMono(a2, u2, mask, e, hint, spec, spmvRowsPlusPair[float64], nil)
			return castVec[float64, Y](out), handled, err
		}
	case SemiGeneric:
	}
	return nil, false, nil
}

// monoVecOperands narrows a matrix-vector operand pair onto hot type T,
// requiring all three domains (A, X, Y) to be exactly T.
func monoVecOperands[A, X, Y, T any](a *CSR[A], u *Vec[X]) (*CSR[T], *Vec[T], bool) {
	a2, ok := any(a).(*CSR[T])
	if !ok {
		return nil, nil, false
	}
	u2, ok := any(u).(*Vec[T])
	if !ok {
		return nil, nil, false
	}
	if !sameVecType[T, Y]() {
		return nil, nil, false
	}
	return a2, u2, true
}

// spmvRowLoop is one family's monomorphized gather loop over CSR rows
// [lo, hi) against the block view (dval, dbit) of u; dbit == nil means the
// full view. It returns the emitted (row, value) pairs in ascending row
// order, replicating the closure kernel's per-row accumulation exactly.
type spmvRowLoop[T any] func(a *CSR[T], dval []T, dbit []bool, admit func(int) bool, lo, hi int) ([]int, []T)

// gemvRowLoop is the family's fully-dense fast path: both the matrix block
// (row-major mval) and the vector block are full, so the row loop is a
// textbook GEMV row sweep with no index indirection at all.
type gemvRowLoop[T any] func(mval []T, cols int, dval []T, admit func(int) bool, lo, hi int) ([]int, []T)

// spmvMono is the shared scaffold of the monomorphized pull product: it
// routes (falling back on hash-preferring shapes unless pinned), acquires
// the cached block view of u, partitions rows, and assembles the output —
// everything except the per-row arithmetic, which the family loop supplies.
func spmvMono[T any](a *CSR[T], u *Vec[T], mask VMask, e Exec, hint Kernel, spec Spec,
	rows spmvRowLoop[T], gemv gemvRowLoop[T]) (out *Vec[T], handled bool, err error) {
	if hint == KernelHash {
		// A pinned hash gather is a closure-kernel request; the block view
		// would defeat the pin's point (frontier-sized scratch).
		return nil, false, nil
	}
	if spec != SpecMono && chooseHash(hint, u.NNZ(), u.N) {
		// Hypersparse frontier: the closure kernel's hash gather beats
		// densifying u into an O(N) block.
		return nil, false, nil
	}
	defer func() {
		// A panic anywhere past this point — including inside DenseViewEx,
		// before handled is assigned — means the kernel engaged: park the
		// recovered error instead of letting the dispatcher retry the
		// closure kernel over a half-consumed fault.
		if r := recover(); r != nil {
			err = panicToError(r)
			handled = true
		}
	}()
	dv, derr := u.DenseViewEx(e)
	if derr != nil {
		if errors.Is(derr, ErrBudget) {
			// The block view does not fit the budget; the closure kernel
			// can still run with a frontier-sized hash gather.
			budgetDegrades.Add(1)
			return nil, false, nil
		}
		return nil, true, derr
	}
	handled = true
	monoKernels.Add(1)
	pullCalls.Add(1)
	denseRanges.Add(1)
	threads := e.threads()
	admit := vmaskLookup(mask, a.Rows)
	if gemv != nil && dv.Bit == nil && a.Cols > 0 {
		if size, ok := CheckedMul(a.Rows, a.Cols); ok && a.NNZ() == size {
			// Fully dense product: gather through the matrix's block view
			// too. Full CSR rows store columns 0..Cols-1 in order, so the
			// GEMV sweep visits products in exactly the closure kernel's
			// order.
			dm, merr := a.DenseViewEx(e)
			if merr != nil && !errors.Is(merr, ErrBudget) {
				return nil, true, merr
			}
			if merr == nil && dm.Bit == nil {
				return spmvMonoDense(a.Rows, a.Cols, dm.Val, dv.Val, admit, e, threads, gemv), true, nil
			}
			// Budget refusal or a bitmap-pinned matrix view: keep the CSR
			// row loop below, which needs no matrix-side scratch.
			if merr != nil {
				budgetDegrades.Add(1)
			}
		}
	}
	parts := parallel.BalancedRanges(a.Rows, threads, a.Ptr)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]T, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		if ferr := siteMonoLoop.Check(); ferr != nil {
			abort(ferr)
		}
		e.checkpoint()
		pInd[part], pVal[part] = rows(a, dv.Val, dv.Bit, admit, lo, hi)
	})
	return stitchVec(a.Rows, parts, pInd, pVal), true, nil
}

// spmvMonoDense runs the GEMV fast path over row ranges.
func spmvMonoDense[T any](rows, cols int, mval, dval []T, admit func(int) bool,
	e Exec, threads int, gemv gemvRowLoop[T]) *Vec[T] {
	parts := parallel.Ranges(rows, threads)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]T, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		if ferr := siteMonoLoop.Check(); ferr != nil {
			abort(ferr)
		}
		e.checkpoint()
		pInd[part], pVal[part] = gemv(mval, cols, dval, admit, lo, hi)
	})
	return stitchVec(rows, parts, pInd, pVal)
}

// stitchVec concatenates per-partition (ind, val) runs — already in
// ascending row order — into one vector, the same assembly SpMVKernelEx
// performs inline.
func stitchVec[T any](n int, parts []int, pInd [][]int, pVal [][]T) *Vec[T] {
	out := &Vec[T]{N: n}
	total := 0
	for _, s := range pInd {
		total += len(s)
	}
	out.Ind = make([]int, 0, total)
	out.Val = make([]T, 0, total)
	for p := range pInd {
		out.Ind = append(out.Ind, pInd[p]...)
		out.Val = append(out.Val, pVal[p]...)
	}
	return out
}

// VxMSemiEx is the semiring-routed push product: monomorphized scatter when
// the tag, types and mask shape admit it, VxMEx (closures) otherwise.
func VxMSemiEx[X, A, Y any](semi Semi, spec Spec, u *Vec[X], a *CSR[A],
	mul func(X, A) Y, add func(Y, Y) Y, mask VMask, e Exec) (*Vec[Y], error) {
	if out, handled, err := blockedVxMDispatch(u, a, mul, add, mask, e); handled {
		return out, err
	}
	if monoEnabled(semi, spec) {
		if out, handled, err := monoVxMDispatch[X, A, Y](semi, spec, u, a, add, mask, e); handled {
			return out, err
		}
	}
	closureFallbacks.Add(1)
	return VxMEx(u, a, mul, add, mask, e)
}

// monoVxMDispatch narrows the push product onto a hot type. The add closure
// rides along (asserted to its concrete type) because the partition
// reduction is shared with the generic kernel — it folds once per output
// column, amortized, so closures cost nothing there and guarantee the
// identical fold.
func monoVxMDispatch[X, A, Y any](semi Semi, spec Spec, u *Vec[X], a *CSR[A],
	add func(Y, Y) Y, mask VMask, e Exec) (*Vec[Y], bool, error) {
	switch semi {
	case SemiPlusTimes:
		if u2, a2, ok := monoVxMOperands[X, A, Y, int64](u, a); ok {
			add2, _ := any(add).(func(int64, int64) int64)
			out, handled, err := vxmMono(u2, a2, add2, mask, e, spec, vxmScatterPlusTimes[int64])
			return castVec[int64, Y](out), handled, err
		}
		if u2, a2, ok := monoVxMOperands[X, A, Y, float64](u, a); ok {
			add2, _ := any(add).(func(float64, float64) float64)
			out, handled, err := vxmMono(u2, a2, add2, mask, e, spec, vxmScatterPlusTimes[float64])
			return castVec[float64, Y](out), handled, err
		}
	case SemiMinPlus:
		if u2, a2, ok := monoVxMOperands[X, A, Y, int64](u, a); ok {
			add2, _ := any(add).(func(int64, int64) int64)
			out, handled, err := vxmMono(u2, a2, add2, mask, e, spec, vxmScatterMinPlus[int64])
			return castVec[int64, Y](out), handled, err
		}
		if u2, a2, ok := monoVxMOperands[X, A, Y, float64](u, a); ok {
			add2, _ := any(add).(func(float64, float64) float64)
			out, handled, err := vxmMono(u2, a2, add2, mask, e, spec, vxmScatterMinPlus[float64])
			return castVec[float64, Y](out), handled, err
		}
	case SemiLorLand:
		if u2, a2, ok := monoVxMOperands[X, A, Y, bool](u, a); ok {
			add2, _ := any(add).(func(bool, bool) bool)
			out, handled, err := vxmMono(u2, a2, add2, mask, e, spec, vxmScatterLorLand)
			return castVec[bool, Y](out), handled, err
		}
	case SemiPlusPair:
		if u2, a2, ok := monoVxMOperands[X, A, Y, int64](u, a); ok {
			add2, _ := any(add).(func(int64, int64) int64)
			out, handled, err := vxmMono(u2, a2, add2, mask, e, spec, vxmScatterPlusPair[int64])
			return castVec[int64, Y](out), handled, err
		}
		if u2, a2, ok := monoVxMOperands[X, A, Y, float64](u, a); ok {
			add2, _ := any(add).(func(float64, float64) float64)
			out, handled, err := vxmMono(u2, a2, add2, mask, e, spec, vxmScatterPlusPair[float64])
			return castVec[float64, Y](out), handled, err
		}
	case SemiGeneric:
	}
	return nil, false, nil
}

// monoVxMOperands narrows a vector-matrix operand pair onto hot type T.
func monoVxMOperands[X, A, Y, T any](u *Vec[X], a *CSR[A]) (*Vec[T], *CSR[T], bool) {
	u2, ok := any(u).(*Vec[T])
	if !ok {
		return nil, nil, false
	}
	a2, ok := any(a).(*CSR[T])
	if !ok {
		return nil, nil, false
	}
	if !sameVecType[T, Y]() {
		return nil, nil, false
	}
	return u2, a2, true
}

// vxmScatterLoop is one family's monomorphized scatter over the frontier
// entries [lo, hi) of u: products land in the worker's private SPA with
// first-assign-then-add semantics (mark tracks presence), admitted by the
// compiled mask bitmap (nil admits everything). Returns the SPA's insertion
// pattern, exactly as the closure kernel builds it.
type vxmScatterLoop[T any] func(u *Vec[T], a *CSR[T], admit []bool, spa []T, mark []bool, lo, hi int) []int

// vxmMono is the shared scaffold of the monomorphized push product,
// mirroring VxMEx: frontier partitioning, per-worker SPA charging, the
// family scatter, then the shared reduceSpas fold.
func vxmMono[T any](u *Vec[T], a *CSR[T], add func(T, T) T, mask VMask, e Exec, spec Spec,
	scatter vxmScatterLoop[T]) (out *Vec[T], handled bool, err error) {
	if mask.M != nil && spec != SpecMono && chooseHash(KernelAuto, mask.M.NNZ(), a.Cols) {
		// A hypersparse mask over a wide output is the hash-predicate
		// regime: compiling it to an O(Cols) bitmap would cost more than
		// the closure kernel's hash lookups save.
		return nil, false, nil
	}
	defer recoverExec(&err)
	handled = true
	monoKernels.Add(1)
	pushCalls.Add(1)
	if mask.M == nil && mask.Complement {
		// Complemented nil mask admits nothing (as in VxMEx).
		return NewVec[T](a.Cols), true, nil
	}
	threads := e.threads()
	nu := u.NNZ()
	if threads > nu {
		threads = nu
	}
	if threads < 1 {
		threads = 1
	}
	var zero T
	spaBytes := int64(a.Cols) * int64(unsafe.Sizeof(zero)+1)
	threads = degradeThreads(e, threads, spaBytes)
	parts := parallel.Ranges(nu, threads)
	nparts := len(parts) - 1
	if nparts == 0 {
		return NewVec[T](a.Cols), true, nil
	}
	var admit []bool
	if mask.M != nil {
		admit = vmaskBitmap(mask, a.Cols)
	}
	spas := make([][]T, nparts)
	marks := make([][]bool, nparts)
	patterns := make([][]int, nparts)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		if ferr := siteMonoLoop.Check(); ferr != nil {
			abort(ferr)
		}
		e.checkpoint()
		e.mustCharge(siteMonoSpa, spaBytes)
		spa := make([]T, a.Cols)
		mark := make([]bool, a.Cols)
		scratchBytes.Add(spaBytes)
		patterns[part] = scatter(u, a, admit, spa, mark, lo, hi)
		spas[part] = spa
		marks[part] = mark
	})
	return reduceSpas(a.Cols, threads, spas, marks, patterns, add), true, nil
}

// SpGEMMSemiEx is the semiring-routed matrix product: monomorphized
// dense-SPA row loops when the tag and types admit it, SpGEMMKernelEx
// otherwise. Hash-routed row ranges inside a monomorphized call still
// evaluate the closures (mul/add always ride along): the hash probe
// dominates those ranges, not the multiply-add, so specializing them would
// complicate the table for no measurable win.
func SpGEMMSemiEx[A, B, C any](semi Semi, spec Spec, a *CSR[A], b *CSR[B],
	mul func(A, B) C, add func(C, C) C, mask Mask, e Exec, hint Kernel) (*CSR[C], error) {
	if out, handled, err := blockedSpGEMMDispatch(semi, spec, a, b, mul, add, mask, e, hint); handled {
		return out, err
	}
	if monoEnabled(semi, spec) && hint != KernelHash {
		if out, handled, err := monoSpGEMMDispatch[A, B, C](semi, a, b, mul, add, mask, e, hint); handled {
			return out, err
		}
	}
	closureFallbacks.Add(1)
	return SpGEMMKernelEx(a, b, mul, add, mask, e, hint)
}

// monoSpGEMMDispatch narrows the matrix product onto a hot type.
func monoSpGEMMDispatch[A, B, C any](semi Semi, a *CSR[A], b *CSR[B],
	mul func(A, B) C, add func(C, C) C, mask Mask, e Exec, hint Kernel) (*CSR[C], bool, error) {
	switch semi {
	case SemiPlusTimes:
		if a2, b2, mul2, add2, ok := monoMatOperands[A, B, C, int64](a, b, mul, add); ok {
			out, err := spgemmMono(a2, b2, mul2, add2, mask, e, hint, spgemmRowPlusTimes[int64])
			return castCSR[int64, C](out), true, err
		}
		if a2, b2, mul2, add2, ok := monoMatOperands[A, B, C, float64](a, b, mul, add); ok {
			out, err := spgemmMono(a2, b2, mul2, add2, mask, e, hint, spgemmRowPlusTimes[float64])
			return castCSR[float64, C](out), true, err
		}
	case SemiMinPlus:
		if a2, b2, mul2, add2, ok := monoMatOperands[A, B, C, int64](a, b, mul, add); ok {
			out, err := spgemmMono(a2, b2, mul2, add2, mask, e, hint, spgemmRowMinPlus[int64])
			return castCSR[int64, C](out), true, err
		}
		if a2, b2, mul2, add2, ok := monoMatOperands[A, B, C, float64](a, b, mul, add); ok {
			out, err := spgemmMono(a2, b2, mul2, add2, mask, e, hint, spgemmRowMinPlus[float64])
			return castCSR[float64, C](out), true, err
		}
	case SemiLorLand:
		if a2, b2, mul2, add2, ok := monoMatOperands[A, B, C, bool](a, b, mul, add); ok {
			out, err := spgemmMono(a2, b2, mul2, add2, mask, e, hint, spgemmRowLorLand)
			return castCSR[bool, C](out), true, err
		}
	case SemiPlusPair:
		if a2, b2, mul2, add2, ok := monoMatOperands[A, B, C, int64](a, b, mul, add); ok {
			out, err := spgemmMono(a2, b2, mul2, add2, mask, e, hint, spgemmRowPlusPair[int64])
			return castCSR[int64, C](out), true, err
		}
		if a2, b2, mul2, add2, ok := monoMatOperands[A, B, C, float64](a, b, mul, add); ok {
			out, err := spgemmMono(a2, b2, mul2, add2, mask, e, hint, spgemmRowPlusPair[float64])
			return castCSR[float64, C](out), true, err
		}
	case SemiGeneric:
	}
	return nil, false, nil
}

// monoMatOperands narrows a matrix pair and its closures onto hot type T.
func monoMatOperands[A, B, C, T any](a *CSR[A], b *CSR[B],
	mul func(A, B) C, add func(C, C) C) (*CSR[T], *CSR[T], func(T, T) T, func(T, T) T, bool) {
	a2, ok := any(a).(*CSR[T])
	if !ok {
		return nil, nil, nil, nil, false
	}
	b2, ok := any(b).(*CSR[T])
	if !ok {
		return nil, nil, nil, nil, false
	}
	mul2, ok := any(mul).(func(T, T) T)
	if !ok {
		return nil, nil, nil, nil, false
	}
	add2, ok := any(add).(func(T, T) T)
	if !ok {
		return nil, nil, nil, nil, false
	}
	return a2, b2, mul2, add2, true
}

// spgemmRowLoop is one family's monomorphized dense-SPA product loop for
// row i: scatter row i of A through B into (spa, stamp) with generation gen,
// appending new columns to pattern — the closure kernel's dense branch with
// the two closure calls flattened into arithmetic.
type spgemmRowLoop[T any] func(a, b *CSR[T], spa []T, stamp []int, gen int, pattern []int, i int) []int

// spgemmMono is the monomorphized matrix product: SpGEMMKernelEx's exact
// scaffolding (symbolic pass, balanced ranges, per-range dense/hash routing,
// masked emission, stitched install) with the dense branch's product loop
// supplied by the family. Hash-routed ranges keep the closure loop.
func spgemmMono[T any](a, b *CSR[T], mul, add func(T, T) T, mask Mask, e Exec, hint Kernel,
	rowLoop spgemmRowLoop[T]) (out *CSR[T], err error) {
	defer recoverExec(&err)
	monoKernels.Add(1)
	threads := e.threads()
	fptr := SpGEMMFlops(a, b, threads)
	slot := slotBytes[T]()
	denseBytes := int64(b.Cols) * slot
	if e.Tx != nil && threads > 1 {
		maxRow := 0
		for i := 0; i < a.Rows; i++ {
			if f := fptr[i+1] - fptr[i]; f > maxRow {
				maxRow = f
			}
		}
		per := denseBytes
		if hb := int64(hashCapacity(maxRow)) * slot; hb < per {
			per = hb
		}
		threads = degradeThreads(e, threads, per)
	}
	out = NewCSR[T](a.Rows, b.Cols)
	parts := parallel.BalancedRanges(a.Rows, threads, fptr)
	nparts := len(parts) - 1
	notePartSpan(parts, fptr, threads)
	pInd := make([][]int, nparts)
	pVal := make([][]T, nparts)
	// The stitch row-length table scales with the output rows, so it is
	// metered like worker scratch.
	if cerr := e.charge(siteMonoLoop, int64(a.Rows)*8); cerr != nil {
		return nil, cerr
	}
	rowLen := make([]int, a.Rows)
	masked := mask.M != nil || mask.Complement
	parallel.Run(parts, threads, func(part, lo, hi int) {
		if ferr := siteMonoLoop.Check(); ferr != nil {
			abort(ferr)
		}
		e.checkpoint()
		rangeFlops := fptr[hi] - fptr[lo]
		maxFlops := 0
		for i := lo; i < hi; i++ {
			if f := fptr[i+1] - fptr[i]; f > maxFlops {
				maxFlops = f
			}
		}
		var ind []int
		var val []T
		pattern := make([]int, 0, 256)
		var mInd []int
		var mVal []bool
		mk := 0
		admit := func(j int) bool {
			mt := maskTest(mInd, mVal, mask.Structural, j, &mk)
			if mask.Complement {
				mt = !mt
			}
			return mt
		}
		useHash := chooseHash(hint, rangeFlops, b.Cols)
		hashBytes := int64(hashCapacity(maxFlops)) * slot
		if !useHash && e.Tx != nil && !e.Tx.Fits(denseBytes) && hashBytes < denseBytes {
			useHash = true
			budgetDegrades.Add(1)
		}
		if useHash {
			// Closure loop, verbatim from SpGEMMKernelEx: hash ranges are
			// probe-bound, not multiply-bound.
			hashRanges.Add(1)
			e.mustCharge(siteSpGEMMHash, hashBytes)
			var h hashAccum[T]
			h.ensure(maxFlops)
			for i := lo; i < hi; i++ {
				pattern = pattern[:0]
				aInd, aVal := a.Row(i)
				for k := range aInd {
					bInd, bVal := b.Row(aInd[k])
					av := aVal[k]
					for t := range bInd {
						j := bInd[t]
						p := mul(av, bVal[t])
						s := h.slot(j)
						if h.keys[s] == -1 {
							h.keys[s] = j
							h.vals[s] = p
							h.slots = append(h.slots, s)
							pattern = append(pattern, j)
						} else {
							h.vals[s] = add(h.vals[s], p)
						}
					}
				}
				sort.Ints(pattern)
				start := len(ind)
				if masked {
					if mask.M != nil {
						mInd, mVal = mask.M.Row(i)
					}
					mk = 0
					for _, j := range pattern {
						if admit(j) {
							ind = append(ind, j)
							val = append(val, h.vals[h.slot(j)])
						}
					}
				} else {
					for _, j := range pattern {
						ind = append(ind, j)
						val = append(val, h.vals[h.slot(j)])
					}
				}
				rowLen[i] = len(ind) - start
				h.reset()
			}
		} else {
			denseRanges.Add(1)
			e.mustCharge(siteMonoSpa, denseBytes)
			spa := make([]T, b.Cols)
			stamp := make([]int, b.Cols)
			scratchBytes.Add(denseBytes)
			for i := lo; i < hi; i++ {
				pattern = rowLoop(a, b, spa, stamp, i+1, pattern[:0], i)
				sort.Ints(pattern)
				start := len(ind)
				if masked {
					if mask.M != nil {
						mInd, mVal = mask.M.Row(i)
					}
					mk = 0
					for _, j := range pattern {
						if admit(j) {
							ind = append(ind, j)
							val = append(val, spa[j])
						}
					}
				} else {
					for _, j := range pattern {
						ind = append(ind, j)
						val = append(val, spa[j])
					}
				}
				rowLen[i] = len(ind) - start
			}
		}
		pInd[part] = ind
		pVal[part] = val
	})
	installStitched(out, parts, pInd, pVal, rowLen)
	return out, nil
}

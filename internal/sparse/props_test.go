package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMergeTuplesAgainstMapReference: pending-update folding agrees with a
// straightforward map-based model for random update streams.
func TestMergeTuplesAgainstMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		base := randCSR(rng, rows, cols, 0.4)
		model := map[[2]int]int{}
		for i := 0; i < rows; i++ {
			ind, val := base.Row(i)
			for k := range ind {
				model[[2]int{i, ind[k]}] = val[k]
			}
		}
		var updates []Tuple[int]
		for k := 0; k < rng.Intn(30); k++ {
			i, j := rng.Intn(rows), rng.Intn(cols)
			if rng.Intn(4) == 0 {
				updates = append(updates, Tuple[int]{Row: i, Col: j, Del: true})
				delete(model, [2]int{i, j})
			} else {
				v := rng.Intn(100)
				updates = append(updates, Tuple[int]{Row: i, Col: j, Val: v})
				model[[2]int{i, j}] = v
			}
		}
		got, err := MergeTuples(base, updates)
		if err != nil || !got.Valid() {
			return false
		}
		if got.NNZ() != len(model) {
			return false
		}
		for key, want := range model {
			v, ok := got.Get(key[0], key[1])
			if !ok || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSpGEMMAssociativity: (A·B)·C = A·(B·C) over plus-times on small
// random operands (integer arithmetic, so equality is exact).
func TestSpGEMMAssociativity(t *testing.T) {
	add := func(a, b int) int { return a + b }
	mul := func(a, b int) int { return a * b }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k1 := 1 + rng.Intn(8)
		k2 := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := randCSR(rng, m, k1, 0.4)
		b := randCSR(rng, k1, k2, 0.4)
		c := randCSR(rng, k2, n, 0.4)
		left := SpGEMM(SpGEMM(a, b, mul, add, Mask{}, 2), c, mul, add, Mask{}, 2)
		right := SpGEMM(a, SpGEMM(b, c, mul, add, Mask{}, 2), mul, add, Mask{}, 2)
		// Patterns can differ when a dot product sums to zero — with
		// positive random values (1..9) that cannot happen here.
		return EqualFunc(left, right, func(x, y int) bool { return x == y })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSpGEMMDistributesOverEWiseAdd: A·(B ⊕ C) = A·B ⊕ A·C.
func TestSpGEMMDistributesOverEWiseAdd(t *testing.T) {
	add := func(a, b int) int { return a + b }
	mul := func(a, b int) int { return a * b }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := randCSR(rng, m, k, 0.4)
		b := randCSR(rng, k, n, 0.4)
		c := randCSR(rng, k, n, 0.4)
		left := SpGEMM(a, EWiseAddM(b, c, add, 1), mul, add, Mask{}, 2)
		right := EWiseAddM(
			SpGEMM(a, b, mul, add, Mask{}, 2),
			SpGEMM(a, c, mul, add, Mask{}, 2), add, 2)
		return EqualFunc(left, right, func(x, y int) bool { return x == y })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeDistributesOverProduct: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestTransposeDistributesOverProduct(t *testing.T) {
	add := func(a, b int) int { return a + b }
	mul := func(a, b int) int { return a * b }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		k := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		a := randCSR(rng, m, k, 0.4)
		b := randCSR(rng, k, n, 0.4)
		left := Transpose(SpGEMM(a, b, mul, add, Mask{}, 2))
		right := SpGEMM(Transpose(b), Transpose(a), mul, add, Mask{}, 2)
		return EqualFunc(left, right, func(x, y int) bool { return x == y })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMaskApplyIdempotent: applying the same mask twice equals once.
func TestMaskApplyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		c := randCSR(rng, m, n, 0.4)
		z := randCSR(rng, m, n, 0.4)
		mask := Mask{M: randBoolCSR(rng, m, n, 0.5), Structural: rng.Intn(2) == 0}
		once := MaskApplyM(c, z, mask, true, 2)
		twice := MaskApplyM(c, once, mask, true, 2)
		return EqualFunc(once, twice, func(x, y int) bool { return x == y })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVecMergeAgainstMap mirrors TestMergeTuplesAgainstMapReference for
// vectors.
func TestVecMergeAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		base := randVec(rng, n, 0.4)
		model := map[int]int{}
		for k, i := range base.Ind {
			model[i] = base.Val[k]
		}
		var updates []VTuple[int]
		for k := 0; k < rng.Intn(25); k++ {
			i := rng.Intn(n)
			if rng.Intn(4) == 0 {
				updates = append(updates, VTuple[int]{Idx: i, Del: true})
				delete(model, i)
			} else {
				v := rng.Intn(100)
				updates = append(updates, VTuple[int]{Idx: i, Val: v})
				model[i] = v
			}
		}
		got, err := MergeVTuples(base, updates)
		if err != nil || !got.Valid() || got.NNZ() != len(model) {
			return false
		}
		for i, want := range model {
			v, ok := got.Get(i)
			if !ok || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestResizeRoundTrip: growing then shrinking back preserves entries that
// fit, and Resize never produces an invalid structure.
func TestResizeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		a := randCSR(rng, rows, cols, 0.4)
		big := a.Resize(rows+5, cols+5)
		back := big.Resize(rows, cols)
		return big.Valid() && back.Valid() &&
			EqualFunc(a, back, func(x, y int) bool { return x == y })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package sparse

import (
	"errors"
	"sort"
	"sync/atomic"
)

// Vec is a generic sparse vector in sorted-coordinate form: Ind holds the
// positions of stored entries in strictly increasing order and Val the
// corresponding values. Like CSR it is immutable-on-write: kernels always
// return fresh vectors.
type Vec[T any] struct {
	N   int
	Ind []int
	Val []T

	// dv memoizes the bitmap/dense block view of this vector (see
	// DenseView). Same coherence argument as CSR.tr: vectors never change
	// after they are built and every grb-layer mutation installs a fresh
	// snapshot whose cache starts empty, so a cached view can never go
	// stale.
	dv atomic.Pointer[DenseVec[T]]
}

// NewVec returns an empty vector of size n.
func NewVec[T any](n int) *Vec[T] { return &Vec[T]{N: n} }

// NNZ returns the number of stored entries.
func (v *Vec[T]) NNZ() int { return len(v.Ind) }

// Clone returns a deep copy.
func (v *Vec[T]) Clone() *Vec[T] {
	c := &Vec[T]{N: v.N, Ind: make([]int, len(v.Ind)), Val: make([]T, len(v.Val))}
	copy(c.Ind, v.Ind)
	copy(c.Val, v.Val)
	return c
}

// Get returns the entry at i and whether it is present.
func (v *Vec[T]) Get(i int) (T, bool) {
	k := sort.SearchInts(v.Ind, i)
	if k < len(v.Ind) && v.Ind[k] == i {
		return v.Val[k], true
	}
	var zero T
	return zero, false
}

// Valid performs an internal-consistency check.
func (v *Vec[T]) Valid() bool {
	if v.N < 0 || len(v.Ind) != len(v.Val) {
		return false
	}
	for k := range v.Ind {
		if v.Ind[k] < 0 || v.Ind[k] >= v.N {
			return false
		}
		if k > 0 && v.Ind[k-1] >= v.Ind[k] {
			return false
		}
	}
	return true
}

// BuildVec constructs a size-n vector from coordinate pairs (I[k], X[k]).
// Duplicates are combined with dup; a nil dup makes duplicates an error,
// matching GraphBLAS 2.0 §IX.
func BuildVec[T any](n int, I []int, X []T, dup func(T, T) T) (*Vec[T], error) {
	if len(I) != len(X) {
		return nil, errors.New("sparse: build slices have unequal lengths")
	}
	for _, i := range I {
		if i < 0 || i >= n {
			return nil, ErrIndexOutOfBounds
		}
	}
	perm := make([]int, len(I))
	for k := range perm {
		perm[k] = k
	}
	sort.SliceStable(perm, func(a, b int) bool { return I[perm[a]] < I[perm[b]] })
	v := &Vec[T]{N: n, Ind: make([]int, 0, len(I)), Val: make([]T, 0, len(I))}
	for s := 0; s < len(perm); {
		k := perm[s]
		i, x := I[k], X[k]
		s++
		for s < len(perm) && I[perm[s]] == i {
			if dup == nil {
				return nil, ErrDuplicate
			}
			x = dup(x, X[perm[s]])
			s++
		}
		v.Ind = append(v.Ind, i)
		v.Val = append(v.Val, x)
	}
	DebugCheckVec(v, "BuildVec")
	return v, nil
}

// VTuple is a pending vector update (see Tuple).
type VTuple[T any] struct {
	Idx int
	Val T
	Del bool
}

// MergeVTuples folds pending updates into v, later updates winning.
func MergeVTuples[T any](v *Vec[T], tuples []VTuple[T]) (*Vec[T], error) {
	if len(tuples) == 0 {
		return v, nil
	}
	for _, t := range tuples {
		if t.Idx < 0 || t.Idx >= v.N {
			return nil, ErrIndexOutOfBounds
		}
	}
	ts := make([]VTuple[T], len(tuples))
	copy(ts, tuples)
	sort.SliceStable(ts, func(a, b int) bool { return ts[a].Idx < ts[b].Idx })
	dedup := ts[:0]
	for s := 0; s < len(ts); {
		e := s
		for e+1 < len(ts) && ts[e+1].Idx == ts[s].Idx {
			e++
		}
		dedup = append(dedup, ts[e])
		s = e + 1
	}
	ts = dedup

	out := &Vec[T]{N: v.N,
		Ind: make([]int, 0, len(v.Ind)+len(ts)),
		Val: make([]T, 0, len(v.Val)+len(ts))}
	k, p := 0, 0
	for k < len(v.Ind) || p < len(ts) {
		switch {
		case p < len(ts) && (k >= len(v.Ind) || ts[p].Idx < v.Ind[k]):
			if !ts[p].Del {
				out.Ind = append(out.Ind, ts[p].Idx)
				out.Val = append(out.Val, ts[p].Val)
			}
			p++
		case p < len(ts) && ts[p].Idx == v.Ind[k]:
			if !ts[p].Del {
				out.Ind = append(out.Ind, ts[p].Idx)
				out.Val = append(out.Val, ts[p].Val)
			}
			p++
			k++
		default:
			out.Ind = append(out.Ind, v.Ind[k])
			out.Val = append(out.Val, v.Val[k])
			k++
		}
	}
	DebugCheckVec(out, "MergeVTuples")
	return out, nil
}

// Resize returns a copy of v with the new size (entries beyond n dropped).
func (v *Vec[T]) Resize(n int) *Vec[T] {
	out := &Vec[T]{N: n}
	for k := range v.Ind {
		if v.Ind[k] < n {
			out.Ind = append(out.Ind, v.Ind[k])
			out.Val = append(out.Val, v.Val[k])
		}
	}
	DebugCheckVec(out, "Vec.Resize")
	return out
}

// Scatter expands v into a dense value slice plus presence bitmap, both of
// length v.N. Used by the matrix-vector kernels' gather phase.
func (v *Vec[T]) Scatter() ([]T, []bool) {
	dv := make([]T, v.N)
	ok := make([]bool, v.N)
	for k, i := range v.Ind {
		dv[i] = v.Val[k]
		ok[i] = true
	}
	return dv, ok
}

// GatherVec compresses a dense value slice plus presence bitmap back into a
// sorted sparse vector.
func GatherVec[T any](dv []T, ok []bool) *Vec[T] {
	out := &Vec[T]{N: len(dv)}
	for i := range dv {
		if ok[i] {
			out.Ind = append(out.Ind, i)
			out.Val = append(out.Val, dv[i])
		}
	}
	DebugCheckVec(out, "GatherVec")
	return out
}

// VecEqualFunc reports whether a and b are identical under eq.
func VecEqualFunc[T any](a, b *Vec[T], eq func(T, T) bool) bool {
	if a.N != b.N || a.NNZ() != b.NNZ() {
		return false
	}
	for k := range a.Ind {
		if a.Ind[k] != b.Ind[k] || !eq(a.Val[k], b.Val[k]) {
			return false
		}
	}
	return true
}

// VecTuples appends (index, value) pairs of v to I, X and returns them.
func (v *Vec[T]) VecTuples(I []int, X []T) ([]int, []T) {
	I = append(I, v.Ind...)
	X = append(X, v.Val...)
	return I, X
}

package sparse

// Per-family monomorphized loops. Each function is the inner loop of one
// (semiring family, kernel shape) pair with the semiring closures flattened
// into direct arithmetic; the scaffolds in mono.go supply everything around
// them. The loops replicate the closure kernels' visit order and
// first-assign-then-add accumulation exactly — in particular the float paths
// never initialize an accumulator to zero and fold into it (0 + (-0.0)
// flips the sign bit), they assign the first product and fold the rest, as
// the generic kernels do.

// --- pull (SpMV gather) row loops ---

// spmvRowsPlusTimes gathers rows with (+, ×).
func spmvRowsPlusTimes[T monoArith](a *CSR[T], dval []T, dbit []bool, admit func(int) bool, lo, hi int) ([]int, []T) {
	var ind []int
	var val []T
	for i := lo; i < hi; i++ {
		if admit != nil && !admit(i) {
			continue
		}
		aInd, aVal := a.Row(i)
		if dbit == nil {
			if len(aInd) == 0 {
				continue
			}
			acc := aVal[0] * dval[aInd[0]]
			for k := 1; k < len(aInd); k++ {
				acc += aVal[k] * dval[aInd[k]]
			}
			ind = append(ind, i)
			val = append(val, acc)
			continue
		}
		var acc T
		seen := false
		for k, j := range aInd {
			if !dbit[j] {
				continue
			}
			p := aVal[k] * dval[j]
			if !seen {
				acc = p
				seen = true
			} else {
				acc += p
			}
		}
		if seen {
			ind = append(ind, i)
			val = append(val, acc)
		}
	}
	return ind, val
}

// spmvRowsMinPlus gathers rows with (min, +).
func spmvRowsMinPlus[T monoArith](a *CSR[T], dval []T, dbit []bool, admit func(int) bool, lo, hi int) ([]int, []T) {
	var ind []int
	var val []T
	for i := lo; i < hi; i++ {
		if admit != nil && !admit(i) {
			continue
		}
		aInd, aVal := a.Row(i)
		if dbit == nil {
			if len(aInd) == 0 {
				continue
			}
			acc := aVal[0] + dval[aInd[0]]
			for k := 1; k < len(aInd); k++ {
				if p := aVal[k] + dval[aInd[k]]; p < acc {
					acc = p
				}
			}
			ind = append(ind, i)
			val = append(val, acc)
			continue
		}
		var acc T
		seen := false
		for k, j := range aInd {
			if !dbit[j] {
				continue
			}
			p := aVal[k] + dval[j]
			if !seen {
				acc = p
				seen = true
			} else if p < acc {
				acc = p
			}
		}
		if seen {
			ind = append(ind, i)
			val = append(val, acc)
		}
	}
	return ind, val
}

// spmvRowsLorLand gathers rows with (∨, ∧); the accumulator short-circuits
// once true, but presence is decided first, matching the closure kernel's
// emitted pattern.
func spmvRowsLorLand(a *CSR[bool], dval []bool, dbit []bool, admit func(int) bool, lo, hi int) ([]int, []bool) {
	var ind []int
	var val []bool
	for i := lo; i < hi; i++ {
		if admit != nil && !admit(i) {
			continue
		}
		aInd, aVal := a.Row(i)
		seen := false
		acc := false
		for k, j := range aInd {
			if dbit != nil && !dbit[j] {
				continue
			}
			seen = true
			if aVal[k] && dval[j] {
				acc = true
				break
			}
		}
		if seen {
			ind = append(ind, i)
			val = append(val, acc)
		}
	}
	return ind, val
}

// spmvRowsPlusPair gathers rows with (+, pair): the row's result is the
// count of present products, which float64 sums of 1 represent exactly.
func spmvRowsPlusPair[T monoArith](a *CSR[T], dval []T, dbit []bool, admit func(int) bool, lo, hi int) ([]int, []T) {
	var ind []int
	var val []T
	for i := lo; i < hi; i++ {
		if admit != nil && !admit(i) {
			continue
		}
		aInd, _ := a.Row(i)
		n := 0
		if dbit == nil {
			n = len(aInd)
		} else {
			for _, j := range aInd {
				if dbit[j] {
					n++
				}
			}
		}
		if n > 0 {
			ind = append(ind, i)
			val = append(val, T(n))
		}
	}
	return ind, val
}

// --- fully-dense (GEMV) row loops ---

// gemvRowsPlusTimes is the (+, ×) sweep over full matrix and vector blocks.
func gemvRowsPlusTimes[T monoArith](mval []T, cols int, dval []T, admit func(int) bool, lo, hi int) ([]int, []T) {
	var ind []int
	var val []T
	for i := lo; i < hi; i++ {
		if admit != nil && !admit(i) {
			continue
		}
		row := mval[i*cols : (i+1)*cols]
		acc := row[0] * dval[0]
		for j := 1; j < cols; j++ {
			acc += row[j] * dval[j]
		}
		ind = append(ind, i)
		val = append(val, acc)
	}
	return ind, val
}

// gemvRowsMinPlus is the (min, +) sweep over full blocks.
func gemvRowsMinPlus[T monoArith](mval []T, cols int, dval []T, admit func(int) bool, lo, hi int) ([]int, []T) {
	var ind []int
	var val []T
	for i := lo; i < hi; i++ {
		if admit != nil && !admit(i) {
			continue
		}
		row := mval[i*cols : (i+1)*cols]
		acc := row[0] + dval[0]
		for j := 1; j < cols; j++ {
			if p := row[j] + dval[j]; p < acc {
				acc = p
			}
		}
		ind = append(ind, i)
		val = append(val, acc)
	}
	return ind, val
}

// --- push (VxM scatter) loops ---

// vxmScatterPlusTimes scatters the frontier with (+, ×).
func vxmScatterPlusTimes[T monoArith](u *Vec[T], a *CSR[T], admit []bool, spa []T, mark []bool, lo, hi int) []int {
	var pattern []int
	for k := lo; k < hi; k++ {
		i := u.Ind[k]
		uv := u.Val[k]
		aInd, aVal := a.Row(i)
		for t, j := range aInd {
			if admit != nil && !admit[j] {
				continue
			}
			p := uv * aVal[t]
			if !mark[j] {
				mark[j] = true
				spa[j] = p
				pattern = append(pattern, j)
			} else {
				spa[j] += p
			}
		}
	}
	return pattern
}

// vxmScatterMinPlus scatters the frontier with (min, +).
func vxmScatterMinPlus[T monoArith](u *Vec[T], a *CSR[T], admit []bool, spa []T, mark []bool, lo, hi int) []int {
	var pattern []int
	for k := lo; k < hi; k++ {
		i := u.Ind[k]
		uv := u.Val[k]
		aInd, aVal := a.Row(i)
		for t, j := range aInd {
			if admit != nil && !admit[j] {
				continue
			}
			p := uv + aVal[t]
			if !mark[j] {
				mark[j] = true
				spa[j] = p
				pattern = append(pattern, j)
			} else if p < spa[j] {
				spa[j] = p
			}
		}
	}
	return pattern
}

// vxmScatterLorLand scatters the frontier with (∨, ∧).
func vxmScatterLorLand(u *Vec[bool], a *CSR[bool], admit []bool, spa []bool, mark []bool, lo, hi int) []int {
	var pattern []int
	for k := lo; k < hi; k++ {
		i := u.Ind[k]
		uv := u.Val[k]
		aInd, aVal := a.Row(i)
		for t, j := range aInd {
			if admit != nil && !admit[j] {
				continue
			}
			p := uv && aVal[t]
			if !mark[j] {
				mark[j] = true
				spa[j] = p
				pattern = append(pattern, j)
			} else if p {
				spa[j] = true
			}
		}
	}
	return pattern
}

// vxmScatterPlusPair scatters the frontier with (+, pair): each admitted
// product contributes exactly 1.
func vxmScatterPlusPair[T monoArith](u *Vec[T], a *CSR[T], admit []bool, spa []T, mark []bool, lo, hi int) []int {
	var pattern []int
	for k := lo; k < hi; k++ {
		i := u.Ind[k]
		aInd, _ := a.Row(i)
		for _, j := range aInd {
			if admit != nil && !admit[j] {
				continue
			}
			if !mark[j] {
				mark[j] = true
				spa[j] = 1
				pattern = append(pattern, j)
			} else {
				spa[j]++
			}
		}
	}
	return pattern
}

// --- SpGEMM dense-SPA row loops ---

// spgemmRowPlusTimes is the (+, ×) dense-SPA product for row i.
func spgemmRowPlusTimes[T monoArith](a, b *CSR[T], spa []T, stamp []int, gen int, pattern []int, i int) []int {
	aInd, aVal := a.Row(i)
	for k, bi := range aInd {
		bInd, bVal := b.Row(bi)
		av := aVal[k]
		for t, j := range bInd {
			p := av * bVal[t]
			if stamp[j] != gen {
				stamp[j] = gen
				spa[j] = p
				pattern = append(pattern, j)
			} else {
				spa[j] += p
			}
		}
	}
	return pattern
}

// spgemmRowMinPlus is the (min, +) dense-SPA product for row i.
func spgemmRowMinPlus[T monoArith](a, b *CSR[T], spa []T, stamp []int, gen int, pattern []int, i int) []int {
	aInd, aVal := a.Row(i)
	for k, bi := range aInd {
		bInd, bVal := b.Row(bi)
		av := aVal[k]
		for t, j := range bInd {
			p := av + bVal[t]
			if stamp[j] != gen {
				stamp[j] = gen
				spa[j] = p
				pattern = append(pattern, j)
			} else if p < spa[j] {
				spa[j] = p
			}
		}
	}
	return pattern
}

// spgemmRowLorLand is the (∨, ∧) dense-SPA product for row i.
func spgemmRowLorLand(a, b *CSR[bool], spa []bool, stamp []int, gen int, pattern []int, i int) []int {
	aInd, aVal := a.Row(i)
	for k, bi := range aInd {
		bInd, bVal := b.Row(bi)
		av := aVal[k]
		for t, j := range bInd {
			p := av && bVal[t]
			if stamp[j] != gen {
				stamp[j] = gen
				spa[j] = p
				pattern = append(pattern, j)
			} else if p {
				spa[j] = true
			}
		}
	}
	return pattern
}

// spgemmRowPlusPair is the (+, pair) dense-SPA product for row i.
func spgemmRowPlusPair[T monoArith](a, b *CSR[T], spa []T, stamp []int, gen int, pattern []int, i int) []int {
	aInd, _ := a.Row(i)
	for _, bi := range aInd {
		bInd, _ := b.Row(bi)
		for _, j := range bInd {
			if stamp[j] != gen {
				stamp[j] = gen
				spa[j] = 1
				pattern = append(pattern, j)
			} else {
				spa[j]++
			}
		}
	}
	return pattern
}

//go:build !grbcheck

package sparse

// DebugChecks reports whether the grbcheck validators are compiled in.
const DebugChecks = false

// DebugCheckCSR is a no-op without -tags grbcheck; see check.go.
func DebugCheckCSR[T any](m *CSR[T], origin string) {}

// DebugCheckVec is a no-op without -tags grbcheck; see check.go.
func DebugCheckVec[T any](v *Vec[T], origin string) {}

// DebugCheckDenseVec is a no-op without -tags grbcheck; see check.go.
func DebugCheckDenseVec[T any](d *DenseVec[T], origin string) {}

// DebugCheckDenseMat is a no-op without -tags grbcheck; see check.go.
func DebugCheckDenseMat[T any](d *DenseMat[T], origin string) {}

package sparse

import (
	"sync/atomic"
	"unsafe"

	"github.com/grblas/grb/internal/parallel"
)

// Kernel selects the accumulator strategy used by the multiply kernels
// (SpGEMM, SpMV). The zero value asks for the adaptive heuristic.
type Kernel int

const (
	// KernelAuto routes each row range by comparing its estimated flops
	// against the output width (see chooseHash).
	KernelAuto Kernel = iota
	// KernelDense forces the dense SPA of width cols per worker.
	KernelDense
	// KernelHash forces the open-addressing hash SPA.
	KernelHash
)

// hashThreshold is the adaptive-selection knob: a row range is routed to the
// hash SPA when its total flop estimate is below cols/threshold, i.e. when
// the O(cols) buffer a dense accumulator would have to allocate and stamp
// dwarfs all the work the range actually does. Stored atomically so tests and
// benchmarks can pin it while kernels run on other goroutines.
var hashThreshold atomic.Int64

// defaultHashThreshold = 2 comes from the cost model: the dense SPA costs
// O(cols) to materialize plus ~1 unit per flop; the hash SPA skips the O(cols)
// term but pays ~3 units per flop (hash, probe, re-probe at emit). Hash wins
// iff cols > (3-1)·flops, i.e. flops < cols/2. The margin also bounds the
// table itself: capacity ≤ 2·flops < cols, so the hash path can never allocate
// more scratch than the dense path it replaced.
const defaultHashThreshold = 2

func init() { hashThreshold.Store(defaultHashThreshold) }

// HashThreshold returns the current adaptive-selection threshold.
func HashThreshold() int { return int(hashThreshold.Load()) }

// SetHashThreshold pins the adaptive-selection threshold and returns the
// previous value. Values < 1 are clamped to 1 (hash only when flops < cols).
// Raising the threshold biases selection toward the dense SPA; 1 is the most
// hash-friendly setting.
func SetHashThreshold(t int) int {
	if t < 1 {
		t = 1
	}
	return int(hashThreshold.Swap(int64(t)))
}

// chooseHash is the per-row-range selection rule. flops is the range's total
// flop estimate (Σ per-row bounds for SpGEMM, nnz(u) for the SpMV gather);
// cols is the width of the dense workspace the range would otherwise
// allocate. The division form avoids overflow for huge flop counts.
func chooseHash(hint Kernel, flops, cols int) bool {
	switch hint {
	case KernelDense:
		return false
	case KernelHash:
		return true
	}
	return flops < cols/HashThreshold()
}

// SpGEMMFlops is the symbolic pass of the adaptive SpGEMM: it returns the
// prefix array fptr (length a.Rows+1, fptr[0]=0) of per-row flop upper
// bounds, where the bound for row i is Σ_{k∈A(i,:)} nnz(B(A.Ind[k],:)) — the
// number of multiply calls Gustavson's algorithm performs for that row. The
// prefix form feeds parallel.BalancedRanges directly, so row partitions are
// balanced by flops rather than by nnz(A), and fptr[i+1]-fptr[i] presizes the
// hash accumulator exactly.
func SpGEMMFlops[A, B any](a *CSR[A], b *CSR[B], threads int) []int {
	fptr := make([]int, a.Rows+1)
	parallel.For(a.Rows, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ind, _ := a.Row(i)
			f := 0
			for _, k := range ind {
				f += b.Ptr[k+1] - b.Ptr[k]
			}
			fptr[i+1] = f
		}
	})
	for i := 0; i < a.Rows; i++ {
		fptr[i+1] += fptr[i]
	}
	return fptr
}

// hashAccum is an open-addressing (linear probing) sparse accumulator: the
// hash-SPA counterpart of the dense generation-stamped SPA in SpGEMM. The
// table is sized per row from the row's flop upper bound, so it never needs
// to grow mid-row; occupied slots are recorded and cleared after each row,
// keeping reset cost proportional to the row's output, not the table.
type hashAccum[C any] struct {
	keys  []int // column index per slot, -1 = empty
	vals  []C
	mask  int   // len(keys)-1, power of two minus one
	slots []int // occupied slot indices, for O(nnz(row)) reset
}

// ensure grows the table to a power-of-two capacity ≥ 2*n (≥ 16). It must be
// called only while the table is empty (freshly reset), since growing
// discards slot contents.
func (h *hashAccum[C]) ensure(n int) {
	c := 16
	for c < 2*n {
		c <<= 1
	}
	if c <= len(h.keys) {
		return
	}
	h.keys = make([]int, c)
	for i := range h.keys {
		h.keys[i] = -1
	}
	h.vals = make([]C, c)
	h.mask = c - 1
	var zero C
	scratchBytes.Add(int64(c) * int64(unsafe.Sizeof(0)+unsafe.Sizeof(zero)))
}

// slot returns the slot holding key j, or the empty slot where j belongs.
func (h *hashAccum[C]) slot(j int) int {
	// Fibonacci hashing spreads consecutive column indices across the table.
	s := int((uint64(j)*0x9E3779B97F4A7C15)>>33) & h.mask
	for h.keys[s] != -1 && h.keys[s] != j {
		s = (s + 1) & h.mask
	}
	return s
}

// reset clears the occupied slots recorded since the previous reset.
func (h *hashAccum[C]) reset() {
	for _, s := range h.slots {
		h.keys[s] = -1
	}
	h.slots = h.slots[:0]
}

// hashLookup is a read-only open-addressing map from vector index to value,
// the gather-side analogue of hashAccum: SpMV's pull path builds one from the
// input vector instead of scattering it into an O(n) dense buffer when the
// vector is hypersparse. It is built once and then only read, so concurrent
// workers may share it without synchronization.
type hashLookup[T any] struct {
	keys []int
	vals []T
	mask int
}

func newHashLookup[T any](v *Vec[T]) *hashLookup[T] {
	c := 16
	for c < 2*len(v.Ind) {
		c <<= 1
	}
	h := &hashLookup[T]{keys: make([]int, c), vals: make([]T, c), mask: c - 1}
	for i := range h.keys {
		h.keys[i] = -1
	}
	var zero T
	scratchBytes.Add(int64(c) * int64(unsafe.Sizeof(0)+unsafe.Sizeof(zero)))
	for k, j := range v.Ind {
		s := int((uint64(j)*0x9E3779B97F4A7C15)>>33) & h.mask
		for h.keys[s] != -1 {
			s = (s + 1) & h.mask
		}
		h.keys[s] = j
		h.vals[s] = v.Val[k]
	}
	return h
}

func (h *hashLookup[T]) get(j int) (T, bool) {
	s := int((uint64(j)*0x9E3779B97F4A7C15)>>33) & h.mask
	for {
		switch h.keys[s] {
		case j:
			return h.vals[s], true
		case -1:
			var zero T
			return zero, false
		}
		s = (s + 1) & h.mask
	}
}

package sparse

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// Differential kernel harness: the dense-SPA and hash-SPA accumulators must
// produce byte-identical (Ptr, Ind, Val) output for every semiring and mask
// combination — both visit products in the same (k, t) order and sort row
// patterns before emitting, so even floating-point sums match exactly. Each
// test draws its inputs from a logged seed; rerun a failure with
// GRB_DIFF_SEED=<seed> go test -run TestDifferential ./internal/sparse

// diffSeed returns the randomized (or pinned) seed for a differential test
// and logs it for reproducibility.
func diffSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano()
	if s := os.Getenv("GRB_DIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad GRB_DIFF_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("seed=%d (pin with GRB_DIFF_SEED to reproduce)", seed)
	return seed
}

// sprayCSR builds a rows×cols matrix with ~nnz entries at uniformly random
// coordinates (duplicates collapse), values drawn from mk.
func sprayCSR[T any](rng *rand.Rand, rows, cols, nnz int, mk func(*rand.Rand) T) *CSR[T] {
	I := make([]int, 0, nnz)
	J := make([]int, 0, nnz)
	X := make([]T, 0, nnz)
	for k := 0; k < nnz; k++ {
		I = append(I, rng.Intn(rows))
		J = append(J, rng.Intn(cols))
		X = append(X, mk(rng))
	}
	m, err := BuildCSR(rows, cols, I, J, X, func(a, b T) T { return b })
	if err != nil {
		panic(err)
	}
	return m
}

// identicalCSR fails the test unless a and b have byte-identical Ptr, Ind
// and Val (values compared with ==, so float mismatches are exact).
func identicalCSR[T comparable](t *testing.T, label string, got, want *CSR[T]) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if len(got.Ptr) != len(want.Ptr) {
		t.Fatalf("%s: Ptr length %d != %d", label, len(got.Ptr), len(want.Ptr))
	}
	for i := range got.Ptr {
		if got.Ptr[i] != want.Ptr[i] {
			t.Fatalf("%s: Ptr[%d] = %d != %d", label, i, got.Ptr[i], want.Ptr[i])
		}
	}
	if len(got.Ind) != len(want.Ind) {
		t.Fatalf("%s: nnz %d != %d", label, len(got.Ind), len(want.Ind))
	}
	for k := range got.Ind {
		if got.Ind[k] != want.Ind[k] {
			t.Fatalf("%s: Ind[%d] = %d != %d", label, k, got.Ind[k], want.Ind[k])
		}
		if got.Val[k] != want.Val[k] {
			t.Fatalf("%s: Val[%d] = %v != %v", label, k, got.Val[k], want.Val[k])
		}
	}
}

// maskVariants enumerates the mask interpretations the harness covers:
// unmasked, value, structural, complemented, and complemented-structural.
func maskVariants(m *CSR[bool]) []struct {
	name string
	mask Mask
} {
	return []struct {
		name string
		mask Mask
	}{
		{"nomask", Mask{}},
		{"value", Mask{M: m}},
		{"structural", Mask{M: m, Structural: true}},
		{"complement", Mask{M: m, Complement: true}},
		{"structural-complement", Mask{M: m, Structural: true, Complement: true}},
	}
}

// diffSpGEMM runs the dense and hash accumulators (and the adaptive router)
// over random shapes for one semiring and requires identical output.
func diffSpGEMM[T comparable](t *testing.T, rng *rand.Rand, mul func(T, T) T, add func(T, T) T, mk func(*rand.Rand) T) {
	t.Helper()
	for trial := 0; trial < 12; trial++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		// Alternate between moderate and very wide/hypersparse outputs so
		// both accumulators see their home regime and the other's.
		n := 1 + rng.Intn(40)
		nnz := 2 * (m + k)
		if trial%2 == 1 {
			n = 500 + rng.Intn(3000)
			nnz = (m + k) / 2
		}
		a := sprayCSR(rng, m, k, nnz, mk)
		b := sprayCSR(rng, k, n, nnz, mk)
		mask := sprayCSR(rng, m, n, (m*n)/3+1, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
		for _, mv := range maskVariants(mask) {
			for _, threads := range []int{1, 3, 8} {
				dense := SpGEMMKernel(a, b, mul, add, mv.mask, threads, KernelDense)
				hash := SpGEMMKernel(a, b, mul, add, mv.mask, threads, KernelHash)
				auto := SpGEMMKernel(a, b, mul, add, mv.mask, threads, KernelAuto)
				if !dense.Valid() || !hash.Valid() || !auto.Valid() {
					t.Fatalf("trial %d %s threads=%d: invalid output", trial, mv.name, threads)
				}
				identicalCSR(t, mv.name+"/hash-vs-dense", hash, dense)
				identicalCSR(t, mv.name+"/auto-vs-dense", auto, dense)
			}
		}
	}
}

func TestDifferentialSpGEMMPlusTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffSpGEMM(t, rng,
		func(a, b float64) float64 { return a * b },
		func(a, b float64) float64 { return a + b },
		func(r *rand.Rand) float64 { return r.NormFloat64() })
}

func TestDifferentialSpGEMMMinPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffSpGEMM(t, rng,
		func(a, b int) int { return a + b },
		func(a, b int) int {
			if a < b {
				return a
			}
			return b
		},
		func(r *rand.Rand) int { return r.Intn(1000) })
}

func TestDifferentialSpGEMMLorLand(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	diffSpGEMM(t, rng,
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a || b },
		func(r *rand.Rand) bool { return r.Intn(2) == 0 })
}

// TestDifferentialSpMVGather checks that the hash-gather pull path matches
// the dense-scatter path bit for bit across masks and thread counts.
func TestDifferentialSpMVGather(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mul := func(a, x float64) float64 { return a * x }
	add := func(a, b float64) float64 { return a + b }
	for trial := 0; trial < 15; trial++ {
		rows := 1 + rng.Intn(60)
		cols := 1 + rng.Intn(3000) // wide: the hash gather's home regime
		a := sprayCSR(rng, rows, cols, 3*rows, func(r *rand.Rand) float64 { return r.NormFloat64() })
		u := NewVec[float64](cols)
		for j := 0; j < cols; j++ {
			if rng.Intn(8) == 0 {
				u.Ind = append(u.Ind, j)
				u.Val = append(u.Val, rng.NormFloat64())
			}
		}
		mvec := NewVec[bool](rows)
		for i := 0; i < rows; i++ {
			if rng.Intn(2) == 0 {
				mvec.Ind = append(mvec.Ind, i)
				mvec.Val = append(mvec.Val, rng.Intn(2) == 0)
			}
		}
		masks := []struct {
			name string
			mask VMask
		}{
			{"nomask", VMask{}},
			{"value", VMask{M: mvec}},
			{"structural", VMask{M: mvec, Structural: true}},
			{"complement", VMask{M: mvec, Complement: true}},
			{"structural-complement", VMask{M: mvec, Structural: true, Complement: true}},
		}
		for _, mv := range masks {
			for _, threads := range []int{1, 4} {
				dense := SpMVKernel(a, u, mul, add, mv.mask, threads, KernelDense)
				hash := SpMVKernel(a, u, mul, add, mv.mask, threads, KernelHash)
				auto := SpMVKernel(a, u, mul, add, mv.mask, threads, KernelAuto)
				for _, pair := range []struct {
					name string
					got  *Vec[float64]
				}{{"hash", hash}, {"auto", auto}} {
					if len(pair.got.Ind) != len(dense.Ind) {
						t.Fatalf("trial %d %s/%s threads=%d: nnz %d != %d",
							trial, mv.name, pair.name, threads, len(pair.got.Ind), len(dense.Ind))
					}
					for k := range dense.Ind {
						if pair.got.Ind[k] != dense.Ind[k] || pair.got.Val[k] != dense.Val[k] {
							t.Fatalf("trial %d %s/%s threads=%d: entry %d (%d,%v) != (%d,%v)",
								trial, mv.name, pair.name, threads,
								k, pair.got.Ind[k], pair.got.Val[k], dense.Ind[k], dense.Val[k])
						}
					}
				}
			}
		}
	}
}

// TestAdaptiveSelectionRoutes pins the threshold and checks the router sends
// hypersparse work to the hash SPA and dense work to the dense SPA.
func TestAdaptiveSelectionRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(diffSeed(t)))
	mul := func(a, b int) int { return a * b }
	add := func(a, b int) int { return a + b }
	prev := SetHashThreshold(defaultHashThreshold)
	defer SetHashThreshold(prev)

	// Hypersparse: 5000 columns, a handful of flops per row.
	a := sprayCSR(rng, 200, 200, 300, func(r *rand.Rand) int { return 1 + r.Intn(9) })
	b := sprayCSR(rng, 200, 5000, 300, func(r *rand.Rand) int { return 1 + r.Intn(9) })
	ResetKernelCounts()
	SpGEMM(a, b, mul, add, Mask{}, 4)
	if _, hash := KernelCounts(); hash == 0 {
		t.Fatal("hypersparse product never chose the hash SPA")
	}

	// Dense regime: every row's flop bound rivals the 40-wide output.
	c := sprayCSR(rng, 40, 40, 800, func(r *rand.Rand) int { return 1 + r.Intn(9) })
	ResetKernelCounts()
	SpGEMM(c, c, mul, add, Mask{}, 4)
	if dense, _ := KernelCounts(); dense == 0 {
		t.Fatal("dense product never chose the dense SPA")
	}

	// Threshold 1 is the most hash-friendly setting (hash iff flops < cols),
	// yet a dense-regime product does far more flops than it has columns, so
	// it must still route dense.
	SetHashThreshold(1)
	ResetKernelCounts()
	SpGEMM(c, c, mul, add, Mask{}, 4)
	if _, hash := KernelCounts(); hash != 0 {
		t.Fatal("threshold=1 still routed a dense-regime range to hash")
	}

	// A huge threshold biases selection all the way to dense: even the
	// hypersparse product must stop choosing the hash SPA.
	SetHashThreshold(1 << 30)
	ResetKernelCounts()
	SpGEMM(a, b, mul, add, Mask{}, 4)
	if _, hash := KernelCounts(); hash != 0 {
		t.Fatal("huge threshold still routed hypersparse ranges to hash")
	}
}

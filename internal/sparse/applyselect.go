package sparse

import "github.com/grblas/grb/internal/parallel"

// ApplyM computes T(i,j) = f(A(i,j)) for every stored entry: pattern is
// preserved, values are mapped. Rows are processed in parallel.
func ApplyM[A, C any](a *CSR[A], f func(A) C, threads int) *CSR[C] {
	out := &CSR[C]{Rows: a.Rows, Cols: a.Cols,
		Ptr: make([]int, len(a.Ptr)),
		Ind: make([]int, len(a.Ind)),
		Val: make([]C, len(a.Val))}
	copy(out.Ptr, a.Ptr)
	copy(out.Ind, a.Ind)
	parallel.For(len(a.Val), threads, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out.Val[k] = f(a.Val[k])
		}
	})
	return out
}

// ApplyIndexM computes T(i,j) = f(A(i,j), i, j, s) for every stored entry —
// the GraphBLAS 2.0 index variant of apply (§VIII-B). The operator receives
// the entry's row and column indices natively, which is exactly the
// capability the paper adds over 1.X (where indices had to be packed into
// the values array).
func ApplyIndexM[A, S, C any](a *CSR[A], f func(A, int, int, S) C, s S, threads int) *CSR[C] {
	out := &CSR[C]{Rows: a.Rows, Cols: a.Cols,
		Ptr: make([]int, len(a.Ptr)),
		Ind: make([]int, len(a.Ind)),
		Val: make([]C, len(a.Val))}
	copy(out.Ptr, a.Ptr)
	copy(out.Ind, a.Ind)
	parallel.For(a.Rows, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ind, val := a.Row(i)
			base := a.Ptr[i]
			for k := range ind {
				out.Val[base+k] = f(val[k], i, ind[k], s)
			}
		}
	})
	return out
}

// SelectM keeps the stored entries of A for which the boolean index operator
// returns true and annihilates the rest — the GraphBLAS 2.0 select operation
// (§VIII-C), a "functional input mask".
func SelectM[A, S any](a *CSR[A], f func(A, int, int, S) bool, s S, threads int) *CSR[A] {
	out := NewCSR[A](a.Rows, a.Cols)
	parts := parallel.Ranges(a.Rows, threads)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]A, nparts)
	rowLen := make([]int, a.Rows)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		var ind []int
		var val []A
		for i := lo; i < hi; i++ {
			aInd, aVal := a.Row(i)
			start := len(ind)
			for k := range aInd {
				if f(aVal[k], i, aInd[k], s) {
					ind = append(ind, aInd[k])
					val = append(val, aVal[k])
				}
			}
			rowLen[i] = len(ind) - start
		}
		pInd[part] = ind
		pVal[part] = val
	})
	installStitched(out, parts, pInd, pVal, rowLen)
	return out
}

// ApplyV computes t(i) = f(u(i)) for every stored entry of a vector.
func ApplyV[A, C any](u *Vec[A], f func(A) C) *Vec[C] {
	out := &Vec[C]{N: u.N, Ind: make([]int, len(u.Ind)), Val: make([]C, len(u.Val))}
	copy(out.Ind, u.Ind)
	for k := range u.Val {
		out.Val[k] = f(u.Val[k])
	}
	return out
}

// ApplyIndexV computes t(i) = f(u(i), i, 0, s): for vectors the operator
// receives the row index and a zero column index, matching the paper's
// convention that vector index operators see a single index.
func ApplyIndexV[A, S, C any](u *Vec[A], f func(A, int, int, S) C, s S) *Vec[C] {
	out := &Vec[C]{N: u.N, Ind: make([]int, len(u.Ind)), Val: make([]C, len(u.Val))}
	copy(out.Ind, u.Ind)
	for k := range u.Ind {
		out.Val[k] = f(u.Val[k], u.Ind[k], 0, s)
	}
	return out
}

// SelectV keeps the entries of u admitted by the boolean index operator.
func SelectV[A, S any](u *Vec[A], f func(A, int, int, S) bool, s S) *Vec[A] {
	out := &Vec[A]{N: u.N}
	for k := range u.Ind {
		if f(u.Val[k], u.Ind[k], 0, s) {
			out.Ind = append(out.Ind, u.Ind[k])
			out.Val = append(out.Val, u.Val[k])
		}
	}
	return out
}

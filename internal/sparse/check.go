//go:build grbcheck

// Runtime invariant validation for the snapshot substrate, compiled in with
// `-tags grbcheck` (see DESIGN.md, "Static analysis & invariants"). Every
// CSR/Vec install point calls DebugCheckCSR/DebugCheckVec; under the tag the
// checks panic with the violated invariant and the installing operation, so
// a kernel that publishes a malformed snapshot fails at the install, not at
// the next read. Without the tag the calls compile to no-ops.
package sparse

import "fmt"

// DebugChecks reports whether the grbcheck validators are compiled in.
const DebugChecks = true

// DebugCheckCSR validates the full CSR snapshot contract: header dims
// non-negative, row pointers monotone and anchored (Ptr[0] == 0,
// Ptr[Rows] == nnz), parallel storage (len(Ind) == len(Val)), and each row's
// column indices sorted, unique and in [0, Cols).
func DebugCheckCSR[T any](m *CSR[T], origin string) {
	if m == nil {
		return
	}
	if m.Rows < 0 || m.Cols < 0 {
		checkFail(origin, "negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.Ptr) != m.Rows+1 {
		checkFail(origin, "len(Ptr) = %d, want Rows+1 = %d", len(m.Ptr), m.Rows+1)
	}
	if m.Ptr[0] != 0 {
		checkFail(origin, "Ptr[0] = %d, want 0", m.Ptr[0])
	}
	if len(m.Ind) != len(m.Val) {
		checkFail(origin, "len(Ind) = %d but len(Val) = %d", len(m.Ind), len(m.Val))
	}
	if m.Ptr[m.Rows] != len(m.Ind) {
		checkFail(origin, "Ptr[Rows] = %d but nnz = %d", m.Ptr[m.Rows], len(m.Ind))
	}
	for i := 0; i < m.Rows; i++ {
		if m.Ptr[i+1] < m.Ptr[i] {
			checkFail(origin, "row pointers not monotone: Ptr[%d] = %d > Ptr[%d] = %d",
				i, m.Ptr[i], i+1, m.Ptr[i+1])
		}
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			if m.Ind[k] < 0 || m.Ind[k] >= m.Cols {
				checkFail(origin, "row %d: column index Ind[%d] = %d out of range [0, %d)",
					i, k, m.Ind[k], m.Cols)
			}
			if k > m.Ptr[i] && m.Ind[k-1] >= m.Ind[k] {
				checkFail(origin, "row %d: column indices not sorted+unique: Ind[%d] = %d, Ind[%d] = %d",
					i, k-1, m.Ind[k-1], k, m.Ind[k])
			}
		}
	}
}

// DebugCheckVec validates the sparse-vector snapshot contract: size
// non-negative, parallel storage, indices sorted, unique and in [0, N).
func DebugCheckVec[T any](v *Vec[T], origin string) {
	if v == nil {
		return
	}
	if v.N < 0 {
		checkFail(origin, "negative size %d", v.N)
	}
	if len(v.Ind) != len(v.Val) {
		checkFail(origin, "len(Ind) = %d but len(Val) = %d", len(v.Ind), len(v.Val))
	}
	for k := range v.Ind {
		if v.Ind[k] < 0 || v.Ind[k] >= v.N {
			checkFail(origin, "index Ind[%d] = %d out of range [0, %d)", k, v.Ind[k], v.N)
		}
		if k > 0 && v.Ind[k-1] >= v.Ind[k] {
			checkFail(origin, "indices not sorted+unique: Ind[%d] = %d, Ind[%d] = %d",
				k-1, v.Ind[k-1], k, v.Ind[k])
		}
	}
}

// DebugCheckDenseVec validates the block-vector contract: size non-negative,
// one value slot per position, the bitmap (when present) position-aligned
// with Nnz counting its set flags, and full views storing every position.
func DebugCheckDenseVec[T any](d *DenseVec[T], origin string) {
	if d == nil {
		return
	}
	if d.N < 0 {
		checkFail(origin, "negative size %d", d.N)
	}
	if len(d.Val) != d.N {
		checkFail(origin, "len(Val) = %d, want N = %d", len(d.Val), d.N)
	}
	if d.Bit == nil {
		if d.Nnz != d.N {
			checkFail(origin, "full view with Nnz = %d, want N = %d", d.Nnz, d.N)
		}
		return
	}
	if len(d.Bit) != d.N {
		checkFail(origin, "len(Bit) = %d, want N = %d", len(d.Bit), d.N)
	}
	n := 0
	for _, ok := range d.Bit {
		if ok {
			n++
		}
	}
	if n != d.Nnz {
		checkFail(origin, "bitmap has %d set flags but Nnz = %d", n, d.Nnz)
	}
}

// DebugCheckDenseMat validates the block-matrix contract: dims non-negative,
// row-major storage sized Rows*Cols, the bitmap (when present) aligned with
// Nnz counting its set flags, and full views storing every position.
func DebugCheckDenseMat[T any](d *DenseMat[T], origin string) {
	if d == nil {
		return
	}
	if d.Rows < 0 || d.Cols < 0 {
		checkFail(origin, "negative dimensions %dx%d", d.Rows, d.Cols)
	}
	size, ok := CheckedMul(d.Rows, d.Cols)
	if !ok {
		checkFail(origin, "dimensions %dx%d overflow", d.Rows, d.Cols)
	}
	if len(d.Val) != size {
		checkFail(origin, "len(Val) = %d, want Rows*Cols = %d", len(d.Val), size)
	}
	if d.Bit == nil {
		if d.Nnz != size {
			checkFail(origin, "full view with Nnz = %d, want Rows*Cols = %d", d.Nnz, size)
		}
		return
	}
	if len(d.Bit) != size {
		checkFail(origin, "len(Bit) = %d, want Rows*Cols = %d", len(d.Bit), size)
	}
	n := 0
	for _, ok := range d.Bit {
		if ok {
			n++
		}
	}
	if n != d.Nnz {
		checkFail(origin, "bitmap has %d set flags but Nnz = %d", n, d.Nnz)
	}
}

func checkFail(origin, format string, args ...any) {
	panic("sparse: grbcheck: " + origin + ": " + fmt.Sprintf(format, args...))
}

package sparse

import (
	"sort"
	"unsafe"

	"github.com/grblas/grb/internal/parallel"
)

// SUMMA-style block plans over BlockedCSR operands. A blocked multiply is a
// task DAG projected onto a flat task list: output tile (bi, bj) is one task
// that folds A[bi][bk] · B[bk][bj] over bk in ascending order into a private
// per-tile accumulator, and the tasks are executed by parallel.Tasks with
// work stealing — the 2D decomposition splits a skewed row's flops across a
// whole grid row of tasks, which is exactly the parallelism the flat
// row-partitioned kernel cannot extract.
//
// Equivalence discipline (the blocked differential battery compares with ==):
// for every output position the products arrive in the same global order as
// the flat Gustavson kernel — bk ascending × within-tile k ascending is
// global k ascending, and the per-row SPA generation persists across bk — so
// the first-assign-then-add chains are identical, term for term. The push
// (VxM) plan additionally replicates the flat kernel's frontier partition
// boundaries and folds partial SPAs in the same partition-ascending order as
// reduceSpas, so even float rounding matches.

// tileRowLoop is the per-(row, tile-pair) product loop of a blocked SpGEMM
// task: scatter local row i of the A-tile through the B-tile into the task's
// (spa, stamp) accumulator with generation gen, appending newly-seen local
// columns to pattern. Its shape is exactly spgemmRowLoop so the monomorphized
// family loops slot in unchanged.
type tileRowLoop[A, B, C any] func(a *CSR[A], b *CSR[B], spa []C, stamp []int, gen int, pattern []int, i int) []int

// closureTileRows is the generic tile product: the closure kernel's dense
// branch over one (A-tile row, B-tile) pair.
func closureTileRows[A, B, C any](mul func(A, B) C, add func(C, C) C) tileRowLoop[A, B, C] {
	return func(a *CSR[A], b *CSR[B], spa []C, stamp []int, gen int, pattern []int, i int) []int {
		aInd, aVal := a.Row(i)
		for k := range aInd {
			bInd, bVal := b.Row(aInd[k])
			av := aVal[k]
			for t := range bInd {
				j := bInd[t]
				p := mul(av, bVal[t])
				if stamp[j] != gen {
					stamp[j] = gen
					spa[j] = p
					pattern = append(pattern, j)
				} else {
					spa[j] = add(spa[j], p)
				}
			}
		}
		return pattern
	}
}

// blockedRowLoop picks the tile product: the matching monomorphized family
// loop when the semiring tag, the spec pin and the operand types admit one
// (the call then counts as mono, same as the flat dispatch), the closure
// loop otherwise. A pinned hash accumulator skips the mono loop — hash tasks
// run closures either way, as in the flat kernel.
func blockedRowLoop[A, B, C any](semi Semi, spec Spec, hint Kernel,
	mul func(A, B) C, add func(C, C) C) tileRowLoop[A, B, C] {
	if monoEnabled(semi, spec) && hint != KernelHash {
		if loop, ok := monoTileRows[A, B, C](semi); ok {
			monoKernels.Add(1)
			return loop
		}
	}
	return closureTileRows(mul, add)
}

// monoTileRows narrows onto a hot-type family loop: a tileRowLoop[T, T, T]
// type-asserts to tileRowLoop[A, B, C] exactly when all three domains are T.
func monoTileRows[A, B, C any](semi Semi) (tileRowLoop[A, B, C], bool) {
	try := func(l any) (tileRowLoop[A, B, C], bool) {
		loop, ok := l.(tileRowLoop[A, B, C])
		return loop, ok
	}
	switch semi {
	case SemiPlusTimes:
		if l, ok := try(tileRowLoop[int64, int64, int64](spgemmRowPlusTimes[int64])); ok {
			return l, true
		}
		if l, ok := try(tileRowLoop[float64, float64, float64](spgemmRowPlusTimes[float64])); ok {
			return l, true
		}
	case SemiMinPlus:
		if l, ok := try(tileRowLoop[int64, int64, int64](spgemmRowMinPlus[int64])); ok {
			return l, true
		}
		if l, ok := try(tileRowLoop[float64, float64, float64](spgemmRowMinPlus[float64])); ok {
			return l, true
		}
	case SemiLorLand:
		if l, ok := try(tileRowLoop[bool, bool, bool](spgemmRowLorLand)); ok {
			return l, true
		}
	case SemiPlusPair:
		if l, ok := try(tileRowLoop[int64, int64, int64](spgemmRowPlusPair[int64])); ok {
			return l, true
		}
		if l, ok := try(tileRowLoop[float64, float64, float64](spgemmRowPlusPair[float64])); ok {
			return l, true
		}
	case SemiGeneric:
	}
	return nil, false
}

// blockedSpGEMMDispatch routes a matrix product through the blocked engine
// when the mode asks for it. handled == false means "stay flat" (mode off,
// thresholds unmet, or a counted fallback). In BlockForce mode errors are
// the caller's — the route was pinned, like a pinned accumulator — while
// BlockAuto degrades to the flat kernel.
func blockedSpGEMMDispatch[A, B, C any](semi Semi, spec Spec, a *CSR[A], b *CSR[B],
	mul func(A, B) C, add func(C, C) C, mask Mask, e Exec, hint Kernel) (out *CSR[C], handled bool, err error) {
	mode := e.blockMode()
	switch mode {
	case BlockFlat:
		return nil, false, nil
	case BlockAuto:
		if e.threads() <= 1 || hint == KernelHash {
			return nil, false, nil
		}
		if !shouldBlock(a.Rows, a.Cols, a.NNZ()) || !shouldBlock(b.Rows, b.Cols, b.NNZ()) {
			return nil, false, nil
		}
	case BlockForce:
	}
	defer func() {
		// A panic during view materialization or planning means the blocked
		// engine engaged: park the recovered error rather than retrying the
		// flat kernel over a half-consumed fault.
		if r := recover(); r != nil {
			err = panicToError(r)
			handled = true
		}
	}()
	gr, gc := autoGrid()
	ab, aerr := a.BlockedViewEx(e, gr, gc)
	var bb *BlockedCSR[B]
	berr := aerr
	if aerr == nil {
		// B's row split must equal A's column split for the bk fold to line
		// up, so B is cut gc×gc regardless of the requested row grid.
		bb, berr = b.BlockedViewEx(e, gc, gc)
	}
	if berr != nil {
		if mode == BlockForce {
			return nil, true, berr
		}
		blockedFallbacks.Add(1)
		return nil, false, nil
	}
	if !sameSplit(ab.ColSplit, bb.RowSplit) {
		// Dimension-clamped grids diverged (degenerate shapes); the flat
		// kernel handles those fine.
		blockedFallbacks.Add(1)
		return nil, false, nil
	}
	prod := blockedRowLoop[A, B, C](semi, spec, hint, mul, add)
	out, err = blockedSpGEMM(ab, bb, mul, add, mask, e, hint, prod)
	return out, true, err
}

// blockedSpGEMM executes the SUMMA plan: one task per output tile, stolen
// off a shared counter, each folding its bk chain with a private dense or
// hash accumulator, then a final stitch into a flat CSR.
func blockedSpGEMM[A, B, C any](ab *BlockedCSR[A], bb *BlockedCSR[B],
	mul func(A, B) C, add func(C, C) C, mask Mask, e Exec, hint Kernel,
	prod tileRowLoop[A, B, C]) (out *CSR[C], err error) {
	defer recoverExec(&err)
	blockedOps.Add(1)
	gr, gc, gk := ab.GridR(), bb.GridC(), ab.GridC()
	slot := slotBytes[C]()
	maxTileCols := 0
	for bj := 0; bj < gc; bj++ {
		if w := bb.ColSplit[bj+1] - bb.ColSplit[bj]; w > maxTileCols {
			maxTileCols = w
		}
	}
	threads := degradeThreads(e, e.threads(), int64(maxTileCols)*slot)
	ntasks := gr * gc
	tInd := make([][]int, ntasks)
	tVal := make([][]C, ntasks)
	tRowLen := make([][]int, ntasks)
	// The per-task flop table scales with the grid area, so it is metered
	// like tile scratch.
	if cerr := e.charge(siteBlockTile, int64(ntasks)*8); cerr != nil {
		return nil, cerr
	}
	tFlops := make([]int64, ntasks)
	masked := mask.M != nil || mask.Complement
	parallel.Tasks(ntasks, threads, func(task int) {
		if ferr := siteBlockTile.Check(); ferr != nil {
			abort(ferr)
		}
		e.checkpoint()
		tileTasks.Add(1)
		bi, bj := task/gc, task%gc
		rlo := ab.RowSplit[bi]
		tr := ab.RowSplit[bi+1] - rlo
		clo := bb.ColSplit[bj]
		tc := bb.ColSplit[bj+1] - clo
		// Row-length + row-flop tables for this tile's rows.
		e.mustCharge(siteBlockTile, int64(tr)*16)
		rowLen := make([]int, tr)
		tRowLen[task] = rowLen
		if tr == 0 || tc == 0 {
			return
		}
		// Symbolic pass over the task's tile pairs: per-row flop bounds size
		// the hash table and pick the accumulator, as in the flat kernel.
		rowFlops := make([]int, tr)
		taskFlops, maxFlops := 0, 0
		for bk := 0; bk < gk; bk++ {
			if ab.TileMeta(bi, bk).NNZ == 0 || bb.TileMeta(bk, bj).NNZ == 0 {
				continue
			}
			at, bt := ab.Tile(bi, bk), bb.Tile(bk, bj)
			for li := 0; li < tr; li++ {
				ind, _ := at.Row(li)
				f := 0
				for _, k := range ind {
					f += bt.Ptr[k+1] - bt.Ptr[k]
				}
				rowFlops[li] += f
			}
		}
		for _, f := range rowFlops {
			taskFlops += f
			if f > maxFlops {
				maxFlops = f
			}
		}
		tFlops[task] = int64(taskFlops)
		if taskFlops == 0 {
			return
		}
		var ind []int
		var val []C
		pattern := make([]int, 0, 256)
		var mInd []int
		var mVal []bool
		mk := 0
		admit := func(j int) bool {
			mt := maskTest(mInd, mVal, mask.Structural, j, &mk)
			if mask.Complement {
				mt = !mt
			}
			return mt
		}
		// emitRow filters the sorted local pattern through the mask (row
		// cursor restarts per row — correct, the cursor is only a speedup)
		// and appends globalized columns.
		emitRow := func(li int, get func(jl int) C) {
			sort.Ints(pattern)
			start := len(ind)
			if masked {
				if mask.M != nil {
					mInd, mVal = mask.M.Row(rlo + li)
				}
				mk = 0
				for _, jl := range pattern {
					if admit(clo + jl) {
						ind = append(ind, clo+jl)
						val = append(val, get(jl))
					}
				}
			} else {
				for _, jl := range pattern {
					ind = append(ind, clo+jl)
					val = append(val, get(jl))
				}
			}
			rowLen[li] = len(ind) - start
		}
		useHash := chooseHash(hint, taskFlops, tc)
		denseBytes := int64(tc) * slot
		hashBytes := int64(hashCapacity(maxFlops)) * slot
		if !useHash && e.Tx != nil && !e.Tx.Fits(denseBytes) && hashBytes < denseBytes {
			useHash = true
			budgetDegrades.Add(1)
		}
		if useHash {
			tileHash.Add(1)
			e.mustCharge(siteBlockTile, hashBytes)
			tileScratch.Add(hashBytes)
			var h hashAccum[C]
			h.ensure(maxFlops)
			for li := 0; li < tr; li++ {
				if rowFlops[li] == 0 {
					continue
				}
				pattern = pattern[:0]
				for bk := 0; bk < gk; bk++ {
					if ab.TileMeta(bi, bk).NNZ == 0 || bb.TileMeta(bk, bj).NNZ == 0 {
						continue
					}
					at, bt := ab.Tile(bi, bk), bb.Tile(bk, bj)
					aInd, aVal := at.Row(li)
					for k := range aInd {
						bInd, bVal := bt.Row(aInd[k])
						av := aVal[k]
						for t := range bInd {
							j := bInd[t]
							p := mul(av, bVal[t])
							s := h.slot(j)
							if h.keys[s] == -1 {
								h.keys[s] = j
								h.vals[s] = p
								h.slots = append(h.slots, s)
								pattern = append(pattern, j)
							} else {
								h.vals[s] = add(h.vals[s], p)
							}
						}
					}
				}
				emitRow(li, func(jl int) C { return h.vals[h.slot(jl)] })
				h.reset()
			}
		} else {
			tileDense.Add(1)
			e.mustCharge(siteBlockTile, denseBytes)
			tileScratch.Add(denseBytes)
			spa := make([]C, tc)
			stamp := make([]int, tc)
			for li := 0; li < tr; li++ {
				if rowFlops[li] == 0 {
					continue
				}
				// The SPA generation persists across the bk fold, so the
				// first-assign-then-add chain per output position spans the
				// whole global k range — identical to the flat kernel's.
				gen := li + 1
				pattern = pattern[:0]
				for bk := 0; bk < gk; bk++ {
					if ab.TileMeta(bi, bk).NNZ == 0 || bb.TileMeta(bk, bj).NNZ == 0 {
						continue
					}
					pattern = prod(ab.Tile(bi, bk), bb.Tile(bk, bj), spa, stamp, gen, pattern, li)
				}
				emitRow(li, func(jl int) C { return spa[jl] })
			}
		}
		tInd[task] = ind
		tVal[task] = val
	})
	var work int64
	for _, f := range tFlops {
		work += f
	}
	noteSpan(modeledSpan(tFlops, threads), work)
	out = NewCSR[C](ab.Rows, bb.Cols)
	installTiled(out, ab.RowSplit, bb.ColSplit, tInd, tVal, tRowLen)
	return out, nil
}

// installTiled assembles the per-task tile outputs into a flat CSR: each
// global row concatenates its tile segments in ascending tile-column order,
// which is ascending global column order because tile emissions are sorted
// and globalized.
func installTiled[T any](out *CSR[T], rowSplit, colSplit []int, tInd [][]int, tVal [][]T, tRowLen [][]int) {
	gr := len(rowSplit) - 1
	gc := len(colSplit) - 1
	total := 0
	for _, s := range tInd {
		total += len(s)
	}
	out.Ind = make([]int, 0, total)
	out.Val = make([]T, 0, total)
	cur := make([]int, gr*gc)
	for bi := 0; bi < gr; bi++ {
		for li := 0; li < rowSplit[bi+1]-rowSplit[bi]; li++ {
			i := rowSplit[bi] + li
			for bj := 0; bj < gc; bj++ {
				task := bi*gc + bj
				if tRowLen[task] == nil {
					continue
				}
				n := tRowLen[task][li]
				if n == 0 {
					continue
				}
				c := cur[task]
				out.Ind = append(out.Ind, tInd[task][c:c+n]...)
				out.Val = append(out.Val, tVal[task][c:c+n]...)
				cur[task] = c + n
			}
			out.Ptr[i+1] = len(out.Ind)
		}
	}
	DebugCheckCSR(out, "installTiled")
}

// blockedSpMVDispatch routes a pull product through the blocked plan when
// the route is pinned (BlockForce). The auto policy never picks blocked
// SpMV: the flat pull kernel's row ranges already balance by nnz and the
// tile fold adds per-row segment overhead, so blocking only pays when the
// caller knows the matrix lives (or will live) in tiles.
func blockedSpMVDispatch[A, X, Y any](a *CSR[A], u *Vec[X],
	mul func(A, X) Y, add func(Y, Y) Y, mask VMask, e Exec) (out *Vec[Y], handled bool, err error) {
	if e.blockMode() != BlockForce {
		return nil, false, nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = panicToError(r)
			handled = true
		}
	}()
	gr, gc := autoGrid()
	ab, verr := a.BlockedViewEx(e, gr, gc)
	if verr != nil {
		return nil, true, verr
	}
	out, err = blockedSpMV(ab, u, mul, add, mask, e)
	return out, true, err
}

// blockedSpMV is the pull product over a blocked matrix: one task per tile
// row, each row folding its tile segments in ascending tile-column order
// with a single accumulator — the same global-k-ascending chain as the flat
// kernel, so the outputs match bit for bit. u is gathered densely once and
// shared read-only by all tasks.
func blockedSpMV[A, X, Y any](ab *BlockedCSR[A], u *Vec[X],
	mul func(A, X) Y, add func(Y, Y) Y, mask VMask, e Exec) (out *Vec[Y], err error) {
	defer recoverExec(&err)
	blockedOps.Add(1)
	pullCalls.Add(1)
	var zx X
	gatherBytes := int64(u.N) * int64(unsafe.Sizeof(zx)+1)
	e.mustCharge(siteBlockTile, gatherBytes)
	uval, uok := u.Scatter()
	tileScratch.Add(gatherBytes)
	admit := vmaskLookup(mask, ab.Rows)
	gr, gc := ab.GridR(), ab.GridC()
	pInd := make([][]int, gr)
	pVal := make([][]Y, gr)
	parallel.Tasks(gr, e.threads(), func(bi int) {
		if ferr := siteBlockTile.Check(); ferr != nil {
			abort(ferr)
		}
		e.checkpoint()
		tileTasks.Add(1)
		rlo := ab.RowSplit[bi]
		tr := ab.RowSplit[bi+1] - rlo
		var ind []int
		var val []Y
		for li := 0; li < tr; li++ {
			gi := rlo + li
			if admit != nil && !admit(gi) {
				continue
			}
			var acc Y
			any := false
			for bj := 0; bj < gc; bj++ {
				if ab.TileMeta(bi, bj).NNZ == 0 {
					continue
				}
				t := ab.Tile(bi, bj)
				clo := ab.ColSplit[bj]
				tInd, tVal := t.Row(li)
				for k := range tInd {
					j := clo + tInd[k]
					if !uok[j] {
						continue
					}
					p := mul(tVal[k], uval[j])
					if !any {
						acc = p
						any = true
					} else {
						acc = add(acc, p)
					}
				}
			}
			if any {
				ind = append(ind, gi)
				val = append(val, acc)
			}
		}
		pInd[bi] = ind
		pVal[bi] = val
	})
	return stitchVec(ab.Rows, ab.RowSplit, pInd, pVal), nil
}

// blockedVxMDispatch routes a push product through the blocked plan when the
// route is pinned (BlockForce), mirroring blockedSpMVDispatch.
func blockedVxMDispatch[X, A, Y any](u *Vec[X], a *CSR[A],
	mul func(X, A) Y, add func(Y, Y) Y, mask VMask, e Exec) (out *Vec[Y], handled bool, err error) {
	if e.blockMode() != BlockForce {
		return nil, false, nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = panicToError(r)
			handled = true
		}
	}()
	gr, gc := autoGrid()
	ab, verr := a.BlockedViewEx(e, gr, gc)
	if verr != nil {
		return nil, true, verr
	}
	out, err = blockedVxM(u, ab, mul, add, mask, e)
	return out, true, err
}

// blockedVxM is the push product over a blocked matrix. The frontier is cut
// at exactly the flat kernel's partition boundaries (same thread clamping,
// same full-width SPA sizing for degradation) and each (partition, tile
// column) pair becomes one scatter task over a tile-width SPA; the reduction
// then folds partitions in ascending order per position and emits tile
// columns in ascending order — the same value chains and output order as
// VxMEx + reduceSpas, just with the column space processed per tile.
func blockedVxM[X, A, Y any](u *Vec[X], ab *BlockedCSR[A],
	mul func(X, A) Y, add func(Y, Y) Y, mask VMask, e Exec) (out *Vec[Y], err error) {
	defer recoverExec(&err)
	blockedOps.Add(1)
	pushCalls.Add(1)
	if mask.M == nil && mask.Complement {
		return NewVec[Y](ab.Cols), nil
	}
	threads := e.threads()
	nu := u.NNZ()
	if threads > nu {
		threads = nu
	}
	if threads < 1 {
		threads = 1
	}
	var zero Y
	// Degradation sizing uses the flat kernel's full-width SPA bound so the
	// effective partition count (and therefore the fold order) is identical.
	spaBytes := int64(ab.Cols) * int64(unsafe.Sizeof(zero)+1)
	threads = degradeThreads(e, threads, spaBytes)
	parts := parallel.Ranges(nu, threads)
	nparts := len(parts) - 1
	if nparts == 0 {
		return NewVec[Y](ab.Cols), nil
	}
	var admit []bool
	if mask.M != nil {
		admit = vmaskBitmap(mask, ab.Cols)
	}
	gc := ab.GridC()
	ntasks := nparts * gc
	spas := make([][]Y, ntasks)
	marks := make([][]bool, ntasks)
	// The hit bitmap scales with the task grid, so it is metered like tile
	// scratch.
	if cerr := e.charge(siteBlockTile, int64(ntasks)); cerr != nil {
		return nil, cerr
	}
	anyHit := make([]bool, ntasks)
	parallel.Tasks(ntasks, threads, func(task int) {
		if ferr := siteBlockTile.Check(); ferr != nil {
			abort(ferr)
		}
		e.checkpoint()
		tileTasks.Add(1)
		part, bj := task/gc, task%gc
		clo := ab.ColSplit[bj]
		tc := ab.ColSplit[bj+1] - clo
		if tc == 0 {
			return
		}
		tileBytes := int64(tc) * int64(unsafe.Sizeof(zero)+1)
		e.mustCharge(siteBlockTile, tileBytes)
		spa := make([]Y, tc)
		mark := make([]bool, tc)
		tileScratch.Add(tileBytes)
		hit := false
		br := 0
		for k := parts[part]; k < parts[part+1]; k++ {
			i := u.Ind[k]
			for i >= ab.RowSplit[br+1] {
				br++
			}
			t := ab.Tile(br, bj)
			aInd, aVal := t.Row(i - ab.RowSplit[br])
			uv := u.Val[k]
			for x := range aInd {
				jl := aInd[x]
				if admit != nil && !admit[clo+jl] {
					continue
				}
				p := mul(uv, aVal[x])
				if !mark[jl] {
					mark[jl] = true
					spa[jl] = p
					hit = true
				} else {
					spa[jl] = add(spa[jl], p)
				}
			}
		}
		spas[task] = spa
		marks[task] = mark
		anyHit[task] = hit
	})
	// Reduction: per tile column, fold partitions in ascending order per
	// local position and emit positions in ascending order; tile columns
	// concatenate in ascending order. Globally this is the identical
	// partition-ascending fold and column-ascending emission as reduceSpas.
	rInd := make([][]int, gc)
	rVal := make([][]Y, gc)
	parallel.Tasks(gc, threads, func(bj int) {
		clo := ab.ColSplit[bj]
		tc := ab.ColSplit[bj+1] - clo
		live := false
		for p := 0; p < nparts; p++ {
			if anyHit[p*gc+bj] {
				live = true
				break
			}
		}
		if !live {
			return
		}
		var ind []int
		var val []Y
		for jl := 0; jl < tc; jl++ {
			var acc Y
			any := false
			for p := 0; p < nparts; p++ {
				m := marks[p*gc+bj]
				if m == nil || !m[jl] {
					continue
				}
				if !any {
					acc = spas[p*gc+bj][jl]
					any = true
				} else {
					acc = add(acc, spas[p*gc+bj][jl])
				}
			}
			if any {
				ind = append(ind, clo+jl)
				val = append(val, acc)
			}
		}
		rInd[bj] = ind
		rVal[bj] = val
	})
	return stitchVec(ab.Cols, ab.ColSplit, rInd, rVal), nil
}

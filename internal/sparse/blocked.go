package sparse

import (
	"sync/atomic"

	"github.com/grblas/grb/internal/parallel"
)

// This file is the 2D-blocked storage layer of the substrate: a CSR matrix
// can additionally expose a BlockedCSR view — an R×C grid of per-block CSR
// tiles with per-block metadata — which the SUMMA-style block plans in
// blockplan.go consume. The design follows the 2D decomposition that
// CombBLAS-style distributed-memory SpGEMM uses: the matrix is cut along both
// dimensions, each (bi, bj) output tile is owned by one task, and the tile
// multiply C[bi][bj] += A[bi][bk] · B[bk][bj] walks bk in ascending order so
// the floating-point reduction order matches the flat Gustavson kernel
// exactly (the property the blocked differential battery asserts).
//
// Tiles are addressed through the blockStore interface rather than pointed-to
// directly, so the plan layer never assumes tiles share an address space —
// the seam a future distributed transport plugs into. The in-process
// localBlocks store is the only implementation today.

// BlockHint selects the blocked-engine routing for one operation or, through
// the package-level hint, for the whole process. The zero value defers to the
// auto-blocker thresholds.
type BlockHint int

const (
	// BlockAuto routes through the blocked engine only when the operands
	// already carry blocked views the size thresholds justified.
	BlockAuto BlockHint = iota
	// BlockFlat pins the flat kernels: no blocked views are built or used.
	BlockFlat
	// BlockForce routes every multiply through the 2D-blocked SUMMA plans,
	// materializing blocked views as needed. Grids are clamped to the operand
	// dimensions, so forcing is always well-defined (if degenerate: a 1×1
	// grid is the flat algorithm run through the plan machinery).
	BlockForce
)

// blockHint is the package-level routing hint, the blocked-engine analogue of
// formatHint. Stored atomically so tests and benchmarks can pin it while
// kernels run on other goroutines.
var blockHint atomic.Int64

// CurrentBlockHint returns the blocked-engine routing hint.
func CurrentBlockHint() BlockHint { return BlockHint(blockHint.Load()) }

// SetBlockHint pins the blocked-engine routing hint and returns the previous
// value. Out-of-range values are normalized to BlockAuto. It affects only
// future route decisions; already-built blocked views stay cached.
func SetBlockHint(h BlockHint) BlockHint {
	if h < BlockAuto || h > BlockForce {
		h = BlockAuto
	}
	return BlockHint(blockHint.Swap(int64(h)))
}

// blockGridR/blockGridC hold the requested process-wide grid shape; 0 means
// "auto" (defaultBlockGrid per side, clamped to the matrix dimensions).
var (
	blockGridR atomic.Int64
	blockGridC atomic.Int64
)

// defaultBlockGrid is the per-side grid used when no explicit grid is pinned:
// 4×4 = 16 tile tasks per multiply, enough to keep 8 workers stealing without
// shrinking tiles below the point where per-tile overhead dominates.
const defaultBlockGrid = 4

// SetBlockGrid pins the process-wide blocked-view grid shape and returns the
// previous setting. Values < 1 mean "auto" and are stored as 0. The grid is
// clamped to each matrix's dimensions at materialization time.
func SetBlockGrid(r, c int) (int, int) {
	if r < 1 {
		r = 0
	}
	if c < 1 {
		c = 0
	}
	return int(blockGridR.Swap(int64(r))), int(blockGridC.Swap(int64(c)))
}

// BlockGrid returns the requested grid shape (0, 0 = auto).
func BlockGrid() (int, int) {
	return int(blockGridR.Load()), int(blockGridC.Load())
}

// blockNNZThreshold gates the Wait-time auto-blocker: matrices below it stay
// flat. Atomic so tests can lower it without racing running kernels.
var blockNNZThreshold atomic.Int64

// defaultBlockThreshold = 64Ki entries: below this the whole multiply fits in
// cache and tile-task overhead (per-tile SPA setup, task scheduling, the
// final stitch) costs more than the parallelism wins back.
const defaultBlockThreshold = 1 << 16

func init() { blockNNZThreshold.Store(defaultBlockThreshold) }

// BlockThreshold returns the auto-blocker nnz cutoff.
func BlockThreshold() int { return int(blockNNZThreshold.Load()) }

// SetBlockThreshold pins the auto-blocker nnz cutoff and returns the previous
// value. Values < 1 are clamped to 1.
func SetBlockThreshold(n int) int {
	if n < 1 {
		n = 1
	}
	return int(blockNNZThreshold.Swap(int64(n)))
}

// shouldBlock is the auto-blocker policy: block only matrices that are both
// large (nnz at or above the threshold) and not hypersparse (average row
// degree ≥ 4). The degree guard keeps the auto route off the hypersparse
// workloads where the hash SPA already wins and tiling would only shred the
// tiny per-row work into per-tile overhead.
func shouldBlock(rows, cols, nnz int) bool {
	if rows < 2 || cols < 2 {
		return false
	}
	if nnz < BlockThreshold() {
		return false
	}
	return nnz >= 4*rows
}

// BlockAddr names one tile of a blocked matrix by grid coordinates. Plans
// address tiles through it (rather than holding tile pointers) so a store
// backed by a transport can resolve addresses however it likes.
type BlockAddr struct {
	Row, Col int
}

// BlockMeta is the per-tile metadata the planner consults without fetching
// the tile body: today just the stored-entry count.
type BlockMeta struct {
	NNZ int
}

// blockStore resolves tile addresses to tile bodies. The in-process
// implementation is localBlocks; the interface exists so the plan layer stays
// transport-agnostic (a remote store would fetch serialized tiles instead).
type blockStore[T any] interface {
	fetch(a BlockAddr) *CSR[T]
}

// localBlocks is the in-process tile store: a row-major slice of tiles.
type localBlocks[T any] struct {
	tiles []*CSR[T]
	cols  int // grid columns, for row-major addressing
}

func (s *localBlocks[T]) fetch(a BlockAddr) *CSR[T] {
	return s.tiles[a.Row*s.cols+a.Col]
}

// BlockedCSR is the 2D-blocked view of a CSR matrix: an R×C grid of CSR
// tiles. RowSplit/ColSplit are the grid boundaries in parallel.Ranges form
// (length R+1 / C+1); tile (bi, bj) covers global rows
// [RowSplit[bi], RowSplit[bi+1]) and columns [ColSplit[bj], ColSplit[bj+1]),
// and stores LOCAL indices — row li of the tile is global row RowSplit[bi]+li
// and its column indices are offset by ColSplit[bj]. Like every structure in
// this package, a BlockedCSR is immutable once built.
type BlockedCSR[T any] struct {
	Rows, Cols int   // global shape
	RowSplit   []int // grid row boundaries, len GridR()+1
	ColSplit   []int // grid column boundaries, len GridC()+1
	Meta       []BlockMeta
	store      blockStore[T]
}

// GridR returns the number of tile rows.
func (b *BlockedCSR[T]) GridR() int { return len(b.RowSplit) - 1 }

// GridC returns the number of tile columns.
func (b *BlockedCSR[T]) GridC() int { return len(b.ColSplit) - 1 }

// Tile fetches the body of tile (bi, bj) from the store.
func (b *BlockedCSR[T]) Tile(bi, bj int) *CSR[T] {
	return b.store.fetch(BlockAddr{Row: bi, Col: bj})
}

// TileMeta returns the metadata of tile (bi, bj).
func (b *BlockedCSR[T]) TileMeta(bi, bj int) BlockMeta {
	return b.Meta[bi*b.GridC()+bj]
}

// NNZ returns the total stored-entry count across all tiles.
func (b *BlockedCSR[T]) NNZ() int {
	n := 0
	for _, m := range b.Meta {
		n += m.NNZ
	}
	return n
}

// sameSplit reports whether two boundary arrays describe the same partition —
// the compatibility check between A's column splits and B's row splits that a
// SUMMA product requires.
func sameSplit(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gridClamp clamps a requested per-side grid to [1, dim] (1 when the
// dimension itself is 0), mirroring what parallel.Ranges would produce.
func gridClamp(g, dim int) int {
	if g < 1 {
		g = defaultBlockGrid
	}
	if g > dim {
		g = dim
	}
	if g < 1 {
		g = 1
	}
	return g
}

// newBlockedCSR cuts m into a gr×gc grid of local-index CSR tiles. Grid
// boundaries come from parallel.Ranges, so two same-shaped matrices blocked
// with the same grid always have compatible splits. Two passes per row block:
// count entries per (tile, local row), then fill — O(nnz + rows·gc + gr·gc).
func newBlockedCSR[T any](m *CSR[T], gr, gc int) *BlockedCSR[T] {
	gr = gridClamp(gr, m.Rows)
	gc = gridClamp(gc, m.Cols)
	rowSplit := parallel.Ranges(m.Rows, gr)
	colSplit := parallel.Ranges(m.Cols, gc)
	nr := len(rowSplit) - 1
	nc := len(colSplit) - 1
	tiles := make([]*CSR[T], nr*nc)
	meta := make([]BlockMeta, nr*nc)
	for bi := 0; bi < nr; bi++ {
		rlo, rhi := rowSplit[bi], rowSplit[bi+1]
		tr := rhi - rlo
		// Pass 1: per-tile row counts (as Ptr offsets).
		ptrs := make([][]int, nc)
		for bj := 0; bj < nc; bj++ {
			ptrs[bj] = make([]int, tr+1)
		}
		for i := rlo; i < rhi; i++ {
			ind, _ := m.Row(i)
			bj := 0
			for _, j := range ind {
				for j >= colSplit[bj+1] {
					bj++
				}
				ptrs[bj][i-rlo+1]++
			}
		}
		for bj := 0; bj < nc; bj++ {
			p := ptrs[bj]
			for li := 0; li < tr; li++ {
				p[li+1] += p[li]
			}
			t := &CSR[T]{
				Rows: tr,
				Cols: colSplit[bj+1] - colSplit[bj],
				Ptr:  p,
				Ind:  make([]int, p[tr]),
				Val:  make([]T, p[tr]),
			}
			tiles[bi*nc+bj] = t
			meta[bi*nc+bj] = BlockMeta{NNZ: p[tr]}
		}
		// Pass 2: fill, tracking a write cursor per tile row.
		cur := make([]int, nc)
		for i := rlo; i < rhi; i++ {
			li := i - rlo
			for bj := 0; bj < nc; bj++ {
				cur[bj] = ptrs[bj][li]
			}
			ind, val := m.Row(i)
			bj := 0
			for k, j := range ind {
				for j >= colSplit[bj+1] {
					bj++
				}
				t := tiles[bi*nc+bj]
				c := cur[bj]
				t.Ind[c] = j - colSplit[bj]
				t.Val[c] = val[k]
				cur[bj] = c + 1
			}
		}
	}
	b := &BlockedCSR[T]{
		Rows:     m.Rows,
		Cols:     m.Cols,
		RowSplit: rowSplit,
		ColSplit: colSplit,
		Meta:     meta,
		store:    &localBlocks[T]{tiles: tiles, cols: nc},
	}
	for _, t := range tiles {
		DebugCheckCSR(t, "newBlockedCSR")
	}
	return b
}

// blockedViewBytes estimates the persistent footprint of a blocked view:
// the tile bodies mirror the flat nnz, plus one Ptr word per (row, grid
// column) pair and fixed per-tile overhead.
func blockedViewBytes[T any](m *CSR[T], gr, gc int) int64 {
	perEntry := slotBytes[T]()
	return int64(m.NNZ())*perEntry + int64((m.Rows+gr)*gc+gr*gc)*8
}

// BlockedViewEx returns the memoized gr×gc blocked view of m, materializing
// it on first use and charging the build persistently against the budget
// (the view outlives the operation, like a cached transpose). A cached view
// for a different grid is rebuilt and replaced — each view is self-consistent
// for its own grid, so replacement is safe. Grids are clamped to the matrix
// dimensions.
func (m *CSR[T]) BlockedViewEx(e Exec, gr, gc int) (*BlockedCSR[T], error) {
	gr = gridClamp(gr, m.Rows)
	gc = gridClamp(gc, m.Cols)
	if b := m.blk.Load(); b != nil && b.GridR() == gr && b.GridC() == gc {
		return b, nil
	}
	denseViewMu.Lock()
	defer denseViewMu.Unlock()
	if b := m.blk.Load(); b != nil && b.GridR() == gr && b.GridC() == gc {
		return b, nil
	}
	if err := siteBlockTile.Check(); err != nil {
		return nil, err
	}
	bytes := blockedViewBytes(m, gr, gc)
	if !e.Tx.ReservePersistent(bytes) {
		return nil, ErrBudget
	}
	b := newBlockedCSR(m, gr, gc)
	tileScratch.Add(bytes)
	m.blk.Store(b)
	return b, nil
}

// BlockedView is the unbudgeted convenience form for tests.
func (m *CSR[T]) BlockedView(gr, gc int) *BlockedCSR[T] {
	b, err := m.BlockedViewEx(Exec{}, gr, gc)
	if err != nil {
		panic(err)
	}
	return b
}

// autoGrid resolves the process-wide grid request (0 = auto default).
func autoGrid() (int, int) {
	r, c := BlockGrid()
	if r < 1 {
		r = defaultBlockGrid
	}
	if c < 1 {
		c = defaultBlockGrid
	}
	return r, c
}

// AutoBlockView is the Wait-time auto-blocker hook: called by the grb layer
// after a matrix sequence drains, it builds (and caches) a blocked view when
// the policy justifies one. Build failures (budget, injected fault) are
// swallowed — the flat representation is always still valid, so the auto
// path degrades to "no blocked view" rather than erroring the drain.
func AutoBlockView[T any](m *CSR[T], e Exec) {
	if m == nil {
		return
	}
	switch CurrentBlockHint() {
	case BlockFlat:
		return
	case BlockForce:
		// Forced routing materializes views at multiply time; pre-building
		// here too keeps Wait-time cost attribution consistent.
	case BlockAuto:
		if !shouldBlock(m.Rows, m.Cols, m.NNZ()) {
			return
		}
	}
	gr, gc := autoGrid()
	if b := m.blk.Load(); b != nil && b.GridR() == gridClamp(gr, m.Rows) && b.GridC() == gridClamp(gc, m.Cols) {
		return
	}
	if _, err := m.BlockedViewEx(e, gr, gc); err == nil {
		autoBlocks.Add(1)
	}
}

// blockMode resolves the per-operation pin against the package hint: an
// explicit Exec.Block wins, BlockAuto defers to the global setting.
func (e Exec) blockMode() BlockHint {
	if e.Block != BlockAuto {
		return e.Block
	}
	return CurrentBlockHint()
}

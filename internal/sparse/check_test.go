package sparse

import "testing"

// TestDebugCheckAcceptsValid: the validators are silent on well-formed
// snapshots whether or not the grbcheck tag compiled them in.
func TestDebugCheckAcceptsValid(t *testing.T) {
	m, err := BuildCSR(2, 3, []int{0, 0, 1}, []int{0, 2, 1}, []float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	DebugCheckCSR(m, "test")
	v, err := BuildVec(4, []int{1, 3}, []int{10, 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	DebugCheckVec(v, "test")
}

// TestDebugCheckCSRFires: under -tags grbcheck, a malformed snapshot panics
// at the check with the violated invariant named.
func TestDebugCheckCSRFires(t *testing.T) {
	if !DebugChecks {
		t.Skip("compiled without -tags grbcheck")
	}
	cases := []struct {
		name string
		m    *CSR[int]
	}{
		{"nnz mismatch", &CSR[int]{Rows: 1, Cols: 2, Ptr: []int{0, 2}, Ind: []int{0}, Val: []int{1}}},
		{"non-monotone Ptr", &CSR[int]{Rows: 2, Cols: 2, Ptr: []int{0, 1, 0}, Ind: []int{0}, Val: []int{1}}},
		{"unsorted row", &CSR[int]{Rows: 1, Cols: 3, Ptr: []int{0, 2}, Ind: []int{2, 0}, Val: []int{1, 2}}},
		{"column out of range", &CSR[int]{Rows: 1, Cols: 1, Ptr: []int{0, 1}, Ind: []int{5}, Val: []int{1}}},
		{"ragged storage", &CSR[int]{Rows: 1, Cols: 2, Ptr: []int{0, 1}, Ind: []int{0}, Val: nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("DebugCheckCSR accepted a malformed snapshot (%s)", tc.name)
				}
			}()
			DebugCheckCSR(tc.m, "test")
		})
	}
}

// TestDebugCheckVecFires is the vector analogue.
func TestDebugCheckVecFires(t *testing.T) {
	if !DebugChecks {
		t.Skip("compiled without -tags grbcheck")
	}
	cases := []struct {
		name string
		v    *Vec[int]
	}{
		{"duplicate index", &Vec[int]{N: 3, Ind: []int{1, 1}, Val: []int{1, 2}}},
		{"index out of range", &Vec[int]{N: 2, Ind: []int{4}, Val: []int{1}}},
		{"ragged storage", &Vec[int]{N: 2, Ind: []int{0}, Val: nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("DebugCheckVec accepted a malformed snapshot (%s)", tc.name)
				}
			}()
			DebugCheckVec(tc.v, "test")
		})
	}
}

package sparse

import (
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"

	"github.com/grblas/grb/internal/faults"
	"github.com/grblas/grb/internal/parallel"
)

// This file is the execution-hardening layer of the substrate: the budgeted
// allocator (Budget/BudgetTx), the per-invocation execution environment
// (Exec) that the *Ex kernel variants thread through their allocation and
// range checkpoints, and the panic/abort plumbing that turns any failure —
// budget exhaustion, cancellation, injected fault, or a genuine kernel bug —
// into an ordinary error return the grb layer parks as a §V execution error.
//
// Inside a kernel, failures travel as panics (abortPanic for controlled
// aborts, anything else for real crashes) because allocation sites sit deep
// in parallel worker loops where error returns would contort every kernel.
// parallel.For/Run ferry worker panics to the joining goroutine as
// parallel.WorkerPanic, and recoverExec at each Ex kernel's entry converts
// the whole taxonomy back into errors:
//
//	abortPanic{err}            → err            (ErrBudget, ErrCanceled, faults.ErrInjected)
//	any other panic            → *KernelPanic   (wraps ErrKernelPanic)
//
// The non-Ex kernel signatures are preserved as thin wrappers that re-panic
// on error, so existing internal callers and tests are untouched; the grb
// layer calls the Ex variants and maps the errors onto Info codes.

// Errors surfaced by the hardening layer. The grb layer maps ErrBudget (and
// faults.ErrInjected) onto GrB_OUT_OF_MEMORY, ErrCanceled onto the Canceled
// execution error, and ErrKernelPanic onto GrB_PANIC.
var (
	// ErrBudget reports that an allocation would exceed the context's memory
	// limit after every graceful degradation was tried.
	ErrBudget = errors.New("sparse: memory budget exhausted")
	// ErrCanceled reports that the operation was aborted by context
	// cancellation or an expired deadline at a range checkpoint.
	ErrCanceled = errors.New("sparse: execution canceled")
	// ErrKernelPanic is the sentinel wrapped by KernelPanic; errors.Is against
	// it identifies a recovered kernel crash.
	ErrKernelPanic = errors.New("sparse: kernel panic")
)

// KernelPanic is a kernel crash recovered into an error: Value is the
// original panic payload, Stack the worker's stack when the panic crossed a
// goroutine (nil for a same-goroutine recovery).
type KernelPanic struct {
	Value any
	Stack []byte
}

// Error formats the recovered payload.
func (k *KernelPanic) Error() string { return fmt.Sprintf("sparse: kernel panic: %v", k.Value) }

// Unwrap ties the concrete panic record to the ErrKernelPanic sentinel.
func (k *KernelPanic) Unwrap() error { return ErrKernelPanic }

// Budget is a shared memory allowance, in bytes, for kernel scratch and
// results: the enforcement half of the grb layer's WithMemoryLimit context
// option. Reservations are tracked with one atomic counter; concurrent
// operations against the same context share the pool.
//
// A budget may additionally mirror into a parent budget: every reservation
// and release is echoed up the parent chain, so an ancestor's Used() is a
// live aggregate of its own and all descendants' reservations. Parents only
// observe — the nearest budget still enforces its own limit — which is what
// lets a serving process read one atomic on a root "governor" budget to see
// total in-flight memory without walking its children. Detach unhooks a
// budget at teardown, subtracting any residual (persistent) reservations
// from the ancestors so a finished request cannot leak into the aggregate.
type Budget struct {
	limit  int64
	used   atomic.Int64
	peak   atomic.Int64
	parent atomic.Pointer[Budget]
}

// NewBudget creates a budget of limit bytes; limit <= 0 returns nil (an
// unlimited budget is represented by the absence of one).
func NewBudget(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Limit returns the budget's byte limit (0 for a nil budget).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used returns the bytes currently reserved, including every attached
// descendant budget's reservations (the rollup aggregate).
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of Used over the budget's lifetime — the
// signal the serving layer's admission estimator feeds on.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// SetParent attaches a rollup parent: from now on reservations and releases
// mirror into p (and p's own ancestors). The parent never enforces its limit
// against this budget's reservations; it only observes. Call before the
// budget sees traffic — typically right after construction.
func (b *Budget) SetParent(p *Budget) {
	if b == nil || p == nil || p == b {
		return
	}
	b.parent.Store(p)
}

// Detach unhooks the budget from its parent chain, subtracting its current
// reservation from every ancestor so residual (persistent) charges of a
// finished context leave the aggregate. Idempotent; safe once the budget's
// operations have completed.
func (b *Budget) Detach() {
	if b == nil {
		return
	}
	p := b.parent.Swap(nil)
	if p == nil {
		return
	}
	if n := b.used.Load(); n != 0 {
		for ; p != nil; p = p.parent.Load() {
			p.used.Add(-n)
		}
	}
}

// notePeak folds a new Used observation into the high-water mark.
func (b *Budget) notePeak(u int64) {
	for {
		p := b.peak.Load()
		if u <= p || b.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

// reserve attempts to claim n bytes, rolling back on failure. A successful
// claim mirrors into the parent chain (observation only — no ancestor limit
// check, the nearest budget governs).
func (b *Budget) reserve(n int64) bool {
	u := b.used.Add(n)
	if u > b.limit {
		b.used.Add(-n)
		return false
	}
	b.notePeak(u)
	for p := b.parent.Load(); p != nil; p = p.parent.Load() {
		p.notePeak(p.used.Add(n))
	}
	return true
}

// release returns n bytes to the pool and to the parent chain's aggregates.
func (b *Budget) release(n int64) {
	b.used.Add(-n)
	for p := b.parent.Load(); p != nil; p = p.parent.Load() {
		p.used.Add(-n)
	}
}

// Tx opens a per-operation transaction against the budget: reservations made
// through the transaction are released together by Close, so one drained
// operation's scratch cannot leak into the pool when the op ends (normally or
// by abort). A nil Budget yields a nil (unlimited) transaction.
func (b *Budget) Tx() *BudgetTx {
	if b == nil {
		return nil
	}
	return &BudgetTx{b: b}
}

// BudgetTx tracks one operation's transient reservations. All methods are
// nil-safe: a nil transaction is the unlimited allocator.
type BudgetTx struct {
	b    *Budget
	held atomic.Int64
}

// Reserve claims n transient bytes, reporting whether they fit.
func (tx *BudgetTx) Reserve(n int64) bool {
	if tx == nil || n <= 0 {
		return true
	}
	if !tx.b.reserve(n) {
		return false
	}
	tx.held.Add(n)
	return true
}

// ReservePersistent claims n bytes that outlive the transaction (e.g. a
// cached transpose): they are charged to the budget but not released by
// Close.
func (tx *BudgetTx) ReservePersistent(n int64) bool {
	if tx == nil || n <= 0 {
		return true
	}
	return tx.b.reserve(n)
}

// Fits reports whether n more transient bytes would currently fit — the
// degradation probe used to pick a cheaper route before committing to an
// allocation.
func (tx *BudgetTx) Fits(n int64) bool {
	if tx == nil {
		return true
	}
	return tx.b.used.Load()+n <= tx.b.limit
}

// Limited reports whether a finite budget is attached.
func (tx *BudgetTx) Limited() bool { return tx != nil }

// Held returns the transaction's live transient reservation.
func (tx *BudgetTx) Held() int64 {
	if tx == nil {
		return 0
	}
	return tx.held.Load()
}

// Close releases every transient reservation back to the budget.
func (tx *BudgetTx) Close() {
	if tx == nil {
		return
	}
	if n := tx.held.Swap(0); n > 0 {
		tx.b.release(n)
	}
}

// Exec is the execution environment for one kernel invocation: the thread
// budget, the operation's budget transaction (nil = unlimited), and the
// cancellation probe (nil = never canceled; returns ErrCanceled-compatible
// errors). The zero Exec runs serially, unbudgeted, uncancellable — exactly
// the pre-hardening behaviour, which is what the compatibility wrappers pass.
type Exec struct {
	Threads int
	Tx      *BudgetTx
	Cancel  func() error
	// Block is the per-operation blocked-engine pin (descriptor level,
	// analogous to the Kernel and Spec pins): the zero value BlockAuto defers
	// to the global hint and the size thresholds, BlockForce routes through
	// the 2D-blocked SUMMA plans, BlockFlat keeps the flat kernels.
	Block BlockHint
}

// threads returns the effective worker count (≥ 1).
func (e Exec) threads() int {
	if e.Threads < 1 {
		return 1
	}
	return e.Threads
}

// Close releases the budget transaction; call it when the operation that
// built the Exec completes. Nil-safe.
func (e Exec) Close() { e.Tx.Close() }

// abortPanic carries a controlled kernel abort (budget, cancellation,
// injected alloc failure) out of worker loops; recoverExec unwraps it back
// into its error.
type abortPanic struct{ err error }

// abort raises err as a controlled kernel abort.
func abort(err error) { panic(abortPanic{err: err}) }

// charge consults the fault-injection site and then reserves bytes against
// the budget, returning the failure (if any) as an error.
func (e Exec) charge(s *faults.Site, bytes int64) error {
	if err := s.Check(); err != nil {
		return err
	}
	if !e.Tx.Reserve(bytes) {
		return ErrBudget
	}
	return nil
}

// mustCharge is charge for call sites inside kernels: failure aborts the
// kernel via panic, recovered by recoverExec at the kernel entry.
func (e Exec) mustCharge(s *faults.Site, bytes int64) {
	if err := e.charge(s, bytes); err != nil {
		abort(err)
	}
}

// checkpoint is the per-range abort probe: it consults the generic range
// fault site (panic/delay injection lands here) and the cancellation hook.
// Kernels call it at range granularity — once per worker range — which is the
// abort latency the API documents.
func (e Exec) checkpoint() {
	if err := siteRange.Check(); err != nil {
		abort(err)
	}
	if e.Cancel != nil {
		if err := e.Cancel(); err != nil {
			abort(err)
		}
	}
}

// recoverExec is deferred at every Ex kernel entry: it converts the panic
// taxonomy (controlled aborts, ferried worker panics, genuine crashes) into
// the kernel's error result. Real panics — anything that is not a controlled
// abort — increment the recovered-panic counter.
func recoverExec(err *error) {
	r := recover()
	if r == nil {
		return
	}
	*err = panicToError(r)
}

// panicToError maps one recovered panic value onto the hardening error
// taxonomy.
func panicToError(r any) error {
	switch t := r.(type) {
	case abortPanic:
		return t.err
	case parallel.WorkerPanic:
		if ab, ok := t.Value.(abortPanic); ok {
			return ab.err
		}
		panicsRecovered.Add(1)
		return &KernelPanic{Value: t.Value, Stack: t.Stack}
	}
	panicsRecovered.Add(1)
	return &KernelPanic{Value: r}
}

// Fault-injection sites, one per hardened allocation point plus the generic
// per-range checkpoint. Registered at init so the chaos sweep can enumerate
// them through faults.Sites().
var (
	siteSpGEMMDense = faults.Register("sparse.spgemm.spa")
	siteSpGEMMHash  = faults.Register("sparse.spgemm.hash")
	siteSpMVGather  = faults.Register("sparse.spmv.gather")
	siteSpMVHash    = faults.Register("sparse.spmv.hash")
	siteVxMSpa      = faults.Register("sparse.vxm.spa")
	siteTranspose   = faults.Register("sparse.transpose.build")
	siteMerge       = faults.Register("sparse.merge.tuples")
	siteRange       = faults.Register("sparse.kernel.range")
	// Monomorphized fast-path sites: the per-range loop entry of the
	// specialized kernels, their scatter-SPA allocation, and the
	// sparse→bitmap/dense block-format materialization they ride on.
	siteMonoLoop      = faults.Register("sparse.mono.loop")
	siteMonoSpa       = faults.Register("sparse.mono.spa")
	siteFormatConvert = faults.Register("sparse.format.convert")
	// Blocked-engine site: probed at every tile task entry and at blocked-view
	// materialization, so the chaos sweep exercises budget exhaustion and
	// panics inside SUMMA plans.
	siteBlockTile = faults.Register("sparse.block.tile")
)

// MergeSite exposes the tuple-merge fault site so the grb layer's deferred
// setElement merge participates in the chaos sweep.
func MergeSite() *faults.Site { return siteMerge }

// slotBytes is the per-slot scratch cost of an accumulator over value type T:
// one index word plus one value.
func slotBytes[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(0) + unsafe.Sizeof(z))
}

// hashCapacity returns the power-of-two table size hashAccum/hashLookup
// allocate for n live keys — the number charge must use so the budget sees
// the real allocation, not the request.
func hashCapacity(n int) int {
	c := 16
	for c < 2*n {
		c <<= 1
	}
	return c
}

// degradeThreads halves the worker count until the per-worker scratch fits
// the budget (or one worker remains), counting one degradation if any halving
// happened. Fewer workers means fewer concurrently-live accumulators, which
// is the first and cheapest pressure valve: it costs wall time, never
// correctness.
func degradeThreads(e Exec, threads int, perWorkerBytes int64) int {
	if e.Tx == nil || threads <= 1 {
		return threads
	}
	orig := threads
	for threads > 1 && !e.Tx.Fits(int64(threads)*perWorkerBytes) {
		threads = (threads + 1) / 2
	}
	if threads != orig {
		budgetDegrades.Add(1)
	}
	return threads
}

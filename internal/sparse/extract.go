package sparse

import (
	"sort"

	"github.com/grblas/grb/internal/parallel"
)

// ExtractM computes the submatrix T = A(rows, cols): T is
// len(rows)×len(cols) with T(i,j) = A(rows[i], cols[j]). A nil index slice
// means "all indices" (GrB_ALL). Index lists may contain duplicates and be
// unsorted, per the C spec. Returns ErrIndexOutOfBounds on invalid indices.
// A panic inside the fan-out (a faulty user operator, an injected fault)
// parks as an error instead of crossing the API boundary.
func ExtractM[T any](a *CSR[T], rows, cols []int, threads int) (out *CSR[T], err error) {
	defer recoverExec(&err)
	outRows := a.Rows
	if rows != nil {
		outRows = len(rows)
		for _, r := range rows {
			if r < 0 || r >= a.Rows {
				return nil, ErrIndexOutOfBounds
			}
		}
	}
	outCols := a.Cols
	if cols != nil {
		outCols = len(cols)
		for _, c := range cols {
			if c < 0 || c >= a.Cols {
				return nil, ErrIndexOutOfBounds
			}
		}
	}
	// colPos[c] lists the output columns that source column c feeds.
	var colPos [][]int
	if cols != nil {
		colPos = make([][]int, a.Cols)
		for j, c := range cols {
			colPos[c] = append(colPos[c], j)
		}
	}
	out = NewCSR[T](outRows, outCols)
	parts := parallel.Ranges(outRows, threads)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]T, nparts)
	rowLen := make([]int, outRows)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		var ind []int
		var val []T
		type pair struct {
			j int
			v T
		}
		var buf []pair
		for i := lo; i < hi; i++ {
			src := i
			if rows != nil {
				src = rows[i]
			}
			aInd, aVal := a.Row(src)
			start := len(ind)
			if cols == nil {
				ind = append(ind, aInd...)
				val = append(val, aVal...)
			} else {
				buf = buf[:0]
				for k := range aInd {
					for _, j := range colPos[aInd[k]] {
						buf = append(buf, pair{j, aVal[k]})
					}
				}
				sort.Slice(buf, func(x, y int) bool { return buf[x].j < buf[y].j })
				for _, p := range buf {
					ind = append(ind, p.j)
					val = append(val, p.v)
				}
			}
			rowLen[i] = len(ind) - start
		}
		pInd[part] = ind
		pVal[part] = val
	})
	installStitched(out, parts, pInd, pVal, rowLen)
	return out, nil
}

// ExtractV computes the subvector t = u(idx): t has len(idx) entries with
// t(i) = u(idx[i]). A nil idx means all of u.
func ExtractV[T any](u *Vec[T], idx []int) (*Vec[T], error) {
	if idx == nil {
		return u.Clone(), nil
	}
	for _, i := range idx {
		if i < 0 || i >= u.N {
			return nil, ErrIndexOutOfBounds
		}
	}
	out := &Vec[T]{N: len(idx)}
	for i, src := range idx {
		if v, ok := u.Get(src); ok {
			out.Ind = append(out.Ind, i)
			out.Val = append(out.Val, v)
		}
	}
	return out, nil
}

// ExtractColV computes t = A(rows, j): one column of A gathered through a
// row index list (GrB_Col_extract). nil rows means all rows.
func ExtractColV[T any](a *CSR[T], rows []int, j int) (*Vec[T], error) {
	if j < 0 || j >= a.Cols {
		return nil, ErrIndexOutOfBounds
	}
	n := a.Rows
	if rows != nil {
		n = len(rows)
		for _, r := range rows {
			if r < 0 || r >= a.Rows {
				return nil, ErrIndexOutOfBounds
			}
		}
	}
	out := &Vec[T]{N: n}
	for i := 0; i < n; i++ {
		src := i
		if rows != nil {
			src = rows[i]
		}
		if v, ok := a.Get(src, j); ok {
			out.Ind = append(out.Ind, i)
			out.Val = append(out.Val, v)
		}
	}
	return out, nil
}

package sparse

import "github.com/grblas/grb/internal/parallel"

// mergeUnionM computes the set-union merge of two same-domain matrices,
// combining entries present in both with add. Rows are processed in
// parallel.
func mergeUnionM[T any](a, b *CSR[T], add func(T, T) T, threads int) *CSR[T] {
	out := NewCSR[T](a.Rows, a.Cols)
	parts := parallel.Ranges(a.Rows, threads)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]T, nparts)
	rowLen := make([]int, a.Rows)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		var ind []int
		var val []T
		for i := lo; i < hi; i++ {
			aInd, aVal := a.Row(i)
			bInd, bVal := b.Row(i)
			start := len(ind)
			ai, bi := 0, 0
			for ai < len(aInd) || bi < len(bInd) {
				switch {
				case bi >= len(bInd) || (ai < len(aInd) && aInd[ai] < bInd[bi]):
					ind = append(ind, aInd[ai])
					val = append(val, aVal[ai])
					ai++
				case ai >= len(aInd) || bInd[bi] < aInd[ai]:
					ind = append(ind, bInd[bi])
					val = append(val, bVal[bi])
					bi++
				default:
					ind = append(ind, aInd[ai])
					val = append(val, add(aVal[ai], bVal[bi]))
					ai++
					bi++
				}
			}
			rowLen[i] = len(ind) - start
		}
		pInd[part] = ind
		pVal[part] = val
	})
	installStitched(out, parts, pInd, pVal, rowLen)
	return out
}

// EWiseAddM computes the element-wise "addition" T = A ⊕ B: the union of the
// two patterns, with add applied where both inputs have an entry and the
// single value passed through otherwise (GraphBLAS eWiseAdd). The Go binding
// restricts eWiseAdd to a single domain because pass-through of one-sided
// entries requires an implicit typecast in the C spec.
func EWiseAddM[T any](a, b *CSR[T], add func(T, T) T, threads int) *CSR[T] {
	return mergeUnionM(a, b, add, threads)
}

// EWiseMultM computes the element-wise "multiplication" T = A ⊗ B: the
// intersection of the two patterns with mul applied to each co-located pair.
// Because no value passes through unchanged, the domains may all differ.
func EWiseMultM[A, B, C any](a *CSR[A], b *CSR[B], mul func(A, B) C, threads int) *CSR[C] {
	out := NewCSR[C](a.Rows, a.Cols)
	parts := parallel.Ranges(a.Rows, threads)
	nparts := len(parts) - 1
	pInd := make([][]int, nparts)
	pVal := make([][]C, nparts)
	rowLen := make([]int, a.Rows)
	parallel.Run(parts, threads, func(part, lo, hi int) {
		var ind []int
		var val []C
		for i := lo; i < hi; i++ {
			aInd, aVal := a.Row(i)
			bInd, bVal := b.Row(i)
			start := len(ind)
			ai, bi := 0, 0
			for ai < len(aInd) && bi < len(bInd) {
				switch {
				case aInd[ai] < bInd[bi]:
					ai++
				case bInd[bi] < aInd[ai]:
					bi++
				default:
					ind = append(ind, aInd[ai])
					val = append(val, mul(aVal[ai], bVal[bi]))
					ai++
					bi++
				}
			}
			rowLen[i] = len(ind) - start
		}
		pInd[part] = ind
		pVal[part] = val
	})
	installStitched(out, parts, pInd, pVal, rowLen)
	return out
}

// EWiseAddV is the vector analogue of EWiseAddM.
func EWiseAddV[T any](a, b *Vec[T], add func(T, T) T) *Vec[T] {
	out := &Vec[T]{N: a.N, Ind: make([]int, 0, len(a.Ind)+len(b.Ind)), Val: make([]T, 0, len(a.Val)+len(b.Val))}
	ai, bi := 0, 0
	for ai < len(a.Ind) || bi < len(b.Ind) {
		switch {
		case bi >= len(b.Ind) || (ai < len(a.Ind) && a.Ind[ai] < b.Ind[bi]):
			out.Ind = append(out.Ind, a.Ind[ai])
			out.Val = append(out.Val, a.Val[ai])
			ai++
		case ai >= len(a.Ind) || b.Ind[bi] < a.Ind[ai]:
			out.Ind = append(out.Ind, b.Ind[bi])
			out.Val = append(out.Val, b.Val[bi])
			bi++
		default:
			out.Ind = append(out.Ind, a.Ind[ai])
			out.Val = append(out.Val, add(a.Val[ai], b.Val[bi]))
			ai++
			bi++
		}
	}
	return out
}

// EWiseMultV is the vector analogue of EWiseMultM.
func EWiseMultV[A, B, C any](a *Vec[A], b *Vec[B], mul func(A, B) C) *Vec[C] {
	out := &Vec[C]{N: a.N}
	ai, bi := 0, 0
	for ai < len(a.Ind) && bi < len(b.Ind) {
		switch {
		case a.Ind[ai] < b.Ind[bi]:
			ai++
		case b.Ind[bi] < a.Ind[ai]:
			bi++
		default:
			out.Ind = append(out.Ind, a.Ind[ai])
			out.Val = append(out.Val, mul(a.Val[ai], b.Val[bi]))
			ai++
			bi++
		}
	}
	return out
}
